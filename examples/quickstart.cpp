// Quickstart: run the paper's store-elimination example (Figure 7) and the
// array shrinking/peeling example (Figure 6) through the full
// bandwidth-reduction pipeline, and show the balance model's verdict.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>
#include <iostream>

#include "bwc/core/optimizer.h"
#include "bwc/ir/printer.h"
#include "bwc/machine/machine_model.h"
#include "bwc/model/measure.h"
#include "bwc/support/table.h"
#include "bwc/transform/storage_reduction.h"
#include "bwc/workloads/paper_programs.h"

int main() {
  using namespace bwc;

  const machine::MachineModel o2k = machine::origin2000_r10k().scaled(16);

  for (auto maker : {workloads::fig7_original, workloads::fig6_original}) {
    const ir::Program original = maker(/*n=*/ maker == workloads::fig7_original
                                                  ? 200000
                                                  : 400);
    std::cout << "==== " << original.name() << " ====\n";
    std::cout << ir::to_string(original) << "\n";

    const model::Measurement before = model::measure(original, o2k);
    std::cout << "before: " << model::summarize(before) << "\n\n";

    const core::OptimizeResult opt = core::optimize(original);
    std::cout << "passes:\n" << core::render_log(opt) << "\n";
    std::cout << ir::to_string(opt.program) << "\n";

    const model::Measurement after = model::measure(opt.program, o2k);
    std::cout << "after:  " << model::summarize(after) << "\n";
    const double speedup = before.time.total_s / after.time.total_s;
    std::cout << "model speedup: " << fmt_fixed(speedup, 2) << "x, checksum "
              << (std::abs(before.exec.checksum - after.exec.checksum) <=
                          1e-9 * std::abs(before.exec.checksum)
                      ? "preserved"
                      : "MISMATCH!")
              << "\n\n";
  }
  return 0;
}
