// Fusion playground: drive the bandwidth-minimal fusion solvers on an
// abstract fusion graph, no IR required.
//
// Scenario: an image-processing pipeline of eight passes over a handful of
// planes, with a histogram barrier that cannot fuse with the final
// normalization pass. Which passes should share a loop to minimize the
// total number of planes streamed from memory?
//
//   ./build/examples/fusion_playground
#include <iostream>

#include "bwc/fusion/solvers.h"
#include "bwc/support/table.h"

int main() {
  using namespace bwc;

  // Loops (passes):      0 decode, 1 denoise, 2 gradient, 3 histogram,
  //                      4 equalize, 5 blend, 6 sharpen, 7 encode
  // Arrays (planes): pins = which passes touch them.
  const std::vector<std::vector<int>> planes = {
      /*raw      */ {0},
      /*luma     */ {0, 1, 2, 3, 4},
      /*denoised */ {1, 5},
      /*grad     */ {2, 5, 6},
      /*hist     */ {3, 4},
      /*equalized*/ {4, 5},
      /*blended  */ {5, 6, 7},
      /*out      */ {6, 7},
  };
  // Producer -> consumer dependences along the pipeline.
  const std::vector<std::pair<int, int>> deps = {
      {0, 1}, {0, 2}, {0, 3}, {3, 4}, {1, 5}, {2, 5},
      {4, 5}, {5, 6}, {6, 7},
  };
  // The histogram pass must fully complete before equalization can start
  // (a reduction barrier): fusion-preventing.
  const std::vector<std::pair<int, int>> preventing = {{3, 4}};

  const fusion::FusionGraph g =
      fusion::graph_from_spec(8, planes, deps, preventing);

  const char* pass_names[] = {"decode",   "denoise", "gradient", "histogram",
                              "equalize", "blend",   "sharpen",  "encode"};
  auto show = [&](const fusion::FusionPlan& plan) {
    std::string out;
    for (const auto& group : plan.groups()) {
      out += "[";
      for (std::size_t i = 0; i < group.size(); ++i) {
        if (i) out += "+";
        out += pass_names[group[i]];
      }
      out += "] ";
    }
    return out;
  };

  TextTable t("Planes streamed from memory under each fusion strategy");
  t.set_header({"solver", "schedule", "planes streamed"});
  const auto none = fusion::no_fusion(g);
  t.add_row({"no fusion", show(none), std::to_string(none.cost)});
  const auto exact = fusion::exact_enumeration(g);
  t.add_row({"bandwidth-minimal (exact)", show(exact),
             std::to_string(exact.cost)});
  const auto greedy = fusion::greedy_fusion(g);
  t.add_row({"greedy", show(greedy), std::to_string(greedy.cost)});
  const auto bisect = fusion::recursive_bisection(g);
  t.add_row({"recursive bisection", show(bisect),
             std::to_string(bisect.cost)});
  const auto ew = fusion::edge_weighted_baseline(g);
  t.add_row({"edge-weighted baseline", show(ew), std::to_string(ew.cost)});
  std::cout << t.render();

  std::cout << "\nEvery plane streamed costs one full pass of memory "
               "bandwidth; the exact plan\nsaves "
            << (none.cost - exact.cost) << "/" << none.cost
            << " of the pipeline's traffic while honoring the histogram "
               "barrier.\n";
  return 0;
}
