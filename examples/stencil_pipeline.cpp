// Stencil pipeline: write your own loop program with the IR DSL, run the
// full bandwidth-reduction pipeline, and compare machines.
//
// Scenario: a 1-D heat-flux chain — compute fluxes from a temperature
// field, apply them, then take two diagnostics. Naively that is four
// passes over memory; the optimizer fuses them, contracts the flux
// temporary, and eliminates the writeback of the updated field's scratch
// copy.
//
//   ./build/examples/stencil_pipeline
#include <cmath>
#include <iostream>

#include "bwc/core/optimizer.h"
#include "bwc/ir/dsl.h"
#include "bwc/ir/printer.h"
#include "bwc/machine/machine_model.h"
#include "bwc/model/measure.h"
#include "bwc/support/table.h"

int main() {
  using namespace bwc;
  using namespace bwc::ir::dsl;

  const std::int64_t n = 250000;
  ir::Program p("heat-flux chain");
  const ir::ArrayId temp = p.add_array("temp", {n});
  const ir::ArrayId flux = p.add_array("flux", {n});
  const ir::ArrayId next = p.add_array("next", {n});
  p.add_scalar("total");
  p.add_scalar("peak");
  p.mark_output_scalar("total");
  p.mark_output_scalar("peak");

  // Pass 1: flux[i] = 0.5 * (temp[i+1] - temp[i])
  p.append(loop("i", 2, n - 1,
                assign(flux, {v("i")},
                       lit(0.5) * (at(temp, v("i", 1)) - at(temp, v("i"))))));
  // Pass 2: next[i] = temp[i] + flux[i] - flux[i-1]
  p.append(loop("i", 2, n - 1,
                assign(next, {v("i")},
                       at(temp, v("i")) +
                           (at(flux, v("i")) - at(flux, v("i", -1))))));
  // Pass 3: total = sum(next)
  p.append(assign("total", lit(0.0)));
  p.append(loop("i", 2, n - 1,
                assign("total", sref("total") + at(next, v("i")))));
  // Pass 4: peak-ish diagnostic (monotone reduction keeps it affine).
  p.append(assign("peak", lit(0.0)));
  p.append(loop("i", 2, n - 1,
                assign("peak",
                       sref("peak") + at(next, v("i")) * at(next, v("i")))));

  std::cout << "original program:\n" << ir::to_string(p) << "\n";

  const core::OptimizeResult opt = core::optimize(p);
  std::cout << "optimizer log:\n" << core::render_log(opt) << "\n";
  std::cout << "optimized program:\n" << ir::to_string(opt.program) << "\n";

  TextTable t("Predicted time across machines (bandwidth-bound model)");
  t.set_header({"machine", "original ms", "optimized ms", "speedup",
                "mem traffic before", "after"});
  for (const auto& preset : machine::all_presets()) {
    const auto machine = preset.scaled(16);
    const auto before = model::measure(p, machine);
    const auto after = model::measure(opt.program, machine);
    t.add_row({preset.name, fmt_fixed(before.time.total_s * 1e3, 2),
               fmt_fixed(after.time.total_s * 1e3, 2),
               fmt_fixed(before.time.total_s / after.time.total_s, 2) + "x",
               fmt_bytes(static_cast<double>(before.profile.memory_bytes())),
               fmt_bytes(static_cast<double>(after.profile.memory_bytes()))});
    const double drift = std::abs(before.exec.checksum - after.exec.checksum);
    if (drift > 1e-9 * std::abs(before.exec.checksum)) {
      std::cout << "checksum mismatch on " << preset.name << "!\n";
      return 1;
    }
  }
  std::cout << t.render();
  std::cout << "\nall three machines are memory-bound on this chain, so the "
               "~3x traffic cut converts to a ~3x\nspeedup everywhere -- "
               "and the absolute seconds saved scale with how imbalanced "
               "the machine is.\n";
  return 0;
}
