// Balance audit: the paper's performance model as a library.
//
// Given a kernel (here: your own instrumented loop), measure its program
// balance on a simulated machine, compare demand against supply at every
// hierarchy level, and get the CPU-utilization bound — the Figure 1 +
// Figure 2 methodology as three API calls.
//
//   ./build/examples/balance_audit
#include <iostream>

#include "bwc/machine/machine_model.h"
#include "bwc/model/balance.h"
#include "bwc/runtime/recorder.h"
#include "bwc/support/table.h"
#include "bwc/workloads/address_space.h"

namespace {

// A user kernel: axpy-like update with a strided gather. Instrument it by
// reporting loads/stores/flops to the recorder; addresses come from the
// simulated address space.
template <typename Rec>
void my_kernel(Rec& rec, std::vector<double>& y, const std::vector<double>& x,
               std::uint64_t y_base, std::uint64_t x_base, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t gather = (i * 7) % n;  // strided gather: poor locality
    rec.load_double(x_base + static_cast<std::uint64_t>(gather) * 8);
    rec.load_double(y_base + static_cast<std::uint64_t>(i) * 8);
    y[static_cast<std::size_t>(i)] +=
        2.5 * x[static_cast<std::size_t>(gather)];
    rec.flops(2);
    rec.store_double(y_base + static_cast<std::uint64_t>(i) * 8);
  }
}

}  // namespace

int main() {
  using namespace bwc;

  const std::int64_t n = 200000;
  workloads::AddressSpace space;
  std::vector<double> y(static_cast<std::size_t>(n), 1.0);
  std::vector<double> x(static_cast<std::size_t>(n), 2.0);
  const std::uint64_t y_base =
      space.allocate_doubles(static_cast<std::uint64_t>(n));
  const std::uint64_t x_base =
      space.allocate_doubles(static_cast<std::uint64_t>(n));

  for (const auto& machine : machine::all_presets()) {
    // 1. Run the kernel against the machine's simulated hierarchy.
    memsim::MemoryHierarchy hierarchy =
        machine.scaled(16).make_hierarchy();
    runtime::Recorder recorder(&hierarchy);
    my_kernel(recorder, y, x, y_base, x_base, n);

    // 2. Program balance from the measured profile.
    const auto balance = model::ProgramBalance::from_profile(
        "my_kernel", recorder.profile());

    // 3. Demand/supply ratios and the utilization bound.
    const auto ratios = model::demand_supply_ratios(balance, machine);
    std::cout << "== " << machine.name << " ==\n";
    for (std::size_t level = 0; level < ratios.size(); ++level) {
      std::cout << "  level " << level << ": demand "
                << fmt_fixed(balance.bytes_per_flop[level], 2)
                << " B/flop, supply "
                << fmt_fixed(machine.machine_balance()[level], 2)
                << " B/flop, ratio " << fmt_fixed(ratios[level], 1) << "\n";
    }
    std::cout << "  CPU utilization bounded at "
              << fmt_fixed(model::cpu_utilization_bound(ratios) * 100, 1)
              << "%\n\n";
  }
  std::cout << "A ratio above 1 at any level means the kernel cannot reach "
               "peak flops on that machine;\nthe worst level names the "
               "resource to optimize for (the paper's central diagnostic).\n";
  return 0;
}
