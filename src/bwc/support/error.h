// Error handling primitives for the bwc library.
//
// The library reports precondition violations and invariant failures by
// throwing bwc::Error. BWC_CHECK is always on; BWC_ASSERT compiles away in
// NDEBUG builds and guards internal invariants only.
#pragma once

#include <stdexcept>
#include <string>

namespace bwc {

/// Exception type thrown for all bwc error conditions.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void fail_check(const char* expr, const char* file, int line,
                             const std::string& message);
}  // namespace detail

}  // namespace bwc

/// Check a precondition; throws bwc::Error with location info on failure.
/// Usage: BWC_CHECK(n > 0, "array extent must be positive");
#define BWC_CHECK(expr, message)                                       \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::bwc::detail::fail_check(#expr, __FILE__, __LINE__, (message)); \
    }                                                                  \
  } while (false)

/// Internal invariant check; disabled when NDEBUG is defined.
#ifdef NDEBUG
#define BWC_ASSERT(expr, message) \
  do {                            \
  } while (false)
#else
#define BWC_ASSERT(expr, message) BWC_CHECK(expr, message)
#endif
