// Minimal CSV emission for exporting benchmark series (e.g. Figure 3 bars)
// to files a plotting script can consume.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace bwc {

/// Accumulates rows and writes RFC-4180-ish CSV (quotes cells containing
/// commas, quotes or newlines).
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  std::size_t row_count() const { return rows_.size(); }

  void write(std::ostream& os) const;
  std::string str() const;
  /// Write to a file path; throws bwc::Error when the file cannot be opened.
  void write_file(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Escape a single CSV cell.
std::string csv_escape(const std::string& cell);

}  // namespace bwc
