#include "bwc/support/csv.h"

#include <fstream>
#include <sstream>

#include "bwc/support/error.h"

namespace bwc {

std::string csv_escape(const std::string& cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  BWC_CHECK(!header_.empty(), "CSV header must not be empty");
}

void CsvWriter::add_row(std::vector<std::string> row) {
  BWC_CHECK(row.size() == header_.size(),
            "CSV row width must match header width");
  rows_.push_back(std::move(row));
}

void CsvWriter::write(std::ostream& os) const {
  auto emit = [&os](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) os << ',';
      os << csv_escape(cells[i]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
}

std::string CsvWriter::str() const {
  std::ostringstream os;
  write(os);
  return os.str();
}

void CsvWriter::write_file(const std::string& path) const {
  std::ofstream f(path);
  BWC_CHECK(f.good(), "cannot open CSV output file: " + path);
  write(f);
}

}  // namespace bwc
