#include "bwc/support/stats.h"

#include <algorithm>
#include <cmath>

#include "bwc/support/error.h"

namespace bwc {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

Summary summarize(std::span<const double> xs) {
  Summary s;
  if (xs.empty()) return s;
  RunningStats rs;
  for (double x : xs) rs.add(x);
  s.count = rs.count();
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = rs.min();
  s.max = rs.max();
  s.median = median(xs);
  return s;
}

double median(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  if (n % 2 == 1) return v[n / 2];
  return 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

double geometric_mean(std::span<const double> xs) {
  BWC_CHECK(!xs.empty(), "geometric_mean of empty sample");
  double log_sum = 0.0;
  for (double x : xs) {
    BWC_CHECK(x > 0.0, "geometric_mean requires positive samples");
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double relative_spread(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const auto [lo, hi] = std::minmax_element(xs.begin(), xs.end());
  BWC_CHECK(*lo > 0.0, "relative_spread requires positive samples");
  return (*hi - *lo) / *lo;
}

}  // namespace bwc
