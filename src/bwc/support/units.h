// Unit constants and conversions shared across the library.
//
// Bandwidths are expressed in MB/s (10^6 bytes per second, matching STREAM
// and the paper's "300 MB/s" figures); compute rates in MFLOPS (10^6 flops
// per second). Times are in seconds.
#pragma once

#include <cstdint>

namespace bwc {

inline constexpr double kMega = 1.0e6;

inline constexpr std::uint64_t kKiB = 1024;
inline constexpr std::uint64_t kMiB = 1024 * kKiB;

/// Element size of the double-precision data all paper workloads use.
inline constexpr std::uint64_t kDoubleBytes = 8;

/// Convert bytes and seconds to MB/s.
inline double to_mb_per_s(double bytes, double seconds) {
  return bytes / kMega / seconds;
}

/// Convert a flop count and seconds to MFLOPS.
inline double to_mflops(double flops, double seconds) {
  return flops / kMega / seconds;
}

}  // namespace bwc
