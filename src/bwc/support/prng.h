// Deterministic pseudo-random number generation.
//
// All randomized components of bwc (synthetic workloads, random graph
// generators, property tests) draw from this PRNG so that every run is
// reproducible from a seed. The generator is xoshiro256**, seeded through
// splitmix64 as recommended by its authors.
#pragma once

#include <cstdint>
#include <cstddef>

namespace bwc {

/// splitmix64 step; used to expand a single seed into generator state.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// xoshiro256** deterministic PRNG. Satisfies UniformRandomBitGenerator.
class Prng {
 public:
  using result_type = std::uint64_t;

  explicit Prng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    std::uint64_t sm = seed;
    for (auto& w : state_) w = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform(std::uint64_t n) {
    // Lemire-style rejection-free enough for test/workload use.
    return (*this)() % n;
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_in(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    uniform(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double uniform_double() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p) { return uniform_double() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

}  // namespace bwc
