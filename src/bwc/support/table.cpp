#include "bwc/support/table.h"

#include <algorithm>
#include <cctype>
#include <iomanip>
#include <sstream>

#include "bwc/support/error.h"

namespace bwc {

namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  bool digit_seen = false;
  for (char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digit_seen = true;
    } else if (c != '.' && c != '-' && c != '+' && c != '%' && c != 'e' &&
               c != 'x') {
      return false;
    }
  }
  return digit_seen;
}

}  // namespace

void TextTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  BWC_CHECK(!row.empty(), "table row must have at least one cell");
  rows_.push_back(std::move(row));
}

void TextTable::add_rule() { rows_.emplace_back(); }

std::string TextTable::render() const {
  std::vector<std::size_t> widths;
  auto grow = [&widths](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());
  };
  if (!header_.empty()) grow(header_);
  for (const auto& r : rows_)
    if (!r.empty()) grow(r);

  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 3;
  if (total >= 3) total -= 3;

  std::ostringstream os;
  if (!title_.empty()) os << title_ << "\n";

  auto emit_rule = [&] { os << std::string(total, '-') << "\n"; };
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      const std::size_t w = widths[i];
      const bool right = i > 0 && looks_numeric(row[i]);
      if (i > 0) os << "   ";
      if (right) {
        os << std::string(w - row[i].size(), ' ') << row[i];
      } else {
        os << row[i];
        if (i + 1 < row.size()) os << std::string(w - row[i].size(), ' ');
      }
    }
    os << "\n";
  };

  if (!header_.empty()) {
    emit_row(header_);
    emit_rule();
  }
  for (const auto& r : rows_) {
    if (r.empty()) {
      emit_rule();
    } else {
      emit_row(r);
    }
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& t) {
  return os << t.render();
}

std::string fmt_fixed(double v, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << v;
  return os.str();
}

std::string fmt_bytes(double bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  int u = 0;
  while (bytes >= 1024.0 && u < 4) {
    bytes /= 1024.0;
    ++u;
  }
  std::ostringstream os;
  if (u == 0) {
    os << static_cast<long long>(bytes) << " B";
  } else {
    os << std::fixed << std::setprecision(1) << bytes << " " << units[u];
  }
  return os.str();
}

std::string fmt_bandwidth(double mb_per_s) {
  return fmt_fixed(mb_per_s, 1) + " MB/s";
}

}  // namespace bwc
