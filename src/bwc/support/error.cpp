#include "bwc/support/error.h"

#include <sstream>

namespace bwc::detail {

void fail_check(const char* expr, const char* file, int line,
                const std::string& message) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed: (" << expr << ") " << message;
  throw Error(os.str());
}

}  // namespace bwc::detail
