// Small descriptive-statistics helpers used by benchmarks and reports.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace bwc {

/// Streaming accumulator for count/mean/variance/min/max (Welford's method).
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Five-number-style summary of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double median = 0.0;
  double max = 0.0;
};

/// Summarize a sample. Copies and sorts internally; empty input allowed.
Summary summarize(std::span<const double> xs);

/// Median of a sample (empty input returns 0).
double median(std::span<const double> xs);

/// Geometric mean; requires all elements strictly positive (else throws).
double geometric_mean(std::span<const double> xs);

/// Relative spread (max-min)/min of a sample; 0 for fewer than two samples.
/// Used to reproduce the paper's "difference is within 20%" claim of Fig. 3.
double relative_spread(std::span<const double> xs);

}  // namespace bwc
