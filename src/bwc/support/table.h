// ASCII table rendering for paper-style figures.
//
// Benchmarks print the same rows/series the paper reports; TextTable keeps
// that output aligned and stable so EXPERIMENTS.md can quote it verbatim.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace bwc {

/// Column-aligned ASCII table with an optional title and header row.
///
/// Usage:
///   TextTable t("Figure 1. Program and machine balance");
///   t.set_header({"Program", "L1-Reg", "L2-L1", "Mem-L2"});
///   t.add_row({"convolution", "6.4", "5.1", "5.2"});
///   std::cout << t.render();
class TextTable {
 public:
  TextTable() = default;
  explicit TextTable(std::string title) : title_(std::move(title)) {}

  void set_title(std::string title) { title_ = std::move(title); }
  void set_header(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);
  /// Insert a horizontal rule before the next added row.
  void add_rule();

  std::size_t row_count() const { return rows_.size(); }

  /// Render the table; every cell right-padded, numeric-looking cells
  /// right-aligned, first column left-aligned.
  std::string render() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty vector == rule
};

std::ostream& operator<<(std::ostream& os, const TextTable& t);

/// Format a double with `decimals` fixed digits, e.g. fmt_fixed(3.14159,2)
/// == "3.14".
std::string fmt_fixed(double v, int decimals);

/// Format bytes as a human-readable quantity ("1.5 MB", "32 KB", "17 B").
std::string fmt_bytes(double bytes);

/// Format a bandwidth in MB/s with one decimal ("312.5 MB/s").
std::string fmt_bandwidth(double mb_per_s);

}  // namespace bwc
