#include "bwc/verify/structure.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "bwc/verify/interval.h"

namespace bwc::verify {

namespace {

using Range = Interval;

class StructureChecker {
 public:
  StructureChecker(const ir::Program& program, Report* report)
      : program_(program), report_(report) {}

  void run() {
    check_declarations();
    for (std::size_t i = 0; i < program_.top().size(); ++i) {
      top_index_ = static_cast<int>(i);
      walk(*program_.top()[i]);
    }
    check_outputs();
  }

 private:
  void check_declarations() {
    for (const auto& a : program_.arrays()) {
      if (a.name.empty()) report_->error("array-unnamed", "array without a name");
      if (a.extents.empty()) {
        report_->error("array-rank-zero",
                       "array '" + a.name + "' declared with no extents");
      }
      for (std::size_t d = 0; d < a.extents.size(); ++d) {
        if (a.extents[d] <= 0) {
          report_->error("array-extent-nonpositive",
                         "array '" + a.name + "' dim " + std::to_string(d) +
                             " has non-positive extent " +
                             std::to_string(a.extents[d]));
        }
      }
      if (a.elem_bytes == 0) {
        report_->error("array-elem-bytes-zero",
                       "array '" + a.name + "' has zero element size");
      }
      check_layout(a);
    }
    check_interleave_groups();
  }

  void check_layout(const ir::ArrayDecl& a) {
    const std::size_t rank = a.extents.size();
    bool order_ok = true;
    if (!a.layout.order.empty()) {
      if (a.layout.order.size() != rank) {
        order_ok = false;
      } else {
        std::vector<bool> seen(rank, false);
        for (int d : a.layout.order) {
          if (d < 0 || static_cast<std::size_t>(d) >= rank ||
              seen[static_cast<std::size_t>(d)]) {
            order_ok = false;
            break;
          }
          seen[static_cast<std::size_t>(d)] = true;
        }
      }
      if (!order_ok) {
        report_->error("layout-order-invalid",
                       "array '" + a.name +
                           "' layout order is not a permutation of its " +
                           std::to_string(rank) + " dimension(s)");
      }
    }
    if (!a.layout.pad.empty()) {
      if (a.layout.pad.size() != rank) {
        report_->error("layout-pad-arity",
                       "array '" + a.name + "' layout pad has " +
                           std::to_string(a.layout.pad.size()) +
                           " entries for rank " + std::to_string(rank));
      } else {
        for (std::int64_t pad : a.layout.pad) {
          if (pad < 0) {
            report_->error("layout-pad-negative",
                           "array '" + a.name +
                               "' layout pad entry is negative");
            break;
          }
        }
      }
    }
  }

  /// Interleaved members must agree on element size and padded slot count
  /// (their elements alternate in one allocation), and a group of one is
  /// almost certainly a transform bug -- a lone member pays the stretched
  /// addr_scale with nobody to share lines with.
  void check_interleave_groups() {
    std::vector<int> groups;
    for (const auto& a : program_.arrays()) {
      if (a.layout.group >= 0 &&
          std::find(groups.begin(), groups.end(), a.layout.group) ==
              groups.end())
        groups.push_back(a.layout.group);
    }
    for (int group : groups) {
      const std::vector<ir::ArrayId> members =
          program_.interleave_group(group);
      if (members.size() < 2) {
        report_->error("layout-group-singleton",
                       "interleave group " + std::to_string(group) +
                           " has a single member");
        continue;
      }
      const ir::ArrayDecl& first = program_.array(members[0]);
      std::int64_t slots = -1;
      for (ir::ArrayId id : members) {
        const ir::ArrayDecl& m = program_.array(id);
        if (m.elem_bytes != first.elem_bytes) {
          report_->error("layout-group-elem-bytes",
                         "interleave group " + std::to_string(group) +
                             " members disagree on element size");
          break;
        }
        // Skip members whose own layout is malformed (reported above);
        // padded_element_count() throws on them.
        std::int64_t count = -1;
        try {
          count = m.padded_element_count();
        } catch (const std::exception&) {
          continue;
        }
        if (slots < 0) slots = count;
        if (count != slots) {
          report_->error("layout-group-shape",
                         "interleave group " + std::to_string(group) +
                             " members disagree on padded element count");
          break;
        }
      }
    }
  }

  void check_outputs() {
    for (const ir::ArrayId a : program_.output_arrays()) {
      if (a < 0 || a >= program_.array_count()) {
        report_->error("output-array-invalid",
                       "output array id " + std::to_string(a) +
                           " is not a declared array slot");
      }
    }
    for (const auto& s : program_.output_scalars()) {
      if (!program_.has_scalar(s)) {
        report_->error("output-scalar-undeclared",
                       "output scalar '" + s + "' is not declared");
      }
    }
  }

  std::string at() const { return " (at stmt #" + std::to_string(top_index_) + ")"; }

  /// Range of an affine over the current loop environment; false when a
  /// variable is unbound.
  bool affine_range(const ir::Affine& a, Range* out) {
    std::int64_t lo = a.constant_term();
    std::int64_t hi = a.constant_term();
    for (const auto& [name, coeff] : a.terms()) {
      const Range* r = nullptr;
      for (auto it = env_.rbegin(); it != env_.rend(); ++it) {
        if (it->first == name) {
          r = &it->second;
          break;
        }
      }
      if (r == nullptr) {
        report_->error("unbound-loop-var",
                       "affine expression '" + a.str() +
                           "' uses loop variable '" + name +
                           "' outside any enclosing loop" + at());
        return false;
      }
      if (coeff >= 0) {
        lo += coeff * r->lo;
        hi += coeff * r->hi;
      } else {
        lo += coeff * r->hi;
        hi += coeff * r->lo;
      }
    }
    *out = {lo, hi};
    return true;
  }

  void check_array_ref(ir::ArrayId array,
                       const std::vector<ir::Affine>& subs) {
    if (array < 0 || array >= program_.array_count()) {
      report_->error("array-slot-invalid",
                     "reference to array slot " + std::to_string(array) +
                         ", program declares " +
                         std::to_string(program_.array_count()) + at());
      return;
    }
    const ir::ArrayDecl& decl = program_.array(array);
    if (subs.size() != decl.extents.size()) {
      report_->error("subscript-arity",
                     "array '" + decl.name + "' referenced with " +
                         std::to_string(subs.size()) +
                         " subscript(s), declared rank " +
                         std::to_string(decl.extents.size()) + at());
      return;
    }
    for (std::size_t d = 0; d < subs.size(); ++d) {
      Range r;
      if (!affine_range(subs[d], &r)) continue;
      if (r.lo < 1 || r.hi > decl.extents[d]) {
        report_->error(
            "subscript-out-of-bounds",
            "array '" + decl.name + "' dim " + std::to_string(d) +
                " subscript '" + subs[d].str() + "' ranges over [" +
                std::to_string(r.lo) + ", " + std::to_string(r.hi) +
                "], outside the declared [1, " +
                std::to_string(decl.extents[d]) + "]" + at());
      }
    }
  }

  void check_expr(const ir::Expr& e) {
    switch (e.kind) {
      case ir::ExprKind::kConst:
        break;
      case ir::ExprKind::kScalarRef:
        if (!program_.has_scalar(e.scalar)) {
          report_->error("scalar-undeclared",
                         "read of undeclared scalar '" + e.scalar + "'" + at());
        }
        break;
      case ir::ExprKind::kLoopVar: {
        bool bound = false;
        for (const auto& [name, r] : env_) {
          (void)r;
          if (name == e.loop_var) bound = true;
        }
        if (!bound) {
          report_->error("unbound-loop-var",
                         "loop-variable expression '" + e.loop_var +
                             "' outside any enclosing loop" + at());
        }
        break;
      }
      case ir::ExprKind::kArrayRef:
        check_array_ref(e.array, e.subscripts);
        break;
      case ir::ExprKind::kBinary:
        if (e.operands.size() != 2) {
          report_->error("binary-arity",
                         "binary expression with " +
                             std::to_string(e.operands.size()) +
                             " operand(s)" + at());
        }
        break;
      case ir::ExprKind::kCall:
        if (e.call_flops < 0) {
          report_->error("call-flops-negative",
                         "intrinsic '" + e.callee +
                             "' with negative flop cost" + at());
        }
        break;
      case ir::ExprKind::kInput:
        if (e.input_extents.size() != e.subscripts.size()) {
          report_->error("input-extent-arity",
                         "input stream " + std::to_string(e.input_key) +
                             " has " + std::to_string(e.subscripts.size()) +
                             " subscript(s) but " +
                             std::to_string(e.input_extents.size()) +
                             " extent(s)" + at());
        }
        for (const auto& sub : e.subscripts) {
          Range r;
          affine_range(sub, &r);  // reports unbound vars
        }
        break;
    }
    for (const auto& o : e.operands) {
      if (o == nullptr) {
        report_->error("operand-null", "null expression operand" + at());
        continue;
      }
      check_expr(*o);
    }
  }

  void walk(const ir::Stmt& s) {
    switch (s.kind) {
      case ir::StmtKind::kArrayAssign:
        check_array_ref(s.lhs_array, s.lhs_subscripts);
        if (s.rhs == nullptr) {
          report_->error("rhs-null", "array assignment without rhs" + at());
        } else {
          check_expr(*s.rhs);
        }
        return;
      case ir::StmtKind::kScalarAssign:
        if (!program_.has_scalar(s.lhs_scalar)) {
          report_->error("scalar-undeclared",
                         "assignment to undeclared scalar '" + s.lhs_scalar +
                             "'" + at());
        }
        if (s.rhs == nullptr) {
          report_->error("rhs-null", "scalar assignment without rhs" + at());
        } else {
          check_expr(*s.rhs);
        }
        return;
      case ir::StmtKind::kIf: {
        Range r;
        affine_range(s.cmp_lhs, &r);
        affine_range(s.cmp_rhs, &r);
        const ir::Affine diff = s.cmp_lhs - s.cmp_rhs;
        if (diff.is_constant()) {
          // Statically decided: the untaken branch never executes, so its
          // subscripts have no instances to fault on.
          const auto& taken = ir::evaluate_cmp(s.cmp, diff.constant_term(), 0)
                                  ? s.then_body
                                  : s.else_body;
          for (const auto& inner : taken) walk(*inner);
          return;
        }
        Range* range = nullptr;
        const std::optional<std::string> v = diff.single_var();
        if (v) {
          for (auto it = env_.rbegin(); it != env_.rend(); ++it) {
            if (it->first == *v) {
              range = &it->second;
              break;
            }
          }
        }
        if (range != nullptr) {
          // Single-variable guard: each branch only runs on the
          // sub-intervals where its condition holds, so subscripts inside
          // are validated against the refined range. This is what makes
          // fused programs -- whose bodies sit under outer-union,
          // alignment and promotion guards -- validate exactly.
          std::vector<Interval> then_iv, else_iv;
          split_guard(s.cmp, diff.coeff(*v), diff.constant_term(), *range,
                      &then_iv, &else_iv);
          const Range saved = *range;
          for (const Interval& iv : then_iv) {
            *range = iv;
            for (const auto& inner : s.then_body) walk(*inner);
          }
          for (const Interval& iv : else_iv) {
            *range = iv;
            for (const auto& inner : s.else_body) walk(*inner);
          }
          *range = saved;
          return;
        }
        for (const auto& inner : s.then_body) walk(*inner);
        for (const auto& inner : s.else_body) walk(*inner);
        return;
      }
      case ir::StmtKind::kLoop: {
        if (s.loop == nullptr) {
          report_->error("loop-null", "loop statement without loop data" + at());
          return;
        }
        const ir::Loop& loop = *s.loop;
        if (loop.var.empty()) {
          report_->error("loop-var-unnamed", "loop without a variable" + at());
        }
        if (loop.trip_count() == 0) {
          // An empty loop's body never executes; nothing to validate
          // against (subscripts over an empty range have no instances).
          report_->info("loop-empty",
                        "loop over '" + loop.var + "' has zero iterations" +
                            at());
          return;
        }
        for (const auto& [name, r] : env_) {
          (void)r;
          if (name == loop.var) {
            report_->info("loop-var-shadowed",
                          "loop variable '" + loop.var +
                              "' shadows an enclosing loop" + at());
          }
        }
        env_.emplace_back(loop.var, Range{loop.lower, loop.upper});
        for (const auto& inner : loop.body) walk(*inner);
        env_.pop_back();
        return;
      }
    }
  }

  const ir::Program& program_;
  Report* report_;
  std::vector<std::pair<std::string, Range>> env_;
  int top_index_ = -1;
};

}  // namespace

Report validate_structure(const ir::Program& program) {
  Report report;
  report.check = "structure";
  StructureChecker checker(program, &report);
  checker.run();
  return report;
}

}  // namespace bwc::verify
