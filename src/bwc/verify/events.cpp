#include "bwc/verify/events.h"

#include <algorithm>
#include <cstring>
#include <functional>
#include <sstream>

#include "bwc/support/error.h"

namespace bwc::verify {

namespace {

// Location encoding: bit 63 tags scalars; arrays use (slot << 40) | element.
constexpr std::uint64_t kScalarTag = 1ull << 63;
constexpr int kElementBits = 40;
constexpr std::uint64_t kElementMask = (1ull << kElementBits) - 1;

std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t v) {
  // splitmix64-style mixing.
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ull + v;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t hash_double(double d) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

}  // namespace

int LocationSpace::array_slot(const std::string& name,
                              std::uint64_t elem_bytes) {
  const auto it = array_slots_.find(name);
  if (it != array_slots_.end()) return it->second;
  const int slot = static_cast<int>(array_names_.size());
  array_slots_.emplace(name, slot);
  array_names_.push_back(name);
  array_elem_bytes_.push_back(elem_bytes);
  return slot;
}

int LocationSpace::scalar_slot(const std::string& name) {
  const auto it = scalar_slots_.find(name);
  if (it != scalar_slots_.end()) return it->second;
  const int slot = static_cast<int>(scalar_names_.size());
  scalar_slots_.emplace(name, slot);
  scalar_names_.push_back(name);
  return slot;
}

Location LocationSpace::array_element(int slot, std::int64_t element) const {
  return (static_cast<std::uint64_t>(slot) << kElementBits) |
         (static_cast<std::uint64_t>(element) & kElementMask);
}

Location LocationSpace::scalar(int slot) const {
  return kScalarTag | static_cast<std::uint64_t>(slot);
}

bool LocationSpace::is_scalar(Location loc) const {
  return (loc & kScalarTag) != 0;
}

int LocationSpace::slot_of(Location loc) const {
  if (is_scalar(loc)) return static_cast<int>(loc & ~kScalarTag);
  return static_cast<int>(loc >> kElementBits);
}

std::int64_t LocationSpace::element_of(Location loc) const {
  return static_cast<std::int64_t>(loc & kElementMask);
}

const std::string& LocationSpace::array_name(int slot) const {
  return array_names_[static_cast<std::size_t>(slot)];
}

const std::string& LocationSpace::scalar_name(int slot) const {
  return scalar_names_[static_cast<std::size_t>(slot)];
}

std::uint64_t LocationSpace::array_elem_bytes(int slot) const {
  return array_elem_bytes_[static_cast<std::size_t>(slot)];
}

std::string LocationSpace::describe(Location loc) const {
  if (is_scalar(loc)) return scalar_name(slot_of(loc));
  std::ostringstream os;
  os << array_name(slot_of(loc)) << "[+" << element_of(loc) << "]";
  return os.str();
}

std::string Instance::describe() const {
  std::ostringstream os;
  os << "stmt #" << top_index;
  if (!iters.empty()) {
    os << " (";
    for (std::size_t d = 0; d < iters.size(); ++d) {
      if (d > 0) os << ", ";
      os << "iter" << d << "=" << iters[d];
    }
    os << ")";
  }
  return os.str();
}

namespace {

/// Execution-order walker. Loop variables are kept on an explicit stack of
/// (name, value) bindings; affine expressions and guards are evaluated
/// exactly over those bindings.
class Tracer {
 public:
  Tracer(const ir::Program& program, LocationSpace& space,
         std::uint64_t max_events, Report* report, EventTrace* out)
      : program_(program),
        space_(space),
        max_events_(max_events),
        report_(report),
        out_(out) {
    array_slot_of_id_.resize(static_cast<std::size_t>(program.array_count()));
    for (int a = 0; a < program.array_count(); ++a) {
      const ir::ArrayDecl& decl = program.array(a);
      array_slot_of_id_[static_cast<std::size_t>(a)] =
          space.array_slot(decl.name, decl.elem_bytes);
    }
  }

  void run() {
    for (std::size_t i = 0; i < program_.top().size(); ++i) {
      top_index_ = static_cast<std::int32_t>(i);
      walk(*program_.top()[i]);
      if (out_->truncated) return;
    }
  }

 private:
  std::int64_t eval_affine(const ir::Affine& a) {
    std::int64_t v = a.constant_term();
    for (const auto& [name, coeff] : a.terms()) {
      bool found = false;
      for (auto it = env_.rbegin(); it != env_.rend(); ++it) {
        if (it->first == name) {
          v += coeff * it->second;
          found = true;
          break;
        }
      }
      if (!found) {
        fail("unbound-loop-var",
             "affine expression uses loop variable '" + name +
                 "' outside any enclosing loop");
        return 0;
      }
    }
    return v;
  }

  /// Resolve an array reference to a location; emits a diagnostic and
  /// truncates on out-of-bounds (the structural validator reports the same
  /// condition statically; this is the dynamic backstop).
  Location locate(ir::ArrayId array, const std::vector<ir::Affine>& subs) {
    const ir::ArrayDecl& decl = program_.array(array);
    if (subs.size() != decl.extents.size()) {
      fail("subscript-arity",
           "array '" + decl.name + "' referenced with " +
               std::to_string(subs.size()) + " subscript(s), declared rank " +
               std::to_string(decl.extents.size()));
      return 0;
    }
    std::int64_t linear = 0;
    std::int64_t stride = 1;
    for (std::size_t d = 0; d < subs.size(); ++d) {
      const std::int64_t idx = eval_affine(subs[d]);
      if (idx < 1 || idx > decl.extents[d]) {
        fail("subscript-out-of-bounds",
             "array '" + decl.name + "' dim " + std::to_string(d) +
                 " subscript " + std::to_string(idx) + " outside [1, " +
                 std::to_string(decl.extents[d]) + "]");
        return 0;
      }
      linear += (idx - 1) * stride;
      stride *= decl.extents[d];
    }
    return space_.array_element(array_slot_of_id_[static_cast<std::size_t>(array)],
                                linear);
  }

  /// Evaluate a numeric subtree to its concrete value when it contains only
  /// constants, loop variables and arithmetic over them. Such subtrees fold
  /// to one value in the fingerprint, which makes the hash invariant under
  /// the substitutions the transforms perform (i -> i - s turns a loop-var
  /// use into `i - s` arithmetic that folds back to the same number).
  bool fold_numeric(const ir::Expr& e, double* value) {
    switch (e.kind) {
      case ir::ExprKind::kConst:
        *value = e.value;
        return true;
      case ir::ExprKind::kLoopVar: {
        for (auto it = env_.rbegin(); it != env_.rend(); ++it) {
          if (it->first == e.loop_var) {
            *value = static_cast<double>(it->second);
            return true;
          }
        }
        return false;
      }
      case ir::ExprKind::kBinary: {
        double a = 0.0, b = 0.0;
        if (e.operands.size() != 2) return false;
        if (!fold_numeric(*e.operands[0], &a) ||
            !fold_numeric(*e.operands[1], &b))
          return false;
        switch (e.op) {
          case ir::BinOp::kAdd: *value = a + b; break;
          case ir::BinOp::kSub: *value = a - b; break;
          case ir::BinOp::kMul: *value = a * b; break;
          case ir::BinOp::kDiv: *value = a / b; break;
          case ir::BinOp::kMin: *value = std::min(a, b); break;
          case ir::BinOp::kMax: *value = std::max(a, b); break;
        }
        return true;
      }
      default:
        return false;
    }
  }

  /// Fingerprint the rhs and collect its reads.
  std::uint64_t walk_expr(const ir::Expr& e, std::vector<Location>* reads) {
    double folded = 0.0;
    if (fold_numeric(e, &folded))
      return hash_combine(0x11, hash_double(folded));
    switch (e.kind) {
      case ir::ExprKind::kConst:
      case ir::ExprKind::kLoopVar:
        return 0;  // handled by fold_numeric
      case ir::ExprKind::kScalarRef: {
        const Location loc = space_.scalar(space_.scalar_slot(e.scalar));
        reads->push_back(loc);
        return hash_combine(0x22, loc);
      }
      case ir::ExprKind::kArrayRef: {
        const Location loc = locate(e.array, e.subscripts);
        reads->push_back(loc);
        return hash_combine(0x33, loc);
      }
      case ir::ExprKind::kInput: {
        // Deterministic external value: identified by (key, linear index in
        // the original stream extents). Not a memory access.
        std::int64_t linear = 0;
        std::int64_t stride = 1;
        for (std::size_t d = 0; d < e.subscripts.size(); ++d) {
          linear += (eval_affine(e.subscripts[d]) - 1) * stride;
          if (d < e.input_extents.size()) stride *= e.input_extents[d];
        }
        return hash_combine(
            0x44, hash_combine(static_cast<std::uint64_t>(e.input_key),
                               static_cast<std::uint64_t>(linear)));
      }
      case ir::ExprKind::kBinary: {
        std::uint64_t h = hash_combine(0x55, static_cast<std::uint64_t>(e.op));
        for (const auto& op : e.operands)
          h = hash_combine(h, walk_expr(*op, reads));
        return h;
      }
      case ir::ExprKind::kCall: {
        std::uint64_t h = hash_combine(0x66, std::hash<std::string>{}(e.callee));
        for (const auto& op : e.operands)
          h = hash_combine(h, walk_expr(*op, reads));
        return h;
      }
    }
    return 0;
  }

  /// `s = s op expr` with s not otherwise in expr?
  bool reduction_shape(const ir::Stmt& s, ir::BinOp* op) const {
    if (s.kind != ir::StmtKind::kScalarAssign || !s.rhs) return false;
    const ir::Expr& rhs = *s.rhs;
    if (rhs.kind != ir::ExprKind::kBinary || rhs.operands.size() != 2)
      return false;
    if (rhs.op != ir::BinOp::kAdd && rhs.op != ir::BinOp::kMin &&
        rhs.op != ir::BinOp::kMax)
      return false;
    const ir::Expr* self = nullptr;
    const ir::Expr* other = nullptr;
    for (const auto& o : rhs.operands) {
      if (o->kind == ir::ExprKind::kScalarRef && o->scalar == s.lhs_scalar &&
          self == nullptr) {
        self = o.get();
      } else {
        other = o.get();
      }
    }
    if (self == nullptr || other == nullptr) return false;
    // s must not appear inside the other operand.
    bool reappears = false;
    std::function<void(const ir::Expr&)> scan = [&](const ir::Expr& e) {
      if (e.kind == ir::ExprKind::kScalarRef && e.scalar == s.lhs_scalar)
        reappears = true;
      for (const auto& o : e.operands) scan(*o);
    };
    scan(*other);
    if (reappears) return false;
    *op = rhs.op;
    return true;
  }

  void emit(const ir::Stmt& s) {
    Instance inst;
    inst.top_index = top_index_;
    inst.outer_iter = env_.empty() ? 0 : env_.front().second;
    inst.iters.reserve(env_.size());
    for (const auto& [name, value] : env_) inst.iters.push_back(value);

    inst.rhs_hash = s.rhs ? walk_expr(*s.rhs, &inst.reads) : 0;
    if (s.kind == ir::StmtKind::kArrayAssign) {
      inst.write = locate(s.lhs_array, s.lhs_subscripts);
    } else {
      inst.write = space_.scalar(space_.scalar_slot(s.lhs_scalar));
      inst.reduction = reduction_shape(s, &inst.reduction_op);
    }
    if (out_->truncated) return;

    std::sort(inst.reads.begin(), inst.reads.end());
    inst.reads.erase(std::unique(inst.reads.begin(), inst.reads.end()),
                     inst.reads.end());
    out_->event_count += 1 + inst.reads.size();
    out_->instances.push_back(std::move(inst));
    if (out_->event_count > max_events_) {
      out_->truncated = true;
    }
  }

  void walk(const ir::Stmt& s) {
    if (out_->truncated) return;
    switch (s.kind) {
      case ir::StmtKind::kArrayAssign:
      case ir::StmtKind::kScalarAssign:
        emit(s);
        return;
      case ir::StmtKind::kIf: {
        const bool taken = ir::evaluate_cmp(s.cmp, eval_affine(s.cmp_lhs),
                                            eval_affine(s.cmp_rhs));
        const ir::StmtList& body = taken ? s.then_body : s.else_body;
        for (const auto& inner : body) {
          walk(*inner);
          if (out_->truncated) return;
        }
        return;
      }
      case ir::StmtKind::kLoop: {
        const ir::Loop& loop = *s.loop;
        env_.emplace_back(loop.var, 0);
        for (std::int64_t v = loop.lower; v <= loop.upper; ++v) {
          env_.back().second = v;
          for (const auto& inner : loop.body) {
            walk(*inner);
            if (out_->truncated) {
              env_.pop_back();
              return;
            }
          }
        }
        env_.pop_back();
        return;
      }
    }
  }

  void fail(const std::string& code, const std::string& message) {
    if (report_ != nullptr) {
      report_->error(code, message + " (at stmt #" +
                               std::to_string(top_index_) + ")");
    }
    out_->truncated = true;
  }

  const ir::Program& program_;
  LocationSpace& space_;
  std::uint64_t max_events_;
  Report* report_;
  EventTrace* out_;
  std::vector<std::pair<std::string, std::int64_t>> env_;
  std::vector<int> array_slot_of_id_;
  std::int32_t top_index_ = -1;
};

/// Count array/scalar accesses of one statement (assignments only).
std::uint64_t count_accesses(const ir::Expr& e) {
  std::uint64_t n = 0;
  if (e.kind == ir::ExprKind::kScalarRef || e.kind == ir::ExprKind::kArrayRef)
    ++n;
  for (const auto& o : e.operands) n += count_accesses(*o);
  return n;
}

std::uint64_t estimate_stmt(const ir::Stmt& s, std::uint64_t multiplier) {
  switch (s.kind) {
    case ir::StmtKind::kArrayAssign:
    case ir::StmtKind::kScalarAssign:
      return multiplier * (1 + (s.rhs ? count_accesses(*s.rhs) : 0));
    case ir::StmtKind::kIf: {
      std::uint64_t n = 0;
      for (const auto& inner : s.then_body) n += estimate_stmt(*inner, multiplier);
      std::uint64_t m = 0;
      for (const auto& inner : s.else_body) m += estimate_stmt(*inner, multiplier);
      return std::max(n, m);
    }
    case ir::StmtKind::kLoop: {
      const std::uint64_t trips =
          static_cast<std::uint64_t>(std::max<std::int64_t>(
              0, s.loop->trip_count()));
      std::uint64_t n = 0;
      for (const auto& inner : s.loop->body)
        n += estimate_stmt(*inner, multiplier * trips);
      return n;
    }
  }
  return 0;
}

}  // namespace

std::uint64_t estimate_events(const ir::Program& program) {
  std::uint64_t n = 0;
  for (const auto& s : program.top()) n += estimate_stmt(*s, 1);
  return n;
}

EventTrace trace_program(const ir::Program& program, LocationSpace& space,
                         std::uint64_t max_events, Report* report) {
  EventTrace trace;
  Tracer tracer(program, space, max_events, report, &trace);
  tracer.run();
  return trace;
}

}  // namespace bwc::verify
