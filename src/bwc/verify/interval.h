// Integer interval arithmetic shared by the static checkers.
//
// Guards in the IR compare two affine expressions; when their difference
// involves a single loop variable, the guard carves that variable's
// interval into the sub-intervals where the branch runs. Both the
// structural validator and the traffic-bound analyzer refine through
// guards this way, which is what makes them exact on fused programs
// (whose bodies sit under outer-union, alignment and promotion guards).
#pragma once

#include <cstdint>
#include <vector>

#include "bwc/ir/stmt.h"

namespace bwc::verify {

/// Closed interval; empty when lo > hi.
struct Interval {
  std::int64_t lo = 0;
  std::int64_t hi = -1;
  bool empty() const { return lo > hi; }
  std::int64_t size() const { return empty() ? 0 : hi - lo + 1; }
};

/// Split an enclosing variable's `range` by the guard `c*v + k OP 0`
/// (c != 0) into the sub-intervals of v where the guard holds
/// (`then_iv`) and fails (`else_iv`). Each output receives zero, one or
/// -- for != / == complements -- two non-empty intervals, all clipped to
/// `range`; their union is exactly `range`.
void split_guard(ir::CmpOp op, std::int64_t c, std::int64_t k, Interval range,
                 std::vector<Interval>* then_iv,
                 std::vector<Interval>* else_iv);

}  // namespace bwc::verify
