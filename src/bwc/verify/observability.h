// Observability certification for the storage passes.
//
// Store elimination and storage reduction do not merely re-schedule work:
// they delete stores and whole arrays. The property to certify is that
// everything deleted was unobservable -- no program output and no later
// memory read ever needed the removed writebacks or the shrunk storage.
// Liveness is re-derived here independently, at element granularity, from
// the concrete event trace of the pre-pass program (the repo's
// analysis/liveness.cpp works at whole-array, whole-statement granularity
// and is exactly the code under suspicion).
//
// validate_store_elimination(pre, post) certifies, for every array whose
// writes disappeared:
//   - the array is not an observable output;
//   - in `pre`, no read of any element observes a write from a *different*
//     top-level statement (the store's value never escapes its loop, so
//     forwarding through a scalar can replace it);
//   - in `post`, the array is never written, and each element is read at
//     most as often as `pre` read its *initial* (pre-first-write) value --
//     every value-observing read must have been forwarded off memory.
//
// validate_storage_reduction(pre, post) certifies, for every array whose
// references disappeared:
//   - the array is not an observable output;
//   - no element's initial contents are observed (a read preceding every
//     write of that element cannot be reproduced by fresh buffers);
//   - replacement storage is sufficient: the peak number of simultaneously
//     live values (produced, still to be read) of all reduced arrays fits
//     in the arrays and scalars the pass introduced. This is a lower-bound
//     argument in the spirit of the traffic bound: a pass that "shrinks" a
//     live array below its peak live set cannot be correct, whatever code
//     it generated.
#pragma once

#include <cstdint>

#include "bwc/ir/program.h"
#include "bwc/verify/diagnostics.h"

namespace bwc::verify {

struct ObservabilityOptions {
  /// Event budget per traced program (see TranslationOptions::max_events).
  std::uint64_t max_events = 2'000'000;
};

Report validate_store_elimination(const ir::Program& pre,
                                  const ir::Program& post,
                                  const ObservabilityOptions& options = {});

Report validate_storage_reduction(const ir::Program& pre,
                                  const ir::Program& post,
                                  const ObservabilityOptions& options = {});

}  // namespace bwc::verify
