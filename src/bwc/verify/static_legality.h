// Static legality certificates for the optimizer's transforms: the
// input-independent analogue of trace-based translation validation.
//
// Each prover re-derives, from the two programs alone, a proof that the
// transformed program computes the same outputs as the original for *every*
// input -- or answers kUnknown, in which case the pass manager falls back
// to the trace validator for the current problem size. The provers share
// the bounded-linear-system machinery of static_dependence.h:
//
//   prove_reschedule        fusion / interchange / distribution: matches
//                           assignment "atoms" bijectively (inferring the
//                           per-loop-level shift/permutation instance map),
//                           then shows every conflicting reference pair
//                           executes in the same order before and after,
//                           enumerating direction classes over the shared
//                           loop levels. Commutative reductions get the
//                           same order exemption the trace validator grants.
//
//   prove_store_elimination writebacks to a dead array forwarded through a
//                           scalar: re-derives single-writer / injective
//                           subscripts / no-later-reads from the IR, and
//                           proves surviving reads never observe an
//                           eliminated write.
//
//   prove_storage_reduction array-to-scalar contraction: every read is
//                           dominated, in the same iteration, by a write
//                           of the identical subscript tuple (live range
//                           provably inside one iteration). Shrinking and
//                           peeling rewrites answer kUnknown by design.
//
// kProven is a certificate valid for all problem sizes the bounds encode;
// kRefuted carries a concrete dependence-reversal witness; kUnknown means
// only that *this* prover lost precision, never that the transform is
// wrong.
#pragma once

#include <string>

#include "bwc/ir/program.h"
#include "bwc/verify/diagnostics.h"
#include "bwc/verify/static_dependence.h"

namespace bwc::verify {

enum class LegalityVerdict { kProven, kRefuted, kUnknown };

const char* legality_verdict_name(LegalityVerdict v);

struct LegalityResult {
  LegalityVerdict verdict = LegalityVerdict::kUnknown;
  /// Short machine-usable reason when not proven (e.g. "atom-match-failed",
  /// "dependence-reversed", "conflict-undecided").
  std::string reason;
  /// Conflicting reference pairs examined / left undecided.
  int pairs_checked = 0;
  int pairs_unknown = 0;

  /// Render as a verify::Report (for VerifyOutcome plumbing): kProven maps
  /// to an ok report, kRefuted to an error diagnostic with `code`.
  Report to_report(const std::string& check, const std::string& code) const;
};

/// Prove that `after` is a pure reschedule of `before`: same assignment
/// instances (bijectively matched modulo per-level iteration shifts and
/// loop-level permutation), every dependence's direction preserved.
LegalityResult prove_reschedule(const ir::Program& before,
                                const ir::Program& after);

/// Prove a store-elimination rewrite (writes to dead arrays forwarded
/// through fresh scalars, reads of the stored value rewritten).
LegalityResult prove_store_elimination(const ir::Program& before,
                                       const ir::Program& after);

/// Prove a storage-reduction rewrite. Only full array-to-scalar
/// contraction is modelled; shrinking/peeling rewrites return kUnknown.
LegalityResult prove_storage_reduction(const ir::Program& before,
                                       const ir::Program& after);

/// Prove a pure layout change (transpose-layout / regroup-arrays /
/// pad-arrays): stripping every ArrayLayout back to the default must make
/// the two programs structurally identical, and every layout `after`
/// declares must be internally valid (well-formed permutation and padding,
/// coherent interleave groups). Layouts only remap simulated addresses --
/// storage stays logical-dense -- so this suffices for value preservation
/// on all inputs.
LegalityResult prove_layout_change(const ir::Program& before,
                                   const ir::Program& after);

}  // namespace bwc::verify
