// Translation validation for scheduling transformations.
//
// Given an (original, transformed) program pair where the transformation
// only re-schedules work -- loop fusion (including shifted, promoted and
// outer-union variants), loop interchange, loop distribution -- this
// validator proves, from scratch and with no input from the optimizer's
// own analyses, that the transformed execution order preserves every
// producer->consumer relation of the original:
//
//  1. Both programs are traced to their exact dynamic statement instances
//     (events.h). Instances are matched across programs by semantic
//     fingerprint (written location, read locations, folded rhs); a
//     scheduling transformation must produce a bijection, so missing or
//     extra instances (a dropped writeback, a duplicated guard body) are
//     rejected outright.
//  2. For every memory location, the write sequence must be identical
//     instance-for-instance (output dependences preserved) and every read
//     must observe the same producing write (flow dependences preserved).
//     Because reads are anchored between their producer and the next
//     write, anti dependences follow.
//  3. Scalars whose every write -- in both programs -- is a matching
//     commutative reduction `s = s op expr` are exempt from write-order
//     matching (fusing reductions interleaves them legally); reads outside
//     the reduction itself must still observe the same *set* of completed
//     updates.
//
// The check is exact, not conservative: it accepts any legal interleaving
// and rejects any instance order that reverses a dependence, with a
// diagnostic naming the violated dependence and the two instances.
#pragma once

#include <cstdint>

#include "bwc/ir/program.h"
#include "bwc/verify/diagnostics.h"

namespace bwc::verify {

struct TranslationOptions {
  /// Budget on access events per traced program; beyond it the check is
  /// reported as skipped (certification requires a complete trace).
  std::uint64_t max_events = 2'000'000;
};

Report validate_translation(const ir::Program& original,
                            const ir::Program& transformed,
                            const TranslationOptions& options = {});

}  // namespace bwc::verify
