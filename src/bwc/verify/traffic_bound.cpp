#include "bwc/verify/traffic_bound.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <utility>

#include "bwc/ir/stmt.h"
#include "bwc/verify/interval.h"

namespace bwc::verify {

namespace {

/// One array reference's static access description.
struct Ref {
  std::vector<Interval> box;  // per-dim subscript value range
  bool boxy = true;           // all coefficients in {0, +-1}: box is exact
  std::int64_t count = 0;     // distinct elements this ref alone touches
};

/// Floor-analysis view of one reference (reads and writes, guarded or
/// not), recorded alongside Ref so compute_traffic_bound's inputs stay
/// untouched. Boxes of guarded refs are over-approximations (the guard
/// may suppress any subset), which is exactly what subtraction from an
/// initial-read claim needs.
struct FRef {
  std::vector<Interval> box;
  std::vector<ir::Affine> subs;
  bool is_write = false;
  bool guarded = false;  // under an unrefinable guard: may not execute
  /// Definitely touches every element of box: unguarded boxes whose dims
  /// each use at most one unit-coefficient variable, no variable shared
  /// between dims.
  bool covers_box = true;
  /// The iteration->element map is injective over the whole enclosing
  /// nest: covers_box conditions plus every in-scope loop variable used.
  bool injective_full = true;
  bool known = true;  // box computed (no unbound subscript variable)
  int top_idx = 0;    // enclosing top-level statement, program order
  int stmt_seq = 0;   // assignment visit order within the walk
};

class Analyzer {
 public:
  explicit Analyzer(const ir::Program& program) : program_(program) {}

  void run() {
    for (const auto& s : program_.top()) {
      walk(*s);
      ++top_idx_;
    }
  }

  std::map<ir::ArrayId, std::vector<Ref>> refs;
  std::map<ir::ArrayId, std::vector<FRef>> floor_refs;
  std::map<ir::ArrayId, int> guarded;
  std::int64_t flops = 0;

 private:
  Interval* find(const std::string& name) {
    for (auto it = env_.rbegin(); it != env_.rend(); ++it) {
      if (it->first == name) return &it->second;
    }
    return nullptr;
  }

  bool range_of(const ir::Affine& a, Interval* out) {
    std::int64_t lo = a.constant_term();
    std::int64_t hi = a.constant_term();
    for (const auto& [name, coeff] : a.terms()) {
      const Interval* r = find(name);
      if (r == nullptr) return false;
      if (coeff >= 0) {
        lo += coeff * r->lo;
        hi += coeff * r->hi;
      } else {
        lo += coeff * r->hi;
        hi += coeff * r->lo;
      }
    }
    *out = {lo, hi};
    return true;
  }

  std::int64_t trip_product() const {
    std::int64_t p = 1;
    for (const auto& [name, iv] : env_) {
      (void)name;
      p *= iv.size();
    }
    return p;
  }

  void record_floor_ref(ir::ArrayId array, const std::vector<ir::Affine>& subs,
                        bool is_write) {
    FRef fr;
    fr.subs = subs;
    fr.is_write = is_write;
    fr.guarded = guard_depth_ > 0;
    fr.top_idx = top_idx_;
    fr.stmt_seq = stmt_seq_;
    std::set<std::string> used;
    for (const auto& sub : subs) {
      Interval r;
      if (!range_of(sub, &r)) {
        fr.known = false;
        break;
      }
      fr.box.push_back(r);
      int dim_vars = 0;
      for (const auto& [name, coeff] : sub.terms()) {
        ++dim_vars;
        if (coeff != 1 && coeff != -1) fr.covers_box = false;
        if (!used.insert(name).second) fr.covers_box = false;
      }
      if (dim_vars > 1) fr.covers_box = false;
    }
    if (!fr.known) fr.box.clear();
    fr.injective_full = fr.covers_box && used.size() == env_.size();
    floor_refs[array].push_back(std::move(fr));
  }

  void record_ref(ir::ArrayId array, const std::vector<ir::Affine>& subs,
                  bool is_write = false) {
    record_floor_ref(array, subs, is_write);
    if (guard_depth_ > 0) {
      ++guarded[array];
      return;
    }
    Ref ref;
    bool injective = true;
    std::map<std::string, std::int64_t> used;  // var -> trip count
    std::int64_t max_dim = subs.empty() ? 0 : 1;
    for (const auto& sub : subs) {
      Interval r;
      if (!range_of(sub, &r)) {
        ++guarded[array];  // unbound var: exclude, keep the bound sound
        return;
      }
      ref.box.push_back(r);
      int dim_vars = 0;
      bool unit = true;
      std::int64_t single_trip = 1;
      for (const auto& [name, coeff] : sub.terms()) {
        ++dim_vars;
        if (coeff != 1 && coeff != -1) unit = false;
        const std::int64_t trip = find(name)->size();
        used[name] = trip;
        single_trip = trip;
      }
      if (dim_vars > 1) injective = false;
      if (!unit) ref.boxy = false;
      const std::int64_t dim_count =
          unit ? r.size() : (dim_vars == 1 ? single_trip : 1);
      max_dim = std::max(max_dim, dim_count);
    }
    if (injective) {
      ref.count = 1;
      for (const auto& [name, trip] : used) {
        (void)name;
        ref.count *= trip;
      }
    } else {
      ref.count = max_dim;
    }
    refs[array].push_back(std::move(ref));
  }

  std::int64_t expr_flops(const ir::Expr& e) const {
    std::int64_t f = 0;
    if (e.kind == ir::ExprKind::kBinary) f += ir::kBinaryFlops;
    if (e.kind == ir::ExprKind::kCall) f += e.call_flops;
    for (const auto& o : e.operands) {
      if (o != nullptr) f += expr_flops(*o);
    }
    return f;
  }

  void walk_expr(const ir::Expr& e) {
    if (e.kind == ir::ExprKind::kArrayRef) record_ref(e.array, e.subscripts);
    for (const auto& o : e.operands) {
      if (o != nullptr) walk_expr(*o);
    }
  }

  void walk_body(const ir::StmtList& body) {
    for (const auto& s : body) walk(*s);
  }

  void walk(const ir::Stmt& s) {
    switch (s.kind) {
      case ir::StmtKind::kArrayAssign:
        ++stmt_seq_;
        record_ref(s.lhs_array, s.lhs_subscripts, /*is_write=*/true);
        if (s.rhs != nullptr) {
          walk_expr(*s.rhs);
          flops += trip_product() * expr_flops(*s.rhs);
        }
        return;
      case ir::StmtKind::kScalarAssign:
        ++stmt_seq_;
        if (s.rhs != nullptr) {
          walk_expr(*s.rhs);
          flops += trip_product() * expr_flops(*s.rhs);
        }
        return;
      case ir::StmtKind::kIf: {
        const ir::Affine diff = s.cmp_lhs - s.cmp_rhs;
        if (diff.is_constant()) {
          // Statically decided: only the taken branch exists.
          walk_body(ir::evaluate_cmp(s.cmp, diff.constant_term(), 0)
                        ? s.then_body
                        : s.else_body);
          return;
        }
        const std::optional<std::string> v = diff.single_var();
        Interval* range = v ? find(*v) : nullptr;
        if (range != nullptr) {
          // Refine the variable's interval: each branch sees exactly the
          // iterations on which it runs, keeping footprints and the flop
          // count exact.
          std::vector<Interval> then_iv, else_iv;
          split_guard(s.cmp, diff.coeff(*v), diff.constant_term(), *range,
                      &then_iv, &else_iv);
          const Interval saved = *range;
          for (const Interval& iv : then_iv) {
            *range = iv;
            walk_body(s.then_body);
          }
          for (const Interval& iv : else_iv) {
            *range = iv;
            walk_body(s.else_body);
          }
          *range = saved;
          return;
        }
        // Multi-variable guard: count flops for both branches (upper
        // bound), exclude the references (lower bound).
        ++guard_depth_;
        walk_body(s.then_body);
        walk_body(s.else_body);
        --guard_depth_;
        return;
      }
      case ir::StmtKind::kLoop: {
        if (s.loop == nullptr || s.loop->trip_count() == 0) return;
        env_.emplace_back(s.loop->var, Interval{s.loop->lower, s.loop->upper});
        walk_body(s.loop->body);
        env_.pop_back();
        return;
      }
    }
  }

  const ir::Program& program_;
  std::vector<std::pair<std::string, Interval>> env_;
  int guard_depth_ = 0;
  int top_idx_ = 0;
  int stmt_seq_ = 0;
};

/// Exact cell count of a union of dense boxes via coordinate compression;
/// -1 when the compressed grid would be unreasonably large.
std::int64_t union_of_boxes(const std::vector<const Ref*>& boxes) {
  if (boxes.empty()) return 0;
  const std::size_t rank = boxes[0]->box.size();
  std::vector<std::vector<std::int64_t>> coords(rank);
  for (const Ref* r : boxes) {
    if (r->box.size() != rank) return -1;  // rank mismatch: malformed
    for (std::size_t d = 0; d < rank; ++d) {
      coords[d].push_back(r->box[d].lo);
      coords[d].push_back(r->box[d].hi + 1);
    }
  }
  std::int64_t cells = 1;
  for (auto& c : coords) {
    std::sort(c.begin(), c.end());
    c.erase(std::unique(c.begin(), c.end()), c.end());
    cells *= static_cast<std::int64_t>(c.size()) - 1;
    if (cells > 2'000'000) return -1;
  }

  std::int64_t covered = 0;
  std::vector<std::size_t> idx(rank, 0);
  while (true) {
    std::int64_t volume = 1;
    for (std::size_t d = 0; d < rank; ++d) {
      volume *= coords[d][idx[d] + 1] - coords[d][idx[d]];
    }
    for (const Ref* r : boxes) {
      bool inside = true;
      for (std::size_t d = 0; d < rank; ++d) {
        const std::int64_t lo = coords[d][idx[d]];
        if (lo < r->box[d].lo || lo > r->box[d].hi) {
          inside = false;
          break;
        }
      }
      if (inside) {
        covered += volume;
        break;
      }
    }
    std::size_t d = 0;
    for (; d < rank; ++d) {
      if (++idx[d] < coords[d].size() - 1) break;
      idx[d] = 0;
    }
    if (d == rank) break;
  }
  return covered;
}

}  // namespace

TrafficBound compute_traffic_bound(const ir::Program& program) {
  Analyzer analyzer(program);
  analyzer.run();

  TrafficBound bound;
  bound.flops_upper_bound = analyzer.flops;
  for (ir::ArrayId a = 0; a < program.array_count(); ++a) {
    const ir::ArrayDecl& decl = program.array(a);
    ArrayFootprint fp;
    fp.name = decl.name;
    const auto git = analyzer.guarded.find(a);
    fp.guarded_refs = git == analyzer.guarded.end() ? 0 : git->second;
    const auto rit = analyzer.refs.find(a);
    if (rit != analyzer.refs.end()) {
      const std::vector<Ref>& refs = rit->second;
      std::vector<const Ref*> boxy;
      std::int64_t max_count = 0;
      for (const Ref& r : refs) {
        if (r.boxy) boxy.push_back(&r);
        max_count = std::max(max_count, r.count);
      }
      const std::int64_t cells = union_of_boxes(boxy);
      const bool all_boxy = boxy.size() == refs.size();
      if (all_boxy && cells >= 0) {
        fp.distinct_elements = cells;
        fp.exact = fp.guarded_refs == 0;
      } else {
        fp.distinct_elements = std::max(cells, max_count);
      }
    } else {
      fp.exact = fp.guarded_refs == 0;
    }
    fp.bytes =
        fp.distinct_elements * static_cast<std::int64_t>(decl.elem_bytes);
    bound.lower_bound_bytes += fp.bytes;
    bound.arrays.push_back(std::move(fp));
  }
  return bound;
}

namespace {

bool subs_equal(const std::vector<ir::Affine>& a,
                const std::vector<ir::Affine>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == b[i])) return false;
  }
  return true;
}

bool box_contains(const std::vector<Interval>& box,
                  const std::vector<std::int64_t>& point) {
  for (std::size_t d = 0; d < box.size(); ++d) {
    if (point[d] < box[d].lo || point[d] > box[d].hi) return false;
  }
  return true;
}

/// A write that may precede read claim `c` never covers it when it is a
/// same-statement or later-sibling write of byte-identical subscripts
/// whose iteration->element map is injective over the whole nest: each
/// element is then touched in exactly one iteration, and within it the
/// read (RHS evaluation, or an earlier statement) runs before the store.
bool exempt_from(const FRef& c, const FRef& w) {
  return w.top_idx == c.top_idx && w.stmt_seq >= c.stmt_seq &&
         w.injective_full && subs_equal(w.subs, c.subs);
}

}  // namespace

DataFloor compute_data_floor(const ir::Program& program) {
  Analyzer analyzer(program);
  analyzer.run();

  DataFloor floor;
  for (ir::ArrayId a = 0; a < program.array_count(); ++a) {
    const ir::ArrayDecl& decl = program.array(a);
    FloorRegion region;
    region.name = decl.name;
    const std::size_t rank = decl.extents.size();
    const bool is_output = program.is_output_array(a);

    std::vector<const FRef*> claims;    // exact unguarded reads
    std::vector<const FRef*> subtract;  // writes that may precede a read
    std::vector<const FRef*> outputs;   // definite writes of output arrays
    bool opaque_write = false;  // a write whose extent we cannot bound
    const auto it = analyzer.floor_refs.find(a);
    if (it != analyzer.floor_refs.end()) {
      for (const FRef& fr : it->second) {
        if (fr.is_write) {
          if (!fr.known || fr.box.size() != rank) {
            opaque_write = true;
            continue;
          }
          subtract.push_back(&fr);
          if (is_output && !fr.guarded && fr.covers_box)
            outputs.push_back(&fr);
        } else if (fr.known && !fr.guarded && fr.covers_box &&
                   fr.box.size() == rank) {
          claims.push_back(&fr);
        }
      }
    }
    // An unbounded write may cover any element before any read: no
    // initial-read claim survives (output obligations are unaffected --
    // more writes never shrink what must be produced).
    if (opaque_write) claims.clear();

    if (!claims.empty() || !outputs.empty()) {
      // Coordinate compression over every involved box, then per-cell
      // classification (same machinery as union_of_boxes, but each cell
      // is tested against the claim/subtract/output structure).
      std::vector<std::vector<std::int64_t>> coords(rank);
      const auto add_box = [&](const FRef* r) {
        for (std::size_t d = 0; d < rank; ++d) {
          coords[d].push_back(r->box[d].lo);
          coords[d].push_back(r->box[d].hi + 1);
        }
      };
      for (const FRef* r : claims) add_box(r);
      for (const FRef* r : subtract) add_box(r);
      for (const FRef* r : outputs) add_box(r);
      std::int64_t cells = 1;
      bool overflow = rank == 0;
      for (auto& c : coords) {
        std::sort(c.begin(), c.end());
        c.erase(std::unique(c.begin(), c.end()), c.end());
        cells *= static_cast<std::int64_t>(c.size()) - 1;
        if (cells > 2'000'000) {
          overflow = true;  // contribute nothing: the floor stays sound
          break;
        }
      }
      if (!overflow) {
        std::vector<std::size_t> idx(rank, 0);
        std::vector<std::int64_t> point(rank, 0);
        while (true) {
          std::int64_t volume = 1;
          for (std::size_t d = 0; d < rank; ++d) {
            point[d] = coords[d][idx[d]];
            volume *= coords[d][idx[d] + 1] - coords[d][idx[d]];
          }
          bool initial = false;
          for (const FRef* c : claims) {
            if (!box_contains(c->box, point)) continue;
            bool covered = false;
            for (const FRef* w : subtract) {
              if (w->top_idx > c->top_idx) continue;  // runs strictly later
              if (exempt_from(*c, *w)) continue;
              if (box_contains(w->box, point)) {
                covered = true;
                break;
              }
            }
            if (!covered) {
              initial = true;
              break;
            }
          }
          bool written = false;
          for (const FRef* o : outputs) {
            if (box_contains(o->box, point)) {
              written = true;
              break;
            }
          }
          if (initial) region.initial_read_elements += volume;
          if (written) region.output_write_elements += volume;
          if (initial || written) region.elements += volume;
          std::size_t d = 0;
          for (; d < rank; ++d) {
            if (++idx[d] < coords[d].size() - 1) break;
            idx[d] = 0;
          }
          if (d == rank) break;
        }
      }
    }

    region.bytes =
        region.elements * static_cast<std::int64_t>(decl.elem_bytes);
    floor.floor_bytes += region.bytes;
    floor.arrays.push_back(std::move(region));
  }
  return floor;
}

std::string DataFloor::render() const {
  std::string out = "data-movement floor: " + std::to_string(floor_bytes) +
                    " bytes memory<->L2 (any equivalent program)\n";
  for (const FloorRegion& r : arrays) {
    out += "  " + r.name + ": " + std::to_string(r.elements) +
           " element(s), " + std::to_string(r.bytes) + " byte(s) (" +
           std::to_string(r.initial_read_elements) + " initial-read, " +
           std::to_string(r.output_write_elements) + " output-write)\n";
  }
  return out;
}

std::string TrafficBound::render() const {
  std::string out = "traffic lower bound: " +
                    std::to_string(lower_bound_bytes) +
                    " bytes memory<->L2 (flops upper bound: " +
                    std::to_string(flops_upper_bound) + ")\n";
  for (const ArrayFootprint& fp : arrays) {
    out += "  " + fp.name + ": " + (fp.exact ? "" : ">= ") +
           std::to_string(fp.distinct_elements) + " element(s), " +
           std::to_string(fp.bytes) + " byte(s)";
    if (fp.guarded_refs > 0) {
      out += " (" + std::to_string(fp.guarded_refs) +
             " guarded ref(s) excluded)";
    }
    out += "\n";
  }
  return out;
}

}  // namespace bwc::verify
