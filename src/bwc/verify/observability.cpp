#include "bwc/verify/observability.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "bwc/verify/events.h"
#include "bwc/verify/structure.h"

namespace bwc::verify {

namespace {

/// Array names declared by a program (declaration set, not trace set).
std::set<std::string> declared_arrays(const ir::Program& p) {
  std::set<std::string> names;
  for (const auto& a : p.arrays()) names.insert(a.name);
  return names;
}

std::set<std::string> output_array_names(const ir::Program& p) {
  std::set<std::string> names;
  for (const ir::ArrayId a : p.output_arrays()) names.insert(p.array(a).name);
  return names;
}

/// Per-array access tallies from a trace: which array slots (in the shared
/// LocationSpace) are written / read at all.
struct TraceTouch {
  std::set<int> written;
  std::set<int> read;
};

TraceTouch touch_of(const EventTrace& trace, const LocationSpace& space) {
  TraceTouch t;
  for (const auto& inst : trace.instances) {
    if (!space.is_scalar(inst.write)) t.written.insert(space.slot_of(inst.write));
    for (const Location r : inst.reads) {
      if (!space.is_scalar(r)) t.read.insert(space.slot_of(r));
    }
  }
  return t;
}

/// Shared preamble: structure-check both programs, enforce the event
/// budget, trace both into one LocationSpace. Returns false when the
/// report is already final (error or skipped).
bool trace_pair(const ir::Program& pre, const ir::Program& post,
                std::uint64_t max_events, Report* report, LocationSpace* space,
                EventTrace* ta, EventTrace* tb) {
  const Report s1 = validate_structure(pre);
  const Report s2 = validate_structure(post);
  if (!s1.ok() || !s2.ok()) {
    report->error("structure-invalid",
                  std::string("structural validation failed for the ") +
                      (!s1.ok() ? "pre" : "post") + "-pass program: " +
                      (!s1.ok() ? s1.first_error() : s2.first_error()));
    return false;
  }
  const std::uint64_t est =
      std::max(estimate_events(pre), estimate_events(post));
  if (est > max_events) {
    report->skipped = true;
    report->skip_reason = "instance-level check needs ~" + std::to_string(est) +
                          " events, budget is " + std::to_string(max_events);
    return false;
  }
  *ta = trace_program(pre, *space, max_events, report);
  *tb = trace_program(post, *space, max_events, report);
  if (!report->ok()) return false;
  if (ta->truncated || tb->truncated) {
    report->skipped = true;
    report->skip_reason = "event budget exhausted while tracing";
    return false;
  }
  report->instances_checked = ta->instances.size() + tb->instances.size();
  return true;
}

}  // namespace

Report validate_store_elimination(const ir::Program& pre,
                                  const ir::Program& post,
                                  const ObservabilityOptions& options) {
  Report report;
  report.check = "store-elimination";

  LocationSpace space;
  EventTrace ta, tb;
  if (!trace_pair(pre, post, options.max_events, &report, &space, &ta, &tb)) {
    return report;
  }

  const TraceTouch pre_touch = touch_of(ta, space);
  const TraceTouch post_touch = touch_of(tb, space);

  // Arrays whose stores the pass removed: written by pre, untouched by any
  // post write.
  std::set<int> eliminated;
  for (const int slot : pre_touch.written) {
    if (post_touch.written.count(slot) == 0) eliminated.insert(slot);
  }
  if (eliminated.empty()) {
    report.info("no-op", "no array lost its stores; nothing to certify");
    return report;
  }

  const std::set<std::string> outputs_pre = output_array_names(pre);
  const std::set<std::string> outputs_post = output_array_names(post);
  for (const int slot : eliminated) {
    const std::string& name = space.array_name(slot);
    if (outputs_pre.count(name) != 0 || outputs_post.count(name) != 0) {
      report.error("store-elim-output",
                   "stores to array '" + name +
                       "' were eliminated, but the array is an observable "
                       "program output: its final contents are gone");
    }
  }

  // Walk the pre trace once. For every read of an eliminated element the
  // last writer (if any) must be a same-statement, same-iteration producer
  // -- the only kind of store a forwarding scalar can replace. Reads that
  // precede every write observe the element's initial contents; those must
  // survive in post as genuine memory reads, counted per element below.
  std::map<Location, const Instance*> last_writer;
  std::map<Location, std::uint64_t> initial_reads_pre;
  int escapes = 0;
  for (const auto& inst : ta.instances) {
    for (const Location r : inst.reads) {
      if (space.is_scalar(r) || eliminated.count(space.slot_of(r)) == 0) {
        continue;
      }
      const auto lw = last_writer.find(r);
      if (lw == last_writer.end()) {
        ++initial_reads_pre[r];
        continue;
      }
      const Instance& w = *lw->second;
      if (w.top_index != inst.top_index || w.iters != inst.iters) {
        if (escapes < 3) {
          report.error(
              "store-elim-observed",
              "eliminated store of " + space.describe(r) + " by " +
                  w.describe() + " is observed by " + inst.describe() +
                  (w.top_index != inst.top_index
                       ? " in a different statement"
                       : " in a different iteration") +
                  ": the value escapes the producing iteration and cannot "
                  "be forwarded through a scalar");
        }
        ++escapes;
      }
    }
    if (!space.is_scalar(inst.write) &&
        eliminated.count(space.slot_of(inst.write)) != 0) {
      last_writer[inst.write] = &inst;
    }
  }
  if (escapes > 3) {
    report.error("store-elim-observed",
                 "... and " + std::to_string(escapes - 3) +
                     " further observed eliminated store(s)");
  }

  // In post the eliminated arrays are never written, so every remaining
  // read of them observes initial contents. A post element read more often
  // than pre read its initial value is observing stale memory where pre
  // observed a store.
  std::map<Location, std::uint64_t> reads_post;
  for (const auto& inst : tb.instances) {
    for (const Location r : inst.reads) {
      if (!space.is_scalar(r) && eliminated.count(space.slot_of(r)) != 0) {
        ++reads_post[r];
      }
    }
  }
  int stale = 0;
  for (const auto& [loc, n] : reads_post) {
    const auto it = initial_reads_pre.find(loc);
    const std::uint64_t allowed = it == initial_reads_pre.end() ? 0 : it->second;
    if (n > allowed) {
      if (stale < 3) {
        report.error("store-elim-stale-read",
                     "post-pass program reads " + space.describe(loc) + " " +
                         std::to_string(n) + " time(s), but only " +
                         std::to_string(allowed) +
                         " initial-value read(s) are reproducible without "
                         "the eliminated stores");
      }
      ++stale;
    }
  }
  if (stale > 3) {
    report.error("store-elim-stale-read",
                 "... and " + std::to_string(stale - 3) +
                     " further stale-read element(s)");
  }

  if (report.ok()) {
    std::string names;
    for (const int slot : eliminated) {
      if (!names.empty()) names += ", ";
      names += space.array_name(slot);
    }
    report.info("certified",
                "store elimination certified for {" + names +
                    "}: no eliminated store is observable (not outputs, "
                    "values never escape their producing iteration)");
  }
  return report;
}

Report validate_storage_reduction(const ir::Program& pre,
                                  const ir::Program& post,
                                  const ObservabilityOptions& options) {
  Report report;
  report.check = "storage-reduction";

  LocationSpace space;
  EventTrace ta, tb;
  if (!trace_pair(pre, post, options.max_events, &report, &space, &ta, &tb)) {
    return report;
  }

  const TraceTouch pre_touch = touch_of(ta, space);
  const TraceTouch post_touch = touch_of(tb, space);

  // Arrays the pass retired: referenced by pre, unreferenced by post.
  std::set<int> reduced;
  for (const int slot : pre_touch.written) {
    if (post_touch.written.count(slot) == 0 &&
        post_touch.read.count(slot) == 0) {
      reduced.insert(slot);
    }
  }
  if (reduced.empty()) {
    report.info("no-op", "no array was retired; nothing to certify");
    return report;
  }

  const std::set<std::string> outputs_pre = output_array_names(pre);
  const std::set<std::string> outputs_post = output_array_names(post);
  for (const int slot : reduced) {
    const std::string& name = space.array_name(slot);
    if (outputs_pre.count(name) != 0 || outputs_post.count(name) != 0) {
      report.error("storage-reduction-output",
                   "array '" + name +
                       "' was reduced away, but it is an observable program "
                       "output: its final contents are gone");
    }
  }

  // Element-granular liveness over the pre trace, re-derived from scratch:
  // a value is live from its producing write until its last read before
  // the next write of the same element. Reads with no prior write observe
  // initial contents fresh replacement buffers cannot reproduce.
  struct LiveValue {
    std::size_t born;       // trace position of the write
    std::size_t last_read;  // last observing read position
    std::uint64_t bytes;
    bool read = false;
  };
  std::map<Location, LiveValue> open;  // current value per element
  std::vector<std::pair<std::size_t, std::int64_t>> deltas;  // (pos, +/-bytes)
  int initial = 0;
  auto close = [&](const LiveValue& v) {
    if (!v.read) return;  // dead value: occupies no replacement storage
    deltas.emplace_back(v.born, static_cast<std::int64_t>(v.bytes));
    deltas.emplace_back(v.last_read + 1, -static_cast<std::int64_t>(v.bytes));
  };
  for (std::size_t pos = 0; pos < ta.instances.size(); ++pos) {
    const Instance& inst = ta.instances[pos];
    for (const Location r : inst.reads) {
      if (space.is_scalar(r) || reduced.count(space.slot_of(r)) == 0) continue;
      const auto it = open.find(r);
      if (it == open.end()) {
        if (initial < 3) {
          report.error(
              "storage-reduction-initial-read",
              inst.describe() + " reads the initial contents of " +
                  space.describe(r) +
                  ", which the reduced storage cannot reproduce (no write "
                  "precedes the read)");
        }
        ++initial;
        continue;
      }
      it->second.read = true;
      it->second.last_read = pos;
    }
    if (!space.is_scalar(inst.write) &&
        reduced.count(space.slot_of(inst.write)) != 0) {
      const auto it = open.find(inst.write);
      if (it != open.end()) close(it->second);
      open[inst.write] =
          LiveValue{pos, pos, space.array_elem_bytes(space.slot_of(inst.write)),
                    false};
    }
  }
  for (const auto& [loc, v] : open) close(v);
  if (initial > 3) {
    report.error("storage-reduction-initial-read",
                 "... and " + std::to_string(initial - 3) +
                     " further initial-contents read(s)");
  }

  // Peak simultaneously-live bytes across all reduced arrays.
  std::sort(deltas.begin(), deltas.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first < b.first;
              return a.second < b.second;  // releases before acquisitions
            });
  std::int64_t live = 0, peak = 0;
  for (const auto& [pos, d] : deltas) {
    (void)pos;
    live += d;
    peak = std::max(peak, live);
  }

  // Replacement capacity: storage post declares that pre did not.
  const std::set<std::string> pre_arrays = declared_arrays(pre);
  std::int64_t capacity = 0;
  std::string replacement_names;
  for (const auto& a : post.arrays()) {
    if (pre_arrays.count(a.name) != 0) continue;
    std::int64_t elems = 1;
    for (const std::int64_t e : a.extents) elems *= e;
    capacity += elems * static_cast<std::int64_t>(a.elem_bytes);
    if (!replacement_names.empty()) replacement_names += ", ";
    replacement_names += a.name;
  }
  for (const auto& s : post.scalars()) {
    if (pre.has_scalar(s)) continue;
    capacity += 8;
  }
  if (peak > capacity) {
    report.error(
        "storage-reduction-capacity",
        "reduced arrays hold up to " + std::to_string(peak) +
            " simultaneously-live byte(s), but the pass introduced only " +
            std::to_string(capacity) + " replacement byte(s)" +
            (replacement_names.empty() ? std::string()
                                       : " (" + replacement_names + ")") +
            ": the live set cannot fit");
  }

  if (report.ok()) {
    std::string names;
    for (const int slot : reduced) {
      if (!names.empty()) names += ", ";
      names += space.array_name(slot);
    }
    report.info("certified",
                "storage reduction certified for {" + names +
                    "}: not outputs, no initial contents observed, peak "
                    "live set of " +
                    std::to_string(peak) + " byte(s) fits the " +
                    std::to_string(capacity) + " replacement byte(s)");
  }
  return report;
}

}  // namespace bwc::verify
