// Static memory-traffic lower bounds from affine access summaries.
//
// For a cold memory hierarchy, every distinct byte a program touches must
// cross the memory<->L2 boundary at least once -- under a write-allocate
// policy the line is fetched, under no-write-allocate the store itself
// crosses. The number of distinct bytes touched is therefore a sound lower
// bound on the simulated boundary traffic, whatever the cache geometry,
// associativity or replacement policy. This analyzer computes that bound
// statically, per array, from the affine subscripts:
//
//  - A reference whose every dimension uses at most one loop variable maps
//    its iteration space injectively onto elements: its footprint is the
//    product of the distinct variables' trip counts, exactly.
//  - When every reference to an array has only {0, +-1} coefficients, each
//    reference covers a dense box of elements and the array footprint is
//    the exact union of boxes (computed by coordinate compression).
//  - Otherwise the footprint falls back to the largest single-reference
//    count (still a valid lower bound); references under guards are
//    excluded entirely (a guard may suppress every access).
//
// The companion flops_upper_bound counts every arithmetic operation the
// program could execute (both branches of each guard), giving a sound
// static machine-balance denominator. EXPERIMENTS.md records the invariant
// checked by the test suite: lower_bound_bytes <= the memsim-measured
// memory<->L2 traffic on every workload, original and optimized.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bwc/ir/program.h"

namespace bwc::verify {

/// Distinct-element footprint of one array.
struct ArrayFootprint {
  std::string name;
  /// Distinct elements provably touched (lower bound; exact when `exact`).
  std::int64_t distinct_elements = 0;
  std::int64_t bytes = 0;
  /// Every unguarded reference was covered by the union-of-boxes count.
  bool exact = false;
  /// References skipped because they sit under a guard.
  int guarded_refs = 0;
};

struct TrafficBound {
  std::vector<ArrayFootprint> arrays;
  /// Sum of per-array footprint bytes: sound lower bound on the bytes
  /// crossing the memory<->L2 boundary on a cold hierarchy.
  std::int64_t lower_bound_bytes = 0;
  /// Static upper bound on executed flops (guards counted both ways).
  std::int64_t flops_upper_bound = 0;

  /// Human-readable table of the per-array footprints and totals.
  std::string render() const;
};

TrafficBound compute_traffic_bound(const ir::Program& program);

}  // namespace bwc::verify
