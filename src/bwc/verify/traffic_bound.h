// Static memory-traffic lower bounds from affine access summaries.
//
// For a cold memory hierarchy, every distinct byte a program touches must
// cross the memory<->L2 boundary at least once -- under a write-allocate
// policy the line is fetched, under no-write-allocate the store itself
// crosses. The number of distinct bytes touched is therefore a sound lower
// bound on the simulated boundary traffic, whatever the cache geometry,
// associativity or replacement policy. This analyzer computes that bound
// statically, per array, from the affine subscripts:
//
//  - A reference whose every dimension uses at most one loop variable maps
//    its iteration space injectively onto elements: its footprint is the
//    product of the distinct variables' trip counts, exactly.
//  - When every reference to an array has only {0, +-1} coefficients, each
//    reference covers a dense box of elements and the array footprint is
//    the exact union of boxes (computed by coordinate compression).
//  - Otherwise the footprint falls back to the largest single-reference
//    count (still a valid lower bound); references under guards are
//    excluded entirely (a guard may suppress every access).
//
// The companion flops_upper_bound counts every arithmetic operation the
// program could execute (both branches of each guard), giving a sound
// static machine-balance denominator. EXPERIMENTS.md records the invariant
// checked by the test suite: lower_bound_bytes <= the memsim-measured
// memory<->L2 traffic on every workload, original and optimized.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bwc/ir/program.h"

namespace bwc::verify {

/// Distinct-element footprint of one array.
struct ArrayFootprint {
  std::string name;
  /// Distinct elements provably touched (lower bound; exact when `exact`).
  std::int64_t distinct_elements = 0;
  std::int64_t bytes = 0;
  /// Every unguarded reference was covered by the union-of-boxes count.
  bool exact = false;
  /// References skipped because they sit under a guard.
  int guarded_refs = 0;
};

struct TrafficBound {
  std::vector<ArrayFootprint> arrays;
  /// Sum of per-array footprint bytes: sound lower bound on the bytes
  /// crossing the memory<->L2 boundary on a cold hierarchy.
  std::int64_t lower_bound_bytes = 0;
  /// Static upper bound on executed flops (guards counted both ways).
  std::int64_t flops_upper_bound = 0;

  /// Human-readable table of the per-array footprints and totals.
  std::string render() const;
};

TrafficBound compute_traffic_bound(const ir::Program& program);

/// One array's share of the essential data-movement floor.
struct FloorRegion {
  std::string name;
  /// Elements whose first access is a read: their initial contents are
  /// program inputs and must be fetched by any equivalent program.
  std::int64_t initial_read_elements = 0;
  /// Elements of observable output arrays the program definitely writes:
  /// their final contents must be produced by any equivalent program.
  std::int64_t output_write_elements = 0;
  /// |initial-read region UNION output-write region| (an element in both
  /// is counted once: one boundary crossing covers fetch and update on a
  /// write-allocate hierarchy).
  std::int64_t elements = 0;
  std::int64_t bytes = 0;
};

/// The essential data-movement floor (the Olivry-style cold-footprint
/// I/O bound, specialized to this IR): bytes that ANY observationally
/// equivalent program must move across the memory<->L2 boundary, however
/// it is scheduled, fused, contracted or store-eliminated. Per array it
/// is the union of
///
///  - the initial-read region: elements read before any write of the
///    same element could have covered them. A read claims its box only
///    when it provably executes (unguarded) and provably touches every
///    element of the box; every write that may precede the read
///    subtracts its (over-approximated) box, except a same-statement
///    write with byte-identical subscripts whose iteration->element map
///    is injective over the full nest -- there the read of each element
///    happens in the unique iteration that writes it, before the store.
///  - the output-write region: elements of arrays marked as program
///    outputs that are definitely written (unguarded, exactly-covering
///    boxes only).
///
/// compute_data_floor(P) <= compute_traffic_bound(Q).lower_bound_bytes
/// <= memsim-measured traffic of Q for every program Q equivalent to P
/// whose initial reads are live and whose output writes store fresh
/// values (true for every bundled workload; an adversarial program that
/// rewrites an output with its initial contents can beat the output
/// term). The autotuner's optimality certificates are gaps against this
/// floor (docs/AUTOTUNE.md).
struct DataFloor {
  std::vector<FloorRegion> arrays;
  /// Sum of per-array floor bytes.
  std::int64_t floor_bytes = 0;

  /// Human-readable table of the per-array regions and the total.
  std::string render() const;
};

DataFloor compute_data_floor(const ir::Program& program);

}  // namespace bwc::verify
