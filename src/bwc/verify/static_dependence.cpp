#include "bwc/verify/static_dependence.h"

#include <algorithm>
#include <limits>
#include <numeric>

namespace bwc::verify {
namespace {

// Saturation bound: large enough that real loop bounds never clip, small
// enough that sums and products of clamped values cannot overflow int64.
constexpr std::int64_t kBig = std::int64_t{1} << 60;

std::int64_t clampv(std::int64_t v) { return std::clamp(v, -kBig, kBig); }

std::int64_t sat_add(std::int64_t a, std::int64_t b) {
  return clampv(clampv(a) + clampv(b));  // |a|+|b| <= 2^61, no overflow
}

std::int64_t sat_mul(std::int64_t a, std::int64_t b) {
  if (a == 0 || b == 0) return 0;
  if (a > -kBig && a < kBig && b > -kBig && b < kBig) {
    __int128 p = static_cast<__int128>(a) * b;
    if (p > kBig) return kBig;
    if (p < -kBig) return -kBig;
    return static_cast<std::int64_t>(p);
  }
  return ((a > 0) == (b > 0)) ? kBig : -kBig;
}

/// Floor/ceil division with positive divisor.
std::int64_t floor_div(std::int64_t a, std::int64_t b) {
  std::int64_t q = a / b;
  return (a % b != 0 && (a < 0) != (b < 0)) ? q - 1 : q;
}
std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  std::int64_t q = a / b;
  return (a % b != 0 && (a < 0) == (b < 0)) ? q + 1 : q;
}

}  // namespace

const char* verdict_name(Verdict v) {
  switch (v) {
    case Verdict::kIndependent:
      return "independent";
    case Verdict::kDependent:
      return "dependent";
    case Verdict::kUnknown:
      return "unknown";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// VarDomain

VarDomain VarDomain::range(std::int64_t lo, std::int64_t hi) {
  VarDomain d;
  if (lo <= hi) d.ranges.push_back({lo, hi});
  return d;
}

Interval VarDomain::hull() const {
  if (ranges.empty()) return {};
  return {ranges.front().lo, ranges.back().hi};
}

bool VarDomain::empty() const { return ranges.empty(); }

bool VarDomain::contains(std::int64_t v) const {
  for (const auto& r : ranges)
    if (v >= r.lo && v <= r.hi) return true;
  return false;
}

std::int64_t VarDomain::size() const {
  std::int64_t n = 0;
  for (const auto& r : ranges) n = sat_add(n, r.size());
  return n;
}

void VarDomain::clip(std::int64_t lo, std::int64_t hi) {
  std::vector<Interval> out;
  for (const auto& r : ranges) {
    Interval c{std::max(r.lo, lo), std::min(r.hi, hi)};
    if (!c.empty()) out.push_back(c);
  }
  ranges = std::move(out);
}

// ---------------------------------------------------------------------------
// solve_system

namespace {

struct System {
  std::vector<VarDomain> domains;
  std::vector<LinEq> eqs;
  // Variables pinned to a single value (domain already narrowed).
  // pivot_of[v] = equation index that defines variable v, or -1.
  std::vector<int> pivot_of;
  std::vector<int> pivot_order;  // variables in the order they were chosen
};

void normalize(LinEq& eq) {
  std::sort(eq.terms.begin(), eq.terms.end(),
            [](const LinTerm& a, const LinTerm& b) { return a.var < b.var; });
  std::vector<LinTerm> out;
  for (const auto& t : eq.terms) {
    if (!out.empty() && out.back().var == t.var) {
      out.back().coeff = sat_add(out.back().coeff, t.coeff);
    } else {
      out.push_back(t);
    }
  }
  out.erase(std::remove_if(out.begin(), out.end(),
                           [](const LinTerm& t) { return t.coeff == 0; }),
            out.end());
  eq.terms = std::move(out);
}

const LinTerm* find_term(const LinEq& eq, int var) {
  for (const auto& t : eq.terms)
    if (t.var == var) return &t;
  return nullptr;
}

/// eq -= factor * pivot_eq (exact integer row operation).
void eliminate(LinEq& eq, const LinEq& pivot_eq, std::int64_t factor) {
  if (factor == 0) return;
  for (const auto& t : pivot_eq.terms)
    eq.terms.push_back({t.var, sat_mul(-factor, t.coeff)});
  eq.constant = sat_add(eq.constant, sat_mul(-factor, pivot_eq.constant));
  normalize(eq);
}

/// Interval of sum(coeff * var over hull) for the equation's terms.
Interval term_range(const System& s, const LinEq& eq, int skip_var = -1) {
  std::int64_t lo = 0, hi = 0;
  for (const auto& t : eq.terms) {
    if (t.var == skip_var) continue;
    Interval h = s.domains[t.var].hull();
    std::int64_t a = sat_mul(t.coeff, h.lo);
    std::int64_t b = sat_mul(t.coeff, h.hi);
    lo = sat_add(lo, std::min(a, b));
    hi = sat_add(hi, std::max(a, b));
  }
  return {lo, hi};
}

/// Substitute a pinned value for `var` everywhere.
void substitute_value(System& s, int var, std::int64_t value) {
  for (auto& eq : s.eqs) {
    const LinTerm* t = find_term(eq, var);
    if (!t) continue;
    eq.constant = sat_add(eq.constant, sat_mul(t->coeff, value));
    eq.terms.erase(std::remove_if(
                       eq.terms.begin(), eq.terms.end(),
                       [var](const LinTerm& x) { return x.var == var; }),
                   eq.terms.end());
  }
}

Feasibility infeasible(const char* why) {
  return {Verdict::kIndependent, why, {}};
}

}  // namespace

Feasibility solve_system(std::vector<VarDomain> domains,
                         std::vector<LinEq> eqs) {
  System s;
  s.domains = std::move(domains);
  s.eqs = std::move(eqs);
  s.pivot_of.assign(s.domains.size(), -1);

  for (const auto& d : s.domains)
    if (d.empty()) return infeasible("empty-domain");
  for (auto& eq : s.eqs) normalize(eq);

  // Exact Gaussian elimination restricted to +/-1 pivots: combines
  // equations so that relational facts (x == y, y - x == delta) resolve
  // instead of being lost to interval reasoning.
  for (std::size_t ei = 0; ei < s.eqs.size(); ++ei) {
    LinEq& pe = s.eqs[ei];
    int pivot = -1;
    for (const auto& t : pe.terms) {
      if ((t.coeff == 1 || t.coeff == -1) && s.pivot_of[t.var] < 0) {
        pivot = t.var;
        break;
      }
    }
    if (pivot < 0) continue;
    std::int64_t pc = find_term(pe, pivot)->coeff;  // +/-1
    for (std::size_t ej = 0; ej < s.eqs.size(); ++ej) {
      if (ej == ei) continue;
      const LinTerm* t = find_term(s.eqs[ej], pivot);
      if (!t) continue;
      // eqj -= (tc / pc) * pe ; pc is +/-1 so the factor is exact.
      eliminate(s.eqs[ej], pe, t->coeff * pc);
    }
    s.pivot_of[pivot] = static_cast<int>(ei);
    s.pivot_order.push_back(pivot);
  }

  // Refutation / pinning fixpoint.
  bool changed = true;
  for (int round = 0; round < 16 && changed; ++round) {
    changed = false;
    for (std::size_t ei = 0; ei < s.eqs.size(); ++ei) {
      LinEq& eq = s.eqs[ei];
      normalize(eq);
      if (eq.terms.empty()) {
        if (eq.constant != 0) return infeasible("ziv");
        continue;  // trivially satisfied; ignored from here on
      }
      // GCD test: sum(ci*xi) = -c has integer solutions only when
      // gcd(ci) divides c.
      std::int64_t g = 0;
      for (const auto& t : eq.terms)
        g = std::gcd(g, std::llabs(std::clamp(t.coeff, -kBig, kBig)));
      if (g > 1 && eq.constant % g != 0) return infeasible("gcd");
      // Banerjee bounds: value range of the lhs must straddle zero.
      Interval full = term_range(s, eq);
      std::int64_t lo = sat_add(full.lo, eq.constant);
      std::int64_t hi = sat_add(full.hi, eq.constant);
      if (lo > 0 || hi < 0) return infeasible("banerjee");
      if (eq.terms.size() == 1) {
        // Strong SIV: coeff * v == -constant exactly.
        const LinTerm& t = eq.terms[0];
        if (eq.constant % t.coeff != 0) return infeasible("siv");
        std::int64_t v = -eq.constant / t.coeff;
        if (!s.domains[t.var].contains(v)) return infeasible("siv");
        s.domains[t.var] = VarDomain::singleton(v);
        substitute_value(s, t.var, v);
        changed = true;
        continue;
      }
      // Domain tightening: v in [-c - range(rest)] / coeff.
      for (const auto& t : eq.terms) {
        Interval rest = term_range(s, eq, t.var);
        // t.coeff * v in [-c - rest.hi, -c - rest.lo]
        std::int64_t nlo = sat_add(-eq.constant, -rest.hi);
        std::int64_t nhi = sat_add(-eq.constant, -rest.lo);
        std::int64_t vlo, vhi;
        if (t.coeff > 0) {
          vlo = ceil_div(nlo, t.coeff);
          vhi = floor_div(nhi, t.coeff);
        } else {
          vlo = ceil_div(nhi, t.coeff);
          vhi = floor_div(nlo, t.coeff);
        }
        Interval h = s.domains[t.var].hull();
        if (vlo > h.lo || vhi < h.hi) {
          s.domains[t.var].clip(vlo, vhi);
          if (s.domains[t.var].empty()) return infeasible("banerjee");
          changed = true;
        }
      }
    }
  }

  // Witness search: free variables take an endpoint, pivot variables are
  // solved from their defining equations in reverse elimination order
  // (each pivot equation contains its pivot plus free variables only).
  for (int seed = 0; seed < 2; ++seed) {
    std::vector<std::int64_t> value(s.domains.size());
    std::vector<bool> is_pivot(s.domains.size(), false);
    for (int v : s.pivot_order) is_pivot[v] = true;
    for (std::size_t v = 0; v < s.domains.size(); ++v) {
      const auto& d = s.domains[v];
      value[v] = seed == 0 ? d.ranges.front().lo : d.ranges.back().hi;
    }
    bool ok = true;
    for (auto it = s.pivot_order.rbegin(); ok && it != s.pivot_order.rend();
         ++it) {
      int pv = *it;
      const LinEq& eq = s.eqs[s.pivot_of[pv]];
      const LinTerm* pt = find_term(eq, pv);
      if (!pt) {  // pinned away: equation already satisfied or constant
        if (!eq.terms.empty() || eq.constant != 0) ok = false;
        continue;
      }
      std::int64_t rest = eq.constant;
      for (const auto& t : eq.terms)
        if (t.var != pv) rest = sat_add(rest, sat_mul(t.coeff, value[t.var]));
      if (rest % pt->coeff != 0) {
        ok = false;
        break;
      }
      value[pv] = -rest / pt->coeff;
      if (!s.domains[pv].contains(value[pv])) ok = false;
    }
    if (!ok) continue;
    // Verify every equation under the assignment.
    for (const auto& eq : s.eqs) {
      std::int64_t sum = eq.constant;
      for (const auto& t : eq.terms)
        sum = sat_add(sum, sat_mul(t.coeff, value[t.var]));
      if (sum != 0) {
        ok = false;
        break;
      }
    }
    if (ok) return {Verdict::kDependent, "witness", std::move(value)};
  }

  return {Verdict::kUnknown, "", {}};
}

// ---------------------------------------------------------------------------
// PairSystem

PairSystem::PairSystem(const AffineRef& a, const AffineRef& b) {
  a_levels_ = static_cast<int>(a.loop_vars.size());
  exact_ = a.exact_domain && b.exact_domain;
  domains_ = a.domains;
  domains_.insert(domains_.end(), b.domains.begin(), b.domains.end());

  if (a.subscripts.size() != b.subscripts.size()) {
    well_formed_ = false;
    return;
  }
  auto add_side = [&](const ir::Affine& sub,
                      const std::vector<std::string>& vars, int base,
                      std::int64_t sign, LinEq& eq) {
    for (const auto& [name, coeff] : sub.terms()) {
      auto it = std::find(vars.begin(), vars.end(), name);
      if (it == vars.end()) {
        well_formed_ = false;
        return;
      }
      eq.terms.push_back(
          {base + static_cast<int>(it - vars.begin()), sign * coeff});
    }
    eq.constant = sat_add(eq.constant, sign * sub.constant_term());
  };
  for (std::size_t k = 0; k < a.subscripts.size(); ++k) {
    LinEq eq;
    add_side(a.subscripts[k], a.loop_vars, 0, 1, eq);
    add_side(b.subscripts[k], b.loop_vars, a_levels_, -1, eq);
    eqs_.push_back(std::move(eq));
  }
}

void PairSystem::bound_difference(int var_a, std::int64_t shift_a, int var_b,
                                  std::int64_t shift_b, Interval range) {
  if (range.empty()) {
    // An empty requested range makes this variant trivially infeasible;
    // encode it as an unsatisfiable equation.
    LinEq eq;
    eq.constant = 1;
    eqs_.push_back(std::move(eq));
    return;
  }
  // (var_b + shift_b) - (var_a + shift_a) - t == 0, t in range.
  LinEq eq;
  if (var_b >= 0) eq.terms.push_back({var_b, 1});
  if (var_a >= 0) eq.terms.push_back({var_a, -1});
  eq.constant = sat_add(shift_b, -shift_a);
  int slack = static_cast<int>(domains_.size());
  domains_.push_back(VarDomain::range(range.lo, range.hi));
  eq.terms.push_back({slack, -1});
  eqs_.push_back(std::move(eq));
}

void PairSystem::bound_var(int var, Interval range) {
  if (var < 0 || var >= static_cast<int>(domains_.size())) return;
  domains_[var].clip(range.lo, range.hi);
}

Feasibility PairSystem::solve() const {
  if (!well_formed_) return {Verdict::kUnknown, "ill-formed", {}};
  Feasibility f = solve_system(domains_, eqs_);
  // Over-approximated domains: a witness may lie outside the true
  // iteration space, so only independence proofs survive.
  if (!exact_ && f.verdict == Verdict::kDependent)
    return {Verdict::kUnknown, "inexact-domain", {}};
  return f;
}

// ---------------------------------------------------------------------------
// Site and reference collection

namespace {

struct SiteWalker {
  SiteWalk* out;

  std::vector<std::string> vars;
  std::vector<VarDomain> domains;
  std::vector<int> loop_addr;
  bool exact = true;

  void emit(const ir::Stmt& s, const std::vector<int>& pos) {
    AssignSite site;
    site.stmt = &s;
    site.loop_vars = vars;
    site.domains = domains;
    site.path = pos;
    site.loop_addr = loop_addr;
    site.exact_domain = exact;
    if (!exact) ++out->inexact_sites;
    out->sites.push_back(std::move(site));
  }

  void walk_list(const ir::StmtList& list, std::vector<int> pos) {
    for (std::size_t i = 0; i < list.size(); ++i) {
      pos.push_back(static_cast<int>(i));
      walk(*list[i], pos);
      pos.pop_back();
    }
  }

  void walk(const ir::Stmt& s, const std::vector<int>& pos) {
    switch (s.kind) {
      case ir::StmtKind::kArrayAssign:
      case ir::StmtKind::kScalarAssign:
        emit(s, pos);
        break;
      case ir::StmtKind::kIf:
        walk_guard(s, pos);
        break;
      case ir::StmtKind::kLoop: {
        vars.push_back(s.loop->var);
        domains.push_back(VarDomain::range(s.loop->lower, s.loop->upper));
        loop_addr.push_back(static_cast<int>(pos.size()));
        if (!domains.back().empty()) walk_list(s.loop->body, pos);
        vars.pop_back();
        domains.pop_back();
        loop_addr.pop_back();
        break;
      }
    }
  }

  void walk_guard(const ir::Stmt& s, const std::vector<int>& pos) {
    ir::Affine diff = s.cmp_lhs - s.cmp_rhs;  // diff OP 0
    std::vector<int> tpos = pos, epos = pos;
    tpos.push_back(0);
    epos.push_back(1);
    if (diff.is_constant()) {
      bool taken = ir::evaluate_cmp(s.cmp, diff.constant_term(), 0);
      const ir::StmtList& dead = taken ? s.else_body : s.then_body;
      if (!dead.empty()) ++out->unreachable_guards;
      walk_list(taken ? s.then_body : s.else_body, taken ? tpos : epos);
      return;
    }
    auto sv = diff.single_var();
    int level = -1;
    if (sv) {
      auto it = std::find(vars.begin(), vars.end(), *sv);
      if (it != vars.end()) level = static_cast<int>(it - vars.begin());
    }
    if (level < 0) {
      // Multi-variable (or out-of-scope) guard: cannot refine. Walk both
      // arms with over-approximated domains.
      bool saved = exact;
      exact = false;
      walk_list(s.then_body, tpos);
      walk_list(s.else_body, epos);
      exact = saved;
      return;
    }
    std::int64_t c = diff.coeff(*sv);
    std::int64_t k = diff.constant_term();
    VarDomain then_d, else_d;
    for (const auto& piece : domains[level].ranges) {
      std::vector<Interval> tv, ev;
      split_guard(s.cmp, c, k, piece, &tv, &ev);
      then_d.ranges.insert(then_d.ranges.end(), tv.begin(), tv.end());
      else_d.ranges.insert(else_d.ranges.end(), ev.begin(), ev.end());
    }
    auto sort_ranges = [](VarDomain& d) {
      std::sort(
          d.ranges.begin(), d.ranges.end(),
          [](const Interval& a, const Interval& b) { return a.lo < b.lo; });
    };
    sort_ranges(then_d);
    sort_ranges(else_d);
    VarDomain saved = domains[level];
    if (then_d.empty() && !s.then_body.empty()) ++out->unreachable_guards;
    if (else_d.empty() && !s.else_body.empty()) ++out->unreachable_guards;
    if (!then_d.empty()) {
      domains[level] = then_d;
      walk_list(s.then_body, tpos);
    }
    if (!else_d.empty()) {
      domains[level] = else_d;
      walk_list(s.else_body, epos);
    }
    domains[level] = saved;
  }
};

bool uses_scalar(const ir::Expr& e, const std::string& name) {
  if (e.kind == ir::ExprKind::kScalarRef && e.scalar == name) return true;
  for (const auto& o : e.operands)
    if (uses_scalar(*o, name)) return true;
  return false;
}

}  // namespace

SiteWalk collect_assign_sites(const ir::Stmt& top) {
  SiteWalk out;
  SiteWalker w{&out, {}, {}, {}, true};
  w.walk(top, {});
  return out;
}

bool reduction_shape(const ir::Stmt& s, ir::BinOp* op) {
  // `s = s op expr` with s not otherwise in expr; op commutative. Mirrors
  // the trace validator's reduction_shape in verify/events.cpp.
  if (s.kind != ir::StmtKind::kScalarAssign || !s.rhs) return false;
  const ir::Expr& rhs = *s.rhs;
  if (rhs.kind != ir::ExprKind::kBinary || rhs.operands.size() != 2)
    return false;
  if (rhs.op != ir::BinOp::kAdd && rhs.op != ir::BinOp::kMin &&
      rhs.op != ir::BinOp::kMax)
    return false;
  const ir::Expr* self = nullptr;
  const ir::Expr* other = nullptr;
  for (const auto& o : rhs.operands) {
    if (o->kind == ir::ExprKind::kScalarRef && o->scalar == s.lhs_scalar &&
        self == nullptr) {
      self = o.get();
    } else {
      other = o.get();
    }
  }
  if (!self || !other) return false;
  if (uses_scalar(*other, s.lhs_scalar)) return false;
  *op = rhs.op;
  return true;
}

namespace {

void collect_expr_refs(const ir::Program& program, const ir::Expr& e,
                       const AssignSite& site, std::vector<AffineRef>* out) {
  switch (e.kind) {
    case ir::ExprKind::kArrayRef: {
      AffineRef r;
      r.array = program.array(e.array).name;
      r.subscripts = e.subscripts;
      r.loop_vars = site.loop_vars;
      r.domains = site.domains;
      r.body_pos = site.path;
      r.exact_domain = site.exact_domain;
      out->push_back(std::move(r));
      break;
    }
    case ir::ExprKind::kScalarRef: {
      AffineRef r;
      r.scalar = e.scalar;
      r.loop_vars = site.loop_vars;
      r.domains = site.domains;
      r.body_pos = site.path;
      r.exact_domain = site.exact_domain;
      out->push_back(std::move(r));
      break;
    }
    default:
      break;
  }
  for (const auto& o : e.operands)
    collect_expr_refs(program, *o, site, out);
}

}  // namespace

std::vector<AffineRef> site_refs(const ir::Program& program,
                                 const AssignSite& site) {
  std::vector<AffineRef> out;
  const ir::Stmt& s = *site.stmt;
  if (s.rhs) collect_expr_refs(program, *s.rhs, site, &out);
  AffineRef w;
  if (s.kind == ir::StmtKind::kArrayAssign) {
    w.array = program.array(s.lhs_array).name;
    w.subscripts = s.lhs_subscripts;
  } else {
    w.scalar = s.lhs_scalar;
    w.reduction = reduction_shape(s, &w.reduction_op);
  }
  w.write = true;
  w.loop_vars = site.loop_vars;
  w.domains = site.domains;
  w.body_pos = site.path;
  w.exact_domain = site.exact_domain;
  out.push_back(std::move(w));
  return out;
}

RefSet collect_refs(const ir::Program& program, const ir::Stmt& top) {
  RefSet out;
  SiteWalk walk = collect_assign_sites(top);
  out.unreachable_guards = walk.unreachable_guards;
  for (const auto& site : walk.sites) {
    for (auto& r : site_refs(program, site)) {
      if (!r.exact_domain) ++out.inexact_refs;
      out.refs.push_back(std::move(r));
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// summarize_dependences

namespace {

bool same_space(const AffineRef& a, const AffineRef& b) {
  return a.array == b.array && a.scalar == b.scalar;
}

/// Conflict feasibility for a ref pair from top statements ta, tb with no
/// identified common loops. For same-statement pairs (identical body_pos)
/// the same-iteration case is excluded: the lhs store happens after the
/// rhs loads of the same instance, so only distinct iterations can
/// produce an event-ordered dependence.
Feasibility refs_conflict(const AffineRef& a, const AffineRef& b,
                          bool same_top) {
  if (!a.subscripts.empty() || !b.subscripts.empty()) {
    if (a.subscripts.size() != b.subscripts.size())
      return {Verdict::kUnknown, "dim-mismatch", {}};
  }
  bool same_stmt = same_top && a.body_pos == b.body_pos;
  if (!same_stmt) {
    PairSystem sys(a, b);
    return sys.solve();
  }
  // Same statement: require a lexicographically distinct iteration. Split
  // on the first differing level: delta < 0 or delta > 0.
  int levels = static_cast<int>(a.loop_vars.size());
  bool unknown = false;
  std::int64_t span = kBig;
  for (int l = 0; l < levels; ++l) {
    for (int sign = -1; sign <= 1; sign += 2) {
      PairSystem sys(a, b);
      for (int m = 0; m < l; ++m)
        sys.bound_difference(sys.a_var(m), 0, sys.b_var(m), 0, {0, 0});
      Interval r = sign < 0 ? Interval{-span, -1} : Interval{1, span};
      sys.bound_difference(sys.a_var(l), 0, sys.b_var(l), 0, r);
      Feasibility f = sys.solve();
      if (f.verdict == Verdict::kDependent) return f;
      if (f.verdict == Verdict::kUnknown) unknown = true;
    }
  }
  if (levels == 0 || !unknown)
    return {Verdict::kIndependent, levels == 0 ? "single-instance" : "siv",
            {}};
  return {Verdict::kUnknown, "", {}};
}

}  // namespace

DependenceSummary summarize_dependences(const ir::Program& program) {
  DependenceSummary out;
  std::vector<RefSet> refsets;
  refsets.reserve(program.top().size());
  for (const auto& s : program.top()) {
    refsets.push_back(collect_refs(program, *s));
    out.inexact_refs += refsets.back().inexact_refs;
  }
  int n = static_cast<int>(refsets.size());
  for (int ta = 0; ta < n; ++ta) {
    for (int tb = ta; tb < n; ++tb) {
      // Group conflicting spaces for this statement pair.
      std::vector<std::pair<std::string, std::string>> spaces;
      for (const auto& ra : refsets[ta].refs) {
        for (const auto& rb : refsets[tb].refs) {
          if (!same_space(ra, rb) || (!ra.write && !rb.write)) continue;
          auto key = std::make_pair(ra.array, ra.scalar);
          if (std::find(spaces.begin(), spaces.end(), key) == spaces.end())
            spaces.push_back(key);
        }
      }
      for (const auto& [arr, sc] : spaces) {
        StmtDependence d;
        d.stmt_a = ta;
        d.stmt_b = tb;
        d.array = arr;
        d.scalar = sc;
        d.verdict = Verdict::kIndependent;
        d.decided_by = "no-pair";
        for (const auto& ra : refsets[ta].refs) {
          if (ra.array != arr || ra.scalar != sc) continue;
          for (const auto& rb : refsets[tb].refs) {
            if (rb.array != arr || rb.scalar != sc) continue;
            if (!ra.write && !rb.write) continue;
            if (ta == tb && &ra > &rb) continue;  // unordered, skip dups
            Feasibility f = refs_conflict(ra, rb, ta == tb);
            if (f.verdict == Verdict::kDependent) {
              d.verdict = Verdict::kDependent;
              d.decided_by = f.decided_by;
            } else if (f.verdict == Verdict::kUnknown &&
                       d.verdict != Verdict::kDependent) {
              d.verdict = Verdict::kUnknown;
              d.decided_by = f.decided_by;
            } else if (f.verdict == Verdict::kIndependent &&
                       d.verdict == Verdict::kIndependent &&
                       d.decided_by == std::string("no-pair")) {
              d.decided_by = f.decided_by;
            }
          }
        }
        out.pairs.push_back(d);
        switch (d.verdict) {
          case Verdict::kIndependent:
            ++out.independent;
            break;
          case Verdict::kDependent:
            ++out.dependent;
            break;
          case Verdict::kUnknown:
            ++out.unknown;
            break;
        }
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// certify_parallel_accesses

Verdict certify_parallel_accesses(const std::vector<LinearAccess>& accesses,
                                  std::int64_t lower, std::int64_t upper) {
  if (lower > upper) return Verdict::kIndependent;
  bool unknown = false;
  std::int64_t trip = upper - lower + 1;
  for (std::size_t i = 0; i < accesses.size(); ++i) {
    for (std::size_t j = 0; j < accesses.size(); ++j) {
      const LinearAccess& w = accesses[i];
      const LinearAccess& o = accesses[j];
      if (!w.write) continue;
      if (w.space != o.space) continue;
      if (j < i && o.write) continue;  // write-write pairs once
      // Overlap at iterations x != y:
      //   |(w.base + w.coeff*x) - (o.base + o.coeff*y)| < elem
      // with elem = max width. Encoded as equality with a slack byte
      // offset t in (-elem, elem) and a nonzero iteration delta.
      std::int64_t elem = std::max(w.elem_bytes, o.elem_bytes);
      for (int sign = -1; sign <= 1; sign += 2) {
        std::vector<VarDomain> domains;
        domains.push_back(VarDomain::range(lower, upper));  // x
        domains.push_back(VarDomain::range(lower, upper));  // y
        domains.push_back(
            VarDomain::range(-(elem - 1), elem - 1));  // t (byte offset)
        // delta = y - x, constrained to one sign
        domains.push_back(sign < 0 ? VarDomain::range(-(trip - 1), -1)
                                   : VarDomain::range(1, trip - 1));
        LinEq overlap;  // w.base + w.coeff*x - o.base - o.coeff*y - t == 0
        overlap.terms.push_back({0, w.coeff});
        overlap.terms.push_back({1, -o.coeff});
        overlap.terms.push_back({2, -1});
        overlap.constant = w.base - o.base;
        LinEq delta;  // y - x - d == 0
        delta.terms.push_back({1, 1});
        delta.terms.push_back({0, -1});
        delta.terms.push_back({3, -1});
        Feasibility f = solve_system(std::move(domains),
                                     {std::move(overlap), std::move(delta)});
        if (f.verdict == Verdict::kDependent) return Verdict::kDependent;
        if (f.verdict == Verdict::kUnknown) unknown = true;
      }
    }
  }
  return unknown ? Verdict::kUnknown : Verdict::kIndependent;
}

}  // namespace bwc::verify
