#include "bwc/verify/static_legality.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <optional>
#include <set>
#include <utility>
#include <vector>

namespace bwc::verify {
namespace {

constexpr std::int64_t kSpan = std::int64_t{1} << 40;

// ---------------------------------------------------------------------------
// Atoms: assignment sites annotated with their top statement index.

struct Atom {
  int top = 0;
  AssignSite site;
  bool reduction = false;
  ir::BinOp reduction_op = ir::BinOp::kAdd;
};

std::vector<Atom> collect_atoms(const ir::Program& program, bool* exact) {
  std::vector<Atom> atoms;
  *exact = true;
  for (std::size_t t = 0; t < program.top().size(); ++t) {
    SiteWalk walk = collect_assign_sites(*program.top()[t]);
    if (walk.inexact_sites > 0) *exact = false;
    for (auto& site : walk.sites) {
      Atom a;
      a.top = static_cast<int>(t);
      a.site = std::move(site);
      a.reduction = reduction_shape(*a.site.stmt, &a.reduction_op);
      atoms.push_back(std::move(a));
    }
  }
  return atoms;
}

/// Number of leading loop levels the two atoms literally share (same loop
/// statements of the same top-level statement).
int common_levels(const Atom& x, const Atom& y) {
  if (x.top != y.top) return 0;
  int n = static_cast<int>(
      std::min(x.site.loop_addr.size(), y.site.loop_addr.size()));
  int common = 0;
  while (common < n) {
    int k = x.site.loop_addr[common];
    if (y.site.loop_addr[common] != k) break;
    if (!std::equal(x.site.path.begin(), x.site.path.begin() + k,
                    y.site.path.begin()))
      break;
    ++common;
  }
  return common;
}

/// Same-iteration execution order: negative when x executes first.
int path_order(const Atom& x, const Atom& y) {
  if (x.top != y.top) return x.top < y.top ? -1 : 1;
  if (x.site.path < y.site.path) return -1;
  if (y.site.path < x.site.path) return 1;
  return 0;
}

// ---------------------------------------------------------------------------
// Affine normalization of expression subtrees.

std::optional<ir::Affine> as_affine(const ir::Expr& e) {
  switch (e.kind) {
    case ir::ExprKind::kConst: {
      double v = e.value;
      if (std::floor(v) == v && std::abs(v) <= 1e15)
        return ir::Affine::constant(static_cast<std::int64_t>(v));
      return std::nullopt;
    }
    case ir::ExprKind::kLoopVar:
      return ir::Affine::var(e.loop_var);
    case ir::ExprKind::kBinary: {
      if (e.operands.size() != 2) return std::nullopt;
      auto a = as_affine(*e.operands[0]);
      auto b = as_affine(*e.operands[1]);
      if (!a || !b) return std::nullopt;
      switch (e.op) {
        case ir::BinOp::kAdd:
          return *a + *b;
        case ir::BinOp::kSub:
          return *a - *b;
        case ir::BinOp::kMul:
          if (a->is_constant()) return *b * a->constant_term();
          if (b->is_constant()) return *a * b->constant_term();
          return std::nullopt;
        default:
          return std::nullopt;
      }
    }
    default:
      return std::nullopt;
  }
}

// ---------------------------------------------------------------------------
// Reschedule matcher: does after-atom `a` implement before-atom `b` under a
// per-level shift/permutation instance map?

struct LevelMap {
  /// Per before level: matched after level (-1 when the before level is a
  /// singleton not represented in the after nest).
  std::vector<int> to_after;
  /// Iteration correspondence for mapped levels: after = before + shift.
  std::vector<std::int64_t> shift;
};

class RescheduleMatcher {
 public:
  RescheduleMatcher(const Atom& before, const Atom& after)
      : b_(before), a_(after) {}

  std::optional<LevelMap> match() {
    const ir::Stmt& sb = *b_.site.stmt;
    const ir::Stmt& sa = *a_.site.stmt;
    if (!b_.site.exact_domain || !a_.site.exact_domain) return std::nullopt;
    if (sb.kind != sa.kind) return std::nullopt;
    if (sb.kind == ir::StmtKind::kArrayAssign) {
      if (sb.lhs_array != sa.lhs_array) return std::nullopt;
      if (sb.lhs_subscripts.size() != sa.lhs_subscripts.size())
        return std::nullopt;
      for (std::size_t k = 0; k < sb.lhs_subscripts.size(); ++k)
        pairs_.push_back({sb.lhs_subscripts[k], sa.lhs_subscripts[k]});
    } else {
      if (sb.lhs_scalar != sa.lhs_scalar) return std::nullopt;
    }
    if (static_cast<bool>(sb.rhs) != static_cast<bool>(sa.rhs))
      return std::nullopt;
    if (sb.rhs && !compare(*sb.rhs, *sa.rhs)) return std::nullopt;
    return infer();
  }

 private:
  const Atom& b_;
  const Atom& a_;
  std::vector<std::pair<ir::Affine, ir::Affine>> pairs_;

  bool compare(const ir::Expr& eb, const ir::Expr& ea) {
    auto fb = as_affine(eb);
    auto fa = as_affine(ea);
    if (fb && fa) {
      pairs_.push_back({*fb, *fa});
      return true;
    }
    if (static_cast<bool>(fb) != static_cast<bool>(fa)) return false;
    if (eb.kind != ea.kind) return false;
    switch (eb.kind) {
      case ir::ExprKind::kConst:
        return eb.value == ea.value;
      case ir::ExprKind::kScalarRef:
        return eb.scalar == ea.scalar;
      case ir::ExprKind::kArrayRef: {
        if (eb.array != ea.array) return false;
        if (eb.subscripts.size() != ea.subscripts.size()) return false;
        for (std::size_t k = 0; k < eb.subscripts.size(); ++k)
          pairs_.push_back({eb.subscripts[k], ea.subscripts[k]});
        return true;
      }
      case ir::ExprKind::kInput: {
        if (eb.input_key != ea.input_key) return false;
        if (eb.input_extents != ea.input_extents) return false;
        if (eb.subscripts.size() != ea.subscripts.size()) return false;
        for (std::size_t k = 0; k < eb.subscripts.size(); ++k)
          pairs_.push_back({eb.subscripts[k], ea.subscripts[k]});
        return true;
      }
      case ir::ExprKind::kBinary:
      case ir::ExprKind::kCall: {
        if (eb.kind == ir::ExprKind::kBinary && eb.op != ea.op) return false;
        if (eb.kind == ir::ExprKind::kCall &&
            (eb.callee != ea.callee || eb.call_flops != ea.call_flops))
          return false;
        if (eb.operands.size() != ea.operands.size()) return false;
        for (std::size_t k = 0; k < eb.operands.size(); ++k)
          if (!compare(*eb.operands[k], *ea.operands[k])) return false;
        return true;
      }
      default:
        return false;
    }
  }

  int level_of(const std::vector<std::string>& vars,
               const std::string& name) const {
    auto it = std::find(vars.begin(), vars.end(), name);
    return it == vars.end() ? -1 : static_cast<int>(it - vars.begin());
  }

  std::optional<LevelMap> infer() {
    int nb = static_cast<int>(b_.site.loop_vars.size());
    int na = static_cast<int>(a_.site.loop_vars.size());
    // Bind before variables to after variables by matching coefficients
    // within each affine pair, iterating to a fixpoint so unambiguous
    // pairs resolve ambiguous ones.
    std::map<std::string, std::string> bind;     // before var -> after var
    std::map<std::string, std::string> claimed;  // after var -> before var
    for (const auto& [fb, fa] : pairs_)
      if (fb.terms().size() != fa.terms().size()) return std::nullopt;
    bool progress = true;
    while (progress) {
      progress = false;
      for (const auto& [fb, fa] : pairs_) {
        for (const auto& [ub, cb] : fb.terms()) {
          if (bind.count(ub)) continue;
          std::string candidate;
          int count = 0;
          for (const auto& [wa, ca] : fa.terms()) {
            if (ca != cb) continue;
            auto cl = claimed.find(wa);
            if (cl != claimed.end()) continue;
            // Skip after-vars already matched to another var of this pair.
            bool taken = false;
            for (const auto& [ub2, cb2] : fb.terms()) {
              auto b2 = bind.find(ub2);
              if (b2 != bind.end() && b2->second == wa) taken = true;
            }
            if (taken) continue;
            candidate = wa;
            ++count;
          }
          if (count == 1) {
            bind[ub] = candidate;
            claimed[candidate] = ub;
            progress = true;
          }
        }
      }
    }
    // Verify the binding fully explains every pair's variables.
    for (const auto& [fb, fa] : pairs_) {
      for (const auto& [ub, cb] : fb.terms()) {
        auto it = bind.find(ub);
        if (it == bind.end()) return std::nullopt;  // ambiguous
        if (fa.coeff(it->second) != cb) return std::nullopt;
      }
    }
    // Resolve variable names to levels; bound vars must exist in the nests.
    LevelMap map;
    map.to_after.assign(nb, -1);
    map.shift.assign(nb, 0);
    std::vector<bool> shift_known(nb, false);
    std::vector<bool> after_claimed(na, false);
    for (const auto& [ub, wa] : bind) {
      int mb = level_of(b_.site.loop_vars, ub);
      int ma = level_of(a_.site.loop_vars, wa);
      if (mb < 0 || ma < 0) return std::nullopt;
      map.to_after[mb] = ma;
      after_claimed[ma] = true;
    }
    // Shifts: each pair yields sum_u coeff_u * shift_u = const_b - const_a.
    // Solve equations with a single unknown until fixpoint.
    progress = true;
    while (progress) {
      progress = false;
      for (const auto& [fb, fa] : pairs_) {
        std::int64_t rhs = fb.constant_term() - fa.constant_term();
        int unknowns = 0;
        std::int64_t ucoeff = 0;
        int ulevel = -1;
        bool bad = false;
        for (const auto& [ub, cb] : fb.terms()) {
          int mb = level_of(b_.site.loop_vars, ub);
          if (mb < 0) {
            bad = true;
            break;
          }
          if (shift_known[mb]) {
            rhs -= cb * map.shift[mb];
          } else {
            ++unknowns;
            ucoeff = cb;
            ulevel = mb;
          }
        }
        if (bad) return std::nullopt;
        if (unknowns == 1) {
          if (ucoeff == 0 || rhs % ucoeff != 0) return std::nullopt;
          map.shift[ulevel] = rhs / ucoeff;
          shift_known[ulevel] = true;
          progress = true;
        }
      }
    }
    // Underdetermined shifts: pin from the domain correspondence.
    for (int m = 0; m < nb; ++m) {
      if (map.to_after[m] < 0 || shift_known[m]) continue;
      const VarDomain& db = b_.site.domains[m];
      const VarDomain& da = a_.site.domains[map.to_after[m]];
      if (db.empty() || da.empty()) return std::nullopt;
      map.shift[m] = da.hull().lo - db.hull().lo;
      shift_known[m] = true;
    }
    // Re-verify every pair's constant under the final shifts.
    for (const auto& [fb, fa] : pairs_) {
      std::int64_t want = fb.constant_term();
      for (const auto& [ub, cb] : fb.terms()) {
        int mb = level_of(b_.site.loop_vars, ub);
        want -= cb * map.shift[mb];
      }
      if (want != fa.constant_term()) return std::nullopt;
    }
    // Unmapped levels on either side must be singletons (one instance).
    for (int m = 0; m < nb; ++m)
      if (map.to_after[m] < 0 && b_.site.domains[m].size() != 1)
        return std::nullopt;
    for (int p = 0; p < na; ++p)
      if (!after_claimed[p] && a_.site.domains[p].size() != 1)
        return std::nullopt;
    // Mapped domains must correspond exactly under the shift.
    for (int m = 0; m < nb; ++m) {
      if (map.to_after[m] < 0) continue;
      const VarDomain& db = b_.site.domains[m];
      const VarDomain& da = a_.site.domains[map.to_after[m]];
      if (db.ranges.size() != da.ranges.size()) return std::nullopt;
      for (std::size_t k = 0; k < db.ranges.size(); ++k) {
        if (db.ranges[k].lo + map.shift[m] != da.ranges[k].lo ||
            db.ranges[k].hi + map.shift[m] != da.ranges[k].hi)
          return std::nullopt;
      }
    }
    return map;
  }
};

// ---------------------------------------------------------------------------
// Order classes: partitions of the instance-pair space by which side
// executes first, each expressed as bounded-difference constraints over the
// *after* iteration variables of the matched atoms.

struct DiffConstraint {
  /// PairSystem slot-a side: value = a-level var + shift (level -1 means
  /// the value is just `shift`, a constant). Same for the b side. The
  /// constraint is (b value) - (a value) in `range`.
  int a_level = -1;
  std::int64_t a_shift = 0;
  int b_level = -1;
  std::int64_t b_shift = 0;
  Interval range;
};

struct OrderClass {
  std::vector<DiffConstraint> constraints;
  int order = 0;  // -1: slot-a first, +1: slot-b first
};

/// Value of before-level m of an atom, expressed over its matched after
/// atom's levels: (after_level, shift) with after_level == -1 for a
/// constant. before = after - map.shift, constants come from singleton
/// before domains.
std::pair<int, std::int64_t> before_value(const Atom& before,
                                          const LevelMap& map, int m) {
  if (map.to_after[m] >= 0) return {map.to_after[m], -map.shift[m]};
  return {-1, before.site.domains[m].hull().lo};
}

/// Order classes of the *before* pair (A, B), with constraints over the
/// matched after atoms' variables. `self` marks A and B being the same
/// atom (the all-deltas-zero class is the identity and is skipped).
std::vector<OrderClass> before_classes(const Atom& A, const Atom& B,
                                       const LevelMap& mapA,
                                       const LevelMap& mapB, bool self) {
  std::vector<OrderClass> out;
  if (A.top != B.top) {
    OrderClass c;
    c.order = A.top < B.top ? -1 : 1;
    out.push_back(std::move(c));
    return out;
  }
  int cb = common_levels(A, B);
  for (int l = 0; l < cb; ++l) {
    for (int sign = -1; sign <= 1; sign += 2) {
      OrderClass c;
      for (int m = 0; m < l; ++m) {
        auto [va, sa] = before_value(A, mapA, m);
        auto [vb, sb] = before_value(B, mapB, m);
        c.constraints.push_back({va, sa, vb, sb, {0, 0}});
      }
      auto [va, sa] = before_value(A, mapA, l);
      auto [vb, sb] = before_value(B, mapB, l);
      Interval r = sign < 0 ? Interval{-kSpan, -1} : Interval{1, kSpan};
      c.constraints.push_back({va, sa, vb, sb, r});
      // delta = B - A; positive delta means A's instance is earlier.
      c.order = sign < 0 ? 1 : -1;
      out.push_back(std::move(c));
    }
  }
  int po = path_order(A, B);
  if (!self && po != 0) {
    OrderClass c;
    for (int m = 0; m < cb; ++m) {
      auto [va, sa] = before_value(A, mapA, m);
      auto [vb, sb] = before_value(B, mapB, m);
      c.constraints.push_back({va, sa, vb, sb, {0, 0}});
    }
    c.order = po;
    out.push_back(std::move(c));
  }
  return out;
}

/// Order classes of the *after* pair (A', B'): direct deltas.
std::vector<OrderClass> after_classes(const Atom& A, const Atom& B,
                                      bool self) {
  std::vector<OrderClass> out;
  if (A.top != B.top) {
    OrderClass c;
    c.order = A.top < B.top ? -1 : 1;
    out.push_back(std::move(c));
    return out;
  }
  int ca = common_levels(A, B);
  for (int l = 0; l < ca; ++l) {
    for (int sign = -1; sign <= 1; sign += 2) {
      OrderClass c;
      for (int m = 0; m < l; ++m)
        c.constraints.push_back({m, 0, m, 0, {0, 0}});
      Interval r = sign < 0 ? Interval{-kSpan, -1} : Interval{1, kSpan};
      c.constraints.push_back({l, 0, l, 0, r});
      c.order = sign < 0 ? 1 : -1;
      out.push_back(std::move(c));
    }
  }
  int po = path_order(A, B);
  if (!self && po != 0) {
    OrderClass c;
    for (int m = 0; m < ca; ++m)
      c.constraints.push_back({m, 0, m, 0, {0, 0}});
    c.order = po;
    out.push_back(std::move(c));
  }
  return out;
}

void apply_class(PairSystem* sys, const OrderClass& c) {
  for (const auto& k : c.constraints) {
    int va = k.a_level >= 0 ? sys->a_var(k.a_level) : -1;
    int vb = k.b_level >= 0 ? sys->b_var(k.b_level) : -1;
    sys->bound_difference(va, k.a_shift, vb, k.b_shift, k.range);
  }
}

// ---------------------------------------------------------------------------
// prove_reschedule

struct MatchedAtoms {
  std::vector<Atom> before;
  std::vector<Atom> after;
  /// before[i] corresponds to after[pair[i]].
  std::vector<int> pair;
  std::vector<LevelMap> maps;
};

std::optional<MatchedAtoms> match_atoms(const ir::Program& before,
                                        const ir::Program& after) {
  bool exact_b = true, exact_a = true;
  MatchedAtoms m;
  m.before = collect_atoms(before, &exact_b);
  m.after = collect_atoms(after, &exact_a);
  if (!exact_b || !exact_a) return std::nullopt;
  if (m.before.size() != m.after.size()) return std::nullopt;
  std::vector<bool> used(m.after.size(), false);
  m.pair.assign(m.before.size(), -1);
  m.maps.resize(m.before.size());
  for (std::size_t i = 0; i < m.before.size(); ++i) {
    for (std::size_t j = 0; j < m.after.size(); ++j) {
      if (used[j]) continue;
      RescheduleMatcher rm(m.before[i], m.after[j]);
      if (auto map = rm.match()) {
        m.pair[i] = static_cast<int>(j);
        m.maps[i] = std::move(*map);
        used[j] = true;
        break;
      }
    }
    if (m.pair[i] < 0) return std::nullopt;
  }
  return m;
}

bool same_decls(const ir::Program& before, const ir::Program& after) {
  if (before.arrays().size() != after.arrays().size()) return false;
  for (std::size_t i = 0; i < before.arrays().size(); ++i) {
    const auto& a = before.arrays()[i];
    const auto& b = after.arrays()[i];
    if (a.name != b.name || a.extents != b.extents ||
        a.elem_bytes != b.elem_bytes)
      return false;
  }
  auto outputs = [](const ir::Program& p) {
    std::set<std::string> out(p.output_scalars().begin(),
                              p.output_scalars().end());
    for (ir::ArrayId id : p.output_arrays()) out.insert(p.array(id).name);
    return out;
  };
  return outputs(before) == outputs(after);
}

/// Writes to scalar `s` across all atoms are commutative reductions with
/// one common operator (the trace validator's relaxation precondition).
bool reduction_scalar(const std::vector<Atom>& atoms, const std::string& s,
                      ir::BinOp* op) {
  bool any = false;
  for (const auto& at : atoms) {
    const ir::Stmt& st = *at.site.stmt;
    if (st.kind != ir::StmtKind::kScalarAssign || st.lhs_scalar != s)
      continue;
    if (!at.reduction) return false;
    if (any && at.reduction_op != *op) return false;
    *op = at.reduction_op;
    any = true;
  }
  return any;
}

}  // namespace

const char* legality_verdict_name(LegalityVerdict v) {
  switch (v) {
    case LegalityVerdict::kProven:
      return "proven";
    case LegalityVerdict::kRefuted:
      return "refuted";
    case LegalityVerdict::kUnknown:
      return "unknown";
  }
  return "?";
}

Report LegalityResult::to_report(const std::string& check,
                                 const std::string& code) const {
  Report r;
  r.check = check;
  r.instances_checked = static_cast<std::uint64_t>(pairs_checked);
  switch (verdict) {
    case LegalityVerdict::kProven:
      r.info(code + "-proven",
             "statically proven over " + std::to_string(pairs_checked) +
                 " conflicting reference pair(s)");
      break;
    case LegalityVerdict::kRefuted:
      r.error(code + "-refuted", reason.empty() ? "dependence order reversed"
                                                : reason);
      break;
    case LegalityVerdict::kUnknown:
      r.skipped = true;
      r.skip_reason = reason.empty() ? "static proof incomplete" : reason;
      break;
  }
  return r;
}

LegalityResult prove_reschedule(const ir::Program& before,
                                const ir::Program& after) {
  LegalityResult res;
  if (!same_decls(before, after)) {
    res.reason = "decl-mismatch";
    return res;
  }
  auto matched = match_atoms(before, after);
  if (!matched) {
    res.reason = "atom-match-failed";
    return res;
  }
  const MatchedAtoms& m = *matched;

  // Reduction relaxation: per scalar whose writes are all commutative
  // reductions with one op, write-write order (and the accumulator's own
  // read) is exempt. Must hold in both programs; atoms match structurally,
  // so checking the before program suffices, but verify both for safety.
  std::set<std::string> relaxed;
  {
    std::set<std::string> scalars;
    for (const auto& at : m.before)
      if (at.site.stmt->kind == ir::StmtKind::kScalarAssign)
        scalars.insert(at.site.stmt->lhs_scalar);
    for (const auto& s : scalars) {
      ir::BinOp op_b = ir::BinOp::kAdd, op_a = ir::BinOp::kAdd;
      if (reduction_scalar(m.before, s, &op_b) &&
          reduction_scalar(m.after, s, &op_a) && op_b == op_a)
        relaxed.insert(s);
    }
  }

  bool refuted = false;
  for (std::size_t i = 0; i < m.before.size() && !refuted; ++i) {
    for (std::size_t j = i; j < m.before.size() && !refuted; ++j) {
      const Atom& A = m.before[i];
      const Atom& B = m.before[j];
      const Atom& Ap = m.after[m.pair[i]];
      const Atom& Bp = m.after[m.pair[j]];
      bool self = i == j;
      std::vector<AffineRef> ra = site_refs(after, Ap.site);
      std::vector<AffineRef> rb = site_refs(after, Bp.site);
      std::vector<OrderClass> bcs;
      std::vector<OrderClass> acs;
      bool classes_built = false;
      for (std::size_t x = 0; x < ra.size(); ++x) {
        std::size_t y0 = self ? x : 0;
        for (std::size_t y = y0; y < rb.size(); ++y) {
          const AffineRef& fa = ra[x];
          const AffineRef& fb = rb[y];
          if (fa.array != fb.array || fa.scalar != fb.scalar) continue;
          if (!fa.write && !fb.write) continue;
          if (!fa.scalar.empty() && relaxed.count(fa.scalar)) {
            // Write-write between reduction updates, and a reduction's
            // read of its own accumulator, are order-exempt.
            bool a_upd = Ap.reduction && Ap.site.stmt->lhs_scalar == fa.scalar;
            bool b_upd = Bp.reduction && Bp.site.stmt->lhs_scalar == fb.scalar;
            if (a_upd && b_upd) continue;
          }
          ++res.pairs_checked;
          // Unconstrained conflict test first: provably disjoint pairs
          // need no order reasoning.
          {
            PairSystem sys(fa, fb);
            if (self) {
              // Exclude the identity instance: some level must differ.
              // Handled below by the per-level classes; here only test
              // overall feasibility.
            }
            Feasibility f = sys.solve();
            if (f.verdict == Verdict::kIndependent) continue;
          }
          if (!classes_built) {
            bcs = before_classes(A, B, m.maps[i], m.maps[j], self);
            acs = after_classes(Ap, Bp, self);
            classes_built = true;
          }
          bool pair_unknown = false;
          for (const auto& bc : bcs) {
            for (const auto& ac : acs) {
              if (bc.order == ac.order) continue;
              PairSystem sys(fa, fb);
              apply_class(&sys, bc);
              apply_class(&sys, ac);
              Feasibility f = sys.solve();
              if (f.verdict == Verdict::kDependent) {
                res.verdict = LegalityVerdict::kRefuted;
                res.reason = "dependence-reversed: " +
                             (fa.array.empty() ? fa.scalar : fa.array);
                refuted = true;
              } else if (f.verdict == Verdict::kUnknown) {
                pair_unknown = true;
              }
              if (refuted) break;
            }
            if (refuted) break;
          }
          if (pair_unknown && !refuted) ++res.pairs_unknown;
        }
      }
    }
  }
  if (refuted) return res;
  if (res.pairs_unknown > 0) {
    res.verdict = LegalityVerdict::kUnknown;
    res.reason = "conflict-undecided";
    return res;
  }
  res.verdict = LegalityVerdict::kProven;
  return res;
}

// ---------------------------------------------------------------------------
// Store elimination / storage contraction: lockstep comparison modulo
// array-to-scalar substitution.

namespace {

struct SubstSpec {
  /// Array name -> replacement scalar. For store elimination only *writes*
  /// and forwarded reads change; for contraction every reference changes.
  std::map<std::string, std::string> array_to_scalar;

  struct RewrittenRef {
    std::string array;
    std::vector<ir::Affine> tuple;
    bool write = false;
    const Atom* atom = nullptr;
  };
  std::vector<RewrittenRef> rewritten;
};

/// Structural equality of before/after expressions where a before read
/// A[tuple] (A in spec) may appear as the replacement scalar in after.
bool equal_modulo(const ir::Program& pb, const ir::Program& pa,
                  const ir::Expr& eb, const ir::Expr& ea, const Atom& atom,
                  SubstSpec* spec) {
  if (eb.kind == ir::ExprKind::kArrayRef) {
    auto it = spec->array_to_scalar.find(pb.array(eb.array).name);
    if (it != spec->array_to_scalar.end()) {
      if (ea.kind == ir::ExprKind::kScalarRef && ea.scalar == it->second) {
        spec->rewritten.push_back(
            {pb.array(eb.array).name, eb.subscripts, false, &atom});
        return true;
      }
      // A surviving read must stay intact; fall through to the strict
      // comparison below.
    }
  }
  if (eb.kind != ea.kind) return false;
  switch (eb.kind) {
    case ir::ExprKind::kConst:
      return eb.value == ea.value;
    case ir::ExprKind::kScalarRef:
      return eb.scalar == ea.scalar;
    case ir::ExprKind::kLoopVar:
      return eb.loop_var == ea.loop_var;
    case ir::ExprKind::kArrayRef:
      return pb.array(eb.array).name == pa.array(ea.array).name &&
             eb.subscripts == ea.subscripts;
    case ir::ExprKind::kInput:
      return eb.input_key == ea.input_key &&
             eb.input_extents == ea.input_extents &&
             eb.subscripts == ea.subscripts;
    case ir::ExprKind::kBinary:
    case ir::ExprKind::kCall: {
      if (eb.kind == ir::ExprKind::kBinary && eb.op != ea.op) return false;
      if (eb.kind == ir::ExprKind::kCall &&
          (eb.callee != ea.callee || eb.call_flops != ea.call_flops))
        return false;
      if (eb.operands.size() != ea.operands.size()) return false;
      for (std::size_t k = 0; k < eb.operands.size(); ++k)
        if (!equal_modulo(pb, pa, *eb.operands[k], *ea.operands[k], atom,
                          spec))
          return false;
      return true;
    }
  }
  return false;
}

/// Compare one before/after atom pair in lockstep: identical loop context
/// and path, statements equal modulo the substitution.
bool atoms_equal_modulo(const ir::Program& pb, const ir::Program& pa,
                        const Atom& b, const Atom& a, SubstSpec* spec) {
  if (b.top != a.top || b.site.path != a.site.path) return false;
  if (b.site.loop_vars != a.site.loop_vars) return false;
  if (!b.site.exact_domain || !a.site.exact_domain) return false;
  if (b.site.domains.size() != a.site.domains.size()) return false;
  for (std::size_t l = 0; l < b.site.domains.size(); ++l) {
    if (b.site.domains[l].ranges.size() != a.site.domains[l].ranges.size())
      return false;
    for (std::size_t k = 0; k < b.site.domains[l].ranges.size(); ++k)
      if (b.site.domains[l].ranges[k].lo != a.site.domains[l].ranges[k].lo ||
          b.site.domains[l].ranges[k].hi != a.site.domains[l].ranges[k].hi)
        return false;
  }
  const ir::Stmt& sb = *b.site.stmt;
  const ir::Stmt& sa = *a.site.stmt;
  if (sb.kind == ir::StmtKind::kArrayAssign) {
    auto it = spec->array_to_scalar.find(pb.array(sb.lhs_array).name);
    if (it != spec->array_to_scalar.end()) {
      // Write rewritten to the scalar.
      if (sa.kind != ir::StmtKind::kScalarAssign ||
          sa.lhs_scalar != it->second)
        return false;
      spec->rewritten.push_back(
          {pb.array(sb.lhs_array).name, sb.lhs_subscripts, true, &b});
      return equal_modulo(pb, pa, *sb.rhs, *sa.rhs, b, spec);
    }
  }
  if (sb.kind != sa.kind) return false;
  if (sb.kind == ir::StmtKind::kArrayAssign) {
    if (pb.array(sb.lhs_array).name != pa.array(sa.lhs_array).name)
      return false;
    if (sb.lhs_subscripts != sa.lhs_subscripts) return false;
  } else {
    if (sb.lhs_scalar != sa.lhs_scalar) return false;
  }
  return equal_modulo(pb, pa, *sb.rhs, *sa.rhs, b, spec);
}

/// Cross-iteration conflict between two refs of the same full-depth
/// context: can distinct iterations touch a common element? Used for
/// injectivity and write/read isolation proofs.
Verdict distinct_iteration_conflict(const AffineRef& a, const AffineRef& b,
                                    Interval delta_at_some_level) {
  int levels = static_cast<int>(a.loop_vars.size());
  bool unknown = false;
  for (int l = 0; l < levels; ++l) {
    for (int sign = -1; sign <= 1; sign += 2) {
      PairSystem sys(a, b);
      for (int m = 0; m < l; ++m)
        sys.bound_difference(sys.a_var(m), 0, sys.b_var(m), 0, {0, 0});
      Interval r = sign < 0 ? Interval{delta_at_some_level.lo, -1}
                            : Interval{1, delta_at_some_level.hi};
      sys.bound_difference(sys.a_var(l), 0, sys.b_var(l), 0, r);
      Feasibility f = sys.solve();
      if (f.verdict == Verdict::kDependent) return Verdict::kDependent;
      if (f.verdict == Verdict::kUnknown) unknown = true;
    }
  }
  return unknown ? Verdict::kUnknown : Verdict::kIndependent;
}

/// `w` (a write) strictly before `r` in event order, touching a common
/// element: infeasible? Both refs belong to atoms of the same program.
Verdict write_before_read_conflict(const ir::Program& /*program*/,
                                   const Atom& wa, const AffineRef& w,
                                   const Atom& ra, const AffineRef& r) {
  if (wa.top < ra.top) {
    PairSystem sys(w, r);
    Feasibility f = sys.solve();
    return f.verdict;
  }
  if (wa.top > ra.top) return Verdict::kIndependent;
  // Same top statement: writer earlier in some shared level, or same
  // iteration with an earlier body position.
  int cl = common_levels(wa, ra);
  bool unknown = false;
  for (int l = 0; l < cl; ++l) {
    for (int sign : {1}) {
      (void)sign;
      // delta = r_iter - w_iter > 0 at the first differing level.
      PairSystem sys(w, r);
      for (int m = 0; m < l; ++m)
        sys.bound_difference(sys.a_var(m), 0, sys.b_var(m), 0, {0, 0});
      sys.bound_difference(sys.a_var(l), 0, sys.b_var(l), 0, {1, kSpan});
      Feasibility f = sys.solve();
      if (f.verdict == Verdict::kDependent) return Verdict::kDependent;
      if (f.verdict == Verdict::kUnknown) unknown = true;
    }
  }
  if (path_order(wa, ra) < 0) {
    // Same iteration, writer's statement executes first.
    PairSystem sys(w, r);
    for (int m = 0; m < cl; ++m)
      sys.bound_difference(sys.a_var(m), 0, sys.b_var(m), 0, {0, 0});
    Feasibility f = sys.solve();
    if (f.verdict == Verdict::kDependent) return Verdict::kDependent;
    if (f.verdict == Verdict::kUnknown) unknown = true;
  }
  return unknown ? Verdict::kUnknown : Verdict::kIndependent;
}

}  // namespace

LegalityResult prove_store_elimination(const ir::Program& before,
                                       const ir::Program& after) {
  LegalityResult res;
  // Arrays written in before but never written in after were eliminated;
  // their forwarding scalars are the after-only scalars.
  bool exact_b = true, exact_a = true;
  std::vector<Atom> ba = collect_atoms(before, &exact_b);
  std::vector<Atom> aa = collect_atoms(after, &exact_a);
  if (!exact_b || !exact_a) {
    res.reason = "unrefinable-guard";
    return res;
  }
  if (ba.size() != aa.size()) {
    res.reason = "atom-count-mismatch";
    return res;
  }
  // Discover eliminated arrays: before atom writes array A, the positional
  // after atom writes a scalar.
  SubstSpec spec;
  for (std::size_t i = 0; i < ba.size(); ++i) {
    const ir::Stmt& sb = *ba[i].site.stmt;
    const ir::Stmt& sa = *aa[i].site.stmt;
    if (sb.kind == ir::StmtKind::kArrayAssign &&
        sa.kind == ir::StmtKind::kScalarAssign) {
      const std::string& arr = before.array(sb.lhs_array).name;
      auto it = spec.array_to_scalar.find(arr);
      if (it != spec.array_to_scalar.end() && it->second != sa.lhs_scalar) {
        res.reason = "inconsistent-forwarding-scalar";
        return res;
      }
      spec.array_to_scalar[arr] = sa.lhs_scalar;
    }
  }
  if (spec.array_to_scalar.empty()) {
    res.reason = "no-eliminated-array";
    return res;
  }
  for (const auto& [arr, scalar] : spec.array_to_scalar) {
    // The forwarding scalar must be fresh and must not be an output.
    for (const auto& s : before.scalars()) {
      if (s == scalar) {
        res.reason = "forwarding-scalar-not-fresh";
        return res;
      }
    }
    ir::ArrayId id = before.array_id(arr);
    if (id >= 0 && before.is_output_array(id)) {
      res.reason = "eliminated-array-is-output";
      return res;
    }
  }
  for (std::size_t i = 0; i < ba.size(); ++i) {
    if (!atoms_equal_modulo(before, after, ba[i], aa[i], &spec)) {
      res.reason = "atom-mismatch";
      return res;
    }
  }
  // Per eliminated array: single writer statement; rewritten reads are in
  // the writer's iteration with the identical tuple, after the write; the
  // write tuple is injective across iterations; surviving reads never
  // observe an eliminated write.
  for (const auto& [arr, scalar] : spec.array_to_scalar) {
    const SubstSpec::RewrittenRef* writer = nullptr;
    for (const auto& rw : spec.rewritten) {
      if (rw.array != arr || !rw.write) continue;
      if (writer != nullptr) {
        res.reason = "multiple-writers";
        return res;
      }
      writer = &rw;
    }
    if (!writer) {
      res.reason = "no-writer";
      return res;
    }
    AffineRef wref;
    wref.array = arr;
    wref.subscripts = writer->tuple;
    wref.write = true;
    wref.loop_vars = writer->atom->site.loop_vars;
    wref.domains = writer->atom->site.domains;
    // Injectivity: distinct iterations write distinct elements.
    ++res.pairs_checked;
    if (distinct_iteration_conflict(wref, wref, {-kSpan, kSpan}) !=
        Verdict::kIndependent) {
      res.reason = "write-tuple-not-injective";
      return res;
    }
    // Rewritten reads: same statement context as the writer, same tuple,
    // executed after the write in the same iteration.
    for (const auto& rw : spec.rewritten) {
      if (rw.array != arr || rw.write) continue;
      const Atom& rat = *rw.atom;
      if (rat.top != writer->atom->top ||
          common_levels(rat, *writer->atom) !=
              static_cast<int>(rat.site.loop_vars.size()) ||
          rat.site.loop_vars.size() !=
              writer->atom->site.loop_vars.size()) {
        res.reason = "forwarded-read-outside-writer-nest";
        return res;
      }
      if (path_order(*writer->atom, rat) > 0) {
        res.reason = "forwarded-read-before-write";
        return res;
      }
      if (!(rw.tuple == writer->tuple)) {
        res.reason = "forwarded-read-tuple-mismatch";
        return res;
      }
      ++res.pairs_checked;
    }
    // Surviving reads of the array in `before` (and, identically, in
    // `after`): must never read an element some write instance has
    // already produced -- otherwise removing the writes changes them.
    for (const auto& at : ba) {
      for (const auto& ref : site_refs(before, at.site)) {
        if (ref.write || ref.array != arr) continue;
        // Skip reads that were rewritten (they match the writer's own
        // statement tuple records).
        bool rewritten = false;
        for (const auto& rw : spec.rewritten) {
          if (rw.array != arr || rw.write) continue;
          if (rw.atom->top == at.top && rw.atom->site.path == at.site.path &&
              rw.tuple == ref.subscripts)
            rewritten = true;
        }
        if (rewritten) continue;
        ++res.pairs_checked;
        Verdict v = write_before_read_conflict(before, *writer->atom, wref,
                                               at, ref);
        if (v != Verdict::kIndependent) {
          res.reason = "surviving-read-observes-write";
          return res;
        }
      }
    }
  }
  res.verdict = LegalityVerdict::kProven;
  return res;
}

LegalityResult prove_storage_reduction(const ir::Program& before,
                                       const ir::Program& after) {
  LegalityResult res;
  bool exact_b = true, exact_a = true;
  std::vector<Atom> ba = collect_atoms(before, &exact_b);
  std::vector<Atom> aa = collect_atoms(after, &exact_a);
  if (!exact_b || !exact_a) {
    res.reason = "unrefinable-guard";
    return res;
  }
  if (ba.size() != aa.size()) {
    // Shrinking/peeling insert copy statements; only pure contraction is
    // modelled statically.
    res.reason = "not-pure-contraction";
    return res;
  }
  SubstSpec spec;
  for (std::size_t i = 0; i < ba.size(); ++i) {
    const ir::Stmt& sb = *ba[i].site.stmt;
    const ir::Stmt& sa = *aa[i].site.stmt;
    if (sb.kind == ir::StmtKind::kArrayAssign &&
        sa.kind == ir::StmtKind::kScalarAssign) {
      const std::string& arr = before.array(sb.lhs_array).name;
      auto it = spec.array_to_scalar.find(arr);
      if (it != spec.array_to_scalar.end() && it->second != sa.lhs_scalar) {
        res.reason = "inconsistent-contraction-scalar";
        return res;
      }
      spec.array_to_scalar[arr] = sa.lhs_scalar;
    }
  }
  if (spec.array_to_scalar.empty()) {
    res.reason = "no-contracted-array";
    return res;
  }
  for (const auto& [arr, scalar] : spec.array_to_scalar) {
    for (const auto& s : before.scalars()) {
      if (s == scalar) {
        res.reason = "contraction-scalar-not-fresh";
        return res;
      }
    }
    ir::ArrayId id = before.array_id(arr);
    if (id >= 0 && before.is_output_array(id)) {
      res.reason = "contracted-array-is-output";
      return res;
    }
  }
  for (std::size_t i = 0; i < ba.size(); ++i) {
    if (!atoms_equal_modulo(before, after, ba[i], aa[i], &spec)) {
      res.reason = "atom-mismatch";
      return res;
    }
  }
  // Every read of a contracted array must be dominated, within the same
  // iteration of a common full-depth nest, by the nearest preceding write,
  // with the identical subscript tuple (live range inside one iteration).
  for (const auto& [arr, scalar] : spec.array_to_scalar) {
    // Collect refs of `before` in execution order.
    struct Occ {
      const Atom* atom;
      std::vector<ir::Affine> tuple;
      bool write;
    };
    std::vector<Occ> occs;
    for (const auto& at : ba) {
      // site_refs returns rhs reads (pre-order) then the lhs write, which
      // is exactly the within-statement event order.
      for (const auto& ref : site_refs(before, at.site)) {
        if (ref.array != arr) continue;
        occs.push_back({&at, ref.subscripts, ref.write});
      }
    }
    if (occs.empty()) continue;
    const Atom* anchor = occs.front().atom;
    for (const auto& o : occs) {
      if (o.atom->top != anchor->top ||
          o.atom->site.loop_vars != anchor->site.loop_vars ||
          common_levels(*o.atom, *anchor) !=
              static_cast<int>(anchor->site.loop_vars.size())) {
        res.reason = "refs-span-nests";
        return res;
      }
      // Guarded refs would make "preceding write in every iteration"
      // unsound; require full-domain contexts identical to the anchor's.
      if (o.atom->site.domains.size() != anchor->site.domains.size()) {
        res.reason = "refs-span-nests";
        return res;
      }
      for (std::size_t l = 0; l < anchor->site.domains.size(); ++l) {
        const auto& da = o.atom->site.domains[l];
        const auto& db = anchor->site.domains[l];
        if (da.ranges.size() != db.ranges.size()) {
          res.reason = "guarded-contraction-ref";
          return res;
        }
        for (std::size_t k = 0; k < da.ranges.size(); ++k)
          if (da.ranges[k].lo != db.ranges[k].lo ||
              da.ranges[k].hi != db.ranges[k].hi) {
            res.reason = "guarded-contraction-ref";
            return res;
          }
      }
    }
    // Body-order simulation: the scalar must hold the value of the element
    // each read expects.
    const std::vector<ir::Affine>* last_write = nullptr;
    for (const auto& o : occs) {
      if (o.write) {
        last_write = &o.tuple;
      } else {
        if (last_write == nullptr || !(*last_write == o.tuple)) {
          res.reason = "read-not-dominated-by-same-tuple-write";
          return res;
        }
        ++res.pairs_checked;
      }
    }
    if (last_write == nullptr) {
      res.reason = "no-write";
      return res;
    }
    ++res.pairs_checked;
  }
  res.verdict = LegalityVerdict::kProven;
  return res;
}

LegalityResult prove_layout_change(const ir::Program& before,
                                   const ir::Program& after) {
  LegalityResult res;
  // Every declared layout in `after` must stand on its own: a malformed
  // permutation, negative padding, or incoherent interleave group is a
  // refutation, not an imprecision.
  for (int a = 0; a < after.array_count(); ++a) {
    try {
      after.array(a).check_layout();
      (void)ir::resolve_addressing(after, a);
    } catch (const std::exception& e) {
      res.reason = std::string("invalid-layout: ") + e.what();
      res.verdict = LegalityVerdict::kRefuted;
      return res;
    }
    ++res.pairs_checked;
  }
  // Strip layouts from both sides; what remains must be the identical
  // program. Anything else (a rewritten statement, a resized array) is
  // outside this prover's model.
  ir::Program sb = before.clone();
  ir::Program sa = after.clone();
  for (ir::Program* p : {&sb, &sa})
    for (int a = 0; a < p->array_count(); ++a)
      p->mutable_array(a).layout = ir::ArrayLayout{};
  if (!ir::equal(sb, sa)) {
    res.reason = "not-a-pure-layout-change";
    return res;
  }
  res.verdict = LegalityVerdict::kProven;
  return res;
}

}  // namespace bwc::verify
