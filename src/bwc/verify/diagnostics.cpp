#include "bwc/verify/diagnostics.h"

#include <sstream>

namespace bwc::verify {

bool Report::ok() const { return error_count() == 0; }

int Report::error_count() const {
  int n = 0;
  for (const auto& d : diags) {
    if (d.severity == Severity::kError) ++n;
  }
  return n;
}

std::string Report::first_error() const {
  for (const auto& d : diags) {
    if (d.severity == Severity::kError) return d.message;
  }
  return {};
}

std::string Report::render() const {
  std::ostringstream os;
  os << "[" << check << "] ";
  if (skipped) {
    os << "SKIPPED: " << skip_reason << "\n";
  } else if (ok()) {
    os << "OK";
    if (instances_checked > 0) os << " (" << instances_checked << " instances)";
    os << "\n";
  } else {
    os << error_count() << " violation(s)\n";
  }
  for (const auto& d : diags) {
    os << "  " << (d.severity == Severity::kError ? "error" : "note") << " ["
       << d.code << "] " << d.message << "\n";
  }
  return os.str();
}

void Report::error(const std::string& code, const std::string& message) {
  diags.push_back({Severity::kError, code, message});
}

void Report::info(const std::string& code, const std::string& message) {
  diags.push_back({Severity::kInfo, code, message});
}

void Report::merge(const Report& other) {
  for (const auto& d : other.diags) diags.push_back(d);
  if (other.skipped) {
    skipped = true;
    skip_reason = other.skip_reason;
  }
  instances_checked += other.instances_checked;
}

}  // namespace bwc::verify
