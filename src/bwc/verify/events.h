// Concrete access-event enumeration for verification.
//
// All loop bounds, guards and subscripts in the IR are affine with constant
// coefficients over concretely-bounded loop variables, so the exact set of
// dynamic statement instances -- and the exact memory locations each one
// reads and writes -- is computable without executing any arithmetic. The
// tracer walks a program in execution order and emits one Instance per
// dynamic assignment. This is the verifier's independent ground truth: it
// shares no code with analysis/ (summaries, dependence tests, liveness) or
// runtime/ (interpreter, compiled engine).
//
// Locations are interned by *name* in a LocationSpace shared across the
// programs being compared, so that an original and a transformed program
// agree on what "element 17 of array a" means even though their ArrayIds
// may differ.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "bwc/ir/program.h"
#include "bwc/verify/diagnostics.h"

namespace bwc::verify {

/// Encoded memory location: an array element or a scalar. Arrays and
/// scalars are interned by name so locations are comparable across the
/// programs of a translation-validation pair.
using Location = std::uint64_t;

class LocationSpace {
 public:
  /// Intern array `name`; `elem_bytes` is recorded on first sight.
  int array_slot(const std::string& name, std::uint64_t elem_bytes = 8);
  int scalar_slot(const std::string& name);

  Location array_element(int slot, std::int64_t element) const;
  Location scalar(int slot) const;

  bool is_scalar(Location loc) const;
  /// Array slot of an array-element location (must not be a scalar).
  int slot_of(Location loc) const;
  std::int64_t element_of(Location loc) const;

  const std::string& array_name(int slot) const;
  const std::string& scalar_name(int slot) const;
  std::uint64_t array_elem_bytes(int slot) const;

  /// Human-readable location, e.g. "a[17]" or "sum".
  std::string describe(Location loc) const;

 private:
  std::map<std::string, int> array_slots_;
  std::vector<std::string> array_names_;
  std::vector<std::uint64_t> array_elem_bytes_;
  std::map<std::string, int> scalar_slots_;
  std::vector<std::string> scalar_names_;
};

/// One dynamic execution of an assignment statement.
struct Instance {
  /// Index of the enclosing top-level statement in Program::top().
  std::int32_t top_index = -1;
  /// Value of the outermost enclosing loop variable (0 when not in a loop);
  /// used by the observability checker's live-distance measure.
  std::int64_t outer_iter = 0;
  /// Loop-variable values outermost-to-innermost (diagnostics only).
  std::vector<std::int64_t> iters;
  /// The single location written (array element or scalar).
  Location write = 0;
  /// Locations read by the right-hand side, sorted (duplicates removed).
  std::vector<Location> reads;
  /// Semantic fingerprint of the right-hand side with loop variables
  /// resolved to their concrete values and numeric subtrees folded:
  /// invariant under loop-variable renaming, shifting (i -> i - s) and any
  /// other substitution that preserves the computed value's structure.
  std::uint64_t rhs_hash = 0;
  /// The statement has the reduction shape `s = s op expr` with s not
  /// otherwise appearing in expr (op one of +, min, max).
  bool reduction = false;
  ir::BinOp reduction_op = ir::BinOp::kAdd;

  /// "stmt #2 (i=5, j=3)" -- identifies the instance in diagnostics.
  std::string describe() const;
};

struct EventTrace {
  std::vector<Instance> instances;  // in execution order
  /// Total access events (reads + writes) across all instances.
  std::uint64_t event_count = 0;
  /// The budget was exhausted; `instances` is incomplete and the trace
  /// must not be used for certification.
  bool truncated = false;
};

/// Statically estimate the number of access events the trace would emit
/// (sum over assignments of trip-count x accesses; guards assumed taken).
/// Used to refuse oversized traces before paying for them.
std::uint64_t estimate_events(const ir::Program& program);

/// Enumerate the program's dynamic instances in execution order. The
/// program must already be structurally valid (validate_structure);
/// malformed programs cause diagnostics via `report` and a truncated
/// trace. Tracing stops once `max_events` access events were emitted.
EventTrace trace_program(const ir::Program& program, LocationSpace& space,
                         std::uint64_t max_events, Report* report);

}  // namespace bwc::verify
