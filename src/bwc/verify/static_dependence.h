// Symbolic dependence tests over affine subscripts: the static analogue of
// the trace-based translation validator.
//
// Everything here reasons about *bounded integer linear systems*: each loop
// variable ranges over a guard-refined union of intervals (refined through
// kIf statements with the shared interval.h splitter), each subscript
// dimension of a conflicting reference pair contributes one linear equation,
// and scheduling questions (can the conflict happen at a lexicographically
// earlier iteration?) add bounded difference constraints. The solver layers
// the classical tests -- ZIV, GCD, Banerjee interval bounds, strong-SIV
// pinning -- on top of exact +/-1-pivot Gaussian elimination, and answers
// with a three-valued verdict:
//
//   kIndependent  proven: the system has no integer solution
//   kDependent    proven: an explicit in-domain witness was found
//   kUnknown      neither proof succeeded (callers must treat this
//                 conservatively, e.g. fall back to trace validation)
//
// Both directions are sound; only kUnknown loses precision. The module
// depends on support/ + ir/ only (the verify charter), so the optimizer,
// the runtime and the lint pass can all consume it without layering cycles.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bwc/ir/program.h"
#include "bwc/verify/interval.h"

namespace bwc::verify {

enum class Verdict { kIndependent, kDependent, kUnknown };

const char* verdict_name(Verdict v);

// ---------------------------------------------------------------------------
// Bounded integer linear systems.

/// A variable's domain: a union of disjoint, sorted, non-empty closed
/// intervals. An empty `ranges` vector means the variable has no legal
/// value (the whole system is infeasible).
struct VarDomain {
  std::vector<Interval> ranges;

  static VarDomain range(std::int64_t lo, std::int64_t hi);
  static VarDomain singleton(std::int64_t v) { return range(v, v); }

  Interval hull() const;
  bool empty() const;
  bool contains(std::int64_t v) const;
  std::int64_t size() const;
  /// Intersect every piece with [lo, hi] (may leave the domain empty).
  void clip(std::int64_t lo, std::int64_t hi);
};

/// coeff * var (var indexes into the system's domain vector).
struct LinTerm {
  int var = 0;
  std::int64_t coeff = 0;
};

/// sum(terms) + constant == 0.
struct LinEq {
  std::vector<LinTerm> terms;
  std::int64_t constant = 0;
};

/// Outcome of a feasibility query, with provenance for diagnostics.
struct Feasibility {
  Verdict verdict = Verdict::kUnknown;
  /// Which test decided: "empty-domain", "ziv", "gcd", "banerjee", "siv",
  /// "witness"; "" when undecided.
  const char* decided_by = "";
  /// Per-variable solution when verdict == kDependent.
  std::vector<std::int64_t> witness;
};

/// Decide whether {all eqs == 0, var i in domains[i]} has an integer
/// solution. Exact elimination + ZIV/GCD/Banerjee/SIV refutation, greedy
/// back-substitution witness search.
Feasibility solve_system(std::vector<VarDomain> domains,
                         std::vector<LinEq> eqs);

// ---------------------------------------------------------------------------
// References and pairwise conflict systems.

/// One array or scalar reference inside its (guard-refined) loop nest.
struct AffineRef {
  /// Enclosing loop variables, outermost first, with their refined domains.
  std::vector<std::string> loop_vars;
  std::vector<VarDomain> domains;
  /// Subscript expressions over loop_vars; empty for scalar references.
  std::vector<ir::Affine> subscripts;
  /// Referenced space: exactly one of array / scalar is set.
  std::string array;
  std::string scalar;
  bool write = false;
  /// The write comes from a commutative reduction `s = s op expr`.
  bool reduction = false;
  ir::BinOp reduction_op = ir::BinOp::kAdd;
  /// Position of the owning statement inside its top-level statement
  /// (indices down the statement tree), used to order same-iteration events.
  std::vector<int> body_pos;
  /// Domains are exact. False when an enclosing guard could not be split
  /// (multi-variable condition): the domains over-approximate, so
  /// independence proofs remain sound but dependence proofs are disabled.
  bool exact_domain = true;
};

/// The joint linear system of a reference pair. Variables 0..|a|-1 are a's
/// loop levels (outermost first), then b's levels. Subscript-equality
/// equations are added on construction; callers add scheduling constraints
/// via bound_difference(), then solve(). Copy the system to solve several
/// constraint variants of one pair.
class PairSystem {
 public:
  PairSystem(const AffineRef& a, const AffineRef& b);

  /// False when the pair cannot be modelled (subscript dimension mismatch
  /// or a subscript using a variable outside the recorded nest); solve()
  /// then returns kUnknown.
  bool well_formed() const { return well_formed_; }

  int a_var(int level) const { return level; }
  int b_var(int level) const { return a_levels_ + level; }

  /// Add the constraint (value_b) - (value_a) in [range.lo, range.hi],
  /// where value_x = var + shift, or just shift when var < 0 (constant
  /// side). Implemented as an equation with a fresh bounded slack variable.
  void bound_difference(int var_a, std::int64_t shift_a, int var_b,
                        std::int64_t shift_b, Interval range);

  /// Constrain a single variable to [range.lo, range.hi].
  void bound_var(int var, Interval range);

  Feasibility solve() const;

 private:
  int a_levels_ = 0;
  bool well_formed_ = true;
  bool exact_ = true;  // both refs had exact domains
  std::vector<VarDomain> domains_;
  std::vector<LinEq> eqs_;
};

// ---------------------------------------------------------------------------
// Program-level reference collection and dependence summary.

/// One assignment statement in its guard-refined loop context, as
/// discovered by walking a top-level statement in execution order.
struct AssignSite {
  const ir::Stmt* stmt = nullptr;
  /// Enclosing loop variables (outermost first) with refined domains.
  std::vector<std::string> loop_vars;
  std::vector<VarDomain> domains;
  /// Child-index path from the top statement: statement-list indices, with
  /// guard arms contributing 0 (then) or 1 (else). Lexicographic order of
  /// paths is same-iteration execution order.
  std::vector<int> path;
  /// Per loop level, the length of the `path` prefix that addresses the
  /// loop statement: two sites (of one top statement) share level l iff
  /// their loop_addr[l] and path prefixes of that length agree.
  std::vector<int> loop_addr;
  /// Domains are exact (no unrefinable guard on the way down).
  bool exact_domain = true;
};

struct SiteWalk {
  std::vector<AssignSite> sites;  // in execution order
  int unreachable_guards = 0;     // guard arms proven empty (for lint)
  int inexact_sites = 0;
};

/// Walk one top-level statement, refining loop domains through guards with
/// the interval.h splitter, and return every assignment site.
SiteWalk collect_assign_sites(const ir::Stmt& top);

/// Detect the commutative-reduction statement shape `s = s op expr` (op in
/// {+, min, max}, s not otherwise in expr); mirrors the trace validator.
bool reduction_shape(const ir::Stmt& s, ir::BinOp* op);

/// The references of one assignment site: rhs reads (pre-order), then the
/// lhs write, all carrying the site's loop context.
std::vector<AffineRef> site_refs(const ir::Program& program,
                                 const AssignSite& site);

/// All references of one top-level statement, with guard-refined domains.
struct RefSet {
  std::vector<AffineRef> refs;
  /// Number of references sitting under guards the splitter cannot refine
  /// (their domains over-approximate; see AffineRef::exact_domain).
  int inexact_refs = 0;
  /// Guard arms proven unreachable while collecting (for lint).
  int unreachable_guards = 0;
};

RefSet collect_refs(const ir::Program& program, const ir::Stmt& top);

/// Statement-pair dependence fact: can some instance of top-level statement
/// `stmt_a` and some instance of `stmt_b` touch a common element of `array`
/// (or of scalar `scalar`) with at least one side writing, in distinct
/// events? For stmt_a == stmt_b, same-statement same-iteration pairs are
/// excluded (the lhs store happens after the rhs loads).
struct StmtDependence {
  int stmt_a = 0;
  int stmt_b = 0;
  std::string array;   // set for array conflicts
  std::string scalar;  // set for scalar conflicts
  Verdict verdict = Verdict::kUnknown;
  const char* decided_by = "";
};

struct DependenceSummary {
  std::vector<StmtDependence> pairs;
  int independent = 0;
  int dependent = 0;
  int unknown = 0;
  /// References the affine model could not capture exactly.
  int inexact_refs = 0;
};

/// Test every top-level statement pair (including self pairs) that shares
/// an array or scalar with at least one write.
DependenceSummary summarize_dependences(const ir::Program& program);

// ---------------------------------------------------------------------------
// Parallel-safety certificate for chunked 1-D stream loops.

/// One byte-linear access of a stream loop: iteration i of [lower, upper]
/// touches bytes [base + coeff*i, base + coeff*i + elem_bytes).
struct LinearAccess {
  bool write = false;
  std::int64_t base = 0;        // bytes
  std::int64_t coeff = 0;       // bytes per iteration
  std::int64_t elem_bytes = 8;  // access width
  /// Address space tag; accesses in different spaces never alias.
  int space = 0;
};

/// Can the loop's iterations be split into chunks executed concurrently?
/// kIndependent: proven safe -- no two *distinct* iterations touch
/// overlapping bytes with a write involved, so any chunking is
/// race-free and order-preserving. kDependent: a cross-iteration conflict
/// witness exists (unsafe). kUnknown: undecided.
Verdict certify_parallel_accesses(const std::vector<LinearAccess>& accesses,
                                  std::int64_t lower, std::int64_t upper);

}  // namespace bwc::verify
