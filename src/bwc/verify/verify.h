// bwc::verify -- independent re-checking of everything the optimizer
// emits. See docs/VERIFY.md for the architecture.
//
// The module deliberately depends only on support/ and ir/: it shares no
// code with the analyses (analysis/), transformations (transform/,
// fusion/) or execution engines (runtime/) it certifies, so a bug in any
// of those cannot silently vouch for itself.
#pragma once

#include "bwc/verify/diagnostics.h"     // Report, Diagnostic
#include "bwc/verify/events.h"          // concrete instance tracing
#include "bwc/verify/observability.h"      // storage-pass certification
#include "bwc/verify/static_dependence.h"  // symbolic dependence tests
#include "bwc/verify/static_legality.h"    // static transform certificates
#include "bwc/verify/structure.h"          // IR well-formedness
#include "bwc/verify/traffic_bound.h"   // static traffic lower bounds
#include "bwc/verify/translation.h"     // scheduling-pass validation
