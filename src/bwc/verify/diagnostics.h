// Diagnostics shared by all bwc::verify checkers.
//
// Every checker returns a Report: a list of diagnostics plus bookkeeping
// about whether the check ran to completion. A report with no kError
// diagnostic certifies the checked property; a skipped report certifies
// nothing (the caller decides whether skipping is acceptable).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace bwc::verify {

enum class Severity {
  kInfo,   // certification detail, no legality impact
  kError,  // the checked property is violated
};

struct Diagnostic {
  Severity severity = Severity::kError;
  /// Stable machine-readable code, e.g. "flow-dependence-reversed".
  std::string code;
  /// Human-readable message naming the violated fact.
  std::string message;
};

struct Report {
  /// Which checker produced the report ("structure", "translation", ...).
  std::string check;
  std::vector<Diagnostic> diags;
  /// The instance-level part of the check did not run (event budget).
  bool skipped = false;
  std::string skip_reason;
  /// Instances examined by the check (0 for purely static checks).
  std::uint64_t instances_checked = 0;

  bool ok() const;
  int error_count() const;
  /// The first error message, or empty.
  std::string first_error() const;
  /// Multi-line human-readable rendering.
  std::string render() const;

  void error(const std::string& code, const std::string& message);
  void info(const std::string& code, const std::string& message);
  /// Append all of `other`'s diagnostics (and skip state) to this report.
  void merge(const Report& other);
};

}  // namespace bwc::verify
