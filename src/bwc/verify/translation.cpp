#include "bwc/verify/translation.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "bwc/verify/events.h"
#include "bwc/verify/structure.h"

namespace bwc::verify {

namespace {

std::uint64_t mix(std::uint64_t seed, std::uint64_t v) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ull + v;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Semantic key of an instance: what it writes, what it reads, what it
/// computes. Two instances with equal keys are interchangeable copies of
/// the same work item.
std::uint64_t instance_key(const Instance& inst) {
  std::uint64_t h = mix(0xbeef, inst.write);
  for (const Location r : inst.reads) h = mix(h, r);
  return mix(h, inst.rhs_hash);
}

/// Commutative summary of a set of writer instances (order-free identity):
/// count plus order-insensitive hashes of the member ids.
struct WriterSet {
  std::uint64_t count = 0;
  std::uint64_t xor_hash = 0;
  std::uint64_t sum_hash = 0;

  void add(int id) {
    const std::uint64_t h = mix(0x5e7, static_cast<std::uint64_t>(id));
    ++count;
    xor_hash ^= h;
    sum_hash += h;
  }
  bool operator==(const WriterSet& o) const = default;
};

struct LocationHistory {
  /// Writer instance ids (original-side ids) in execution order.
  std::vector<int> writers;
  /// (reader instance id, id of last writer before it or -1).
  std::vector<std::pair<int, int>> reads;
  /// For relaxed (reduction) scalars: per non-reduction read, the
  /// order-free set of writers completed before it.
  std::vector<std::pair<int, WriterSet>> read_sets;
};

/// Does every write of this location, in a trace, come from a reduction
/// instance, all with one common operator?
bool all_reduction_writes(const std::vector<Instance>& instances,
                          Location loc, ir::BinOp* op, bool* any) {
  bool first = true;
  *any = false;
  for (const auto& inst : instances) {
    if (inst.write != loc) continue;
    *any = true;
    if (!inst.reduction) return false;
    if (first) {
      *op = inst.reduction_op;
      first = false;
    } else if (inst.reduction_op != *op) {
      return false;
    }
  }
  return true;
}

std::string outputs_signature(const ir::Program& p) {
  std::string sig;
  std::set<std::string> names(p.output_scalars().begin(),
                              p.output_scalars().end());
  for (const auto& s : names) sig += "scalar " + s + "; ";
  std::set<std::string> arrays;
  for (const ir::ArrayId a : p.output_arrays()) {
    const ir::ArrayDecl& d = p.array(a);
    std::string entry = "array " + d.name + "[";
    for (std::size_t i = 0; i < d.extents.size(); ++i) {
      if (i > 0) entry += ",";
      entry += std::to_string(d.extents[i]);
    }
    entry += "]";
    arrays.insert(entry);
  }
  for (const auto& a : arrays) sig += a + "; ";
  return sig;
}

}  // namespace

Report validate_translation(const ir::Program& original,
                            const ir::Program& transformed,
                            const TranslationOptions& options) {
  Report report;
  report.check = "translation";

  // A transformed program must stand on its own structurally.
  const Report s1 = validate_structure(original);
  const Report s2 = validate_structure(transformed);
  if (!s1.ok() || !s2.ok()) {
    report.error("structure-invalid",
                 std::string("structural validation failed for the ") +
                     (!s1.ok() ? "original" : "transformed") + " program: " +
                     (!s1.ok() ? s1.first_error() : s2.first_error()));
    return report;
  }

  // Observable outputs must be declared identically (by name and shape).
  const std::string out_a = outputs_signature(original);
  const std::string out_b = outputs_signature(transformed);
  if (out_a != out_b) {
    report.error("outputs-changed",
                 "observable outputs differ: original declares {" + out_a +
                     "}, transformed declares {" + out_b + "}");
    return report;
  }

  // Refuse oversized traces up front.
  const std::uint64_t est =
      std::max(estimate_events(original), estimate_events(transformed));
  if (est > options.max_events) {
    report.skipped = true;
    report.skip_reason = "instance-level check needs ~" + std::to_string(est) +
                         " events, budget is " +
                         std::to_string(options.max_events);
    return report;
  }

  LocationSpace space;
  const EventTrace ta =
      trace_program(original, space, options.max_events, &report);
  const EventTrace tb =
      trace_program(transformed, space, options.max_events, &report);
  if (!report.ok()) return report;
  if (ta.truncated || tb.truncated) {
    report.skipped = true;
    report.skip_reason = "event budget exhausted while tracing";
    return report;
  }
  report.instances_checked = ta.instances.size() + tb.instances.size();

  // -- 1. Instance bijection --------------------------------------------
  // Bucket transformed instances by semantic key; match each original
  // instance to the next unclaimed transformed instance with the same key
  // (k-th occurrence to k-th occurrence -- equal-key instances are
  // interchangeable copies).
  std::unordered_map<std::uint64_t, std::vector<int>> trans_by_key;
  for (int i = 0; i < static_cast<int>(tb.instances.size()); ++i)
    trans_by_key[instance_key(tb.instances[i])].push_back(i);
  for (auto& [key, ids] : trans_by_key) {
    (void)key;
    std::reverse(ids.begin(), ids.end());  // pop_back yields execution order
  }

  // orig id -> transformed id, and the inverse.
  std::vector<int> to_trans(ta.instances.size(), -1);
  std::vector<int> to_orig(tb.instances.size(), -1);
  int missing = 0;
  for (int i = 0; i < static_cast<int>(ta.instances.size()); ++i) {
    auto it = trans_by_key.find(instance_key(ta.instances[i]));
    if (it == trans_by_key.end() || it->second.empty()) {
      if (missing < 3) {
        const Instance& inst = ta.instances[static_cast<std::size_t>(i)];
        report.error("instance-missing",
                     "transformed program lost an instance: write of " +
                         space.describe(inst.write) + " by " +
                         inst.describe() +
                         " has no counterpart (dropped or altered statement)");
      }
      ++missing;
      continue;
    }
    const int j = it->second.back();
    it->second.pop_back();
    to_trans[static_cast<std::size_t>(i)] = j;
    to_orig[static_cast<std::size_t>(j)] = i;
  }
  if (missing > 3) {
    report.error("instance-missing",
                 "... and " + std::to_string(missing - 3) +
                     " further lost instance(s)");
  }
  int extra = 0;
  for (int j = 0; j < static_cast<int>(tb.instances.size()); ++j) {
    if (to_orig[static_cast<std::size_t>(j)] >= 0) continue;
    if (extra < 3) {
      const Instance& inst = tb.instances[static_cast<std::size_t>(j)];
      report.error("instance-extra",
                   "transformed program gained an instance: write of " +
                       space.describe(inst.write) + " by " + inst.describe() +
                       " has no original counterpart (duplicated or "
                       "fabricated statement)");
    }
    ++extra;
  }
  if (extra > 3) {
    report.error("instance-extra", "... and " + std::to_string(extra - 3) +
                                       " further extra instance(s)");
  }
  if (!report.ok()) return report;

  // -- 2/3. Per-location dependence preservation ------------------------
  // Reduction relaxation is per scalar location and must hold in both
  // programs for the same operator.
  std::set<Location> relaxed;
  {
    std::set<Location> scalar_locs;
    for (const auto& inst : ta.instances) {
      if (space.is_scalar(inst.write)) scalar_locs.insert(inst.write);
    }
    for (const Location loc : scalar_locs) {
      ir::BinOp op_a{}, op_b{};
      bool any_a = false, any_b = false;
      if (all_reduction_writes(ta.instances, loc, &op_a, &any_a) &&
          all_reduction_writes(tb.instances, loc, &op_b, &any_b) && any_a &&
          any_b && op_a == op_b) {
        relaxed.insert(loc);
      }
    }
  }

  auto build_histories = [&](const std::vector<Instance>& instances,
                             const std::vector<int>& map_to_orig,
                             bool is_original) {
    std::map<Location, LocationHistory> hist;
    std::map<Location, WriterSet> completed;  // for relaxed scalars
    std::map<Location, int> last_writer;
    for (int idx = 0; idx < static_cast<int>(instances.size()); ++idx) {
      const Instance& inst = instances[static_cast<std::size_t>(idx)];
      const int orig_id =
          is_original ? idx : map_to_orig[static_cast<std::size_t>(idx)];
      for (const Location r : inst.reads) {
        // A reduction's read of its own accumulator is part of the update.
        if (relaxed.count(r) != 0) {
          if (inst.reduction && inst.write == r) continue;
          hist[r].read_sets.emplace_back(orig_id, completed[r]);
          continue;
        }
        const auto lw = last_writer.find(r);
        hist[r].reads.emplace_back(orig_id,
                                   lw == last_writer.end() ? -1 : lw->second);
      }
      if (relaxed.count(inst.write) != 0) {
        completed[inst.write].add(orig_id);
      } else {
        hist[inst.write].writers.push_back(orig_id);
        last_writer[inst.write] = orig_id;
      }
    }
    return hist;
  };

  const auto hist_a = build_histories(ta.instances, to_orig, true);
  const auto hist_b = build_histories(tb.instances, to_orig, false);

  auto name_inst = [&](int orig_id) -> std::string {
    if (orig_id < 0) return "(initial value)";
    const Instance& inst = ta.instances[static_cast<std::size_t>(orig_id)];
    return "write of " + space.describe(inst.write) + " by " + inst.describe();
  };

  int violations = 0;
  auto violation = [&](const std::string& code, const std::string& message) {
    if (violations < 8) report.error(code, message);
    ++violations;
  };

  for (const auto& [loc, ha] : hist_a) {
    const auto itb = hist_b.find(loc);
    // The bijection guarantees the same instances touch the same locations
    // in both programs, so a location can never be absent on one side.
    const LocationHistory empty;
    const LocationHistory& hb = itb == hist_b.end() ? empty : itb->second;

    // Output dependences: identical write sequence.
    if (ha.writers != hb.writers) {
      std::size_t k = 0;
      while (k < ha.writers.size() && k < hb.writers.size() &&
             ha.writers[k] == hb.writers[k])
        ++k;
      const std::string wa =
          k < ha.writers.size() ? name_inst(ha.writers[k]) : "(end)";
      const std::string wb =
          k < hb.writers.size() ? name_inst(hb.writers[k]) : "(end)";
      violation("output-dependence-reversed",
                "output dependence violated on " + space.describe(loc) +
                    ": the " + std::to_string(k + 1) +
                    ". write must be " + wa +
                    ", but the transformed program performs " + wb);
    }

    // Flow/anti dependences: every read observes the same producer.
    std::map<int, int> read_producer_a;
    for (const auto& [reader, producer] : ha.reads)
      read_producer_a[reader] = producer;
    for (const auto& [reader, producer] : hb.reads) {
      const auto it = read_producer_a.find(reader);
      if (it == read_producer_a.end()) continue;  // bijection already failed
      if (it->second == producer) continue;
      const std::string reader_name =
          name_inst(reader) + " reading " + space.describe(loc);
      if (producer == -1 ||
          (it->second != -1 &&
           /* observed an older write */ producer < it->second)) {
        violation("flow-dependence-reversed",
                  "flow dependence violated on " + space.describe(loc) +
                      ": " + reader_name + " must observe " +
                      name_inst(it->second) +
                      ", but the transformed program schedules the read "
                      "before it (it observes " +
                      name_inst(producer) + ")");
      } else {
        violation("anti-dependence-reversed",
                  "anti dependence violated on " + space.describe(loc) +
                      ": " + name_inst(producer) + " overtakes " +
                      reader_name + " (which must observe " +
                      name_inst(it->second) + ")");
      }
    }

    // Relaxed scalars: non-reduction reads must see the same completed set.
    std::map<int, WriterSet> sets_a;
    for (const auto& [reader, set] : ha.read_sets) sets_a[reader] = set;
    for (const auto& [reader, set] : hb.read_sets) {
      const auto it = sets_a.find(reader);
      if (it == sets_a.end()) continue;
      if (it->second == set) continue;
      violation("reduction-read-partial",
                "read of reduction scalar " + space.describe(loc) + " by " +
                    name_inst(reader) + " observes " +
                    std::to_string(set.count) + " of " +
                    std::to_string(it->second.count) +
                    " updates: the transformed program exposes a partial "
                    "reduction value");
    }
  }
  if (violations > 8) {
    report.error("more-violations", "... and " +
                                        std::to_string(violations - 8) +
                                        " further dependence violation(s)");
  }

  if (report.ok()) {
    report.info("certified",
                "translation certified: " +
                    std::to_string(ta.instances.size()) +
                    " instances matched, all flow/anti/output dependences "
                    "preserved (" +
                    std::to_string(relaxed.size()) +
                    " commutative reduction scalar(s))");
  }
  return report;
}

}  // namespace bwc::verify
