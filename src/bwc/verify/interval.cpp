#include "bwc/verify/interval.h"

#include <algorithm>
#include <limits>

namespace bwc::verify {

namespace {

std::int64_t floor_div(std::int64_t a, std::int64_t b) {
  // b > 0.
  return a >= 0 ? a / b : -((-a + b - 1) / b);
}

std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return floor_div(a + b - 1, b);
}

}  // namespace

void split_guard(ir::CmpOp op, std::int64_t c, std::int64_t k, Interval range,
                 std::vector<Interval>* then_iv,
                 std::vector<Interval>* else_iv) {
  if (c < 0) {  // negate both sides, flipping the inequality
    c = -c;
    k = -k;
    switch (op) {
      case ir::CmpOp::kLt: op = ir::CmpOp::kGt; break;
      case ir::CmpOp::kLe: op = ir::CmpOp::kGe; break;
      case ir::CmpOp::kGt: op = ir::CmpOp::kLt; break;
      case ir::CmpOp::kGe: op = ir::CmpOp::kLe; break;
      case ir::CmpOp::kEq:
      case ir::CmpOp::kNe: break;
    }
  }
  auto add = [&](std::vector<Interval>* out, Interval iv) {
    iv.lo = std::max(iv.lo, range.lo);
    iv.hi = std::min(iv.hi, range.hi);
    if (!iv.empty()) out->push_back(iv);
  };
  const std::int64_t kMin = std::numeric_limits<std::int64_t>::min() / 4;
  const std::int64_t kMax = std::numeric_limits<std::int64_t>::max() / 4;
  switch (op) {
    case ir::CmpOp::kEq:
    case ir::CmpOp::kNe: {
      const bool divides = k % c == 0;
      const std::int64_t v0 = divides ? -k / c : 0;
      std::vector<Interval>* eq = op == ir::CmpOp::kEq ? then_iv : else_iv;
      std::vector<Interval>* ne = op == ir::CmpOp::kEq ? else_iv : then_iv;
      if (divides) {
        add(eq, {v0, v0});
        add(ne, {kMin, v0 - 1});
        add(ne, {v0 + 1, kMax});
      } else {
        add(ne, {kMin, kMax});
      }
      return;
    }
    case ir::CmpOp::kLt: {
      const std::int64_t b = floor_div(-k - 1, c);  // v <= b
      add(then_iv, {kMin, b});
      add(else_iv, {b + 1, kMax});
      return;
    }
    case ir::CmpOp::kLe: {
      const std::int64_t b = floor_div(-k, c);
      add(then_iv, {kMin, b});
      add(else_iv, {b + 1, kMax});
      return;
    }
    case ir::CmpOp::kGt: {
      const std::int64_t b = floor_div(-k, c) + 1;  // v >= b
      add(then_iv, {b, kMax});
      add(else_iv, {kMin, b - 1});
      return;
    }
    case ir::CmpOp::kGe: {
      const std::int64_t b = ceil_div(-k, c);
      add(then_iv, {b, kMax});
      add(else_iv, {kMin, b - 1});
      return;
    }
  }
}

}  // namespace bwc::verify
