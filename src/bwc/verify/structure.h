// Structural IR validation: slot validity, affine subscript
// well-formedness and bounds sanity for any ir::Program.
//
// The checks are purely static. Subscript ranges are evaluated with
// interval arithmetic over the enclosing loop bounds (every subscript is
// affine over concretely-bounded loop variables, so the exact min/max is
// computable); a subscript whose range can leave [1, extent] is an error
// -- this is what catches the "shrunk live array" class of optimizer bugs,
// where a transformed program still addresses elements its (reduced)
// declaration no longer provides.
#pragma once

#include "bwc/ir/program.h"
#include "bwc/verify/diagnostics.h"

namespace bwc::verify {

/// Validate the whole program. Errors name the offending statement and
/// fact (undeclared name, rank mismatch, out-of-range subscript, malformed
/// expression tree, invalid output declaration).
Report validate_structure(const ir::Program& program);

}  // namespace bwc::verify
