#include "bwc/workloads/sp_proxy.h"

#include "bwc/support/error.h"

namespace bwc::workloads {

const std::vector<std::string>& SpProxy::subroutine_names() {
  static const std::vector<std::string> names = {
      "compute_rhs", "txinvr", "x_solve", "y_solve",
      "z_solve",     "pinvr",  "add"};
  return names;
}

SpProxy::SpProxy(std::int64_t n, AddressSpace& space) : n_(n) {
  BWC_CHECK(n >= 4, "SP grid must be at least 4^3");
  cells_ = n * n * n;
  const std::size_t total = static_cast<std::size_t>(cells_ * kVars);
  u_.resize(total);
  rhs_.assign(total, 0.0);
  forcing_.resize(total);
  lhs_a_.resize(total);
  lhs_b_.resize(total);
  lhs_c_.resize(total);
  for (std::size_t x = 0; x < total; ++x) {
    u_[x] = 1.0 + 1e-6 * static_cast<double>(x % 1013);
    forcing_[x] = 0.5 + 1e-6 * static_cast<double>(x % 719);
    lhs_a_[x] = 1e-4 * static_cast<double>(x % 31);
    lhs_b_[x] = 1e-4 * static_cast<double>(x % 29);
    lhs_c_[x] = 0.9 + 1e-4 * static_cast<double>(x % 37);
  }
  u_base_ = space.allocate_doubles(static_cast<std::uint64_t>(total));
  rhs_base_ = space.allocate_doubles(static_cast<std::uint64_t>(total));
  forcing_base_ = space.allocate_doubles(static_cast<std::uint64_t>(total));
  lhs_a_base_ = space.allocate_doubles(static_cast<std::uint64_t>(total));
  lhs_b_base_ = space.allocate_doubles(static_cast<std::uint64_t>(total));
  lhs_c_base_ = space.allocate_doubles(static_cast<std::uint64_t>(total));
}

double SpProxy::checksum() const {
  double sum = 0.0;
  for (double v : rhs_) sum += v;
  for (double v : u_) sum += v;
  return sum;
}

}  // namespace bwc::workloads
