// Additional multi-loop IR programs: realistic fusion pipelines beyond the
// paper's worked examples, used by tests and the optimizer demos.
#pragma once

#include <cstdint>

#include "bwc/ir/program.h"

namespace bwc::workloads {

/// Jacobi-style chain: `steps` sweeps of a 1-D 3-point stencil with
/// explicit ping/pong arrays, followed by a norm reduction. Each sweep is
/// its own loop; adjacent sweeps have producer/consumer dependences with
/// offsets -1/0/+1, so fusion legality is non-trivial (offset +1 reads
/// prevent fusing adjacent sweeps).
ir::Program jacobi_chain(std::int64_t n, int steps);

/// ADI-like pair of sweeps over a 2-D grid: a row-direction update
/// followed by a column-direction update and a checksum. The two sweeps
/// write the same array with different dependence directions.
ir::Program adi_like(std::int64_t n);

/// Blur-then-sharpen image chain over 1-D scanline data: four loops
/// (blur, diff, scale, reduce) that fuse completely and whose temporaries
/// then contract -- a best-case for the full pipeline.
ir::Program blur_sharpen(std::int64_t n);

/// Multi-kernel reduction cascade: k independent reductions over the same
/// input array with a shared scalar accumulator per kernel; the fusion
/// graph is a star around the input array (all loops fusable).
ir::Program reduction_cascade(std::int64_t n, int kernels);

/// Transposed sweep over an n x n grid: an elementwise map written with
/// the loop order transposed against the (column-major) storage order --
/// every access strides by n -- followed by a stride-1 reduction of the
/// result. Interchanging the map nest makes the whole program stride-1;
/// the default pipeline never reorders loops, so this is the workload
/// where pipeline search beats the default ordering.
ir::Program transposed_sweep(std::int64_t n);

/// k read-only streams of n doubles each, reduced into one scalar by a
/// single loop. When n * 8 bytes is a multiple of the L1 way span every
/// array's base lands on the same cache-set phase (allocations are
/// aligned), so k > associativity co-walked streams evict each other on
/// every access; regroup-arrays folds them into one interleaved stream
/// and the conflict disappears. With n = 2048 (16 KiB per array) and the
/// default 32 KiB / 2-way / 32-byte-line L1, k >= 3 thrashes.
ir::Program conflict_streams(std::int64_t n, int k);

}  // namespace bwc::workloads
