#include "bwc/workloads/stride_kernels.h"

#include "bwc/support/error.h"

namespace bwc::workloads {

const std::vector<StrideKernelSpec>& figure3_kernels() {
  static const std::vector<StrideKernelSpec> kernels = {
      {"1w1r", 1, 1}, {"2w2r", 2, 2}, {"3w3r", 3, 3}, {"1w2r", 1, 2},
      {"1w3r", 1, 3}, {"1w4r", 1, 4}, {"2w3r", 2, 3}, {"2w5r", 2, 5},
      {"3w6r", 3, 6}, {"0w1r", 0, 1}, {"0w2r", 0, 2}, {"0w3r", 0, 3},
      {"2w4r", 2, 4},
  };
  return kernels;
}

std::uint64_t useful_bytes_per_element(const StrideKernelSpec& spec) {
  // Each read array moves 8 bytes toward the CPU; each written array moves
  // 8 bytes back out (writeback). A written array that is also read (all
  // but the fill kernel) additionally counts among the reads.
  return 8ull * static_cast<std::uint64_t>(spec.reads) +
         8ull * static_cast<std::uint64_t>(spec.writes);
}

StrideKernel::StrideKernel(StrideKernelSpec spec, std::int64_t n,
                           AddressSpace& space)
    : spec_(std::move(spec)), n_(n) {
  BWC_CHECK(n > 0, "kernel size must be positive");
  const int total = spec_.arrays();
  BWC_CHECK(total >= 1, "kernel must touch at least one array");
  data_.resize(static_cast<std::size_t>(total));
  bases_.resize(static_cast<std::size_t>(total));
  for (int k = 0; k < total; ++k) {
    data_[static_cast<std::size_t>(k)]
        .assign(static_cast<std::size_t>(n), 1.0 + 0.001 * k);
    bases_[static_cast<std::size_t>(k)] =
        space.allocate_doubles(static_cast<std::uint64_t>(n));
  }
}

std::uint64_t StrideKernel::useful_bytes() const {
  return useful_bytes_per_element(spec_) * static_cast<std::uint64_t>(n_);
}

}  // namespace bwc::workloads
