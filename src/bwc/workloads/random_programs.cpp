#include "bwc/workloads/random_programs.h"

#include "bwc/ir/dsl.h"
#include "bwc/support/error.h"

namespace bwc::workloads {

using namespace ir::dsl;  // NOLINT
using ir::ArrayId;
using ir::ExprPtr;
using ir::Program;

Program random_program(Prng& rng, const RandomProgramParams& params) {
  BWC_CHECK(params.num_arrays >= 1, "need at least one array");
  BWC_CHECK(params.num_loops >= 1, "need at least one loop");
  BWC_CHECK(params.n >= 4, "extent too small for offset subscripts");

  Program p("random program");
  std::vector<ArrayId> arrays;
  for (int a = 0; a < params.num_arrays; ++a)
    arrays.push_back(p.add_array("r" + std::to_string(a), {params.n}));
  p.add_scalar("acc");
  p.mark_output_scalar("acc");
  for (ArrayId a : arrays) {
    if (rng.chance(params.output_prob)) p.mark_output_array(a);
  }

  const std::int64_t lo = 2;
  const std::int64_t hi = params.n - 1;

  for (int l = 0; l < params.num_loops; ++l) {
    // Reads: a random subset of arrays, with optional +-1 offsets.
    std::vector<ExprPtr> reads;
    for (ArrayId a : arrays) {
      if (!rng.chance(params.read_prob)) continue;
      std::int64_t off = 0;
      if (params.allow_offsets) off = rng.uniform_in(-1, 1);
      reads.push_back(at(a, v("i", off)));
    }
    if (reads.empty()) reads.push_back(lit(1.0));

    ExprPtr rhs = std::move(reads.front());
    for (std::size_t k = 1; k < reads.size(); ++k)
      rhs = std::move(rhs) + std::move(reads[k]);
    rhs = std::move(rhs) * lit(0.5);

    if (rng.chance(params.reduction_prob)) {
      p.append(loop("i", lo, hi,
                    assign("acc", sref("acc") + std::move(rhs))));
    } else {
      const ArrayId target =
          arrays[static_cast<std::size_t>(rng.uniform(
              static_cast<std::uint64_t>(arrays.size())))];
      p.append(loop("i", lo, hi, assign(target, {v("i")}, std::move(rhs))));
    }
  }
  return p;
}

ir::Program random_program_2d(Prng& rng, std::int64_t n, int sweeps) {
  BWC_CHECK(n >= 6, "grid too small");
  BWC_CHECK(sweeps >= 1, "need at least one sweep");
  Program p("random 2-D program");
  // A small pool of n x n arrays; array 0 is externally initialized.
  const int pool = 2 + static_cast<int>(rng.uniform(2));
  std::vector<ArrayId> arrays;
  for (int a = 0; a < pool; ++a)
    arrays.push_back(p.add_array("m" + std::to_string(a), {n, n}));
  p.add_scalar("sum");
  p.mark_output_scalar("sum");

  // Initialization sweep: m0[i,j] = input.
  p.append(loop("j", 1, n,
                loop("i", 1, n,
                     assign(arrays[0], {v("i"), v("j")},
                            input2(11, v("i"), v("j"), n, n)))));

  // Computation sweeps over j = 2..N reading current/previous columns.
  for (int s = 0; s < sweeps; ++s) {
    const ArrayId src =
        arrays[static_cast<std::size_t>(rng.uniform(
            static_cast<std::uint64_t>(arrays.size())))];
    const ArrayId dst =
        arrays[static_cast<std::size_t>(rng.uniform(
            static_cast<std::uint64_t>(arrays.size())))];
    const bool use_prev = rng.chance(0.6);
    ExprPtr rhs = use_prev
                      ? f(at(src, v("i"), v("j", -1)), at(src, v("i"), v("j")))
                      : at(src, v("i"), v("j")) * lit(0.75) + lit(0.1);
    p.append(loop("j", 2, n,
                  loop("i", 1, n,
                       assign(dst, {v("i"), v("j")}, std::move(rhs)))));

    // Occasionally a boundary fix-up over the last column (depth 1).
    if (rng.chance(0.4)) {
      p.append(loop("i", 1, n,
                    assign(dst, {v("i"), k(n)},
                           g(at(dst, v("i"), k(n)),
                             at(arrays[0], v("i"), k(1))))));
    }
  }

  // Checksum over a random array, possibly guarded.
  const ArrayId checked =
      arrays[static_cast<std::size_t>(rng.uniform(
          static_cast<std::uint64_t>(arrays.size())))];
  p.append(assign("sum", lit(0.0)));
  if (rng.chance(0.5)) {
    p.append(loop("j", 2, n,
                  loop("i", 1, n,
                       when(ir::CmpOp::kLe, v("j"), k(n - 1),
                            assign("sum", sref("sum") +
                                              at(checked, v("i"), v("j")))))));
  } else {
    p.append(loop("j", 2, n,
                  loop("i", 1, n,
                       assign("sum", sref("sum") +
                                         at(checked, v("i"), v("j"))))));
  }
  return p;
}

}  // namespace bwc::workloads
