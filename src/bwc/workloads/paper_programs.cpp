#include "bwc/workloads/paper_programs.h"

#include "bwc/fusion/solvers.h"
#include "bwc/ir/dsl.h"

namespace bwc::workloads {

using namespace ir::dsl;  // NOLINT: construction DSL is designed for this
using ir::ArrayId;
using ir::CmpOp;
using ir::Program;

Program sec21_write_loop(std::int64_t n) {
  Program p("sec2.1 write loop");
  const ArrayId a = p.add_array("A", {n});
  p.mark_output_array(a);
  p.append(loop("i", 1, n, assign(a, {v("i")}, at(a, v("i")) + lit(0.4))));
  return p;
}

Program sec21_read_loop(std::int64_t n) {
  Program p("sec2.1 read loop");
  const ArrayId a = p.add_array("A", {n});
  p.add_scalar("sum");
  p.mark_output_scalar("sum");
  p.append(assign("sum", lit(0.0)));
  p.append(loop("i", 1, n, assign("sum", sref("sum") + at(a, v("i")))));
  return p;
}

Program sec21_both_loops(std::int64_t n) {
  Program p("sec2.1 both loops");
  const ArrayId a = p.add_array("A", {n});
  p.add_scalar("sum");
  p.mark_output_scalar("sum");
  p.append(loop("i", 1, n, assign(a, {v("i")}, at(a, v("i")) + lit(0.4))));
  p.append(assign("sum", lit(0.0)));
  p.append(loop("i", 1, n, assign("sum", sref("sum") + at(a, v("i")))));
  return p;
}

Program fig6_original(std::int64_t n) {
  Program p("fig6 original");
  const ArrayId a = p.add_array("a", {n, n});
  const ArrayId b = p.add_array("b", {n, n});
  p.add_scalar("sum");
  p.mark_output_scalar("sum");

  // Initialization of data: for j=1,N for i=1,N read(a[i,j]).
  p.append(loop("j", 1, n,
                loop("i", 1, n,
                     assign(a, {v("i"), v("j")},
                            input2(1, v("i"), v("j"), n, n)))));
  // Computation: b[i,j] = f(a[i,j-1], a[i,j]) for j=2,N.
  p.append(loop("j", 2, n,
                loop("i", 1, n,
                     assign(b, {v("i"), v("j")},
                            f(at(a, v("i"), v("j", -1)),
                              at(a, v("i"), v("j")))))));
  // Boundary fix-up: b[i,N] = g(b[i,N], a[i,1]).
  p.append(loop("i", 1, n,
                assign(b, {v("i"), k(n)},
                       g(at(b, v("i"), k(n)), at(a, v("i"), k(1))))));
  // Check results.
  p.append(assign("sum", lit(0.0)));
  p.append(loop("j", 2, n,
                loop("i", 1, n,
                     assign("sum", sref("sum") + (at(a, v("i"), v("j")) +
                                                  at(b, v("i"), v("j")))))));
  return p;
}

Program fig7_original(std::int64_t n) {
  Program p("fig7 original");
  const ArrayId res = p.add_array("res", {n});
  const ArrayId data = p.add_array("data", {n});
  p.add_scalar("sum");
  p.mark_output_scalar("sum");

  p.append(loop("i", 1, n,
                assign(res, {v("i")},
                       at(res, v("i")) + at(data, v("i")))));
  p.append(assign("sum", lit(0.0)));
  p.append(loop("i", 1, n,
                assign("sum", sref("sum") + at(res, v("i")))));
  return p;
}

fusion::FusionGraph fig4_graph() {
  // Loops 1-3 access {A, D, E, F}; loop 4 accesses {B, C, D, E, F};
  // loop 5 accesses {A} (+ scalar sum); loop 6 accesses {B, C} (+ sum).
  // Loop 6 depends on loop 5; loops 5 and 6 cannot be fused.
  const std::vector<std::vector<int>> pins = {
      /*A=*/{0, 1, 2, 4},
      /*B=*/{3, 5},
      /*C=*/{3, 5},
      /*D=*/{0, 1, 2, 3},
      /*E=*/{0, 1, 2, 3},
      /*F=*/{0, 1, 2, 3},
  };
  return fusion::graph_from_spec(6, pins, /*dep_edges=*/{{4, 5}},
                                 /*preventing=*/{{4, 5}});
}

}  // namespace bwc::workloads
