// Randomized loop-program generator for property tests: every generated
// program is valid (in-bounds subscripts, declared names), and the
// optimizer must preserve its checksum.
#pragma once

#include <cstdint>

#include "bwc/ir/program.h"
#include "bwc/support/prng.h"

namespace bwc::workloads {

struct RandomProgramParams {
  int num_arrays = 4;
  int num_loops = 5;
  std::int64_t n = 64;  // array extent; loops run 2..n-1 so +-1 offsets fit
  /// Probability that a loop reads any given array.
  double read_prob = 0.5;
  /// Probability that a loop accumulates into the shared scalar instead of
  /// writing an array.
  double reduction_prob = 0.3;
  /// Probability that each array is marked as a program output.
  double output_prob = 0.5;
  /// Allow subscript offsets -1/+1 on reads (exercises the dependence
  /// tester's distance logic).
  bool allow_offsets = true;
};

/// Generate a random single-dimension loop program. Deterministic in rng.
ir::Program random_program(Prng& rng, const RandomProgramParams& params = {});

/// Generate a random Figure-6-shaped program: 2-D sweeps with column
/// offsets (j / j-1), optional boundary fix-up loops over a constant
/// column (depth-1, exercising promotion), guards, and a final reduction.
/// Stresses outer-union fusion, promotion, array shrinking and peeling.
ir::Program random_program_2d(Prng& rng, std::int64_t n = 16,
                              int sweeps = 3);

}  // namespace bwc::workloads
