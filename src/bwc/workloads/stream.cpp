#include "bwc/workloads/stream.h"

namespace bwc::workloads {

const char* stream_op_name(StreamOp op) {
  switch (op) {
    case StreamOp::kCopy:
      return "copy";
    case StreamOp::kScale:
      return "scale";
    case StreamOp::kAdd:
      return "add";
    case StreamOp::kTriad:
      return "triad";
  }
  return "?";
}

std::uint64_t stream_bytes_per_element(StreamOp op) {
  switch (op) {
    case StreamOp::kCopy:
    case StreamOp::kScale:
      return 16;  // one read + one write
    case StreamOp::kAdd:
    case StreamOp::kTriad:
      return 24;  // two reads + one write
  }
  return 0;
}

std::uint64_t stream_flops_per_element(StreamOp op) {
  switch (op) {
    case StreamOp::kCopy:
      return 0;
    case StreamOp::kScale:
    case StreamOp::kAdd:
      return 1;
    case StreamOp::kTriad:
      return 2;
  }
  return 0;
}

Stream::Stream(std::int64_t n, AddressSpace& space) : n_(n) {
  BWC_CHECK(n > 0, "STREAM size must be positive");
  a_.assign(static_cast<std::size_t>(n), 1.0);
  b_.assign(static_cast<std::size_t>(n), 2.0);
  c_.assign(static_cast<std::size_t>(n), 0.5);
  a_base_ = space.allocate_doubles(static_cast<std::uint64_t>(n));
  b_base_ = space.allocate_doubles(static_cast<std::uint64_t>(n));
  c_base_ = space.allocate_doubles(static_cast<std::uint64_t>(n));
}

WorkingSetSweep::WorkingSetSweep(std::uint64_t bytes, AddressSpace& space) {
  BWC_CHECK(bytes >= 8, "working set must hold at least one double");
  data_.assign(static_cast<std::size_t>(bytes / 8), 1.5);
  base_ = space.allocate_doubles(bytes / 8);
}

}  // namespace bwc::workloads
