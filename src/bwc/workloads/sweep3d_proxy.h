// Sweep3D proxy: a discrete-ordinates wavefront transport sweep.
//
// The DOE Sweep3D benchmark sweeps a 3-D grid once per (octant, angle)
// pair; each cell combines the incoming fluxes from its three upstream
// faces with the local cross-section and source, emits outgoing fluxes,
// and accumulates the scalar flux. The grid-sized arrays (cross-section,
// source, flux) are re-streamed for every angle, giving Sweep3D the
// second-highest memory balance of the paper's Figure 1.
#pragma once

#include <cstdint>
#include <vector>

#include "bwc/support/error.h"
#include "bwc/workloads/address_space.h"

namespace bwc::workloads {

class Sweep3dProxy {
 public:
  Sweep3dProxy(std::int64_t n, int angles, AddressSpace& space);

  std::int64_t n() const { return n_; }
  int angles() const { return angles_; }

  /// One full sweep over all 8 octants and all angles.
  template <typename Rec>
  void sweep(Rec& rec) {
    for (int octant = 0; octant < 8; ++octant) {
      const int sx = (octant & 1) ? -1 : 1;
      const int sy = (octant & 2) ? -1 : 1;
      const int sz = (octant & 4) ? -1 : 1;
      for (int a = 0; a < angles_; ++a) {
        const double mu = 0.3 + 0.1 * a;
        sweep_octant(rec, sx, sy, sz, mu);
      }
    }
  }

  double checksum() const;

 private:
  template <typename Rec>
  void sweep_octant(Rec& rec, int sx, int sy, int sz, double mu) {
    const std::int64_t n = n_;
    // Face fluxes carried along the wavefront: one j-k plane for the i
    // direction, one i-k plane for j, one i-j plane for k. These are small
    // (n^2) and stay cache-resident, like Sweep3D's edge arrays.
    auto sweep_index = [n](std::int64_t t, int dir) {
      return dir > 0 ? t : n - 1 - t;
    };
    for (std::int64_t kk = 0; kk < n; ++kk) {
      const std::int64_t k = sweep_index(kk, sz);
      for (std::int64_t jj = 0; jj < n; ++jj) {
        const std::int64_t j = sweep_index(jj, sy);
        for (std::int64_t ii = 0; ii < n; ++ii) {
          const std::int64_t i = sweep_index(ii, sx);
          const std::size_t cell =
              static_cast<std::size_t>(i + n * (j + n * k));
          // Incoming fluxes from the cache-resident face arrays.
          const std::size_t fi = static_cast<std::size_t>(j + n * k);
          const std::size_t fj = static_cast<std::size_t>(i + n * k);
          const std::size_t fk = static_cast<std::size_t>(i + n * j);
          rec.load_double(face_i_base_ + static_cast<std::uint64_t>(fi) * 8);
          rec.load_double(face_j_base_ + static_cast<std::uint64_t>(fj) * 8);
          rec.load_double(face_k_base_ + static_cast<std::uint64_t>(fk) * 8);
          const double in_i = face_i_[fi];
          const double in_j = face_j_[fj];
          const double in_k = face_k_[fk];

          rec.load_double(sigt_base_ + static_cast<std::uint64_t>(cell) * 8);
          rec.load_double(src_base_ + static_cast<std::uint64_t>(cell) * 8);
          rec.load_double(flux_old_base_ +
                          static_cast<std::uint64_t>(cell) * 8);
          const double sig = sigt_[cell];
          const double q = src_[cell] + 0.2 * flux_old_[cell];
          rec.flops(2);

          // Diamond-difference update.
          const double psi = (q + mu * (in_i + in_j + in_k)) * (1.0 / sig);
          const double out_i = 2.0 * psi - in_i;
          const double out_j = out_i + (in_i - in_j);
          const double out_k = out_i + (in_i - in_k);
          rec.flops(6);

          rec.store_double(face_i_base_ + static_cast<std::uint64_t>(fi) * 8);
          rec.store_double(face_j_base_ + static_cast<std::uint64_t>(fj) * 8);
          rec.store_double(face_k_base_ + static_cast<std::uint64_t>(fk) * 8);
          face_i_[fi] = out_i;
          face_j_[fj] = out_j;
          face_k_[fk] = out_k;

          // Accumulate the scalar flux (grid-sized, streamed per angle).
          rec.load_double(flux_base_ + static_cast<std::uint64_t>(cell) * 8);
          rec.store_double(flux_base_ + static_cast<std::uint64_t>(cell) * 8);
          flux_[cell] += psi;
          rec.flops(1);
        }
      }
    }
  }

  std::int64_t n_;
  int angles_;
  std::vector<double> sigt_, src_, flux_, flux_old_;
  std::vector<double> face_i_, face_j_, face_k_;
  std::uint64_t sigt_base_, src_base_, flux_base_, flux_old_base_;
  std::uint64_t face_i_base_, face_j_base_, face_k_base_;
};

}  // namespace bwc::workloads
