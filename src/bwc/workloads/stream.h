// STREAM [McCalpin 1995] and a CacheBench-style working-set sweep.
//
// The paper's footnote 2: "The machine balance is calculated by taking the
// flop rate and register throughput from hardware specification and
// measuring memory bandwidth through STREAM and cache bandwidth through
// CacheBench." These workloads reproduce that measurement protocol against
// the simulated machines (and, via NullRecorder, natively).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bwc/support/error.h"
#include "bwc/workloads/address_space.h"

namespace bwc::workloads {

enum class StreamOp { kCopy, kScale, kAdd, kTriad };

const char* stream_op_name(StreamOp op);

/// STREAM's useful bytes per element (its own accounting: reads + writes,
/// no write-allocate fill).
std::uint64_t stream_bytes_per_element(StreamOp op);
std::uint64_t stream_flops_per_element(StreamOp op);

class Stream {
 public:
  Stream(std::int64_t n, AddressSpace& space);

  std::int64_t n() const { return n_; }

  template <typename Rec>
  double run(StreamOp op, Rec& rec) {
    const double q = 3.0;
    for (std::int64_t i = 0; i < n_; ++i) {
      const std::size_t x = static_cast<std::size_t>(i);
      const std::uint64_t off = static_cast<std::uint64_t>(i) * 8;
      switch (op) {
        case StreamOp::kCopy:
          rec.load_double(b_base_ + off);
          rec.store_double(a_base_ + off);
          a_[x] = b_[x];
          break;
        case StreamOp::kScale:
          rec.load_double(b_base_ + off);
          rec.store_double(a_base_ + off);
          a_[x] = q * b_[x];
          rec.flops(1);
          break;
        case StreamOp::kAdd:
          rec.load_double(b_base_ + off);
          rec.load_double(c_base_ + off);
          rec.store_double(a_base_ + off);
          a_[x] = b_[x] + c_[x];
          rec.flops(1);
          break;
        case StreamOp::kTriad:
          rec.load_double(b_base_ + off);
          rec.load_double(c_base_ + off);
          rec.store_double(a_base_ + off);
          a_[x] = b_[x] + q * c_[x];
          rec.flops(2);
          break;
      }
    }
    return a_[static_cast<std::size_t>(n_ - 1)];
  }

  std::uint64_t useful_bytes(StreamOp op) const {
    return stream_bytes_per_element(op) * static_cast<std::uint64_t>(n_);
  }

 private:
  std::int64_t n_;
  std::vector<double> a_, b_, c_;
  std::uint64_t a_base_, b_base_, c_base_;
};

/// CacheBench-style sweep: repeatedly read (and optionally rewrite) a
/// working set of `bytes`, reporting accesses to the recorder. Returns the
/// number of element accesses performed.
class WorkingSetSweep {
 public:
  WorkingSetSweep(std::uint64_t bytes, AddressSpace& space);

  std::uint64_t bytes() const {
    return static_cast<std::uint64_t>(data_.size()) * 8;
  }

  /// `passes` sequential read passes over the working set.
  template <typename Rec>
  double read_passes(int passes, Rec& rec) {
    double sum = 0.0;
    for (int p = 0; p < passes; ++p) {
      for (std::size_t i = 0; i < data_.size(); ++i) {
        rec.load_double(base_ + static_cast<std::uint64_t>(i) * 8);
        sum += data_[i];
        rec.flops(1);
      }
    }
    return sum;
  }

 private:
  std::vector<double> data_;
  std::uint64_t base_;
};

}  // namespace bwc::workloads
