// NAS/SP proxy application.
//
// The paper measures the 3000-line NAS SP benchmark and reports (a) its
// program balance (Figure 1) and (b) that 5 of its 7 major computation
// subroutines utilize >= 84% of the Origin2000's memory bandwidth
// (Section 2.3). This proxy reproduces the *per-subroutine access/flop
// character* of SP's seven phases on a 3-D grid with 5 solution variables:
// pointwise phases are bandwidth-saturated, the x/y line solves are
// flop-heavy (block-solve arithmetic) and sit below the saturation line.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bwc/support/error.h"
#include "bwc/workloads/address_space.h"

namespace bwc::workloads {

class SpProxy {
 public:
  /// Cubic grid of extent n with 5 variables per cell.
  SpProxy(std::int64_t n, AddressSpace& space);

  static constexpr int kVars = 5;
  static const std::vector<std::string>& subroutine_names();
  static constexpr int kSubroutines = 7;

  std::int64_t n() const { return n_; }

  /// Run one subroutine (0..6) through the recorder.
  template <typename Rec>
  void run_subroutine(int index, Rec& rec) {
    switch (index) {
      case 0: compute_rhs(rec); break;
      case 1: txinvr(rec); break;
      case 2: x_solve(rec); break;
      case 3: y_solve(rec); break;
      case 4: z_solve(rec); break;
      case 5: pinvr(rec); break;
      case 6: add(rec); break;
      default: throw Error("SP subroutine index out of range");
    }
  }

  /// One full pseudo-timestep (all seven subroutines in order).
  template <typename Rec>
  void step(Rec& rec) {
    for (int s = 0; s < kSubroutines; ++s) run_subroutine(s, rec);
  }

  double checksum() const;

  // -- the seven subroutines ------------------------------------------------

  /// rhs(m) = forcing(m) + 7-point stencil over u(m): streaming + stencil.
  template <typename Rec>
  void compute_rhs(Rec& rec) {
    for (std::int64_t k = 1; k < n_ - 1; ++k) {
      for (std::int64_t j = 1; j < n_ - 1; ++j) {
        for (std::int64_t i = 1; i < n_ - 1; ++i) {
          for (int m = 0; m < kVars; ++m) {
            const double c = load(rec, u_, u_base_, m, i, j, k);
            const double xm = load(rec, u_, u_base_, m, i - 1, j, k);
            const double xp = load(rec, u_, u_base_, m, i + 1, j, k);
            const double ym = load(rec, u_, u_base_, m, i, j - 1, k);
            const double yp = load(rec, u_, u_base_, m, i, j + 1, k);
            const double zm = load(rec, u_, u_base_, m, i, j, k - 1);
            const double zp = load(rec, u_, u_base_, m, i, j, k + 1);
            const double f = load(rec, forcing_, forcing_base_, m, i, j, k);
            const double v =
                f + 0.1 * (xm + xp + ym + yp + zm + zp - 6.0 * c);
            rec.flops(9);
            store(rec, rhs_, rhs_base_, m, i, j, k, v);
          }
        }
      }
    }
  }

  /// Pointwise transform of rhs by u (block-diagonal inversion character).
  template <typename Rec>
  void txinvr(Rec& rec) { pointwise(rec, /*flops_per_var=*/3, 0.97); }

  /// Line solves: forward substitution with 5x5 block-solve arithmetic.
  /// The x and y solves carry the full block pivot/update flop load and
  /// run *below* the memory-bandwidth saturation line; the z solve does
  /// roughly half the fused arithmetic per line (it factors its blocks in
  /// a separate pointwise phase in real SP) and stays bandwidth-bound.
  template <typename Rec>
  void x_solve(Rec& rec) { line_solve(rec, /*axis=*/0, /*pivot_iters=*/24); }
  template <typename Rec>
  void y_solve(Rec& rec) { line_solve(rec, /*axis=*/1, /*pivot_iters=*/24); }
  template <typename Rec>
  void z_solve(Rec& rec) { line_solve(rec, /*axis=*/2, /*pivot_iters=*/8); }

  /// Second pointwise inversion.
  template <typename Rec>
  void pinvr(Rec& rec) { pointwise(rec, /*flops_per_var=*/2, 1.01); }

  /// u += rhs: the bandwidth-purest phase.
  template <typename Rec>
  void add(Rec& rec) {
    for (std::int64_t c = 0; c < cells_ * kVars; ++c) {
      rec.load_double(u_base_ + static_cast<std::uint64_t>(c) * 8);
      rec.load_double(rhs_base_ + static_cast<std::uint64_t>(c) * 8);
      u_[static_cast<std::size_t>(c)] +=
          rhs_[static_cast<std::size_t>(c)];
      rec.flops(1);
      rec.store_double(u_base_ + static_cast<std::uint64_t>(c) * 8);
    }
  }

 private:
  std::size_t idx(int m, std::int64_t i, std::int64_t j,
                  std::int64_t k) const {
    return static_cast<std::size_t>(
        m + kVars * (i + n_ * (j + n_ * k)));
  }

  template <typename Rec>
  double load(Rec& rec, const std::vector<double>& a, std::uint64_t base,
              int m, std::int64_t i, std::int64_t j, std::int64_t k) {
    const std::size_t x = idx(m, i, j, k);
    rec.load_double(base + static_cast<std::uint64_t>(x) * 8);
    return a[x];
  }
  template <typename Rec>
  void store(Rec& rec, std::vector<double>& a, std::uint64_t base, int m,
             std::int64_t i, std::int64_t j, std::int64_t k, double v) {
    const std::size_t x = idx(m, i, j, k);
    rec.store_double(base + static_cast<std::uint64_t>(x) * 8);
    a[x] = v;
  }

  /// rhs(m) = combine(u(m), rhs(m)) with `flops_per_var` flops per element.
  template <typename Rec>
  void pointwise(Rec& rec, int flops_per_var, double scale) {
    for (std::int64_t c = 0; c < cells_ * kVars; ++c) {
      rec.load_double(u_base_ + static_cast<std::uint64_t>(c) * 8);
      rec.load_double(rhs_base_ + static_cast<std::uint64_t>(c) * 8);
      double v = rhs_[static_cast<std::size_t>(c)];
      const double uu = u_[static_cast<std::size_t>(c)];
      for (int f = 0; f < flops_per_var; ++f) v = v * scale + 1e-9 * uu;
      rec.flops(static_cast<std::uint64_t>(2 * flops_per_var));
      rec.store_double(rhs_base_ + static_cast<std::uint64_t>(c) * 8);
      rhs_[static_cast<std::size_t>(c)] = v;
    }
  }

  /// Thomas-style line solve along an axis: reads the three coefficient
  /// diagonals and the upstream rhs, then performs `pivot_iters` fused
  /// multiply-add triples of register-resident block-solve arithmetic.
  template <typename Rec>
  void line_solve(Rec& rec, int axis, int pivot_iters) {
    const std::int64_t n = n_;
    for (std::int64_t b = 0; b < n; ++b) {
      for (std::int64_t a = 0; a < n; ++a) {
        // Forward sweep along the axis.
        for (std::int64_t t = 1; t < n; ++t) {
          std::int64_t i = 0, j = 0, k = 0;
          std::int64_t ip = 0, jp = 0, kp = 0;
          if (axis == 0) {
            i = t; j = a; k = b; ip = t - 1; jp = a; kp = b;
          } else if (axis == 1) {
            i = a; j = t; k = b; ip = a; jp = t - 1; kp = b;
          } else {
            i = a; j = b; k = t; ip = a; jp = b; kp = t - 1;
          }
          for (int m = 0; m < kVars; ++m) {
            const double um = load(rec, u_, u_base_, m, i, j, k);
            const double la = load(rec, lhs_a_, lhs_a_base_, m, i, j, k);
            const double lb = load(rec, lhs_b_, lhs_b_base_, m, i, j, k);
            const double lc = load(rec, lhs_c_, lhs_c_base_, m, i, j, k);
            const double prev = load(rec, rhs_, rhs_base_, m, ip, jp, kp);
            double v = load(rec, rhs_, rhs_base_, m, i, j, k);
            v = v - la * prev + lb * um;  // elimination step
            rec.flops(4);
            for (int f = 0; f < pivot_iters; ++f)
              v = v - 1e-8 * (v * lc + prev);
            rec.flops(3ull * static_cast<std::uint64_t>(pivot_iters));
            store(rec, rhs_, rhs_base_, m, i, j, k, v);
          }
        }
      }
    }
  }

  std::int64_t n_;
  std::int64_t cells_;
  std::vector<double> u_, rhs_, forcing_;
  std::vector<double> lhs_a_, lhs_b_, lhs_c_;  // line-solve diagonals
  std::uint64_t u_base_, rhs_base_, forcing_base_;
  std::uint64_t lhs_a_base_, lhs_b_base_, lhs_c_base_;
};

}  // namespace bwc::workloads
