#include "bwc/workloads/kernels.h"

namespace bwc::workloads {

namespace {
void fill_pattern(std::vector<double>& v, double base) {
  for (std::size_t i = 0; i < v.size(); ++i)
    v[i] = base + 1e-6 * static_cast<double>(i % 997);
}
}  // namespace

Convolution::Convolution(std::int64_t n, int taps, AddressSpace& space)
    : n_(n), taps_(taps) {
  BWC_CHECK(n > 0 && taps > 0, "convolution sizes must be positive");
  in_.resize(static_cast<std::size_t>(n + taps));
  out_.assign(static_cast<std::size_t>(n), 0.0);
  w_.resize(static_cast<std::size_t>(taps));
  fill_pattern(in_, 1.0);
  fill_pattern(w_, 0.25);
  in_base_ = space.allocate_doubles(static_cast<std::uint64_t>(n + taps));
  out_base_ = space.allocate_doubles(static_cast<std::uint64_t>(n));
  w_base_ = space.allocate_doubles(static_cast<std::uint64_t>(taps));
}

Dmxpy::Dmxpy(std::int64_t n1, std::int64_t n2, AddressSpace& space)
    : n1_(n1), n2_(n2) {
  BWC_CHECK(n1 > 0 && n2 > 0, "dmxpy sizes must be positive");
  m_.resize(static_cast<std::size_t>(n1 * n2));
  x_.resize(static_cast<std::size_t>(n2));
  y_.resize(static_cast<std::size_t>(n1));
  fill_pattern(m_, 0.5);
  fill_pattern(x_, 1.5);
  fill_pattern(y_, 2.0);
  m_base_ = space.allocate_doubles(static_cast<std::uint64_t>(n1 * n2));
  x_base_ = space.allocate_doubles(static_cast<std::uint64_t>(n2));
  y_base_ = space.allocate_doubles(static_cast<std::uint64_t>(n1));
}

MatMul::MatMul(std::int64_t n, AddressSpace& space) : n_(n) {
  BWC_CHECK(n > 0, "matrix size must be positive");
  const std::size_t count = static_cast<std::size_t>(n * n);
  a_.resize(count);
  b_.resize(count);
  c_.assign(count, 0.0);
  fill_pattern(a_, 1.0);
  fill_pattern(b_, 2.0);
  a_base_ = space.allocate_doubles(static_cast<std::uint64_t>(n * n));
  b_base_ = space.allocate_doubles(static_cast<std::uint64_t>(n * n));
  c_base_ = space.allocate_doubles(static_cast<std::uint64_t>(n * n));
}

void MatMul::reset_c() { c_.assign(c_.size(), 0.0); }

Fft::Fft(std::int64_t n, AddressSpace& space) : n_(n) {
  BWC_CHECK(n >= 2 && (n & (n - 1)) == 0, "FFT size must be a power of two");
  re_.resize(static_cast<std::size_t>(n));
  im_.assign(static_cast<std::size_t>(n), 0.0);
  fill_pattern(re_, 1.0);
  re_base_ = space.allocate_doubles(static_cast<std::uint64_t>(n));
  // Stagger the imaginary array by a few lines: power-of-two spacing would
  // alias re/im onto the same cache sets and thrash every butterfly stage
  // (library FFTs pad for exactly this reason).
  space.allocate(3 * 128);
  im_base_ = space.allocate_doubles(static_cast<std::uint64_t>(n));
}

}  // namespace bwc::workloads
