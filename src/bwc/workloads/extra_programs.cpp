#include "bwc/workloads/extra_programs.h"

#include "bwc/ir/dsl.h"
#include "bwc/support/error.h"

namespace bwc::workloads {

using namespace ir::dsl;  // NOLINT
using ir::ArrayId;
using ir::Program;

Program jacobi_chain(std::int64_t n, int steps) {
  BWC_CHECK(n >= 8, "grid too small");
  BWC_CHECK(steps >= 1 && steps % 2 == 0, "need an even number of sweeps");
  Program p("jacobi chain");
  const ArrayId u = p.add_array("u", {n});
  const ArrayId v_arr = p.add_array("v", {n});
  p.add_scalar("norm");
  p.mark_output_scalar("norm");
  p.mark_output_array(u);

  for (int s = 0; s < steps; ++s) {
    const ArrayId src = (s % 2 == 0) ? u : v_arr;
    const ArrayId dst = (s % 2 == 0) ? v_arr : u;
    p.append(loop("i", 2, n - 1,
                  assign(dst, {v("i")},
                         lit(0.25) * at(src, v("i", -1)) +
                             lit(0.5) * at(src, v("i")) +
                             lit(0.25) * at(src, v("i", 1)))));
  }
  p.append(assign("norm", lit(0.0)));
  p.append(loop("i", 2, n - 1,
                assign("norm", sref("norm") + at(u, v("i")) * at(u, v("i")))));
  return p;
}

Program adi_like(std::int64_t n) {
  BWC_CHECK(n >= 4, "grid too small");
  Program p("adi-like sweeps");
  const ArrayId x = p.add_array("x", {n, n});
  const ArrayId rhs = p.add_array("rhs", {n, n});
  p.add_scalar("sum");
  p.mark_output_scalar("sum");

  // Row sweep: x[i,j] updated from the previous row element.
  p.append(loop("j", 1, n,
                loop("i", 2, n,
                     assign(x, {v("i"), v("j")},
                            at(x, v("i"), v("j")) -
                                lit(0.3) * at(x, v("i", -1), v("j")) +
                                at(rhs, v("i"), v("j"))))));
  // Column sweep: x[i,j] updated from the previous column element.
  p.append(loop("j", 2, n,
                loop("i", 1, n,
                     assign(x, {v("i"), v("j")},
                            at(x, v("i"), v("j")) -
                                lit(0.3) * at(x, v("i"), v("j", -1))))));
  // Checksum.
  p.append(assign("sum", lit(0.0)));
  p.append(loop("j", 1, n,
                loop("i", 1, n,
                     assign("sum", sref("sum") + at(x, v("i"), v("j"))))));
  return p;
}

Program blur_sharpen(std::int64_t n) {
  BWC_CHECK(n >= 8, "scanline too small");
  Program p("blur-sharpen chain");
  const ArrayId img = p.add_array("img", {n});
  const ArrayId blur = p.add_array("blur", {n});
  const ArrayId diff = p.add_array("diff", {n});
  const ArrayId out = p.add_array("out", {n});
  p.add_scalar("energy");
  p.mark_output_scalar("energy");
  p.mark_output_array(out);

  // blur[i] = (img[i-1] + 2 img[i] + img[i+1]) / 4
  p.append(loop("i", 2, n - 1,
                assign(blur, {v("i")},
                       (at(img, v("i", -1)) + lit(2.0) * at(img, v("i")) +
                        at(img, v("i", 1))) /
                           lit(4.0))));
  // diff[i] = img[i] - blur[i]
  p.append(loop("i", 2, n - 1,
                assign(diff, {v("i")},
                       at(img, v("i")) - at(blur, v("i")))));
  // out[i] = img[i] + 1.5 diff[i]
  p.append(loop("i", 2, n - 1,
                assign(out, {v("i")},
                       at(img, v("i")) + lit(1.5) * at(diff, v("i")))));
  // energy = sum out^2
  p.append(assign("energy", lit(0.0)));
  p.append(loop("i", 2, n - 1,
                assign("energy",
                       sref("energy") + at(out, v("i")) * at(out, v("i")))));
  return p;
}

Program reduction_cascade(std::int64_t n, int kernels) {
  BWC_CHECK(kernels >= 1, "need at least one kernel");
  Program p("reduction cascade");
  const ArrayId data = p.add_array("data", {n});
  for (int k = 0; k < kernels; ++k) {
    const std::string acc = "acc" + std::to_string(k);
    p.add_scalar(acc);
    p.mark_output_scalar(acc);
    p.append(assign(acc, lit(0.0)));
    p.append(loop("i", 1, n,
                  assign(acc, sref(acc) +
                                  at(data, v("i")) * lit(0.5 + 0.25 * k))));
  }
  return p;
}

Program transposed_sweep(std::int64_t n) {
  BWC_CHECK(n >= 4, "grid too small");
  Program p("transposed sweep");
  const ArrayId img = p.add_array("img", {n, n});
  const ArrayId out = p.add_array("out", {n, n});
  p.add_scalar("sum");
  p.mark_output_scalar("sum");
  p.mark_output_array(out);

  // i is the fastest-varying storage dimension but the outermost loop:
  // every access strides by n elements.
  p.append(loop("i", 1, n,
                loop("j", 1, n,
                     assign(out, {v("i"), v("j")},
                            lit(0.5) * at(img, v("i"), v("j")) + lit(0.25)))));
  // The reduction already walks in storage order (stride 1).
  p.append(assign("sum", lit(0.0)));
  p.append(loop("j", 1, n,
                loop("i", 1, n,
                     assign("sum", sref("sum") + at(out, v("i"), v("j"))))));
  return p;
}

Program conflict_streams(std::int64_t n, int k) {
  BWC_CHECK(n >= 4, "streams too short");
  BWC_CHECK(k >= 1, "need at least one stream");
  Program p("conflict streams");
  std::vector<ArrayId> streams;
  for (int j = 0; j < k; ++j)
    streams.push_back(p.add_array("s" + std::to_string(j), {n}));
  p.add_scalar("acc");
  p.mark_output_scalar("acc");

  p.append(assign("acc", lit(0.0)));
  ir::ExprPtr sum = at(streams[0], v("i"));
  for (int j = 1; j < k; ++j) sum = std::move(sum) + at(streams[j], v("i"));
  p.append(loop("i", 1, n, assign("acc", sref("acc") + std::move(sum))));
  return p;
}

}  // namespace bwc::workloads
