// The 13 stride-one read/write kernels of the paper's Figure 3.
//
// Each kernel traverses a number of large arrays in unit stride; its name
// counts the arrays written and read ("1w2r reads two arrays and writes to
// one of them"). The paper measures their effective memory bandwidth on
// the Origin2000 and the Exemplar and finds all of them pinned at the
// machine's bandwidth limit.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bwc/workloads/address_space.h"

namespace bwc::workloads {

struct StrideKernelSpec {
  std::string name;  // e.g. "1w2r"
  int writes = 0;    // arrays written (each is also read)
  int reads = 0;     // distinct arrays read
  /// Distinct arrays touched: reads, plus writes beyond the read set
  /// (only the write-only fill kernel has writes > reads).
  int arrays() const { return reads >= writes ? reads : writes; }
};

/// The kernels of Figure 3. The paper reports "13 simple data-traversal
/// loop kernels" but its figure lists 12 labels; 2w4r completes the set in
/// the same pattern.
const std::vector<StrideKernelSpec>& figure3_kernels();

/// Per-element useful transfer in bytes (reads + writebacks), the
/// numerator of the paper's effective-bandwidth metric.
std::uint64_t useful_bytes_per_element(const StrideKernelSpec& spec);

/// One stride-one traversal of `n` elements over the spec's arrays.
/// `data` must hold spec.arrays() buffers of n doubles; `bases` their
/// simulated base addresses. Reports every access and flop to `rec`.
/// Returns a value dependent on all computed data (defeats optimization).
template <typename Rec>
double run_stride_kernel(const StrideKernelSpec& spec,
                         std::vector<std::vector<double>>& data,
                         const std::vector<std::uint64_t>& bases,
                         std::int64_t n, Rec& rec) {
  const int total = spec.arrays();
  const int nw = spec.writes;
  double sum = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    // Gather the read-only arrays' contribution.
    double acc = 0.0;
    for (int k = nw; k < total; ++k) {
      rec.load_double(bases[static_cast<std::size_t>(k)] +
                      static_cast<std::uint64_t>(i) * 8);
      acc += data[static_cast<std::size_t>(k)][static_cast<std::size_t>(i)];
      rec.flops(1);
    }
    if (nw == 0) {
      // Pure-read kernel: reduce into a scalar.
      sum += acc + 0.25;
      rec.flops(2);
      continue;
    }
    for (int k = 0; k < nw; ++k) {
      auto& a = data[static_cast<std::size_t>(k)];
      const std::uint64_t addr =
          bases[static_cast<std::size_t>(k)] +
          static_cast<std::uint64_t>(i) * 8;
      double v;
      if (spec.reads == 0) {
        v = acc + 1.5;  // fill kernel: no read of the target
        rec.flops(1);
      } else {
        rec.load_double(addr);
        v = a[static_cast<std::size_t>(i)] * 0.5 + acc;
        rec.flops(2);
      }
      rec.store_double(addr);
      a[static_cast<std::size_t>(i)] = v;
    }
  }
  return sum;
}

/// Owns the buffers for one kernel at size n and runs it.
class StrideKernel {
 public:
  StrideKernel(StrideKernelSpec spec, std::int64_t n, AddressSpace& space);

  const StrideKernelSpec& spec() const { return spec_; }
  std::int64_t size() const { return n_; }
  /// Useful bytes for one full traversal.
  std::uint64_t useful_bytes() const;

  template <typename Rec>
  double run(Rec& rec) {
    return run_stride_kernel(spec_, data_, bases_, n_, rec);
  }

 private:
  StrideKernelSpec spec_;
  std::int64_t n_;
  std::vector<std::vector<double>> data_;
  std::vector<std::uint64_t> bases_;
};

}  // namespace bwc::workloads
