// Simulated address-space allocator for native instrumented workloads.
//
// Workloads keep their data in ordinary std::vector<double> buffers for the
// arithmetic, and report accesses against simulated addresses handed out
// here. Bases are aligned and laid out contiguously, like a Fortran
// runtime's static allocation.
#pragma once

#include <cstdint>

namespace bwc::workloads {

class AddressSpace {
 public:
  /// Large arrays are page-aligned, as Fortran runtimes and allocators do;
  /// combined with a physically-indexed cache model this reproduces the
  /// page-collision conflicts of direct-mapped caches.
  explicit AddressSpace(std::uint64_t base = 1 << 20,
                        std::uint64_t alignment = 4096)
      : next_(base), alignment_(alignment) {}

  /// Reserve a block of `bytes` and return its base address.
  std::uint64_t allocate(std::uint64_t bytes) {
    next_ = (next_ + alignment_ - 1) / alignment_ * alignment_;
    const std::uint64_t addr = next_;
    next_ += bytes;
    return addr;
  }

  /// Reserve `count` doubles.
  std::uint64_t allocate_doubles(std::uint64_t count) {
    return allocate(count * 8);
  }

 private:
  std::uint64_t next_;
  std::uint64_t alignment_;
};

/// No-op recorder: instantiating an instrumented kernel with NullRecorder
/// yields the plain computation for native wall-clock benchmarking.
struct NullRecorder {
  void load(std::uint64_t, std::uint64_t) {}
  void store(std::uint64_t, std::uint64_t) {}
  void load_double(std::uint64_t) {}
  void store_double(std::uint64_t) {}
  void flops(std::uint64_t) {}
};

}  // namespace bwc::workloads
