// The paper's worked examples as IR programs, plus its Figure 4 fusion
// graph as a solver spec.
#pragma once

#include <cstdint>

#include "bwc/fusion/fusion_graph.h"
#include "bwc/ir/program.h"

namespace bwc::workloads {

/// Section 2.1: two loops over a large array A; the first also writes it.
///   for i=1,N: A[i] = A[i] + 0.4
///   for i=1,N: sum = sum + A[i]
/// Variants isolate each loop for separate timing.
ir::Program sec21_write_loop(std::int64_t n);
ir::Program sec21_read_loop(std::int64_t n);
ir::Program sec21_both_loops(std::int64_t n);

/// Figure 6(a): initialization, two-phase computation over a[N,N]/b[N,N],
/// boundary fix-up, and a checksum. The running example for fusion +
/// array shrinking/peeling.
ir::Program fig6_original(std::int64_t n);

/// Figure 7(a): res/data update followed by a reduction; the running
/// example for store elimination.
ir::Program fig7_original(std::int64_t n);

/// Figure 4's abstract fusion graph: six loops, arrays A..F plus scalar
/// sum, a fusion-preventing constraint between loops 5 and 6 and a
/// dependence 5 -> 6. Bandwidth-minimal cost is 7, the edge-weighted
/// optimum costs 8, no fusion costs 20. Node i is the paper's loop i+1.
fusion::FusionGraph fig4_graph();

/// The optimum values the paper states for Figure 4.
inline constexpr std::int64_t kFig4NoFusionCost = 20;
inline constexpr std::int64_t kFig4BandwidthMinimalCost = 7;
inline constexpr std::int64_t kFig4EdgeWeightedCost = 8;

}  // namespace bwc::workloads
