#include "bwc/workloads/sweep3d_proxy.h"

namespace bwc::workloads {

Sweep3dProxy::Sweep3dProxy(std::int64_t n, int angles, AddressSpace& space)
    : n_(n), angles_(angles) {
  BWC_CHECK(n >= 2, "Sweep3D grid must be at least 2^3");
  BWC_CHECK(angles >= 1, "need at least one angle");
  const std::size_t cells = static_cast<std::size_t>(n * n * n);
  const std::size_t faces = static_cast<std::size_t>(n * n);
  sigt_.resize(cells);
  src_.resize(cells);
  flux_.assign(cells, 0.0);
  flux_old_.resize(cells);
  for (std::size_t c = 0; c < cells; ++c) {
    sigt_[c] = 1.0 + 1e-6 * static_cast<double>(c % 883);
    src_[c] = 0.25 + 1e-6 * static_cast<double>(c % 421);
    flux_old_[c] = 0.1 + 1e-6 * static_cast<double>(c % 211);
  }
  face_i_.assign(faces, 0.1);
  face_j_.assign(faces, 0.1);
  face_k_.assign(faces, 0.1);
  sigt_base_ = space.allocate_doubles(cells);
  src_base_ = space.allocate_doubles(cells);
  flux_base_ = space.allocate_doubles(cells);
  flux_old_base_ = space.allocate_doubles(cells);
  face_i_base_ = space.allocate_doubles(faces);
  face_j_base_ = space.allocate_doubles(faces);
  face_k_base_ = space.allocate_doubles(faces);
}

double Sweep3dProxy::checksum() const {
  double sum = 0.0;
  for (double v : flux_) sum += v;
  return sum;
}

}  // namespace bwc::workloads
