// The four kernels of the paper's Figure 1: convolution, dmxpy (Linpack),
// matrix multiply (naive jki = "-O2" and cache-blocked = "-O3"), and an
// iterative radix-2 FFT.
//
// Each kernel performs the real computation on real buffers and reports its
// exact access stream and flop count through a recorder. Instantiated with
// runtime::Recorder it feeds the hierarchy simulator (program balance);
// instantiated with NullRecorder it is the plain kernel for wall-clock
// benchmarking.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "bwc/support/error.h"
#include "bwc/workloads/address_space.h"

namespace bwc::workloads {

/// out[i] = sum_k w[k] * in[i+k], i = 0..n-1 (taps fully register-cached
/// would halve the register traffic; we keep the naive form).
class Convolution {
 public:
  Convolution(std::int64_t n, int taps, AddressSpace& space);

  std::int64_t n() const { return n_; }
  int taps() const { return taps_; }
  std::uint64_t flops() const {
    return 2ull * static_cast<std::uint64_t>(n_) *
           static_cast<std::uint64_t>(taps_);
  }

  template <typename Rec>
  double run(Rec& rec) {
    const int k = taps_;
    for (std::int64_t i = 0; i < n_; ++i) {
      double acc = 0.0;
      for (int t = 0; t < k; ++t) {
        rec.load_double(in_base_ + static_cast<std::uint64_t>(i + t) * 8);
        rec.load_double(w_base_ + static_cast<std::uint64_t>(t) * 8);
        acc += w_[static_cast<std::size_t>(t)] *
               in_[static_cast<std::size_t>(i + t)];
        rec.flops(2);
      }
      rec.store_double(out_base_ + static_cast<std::uint64_t>(i) * 8);
      out_[static_cast<std::size_t>(i)] = acc;
    }
    return out_[static_cast<std::size_t>(n_ - 1)];
  }

 private:
  std::int64_t n_;
  int taps_;
  std::vector<double> in_, out_, w_;
  std::uint64_t in_base_, out_base_, w_base_;
};

/// Linpack dmxpy: y(1:n1) += m(1:n1, 1:n2) * x(1:n2), with the classic
/// two-column unrolling. Column-major m; y is re-loaded per column pair,
/// which is what makes dmxpy the most bandwidth-hungry kernel in Figure 1.
class Dmxpy {
 public:
  Dmxpy(std::int64_t n1, std::int64_t n2, AddressSpace& space);

  std::int64_t n1() const { return n1_; }
  std::int64_t n2() const { return n2_; }
  std::uint64_t flops() const {
    return 2ull * static_cast<std::uint64_t>(n1_) *
           static_cast<std::uint64_t>(n2_);
  }

  template <typename Rec>
  double run(Rec& rec) {
    std::int64_t j = 0;
    if (n2_ % 2 == 1) {
      column_pass(rec, j, /*pair=*/false);
      j = 1;
    }
    for (; j < n2_; j += 2) column_pass(rec, j, /*pair=*/true);
    return y_[static_cast<std::size_t>(n1_ - 1)];
  }

 private:
  template <typename Rec>
  void column_pass(Rec& rec, std::int64_t j, bool pair) {
    const double xj = x_[static_cast<std::size_t>(j)];
    const double xj1 = pair ? x_[static_cast<std::size_t>(j + 1)] : 0.0;
    const std::uint64_t col0 =
        m_base_ + static_cast<std::uint64_t>(j * n1_) * 8;
    const std::uint64_t col1 =
        m_base_ + static_cast<std::uint64_t>((j + 1) * n1_) * 8;
    for (std::int64_t i = 0; i < n1_; ++i) {
      const std::uint64_t yi = y_base_ + static_cast<std::uint64_t>(i) * 8;
      rec.load_double(yi);
      double acc = y_[static_cast<std::size_t>(i)];
      rec.load_double(col0 + static_cast<std::uint64_t>(i) * 8);
      acc += xj * m_[static_cast<std::size_t>(j * n1_ + i)];
      rec.flops(2);
      if (pair) {
        rec.load_double(col1 + static_cast<std::uint64_t>(i) * 8);
        acc += xj1 * m_[static_cast<std::size_t>((j + 1) * n1_ + i)];
        rec.flops(2);
      }
      rec.store_double(yi);
      y_[static_cast<std::size_t>(i)] = acc;
    }
  }

  std::int64_t n1_, n2_;
  std::vector<double> m_, x_, y_;
  std::uint64_t m_base_, x_base_, y_base_;
};

/// Square matrix multiply C += A * B, column-major. run_jki is the naive
/// loop order a Fortran compiler emits at -O2; run_blocked is the
/// Carr-Kennedy cache-blocked version the paper credits for mm(-O3)'s
/// collapse in memory balance (5.9 -> 0.04 bytes/flop).
class MatMul {
 public:
  MatMul(std::int64_t n, AddressSpace& space);

  std::int64_t n() const { return n_; }
  std::uint64_t flops() const {
    const std::uint64_t n = static_cast<std::uint64_t>(n_);
    return 2 * n * n * n;
  }
  void reset_c();

  template <typename Rec>
  double run_jki(Rec& rec) {
    for (std::int64_t j = 0; j < n_; ++j) {
      for (std::int64_t k = 0; k < n_; ++k) {
        rec.load_double(addr(b_base_, k, j));
        const double bkj = b_[idx(k, j)];
        for (std::int64_t i = 0; i < n_; ++i) {
          rec.load_double(addr(a_base_, i, k));
          rec.load_double(addr(c_base_, i, j));
          const double v = c_[idx(i, j)] + a_[idx(i, k)] * bkj;
          rec.flops(2);
          rec.store_double(addr(c_base_, i, j));
          c_[idx(i, j)] = v;
        }
      }
    }
    return c_[idx(n_ - 1, n_ - 1)];
  }

  template <typename Rec>
  double run_blocked(Rec& rec, std::int64_t tile = 32) {
    for (std::int64_t jj = 0; jj < n_; jj += tile) {
      const std::int64_t je = std::min(jj + tile, n_);
      for (std::int64_t kk = 0; kk < n_; kk += tile) {
        const std::int64_t ke = std::min(kk + tile, n_);
        for (std::int64_t j = jj; j < je; ++j) {
          for (std::int64_t k = kk; k < ke; ++k) {
            rec.load_double(addr(b_base_, k, j));
            const double bkj = b_[idx(k, j)];
            for (std::int64_t i = 0; i < n_; ++i) {
              rec.load_double(addr(a_base_, i, k));
              rec.load_double(addr(c_base_, i, j));
              const double v = c_[idx(i, j)] + a_[idx(i, k)] * bkj;
              rec.flops(2);
              rec.store_double(addr(c_base_, i, j));
              c_[idx(i, j)] = v;
            }
          }
        }
      }
    }
    return c_[idx(n_ - 1, n_ - 1)];
  }

 private:
  std::size_t idx(std::int64_t i, std::int64_t j) const {
    return static_cast<std::size_t>(i + j * n_);
  }
  std::uint64_t addr(std::uint64_t base, std::int64_t i, std::int64_t j) const {
    return base + static_cast<std::uint64_t>(i + j * n_) * 8;
  }

  std::int64_t n_;
  std::vector<double> a_, b_, c_;
  std::uint64_t a_base_, b_base_, c_base_;
};

/// Iterative radix-2 complex FFT (separate real/imaginary arrays),
/// n a power of two. Twiddles are computed on the fly (flops counted),
/// matching a library FFT's bandwidth character: every stage streams the
/// whole data set. By default the result is left in bit-reversed order
/// (the form many libraries return); pass reorder_output=true to pay for
/// the scatter-heavy permutation pass as well.
class Fft {
 public:
  Fft(std::int64_t n, AddressSpace& space);

  std::int64_t n() const { return n_; }

  template <typename Rec>
  double run(Rec& rec, bool reorder_output = false) {
    if (reorder_output) bit_reverse(rec);
    for (std::int64_t len = 2; len <= n_; len <<= 1) {
      const double ang = -2.0 * M_PI / static_cast<double>(len);
      for (std::int64_t blk = 0; blk < n_; blk += len) {
        double wr = 1.0, wi = 0.0;
        const double cr = std::cos(ang), ci = std::sin(ang);
        for (std::int64_t k = 0; k < len / 2; ++k) {
          const std::int64_t u = blk + k;
          const std::int64_t v = blk + k + len / 2;
          rec.load_double(re_base_ + static_cast<std::uint64_t>(v) * 8);
          rec.load_double(im_base_ + static_cast<std::uint64_t>(v) * 8);
          const double tr = re_[static_cast<std::size_t>(v)] * wr -
                            im_[static_cast<std::size_t>(v)] * wi;
          const double ti = re_[static_cast<std::size_t>(v)] * wi +
                            im_[static_cast<std::size_t>(v)] * wr;
          rec.flops(6);
          rec.load_double(re_base_ + static_cast<std::uint64_t>(u) * 8);
          rec.load_double(im_base_ + static_cast<std::uint64_t>(u) * 8);
          const double ur = re_[static_cast<std::size_t>(u)];
          const double ui = im_[static_cast<std::size_t>(u)];
          rec.store_double(re_base_ + static_cast<std::uint64_t>(u) * 8);
          rec.store_double(im_base_ + static_cast<std::uint64_t>(u) * 8);
          re_[static_cast<std::size_t>(u)] = ur + tr;
          im_[static_cast<std::size_t>(u)] = ui + ti;
          rec.store_double(re_base_ + static_cast<std::uint64_t>(v) * 8);
          rec.store_double(im_base_ + static_cast<std::uint64_t>(v) * 8);
          re_[static_cast<std::size_t>(v)] = ur - tr;
          im_[static_cast<std::size_t>(v)] = ui - ti;
          rec.flops(4);
          const double nwr = wr * cr - wi * ci;
          wi = wr * ci + wi * cr;
          wr = nwr;
          rec.flops(6);
        }
      }
    }
    return re_[0] + im_[static_cast<std::size_t>(n_ - 1)];
  }

 private:
  template <typename Rec>
  void bit_reverse(Rec& rec) {
    for (std::int64_t i = 1, j = 0; i < n_; ++i) {
      std::int64_t bit = n_ >> 1;
      for (; j & bit; bit >>= 1) j ^= bit;
      j |= bit;
      if (i < j) {
        rec.load_double(re_base_ + static_cast<std::uint64_t>(i) * 8);
        rec.load_double(re_base_ + static_cast<std::uint64_t>(j) * 8);
        rec.store_double(re_base_ + static_cast<std::uint64_t>(i) * 8);
        rec.store_double(re_base_ + static_cast<std::uint64_t>(j) * 8);
        std::swap(re_[static_cast<std::size_t>(i)],
                  re_[static_cast<std::size_t>(j)]);
        rec.load_double(im_base_ + static_cast<std::uint64_t>(i) * 8);
        rec.load_double(im_base_ + static_cast<std::uint64_t>(j) * 8);
        rec.store_double(im_base_ + static_cast<std::uint64_t>(i) * 8);
        rec.store_double(im_base_ + static_cast<std::uint64_t>(j) * 8);
        std::swap(im_[static_cast<std::size_t>(i)],
                  im_[static_cast<std::size_t>(j)]);
      }
    }
  }

  std::int64_t n_;
  std::vector<double> re_, im_;
  std::uint64_t re_base_, im_base_;
};

}  // namespace bwc::workloads
