// Shared runtime state for one execution of a lowered program: the array
// storage/base-address walk, the scalar file, and the ExecResult assembly
// (checksum over declared outputs, counters, profile).
//
// Both executors of lowered bytecode -- the VM (compiled.cpp) and the
// native dlopen backend (codegen.cpp) -- build this identical state, so
// base addresses, deterministic initial array contents and checksum
// composition can never drift between them. It mirrors the reference
// interpreter's Machine exactly for the same reason.
#pragma once

#include <cstdint>
#include <vector>

#include "bwc/runtime/interpreter.h"
#include "bwc/runtime/lowering.h"
#include "bwc/runtime/recorder.h"
#include "bwc/support/error.h"

namespace bwc::runtime {

struct ExecState {
  ExecState(const LoweredProgram& lp, const ExecOptions& opts) : lp(lp) {
    const std::uint64_t align = opts.array_alignment;
    BWC_CHECK(align > 0 && (align & (align - 1)) == 0,
              "array alignment must be a power of two");
    std::uint64_t next = opts.base_address;
    storage.reserve(lp.arrays.size());
    std::vector<std::uint64_t> alloc_base(lp.arrays.size(), 0);
    for (std::size_t a = 0; a < lp.arrays.size(); ++a) {
      const auto& decl = lp.arrays[a];
      // Same walk as the reference interpreter's Machine: one aligned
      // allocation per owner (padded + interleaved size), group members
      // offset into the owner's range. Storage stays logical-dense.
      if (static_cast<std::size_t>(decl.alloc_owner) == a) {
        next = (next + align - 1) / align * align;
        alloc_base[a] = next;
        next += decl.alloc_bytes;
      } else {
        alloc_base[a] = alloc_base[static_cast<std::size_t>(decl.alloc_owner)];
      }
      bases.push_back(alloc_base[a] + decl.member_offset);
      std::vector<double>& d = storage.emplace_back();
      d.resize(static_cast<std::size_t>(decl.element_count));
      for (std::int64_t k = 0; k < decl.element_count; ++k)
        d[static_cast<std::size_t>(k)] = ir::input_value(decl.initial_key, k);
    }
    scalars.assign(lp.scalar_names.size(), 0.0);
    for (auto& d : storage) data.push_back(d.data());
  }

  /// Assemble the ExecResult after a run: recorder counters, final
  /// scalars, array bases and the checksum over declared outputs.
  ExecResult result(const Recorder& rec) const {
    ExecResult r;
    r.flops = rec.flop_count();
    r.loads = rec.load_count();
    r.stores = rec.store_count();
    r.fast_forward_events = rec.fast_forward_events();
    r.fast_forwarded_iterations = rec.fast_forwarded_iterations();
    if (rec.hierarchy() != nullptr) r.profile = rec.profile();
    for (std::size_t s = 0; s < scalars.size(); ++s)
      r.scalars[lp.scalar_names[s]] = scalars[s];
    r.array_bases = bases;
    double checksum = 0.0;
    for (std::int32_t slot : lp.output_scalar_slots)
      checksum += scalars[static_cast<std::size_t>(slot)];
    for (std::int32_t a : lp.output_arrays) {
      for (double x : storage[static_cast<std::size_t>(a)]) checksum += x;
    }
    r.checksum = checksum;
    return r;
  }

  const LoweredProgram& lp;
  std::vector<std::uint64_t> bases;
  std::vector<std::vector<double>> storage;
  std::vector<double*> data;  // storage[a].data(), hot-path flat view
  std::vector<double> scalars;
};

}  // namespace bwc::runtime
