// Access/flop recorder: the instrumentation point between workloads and the
// memory-hierarchy simulator.
//
// Native workloads (matrix multiply, FFT, the SP and Sweep3D proxies) issue
// their exact access streams through a Recorder; IR programs do the same
// via the interpreters. Either way the result is an ExecutionProfile -- the
// flop count and per-boundary transfer bytes that define program balance.
//
// Coalescing fast path: with `coalesce` enabled, runs of adjacent accesses
// that are contiguous in the address space and of the same kind (all loads
// or all stores) are issued to the hierarchy as one batched range instead
// of element by element. The hierarchy splits a range into one
// CacheLevel::access per cache line, so a stride-1 sweep costs one
// simulated access per line rather than one per element (8x fewer for
// 64 B lines of doubles) while every observable -- load/store counts and
// per-boundary traffic bytes -- stays exactly the same: only accesses that
// are *adjacent in stream order* merge, so fills, writebacks, write-through
// forwarding and LRU ordering are unchanged. See docs/runtime.md.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "bwc/machine/timing.h"
#include "bwc/memsim/fastforward.h"
#include "bwc/memsim/hierarchy.h"

namespace bwc::runtime {

class TraceRecorder;
struct StreamLoop;

class Recorder {
 public:
  /// `hierarchy` may be null: flops and access counts are still tracked,
  /// but no cache simulation or boundary traffic is recorded.
  /// `coalesce` enables the batched stride-1 fast path described above.
  /// `warmup_fast_forward` attaches an online steady-state detector
  /// (memsim::AccessFastForward) that absorbs periodic spans of the raw
  /// access stream and folds them into the hierarchy analytically --
  /// counters and final cache state stay exact, so warm-up passes use it
  /// to reach steady state without simulating every element. Ignored
  /// (full simulation) when the hierarchy is null or not
  /// translation-invariant (page-randomized machines).
  explicit Recorder(memsim::MemoryHierarchy* hierarchy = nullptr,
                    bool coalesce = false, bool warmup_fast_forward = false)
      : hierarchy_(hierarchy), coalesce_(coalesce && hierarchy != nullptr) {
    if (warmup_fast_forward && hierarchy != nullptr &&
        hierarchy->translation_invariant())
      online_ff_ = std::make_unique<memsim::AccessFastForward>(hierarchy);
  }

  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  ~Recorder() { flush(); }

  void load(std::uint64_t addr, std::uint64_t size) {
    ++loads_;
    reg_bytes_ += size;
    if (hierarchy_ == nullptr) return;
    if (online_ff_ != nullptr) {
      // The online detector needs the elementwise stream (it infers the
      // period from it), so it bypasses coalescing.
      online_ff_->access(/*is_store=*/false, addr, size);
    } else if (coalesce_) {
      extend_run(addr, size, /*is_store=*/false);
    } else {
      hierarchy_->load(addr, size);
    }
  }
  void store(std::uint64_t addr, std::uint64_t size) {
    ++stores_;
    reg_bytes_ += size;
    if (hierarchy_ == nullptr) return;
    if (online_ff_ != nullptr) {
      online_ff_->access(/*is_store=*/true, addr, size);
    } else if (coalesce_) {
      extend_run(addr, size, /*is_store=*/true);
    } else {
      hierarchy_->store(addr, size);
    }
  }
  void load_double(std::uint64_t addr) { load(addr, 8); }
  void store_double(std::uint64_t addr) { store(addr, 8); }

  void flops(std::uint64_t n) { flops_ += n; }

  /// Issue any pending coalesced run to the hierarchy and settle the
  /// online fast-forward detector (if attached). Must be called (or
  /// implied by profile()/destruction) before reading hierarchy counters.
  void flush() const {
    if (online_ff_ != nullptr) online_ff_->settle();
    if (run_bytes_ == 0) return;
    if (run_is_store_) {
      hierarchy_->store_run(run_addr_, run_bytes_, run_count_,
                            run_descending_);
    } else {
      hierarchy_->load_run(run_addr_, run_bytes_, run_count_,
                           run_descending_);
    }
    run_bytes_ = 0;
  }

  /// Bulk-account accesses that were executed without per-access hooks --
  /// the native backend's hierarchy-less stream kernels (runtime/codegen.h)
  /// run bare value loops and charge their load/store/register totals in
  /// one call. Only legal when no hierarchy is attached: nothing is
  /// simulated here, so with a hierarchy the caller must issue real
  /// load()/store() calls (or a trace merge) instead.
  void count_accesses(std::uint64_t loads, std::uint64_t stores,
                      std::uint64_t reg_bytes) {
    loads_ += loads;
    stores_ += stores;
    reg_bytes_ += reg_bytes;
  }

  /// Bulk-account `iterations` fast-forwarded loop iterations whose
  /// accesses were applied to the hierarchy analytically (never issued
  /// through load()/store()). Keeps this recorder's load/store/register
  /// totals exact; see runtime/fastforward.h for the caller.
  void count_fast_forward(std::uint64_t loads, std::uint64_t stores,
                          std::uint64_t reg_bytes, std::uint64_t iterations) {
    loads_ += loads;
    stores_ += stores;
    reg_bytes_ += reg_bytes;
    ++ff_events_;
    ff_iterations_ += iterations;
  }

  /// Fast-forward events applied through count_fast_forward() (one per
  /// certified loop or parallel chunk) and iterations they skipped.
  std::uint64_t fast_forward_events() const { return ff_events_; }
  std::uint64_t fast_forwarded_iterations() const { return ff_iterations_; }
  /// Accesses absorbed by the online warm-up detector (0 when detached).
  std::uint64_t online_skipped_accesses() const {
    return online_ff_ != nullptr ? online_ff_->skipped_accesses() : 0;
  }

  std::uint64_t flop_count() const { return flops_; }
  std::uint64_t load_count() const { return loads_; }
  std::uint64_t store_count() const { return stores_; }
  std::uint64_t register_bytes() const { return reg_bytes_; }
  memsim::MemoryHierarchy* hierarchy() const { return hierarchy_; }
  bool coalescing() const { return coalesce_; }

  /// Snapshot flops + hierarchy boundary traffic. Requires a hierarchy;
  /// flushes any pending coalesced run first.
  machine::ExecutionProfile profile() const;

  /// Splice a captured trace into this recorder's stream at the current
  /// point: the trace's runs are issued to the hierarchy in their recorded
  /// order and its counters fold into this recorder's totals. Any pending
  /// coalesced run here is flushed first so stream order is preserved.
  /// The parallel executor merges per-chunk traces in chunk-index order
  /// (never completion order), which -- by the run-splitting equivalence
  /// the hierarchy guarantees (see hierarchy.h load_run/store_run) --
  /// reproduces the serial engine's boundary traffic byte-for-byte.
  void merge(const TraceRecorder& trace);

 private:
  void extend_run(std::uint64_t addr, std::uint64_t size, bool is_store) {
    if (run_bytes_ != 0 && is_store == run_is_store_) {
      // A one-access run has no direction yet and may grow either way;
      // afterwards the run only extends in its established direction.
      if ((run_count_ == 1 || !run_descending_) &&
          addr == run_addr_ + run_bytes_) {
        run_bytes_ += size;
        ++run_count_;
        run_descending_ = false;
        return;
      }
      if ((run_count_ == 1 || run_descending_) && addr + size == run_addr_) {
        run_addr_ = addr;
        run_bytes_ += size;
        ++run_count_;
        run_descending_ = true;
        return;
      }
    }
    flush();
    run_addr_ = addr;
    run_bytes_ = size;
    run_count_ = 1;
    run_is_store_ = is_store;
    run_descending_ = false;
  }

  memsim::MemoryHierarchy* hierarchy_;
  bool coalesce_;
  std::unique_ptr<memsim::AccessFastForward> online_ff_;
  std::uint64_t flops_ = 0;
  std::uint64_t loads_ = 0;
  std::uint64_t stores_ = 0;
  std::uint64_t reg_bytes_ = 0;
  std::uint64_t ff_events_ = 0;
  std::uint64_t ff_iterations_ = 0;
  // Pending contiguous run, not yet issued to the hierarchy. Mutable so
  // that profile() (const) can flush before snapshotting.
  mutable std::uint64_t run_addr_ = 0;
  mutable std::uint64_t run_bytes_ = 0;
  mutable std::uint64_t run_count_ = 0;
  mutable bool run_is_store_ = false;
  mutable bool run_descending_ = false;
};

/// One coalesced access run captured by a TraceRecorder: `count`
/// same-kind accesses, contiguous in stream order, covering
/// [addr, addr + bytes) in ascending address order (or descending when
/// flagged -- a stride -1 stream).
struct AccessRun {
  std::uint64_t addr = 0;
  std::uint64_t bytes = 0;
  std::uint64_t count = 0;
  bool is_store = false;
  bool descending = false;
};

/// A Recorder that captures the access stream into a buffer instead of a
/// live hierarchy. Parallel workers each own one: chunks of a stream loop
/// execute concurrently against private traces, and the main thread
/// replays the traces into the shared hierarchy in chunk order via
/// Recorder::merge() -- turning a nondeterministic execution order into
/// the exact serial access stream.
///
/// Same access surface as Recorder (load/store/flops), so
/// run_stream_range() is generic over the two.
class TraceRecorder {
 public:
  /// `record_runs` false skips buffering entirely (counter-only mode, for
  /// executions with no hierarchy attached). `coalesce` batches adjacent
  /// same-kind accesses into one run, exactly like Recorder.
  explicit TraceRecorder(bool record_runs, bool coalesce)
      : record_runs_(record_runs), coalesce_(coalesce) {}

  void load(std::uint64_t addr, std::uint64_t size) {
    ++loads_;
    reg_bytes_ += size;
    if (record_runs_) append(addr, size, /*is_store=*/false);
  }
  void store(std::uint64_t addr, std::uint64_t size) {
    ++stores_;
    reg_bytes_ += size;
    if (record_runs_) append(addr, size, /*is_store=*/true);
  }
  void flops(std::uint64_t n) { flops_ += n; }

  /// Counter-only bulk accounting, mirroring Recorder::count_accesses():
  /// legal only in counter-only mode (record_runs false), where no run
  /// buffer exists to keep in step.
  void count_accesses(std::uint64_t loads, std::uint64_t stores,
                      std::uint64_t reg_bytes) {
    loads_ += loads;
    stores_ += stores;
    reg_bytes_ += reg_bytes;
  }

  /// True when this trace buffers access runs (a hierarchy is attached to
  /// the merging recorder); false means counter-only mode.
  bool recording_runs() const { return record_runs_; }

  std::uint64_t flop_count() const { return flops_; }
  std::uint64_t load_count() const { return loads_; }
  std::uint64_t store_count() const { return stores_; }
  std::uint64_t register_bytes() const { return reg_bytes_; }
  const std::vector<AccessRun>& runs() const { return runs_; }

  /// Describe this trace as a compute-only stream-loop chunk instead of a
  /// run buffer: the workers did the arithmetic (and counted the flops
  /// here), and Recorder::merge() regenerates the chunk's access stream
  /// from the loop metadata -- fast-forwarding within the chunk -- rather
  /// than replaying captured runs. `sl` and `bases` must outlive the
  /// merge (both belong to the executing VM).
  void set_stream_segment(const StreamLoop* sl, std::int64_t lower,
                          std::int64_t upper, const std::uint64_t* bases) {
    segment_loop_ = sl;
    segment_lower_ = lower;
    segment_upper_ = upper;
    segment_bases_ = bases;
  }
  bool has_segment() const { return segment_loop_ != nullptr; }
  const StreamLoop* segment_loop() const { return segment_loop_; }
  std::int64_t segment_lower() const { return segment_lower_; }
  std::int64_t segment_upper() const { return segment_upper_; }
  const std::uint64_t* segment_bases() const { return segment_bases_; }

 private:
  void append(std::uint64_t addr, std::uint64_t size, bool is_store) {
    if (coalesce_ && !runs_.empty()) {
      AccessRun& last = runs_.back();
      if (last.is_store == is_store) {
        if ((last.count == 1 || !last.descending) &&
            addr == last.addr + last.bytes) {
          last.bytes += size;
          ++last.count;
          last.descending = false;
          return;
        }
        if ((last.count == 1 || last.descending) &&
            addr + size == last.addr) {
          last.addr = addr;
          last.bytes += size;
          ++last.count;
          last.descending = true;
          return;
        }
      }
    }
    runs_.push_back({addr, size, 1, is_store, false});
  }

  bool record_runs_;
  bool coalesce_;
  std::uint64_t flops_ = 0;
  std::uint64_t loads_ = 0;
  std::uint64_t stores_ = 0;
  std::uint64_t reg_bytes_ = 0;
  std::vector<AccessRun> runs_;
  const StreamLoop* segment_loop_ = nullptr;
  std::int64_t segment_lower_ = 0;
  std::int64_t segment_upper_ = 0;
  const std::uint64_t* segment_bases_ = nullptr;
};

}  // namespace bwc::runtime
