// Access/flop recorder: the instrumentation point between workloads and the
// memory-hierarchy simulator.
//
// Native workloads (matrix multiply, FFT, the SP and Sweep3D proxies) issue
// their exact access streams through a Recorder; IR programs do the same
// via the interpreters. Either way the result is an ExecutionProfile -- the
// flop count and per-boundary transfer bytes that define program balance.
//
// Coalescing fast path: with `coalesce` enabled, runs of adjacent accesses
// that are contiguous in the address space and of the same kind (all loads
// or all stores) are issued to the hierarchy as one batched range instead
// of element by element. The hierarchy splits a range into one
// CacheLevel::access per cache line, so a stride-1 sweep costs one
// simulated access per line rather than one per element (8x fewer for
// 64 B lines of doubles) while every observable -- load/store counts and
// per-boundary traffic bytes -- stays exactly the same: only accesses that
// are *adjacent in stream order* merge, so fills, writebacks, write-through
// forwarding and LRU ordering are unchanged. See docs/runtime.md.
#pragma once

#include <cstdint>
#include <vector>

#include "bwc/machine/timing.h"
#include "bwc/memsim/hierarchy.h"

namespace bwc::runtime {

class TraceRecorder;

class Recorder {
 public:
  /// `hierarchy` may be null: flops and access counts are still tracked,
  /// but no cache simulation or boundary traffic is recorded.
  /// `coalesce` enables the batched stride-1 fast path described above.
  explicit Recorder(memsim::MemoryHierarchy* hierarchy = nullptr,
                    bool coalesce = false)
      : hierarchy_(hierarchy), coalesce_(coalesce && hierarchy != nullptr) {}

  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  ~Recorder() { flush(); }

  void load(std::uint64_t addr, std::uint64_t size) {
    ++loads_;
    reg_bytes_ += size;
    if (hierarchy_ == nullptr) return;
    if (coalesce_) {
      extend_run(addr, size, /*is_store=*/false);
    } else {
      hierarchy_->load(addr, size);
    }
  }
  void store(std::uint64_t addr, std::uint64_t size) {
    ++stores_;
    reg_bytes_ += size;
    if (hierarchy_ == nullptr) return;
    if (coalesce_) {
      extend_run(addr, size, /*is_store=*/true);
    } else {
      hierarchy_->store(addr, size);
    }
  }
  void load_double(std::uint64_t addr) { load(addr, 8); }
  void store_double(std::uint64_t addr) { store(addr, 8); }

  void flops(std::uint64_t n) { flops_ += n; }

  /// Issue any pending coalesced run to the hierarchy. Must be called (or
  /// implied by profile()/destruction) before reading hierarchy counters.
  void flush() const {
    if (run_bytes_ == 0) return;
    if (run_is_store_) {
      hierarchy_->store_run(run_addr_, run_bytes_, run_count_);
    } else {
      hierarchy_->load_run(run_addr_, run_bytes_, run_count_);
    }
    run_bytes_ = 0;
  }

  std::uint64_t flop_count() const { return flops_; }
  std::uint64_t load_count() const { return loads_; }
  std::uint64_t store_count() const { return stores_; }
  std::uint64_t register_bytes() const { return reg_bytes_; }
  memsim::MemoryHierarchy* hierarchy() const { return hierarchy_; }
  bool coalescing() const { return coalesce_; }

  /// Snapshot flops + hierarchy boundary traffic. Requires a hierarchy;
  /// flushes any pending coalesced run first.
  machine::ExecutionProfile profile() const;

  /// Splice a captured trace into this recorder's stream at the current
  /// point: the trace's runs are issued to the hierarchy in their recorded
  /// order and its counters fold into this recorder's totals. Any pending
  /// coalesced run here is flushed first so stream order is preserved.
  /// The parallel executor merges per-chunk traces in chunk-index order
  /// (never completion order), which -- by the run-splitting equivalence
  /// the hierarchy guarantees (see hierarchy.h load_run/store_run) --
  /// reproduces the serial engine's boundary traffic byte-for-byte.
  void merge(const TraceRecorder& trace);

 private:
  void extend_run(std::uint64_t addr, std::uint64_t size, bool is_store) {
    if (run_bytes_ != 0 && is_store == run_is_store_ &&
        addr == run_addr_ + run_bytes_) {
      run_bytes_ += size;
      ++run_count_;
      return;
    }
    flush();
    run_addr_ = addr;
    run_bytes_ = size;
    run_count_ = 1;
    run_is_store_ = is_store;
  }

  memsim::MemoryHierarchy* hierarchy_;
  bool coalesce_;
  std::uint64_t flops_ = 0;
  std::uint64_t loads_ = 0;
  std::uint64_t stores_ = 0;
  std::uint64_t reg_bytes_ = 0;
  // Pending contiguous run, not yet issued to the hierarchy. Mutable so
  // that profile() (const) can flush before snapshotting.
  mutable std::uint64_t run_addr_ = 0;
  mutable std::uint64_t run_bytes_ = 0;
  mutable std::uint64_t run_count_ = 0;
  mutable bool run_is_store_ = false;
};

/// One coalesced access run captured by a TraceRecorder: `count`
/// same-kind accesses, contiguous in stream order, covering
/// [addr, addr + bytes).
struct AccessRun {
  std::uint64_t addr = 0;
  std::uint64_t bytes = 0;
  std::uint64_t count = 0;
  bool is_store = false;
};

/// A Recorder that captures the access stream into a buffer instead of a
/// live hierarchy. Parallel workers each own one: chunks of a stream loop
/// execute concurrently against private traces, and the main thread
/// replays the traces into the shared hierarchy in chunk order via
/// Recorder::merge() -- turning a nondeterministic execution order into
/// the exact serial access stream.
///
/// Same access surface as Recorder (load/store/flops), so
/// run_stream_range() is generic over the two.
class TraceRecorder {
 public:
  /// `record_runs` false skips buffering entirely (counter-only mode, for
  /// executions with no hierarchy attached). `coalesce` batches adjacent
  /// same-kind accesses into one run, exactly like Recorder.
  explicit TraceRecorder(bool record_runs, bool coalesce)
      : record_runs_(record_runs), coalesce_(coalesce) {}

  void load(std::uint64_t addr, std::uint64_t size) {
    ++loads_;
    reg_bytes_ += size;
    if (record_runs_) append(addr, size, /*is_store=*/false);
  }
  void store(std::uint64_t addr, std::uint64_t size) {
    ++stores_;
    reg_bytes_ += size;
    if (record_runs_) append(addr, size, /*is_store=*/true);
  }
  void flops(std::uint64_t n) { flops_ += n; }

  std::uint64_t flop_count() const { return flops_; }
  std::uint64_t load_count() const { return loads_; }
  std::uint64_t store_count() const { return stores_; }
  std::uint64_t register_bytes() const { return reg_bytes_; }
  const std::vector<AccessRun>& runs() const { return runs_; }

 private:
  void append(std::uint64_t addr, std::uint64_t size, bool is_store) {
    if (coalesce_ && !runs_.empty()) {
      AccessRun& last = runs_.back();
      if (last.is_store == is_store && addr == last.addr + last.bytes) {
        last.bytes += size;
        ++last.count;
        return;
      }
    }
    runs_.push_back({addr, size, 1, is_store});
  }

  bool record_runs_;
  bool coalesce_;
  std::uint64_t flops_ = 0;
  std::uint64_t loads_ = 0;
  std::uint64_t stores_ = 0;
  std::uint64_t reg_bytes_ = 0;
  std::vector<AccessRun> runs_;
};

}  // namespace bwc::runtime
