// Access/flop recorder: the instrumentation point between workloads and the
// memory-hierarchy simulator.
//
// Native workloads (matrix multiply, FFT, the SP and Sweep3D proxies) issue
// their exact access streams through a Recorder; IR programs do the same
// via the interpreter. Either way the result is an ExecutionProfile -- the
// flop count and per-boundary transfer bytes that define program balance.
#pragma once

#include <cstdint>

#include "bwc/machine/timing.h"
#include "bwc/memsim/hierarchy.h"

namespace bwc::runtime {

class Recorder {
 public:
  /// `hierarchy` may be null: flops and access counts are still tracked,
  /// but no cache simulation or boundary traffic is recorded.
  explicit Recorder(memsim::MemoryHierarchy* hierarchy = nullptr)
      : hierarchy_(hierarchy) {}

  void load(std::uint64_t addr, std::uint64_t size) {
    ++loads_;
    reg_bytes_ += size;
    if (hierarchy_ != nullptr) hierarchy_->load(addr, size);
  }
  void store(std::uint64_t addr, std::uint64_t size) {
    ++stores_;
    reg_bytes_ += size;
    if (hierarchy_ != nullptr) hierarchy_->store(addr, size);
  }
  void load_double(std::uint64_t addr) { load(addr, 8); }
  void store_double(std::uint64_t addr) { store(addr, 8); }

  void flops(std::uint64_t n) { flops_ += n; }

  std::uint64_t flop_count() const { return flops_; }
  std::uint64_t load_count() const { return loads_; }
  std::uint64_t store_count() const { return stores_; }
  std::uint64_t register_bytes() const { return reg_bytes_; }
  memsim::MemoryHierarchy* hierarchy() const { return hierarchy_; }

  /// Snapshot flops + hierarchy boundary traffic. Requires a hierarchy.
  machine::ExecutionProfile profile() const;

 private:
  memsim::MemoryHierarchy* hierarchy_;
  std::uint64_t flops_ = 0;
  std::uint64_t loads_ = 0;
  std::uint64_t stores_ = 0;
  std::uint64_t reg_bytes_ = 0;
};

}  // namespace bwc::runtime
