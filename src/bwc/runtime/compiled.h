// Compiled execution engine: replays a lowered program (lowering.h)
// through a tight dispatch loop.
//
// Produces bit-identical results to the reference interpreter
// (interpreter.h) -- same checksums, flop/load/store counts, scalar
// values, array bases and per-boundary traffic -- while avoiding all
// per-access name lookups and heap allocation. With a memory hierarchy
// attached it additionally coalesces stride-1 access runs into
// line-granular batches (see recorder.h), which preserves boundary
// traffic byte-for-byte but costs one CacheLevel::access per cache line
// instead of one per element.
//
// The reference interpreter remains the semantics oracle; the
// differential test (tests/compiled_runtime_test.cpp) holds the two
// engines identical over the paper programs, the extra pipelines and a
// seeded random-program corpus.
#pragma once

#include "bwc/ir/program.h"
#include "bwc/runtime/interpreter.h"
#include "bwc/runtime/lowering.h"

namespace bwc::runtime {

class StreamScheduler;

/// Lower and execute in one call. Semantically identical to execute(),
/// faster; honors ExecOptions::coalesce_accesses and ExecOptions::cores
/// (cores > 1 routes through the parallel executor, see parallel.h).
ExecResult execute_compiled(const ir::Program& program,
                            const ExecOptions& opts = {});

/// Execute an already-lowered program (amortizes lower() across repeated
/// runs, e.g. steady-state measurement or benchmarking loops). Honors
/// ExecOptions::cores like execute_compiled().
ExecResult execute_lowered(const LoweredProgram& lowered,
                           const ExecOptions& opts = {});

/// Execute with an explicit stream-loop scheduler (the extension point
/// the parallel engine plugs into; null runs every fused loop inline).
/// Most callers want execute_lowered(), which picks the scheduler from
/// ExecOptions::cores.
ExecResult execute_lowered_with_scheduler(const LoweredProgram& lowered,
                                          const ExecOptions& opts,
                                          StreamScheduler* scheduler);

}  // namespace bwc::runtime
