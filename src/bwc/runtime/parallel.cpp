#include "bwc/runtime/parallel.h"

#include <vector>

#include "bwc/runtime/compiled.h"
#include "bwc/runtime/fastforward.h"
#include "bwc/runtime/recorder.h"
#include "bwc/runtime/thread_pool.h"
#include "bwc/support/error.h"

namespace bwc::runtime {

ParallelScheduler::ParallelScheduler(int cores, bool record_runs,
                                     bool coalesce,
                                     std::int64_t min_parallel_trips,
                                     bool fast_forward)
    : pool_(std::make_unique<ThreadPool>(cores)),
      cores_(cores),
      record_runs_(record_runs),
      coalesce_(coalesce),
      min_parallel_trips_(min_parallel_trips),
      fast_forward_(fast_forward) {
  BWC_CHECK(cores >= 1, "parallel scheduler needs at least one core");
}

ParallelScheduler::~ParallelScheduler() = default;

void ParallelScheduler::run(const StreamLoop& sl, const StreamContext& ctx,
                            Recorder& rec) {
  StreamRangeExec& exec = exec_ != nullptr ? *exec_ : default_range_exec();
  const std::int64_t trips = sl.upper - sl.lower + 1;
  if (trips <= 0) return;
  if (cores_ == 1 || trips < min_parallel_trips_ ||
      !stream_loop_parallel_safe(sl)) {
    run_stream_serial_with(sl, sl.lower, sl.upper, ctx, rec, fast_forward_,
                           exec);
    return;
  }

  // Deterministic chunking: trips split as evenly as possible, the first
  // `trips % chunks` chunks one iteration longer, exactly like a static
  // OpenMP schedule. Chunk boundaries depend only on (trips, cores), so
  // the merged access stream is a pure function of the program.
  const std::int64_t chunks =
      std::min<std::int64_t>(static_cast<std::int64_t>(cores_), trips);
  const std::int64_t base = trips / chunks;
  const std::int64_t extra = trips % chunks;
  std::vector<std::int64_t> chunk_lower(static_cast<std::size_t>(chunks));
  std::vector<std::int64_t> chunk_upper(static_cast<std::size_t>(chunks));
  std::int64_t next = sl.lower;
  for (std::int64_t c = 0; c < chunks; ++c) {
    const std::int64_t len = base + (c < extra ? 1 : 0);
    chunk_lower[static_cast<std::size_t>(c)] = next;
    chunk_upper[static_cast<std::size_t>(c)] = next + len - 1;
    next += len;
  }

  std::vector<TraceRecorder> traces;
  traces.reserve(static_cast<std::size_t>(chunks));
  for (std::int64_t c = 0; c < chunks; ++c)
    traces.emplace_back(record_runs_, coalesce_);

  // Fast-forwardable loops skip run capture entirely: workers do only the
  // arithmetic (the loop is parallelizable, so writes are disjoint), each
  // trace carrying a segment descriptor plus the chunk's flop charge, and
  // the merge below regenerates the access stream per chunk with the
  // steady-state detector applied. Gated on record_runs_ so hierarchy-less
  // executions keep their counter-only traces, and on fast_forward_ so
  // --no-fast-forward runs are byte-identical to the trace-and-replay
  // engine.
  const bool segments =
      fast_forward_ && record_runs_ && stream_fast_forwardable(sl, rec);
  if (segments) {
    const std::uint64_t fpi = stream_flops_per_iter(sl);
    for (std::int64_t c = 0; c < chunks; ++c) {
      const auto ci = static_cast<std::size_t>(c);
      traces[ci].set_stream_segment(&sl, chunk_lower[ci], chunk_upper[ci],
                                    ctx.bases);
      traces[ci].flops(fpi * static_cast<std::uint64_t>(
                                 chunk_upper[ci] - chunk_lower[ci] + 1));
    }
    pool_->parallel_for(static_cast<std::size_t>(chunks), [&](std::size_t c) {
      exec.values(sl, chunk_lower[c], chunk_upper[c], ctx);
    });
  } else {
    pool_->parallel_for(static_cast<std::size_t>(chunks), [&](std::size_t c) {
      exec.range_trace(sl, chunk_lower[c], chunk_upper[c], ctx, traces[c]);
    });
  }

  // Join happened above; merge in chunk-index order, never completion
  // order, so the hierarchy sees the serial access stream.
  for (TraceRecorder& trace : traces) rec.merge(trace);
  ++parallel_loops_;
}

ExecResult execute_parallel(const LoweredProgram& lowered,
                            const ExecOptions& opts) {
  BWC_CHECK(opts.cores >= 1, "core count must be at least 1");
  ParallelScheduler scheduler(opts.cores,
                              /*record_runs=*/opts.hierarchy != nullptr,
                              opts.coalesce_accesses, opts.min_parallel_trips,
                              opts.fast_forward);
  return execute_lowered_with_scheduler(lowered, opts, &scheduler);
}

}  // namespace bwc::runtime
