#include "bwc/runtime/parallel.h"

#include <vector>

#include "bwc/runtime/compiled.h"
#include "bwc/runtime/recorder.h"
#include "bwc/runtime/thread_pool.h"
#include "bwc/support/error.h"

namespace bwc::runtime {

ParallelScheduler::ParallelScheduler(int cores, bool record_runs,
                                     bool coalesce,
                                     std::int64_t min_parallel_trips)
    : pool_(std::make_unique<ThreadPool>(cores)),
      cores_(cores),
      record_runs_(record_runs),
      coalesce_(coalesce),
      min_parallel_trips_(min_parallel_trips) {
  BWC_CHECK(cores >= 1, "parallel scheduler needs at least one core");
}

ParallelScheduler::~ParallelScheduler() = default;

void ParallelScheduler::run(const StreamLoop& sl, const StreamContext& ctx,
                            Recorder& rec) {
  const std::int64_t trips = sl.upper - sl.lower + 1;
  if (trips <= 0) return;
  if (cores_ == 1 || trips < min_parallel_trips_ ||
      !stream_loop_parallelizable(sl)) {
    run_stream_range(sl, sl.lower, sl.upper, ctx, rec);
    return;
  }

  // Deterministic chunking: trips split as evenly as possible, the first
  // `trips % chunks` chunks one iteration longer, exactly like a static
  // OpenMP schedule. Chunk boundaries depend only on (trips, cores), so
  // the merged access stream is a pure function of the program.
  const std::int64_t chunks =
      std::min<std::int64_t>(static_cast<std::int64_t>(cores_), trips);
  const std::int64_t base = trips / chunks;
  const std::int64_t extra = trips % chunks;
  std::vector<std::int64_t> chunk_lower(static_cast<std::size_t>(chunks));
  std::vector<std::int64_t> chunk_upper(static_cast<std::size_t>(chunks));
  std::int64_t next = sl.lower;
  for (std::int64_t c = 0; c < chunks; ++c) {
    const std::int64_t len = base + (c < extra ? 1 : 0);
    chunk_lower[static_cast<std::size_t>(c)] = next;
    chunk_upper[static_cast<std::size_t>(c)] = next + len - 1;
    next += len;
  }

  std::vector<TraceRecorder> traces;
  traces.reserve(static_cast<std::size_t>(chunks));
  for (std::int64_t c = 0; c < chunks; ++c)
    traces.emplace_back(record_runs_, coalesce_);

  pool_->parallel_for(static_cast<std::size_t>(chunks), [&](std::size_t c) {
    run_stream_range(sl, chunk_lower[c], chunk_upper[c], ctx, traces[c]);
  });

  // Join happened above; merge in chunk-index order, never completion
  // order, so the hierarchy sees the serial access stream.
  for (TraceRecorder& trace : traces) rec.merge(trace);
  ++parallel_loops_;
}

ExecResult execute_parallel(const LoweredProgram& lowered,
                            const ExecOptions& opts) {
  BWC_CHECK(opts.cores >= 1, "core count must be at least 1");
  ParallelScheduler scheduler(opts.cores,
                              /*record_runs=*/opts.hierarchy != nullptr,
                              opts.coalesce_accesses, opts.min_parallel_trips);
  return execute_lowered_with_scheduler(lowered, opts, &scheduler);
}

}  // namespace bwc::runtime
