// Lowering pass: resolve a loop-program IR to a slot-addressed, flat
// bytecode form that the compiled executor can replay without any
// per-access name lookups or heap allocation.
//
// The tree-walking interpreter (interpreter.h) pays three per-access
// costs that dominate replay time: a string-hash lookup for every scalar,
// a linear string-compare scan of the loop environment for every loop
// variable, and a std::vector of subscript values for every array
// reference. lower() pays those costs once per program instead:
//
//  * scalar names    -> dense integer slots into a double array
//  * loop variables  -> dense iteration slots (one per nesting depth),
//                       resolved lexically so shadowing works
//  * affine exprs    -> LinExpr: base + sum(coeff * iter[slot])
//  * subscripts      -> per-dimension {LinExpr, extent, stride} triples
//                       with the column-major strides baked in, so
//                       locate() becomes a few integer multiply-adds
//  * statement tree  -> a compact Op array with explicit jump targets,
//                       executed by a tight dispatch loop (compiled.h)
//
// Lowering validates what the interpreter would only discover at run
// time: references to undeclared scalars, unbound loop variables and
// malformed intrinsic calls all throw bwc::Error here.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bwc/ir/program.h"
#include "bwc/verify/static_dependence.h"

namespace bwc::runtime {

/// One term of a linear expression: coeff * iter[slot].
struct LinTerm {
  std::int32_t slot = 0;
  std::int64_t coeff = 0;
};

/// base + sum of LinTerms stored in LoweredProgram::terms
/// [first_term, first_term + term_count).
struct LinExpr {
  std::int64_t base = 0;
  std::uint32_t first_term = 0;
  std::uint32_t term_count = 0;
};

/// One subscript dimension of an array or input access. `index` yields the
/// 1-based subscript; legal range is [1, extent]; `stride` is the element
/// stride of this dimension under column-major layout (the *logical*
/// storage stride); `layout_stride` is its slot stride in the declared
/// ArrayLayout (equal to `stride` under the default layout).
struct LoweredDim {
  LinExpr index;
  std::int64_t extent = 0;
  std::int64_t stride = 1;
  std::int64_t layout_stride = 1;
};

enum class OpCode : std::uint8_t {
  kPushConst,    // push imm
  kPushScalar,   // push scalars[slot]
  kPushLoopVar,  // push (double)iters[slot]
  kPushInput,    // push input_value(input_key, linearized dims)
  kLoadArray,    // push storage[slot][linearized dims]; records a load
  kLoadArray1,   // kLoadArray specialized: 1-D subscript lin_base +
                 // lin_coeff * iters[iter], range [1, extent]
  kStoreArray1,  // kStoreArray specialized the same way
  kBinary,       // pop b, a; push a <bin_op> b; records kBinaryFlops
  kCallF,        // pop b, a; push intrinsic_f(a, b); records `flops`
  kCallG,        // pop b, a; push intrinsic_g(a, b); records `flops`
  kStoreArray,   // pop v; storage[slot][dims] = v; records a store
  kStoreScalar,  // pop v; scalars[slot] = v
  kBranch,       // if !(lin_exprs[lhs] cmp lin_exprs[rhs]) goto target
  kJump,         // goto target
  kLoopBegin,    // if lower > upper goto target; else iters[slot] = lower
  kLoopEnd,      // if ++iters[slot] <= upper goto target (body start)
  kStreamLoop,   // run stream_loops[slot] natively (fused innermost loop)
  kHalt,         // end of program
};

/// One operand of a fused stream loop: a constant, a scalar read, the loop
/// variable itself, or a 1-D array reference whose subscript is
/// `lin_base + lin_coeff * i` in the fused loop's variable.
struct StreamOperand {
  enum class Kind : std::uint8_t { kConst, kScalar, kIter, kArray };
  Kind kind = Kind::kConst;
  double imm = 0.0;            // kConst
  std::int32_t slot = 0;       // kScalar: scalar slot; kArray: array id
  std::int64_t lin_base = 0;   // kArray subscript intercept
  std::int64_t lin_coeff = 0;  // kArray subscript slope in the loop var
  std::uint64_t elem_bytes = 8;
  /// Simulated bytes between consecutive layout slots (elem_bytes when the
  /// array is not interleaved); the cursor step is lin_coeff * addr_scale.
  std::uint64_t addr_scale = 8;
};

/// A fused innermost loop: `for i = lower..upper` around one streaming
/// statement. Lowering only builds one when every access is a 1-D affine
/// subscript in the loop variable alone and provably in bounds over the
/// whole trip range, so the executor can run the body as a tight native
/// loop -- pointers advanced incrementally, no per-iteration dispatch,
/// bounds checks hoisted out -- while producing the identical access
/// stream, element order and flop totals as the generic op sequence.
struct StreamLoop {
  /// Statement shape. kReduce is `s = s <bin_op> operand_a` with the
  /// accumulator carried in a register across iterations.
  enum class Body : std::uint8_t { kCopy, kBinary, kCallF, kCallG, kReduce };
  Body body = Body::kCopy;
  ir::BinOp bin_op = ir::BinOp::kAdd;  // kBinary/kReduce
  std::int32_t call_flops = 0;         // kCallF/kCallG per-iteration charge
  std::int64_t lower = 0, upper = 0;
  bool lhs_is_array = false;
  StreamOperand lhs;       // kArray destination, or kScalar for kReduce
  StreamOperand a, b;      // rhs operands (b unused for kCopy/kReduce)
  /// Per-iteration byte shift shared by *every* array access of the body,
  /// or 0 when no such uniform shift exists (reductions, mixed strides,
  /// stride-0 destinations). Nonzero means the loop's whole access tuple
  /// translates by this constant each iteration -- the precondition for
  /// steady-state fast-forward (runtime/fastforward.h).
  std::int64_t uniform_step_bytes = 0;
  /// Static parallel-safety certificate, computed once at lowering time
  /// (verify::certify_parallel_accesses over the loop's byte-linear
  /// accesses): kIndependent proves no two distinct iterations touch
  /// overlapping bytes with a write involved, so *any* chunking of the
  /// trip range is race-free and order-preserving; kDependent carries a
  /// concrete cross-iteration conflict; kUnknown defers to the syntactic
  /// stream_loop_parallelizable() test (stream_exec.h).
  verify::Verdict parallel_safety = verify::Verdict::kUnknown;
};

/// One flat instruction. A plain struct (no unions) keeps the executor
/// branch-free on field access; unused fields are simply ignored.
struct Op {
  OpCode code = OpCode::kHalt;
  ir::BinOp bin_op = ir::BinOp::kAdd;  // kBinary
  ir::CmpOp cmp = ir::CmpOp::kEq;      // kBranch
  std::int32_t slot = 0;       // scalar slot, iter slot, or array id
  std::int32_t flops = 0;      // kCallF/kCallG flop charge
  std::int32_t input_key = 0;  // kPushInput
  std::uint32_t first_dim = 0;  // into LoweredProgram::dims
  std::uint32_t dim_count = 0;
  std::uint32_t lhs = 0, rhs = 0;  // kBranch: into LoweredProgram::lin_exprs
  std::int32_t target = 0;     // jump target pc
  std::int64_t lower = 0, upper = 0;  // kLoopBegin/kLoopEnd bounds
  double imm = 0.0;            // kPushConst
  std::uint64_t elem_bytes = 8;  // kLoadArray/kStoreArray access size
  // k{Load,Store}Array1: operands inlined so the executor chases no
  // side-table pointers on the hot single-subscript path.
  std::int32_t iter = 0;      // iteration slot of the subscript
  std::int64_t lin_base = 0;  // subscript = lin_base + lin_coeff*iters[iter]
  std::int64_t lin_coeff = 0;
  std::int64_t extent = 0;    // legal subscript range [1, extent]
  /// Simulated bytes between consecutive layout slots of the accessed
  /// array (kLoadArray/kStoreArray and the Array1 forms).
  std::uint64_t addr_scale = 8;
};

/// Everything the executor needs about one declared array, with the
/// name-derived initial-contents key resolved ahead of time. Storage is
/// always logical-dense (element_count doubles, subscript-linearized);
/// the addressing fields place the array in the simulated address space
/// according to its declared ArrayLayout: every element address is
///   walk_base(alloc_owner) + member_offset + layout_offset * addr_scale.
struct LoweredArray {
  std::string name;
  std::vector<std::int64_t> extents;
  std::uint64_t elem_bytes = 8;
  std::int64_t element_count = 0;
  int initial_key = 0;
  /// Bytes between consecutive layout slots (elem_bytes, or group size *
  /// elem_bytes for interleaved arrays).
  std::uint64_t addr_scale = 8;
  /// Byte offset of this member inside its allocation (interleave rank).
  std::uint64_t member_offset = 0;
  /// Allocation size at this array's walk position; 0 for group members
  /// that share an earlier member's allocation (the walk skips them).
  std::uint64_t alloc_bytes = 0;
  /// Array id whose walk position hosts this array's bytes (self unless
  /// interleaved with a lower-id member).
  std::int32_t alloc_owner = 0;
};

/// A program lowered to slots and bytecode. Self-contained: owns copies of
/// every declaration it needs, so it may outlive the ir::Program.
struct LoweredProgram {
  std::string name;
  std::vector<LoweredArray> arrays;
  std::vector<std::string> scalar_names;
  std::vector<std::int32_t> output_scalar_slots;
  std::vector<std::int32_t> output_arrays;
  std::vector<Op> ops;
  std::vector<LinTerm> terms;
  std::vector<LoweredDim> dims;
  std::vector<LinExpr> lin_exprs;
  std::vector<StreamLoop> stream_loops;
  /// Number of iteration slots (maximum loop nesting depth).
  std::int32_t iter_slot_count = 0;
  /// Deepest value-stack use of any expression; the executor preallocates.
  std::size_t max_stack = 1;
};

/// Lower `program` once; the result can be executed any number of times.
/// Throws bwc::Error on undeclared names, unbound loop variables or
/// malformed intrinsic calls.
LoweredProgram lower(const ir::Program& program);

}  // namespace bwc::runtime
