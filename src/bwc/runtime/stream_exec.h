// Range execution of fused stream loops, shared by the serial VM and the
// parallel executor.
//
// A StreamLoop (lowering.h) is an innermost loop whose accesses are all
// 1-D affine in the loop variable and provably in bounds, so any
// contiguous sub-range [lower, upper] of its trip space can be replayed
// independently given the program state (array storage, bases, scalars)
// and a recorder. The serial engine runs the full range inline; the
// parallel engine (parallel.h) splits the range into per-core chunks --
// legality established by stream_loop_parallelizable() -- and runs each
// chunk on a worker with a private trace recorder.
#pragma once

#include <algorithm>
#include <cstdint>

#include "bwc/ir/expr.h"
#include "bwc/runtime/interpreter.h"
#include "bwc/runtime/lowering.h"

namespace bwc::runtime {

class Recorder;

/// The mutable program state a stream loop touches: flat per-array
/// storage, simulated base addresses, and the scalar file.
struct StreamContext {
  double* const* data = nullptr;
  const std::uint64_t* bases = nullptr;
  double* scalars = nullptr;
};

inline double apply_stream_bin(ir::BinOp op, double a, double b) {
  switch (op) {
    case ir::BinOp::kAdd: return a + b;
    case ir::BinOp::kSub: return a - b;
    case ir::BinOp::kMul: return a * b;
    case ir::BinOp::kDiv: return a / b;
    case ir::BinOp::kMin: return std::min(a, b);
    case ir::BinOp::kMax: return std::max(a, b);
  }
  return 0.0;
}

/// True when disjoint chunks of the trip range may execute concurrently
/// and still produce the serial results bit-for-bit:
///  - the body writes a distinct array element every iteration (array lhs
///    with nonzero slope), never a scalar accumulation (kReduce carries
///    the accumulator serially and its fold order is not associative in
///    floating point);
///  - any read of the *written* array uses the identical subscript, so
///    every dependence stays within one iteration. Reads of other arrays
///    and hoisted scalars/constants are trivially safe.
inline bool stream_loop_parallelizable(const StreamLoop& sl) {
  if (sl.body == StreamLoop::Body::kReduce) return false;
  if (!sl.lhs_is_array || sl.lhs.kind != StreamOperand::Kind::kArray)
    return false;
  if (sl.lhs.lin_coeff == 0) return false;
  for (const StreamOperand* o : {&sl.a, &sl.b}) {
    if (o->kind != StreamOperand::Kind::kArray) continue;
    if (o->slot != sl.lhs.slot) continue;
    if (o->lin_base != sl.lhs.lin_base || o->lin_coeff != sl.lhs.lin_coeff)
      return false;
  }
  return true;
}

/// The chunk-safety decision the executors consult: the static certificate
/// computed at lowering time rules when it proved something (it covers
/// loops the syntactic test cannot, e.g. a write to 2i alongside a read of
/// 2i+1, which never collide by a GCD argument); the syntactic test only
/// decides the kUnknown remainder.
inline bool stream_loop_parallel_safe(const StreamLoop& sl) {
  if (sl.parallel_safety == verify::Verdict::kIndependent) return true;
  if (sl.parallel_safety == verify::Verdict::kDependent) return false;
  return stream_loop_parallelizable(sl);
}

namespace detail {

/// Runtime cursor for one operand: either an invariant value (constants
/// and scalars, hoisted -- the loop's only write is the lhs) or a pointer
/// walking an array stream.
struct StreamCursor {
  double value = 0.0;
  double* p = nullptr;
  std::uint64_t addr = 0;
  std::int64_t step = 0;        // elements per iteration (may be <= 0)
  std::int64_t step_bytes = 0;  // step * addr_scale (simulated byte shift)
  std::uint64_t bytes = 8;
};

inline StreamCursor make_stream_cursor(const StreamOperand& o,
                                       std::int64_t lower,
                                       const StreamContext& ctx) {
  StreamCursor c;
  switch (o.kind) {
    case StreamOperand::Kind::kConst:
      c.value = o.imm;
      break;
    case StreamOperand::Kind::kScalar:
      c.value = ctx.scalars[static_cast<std::size_t>(o.slot)];
      break;
    case StreamOperand::Kind::kIter:
      break;  // read substitutes the iteration value
    case StreamOperand::Kind::kArray: {
      // 1-D slot offsets equal the logical linear index under any layout;
      // the address pitch (addr_scale) carries the interleave factor.
      const std::int64_t linear0 = o.lin_base + o.lin_coeff * lower - 1;
      c.p = ctx.data[static_cast<std::size_t>(o.slot)] + linear0;
      c.addr = ctx.bases[static_cast<std::size_t>(o.slot)] +
               static_cast<std::uint64_t>(linear0) * o.addr_scale;
      c.step = o.lin_coeff;
      c.bytes = o.elem_bytes;
      c.step_bytes = o.lin_coeff * static_cast<std::int64_t>(o.addr_scale);
      break;
    }
  }
  return c;
}

template <typename Rec>
double stream_read(const StreamOperand& o, const StreamCursor& c,
                   std::int64_t i, Rec& rec) {
  if (o.kind == StreamOperand::Kind::kArray) {
    rec.load(c.addr, c.bytes);
    return *c.p;
  }
  if (o.kind == StreamOperand::Kind::kIter) return static_cast<double>(i);
  return c.value;
}

inline void stream_advance(const StreamOperand& o, StreamCursor& c) {
  if (o.kind == StreamOperand::Kind::kArray) {
    c.p += c.step;
    c.addr += static_cast<std::uint64_t>(c.step_bytes);
  }
}

}  // namespace detail

/// Replay iterations [lower, upper] of `sl` against `ctx`, reporting every
/// access and flop to `rec`. The per-element access stream (rhs loads left
/// to right, then the store) is byte-for-byte the one the generic op
/// sequence would produce. `Rec` is any type with the Recorder access
/// surface (load/store/flops) -- the live Recorder or a TraceRecorder.
template <typename Rec>
void run_stream_range(const StreamLoop& sl, std::int64_t lower,
                      std::int64_t upper, const StreamContext& ctx,
                      Rec& rec) {
  const std::int64_t trips = upper - lower + 1;
  if (trips <= 0) return;
  detail::StreamCursor lhs = detail::make_stream_cursor(sl.lhs, lower, ctx);
  detail::StreamCursor a = detail::make_stream_cursor(sl.a, lower, ctx);
  detail::StreamCursor b = detail::make_stream_cursor(sl.b, lower, ctx);

  std::uint64_t flops_per_iter = 0;
  if (sl.body == StreamLoop::Body::kReduce) {
    double acc = ctx.scalars[static_cast<std::size_t>(sl.lhs.slot)];
    for (std::int64_t i = lower; i <= upper; ++i) {
      const double x = detail::stream_read(sl.a, a, i, rec);
      acc = apply_stream_bin(sl.bin_op, acc, x);
      detail::stream_advance(sl.a, a);
    }
    ctx.scalars[static_cast<std::size_t>(sl.lhs.slot)] = acc;
    flops_per_iter = ir::kBinaryFlops;
  } else {
    for (std::int64_t i = lower; i <= upper; ++i) {
      double r;
      switch (sl.body) {
        case StreamLoop::Body::kCopy:
          r = detail::stream_read(sl.a, a, i, rec);
          break;
        case StreamLoop::Body::kBinary: {
          // Sequence the reads explicitly: the access stream is a then b
          // (as the generic op sequence pushes them), never left to the
          // unspecified argument evaluation order.
          const double x = detail::stream_read(sl.a, a, i, rec);
          const double y = detail::stream_read(sl.b, b, i, rec);
          r = apply_stream_bin(sl.bin_op, x, y);
          break;
        }
        case StreamLoop::Body::kCallF: {
          const double x = detail::stream_read(sl.a, a, i, rec);
          const double y = detail::stream_read(sl.b, b, i, rec);
          r = intrinsic_f(x, y);
          break;
        }
        default: {  // kCallG; kReduce handled above
          const double x = detail::stream_read(sl.a, a, i, rec);
          const double y = detail::stream_read(sl.b, b, i, rec);
          r = intrinsic_g(x, y);
          break;
        }
      }
      rec.store(lhs.addr, lhs.bytes);
      *lhs.p = r;
      detail::stream_advance(sl.lhs, lhs);
      detail::stream_advance(sl.a, a);
      detail::stream_advance(sl.b, b);
    }
    switch (sl.body) {
      case StreamLoop::Body::kBinary:
        flops_per_iter = ir::kBinaryFlops;
        break;
      case StreamLoop::Body::kCallF:
      case StreamLoop::Body::kCallG:
        flops_per_iter = static_cast<std::uint64_t>(sl.call_flops);
        break;
      default:
        break;
    }
  }
  if (flops_per_iter != 0)
    rec.flops(flops_per_iter * static_cast<std::uint64_t>(trips));
}

/// Strategy hook for kStreamLoop dispatch: the VM hands every fused loop
/// to its scheduler; the default runs the full range inline on the shared
/// recorder, the parallel scheduler (parallel.h) chunks it across a
/// thread pool and merges the traces deterministically.
class StreamScheduler {
 public:
  virtual ~StreamScheduler() = default;
  virtual void run(const StreamLoop& sl, const StreamContext& ctx,
                   Recorder& rec) = 0;
};

}  // namespace bwc::runtime
