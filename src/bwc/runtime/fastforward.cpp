#include "bwc/runtime/fastforward.h"

#include <numeric>

#include "bwc/support/error.h"

namespace bwc::runtime {

namespace {

// A loop must offer at least this many periods before the detector is
// worth arming: certification needs four (warm-up, two equal deltas, one
// state comparison) and anything close to that would skip next to nothing.
constexpr std::int64_t kMinPeriodsToAttempt = 8;
// The counter delta repeats long before the resident state becomes
// translation-stationary: a cold stream misses at a steady rate from the
// first line, but the state only settles once it has swept past every
// level's capacity (all sets full, evictions steady -- including stale
// lines of a *previous* phase draining out). The patience budget must
// therefore cover capacity / period-shift boundaries, plus slack;
// adversarial streams still degrade to plain replay once it is spent.
constexpr std::int64_t kStateRetrySlack = 64;
// Snapshotting and comparing the resident state is O(resident lines), far
// too expensive to pay at every boundary of a capacity-long drain. State
// checks back off exponentially while the counter delta stays stable
// (periods 1, 2, 4, ... apart, capped), so total state work is
// O(resident * log(drain)) and certification lands within a bounded
// factor of the true drain point.
constexpr std::int64_t kMaxStateCheckGap = 256;

std::int64_t period_budget(const memsim::MemoryHierarchy& h,
                           std::int64_t period_shift_bytes) {
  const auto mag = static_cast<std::uint64_t>(
      period_shift_bytes < 0 ? -period_shift_bytes : period_shift_bytes);
  return static_cast<std::int64_t>(2 * h.total_capacity_bytes() / mag) +
         kStateRetrySlack;
}

/// Periodic-fixpoint detector shared by the value-carrying serial driver
/// and the value-free access replay. Protocol: replay one period, flush
/// the recorder, call boundary(); true means the fixpoint is certified and
/// delta() is the exact per-period counter advance. exhausted() reports
/// that the retry budget is spent and the caller should stop probing.
class PeriodDetector {
 public:
  PeriodDetector(memsim::MemoryHierarchy* h, std::int64_t period_shift_bytes)
      : h_(h),
        shift_(period_shift_bytes),
        max_periods_(period_budget(*h, period_shift_bytes)) {
    h_->snapshot_counters(&prev_);
  }

  bool boundary() {
    h_->snapshot_counters(&cur_);
    memsim::MemoryHierarchy::subtract_counters(cur_, prev_, &delta_);
    std::swap(prev_, cur_);
    if (++periods_ > max_periods_) {
      exhausted_ = true;
      return false;
    }
    if (!have_last_ || !(delta_ == last_delta_)) {
      // Delta changed: new traffic regime, restart the state protocol.
      std::swap(last_delta_, delta_);
      have_last_ = true;
      have_snap_ = false;
      gap_ = 1;
      wait_ = 0;
      return false;
    }
    // Delta stable (last_delta_ is the candidate per-period advance).
    if (have_snap_) {
      if (h_->state_equals_shifted(snap_, shift_)) return true;
      have_snap_ = false;
      gap_ = std::min(2 * gap_, kMaxStateCheckGap);
      wait_ = gap_ - 1;
      return false;
    }
    if (wait_ > 0) {
      --wait_;
      return false;
    }
    h_->snapshot_state(&snap_);
    have_snap_ = true;
    return false;
  }

  bool exhausted() const { return exhausted_; }
  const memsim::MemoryHierarchy::Counters& delta() const {
    return last_delta_;
  }

 private:
  memsim::MemoryHierarchy* h_;
  std::int64_t shift_;
  std::int64_t max_periods_;
  memsim::MemoryHierarchy::Counters prev_, cur_, delta_, last_delta_;
  bool have_last_ = false;
  memsim::MemoryHierarchy::ResidentState snap_;
  bool have_snap_ = false;
  std::int64_t periods_ = 0;
  std::int64_t gap_ = 1;   // periods between state checks (backoff)
  std::int64_t wait_ = 0;  // periods left before the next snapshot
  bool exhausted_ = false;
};

/// Iterations per period: the smallest count after which the loop's
/// uniform step has advanced by a line multiple at every level at once.
std::int64_t period_iters(const StreamLoop& sl,
                          const memsim::MemoryHierarchy& h) {
  const std::uint64_t line = h.max_line_bytes();
  const std::uint64_t mag = static_cast<std::uint64_t>(
      sl.uniform_step_bytes < 0 ? -sl.uniform_step_bytes
                                : sl.uniform_step_bytes);
  return static_cast<std::int64_t>(line / std::gcd(mag, line));
}

/// Apply a certified fast-forward of `m` periods of `P` iterations:
/// advance the hierarchy analytically and bulk-count the skipped accesses
/// in the recorder. The per-period register bytes are exactly the
/// registers<->L1 boundary bytes of the delta.
void apply_fast_forward(const memsim::MemoryHierarchy::Counters& delta,
                        std::int64_t period_shift, std::int64_t P,
                        std::int64_t m, Recorder& rec) {
  const auto times = static_cast<std::uint64_t>(m);
  memsim::MemoryHierarchy* h = rec.hierarchy();
  h->apply_counters_scaled(delta, times);
  h->shift_state(period_shift * m);
  rec.count_fast_forward(delta.loads * times, delta.stores * times,
                         (delta.toward_cpu[0] + delta.from_cpu[0]) * times,
                         times * static_cast<std::uint64_t>(P));
}

// -- Specialized value kernels for fast-forwarded spans -------------------
//
// With Op a template constant the apply_stream_bin switch folds away and
// each instantiation is a bare unit-stride loop over raw doubles --
// vectorizable, unlike the generic run_stream_range interpreter whose
// per-iteration body dispatch costs as much as the simulation it skips.
// A null operand pointer means "hoisted invariant" (constant or scalar).

template <ir::BinOp Op, bool AArr, bool BArr>
void binary_span(double* l, const double* a, double av, const double* b,
                 double bv, std::int64_t n) {
  for (std::int64_t k = 0; k < n; ++k)
    l[k] = apply_stream_bin(Op, AArr ? a[k] : av, BArr ? b[k] : bv);
}

template <ir::BinOp Op>
void binary_span_dispatch(double* l, const double* a, double av,
                          const double* b, double bv, std::int64_t n) {
  if (a != nullptr && b != nullptr) {
    binary_span<Op, true, true>(l, a, av, b, bv, n);
  } else if (a != nullptr) {
    binary_span<Op, true, false>(l, a, av, b, bv, n);
  } else if (b != nullptr) {
    binary_span<Op, false, true>(l, a, av, b, bv, n);
  } else {
    binary_span<Op, false, false>(l, a, av, b, bv, n);
  }
}

/// Element pointer for iteration `lower` of an array operand, remapped to
/// the low end of the span when the shared stride is descending so every
/// kernel walks ascending (legal: the caller requires
/// stream_loop_parallel_safe, i.e. order-free iterations).
double* span_base(const StreamOperand& o, std::int64_t lower, std::int64_t n,
                  const StreamContext& ctx) {
  const std::int64_t linear0 = o.lin_base + o.lin_coeff * lower - 1;
  double* p = ctx.data[static_cast<std::size_t>(o.slot)] + linear0;
  return o.lin_coeff < 0 ? p - (n - 1) : p;
}

/// Hoisted invariant value of a non-array operand (loop writes only the
/// lhs array, so scalars are constant over the span).
double invariant_value(const StreamOperand& o, const StreamContext& ctx) {
  return o.kind == StreamOperand::Kind::kScalar
             ? ctx.scalars[static_cast<std::size_t>(o.slot)]
             : o.imm;
}

/// Try the tight kernels; false means the caller must use the generic
/// (order-preserving) interpreter path.
bool try_stream_values_fast(const StreamLoop& sl, std::int64_t lower,
                            std::int64_t upper, const StreamContext& ctx) {
  if (sl.body != StreamLoop::Body::kCopy &&
      sl.body != StreamLoop::Body::kBinary)
    return false;
  if (!stream_loop_parallel_safe(sl)) return false;
  const bool uses_b = sl.body == StreamLoop::Body::kBinary;
  for (const StreamOperand* o : {&sl.lhs, &sl.a, &sl.b}) {
    if (o == &sl.b && !uses_b) continue;
    if (o->kind == StreamOperand::Kind::kIter) return false;
    if (o->kind == StreamOperand::Kind::kArray &&
        o->lin_coeff != sl.lhs.lin_coeff)
      return false;
  }
  if (sl.lhs.lin_coeff != 1 && sl.lhs.lin_coeff != -1) return false;

  const std::int64_t n = upper - lower + 1;
  double* l = span_base(sl.lhs, lower, n, ctx);
  const double* a = sl.a.kind == StreamOperand::Kind::kArray
                        ? span_base(sl.a, lower, n, ctx)
                        : nullptr;
  const double av = a != nullptr ? 0.0 : invariant_value(sl.a, ctx);
  if (sl.body == StreamLoop::Body::kCopy) {
    if (a != nullptr) {
      for (std::int64_t k = 0; k < n; ++k) l[k] = a[k];
    } else {
      for (std::int64_t k = 0; k < n; ++k) l[k] = av;
    }
    return true;
  }
  const double* b = sl.b.kind == StreamOperand::Kind::kArray
                        ? span_base(sl.b, lower, n, ctx)
                        : nullptr;
  const double bv = b != nullptr ? 0.0 : invariant_value(sl.b, ctx);
  switch (sl.bin_op) {
    case ir::BinOp::kAdd:
      binary_span_dispatch<ir::BinOp::kAdd>(l, a, av, b, bv, n);
      return true;
    case ir::BinOp::kSub:
      binary_span_dispatch<ir::BinOp::kSub>(l, a, av, b, bv, n);
      return true;
    case ir::BinOp::kMul:
      binary_span_dispatch<ir::BinOp::kMul>(l, a, av, b, bv, n);
      return true;
    case ir::BinOp::kDiv:
      binary_span_dispatch<ir::BinOp::kDiv>(l, a, av, b, bv, n);
      return true;
    case ir::BinOp::kMin:
      binary_span_dispatch<ir::BinOp::kMin>(l, a, av, b, bv, n);
      return true;
    case ir::BinOp::kMax:
      binary_span_dispatch<ir::BinOp::kMax>(l, a, av, b, bv, n);
      return true;
  }
  return false;
}

/// The VM's own kernels behind the StreamRangeExec interface.
class DefaultRangeExec final : public StreamRangeExec {
 public:
  void range(const StreamLoop& sl, std::int64_t lower, std::int64_t upper,
             const StreamContext& ctx, Recorder& rec) override {
    run_stream_range(sl, lower, upper, ctx, rec);
  }
  void range_trace(const StreamLoop& sl, std::int64_t lower,
                   std::int64_t upper, const StreamContext& ctx,
                   TraceRecorder& trace) override {
    run_stream_range(sl, lower, upper, ctx, trace);
  }
  void values(const StreamLoop& sl, std::int64_t lower, std::int64_t upper,
              const StreamContext& ctx) override {
    run_stream_values(sl, lower, upper, ctx);
  }
};

}  // namespace

StreamRangeExec& default_range_exec() {
  static DefaultRangeExec exec;
  return exec;
}

void run_stream_values(const StreamLoop& sl, std::int64_t lower,
                       std::int64_t upper, const StreamContext& ctx) {
  if (upper < lower) return;
  if (try_stream_values_fast(sl, lower, upper, ctx)) return;
  NullRecorder null;
  run_stream_range(sl, lower, upper, ctx, null);
}

std::uint64_t stream_flops_per_iter(const StreamLoop& sl) {
  switch (sl.body) {
    case StreamLoop::Body::kBinary:
    case StreamLoop::Body::kReduce:
      return ir::kBinaryFlops;
    case StreamLoop::Body::kCallF:
    case StreamLoop::Body::kCallG:
      return static_cast<std::uint64_t>(sl.call_flops);
    case StreamLoop::Body::kCopy:
      return 0;
  }
  return 0;
}

bool stream_fast_forwardable(const StreamLoop& sl, const Recorder& rec) {
  return sl.uniform_step_bytes != 0 && rec.hierarchy() != nullptr &&
         rec.hierarchy()->translation_invariant();
}

void run_stream_serial(const StreamLoop& sl, std::int64_t lower,
                       std::int64_t upper, const StreamContext& ctx,
                       Recorder& rec, bool fast_forward) {
  run_stream_serial_with(sl, lower, upper, ctx, rec, fast_forward,
                         default_range_exec());
}

void run_stream_serial_with(const StreamLoop& sl, std::int64_t lower,
                            std::int64_t upper, const StreamContext& ctx,
                            Recorder& rec, bool fast_forward,
                            StreamRangeExec& exec) {
  const std::int64_t trips = upper - lower + 1;
  if (trips <= 0) return;
  if (!fast_forward || !stream_fast_forwardable(sl, rec)) {
    exec.range(sl, lower, upper, ctx, rec);
    return;
  }
  memsim::MemoryHierarchy* h = rec.hierarchy();
  const std::int64_t P = period_iters(sl, *h);
  if (trips < kMinPeriodsToAttempt * P) {
    exec.range(sl, lower, upper, ctx, rec);
    return;
  }
  const std::int64_t period_shift = sl.uniform_step_bytes * P;

  // Period deltas must not swallow a pending coalesced run from whatever
  // preceded the loop; from here on flushes land on period boundaries,
  // which is observable-exact by the run-splitting equivalence the
  // hierarchy guarantees (see hierarchy.h load_run/store_run).
  rec.flush();
  PeriodDetector detector(h, period_shift);

  std::int64_t i = lower;
  bool certified = false;
  while (i + P - 1 <= upper) {
    exec.range(sl, i, i + P - 1, ctx, rec);
    i += P;
    rec.flush();
    if (detector.boundary()) {
      certified = true;
      break;
    }
    if (detector.exhausted()) break;
  }

  if (certified) {
    const std::int64_t m = (upper - i + 1) / P;
    if (m > 0) {
      apply_fast_forward(detector.delta(), period_shift, P, m, rec);
      // The arithmetic of the skipped iterations still runs -- values must
      // be exact for downstream statements and the checksum -- but as a
      // bare vectorizable loop with no recorder.
      exec.values(sl, i, i + m * P - 1, ctx);
      const std::uint64_t fpi = stream_flops_per_iter(sl);
      if (fpi != 0)
        rec.flops(fpi * static_cast<std::uint64_t>(m * P));
      i += m * P;
    }
  }
  if (i <= upper) exec.range(sl, i, upper, ctx, rec);
}

void replay_stream_accesses(const StreamLoop& sl, std::int64_t lower,
                            std::int64_t upper, const std::uint64_t* bases,
                            Recorder& rec, bool fast_forward) {
  const std::int64_t trips = upper - lower + 1;
  if (trips <= 0) return;

  // The per-iteration access tuple in stream order: rhs loads a then b,
  // then the lhs store -- exactly as run_stream_range issues them.
  struct Cursor {
    std::uint64_t addr = 0;
    std::uint64_t bytes = 8;
    std::int64_t step = 0;
    bool is_store = false;
  };
  Cursor cursors[3];
  int n = 0;
  const auto add = [&](const StreamOperand& o, bool is_store) {
    if (o.kind != StreamOperand::Kind::kArray) return;
    const std::int64_t linear0 = o.lin_base + o.lin_coeff * lower - 1;
    Cursor& c = cursors[n++];
    c.addr = bases[static_cast<std::size_t>(o.slot)] +
             static_cast<std::uint64_t>(linear0) * o.addr_scale;
    c.bytes = o.elem_bytes;
    c.step = o.lin_coeff * static_cast<std::int64_t>(o.addr_scale);
    c.is_store = is_store;
  };
  add(sl.a, /*is_store=*/false);
  if (sl.body != StreamLoop::Body::kCopy &&
      sl.body != StreamLoop::Body::kReduce)
    add(sl.b, /*is_store=*/false);
  if (sl.lhs_is_array) add(sl.lhs, /*is_store=*/true);

  const auto emit = [&](std::int64_t count) {
    for (std::int64_t k = 0; k < count; ++k) {
      for (int s = 0; s < n; ++s) {
        Cursor& c = cursors[s];
        if (c.is_store) {
          rec.store(c.addr, c.bytes);
        } else {
          rec.load(c.addr, c.bytes);
        }
        c.addr += static_cast<std::uint64_t>(c.step);
      }
    }
  };

  if (!fast_forward || n == 0 || !stream_fast_forwardable(sl, rec)) {
    emit(trips);
    return;
  }
  memsim::MemoryHierarchy* h = rec.hierarchy();
  const std::int64_t P = period_iters(sl, *h);
  if (trips < kMinPeriodsToAttempt * P) {
    emit(trips);
    return;
  }
  const std::int64_t period_shift = sl.uniform_step_bytes * P;

  rec.flush();
  PeriodDetector detector(h, period_shift);

  std::int64_t i = lower;
  bool certified = false;
  while (i + P - 1 <= upper) {
    emit(P);
    i += P;
    rec.flush();
    if (detector.boundary()) {
      certified = true;
      break;
    }
    if (detector.exhausted()) break;
  }

  if (certified) {
    const std::int64_t m = (upper - i + 1) / P;
    if (m > 0) {
      apply_fast_forward(detector.delta(), period_shift, P, m, rec);
      // No flops here: in segment replay the workers already counted them.
      for (int s = 0; s < n; ++s)
        cursors[s].addr += static_cast<std::uint64_t>(cursors[s].step * m * P);
      i += m * P;
    }
  }
  emit(upper - i + 1);
}

}  // namespace bwc::runtime
