// Interpreter for the loop-program IR.
//
// Serves two purposes at once:
//  1. Semantics: computes the program's observable outputs (checksum over
//     declared outputs), which every compiler transformation must preserve.
//  2. Measurement: feeds the exact access stream into a memory-hierarchy
//     simulator and counts flops, yielding the ExecutionProfile that the
//     balance model consumes.
//
// Intrinsics f and g are fixed pure functions; input streams return
// deterministic values keyed by (stream, element index), so results are
// reproducible across runs and invariant under transformations that
// preserve which input elements feed which outputs.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "bwc/ir/program.h"
#include "bwc/machine/timing.h"
#include "bwc/memsim/hierarchy.h"

namespace bwc::runtime {

struct ExecOptions {
  /// Optional hierarchy; when null only semantics and flops are computed.
  memsim::MemoryHierarchy* hierarchy = nullptr;
  /// First byte address handed to the first array.
  std::uint64_t base_address = 1 << 20;
  /// Arrays are aligned to this boundary (bytes, power of two). Pages by
  /// default, like large-array allocation in real runtimes (and like the
  /// native workloads' AddressSpace), so physically-indexed cache models
  /// see realistic page-collision behaviour.
  std::uint64_t array_alignment = 4096;
  /// Compiled engine only (execute_compiled): batch stride-1 access runs
  /// into line-granular hierarchy accesses. Boundary traffic is preserved
  /// byte-for-byte (see recorder.h); disable to force per-element
  /// simulation. The reference interpreter ignores this flag.
  bool coalesce_accesses = true;
  /// Compiled engine only: worker threads for the parallel executor
  /// (parallel.h). With cores > 1, fused stream loops free of
  /// cross-iteration dependences are chunked across a thread pool, each
  /// chunk recording into a private trace that is merged into the shared
  /// hierarchy in chunk-index order -- results (checksums, scalars,
  /// counters, per-boundary traffic) are bit-identical to serial
  /// execution at any core count. The reference interpreter ignores this.
  int cores = 1;
  /// Minimum trip count before a stream loop is worth chunking; shorter
  /// loops run inline on the calling thread (results are identical either
  /// way -- this is purely a fork/join overhead knob).
  std::int64_t min_parallel_trips = 2;
  /// Compiled engine only: steady-state fast-forward for fused stream
  /// loops (runtime/fastforward.h). Once the hierarchy's periodic
  /// fixpoint is certified for a loop, the remaining full periods advance
  /// analytically instead of being simulated; checksums, counts and
  /// boundary traffic are bit-identical either way (held differentially
  /// by tests/fastforward_test.cpp). Automatically inert on hierarchies
  /// that are not translation-invariant (page-randomized machines) and on
  /// loops without a uniform access step. The reference interpreter
  /// ignores this flag.
  bool fast_forward = true;
};

struct ExecResult {
  /// Sum over output scalars plus all elements of output arrays.
  double checksum = 0.0;
  std::uint64_t flops = 0;
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  /// Valid when a hierarchy was provided; boundary traffic + flops.
  machine::ExecutionProfile profile;
  /// Final values of all scalars.
  std::map<std::string, double> scalars;
  /// Base address assigned to each array (by ArrayId).
  std::vector<std::uint64_t> array_bases;
  /// Steady-state fast-forward observability (compiled engine only):
  /// certified fast-forward events (one per loop, or per parallel chunk)
  /// and total loop iterations they skipped past simulation. Zero when
  /// fast-forward is off, refused, or never certified.
  std::uint64_t fast_forward_events = 0;
  std::uint64_t fast_forwarded_iterations = 0;
};

/// Execute the program. Throws bwc::Error on out-of-bounds subscripts,
/// references to undeclared names, or malformed IR.
ExecResult execute(const ir::Program& program, const ExecOptions& opts = {});

/// The interpreter's pure intrinsics (exposed for tests).
double intrinsic_f(double x, double y);
double intrinsic_g(double x, double y);

/// Key under which an array's *initial* contents are generated: element k of
/// array `name` starts as ir::input_value(initial_key(name), k).
int initial_key(const std::string& array_name);

}  // namespace bwc::runtime
