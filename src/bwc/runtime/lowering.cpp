#include "bwc/runtime/lowering.h"

#include <algorithm>
#include <utility>

#include "bwc/runtime/interpreter.h"
#include "bwc/support/error.h"

namespace bwc::runtime {

namespace {

using ir::Affine;
using ir::Expr;
using ir::ExprKind;
using ir::Program;
using ir::Stmt;
using ir::StmtKind;
using ir::StmtList;

class Lowerer {
 public:
  explicit Lowerer(const Program& program) : program_(program) {}

  LoweredProgram run() {
    for (int a = 0; a < program_.array_count(); ++a) {
      const auto& decl = program_.array(a);
      const ir::ArrayAddressing addressing =
          ir::resolve_addressing(program_, a);
      addressing_.push_back(addressing);
      LoweredArray la;
      la.name = decl.name;
      la.extents = decl.extents;
      la.elem_bytes = decl.elem_bytes;
      la.element_count = decl.element_count();
      la.initial_key = initial_key(decl.name);
      la.addr_scale = addressing.addr_scale;
      la.member_offset = addressing.member_offset;
      la.alloc_bytes = addressing.owns_allocation ? addressing.alloc_bytes : 0;
      la.alloc_owner = addressing.owns_allocation ? a : addressing.owner;
      out_.arrays.push_back(std::move(la));
    }
    out_.name = program_.name();
    out_.scalar_names = program_.scalars();
    for (const auto& name : program_.output_scalars())
      out_.output_scalar_slots.push_back(scalar_slot(name));
    for (ir::ArrayId a : program_.output_arrays())
      out_.output_arrays.push_back(a);

    lower_body(program_.top());
    emit(OpCode::kHalt);
    return std::move(out_);
  }

 private:
  // -- Slot resolution ------------------------------------------------------

  std::int32_t scalar_slot(const std::string& name) const {
    const auto& scalars = program_.scalars();
    const auto it = std::find(scalars.begin(), scalars.end(), name);
    BWC_CHECK(it != scalars.end(), "reference to undeclared scalar: " + name);
    return static_cast<std::int32_t>(it - scalars.begin());
  }

  std::int32_t loop_var_slot(const std::string& name) const {
    for (auto it = loop_scope_.rbegin(); it != loop_scope_.rend(); ++it) {
      if (it->first == name) return it->second;
    }
    throw Error("reference to unbound loop variable: " + name);
  }

  // -- Linear expressions and subscript dimensions --------------------------

  LinExpr lower_affine(const Affine& a) {
    LinExpr e;
    e.base = a.constant_term();
    e.first_term = static_cast<std::uint32_t>(out_.terms.size());
    for (const auto& [name, coeff] : a.terms()) {
      out_.terms.push_back({loop_var_slot(name), coeff});
      ++e.term_count;
    }
    return e;
  }

  /// Lower subscripts against explicit extents, baking in column-major
  /// strides. Shared by array references (array extents) and input reads
  /// (original stream extents). `layout_strides`, when non-null, supplies
  /// the per-logical-dimension slot strides of the array's declared
  /// layout; inputs (and default layouts) address exactly like storage.
  std::pair<std::uint32_t, std::uint32_t> lower_dims(
      const std::vector<Affine>& subs,
      const std::vector<std::int64_t>& extents, const std::string& what,
      const std::vector<std::int64_t>* layout_strides = nullptr) {
    BWC_CHECK(subs.size() == extents.size(),
              "subscript arity mismatch for " + what);
    BWC_CHECK(layout_strides == nullptr ||
                  layout_strides->size() == subs.size(),
              "layout stride arity mismatch for " + what);
    const auto first = static_cast<std::uint32_t>(out_.dims.size());
    std::int64_t stride = 1;
    for (std::size_t d = 0; d < subs.size(); ++d) {
      LoweredDim dim;
      dim.index = lower_affine(subs[d]);
      dim.extent = extents[d];
      dim.stride = stride;
      dim.layout_stride = layout_strides ? (*layout_strides)[d] : stride;
      out_.dims.push_back(dim);
      stride *= extents[d];
    }
    return {first, static_cast<std::uint32_t>(subs.size())};
  }

  // -- Bytecode emission ----------------------------------------------------

  /// Rewrite a just-emitted kLoadArray/kStoreArray into its specialized
  /// 1-D form when the subscript is `base + coeff * iter` -- the shape of
  /// virtually every access in a stride-1 kernel. The executor then reads
  /// the operands straight off the Op with no side-table indirection.
  void try_specialize_access(Op& op, OpCode specialized) {
    if (op.dim_count != 1) return;
    const LoweredDim& d = out_.dims[op.first_dim];
    if (d.index.term_count != 1) return;
    const LinTerm& t = out_.terms[d.index.first_term];
    op.code = specialized;
    op.lin_base = d.index.base;
    op.lin_coeff = t.coeff;
    op.iter = t.slot;
    op.extent = d.extent;
  }

  std::int32_t pc() const { return static_cast<std::int32_t>(out_.ops.size()); }

  Op& emit(OpCode code) {
    Op op;
    op.code = code;
    out_.ops.push_back(op);
    return out_.ops.back();
  }

  void push(std::size_t n = 1) {
    stack_depth_ += n;
    out_.max_stack = std::max(out_.max_stack, stack_depth_);
  }
  void pop(std::size_t n = 1) { stack_depth_ -= n; }

  void lower_expr(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kConst: {
        emit(OpCode::kPushConst).imm = e.value;
        push();
        return;
      }
      case ExprKind::kScalarRef: {
        emit(OpCode::kPushScalar).slot = scalar_slot(e.scalar);
        push();
        return;
      }
      case ExprKind::kLoopVar: {
        emit(OpCode::kPushLoopVar).slot = loop_var_slot(e.loop_var);
        push();
        return;
      }
      case ExprKind::kArrayRef: {
        const auto& decl = program_.array(e.array);
        const auto strides = decl.layout_strides();
        const auto [first, count] = lower_dims(e.subscripts, decl.extents,
                                               "array " + decl.name, &strides);
        Op& op = emit(OpCode::kLoadArray);
        op.slot = e.array;
        op.first_dim = first;
        op.dim_count = count;
        op.elem_bytes = decl.elem_bytes;
        op.addr_scale = addressing_[static_cast<std::size_t>(e.array)]
                            .addr_scale;
        try_specialize_access(op, OpCode::kLoadArray1);
        push();
        return;
      }
      case ExprKind::kBinary: {
        lower_expr(*e.operands[0]);
        lower_expr(*e.operands[1]);
        emit(OpCode::kBinary).bin_op = e.op;
        pop();  // two operands become one result
        return;
      }
      case ExprKind::kCall: {
        OpCode code;
        if (e.callee == "f") {
          code = OpCode::kCallF;
        } else if (e.callee == "g") {
          code = OpCode::kCallG;
        } else {
          throw Error("unknown intrinsic: " + e.callee);
        }
        BWC_CHECK(e.operands.size() == 2,
                  e.callee + "() takes two arguments");
        lower_expr(*e.operands[0]);
        lower_expr(*e.operands[1]);
        Op& op = emit(code);
        op.flops = e.call_flops;
        pop();
        return;
      }
      case ExprKind::kInput: {
        const auto [first, count] =
            lower_dims(e.subscripts, e.input_extents, "input stream");
        Op& op = emit(OpCode::kPushInput);
        op.input_key = e.input_key;
        op.first_dim = first;
        op.dim_count = count;
        push();
        return;
      }
    }
    throw Error("unknown expression kind");
  }

  void lower_stmt(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::kArrayAssign: {
        lower_expr(*s.rhs);
        const auto& decl = program_.array(s.lhs_array);
        const auto strides = decl.layout_strides();
        const auto [first, count] = lower_dims(
            s.lhs_subscripts, decl.extents, "array " + decl.name, &strides);
        Op& op = emit(OpCode::kStoreArray);
        op.slot = s.lhs_array;
        op.first_dim = first;
        op.dim_count = count;
        op.elem_bytes = decl.elem_bytes;
        op.addr_scale = addressing_[static_cast<std::size_t>(s.lhs_array)]
                            .addr_scale;
        try_specialize_access(op, OpCode::kStoreArray1);
        pop();
        return;
      }
      case StmtKind::kScalarAssign: {
        lower_expr(*s.rhs);
        // Match the interpreter's error wording for assignments.
        BWC_CHECK(program_.has_scalar(s.lhs_scalar),
                  "assignment to undeclared scalar: " + s.lhs_scalar);
        emit(OpCode::kStoreScalar).slot = scalar_slot(s.lhs_scalar);
        pop();
        return;
      }
      case StmtKind::kIf: {
        const LinExpr lhs = lower_affine(s.cmp_lhs);
        const LinExpr rhs = lower_affine(s.cmp_rhs);
        const std::int32_t branch_pc = pc();
        {
          Op& op = emit(OpCode::kBranch);
          op.cmp = s.cmp;
          op.lhs = static_cast<std::uint32_t>(out_.lin_exprs.size());
          out_.lin_exprs.push_back(lhs);
          op.rhs = static_cast<std::uint32_t>(out_.lin_exprs.size());
          out_.lin_exprs.push_back(rhs);
        }
        lower_body(s.then_body);
        if (s.else_body.empty()) {
          out_.ops[static_cast<std::size_t>(branch_pc)].target = pc();
        } else {
          const std::int32_t jump_pc = pc();
          emit(OpCode::kJump);
          out_.ops[static_cast<std::size_t>(branch_pc)].target = pc();
          lower_body(s.else_body);
          out_.ops[static_cast<std::size_t>(jump_pc)].target = pc();
        }
        return;
      }
      case StmtKind::kLoop: {
        if (try_lower_stream_loop(s)) return;
        const auto slot = static_cast<std::int32_t>(loop_scope_.size());
        out_.iter_slot_count = std::max(out_.iter_slot_count, slot + 1);
        const std::int32_t begin_pc = pc();
        {
          Op& op = emit(OpCode::kLoopBegin);
          op.slot = slot;
          op.lower = s.loop->lower;
          op.upper = s.loop->upper;
        }
        loop_scope_.emplace_back(s.loop->var, slot);
        lower_body(s.loop->body);
        loop_scope_.pop_back();
        {
          Op& op = emit(OpCode::kLoopEnd);
          op.slot = slot;
          op.lower = s.loop->lower;
          op.upper = s.loop->upper;
          op.target = begin_pc + 1;  // body start
        }
        out_.ops[static_cast<std::size_t>(begin_pc)].target = pc();
        return;
      }
    }
    throw Error("unknown statement kind");
  }

  void lower_body(const StmtList& body) {
    for (const auto& s : body) lower_stmt(*s);
  }

  // -- Fused stream loops ---------------------------------------------------
  //
  // An innermost loop whose single statement streams through 1-D arrays with
  // affine subscripts in the loop variable alone, and whose every access is
  // provably in bounds over the whole trip range, lowers to one kStreamLoop
  // op that the executor runs natively (see StreamLoop in lowering.h). Any
  // condition that fails -- nested bodies, 2-D arrays, subscripts involving
  // outer loop variables, statically out-of-range accesses (which must raise
  // the interpreter's exact error), input reads -- falls back to the generic
  // op sequence.

  /// Subscript as `base + coeff * var`; fails if any other variable appears.
  static bool stream_subscript(const Affine& a, const std::string& var,
                               std::int64_t* base, std::int64_t* coeff) {
    *base = a.constant_term();
    *coeff = 0;
    for (const auto& [name, c] : a.terms()) {
      if (name != var) return false;
      *coeff += c;
    }
    return true;
  }

  /// Match an array reference operand; requires statically provable bounds
  /// over i in [lower, upper] (affine index, so endpoints suffice).
  bool stream_array(ir::ArrayId array, const std::vector<Affine>& subs,
                    const std::string& var, std::int64_t lower,
                    std::int64_t upper, StreamOperand* out) const {
    if (subs.size() != 1) return false;
    const auto& decl = program_.array(array);
    if (decl.extents.size() != 1) return false;
    std::int64_t base = 0, coeff = 0;
    if (!stream_subscript(subs[0], var, &base, &coeff)) return false;
    if (lower <= upper) {
      const std::int64_t at_lower = base + coeff * lower;
      const std::int64_t at_upper = base + coeff * upper;
      if (std::min(at_lower, at_upper) < 1 ||
          std::max(at_lower, at_upper) > decl.extents[0])
        return false;
    }
    out->kind = StreamOperand::Kind::kArray;
    out->slot = array;
    out->lin_base = base;
    out->lin_coeff = coeff;
    out->elem_bytes = decl.elem_bytes;
    // 1-D layouts never permute and padding only grows the allocation, so
    // the slot offset equals the logical linear index; only the byte scale
    // (interleave pitch) differs from a packed array.
    out->addr_scale = addressing_[static_cast<std::size_t>(array)].addr_scale;
    return true;
  }

  bool stream_operand(const Expr& e, const std::string& var,
                      std::int64_t lower, std::int64_t upper,
                      StreamOperand* out) const {
    switch (e.kind) {
      case ExprKind::kConst:
        out->kind = StreamOperand::Kind::kConst;
        out->imm = e.value;
        return true;
      case ExprKind::kScalarRef: {
        if (!program_.has_scalar(e.scalar)) return false;
        out->kind = StreamOperand::Kind::kScalar;
        out->slot = scalar_slot(e.scalar);
        return true;
      }
      case ExprKind::kLoopVar:
        if (e.loop_var != var) return false;  // outer vars: generic path
        out->kind = StreamOperand::Kind::kIter;
        return true;
      case ExprKind::kArrayRef:
        return stream_array(e.array, e.subscripts, var, lower, upper, out);
      default:
        return false;
    }
  }

  bool try_lower_stream_loop(const Stmt& s) {
    const ir::Loop& loop = *s.loop;
    if (loop.body.size() != 1) return false;
    const Stmt& st = *loop.body[0];
    const std::string& var = loop.var;
    const std::int64_t lo = loop.lower, hi = loop.upper;

    if (st.kind != StmtKind::kArrayAssign &&
        st.kind != StmtKind::kScalarAssign)
      return false;  // nested loops / guards carry no rhs

    StreamLoop sl;
    sl.lower = lo;
    sl.upper = hi;
    const Expr& rhs = *st.rhs;

    if (st.kind == StmtKind::kArrayAssign) {
      sl.lhs_is_array = true;
      if (!stream_array(st.lhs_array, st.lhs_subscripts, var, lo, hi,
                        &sl.lhs))
        return false;
      if (rhs.kind == ExprKind::kBinary) {
        sl.body = StreamLoop::Body::kBinary;
        sl.bin_op = rhs.op;
        if (!stream_operand(*rhs.operands[0], var, lo, hi, &sl.a) ||
            !stream_operand(*rhs.operands[1], var, lo, hi, &sl.b))
          return false;
      } else if (rhs.kind == ExprKind::kCall &&
                 (rhs.callee == "f" || rhs.callee == "g") &&
                 rhs.operands.size() == 2) {
        sl.body = rhs.callee == "f" ? StreamLoop::Body::kCallF
                                    : StreamLoop::Body::kCallG;
        sl.call_flops = rhs.call_flops;
        if (!stream_operand(*rhs.operands[0], var, lo, hi, &sl.a) ||
            !stream_operand(*rhs.operands[1], var, lo, hi, &sl.b))
          return false;
      } else {
        sl.body = StreamLoop::Body::kCopy;
        if (!stream_operand(rhs, var, lo, hi, &sl.a)) return false;
      }
    } else if (st.kind == StmtKind::kScalarAssign) {
      // Running reduction: s = s <op> x, accumulator carried in a register.
      // The first operand must be the destination scalar itself so the FP
      // evaluation order (and therefore the checksum bits) is unchanged.
      if (!program_.has_scalar(st.lhs_scalar)) return false;
      if (rhs.kind != ExprKind::kBinary) return false;
      const Expr& acc = *rhs.operands[0];
      if (acc.kind != ExprKind::kScalarRef || acc.scalar != st.lhs_scalar)
        return false;
      sl.body = StreamLoop::Body::kReduce;
      sl.bin_op = rhs.op;
      sl.lhs_is_array = false;
      sl.lhs.kind = StreamOperand::Kind::kScalar;
      sl.lhs.slot = scalar_slot(st.lhs_scalar);
      if (!stream_operand(*rhs.operands[1], var, lo, hi, &sl.a)) return false;
      // The accumulator must not also feed the streamed operand's address
      // (impossible for these operand kinds) nor be read as a plain scalar.
      if (sl.a.kind == StreamOperand::Kind::kScalar &&
          sl.a.slot == sl.lhs.slot)
        return false;
    } else {
      return false;
    }

    sl.uniform_step_bytes = uniform_stream_step(sl);
    sl.parallel_safety = certify_stream_parallel(sl);

    Op& op = emit(OpCode::kStreamLoop);
    op.slot = static_cast<std::int32_t>(out_.stream_loops.size());
    out_.stream_loops.push_back(sl);
    return true;
  }

  /// Static parallel-safety certificate of a stream loop: feed every
  /// array access (bytes [base + coeff*i, base + coeff*i + elem) per
  /// iteration, keyed by array slot as the non-aliasing address space)
  /// to the symbolic prover. Reductions are order-carried by construction
  /// (the FP fold is not associative), so they are proven unsafe outright.
  static verify::Verdict certify_stream_parallel(const StreamLoop& sl) {
    if (sl.body == StreamLoop::Body::kReduce || !sl.lhs_is_array)
      return verify::Verdict::kDependent;
    std::vector<verify::LinearAccess> accesses;
    const bool uses_b = sl.body != StreamLoop::Body::kCopy;
    for (const StreamOperand* o : {&sl.lhs, &sl.a, &sl.b}) {
      if (o == &sl.b && !uses_b) continue;
      if (o->kind != StreamOperand::Kind::kArray) continue;
      verify::LinearAccess access;
      access.write = o == &sl.lhs;
      // Addresses advance at the layout's slot pitch; each access still
      // touches elem_bytes of payload at its slot.
      const std::int64_t scale = static_cast<std::int64_t>(o->addr_scale);
      access.base = o->lin_base * scale;
      access.coeff = o->lin_coeff * scale;
      access.elem_bytes = static_cast<std::int64_t>(o->elem_bytes);
      access.space = o->slot;
      accesses.push_back(access);
    }
    return verify::certify_parallel_accesses(accesses, sl.lower, sl.upper);
  }

  /// The constant byte shift every array access of `sl` undergoes per
  /// iteration, or 0 when the accesses do not translate uniformly.
  /// Reductions are excluded outright: their accumulator makes the body
  /// value-carried, and fast-forward only reasons about addresses.
  static std::int64_t uniform_stream_step(const StreamLoop& sl) {
    if (sl.body == StreamLoop::Body::kReduce || !sl.lhs_is_array) return 0;
    const std::int64_t step =
        sl.lhs.lin_coeff * static_cast<std::int64_t>(sl.lhs.addr_scale);
    if (step == 0) return 0;
    const bool uses_b = sl.body != StreamLoop::Body::kCopy;
    for (const StreamOperand* o : {&sl.a, &sl.b}) {
      if (o == &sl.b && !uses_b) continue;
      if (o->kind != StreamOperand::Kind::kArray) continue;
      if (o->lin_coeff * static_cast<std::int64_t>(o->addr_scale) != step)
        return 0;
    }
    return step;
  }

  const Program& program_;
  std::vector<ir::ArrayAddressing> addressing_;
  LoweredProgram out_;
  std::vector<std::pair<std::string, std::int32_t>> loop_scope_;
  std::size_t stack_depth_ = 0;
};

}  // namespace

LoweredProgram lower(const ir::Program& program) {
  return Lowerer(program).run();
}

}  // namespace bwc::runtime
