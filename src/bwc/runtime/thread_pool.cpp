#include "bwc/runtime/thread_pool.h"

#include <algorithm>

#include "bwc/support/error.h"

namespace bwc::runtime {

ThreadPool::ThreadPool(int threads) {
  BWC_CHECK(threads >= 1, "thread pool needs at least one worker");
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_cv_.wait(lock, [&] {
      return shutdown_ || (generation_ != seen_generation &&
                           next_index_ < batch_size_);
    });
    if (shutdown_) return;
    if (next_index_ >= batch_size_) {
      seen_generation = generation_;
      continue;
    }
    const std::size_t i = next_index_++;
    ++in_flight_;
    const auto* fn = fn_;
    lock.unlock();
    std::exception_ptr error;
    try {
      (*fn)(i);
    } catch (...) {
      error = std::current_exception();
    }
    lock.lock();
    if (error && !first_error_) first_error_ = error;
    --in_flight_;
    if (next_index_ >= batch_size_ && in_flight_ == 0) done_cv_.notify_all();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  std::unique_lock<std::mutex> lock(mutex_);
  BWC_CHECK(fn_ == nullptr, "parallel_for is not reentrant");
  fn_ = &fn;
  batch_size_ = n;
  next_index_ = 0;
  in_flight_ = 0;
  first_error_ = nullptr;
  ++generation_;
  work_cv_.notify_all();
  done_cv_.wait(lock, [&] { return next_index_ >= batch_size_ &&
                                   in_flight_ == 0; });
  fn_ = nullptr;
  batch_size_ = 0;
  if (first_error_) {
    std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

}  // namespace bwc::runtime
