// A small fixed-size worker pool for the parallel compiled engine.
//
// One pool lives for the duration of one parallel execution; every fused
// stream loop becomes one parallel_for batch (fork), and the caller's
// return from parallel_for is the join barrier that makes the workers'
// array writes visible to the main thread before trace merging begins.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bwc::runtime {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1). The pool itself never runs
  /// tasks on the calling thread; with `threads` == 1 it degenerates to a
  /// single worker, preserving the fork/join structure for testing.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Run fn(i) for every i in [0, n), distributed over the workers;
  /// blocks until all n calls have returned. The first exception thrown
  /// by any fn is rethrown here after the batch drains. Not reentrant.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  int thread_count() const { return static_cast<int>(workers_.size()); }

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_cv_;   // workers wait for a new batch
  std::condition_variable done_cv_;   // caller waits for batch completion
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::size_t batch_size_ = 0;
  std::size_t next_index_ = 0;    // next i to claim
  std::size_t in_flight_ = 0;     // claimed but not finished
  std::uint64_t generation_ = 0;  // bumped per batch so workers re-wake
  std::exception_ptr first_error_;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace bwc::runtime
