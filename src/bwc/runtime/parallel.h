// Parallel compiled execution: multicore replay of a lowered program.
//
// The parallel engine models a P-core machine running the compiled
// bytecode: the outer stream loops (the fused, dependence-free innermost
// loops that lowering produces) are chunked across a fixed pool of worker
// threads. Each worker executes its chunk against the shared array
// storage -- writes are provably disjoint, see
// stream_loop_parallelizable() -- while recording its access stream into
// a private TraceRecorder. After the join barrier the main thread merges
// the traces into the shared memory-hierarchy simulator in *chunk-index
// order* (never completion order), so the simulated access stream, every
// boundary byte counter and every floating-point result is bit-identical
// to the serial engine's; tests/parallel_runtime_test.cpp enforces this
// differentially at 1/2/4/8 cores.
//
// Loops the legality predicate rejects (scalar reductions, loop-carried
// subscript patterns) and all generic bytecode run serially on the
// calling thread, exactly as in the serial engine.
#pragma once

#include <memory>

#include "bwc/runtime/interpreter.h"
#include "bwc/runtime/lowering.h"
#include "bwc/runtime/stream_exec.h"

namespace bwc::runtime {

class StreamRangeExec;
class ThreadPool;

/// StreamScheduler that chunks parallelizable stream loops across a
/// thread pool. One instance (and its pool) serves a whole execution.
class ParallelScheduler : public StreamScheduler {
 public:
  /// `cores` worker threads; `min_parallel_trips` gates chunking (see
  /// ExecOptions). The options' hierarchy/coalesce settings determine
  /// whether worker traces buffer access runs at all. With `fast_forward`
  /// set, chunks of fast-forwardable loops run compute-only on the
  /// workers and the merge regenerates each chunk's access stream with
  /// the steady-state detector applied per chunk (runtime/fastforward.h);
  /// all other loops keep the trace-and-replay path.
  ParallelScheduler(int cores, bool record_runs, bool coalesce,
                    std::int64_t min_parallel_trips, bool fast_forward);
  ~ParallelScheduler() override;

  void run(const StreamLoop& sl, const StreamContext& ctx,
           Recorder& rec) override;

  /// Stream loops actually chunked so far (observability for tests).
  std::uint64_t parallel_loops() const { return parallel_loops_; }

  /// Substitute the range executor that runs chunks (and serial
  /// fallbacks). Null restores the VM's kernels (default_range_exec()).
  /// The native backend (runtime/codegen.h) plugs its dlopen'ed per-loop
  /// entry points in here; the executor must honor the StreamRangeExec
  /// exactness contract (fastforward.h) and be callable concurrently from
  /// the pool's workers.
  void set_range_exec(StreamRangeExec* exec) { exec_ = exec; }

 private:
  std::unique_ptr<ThreadPool> pool_;
  int cores_;
  bool record_runs_;
  bool coalesce_;
  std::int64_t min_parallel_trips_;
  bool fast_forward_;
  StreamRangeExec* exec_ = nullptr;
  std::uint64_t parallel_loops_ = 0;
};

/// Execute an already-lowered program with `opts.cores` worker threads.
/// Bit-identical to execute_lowered() at one core by construction; the
/// differential tests hold it bit-identical at every core count.
ExecResult execute_parallel(const LoweredProgram& lowered,
                            const ExecOptions& opts);

}  // namespace bwc::runtime
