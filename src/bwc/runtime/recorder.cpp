#include "bwc/runtime/recorder.h"

#include "bwc/runtime/fastforward.h"
#include "bwc/support/error.h"

namespace bwc::runtime {

machine::ExecutionProfile Recorder::profile() const {
  BWC_CHECK(hierarchy_ != nullptr,
            "profile() requires a memory hierarchy to have been attached");
  flush();
  return machine::ExecutionProfile::capture(*hierarchy_, flops_);
}

void Recorder::merge(const TraceRecorder& trace) {
  flush();
  flops_ += trace.flop_count();
  loads_ += trace.load_count();
  stores_ += trace.store_count();
  reg_bytes_ += trace.register_bytes();
  if (hierarchy_ == nullptr) return;
  if (trace.has_segment()) {
    // Compute-only chunk: the worker did the arithmetic; regenerate its
    // access stream here (in chunk order) with fast-forward enabled. The
    // replay issues through this recorder, so the chunk's load/store/
    // register totals accrue exactly as if the runs had been captured.
    replay_stream_accesses(*trace.segment_loop(), trace.segment_lower(),
                           trace.segment_upper(), trace.segment_bases(),
                           *this, /*fast_forward=*/true);
    return;
  }
  for (const AccessRun& run : trace.runs()) {
    if (run.is_store) {
      hierarchy_->store_run(run.addr, run.bytes, run.count, run.descending);
    } else {
      hierarchy_->load_run(run.addr, run.bytes, run.count, run.descending);
    }
  }
}

}  // namespace bwc::runtime
