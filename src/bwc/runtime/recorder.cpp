#include "bwc/runtime/recorder.h"

#include "bwc/support/error.h"

namespace bwc::runtime {

machine::ExecutionProfile Recorder::profile() const {
  BWC_CHECK(hierarchy_ != nullptr,
            "profile() requires a memory hierarchy to have been attached");
  flush();
  return machine::ExecutionProfile::capture(*hierarchy_, flops_);
}

}  // namespace bwc::runtime
