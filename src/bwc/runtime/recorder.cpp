#include "bwc/runtime/recorder.h"

#include "bwc/support/error.h"

namespace bwc::runtime {

machine::ExecutionProfile Recorder::profile() const {
  BWC_CHECK(hierarchy_ != nullptr,
            "profile() requires a memory hierarchy to have been attached");
  flush();
  return machine::ExecutionProfile::capture(*hierarchy_, flops_);
}

void Recorder::merge(const TraceRecorder& trace) {
  flush();
  flops_ += trace.flop_count();
  loads_ += trace.load_count();
  stores_ += trace.store_count();
  reg_bytes_ += trace.register_bytes();
  if (hierarchy_ == nullptr) return;
  for (const AccessRun& run : trace.runs()) {
    if (run.is_store) {
      hierarchy_->store_run(run.addr, run.bytes, run.count);
    } else {
      hierarchy_->load_run(run.addr, run.bytes, run.count);
    }
  }
}

}  // namespace bwc::runtime
