#include "bwc/runtime/interpreter.h"

#include <algorithm>
#include <functional>

#include "bwc/runtime/recorder.h"
#include "bwc/support/error.h"

namespace bwc::runtime {

double intrinsic_f(double x, double y) { return 0.6 * x + 0.4 * y; }
double intrinsic_g(double x, double y) { return 0.7 * x - 0.3 * y; }

int initial_key(const std::string& array_name) {
  const std::size_t h = std::hash<std::string>{}(array_name);
  // Keep clear of small user-chosen input keys.
  return static_cast<int>((h & 0x3fffffff) | 0x40000000);
}

namespace {

using ir::Affine;
using ir::ArrayId;
using ir::Expr;
using ir::ExprKind;
using ir::Program;
using ir::Stmt;
using ir::StmtKind;
using ir::StmtList;

/// Execution state: array storage, scalar values, loop-variable bindings.
class Machine {
 public:
  Machine(const Program& program, const ExecOptions& opts)
      : program_(program), recorder_(opts.hierarchy) {
    const std::uint64_t align = opts.array_alignment;
    BWC_CHECK(align > 0 && (align & (align - 1)) == 0,
              "array alignment must be a power of two");
    std::uint64_t next = opts.base_address;
    std::vector<std::uint64_t> alloc_base(
        static_cast<std::size_t>(program.array_count()), 0);
    for (int a = 0; a < program.array_count(); ++a) {
      const auto& decl = program.array(a);
      // The layout decides the simulated address range: padded allocation
      // sizes, and one shared allocation per interleave group (placed at
      // the owning -- lowest-id -- member's walk position). Storage stays
      // logical-dense; only addresses move.
      const ir::ArrayAddressing addressing = ir::resolve_addressing(program, a);
      if (addressing.owns_allocation) {
        next = (next + align - 1) / align * align;
        alloc_base[static_cast<std::size_t>(a)] = next;
        next += addressing.alloc_bytes;
      } else {
        alloc_base[static_cast<std::size_t>(a)] =
            alloc_base[static_cast<std::size_t>(addressing.owner)];
      }
      bases_.push_back(alloc_base[static_cast<std::size_t>(a)] +
                       addressing.member_offset);
      addr_scale_.push_back(addressing.addr_scale);
      layout_default_.push_back(decl.layout.order.empty() &&
                                decl.layout.pad.empty());
      layout_strides_.push_back(decl.layout_strides());
      // Deterministic nonzero initial contents keyed by the array's name.
      const int key = initial_key(decl.name);
      std::vector<double>& data = storage_.emplace_back();
      const std::int64_t n = decl.element_count();
      data.resize(static_cast<std::size_t>(n));
      for (std::int64_t k = 0; k < n; ++k)
        data[static_cast<std::size_t>(k)] = ir::input_value(key, k);
    }
    for (const auto& s : program.scalars()) scalars_[s] = 0.0;
  }

  void run() { run_body(program_.top()); }

  ExecResult result() const {
    ExecResult r;
    r.flops = recorder_.flop_count();
    r.loads = recorder_.load_count();
    r.stores = recorder_.store_count();
    if (recorder_.hierarchy() != nullptr) r.profile = recorder_.profile();
    r.scalars = scalars_;
    r.array_bases = bases_;
    double checksum = 0.0;
    for (const auto& name : program_.output_scalars())
      checksum += scalars_.at(name);
    for (ArrayId a : program_.output_arrays()) {
      for (double x : storage_[static_cast<std::size_t>(a)]) checksum += x;
    }
    r.checksum = checksum;
    return r;
  }

 private:
  std::int64_t eval_affine(const Affine& a) const {
    std::int64_t value = a.constant_term();
    for (const auto& [name, coeff] : a.terms()) {
      value += coeff * lookup_loop_var(name);
    }
    return value;
  }

  std::int64_t lookup_loop_var(const std::string& name) const {
    for (auto it = loop_env_.rbegin(); it != loop_env_.rend(); ++it) {
      if (it->first == name) return it->second;
    }
    throw Error("reference to unbound loop variable: " + name);
  }

  /// Evaluate subscripts to 1-based indices, then to (address, linear).
  /// `linear` is the logical storage index (layout-invariant); the address
  /// follows the declared layout. Reuses a scratch index buffer so
  /// steady-state replay does not pay a heap allocation per reference.
  std::pair<std::uint64_t, std::int64_t> locate(
      ArrayId array, const std::vector<Affine>& subs) const {
    const auto& decl = program_.array(array);
    std::vector<std::int64_t>& idx = idx_scratch_;
    idx.resize(subs.size());
    for (std::size_t d = 0; d < subs.size(); ++d) idx[d] = eval_affine(subs[d]);
    const std::int64_t linear = decl.linearize(idx);
    std::int64_t layout_offset = linear;
    if (!layout_default_[static_cast<std::size_t>(array)]) {
      const auto& strides = layout_strides_[static_cast<std::size_t>(array)];
      layout_offset = 0;
      for (std::size_t d = 0; d < idx.size(); ++d)
        layout_offset += (idx[d] - 1) * strides[d];
    }
    const std::uint64_t addr =
        bases_[static_cast<std::size_t>(array)] +
        static_cast<std::uint64_t>(layout_offset) *
            addr_scale_[static_cast<std::size_t>(array)];
    return {addr, linear};
  }

  double eval(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kConst:
        return e.value;
      case ExprKind::kScalarRef: {
        const auto it = scalars_.find(e.scalar);
        BWC_CHECK(it != scalars_.end(),
                  "reference to undeclared scalar: " + e.scalar);
        return it->second;
      }
      case ExprKind::kLoopVar:
        return static_cast<double>(lookup_loop_var(e.loop_var));
      case ExprKind::kArrayRef: {
        const auto [addr, linear] = locate(e.array, e.subscripts);
        recorder_.load(addr, program_.array(e.array).elem_bytes);
        return storage_[static_cast<std::size_t>(e.array)]
                       [static_cast<std::size_t>(linear)];
      }
      case ExprKind::kBinary: {
        const double a = eval(*e.operands[0]);
        const double b = eval(*e.operands[1]);
        recorder_.flops(ir::kBinaryFlops);
        switch (e.op) {
          case ir::BinOp::kAdd:
            return a + b;
          case ir::BinOp::kSub:
            return a - b;
          case ir::BinOp::kMul:
            return a * b;
          case ir::BinOp::kDiv:
            return a / b;
          case ir::BinOp::kMin:
            return std::min(a, b);
          case ir::BinOp::kMax:
            return std::max(a, b);
        }
        throw Error("unknown binary op");
      }
      case ExprKind::kCall: {
        recorder_.flops(static_cast<std::uint64_t>(e.call_flops));
        if (e.callee == "f") {
          BWC_CHECK(e.operands.size() == 2, "f() takes two arguments");
          const double a = eval(*e.operands[0]);
          const double b = eval(*e.operands[1]);
          return intrinsic_f(a, b);
        }
        if (e.callee == "g") {
          BWC_CHECK(e.operands.size() == 2, "g() takes two arguments");
          const double a = eval(*e.operands[0]);
          const double b = eval(*e.operands[1]);
          return intrinsic_g(a, b);
        }
        throw Error("unknown intrinsic: " + e.callee);
      }
      case ExprKind::kInput: {
        // Deterministic external value; arity-checked linearization against
        // the original stream extents.
        std::int64_t linear = 0;
        std::int64_t stride = 1;
        BWC_CHECK(e.subscripts.size() == e.input_extents.size(),
                  "input subscript arity mismatch");
        for (std::size_t d = 0; d < e.subscripts.size(); ++d) {
          const std::int64_t idx = eval_affine(e.subscripts[d]) - 1;
          BWC_CHECK(idx >= 0 && idx < e.input_extents[d],
                    "input subscript out of range");
          linear += idx * stride;
          stride *= e.input_extents[d];
        }
        return ir::input_value(e.input_key, linear);
      }
    }
    throw Error("unknown expression kind");
  }

  void run_stmt(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::kArrayAssign: {
        const double value = eval(*s.rhs);
        const auto [addr, linear] = locate(s.lhs_array, s.lhs_subscripts);
        recorder_.store(addr, program_.array(s.lhs_array).elem_bytes);
        storage_[static_cast<std::size_t>(s.lhs_array)]
                [static_cast<std::size_t>(linear)] = value;
        return;
      }
      case StmtKind::kScalarAssign: {
        const double value = eval(*s.rhs);
        const auto it = scalars_.find(s.lhs_scalar);
        BWC_CHECK(it != scalars_.end(),
                  "assignment to undeclared scalar: " + s.lhs_scalar);
        it->second = value;
        return;
      }
      case StmtKind::kIf: {
        const bool taken = ir::evaluate_cmp(s.cmp, eval_affine(s.cmp_lhs),
                                            eval_affine(s.cmp_rhs));
        run_body(taken ? s.then_body : s.else_body);
        return;
      }
      case StmtKind::kLoop: {
        loop_env_.emplace_back(s.loop->var, 0);
        for (std::int64_t i = s.loop->lower; i <= s.loop->upper; ++i) {
          loop_env_.back().second = i;
          run_body(s.loop->body);
        }
        loop_env_.pop_back();
        return;
      }
    }
    throw Error("unknown statement kind");
  }

  void run_body(const StmtList& body) {
    for (const auto& s : body) run_stmt(*s);
  }

  const Program& program_;
  Recorder recorder_;
  std::vector<std::uint64_t> bases_;
  std::vector<std::uint64_t> addr_scale_;
  std::vector<bool> layout_default_;
  std::vector<std::vector<std::int64_t>> layout_strides_;
  std::vector<std::vector<double>> storage_;
  std::map<std::string, double> scalars_;
  std::vector<std::pair<std::string, std::int64_t>> loop_env_;
  mutable std::vector<std::int64_t> idx_scratch_;
};

}  // namespace

ExecResult execute(const ir::Program& program, const ExecOptions& opts) {
  Machine m(program, opts);
  m.run();
  return m.result();
}

}  // namespace bwc::runtime
