// Native code generation backend: compile a lowered program to host
// machine code and run it, instead of interpreting bytecode.
//
// The backend walks the slot-resolved bytecode (runtime/lowering.h) and
// emits one self-contained C translation unit per workload: the generic
// op sequence becomes labeled straight-line C driven by gotos, and every
// fused stream loop becomes a pair of plain `for` loops over raw slot
// arrays -- one with the TraceRecorder/Recorder hooks compiled in as
// direct calls through the context struct (the instrumented access
// stream, byte-for-byte the VM's), one bare values-only kernel that the
// host C compiler can vectorize. The TU is compiled out of process with
// the host C compiler, dlopen'ed, and cached in a content-addressed
// on-disk cache keyed by a fingerprint of the generated source (which
// embeds the ABI version and compile flags), so the second execution of
// the same lowered program is a pure dlopen.
//
// The native engine composes with every existing tier: it plugs into the
// serial fast-forward protocol and the parallel scheduler as a
// StreamRangeExec (fastforward.h), so `--engine=native` still
// fast-forwards periodic loops and still chunks parallelizable loops
// across the thread pool -- with the dlopen'ed kernels doing the work.
// Observables are bit-identical to the VM by the StreamRangeExec
// contract; tests/codegen_test.cpp enforces this differentially across
// every bundled workload, core count, and coalesce/fast-forward setting.
//
// When no host C compiler is available (or compilation fails),
// execute_native() falls back to the bytecode VM and reports a
// structured warning -- callers never lose the result.
#pragma once

#include <memory>
#include <string>

#include "bwc/runtime/interpreter.h"
#include "bwc/runtime/lowering.h"

namespace bwc::runtime {

/// Options for the native backend's compile step.
struct NativeOptions {
  /// On-disk cache directory for generated .c/.so pairs. Empty selects
  /// default_codegen_cache_dir().
  std::string cache_dir;
  /// Host C compiler command. Empty resolves $BWC_CC, then $CC, then
  /// probes `cc`, `gcc`, `clang` on PATH. A non-empty value (or env
  /// override) is used as-is and is allowed to fail -- that is how the
  /// fallback path is tested.
  std::string compiler;
};

/// What the native engine actually did, for callers that surface it
/// (bwcopt prints the warning; tests assert on cache_hit/native).
struct NativeReport {
  bool native = false;     ///< false: fell back to the bytecode VM
  bool cache_hit = false;  ///< shared object reused, no compiler run
  std::string compiler;    ///< resolved compiler command ("" on cache hit)
  std::string object_path;  ///< cached .so actually dlopen'ed
  std::string warning;  ///< fallback reason, "native-codegen-fallback ..."
};

/// A compiled-and-loaded workload: owns the dlopen handle and the
/// resolved entry points. Reusable across any number of executions and
/// ExecOptions (state, recorder and hierarchy are per-execution); the
/// handle is dlclose'd on destruction.
class CompiledWorkload {
 public:
  struct Impl;

  ~CompiledWorkload();
  CompiledWorkload(CompiledWorkload&&) noexcept;
  CompiledWorkload& operator=(CompiledWorkload&&) noexcept;
  CompiledWorkload(const CompiledWorkload&) = delete;
  CompiledWorkload& operator=(const CompiledWorkload&) = delete;

  /// True when the cached shared object was reused without running the
  /// compiler (the cache hit verified the full cached source text, not
  /// just the fingerprint).
  bool from_cache() const;
  /// Compiler command that produced the object ("" on a cache hit).
  const std::string& compiler() const;
  /// Path of the dlopen'ed shared object inside the cache directory.
  const std::string& object_path() const;
  /// Content fingerprint of the generated source (cache key).
  const std::string& fingerprint() const;

  const Impl& impl() const { return *impl_; }

 private:
  friend CompiledWorkload compile_workload(const LoweredProgram&,
                                           const NativeOptions&);
  explicit CompiledWorkload(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

/// Emit the complete C translation unit for `lowered`. Deterministic:
/// the same lowered program always yields the same text, which is what
/// the content-addressed cache keys on. (codegen_emit.cpp)
std::string emit_c_source(const LoweredProgram& lowered);

/// Content fingerprint of a generated source text: 32 hex digits from
/// two lanes of splitmix64 chained over the bytes. Used as the cache
/// file stem; a hit still verifies the full source, so a collision can
/// only cost a recompile, never a wrong object.
std::string native_fingerprint(const std::string& source);

/// $BWC_CODEGEN_CACHE_DIR, or `.bwc-codegen-cache` under the current
/// working directory (so builds keep their scratch under the build
/// tree; the directory is created on demand and is gitignored).
std::string default_codegen_cache_dir();

/// True when a host C compiler can be resolved (explicit option, env
/// override, or PATH probe) and exists. Cheap; does not compile.
bool host_compiler_available(const NativeOptions& opts = {});

/// Emit, cache-lookup, (re)compile and dlopen `lowered`. Throws
/// bwc::Error with a bracketed reason prefix on any toolchain failure:
/// [compiler-unavailable], [compile-failed], [dlopen-failed],
/// [abi-mismatch]. Stale cache entries (fingerprint file exists but its
/// source no longer matches) are evicted and recompiled.
CompiledWorkload compile_workload(const LoweredProgram& lowered,
                                  const NativeOptions& opts = {});

/// Execute `lowered` through an already-compiled workload. Bit-identical
/// to execute_lowered() under the same options, including parallel
/// execution (opts.cores), access coalescing, steady-state fast-forward
/// and out-of-bounds errors. Throws exactly what the VM would.
ExecResult execute_lowered_native(const LoweredProgram& lowered,
                                  const ExecOptions& opts,
                                  const CompiledWorkload& workload);

/// Compile (or reuse from cache) and execute. On toolchain failure this
/// falls back to the bytecode VM, recording the reason in
/// `report->warning`; runtime errors (out of bounds) propagate and
/// never fall back. `report` may be null.
ExecResult execute_native(const LoweredProgram& lowered,
                          const ExecOptions& opts,
                          const NativeOptions& native_opts = {},
                          NativeReport* report = nullptr);

/// Lower then execute_native().
ExecResult execute_native(const ir::Program& program, const ExecOptions& opts,
                          const NativeOptions& native_opts = {},
                          NativeReport* report = nullptr);

namespace detail {
/// Flags the generated TU is compiled with; embedded in the emitted
/// source header so the fingerprint covers them.
inline constexpr char kNativeCFlags[] =
    "-O2 -fPIC -shared -ffp-contract=off -w";
/// Bumped whenever the emitted ABI (context struct, entry-point
/// signatures) changes; embedded in the source and checked after dlopen.
inline constexpr int kNativeAbiVersion = 1;
}  // namespace detail

}  // namespace bwc::runtime
