// Offline steady-state fast-forward for fused stream loops.
//
// A stream loop whose array accesses all advance by the same byte step per
// iteration (StreamLoop::uniform_step_bytes, computed by lowering) drives
// the memory hierarchy with a *periodic* access stream: after
// P = line_bytes / gcd(|step|, line_bytes) iterations the whole access
// tuple has shifted by exactly one cache-line multiple at every level.
// On a translation-invariant hierarchy (pure modulo set indexing -- see
// MemoryHierarchy::translation_invariant) the simulator therefore reaches
// a periodic fixpoint: identical per-period counter deltas and a resident
// state that equals its own translation by the period shift. Once that
// fixpoint is *certified* (delta repeated, state compared modulo the
// shift), the remaining m full periods need no simulation at all:
// counters advance by m * delta, the resident tags translate by
// m * shift, and only the arithmetic still runs -- as a tight native loop
// with a no-op recorder, which the compiler can vectorize.
//
// Every observable is bit-identical to full simulation by construction:
// the certified delta *is* what one more period does, induction extends
// it to m periods, and downstream code sees the exact translated cache
// contents. Loops that break the preconditions -- reductions, mixed
// strides, stride-0 destinations, page-randomized machines (Exemplar) --
// never enter the detector and replay in full.
//
// The warm-up passes of the native benchmark kernels use the *online*
// twin of this driver (memsim/fastforward.h), which infers the period
// from the raw access stream instead of reading lowering metadata.
#pragma once

#include <cstdint>

#include "bwc/runtime/recorder.h"
#include "bwc/runtime/stream_exec.h"

namespace bwc::runtime {

/// Recorder stand-in that discards accesses and flops: run_stream_range
/// instantiated with it compiles to the bare arithmetic loop, used for the
/// value-carrying pass over fast-forwarded iterations.
struct NullRecorder {
  void load(std::uint64_t, std::uint64_t) {}
  void store(std::uint64_t, std::uint64_t) {}
  void flops(std::uint64_t) {}
};

/// Flops one iteration of `sl` charges (the bulk charge run_stream_range
/// applies at the end of a range).
std::uint64_t stream_flops_per_iter(const StreamLoop& sl);

/// Execute only the *values* of iterations [lower, upper] of `sl` -- no
/// recorder, no flop accounting. The common shapes (copy / binary bodies
/// over unit-stride arrays and hoisted invariants, order-free by
/// stream_loop_parallelizable) run as tight specialized loops the
/// compiler vectorizes; everything else falls back to run_stream_range
/// over a NullRecorder, which preserves iteration order for dependent
/// loops. This is what makes fast-forwarded spans cheap: their simulation
/// cost is gone and their arithmetic runs at native speed.
void run_stream_values(const StreamLoop& sl, std::int64_t lower,
                       std::int64_t upper, const StreamContext& ctx);

/// True when `sl` against `rec`'s hierarchy satisfies the fast-forward
/// preconditions: a uniform per-iteration byte step and a
/// translation-invariant hierarchy. Necessary, not sufficient -- the
/// periodic fixpoint must still be certified at run time.
bool stream_fast_forwardable(const StreamLoop& sl, const Recorder& rec);

/// How a stream-loop driver executes sub-ranges of a fused loop. The
/// bytecode VM's drivers run them through run_stream_range /
/// run_stream_values (default_range_exec()); the native backend
/// (runtime/codegen.h) substitutes dlopen'ed per-loop kernels. Every
/// implementation must be observably identical to the default: same
/// values in the same order, same per-access stream into the recorder,
/// same bulk flop charge at the end of a range. That contract is what
/// lets the fast-forward protocol below and the parallel scheduler
/// (parallel.h) drive either engine without knowing which one runs.
class StreamRangeExec {
 public:
  virtual ~StreamRangeExec() = default;
  /// run_stream_range() semantics into a live Recorder.
  virtual void range(const StreamLoop& sl, std::int64_t lower,
                     std::int64_t upper, const StreamContext& ctx,
                     Recorder& rec) = 0;
  /// run_stream_range() semantics into a parallel worker's private trace.
  virtual void range_trace(const StreamLoop& sl, std::int64_t lower,
                           std::int64_t upper, const StreamContext& ctx,
                           TraceRecorder& trace) = 0;
  /// run_stream_values() semantics: values only, no accesses, no flops.
  virtual void values(const StreamLoop& sl, std::int64_t lower,
                      std::int64_t upper, const StreamContext& ctx) = 0;
};

/// The VM's executor: run_stream_range / run_stream_values. Stateless
/// shared instance.
StreamRangeExec& default_range_exec();

/// Run iterations [lower, upper] of `sl` on the calling thread, exactly
/// like run_stream_range(), but with steady-state fast-forward when
/// `fast_forward` is set and the preconditions hold: the loop replays
/// period by period until the hierarchy's periodic fixpoint is certified,
/// then skips the remaining full periods analytically (arithmetic still
/// runs, simulation does not) and replays the tail. Checksums, flop/load/
/// store counts and boundary traffic are bit-identical either way.
void run_stream_serial(const StreamLoop& sl, std::int64_t lower,
                       std::int64_t upper, const StreamContext& ctx,
                       Recorder& rec, bool fast_forward);

/// run_stream_serial() with an explicit range executor: the same
/// period-detection protocol (replay period by period, certify, skip,
/// tail) driving `exec`'s kernels instead of the VM's. run_stream_serial
/// is exactly this with default_range_exec().
void run_stream_serial_with(const StreamLoop& sl, std::int64_t lower,
                            std::int64_t upper, const StreamContext& ctx,
                            Recorder& rec, bool fast_forward,
                            StreamRangeExec& exec);

/// Replay only the *access stream* of iterations [lower, upper] of `sl`
/// into `rec` -- no values, no flops -- with the same fast-forward
/// protocol. The parallel engine uses this to merge compute-only worker
/// chunks: workers do the arithmetic, the merge replays each chunk's
/// addresses into the shared hierarchy in chunk order and fast-forwards
/// within each chunk. `bases` is the per-array simulated base table.
void replay_stream_accesses(const StreamLoop& sl, std::int64_t lower,
                            std::int64_t upper, const std::uint64_t* bases,
                            Recorder& rec, bool fast_forward);

}  // namespace bwc::runtime
