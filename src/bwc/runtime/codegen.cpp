// Host side of the native backend (runtime/codegen.h): fingerprinting,
// the content-addressed object cache, out-of-process compilation, dlopen
// plumbing, and the StreamRangeExec adapter that plugs the dlopen'ed
// kernels into the fast-forward protocol and the parallel scheduler.
#include "bwc/runtime/codegen.h"

#include <dlfcn.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <system_error>
#include <utility>
#include <vector>

#include "bwc/runtime/compiled.h"
#include "bwc/runtime/exec_state.h"
#include "bwc/runtime/fastforward.h"
#include "bwc/runtime/parallel.h"
#include "bwc/runtime/recorder.h"
#include "bwc/runtime/stream_exec.h"
#include "bwc/support/error.h"
#include "bwc/support/prng.h"

namespace fs = std::filesystem;

namespace bwc::runtime {

namespace {

// Mirror of the `bwc_native_ctx` struct the emitter writes into every
// generated TU (codegen_emit.cpp). Field order and types are the ABI;
// bump detail::kNativeAbiVersion when changing either side.
extern "C" {
struct BwcNativeCtx {
  double* const* data;
  const std::uint64_t* bases;
  double* scalars;
  void* sink;
  void (*rec_load)(void* sink, std::uint64_t addr, std::uint64_t bytes);
  void (*rec_store)(void* sink, std::uint64_t addr, std::uint64_t bytes);
  void (*rec_flops)(void* sink, std::uint64_t n);
  double (*input)(int key, long long linear);
  double (*call_f)(double x, double y);
  double (*call_g)(double x, double y);
  int (*stream)(void* host, int loop_id);
  void* host;
  int err_array;
  int err_dim;
  long long err_index;
};
}

using RunFn = int (*)(BwcNativeCtx*);
using RangeFn = void (*)(BwcNativeCtx*, long long, long long);

// -- Hook trampolines ------------------------------------------------------
// The generated code records through plain function pointers; these
// adapt them to the two recorder types. Which set a context carries
// decides where the access stream lands, so one compiled kernel serves
// the live recorder, parallel worker traces, and (hook-free) the bare
// values path.

void recorder_load(void* sink, std::uint64_t addr, std::uint64_t bytes) {
  static_cast<Recorder*>(sink)->load(addr, bytes);
}
void recorder_store(void* sink, std::uint64_t addr, std::uint64_t bytes) {
  static_cast<Recorder*>(sink)->store(addr, bytes);
}
void recorder_flops(void* sink, std::uint64_t n) {
  static_cast<Recorder*>(sink)->flops(n);
}
void trace_load(void* sink, std::uint64_t addr, std::uint64_t bytes) {
  static_cast<TraceRecorder*>(sink)->load(addr, bytes);
}
void trace_store(void* sink, std::uint64_t addr, std::uint64_t bytes) {
  static_cast<TraceRecorder*>(sink)->store(addr, bytes);
}
void trace_flops(void* sink, std::uint64_t n) {
  static_cast<TraceRecorder*>(sink)->flops(n);
}
double input_tramp(int key, long long linear) {
  return ir::input_value(key, linear);
}
double call_f_tramp(double x, double y) { return intrinsic_f(x, y); }
double call_g_tramp(double x, double y) { return intrinsic_g(x, y); }

// -- Small file/process helpers --------------------------------------------

std::string shell_quote(const std::string& s) {
  std::string r = "'";
  for (char c : s) {
    if (c == '\'') {
      r += "'\\''";
    } else {
      r += c;
    }
  }
  r += "'";
  return r;
}

std::string read_file_or_empty(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_file_atomic(const fs::path& path, const std::string& content) {
  const fs::path tmp =
      path.string() + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out << content;
    if (!out) {
      throw Error("[compile-failed] cannot write " + tmp.string());
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    throw Error("[compile-failed] cannot rename into " + path.string());
  }
}

bool command_exists(const std::string& name) {
  const std::string cmd =
      "command -v " + shell_quote(name) + " >/dev/null 2>&1";
  return std::system(cmd.c_str()) == 0;  // NOLINT(cert-env33-c)
}

/// Resolve the compiler command per the NativeOptions contract: an
/// explicit choice (option or env) is honored as-is -- even a broken one,
/// which is how the VM-fallback path is exercised -- otherwise the
/// standard names are probed on PATH.
std::string resolve_compiler(const NativeOptions& opts) {
  if (!opts.compiler.empty()) return opts.compiler;
  if (const char* e = std::getenv("BWC_CC"); e != nullptr && *e != '\0')
    return e;
  if (const char* e = std::getenv("CC"); e != nullptr && *e != '\0') return e;
  for (const char* cand : {"cc", "gcc", "clang"}) {
    if (command_exists(cand)) return cand;
  }
  throw Error(
      "[compiler-unavailable] no host C compiler found "
      "(tried $BWC_CC, $CC, cc, gcc, clang)");
}

/// Per-iteration access totals of one stream loop, for bulk accounting
/// when the values kernel runs without hooks. Mirrors run_stream_range:
/// a loads every iteration when it is an array; b only for bodies that
/// read it (never kCopy/kReduce); the store only for non-reduce bodies.
struct StreamIterCounts {
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t reg_bytes = 0;
};

StreamIterCounts stream_iter_counts(const StreamLoop& sl) {
  StreamIterCounts c;
  const bool reads_b = sl.body == StreamLoop::Body::kBinary ||
                       sl.body == StreamLoop::Body::kCallF ||
                       sl.body == StreamLoop::Body::kCallG;
  if (sl.a.kind == StreamOperand::Kind::kArray) {
    ++c.loads;
    c.reg_bytes += sl.a.elem_bytes;
  }
  if (reads_b && sl.b.kind == StreamOperand::Kind::kArray) {
    ++c.loads;
    c.reg_bytes += sl.b.elem_bytes;
  }
  if (sl.body != StreamLoop::Body::kReduce) {
    ++c.stores;
    c.reg_bytes += sl.lhs.elem_bytes;
  }
  return c;
}

}  // namespace

// -- CompiledWorkload -------------------------------------------------------

struct CompiledWorkload::Impl {
  void* handle = nullptr;
  RunFn run = nullptr;
  std::vector<RangeFn> range_fns;
  std::vector<RangeFn> values_fns;
  std::string object_path;
  std::string compiler;
  std::string fingerprint;
  bool from_cache = false;

  Impl() = default;
  Impl(const Impl&) = delete;
  Impl& operator=(const Impl&) = delete;
  ~Impl() {
    if (handle != nullptr) dlclose(handle);
  }
};

CompiledWorkload::CompiledWorkload(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}
CompiledWorkload::~CompiledWorkload() = default;
CompiledWorkload::CompiledWorkload(CompiledWorkload&&) noexcept = default;
CompiledWorkload& CompiledWorkload::operator=(CompiledWorkload&&) noexcept =
    default;

bool CompiledWorkload::from_cache() const { return impl_->from_cache; }
const std::string& CompiledWorkload::compiler() const {
  return impl_->compiler;
}
const std::string& CompiledWorkload::object_path() const {
  return impl_->object_path;
}
const std::string& CompiledWorkload::fingerprint() const {
  return impl_->fingerprint;
}

// -- Fingerprint / cache / compile ------------------------------------------

std::string native_fingerprint(const std::string& source) {
  std::uint64_t s0 = 0x243f6a8885a308d3ULL ^ source.size();
  std::uint64_t s1 = 0x13198a2e03707344ULL + source.size();
  std::uint64_t h0 = 0;
  std::uint64_t h1 = 0;
  for (unsigned char ch : source) {
    s0 ^= ch;
    h0 ^= splitmix64(s0);
    s1 ^= static_cast<std::uint64_t>(ch) << 8;
    h1 ^= splitmix64(s1);
  }
  char buf[33];
  std::snprintf(buf, sizeof buf, "%016llx%016llx",
                static_cast<unsigned long long>(h0),
                static_cast<unsigned long long>(h1));
  return buf;
}

std::string default_codegen_cache_dir() {
  if (const char* e = std::getenv("BWC_CODEGEN_CACHE_DIR");
      e != nullptr && *e != '\0')
    return e;
  return ".bwc-codegen-cache";
}

bool host_compiler_available(const NativeOptions& opts) {
  try {
    const std::string cc = resolve_compiler(opts);
    // An explicit/env compiler is used as-is by compile_workload, but
    // availability still means "exists": check the command word.
    return command_exists(cc.substr(0, cc.find(' ')));
  } catch (const Error&) {
    return false;
  }
}

CompiledWorkload compile_workload(const LoweredProgram& lowered,
                                  const NativeOptions& opts) {
  const std::string source = emit_c_source(lowered);
  const std::string fp = native_fingerprint(source);
  const fs::path dir =
      opts.cache_dir.empty() ? fs::path(default_codegen_cache_dir())
                             : fs::path(opts.cache_dir);
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    throw Error("[compile-failed] cannot create cache dir " + dir.string() +
                ": " + ec.message());
  }
  const fs::path c_path = dir / ("bwc_" + fp + ".c");
  const fs::path so_path = dir / ("bwc_" + fp + ".so");

  auto impl = std::make_unique<CompiledWorkload::Impl>();
  impl->fingerprint = fp;
  impl->object_path = so_path.string();

  // Cache hit means the object exists *and* its cached source is exactly
  // the text we just emitted -- the fingerprint only names the files, the
  // content check decides. Anything else (missing .c, tampered .c, hash
  // collision) evicts the pair and recompiles.
  const bool hit =
      fs::exists(so_path) && read_file_or_empty(c_path) == source;
  if (hit) {
    impl->from_cache = true;
  } else {
    fs::remove(so_path, ec);
    fs::remove(c_path, ec);
    const std::string compiler = resolve_compiler(opts);
    write_file_atomic(c_path, source);
    const fs::path so_tmp =
        so_path.string() + ".tmp." + std::to_string(::getpid());
    const fs::path log_path =
        so_path.string() + ".log." + std::to_string(::getpid());
    const std::string cmd = compiler + " " + detail::kNativeCFlags + " -o " +
                            shell_quote(so_tmp.string()) + " " +
                            shell_quote(c_path.string()) + " 2> " +
                            shell_quote(log_path.string());
    const int rc = std::system(cmd.c_str());  // NOLINT(cert-env33-c)
    std::string log = read_file_or_empty(log_path);
    fs::remove(log_path, ec);
    if (rc != 0) {
      fs::remove(so_tmp, ec);
      fs::remove(c_path, ec);
      if (log.size() > 500) log.resize(500);
      throw Error("[compile-failed] '" + compiler + "' exited with status " +
                  std::to_string(rc) + (log.empty() ? "" : ": " + log));
    }
    fs::rename(so_tmp, so_path, ec);
    if (ec) {
      fs::remove(so_tmp, ec);
      throw Error("[compile-failed] cannot move object into cache: " +
                  so_path.string());
    }
    impl->compiler = compiler;
  }

  void* handle = dlopen(fs::absolute(so_path).c_str(), RTLD_NOW | RTLD_LOCAL);
  if (handle == nullptr) {
    const char* err = dlerror();
    throw Error(std::string("[dlopen-failed] ") +
                (err != nullptr ? err : so_path.string()));
  }
  impl->handle = handle;

  const auto require = [&](const std::string& name) {
    void* sym = dlsym(handle, name.c_str());
    if (sym == nullptr) {
      throw Error("[dlopen-failed] missing symbol '" + name + "' in " +
                  so_path.string());
    }
    return sym;
  };
  const int* abi = static_cast<const int*>(require("bwc_abi_version"));
  if (*abi != detail::kNativeAbiVersion) {
    throw Error("[abi-mismatch] object reports abi " + std::to_string(*abi) +
                ", host expects " +
                std::to_string(detail::kNativeAbiVersion));
  }
  impl->run = reinterpret_cast<RunFn>(require("bwc_run"));
  impl->range_fns.reserve(lowered.stream_loops.size());
  impl->values_fns.reserve(lowered.stream_loops.size());
  for (std::size_t k = 0; k < lowered.stream_loops.size(); ++k) {
    impl->range_fns.push_back(reinterpret_cast<RangeFn>(
        require("bwc_stream_range_" + std::to_string(k))));
    impl->values_fns.push_back(reinterpret_cast<RangeFn>(
        require("bwc_stream_values_" + std::to_string(k))));
  }
  return CompiledWorkload(std::move(impl));
}

// -- Execution --------------------------------------------------------------

namespace {

BwcNativeCtx make_base_ctx(const StreamContext& ctx) {
  BwcNativeCtx c{};
  c.data = ctx.data;
  c.bases = ctx.bases;
  c.scalars = ctx.scalars;
  c.input = input_tramp;
  c.call_f = call_f_tramp;
  c.call_g = call_g_tramp;
  return c;
}

/// StreamRangeExec over the dlopen'ed kernels: the fast-forward protocol
/// and the parallel scheduler drive this exactly as they drive the VM's
/// run_stream_range/run_stream_values. Counter-only sinks (no hierarchy,
/// or a non-run-recording trace) take the fast path -- the bare values
/// kernel plus one bulk counter charge -- which is where the native
/// engine's throughput win on non-periodic loops comes from.
class NativeRangeExec final : public StreamRangeExec {
 public:
  NativeRangeExec(const LoweredProgram& lp, const CompiledWorkload::Impl& impl)
      : lp_(lp), impl_(impl) {}

  void range(const StreamLoop& sl, std::int64_t lower, std::int64_t upper,
             const StreamContext& ctx, Recorder& rec) override {
    const std::size_t k = loop_index(sl);
    if (rec.hierarchy() == nullptr) {
      run_values_counted(sl, k, lower, upper, ctx, rec);
      return;
    }
    BwcNativeCtx c = make_base_ctx(ctx);
    c.sink = &rec;
    c.rec_load = recorder_load;
    c.rec_store = recorder_store;
    c.rec_flops = recorder_flops;
    impl_.range_fns[k](&c, lower, upper);
  }

  void range_trace(const StreamLoop& sl, std::int64_t lower,
                   std::int64_t upper, const StreamContext& ctx,
                   TraceRecorder& trace) override {
    const std::size_t k = loop_index(sl);
    if (!trace.recording_runs()) {
      run_values_counted(sl, k, lower, upper, ctx, trace);
      return;
    }
    BwcNativeCtx c = make_base_ctx(ctx);
    c.sink = &trace;
    c.rec_load = trace_load;
    c.rec_store = trace_store;
    c.rec_flops = trace_flops;
    impl_.range_fns[k](&c, lower, upper);
  }

  void values(const StreamLoop& sl, std::int64_t lower, std::int64_t upper,
              const StreamContext& ctx) override {
    BwcNativeCtx c = make_base_ctx(ctx);
    impl_.values_fns[loop_index(sl)](&c, lower, upper);
  }

 private:
  std::size_t loop_index(const StreamLoop& sl) const {
    return static_cast<std::size_t>(&sl - lp_.stream_loops.data());
  }

  /// Bare values kernel plus bulk accounting: totals identical to the
  /// hooked kernel, with zero per-access work.
  template <typename Rec>
  void run_values_counted(const StreamLoop& sl, std::size_t k,
                          std::int64_t lower, std::int64_t upper,
                          const StreamContext& ctx, Rec& rec) {
    const std::int64_t trips = upper - lower + 1;
    if (trips <= 0) return;
    BwcNativeCtx c = make_base_ctx(ctx);
    impl_.values_fns[k](&c, lower, upper);
    const auto n = static_cast<std::uint64_t>(trips);
    const StreamIterCounts per = stream_iter_counts(sl);
    rec.count_accesses(per.loads * n, per.stores * n, per.reg_bytes * n);
    const std::uint64_t fpi = stream_flops_per_iter(sl);
    if (fpi != 0) rec.flops(fpi * n);
  }

  const LoweredProgram& lp_;
  const CompiledWorkload::Impl& impl_;
};

/// Everything the generated code's stream callback needs to dispatch a
/// fused loop back through the host engine tiers. C++ exceptions must
/// not unwind through the generated C frames, so the callback catches
/// everything, parks the exception here, and aborts bwc_run with a
/// nonzero status; the driver rethrows after bwc_run returns.
struct HostDriver {
  const LoweredProgram* lp = nullptr;
  ExecState* st = nullptr;
  Recorder* rec = nullptr;
  ParallelScheduler* sched = nullptr;
  NativeRangeExec* exec = nullptr;
  bool fast_forward = true;
  std::exception_ptr error;
};

int stream_callback(void* host, int loop_id) {
  auto* d = static_cast<HostDriver*>(host);
  try {
    const StreamLoop& sl =
        d->lp->stream_loops[static_cast<std::size_t>(loop_id)];
    const StreamContext ctx{d->st->data.data(), d->st->bases.data(),
                            d->st->scalars.data()};
    if (d->sched != nullptr) {
      d->sched->run(sl, ctx, *d->rec);
    } else {
      run_stream_serial_with(sl, sl.lower, sl.upper, ctx, *d->rec,
                             d->fast_forward, *d->exec);
    }
    return 0;
  } catch (...) {
    d->error = std::current_exception();
    return 2;
  }
}

}  // namespace

ExecResult execute_lowered_native(const LoweredProgram& lowered,
                                  const ExecOptions& opts,
                                  const CompiledWorkload& workload) {
  BWC_CHECK(opts.cores >= 1, "core count must be at least 1");
  ExecState st(lowered, opts);
  Recorder rec(opts.hierarchy, opts.coalesce_accesses);
  std::unique_ptr<ParallelScheduler> sched;
  if (opts.cores > 1) {
    sched = std::make_unique<ParallelScheduler>(
        opts.cores, /*record_runs=*/opts.hierarchy != nullptr,
        opts.coalesce_accesses, opts.min_parallel_trips, opts.fast_forward);
  }
  NativeRangeExec exec(lowered, workload.impl());
  if (sched != nullptr) sched->set_range_exec(&exec);

  HostDriver driver;
  driver.lp = &lowered;
  driver.st = &st;
  driver.rec = &rec;
  driver.sched = sched.get();
  driver.exec = &exec;
  driver.fast_forward = opts.fast_forward;

  BwcNativeCtx c{};
  c.data = st.data.data();
  c.bases = st.bases.data();
  c.scalars = st.scalars.data();
  c.sink = &rec;
  c.rec_load = recorder_load;
  c.rec_store = recorder_store;
  c.rec_flops = recorder_flops;
  c.input = input_tramp;
  c.call_f = call_f_tramp;
  c.call_g = call_g_tramp;
  c.stream = stream_callback;
  c.host = &driver;
  c.err_array = 0;

  const int rc = workload.impl().run(&c);
  if (rc == 2 && driver.error != nullptr)
    std::rethrow_exception(driver.error);
  if (rc != 0) {
    const std::string what =
        c.err_array < 0
            ? std::string("input stream")
            : lowered.arrays[static_cast<std::size_t>(c.err_array)].name;
    throw Error("index out of bounds for " + what + " dim " +
                std::to_string(c.err_dim) + ": " +
                std::to_string(c.err_index));
  }
  return st.result(rec);
}

ExecResult execute_native(const LoweredProgram& lowered,
                          const ExecOptions& opts,
                          const NativeOptions& native_opts,
                          NativeReport* report) {
  std::unique_ptr<CompiledWorkload> workload;
  try {
    workload =
        std::make_unique<CompiledWorkload>(compile_workload(lowered,
                                                            native_opts));
  } catch (const Error& e) {
    // Toolchain trouble degrades to the bytecode VM with a structured
    // warning; the caller still gets the exact result.
    if (report != nullptr) {
      *report = NativeReport{};
      report->warning = std::string("native-codegen-fallback ") + e.what();
    }
    return execute_lowered(lowered, opts);
  }
  if (report != nullptr) {
    *report = NativeReport{};
    report->native = true;
    report->cache_hit = workload->from_cache();
    report->compiler = workload->compiler();
    report->object_path = workload->object_path();
  }
  return execute_lowered_native(lowered, opts, *workload);
}

ExecResult execute_native(const ir::Program& program, const ExecOptions& opts,
                          const NativeOptions& native_opts,
                          NativeReport* report) {
  return execute_native(lower(program), opts, native_opts, report);
}

}  // namespace bwc::runtime
