// C source emission for the native backend (runtime/codegen.h).
//
// The generated translation unit is deliberately primitive C99: every
// bytecode op becomes a labeled statement (jumps are gotos), every fused
// stream loop becomes a pair of flat `for` loops, and every value that
// must match the VM bit-for-bit is either a hexfloat literal (%a round-
// trips doubles exactly) or comes back through a host function pointer
// (inputs, intrinsics), so the C and C++ sides can never disagree on a
// constant. The unit is compiled with -ffp-contract=off so the compiled
// arithmetic is the same mul-then-add sequence the VM executes.
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <set>
#include <string>

#include "bwc/ir/expr.h"
#include "bwc/ir/stmt.h"
#include "bwc/runtime/codegen.h"
#include "bwc/runtime/lowering.h"

namespace bwc::runtime {

namespace {

std::string lit_i64(std::int64_t v) {
  if (v == INT64_MIN) return "(-9223372036854775807LL - 1)";
  if (v < 0) return "(" + std::to_string(v) + "LL)";
  return std::to_string(v) + "LL";
}

std::string lit_u64(std::uint64_t v) { return std::to_string(v) + "ULL"; }

/// Hexfloat literal: exact round trip for every finite double.
std::string lit_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%a", v);
  if (std::signbit(v)) return std::string("(") + buf + ")";
  return buf;
}

/// C expression for a LinExpr over the iteration-slot locals `it<slot>`.
std::string lin_c(const LoweredProgram& lp, const LinExpr& e) {
  std::string s = "(" + lit_i64(e.base);
  const LinTerm* t = lp.terms.data() + e.first_term;
  for (std::uint32_t k = 0; k < e.term_count; ++k) {
    s += " + " + lit_i64(t[k].coeff) + " * it" + std::to_string(t[k].slot);
  }
  return s + ")";
}

/// `a <bin_op> b` with the VM's exact min/max selection (std::min(a,b)
/// is `b < a ? b : a`, std::max(a,b) is `a < b ? b : a` -- the NaN and
/// signed-zero behavior follows the comparison, so mirror it literally).
std::string bin_c(ir::BinOp op, const std::string& a, const std::string& b) {
  switch (op) {
    case ir::BinOp::kAdd: return "(" + a + " + " + b + ")";
    case ir::BinOp::kSub: return "(" + a + " - " + b + ")";
    case ir::BinOp::kMul: return "(" + a + " * " + b + ")";
    case ir::BinOp::kDiv: return "(" + a + " / " + b + ")";
    case ir::BinOp::kMin:
      return "((" + b + " < " + a + ") ? " + b + " : " + a + ")";
    case ir::BinOp::kMax:
      return "((" + a + " < " + b + ") ? " + b + " : " + a + ")";
  }
  return "0.0";
}

const char* cmp_c(ir::CmpOp op) {
  switch (op) {
    case ir::CmpOp::kEq: return "==";
    case ir::CmpOp::kNe: return "!=";
    case ir::CmpOp::kLt: return "<";
    case ir::CmpOp::kLe: return "<=";
    case ir::CmpOp::kGt: return ">";
    case ir::CmpOp::kGe: return ">=";
  }
  return "==";
}

/// Emit the multi-dimension locate-and-bounds-check block shared by
/// kPushInput/kLoadArray/kStoreArray. Leaves the 0-based linear element
/// index in `lin`; on violation records the (array, dim, index) triple in
/// the context and returns 1, which the host maps to the VM's exact
/// out-of-bounds error text. `err_array` is the array slot, or -1 for an
/// input stream.
/// Returns the name of the variable holding the 0-based *layout* slot
/// offset for addressing: `lin` itself under a default layout, else a
/// separately accumulated `lay` (layout strides differ from storage
/// strides only for permuted or padded multi-dimensional arrays).
std::string emit_locate(std::string& out, const LoweredProgram& lp,
                        const Op& op, int err_array) {
  const LoweredDim* dims = lp.dims.data() + op.first_dim;
  bool layout_differs = false;
  for (std::uint32_t d = 0; d < op.dim_count; ++d)
    if (dims[d].layout_stride != dims[d].stride) layout_differs = true;
  out += "    i64 lin = 0;\n";
  if (layout_differs) out += "    i64 lay = 0;\n";
  for (std::uint32_t d = 0; d < op.dim_count; ++d) {
    out += "    {\n";
    out += "      const i64 idx = " + lin_c(lp, dims[d].index) + ";\n";
    out += "      if (idx < 1 || idx > " + lit_i64(dims[d].extent) + ") {\n";
    out += "        ctx->err_array = " + std::to_string(err_array) + ";\n";
    out += "        ctx->err_dim = " + std::to_string(d) + ";\n";
    out += "        ctx->err_index = idx;\n";
    out += "        return 1;\n";
    out += "      }\n";
    out += "      lin += (idx - 1) * " + lit_i64(dims[d].stride) + ";\n";
    if (layout_differs) {
      out += "      lay += (idx - 1) * " + lit_i64(dims[d].layout_stride) +
             ";\n";
    }
    out += "    }\n";
  }
  return layout_differs ? "lay" : "lin";
}

std::string array_addr_c(const Op& op, const std::string& offset) {
  return "B" + std::to_string(op.slot) + " + (u64)" + offset + " * " +
         lit_u64(op.addr_scale);
}

/// Emit `int bwc_run(bwc_native_ctx*)`: the generic bytecode walked as
/// labeled C with the recorder hooks compiled in. Stream loops call back
/// into the host (ctx->stream), which drives the per-loop kernels below
/// through the scheduler / fast-forward protocol.
void emit_run(std::string& out, const LoweredProgram& lp) {
  out += "int bwc_run(bwc_native_ctx* ctx) {\n";
  out += "  double* const S = ctx->scalars;\n";
  for (std::size_t a = 0; a < lp.arrays.size(); ++a) {
    const std::string n = std::to_string(a);
    out += "  double* const A" + n + " = ctx->data[" + n + "];\n";
    out += "  const u64 B" + n + " = ctx->bases[" + n + "];\n";
  }
  for (std::int32_t s = 0; s < lp.iter_slot_count; ++s)
    out += "  i64 it" + std::to_string(s) + " = 0;\n";
  const std::size_t stack = lp.max_stack > 0 ? lp.max_stack : 1;
  out += "  double stk[" + std::to_string(stack) + "];\n";
  out += "  double* sp = stk;\n";

  for (std::size_t pc = 0; pc < lp.ops.size(); ++pc) {
    const Op& op = lp.ops[pc];
    out += "L" + std::to_string(pc) + ":;\n";
    const std::string it = "it" + std::to_string(op.slot);
    const std::string tgt = "L" + std::to_string(op.target);
    switch (op.code) {
      case OpCode::kPushConst:
        out += "  *sp++ = " + lit_double(op.imm) + ";\n";
        break;
      case OpCode::kPushScalar:
        out += "  *sp++ = S[" + std::to_string(op.slot) + "];\n";
        break;
      case OpCode::kPushLoopVar:
        out += "  *sp++ = (double)it" + std::to_string(op.slot) + ";\n";
        break;
      case OpCode::kPushInput:
        out += "  {\n";
        emit_locate(out, lp, op, /*err_array=*/-1);
        out += "    *sp++ = ctx->input(" + std::to_string(op.input_key) +
               ", lin);\n";
        out += "  }\n";
        break;
      case OpCode::kLoadArray: {
        out += "  {\n";
        const std::string off = emit_locate(out, lp, op, op.slot);
        out += "    ctx->rec_load(ctx->sink, " + array_addr_c(op, off) +
               ", " + lit_u64(op.elem_bytes) + ");\n";
        out += "    *sp++ = A" + std::to_string(op.slot) + "[lin];\n";
        out += "  }\n";
        break;
      }
      case OpCode::kStoreArray: {
        out += "  {\n";
        out += "    const double v = *--sp;\n";
        const std::string off = emit_locate(out, lp, op, op.slot);
        out += "    ctx->rec_store(ctx->sink, " + array_addr_c(op, off) +
               ", " + lit_u64(op.elem_bytes) + ");\n";
        out += "    A" + std::to_string(op.slot) + "[lin] = v;\n";
        out += "  }\n";
        break;
      }
      case OpCode::kLoadArray1:
      case OpCode::kStoreArray1: {
        const bool is_store = op.code == OpCode::kStoreArray1;
        out += "  {\n";
        if (is_store) out += "    const double v = *--sp;\n";
        out += "    const i64 idx = " + lit_i64(op.lin_base) + " + " +
               lit_i64(op.lin_coeff) + " * it" + std::to_string(op.iter) +
               ";\n";
        out += "    if (idx < 1 || idx > " + lit_i64(op.extent) + ") {\n";
        out += "      ctx->err_array = " + std::to_string(op.slot) + ";\n";
        out += "      ctx->err_dim = 0;\n";
        out += "      ctx->err_index = idx;\n";
        out += "      return 1;\n";
        out += "    }\n";
        out += "    const i64 lin = idx - 1;\n";
        if (is_store) {
          out += "    ctx->rec_store(ctx->sink, " + array_addr_c(op, "lin") +
                 ", " + lit_u64(op.elem_bytes) + ");\n";
          out += "    A" + std::to_string(op.slot) + "[lin] = v;\n";
        } else {
          out += "    ctx->rec_load(ctx->sink, " + array_addr_c(op, "lin") +
                 ", " + lit_u64(op.elem_bytes) + ");\n";
          out += "    *sp++ = A" + std::to_string(op.slot) + "[lin];\n";
        }
        out += "  }\n";
        break;
      }
      case OpCode::kBinary:
        out += "  {\n";
        out += "    const double b = *--sp;\n";
        out += "    const double a = *--sp;\n";
        out += "    ctx->rec_flops(ctx->sink, " +
               lit_u64(static_cast<std::uint64_t>(ir::kBinaryFlops)) + ");\n";
        out += "    *sp++ = " + bin_c(op.bin_op, "a", "b") + ";\n";
        out += "  }\n";
        break;
      case OpCode::kCallF:
      case OpCode::kCallG: {
        const char* fn = op.code == OpCode::kCallF ? "call_f" : "call_g";
        out += "  {\n";
        out += "    const double b = *--sp;\n";
        out += "    const double a = *--sp;\n";
        out += "    ctx->rec_flops(ctx->sink, " +
               lit_u64(static_cast<std::uint64_t>(op.flops)) + ");\n";
        out += std::string("    *sp++ = ctx->") + fn + "(a, b);\n";
        out += "  }\n";
        break;
      }
      case OpCode::kStoreScalar:
        out += "  S[" + std::to_string(op.slot) + "] = *--sp;\n";
        break;
      case OpCode::kBranch:
        out += "  if (!(" + lin_c(lp, lp.lin_exprs[op.lhs]) + " " +
               cmp_c(op.cmp) + " " + lin_c(lp, lp.lin_exprs[op.rhs]) +
               ")) goto " + tgt + ";\n";
        break;
      case OpCode::kJump:
        out += "  goto " + tgt + ";\n";
        break;
      case OpCode::kLoopBegin:
        out += "  if (" + lit_i64(op.lower) + " > " + lit_i64(op.upper) +
               ") goto " + tgt + ";\n";
        out += "  " + it + " = " + lit_i64(op.lower) + ";\n";
        break;
      case OpCode::kLoopEnd:
        out += "  if (++" + it + " <= " + lit_i64(op.upper) + ") goto " + tgt +
               ";\n";
        break;
      case OpCode::kStreamLoop:
        out += "  {\n";
        out += "    const int rc = ctx->stream(ctx->host, " +
               std::to_string(op.slot) + ");\n";
        out += "    if (rc != 0) return rc;\n";
        out += "  }\n";
        break;
      case OpCode::kHalt:
        out += "  return 0;\n";
        break;
    }
  }
  out += "  return 0;\n";
  out += "}\n";
}

bool is_array(const StreamOperand& o) {
  return o.kind == StreamOperand::Kind::kArray;
}

/// Does the body read operand b? (kCopy and kReduce read only a.)
bool body_reads_b(const StreamLoop& sl) {
  return sl.body == StreamLoop::Body::kBinary ||
         sl.body == StreamLoop::Body::kCallF ||
         sl.body == StreamLoop::Body::kCallG;
}

/// Emit the cursor setup for one stream operand, mirroring
/// make_stream_cursor (stream_exec.h): constants and scalars hoist to a
/// value local, arrays get a walking pointer (plus the simulated address
/// in hooked kernels), the iteration variable reads inline.
void emit_cursor(std::string& out, const StreamOperand& o, const char* name,
                 bool hooks) {
  const std::string n = name;
  switch (o.kind) {
    case StreamOperand::Kind::kConst:
      out += "  const double " + n + "_v = " + lit_double(o.imm) + ";\n";
      break;
    case StreamOperand::Kind::kScalar:
      out += "  const double " + n + "_v = S[" + std::to_string(o.slot) +
             "];\n";
      break;
    case StreamOperand::Kind::kIter:
      break;
    case StreamOperand::Kind::kArray: {
      const std::string slot = std::to_string(o.slot);
      out += "  const i64 " + n + "_lin0 = " + lit_i64(o.lin_base) + " + " +
             lit_i64(o.lin_coeff) + " * lower - 1;\n";
      out += "  double* " + n + "_p = A" + slot + " + " + n + "_lin0;\n";
      if (hooks) {
        out += "  u64 " + n + "_addr = B" + slot + " + (u64)" + n +
               "_lin0 * " + lit_u64(o.addr_scale) + ";\n";
      }
      break;
    }
  }
}

/// The read expression for an operand inside the loop body (after any
/// hook call has been emitted).
std::string cursor_read(const StreamOperand& o, const char* name) {
  switch (o.kind) {
    case StreamOperand::Kind::kConst:
    case StreamOperand::Kind::kScalar: return std::string(name) + "_v";
    case StreamOperand::Kind::kIter: return "(double)i";
    case StreamOperand::Kind::kArray: return std::string("*") + name + "_p";
  }
  return "0.0";
}

void emit_load_hook(std::string& out, const StreamOperand& o,
                    const char* name) {
  if (!is_array(o)) return;
  out += "    ctx->rec_load(ctx->sink, " + std::string(name) + "_addr, " +
         lit_u64(o.elem_bytes) + ");\n";
}

void emit_advance(std::string& out, const StreamOperand& o, const char* name,
                  bool hooks) {
  if (!is_array(o)) return;
  const std::string n = name;
  out += "    " + n + "_p += " + lit_i64(o.lin_coeff) + ";\n";
  if (hooks) {
    const std::int64_t step_bytes =
        o.lin_coeff * static_cast<std::int64_t>(o.addr_scale);
    out += "    " + n + "_addr += (u64)" + lit_i64(step_bytes) + ";\n";
  }
}

/// Emit one stream-loop kernel. `hooks` selects the instrumented variant
/// (per-access recorder calls in the VM's exact a, b, store order plus
/// the bulk flop charge at the end) versus the bare values kernel that
/// run_stream_values is replaced by. Both replay iterations [lower,
/// upper] only -- range semantics, so the fast-forward protocol and the
/// parallel chunker can drive them.
void emit_stream_kernel(std::string& out, const LoweredProgram& lp,
                        std::size_t k, bool hooks) {
  const StreamLoop& sl = lp.stream_loops[k];
  const char* fn = hooks ? "bwc_stream_range_" : "bwc_stream_values_";
  out += std::string("void ") + fn + std::to_string(k) +
         "(bwc_native_ctx* ctx, i64 lower, i64 upper) {\n";
  out += "  const i64 trips = upper - lower + 1;\n";
  out += "  if (trips <= 0) return;\n";

  // Hoist the touched slots.
  bool needs_scalars = sl.lhs.kind == StreamOperand::Kind::kScalar ||
                       sl.a.kind == StreamOperand::Kind::kScalar ||
                       sl.b.kind == StreamOperand::Kind::kScalar;
  if (needs_scalars) out += "  double* const S = ctx->scalars;\n";
  std::set<std::int32_t> slots;
  for (const StreamOperand* o : {&sl.lhs, &sl.a, &sl.b})
    if (is_array(*o)) slots.insert(o->slot);
  for (std::int32_t a : slots) {
    const std::string n = std::to_string(a);
    out += "  double* const A" + n + " = ctx->data[" + n + "];\n";
    if (hooks) out += "  const u64 B" + n + " = ctx->bases[" + n + "];\n";
  }

  std::uint64_t flops_per_iter = 0;
  if (sl.body == StreamLoop::Body::kReduce) {
    // `s = s <op> a`: accumulator carried in a register, scalar written
    // back once after the loop, load stream is a alone.
    emit_cursor(out, sl.a, "a", hooks);
    out += "  double acc = S[" + std::to_string(sl.lhs.slot) + "];\n";
    out += "  for (i64 i = lower; i <= upper; ++i) {\n";
    if (hooks) emit_load_hook(out, sl.a, "a");
    out += "    const double x = " + cursor_read(sl.a, "a") + ";\n";
    out += "    acc = " + bin_c(sl.bin_op, "acc", "x") + ";\n";
    emit_advance(out, sl.a, "a", hooks);
    out += "  }\n";
    out += "  S[" + std::to_string(sl.lhs.slot) + "] = acc;\n";
    flops_per_iter = static_cast<std::uint64_t>(ir::kBinaryFlops);
  } else {
    emit_cursor(out, sl.lhs, "l", hooks);
    emit_cursor(out, sl.a, "a", hooks);
    if (body_reads_b(sl)) emit_cursor(out, sl.b, "b", hooks);
    out += "  for (i64 i = lower; i <= upper; ++i) {\n";
    if (hooks) emit_load_hook(out, sl.a, "a");
    out += "    const double x = " + cursor_read(sl.a, "a") + ";\n";
    if (body_reads_b(sl)) {
      if (hooks) emit_load_hook(out, sl.b, "b");
      out += "    const double y = " + cursor_read(sl.b, "b") + ";\n";
    }
    std::string r;
    switch (sl.body) {
      case StreamLoop::Body::kCopy: r = "x"; break;
      case StreamLoop::Body::kBinary:
        r = bin_c(sl.bin_op, "x", "y");
        flops_per_iter = static_cast<std::uint64_t>(ir::kBinaryFlops);
        break;
      case StreamLoop::Body::kCallF:
        r = "ctx->call_f(x, y)";
        flops_per_iter = static_cast<std::uint64_t>(sl.call_flops);
        break;
      default:  // kCallG; kReduce handled above
        r = "ctx->call_g(x, y)";
        flops_per_iter = static_cast<std::uint64_t>(sl.call_flops);
        break;
    }
    out += "    const double r = " + r + ";\n";
    if (hooks) {
      out += "    ctx->rec_store(ctx->sink, l_addr, " +
             lit_u64(sl.lhs.elem_bytes) + ");\n";
    }
    out += "    *l_p = r;\n";
    emit_advance(out, sl.lhs, "l", hooks);
    emit_advance(out, sl.a, "a", hooks);
    if (body_reads_b(sl)) emit_advance(out, sl.b, "b", hooks);
    out += "  }\n";
  }
  if (hooks && flops_per_iter != 0) {
    out += "  ctx->rec_flops(ctx->sink, " + lit_u64(flops_per_iter) +
           " * (u64)trips);\n";
  }
  out += "}\n";
}

}  // namespace

std::string emit_c_source(const LoweredProgram& lowered) {
  std::string out;
  out.reserve(4096 + lowered.ops.size() * 128);
  out += "/* bwc native codegen\n";
  out += " * program: " + lowered.name + "\n";
  out += " * abi: " + std::to_string(detail::kNativeAbiVersion) + "\n";
  out += std::string(" * cflags: ") + detail::kNativeCFlags + "\n";
  out += " */\n";
  out += "typedef long long i64;\n";
  out += "typedef unsigned long long u64;\n";
  out += "\n";
  out += "typedef struct bwc_native_ctx {\n";
  out += "  double* const* data;\n";
  out += "  const u64* bases;\n";
  out += "  double* scalars;\n";
  out += "  void* sink;\n";
  out += "  void (*rec_load)(void* sink, u64 addr, u64 bytes);\n";
  out += "  void (*rec_store)(void* sink, u64 addr, u64 bytes);\n";
  out += "  void (*rec_flops)(void* sink, u64 n);\n";
  out += "  double (*input)(int key, i64 linear);\n";
  out += "  double (*call_f)(double x, double y);\n";
  out += "  double (*call_g)(double x, double y);\n";
  out += "  int (*stream)(void* host, int loop_id);\n";
  out += "  void* host;\n";
  out += "  int err_array;\n";
  out += "  int err_dim;\n";
  out += "  i64 err_index;\n";
  out += "} bwc_native_ctx;\n";
  out += "\n";
  out += "const int bwc_abi_version = " +
         std::to_string(detail::kNativeAbiVersion) + ";\n";
  out += "\n";
  for (std::size_t k = 0; k < lowered.stream_loops.size(); ++k) {
    emit_stream_kernel(out, lowered, k, /*hooks=*/true);
    out += "\n";
    emit_stream_kernel(out, lowered, k, /*hooks=*/false);
    out += "\n";
  }
  emit_run(out, lowered);
  return out;
}

}  // namespace bwc::runtime
