#include "bwc/runtime/compiled.h"

#include <algorithm>
#include <string>
#include <vector>

#include "bwc/runtime/exec_state.h"
#include "bwc/runtime/fastforward.h"
#include "bwc/runtime/parallel.h"
#include "bwc/runtime/recorder.h"
#include "bwc/runtime/stream_exec.h"
#include "bwc/support/error.h"

namespace bwc::runtime {

namespace {

/// Bytecode executor over the shared ExecState (exec_state.h), which
/// mirrors the reference interpreter's Machine exactly (same base-address
/// walk, same deterministic initial contents) so results are
/// bit-identical.
class Vm {
 public:
  Vm(const LoweredProgram& lp, const ExecOptions& opts,
     StreamScheduler* scheduler)
      : lp_(lp),
        st_(lp, opts),
        recorder_(opts.hierarchy, opts.coalesce_accesses),
        scheduler_(scheduler),
        fast_forward_(opts.fast_forward) {
    iters_.assign(static_cast<std::size_t>(lp.iter_slot_count), 0);
    stack_.assign(lp.max_stack, 0.0);
  }

  void run();

  ExecResult result() const { return st_.result(recorder_); }

 private:
  std::int64_t eval_lin(const LinExpr& e) const {
    std::int64_t v = e.base;
    const LinTerm* t = lp_.terms.data() + e.first_term;
    for (std::uint32_t k = 0; k < e.term_count; ++k)
      v += t[k].coeff * iters_[static_cast<std::size_t>(t[k].slot)];
    return v;
  }

  /// Evaluate and bounds-check an access's subscripts; returns the 0-based
  /// linear element index (column-major strides are baked into the dims).
  /// When `layout_offset` is non-null it also receives the 0-based slot
  /// offset under the array's declared layout (equal to `linear` for a
  /// default layout).
  std::int64_t locate(const Op& op, const char* what,
                      std::int64_t* layout_offset = nullptr) const {
    const LoweredDim* dims = lp_.dims.data() + op.first_dim;
    std::int64_t linear = 0;
    std::int64_t slot_offset = 0;
    for (std::uint32_t d = 0; d < op.dim_count; ++d) {
      const std::int64_t idx = eval_lin(dims[d].index);
      if (idx < 1 || idx > dims[d].extent) {
        throw Error(std::string("index out of bounds for ") + what + " dim " +
                    std::to_string(d) + ": " + std::to_string(idx));
      }
      linear += (idx - 1) * dims[d].stride;
      slot_offset += (idx - 1) * dims[d].layout_stride;
    }
    if (layout_offset != nullptr) *layout_offset = slot_offset;
    return linear;
  }

  // -- Fused stream loops ---------------------------------------------------
  // One kStreamLoop op replaces the whole innermost loop (see
  // stream_exec.h for the range executor shared with the parallel
  // engine). The per-element access stream is byte-for-byte the one the
  // generic op sequence would produce, so coalescing and the cache
  // simulation see no difference.

  void run_stream_loop(const StreamLoop& sl) {
    const StreamContext ctx{st_.data.data(), st_.bases.data(),
                            st_.scalars.data()};
    if (scheduler_ != nullptr) {
      scheduler_->run(sl, ctx, recorder_);
    } else {
      run_stream_serial(sl, sl.lower, sl.upper, ctx, recorder_,
                        fast_forward_);
    }
  }

  [[noreturn]] void out_of_bounds(const Op& op, std::int64_t idx) const {
    throw Error("index out of bounds for " +
                lp_.arrays[static_cast<std::size_t>(op.slot)].name +
                " dim 0: " + std::to_string(idx));
  }

  const LoweredProgram& lp_;
  ExecState st_;
  Recorder recorder_;
  StreamScheduler* scheduler_;
  bool fast_forward_;
  std::vector<std::int64_t> iters_;
  std::vector<double> stack_;
};

void Vm::run() {
  const Op* ops = lp_.ops.data();
  // Local copies of the container data pointers: after an opaque call
  // (Recorder methods) the compiler would otherwise reload them through
  // `this` on every use.
  double* const* data = st_.data.data();
  const std::uint64_t* bases = st_.bases.data();
  double* scalars = st_.scalars.data();
  std::int64_t* iters = iters_.data();
  double* sp = stack_.data();  // next free stack cell
  std::size_t pc = 0;
  for (;;) {
    const Op& op = ops[pc];
    switch (op.code) {
      case OpCode::kPushConst:
        *sp++ = op.imm;
        ++pc;
        break;
      case OpCode::kPushScalar:
        *sp++ = scalars[op.slot];
        ++pc;
        break;
      case OpCode::kPushLoopVar:
        *sp++ = static_cast<double>(iters[op.slot]);
        ++pc;
        break;
      case OpCode::kPushInput: {
        // Inputs linearize against the original stream extents with 0-based
        // offsets, exactly like the interpreter.
        const std::int64_t linear = locate(op, "input stream");
        *sp++ = ir::input_value(op.input_key, linear);
        ++pc;
        break;
      }
      case OpCode::kLoadArray: {
        const auto a = static_cast<std::size_t>(op.slot);
        std::int64_t slot_offset = 0;
        const std::int64_t linear =
            locate(op, lp_.arrays[a].name.c_str(), &slot_offset);
        recorder_.load(bases[a] + static_cast<std::uint64_t>(slot_offset) *
                                      op.addr_scale,
                       op.elem_bytes);
        *sp++ = data[a][linear];
        ++pc;
        break;
      }
      case OpCode::kLoadArray1: {
        // 1-D layout offsets equal the logical linear index (no permutation
        // or interior padding is possible), so only the pitch changes.
        const std::int64_t idx = op.lin_base + op.lin_coeff * iters[op.iter];
        if (idx < 1 || idx > op.extent) out_of_bounds(op, idx);
        const std::int64_t linear = idx - 1;
        recorder_.load(
            bases[op.slot] + static_cast<std::uint64_t>(linear) * op.addr_scale,
            op.elem_bytes);
        *sp++ = data[op.slot][linear];
        ++pc;
        break;
      }
      case OpCode::kStoreArray1: {
        const double value = *--sp;
        const std::int64_t idx = op.lin_base + op.lin_coeff * iters[op.iter];
        if (idx < 1 || idx > op.extent) out_of_bounds(op, idx);
        const std::int64_t linear = idx - 1;
        recorder_.store(
            bases[op.slot] + static_cast<std::uint64_t>(linear) * op.addr_scale,
            op.elem_bytes);
        data[op.slot][linear] = value;
        ++pc;
        break;
      }
      case OpCode::kBinary: {
        const double b = *--sp;
        const double a = *--sp;
        recorder_.flops(ir::kBinaryFlops);
        double r = 0.0;
        switch (op.bin_op) {
          case ir::BinOp::kAdd: r = a + b; break;
          case ir::BinOp::kSub: r = a - b; break;
          case ir::BinOp::kMul: r = a * b; break;
          case ir::BinOp::kDiv: r = a / b; break;
          case ir::BinOp::kMin: r = std::min(a, b); break;
          case ir::BinOp::kMax: r = std::max(a, b); break;
        }
        *sp++ = r;
        ++pc;
        break;
      }
      case OpCode::kCallF: {
        const double b = *--sp;
        const double a = *--sp;
        recorder_.flops(static_cast<std::uint64_t>(op.flops));
        *sp++ = intrinsic_f(a, b);
        ++pc;
        break;
      }
      case OpCode::kCallG: {
        const double b = *--sp;
        const double a = *--sp;
        recorder_.flops(static_cast<std::uint64_t>(op.flops));
        *sp++ = intrinsic_g(a, b);
        ++pc;
        break;
      }
      case OpCode::kStoreArray: {
        const double value = *--sp;
        const auto a = static_cast<std::size_t>(op.slot);
        std::int64_t slot_offset = 0;
        const std::int64_t linear =
            locate(op, lp_.arrays[a].name.c_str(), &slot_offset);
        recorder_.store(bases[a] + static_cast<std::uint64_t>(slot_offset) *
                                       op.addr_scale,
                        op.elem_bytes);
        data[a][linear] = value;
        ++pc;
        break;
      }
      case OpCode::kStoreScalar:
        scalars[op.slot] = *--sp;
        ++pc;
        break;
      case OpCode::kBranch: {
        const bool taken =
            ir::evaluate_cmp(op.cmp, eval_lin(lp_.lin_exprs[op.lhs]),
                             eval_lin(lp_.lin_exprs[op.rhs]));
        pc = taken ? pc + 1 : static_cast<std::size_t>(op.target);
        break;
      }
      case OpCode::kJump:
        pc = static_cast<std::size_t>(op.target);
        break;
      case OpCode::kLoopBegin:
        if (op.lower > op.upper) {
          pc = static_cast<std::size_t>(op.target);
        } else {
          iters[op.slot] = op.lower;
          ++pc;
        }
        break;
      case OpCode::kLoopEnd:
        if (++iters[op.slot] <= op.upper) {
          pc = static_cast<std::size_t>(op.target);
        } else {
          ++pc;
        }
        break;
      case OpCode::kStreamLoop:
        run_stream_loop(lp_.stream_loops[static_cast<std::size_t>(op.slot)]);
        ++pc;
        break;
      case OpCode::kHalt:
        return;
    }
  }
}

}  // namespace

ExecResult execute_lowered_with_scheduler(const LoweredProgram& lowered,
                                          const ExecOptions& opts,
                                          StreamScheduler* scheduler) {
  Vm vm(lowered, opts, scheduler);
  vm.run();
  return vm.result();
}

ExecResult execute_lowered(const LoweredProgram& lowered,
                           const ExecOptions& opts) {
  if (opts.cores > 1) return execute_parallel(lowered, opts);
  return execute_lowered_with_scheduler(lowered, opts, nullptr);
}

ExecResult execute_compiled(const ir::Program& program,
                            const ExecOptions& opts) {
  return execute_lowered(lower(program), opts);
}

}  // namespace bwc::runtime
