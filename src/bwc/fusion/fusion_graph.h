// The fusion graph (paper Section 3.1.1 / Problem 3.2).
//
// Nodes are the top-level loops of a program. Three kinds of relations:
//   - hyper-edges: one per array, connecting every loop that accesses it
//     ("the traditional definition of an edge is inadequate for modeling
//     data sharing because the same data can be shared by more than two
//     loops");
//   - directed dependence edges (producer loop -> consumer loop);
//   - undirected fusion-preventing constraints.
//
// The bandwidth cost of a partitioning is the sum over partitions of the
// number of distinct arrays accessed inside -- equivalently the total
// "length" of all hyper-edges (number of partitions each spans). Minimizing
// it minimizes total memory transfer, assuming arrays too large for cache
// reuse across disjoint loops.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bwc/analysis/access_summary.h"
#include "bwc/analysis/dependence.h"
#include "bwc/graph/digraph.h"
#include "bwc/graph/hypergraph.h"
#include "bwc/ir/program.h"

namespace bwc::fusion {

struct FusionGraph {
  /// node i corresponds to Program::top()[loop_tops[i]].
  std::vector<int> loop_tops;
  std::vector<analysis::LoopSummary> summaries;

  /// Data sharing: nodes = loops, one hyper-edge per accessed array with
  /// unit weight; edge_arrays maps hyper-edge index -> ArrayId.
  graph::Hypergraph sharing;
  std::vector<ir::ArrayId> edge_arrays;
  /// Parallel hyper-graph whose edge weights are array byte sizes, for
  /// transfer-volume (rather than array-count) costs.
  graph::Hypergraph sharing_bytes;

  /// Dependence edges between loop nodes (producer -> consumer).
  graph::Digraph deps;
  /// Fusion-preventing pairs (i < j), undirected.
  std::vector<std::pair<int, int>> preventing;
  /// Pairwise analysis for i < j: pair_info[i][j - i - 1].
  std::vector<std::vector<analysis::PairAnalysis>> pair_info;

  int node_count() const { return static_cast<int>(loop_tops.size()); }
  const analysis::PairAnalysis& pair(int i, int j) const;
  bool is_preventing(int i, int j) const;
};

struct FusionGraphOptions {
  /// Fusion with alignment: a pair whose only obstacle is a bounded
  /// forward dependence distance (consumer reads a[i+s]) is marked
  /// kShifted instead of fusion-preventing; the code generator delays the
  /// consumer by s iterations. Off by default (matches the paper).
  bool allow_shifted_fusion = false;
  std::int64_t max_shift = 8;
};

/// Build the fusion graph of a program's top-level loops. When
/// `statement_summaries` is given it must hold one summarize_statement
/// result per top-level statement of `program` (pass::AnalysisManager
/// provides exactly that); the builder then reuses them instead of
/// re-deriving every access summary from the IR.
FusionGraph build_fusion_graph(
    const ir::Program& program, const FusionGraphOptions& options = {},
    const std::vector<analysis::LoopSummary>* statement_summaries = nullptr);

/// A partitioning of the fusion graph: assignment[node] = partition id,
/// with partition ids 0..num_partitions-1 forming a valid execution order.
struct FusionPlan {
  std::vector<int> assignment;
  int num_partitions = 0;
  /// Bandwidth cost: total hyper-edge length = sum over partitions of the
  /// number of distinct arrays accessed inside (the paper's objective).
  std::int64_t cost = 0;
  /// Same objective weighted by array byte sizes (total bytes loaded).
  std::int64_t bytes_cost = 0;
  /// Which solver produced the plan, for reporting.
  std::string solver;

  /// Nodes of each partition in node order.
  std::vector<std::vector<int>> groups() const;
};

/// Is this assignment legal: no fusion-preventing pair co-partitioned, and
/// the partition-contracted dependence graph is acyclic with partition ids
/// increasing along every dependence edge. Optionally reports the reason.
bool plan_is_valid(const FusionGraph& graph, const std::vector<int>& assignment,
                   std::string* why = nullptr);

/// Renumber partition ids into a valid execution order (topological order
/// of the contracted dependence graph, ties broken by first node). Throws
/// when the contracted graph is cyclic.
std::vector<int> normalize_order(const FusionGraph& graph,
                                 const std::vector<int>& assignment);

/// Complete a plan from a raw assignment: normalizes order, computes costs.
FusionPlan finish_plan(const FusionGraph& graph, std::vector<int> assignment,
                       std::string solver);

}  // namespace bwc::fusion
