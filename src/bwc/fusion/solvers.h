// Solvers for the bandwidth-minimal fusion problem.
//
// The paper gives (a) a polynomial exact algorithm for the restricted
// two-partitioning form -- one fusion-preventing edge, solved by a minimal
// cut on the data-sharing hyper-graph with dependences enforced by heavy
// hyper-edges -- and (b) an NP-completeness proof for the general
// multi-partition form, which therefore gets exact enumeration for small
// graphs and heuristics (greedy, recursive bisection) beyond. The prior
// edge-weighted formulation of Gao et al. / Kennedy & McKinley is included
// as the comparison baseline; the paper's Figure 4 shows it is *not*
// bandwidth-optimal (8 arrays loaded vs 7).
#pragma once

#include <optional>
#include <string>

#include "bwc/fusion/fusion_graph.h"
#include "bwc/support/error.h"

namespace bwc::fusion {

/// Thrown when an exact solver is asked for a graph beyond its capacity
/// (set-partition enumeration is Bell-number sized; the general problem is
/// NP-complete). Carries the offending loop count, the solver's limit and
/// the heuristic to use instead, so callers can degrade deliberately
/// rather than parse a message.
class FusionCapacityError : public Error {
 public:
  FusionCapacityError(const std::string& solver, int loop_count,
                      int max_nodes);

  const std::string& solver() const { return solver_; }
  int loop_count() const { return loop_count_; }
  int max_nodes() const { return max_nodes_; }
  /// Name of the recommended fallback ("bisection"; best_fusion applies
  /// it automatically).
  const std::string& suggested_solver() const { return suggested_; }

 private:
  std::string solver_;
  int loop_count_;
  int max_nodes_;
  std::string suggested_ = "bisection";
};

/// Every loop in its own partition (cost = sum over loops of arrays
/// accessed; 20 for the paper's Figure 4 example).
FusionPlan no_fusion(const FusionGraph& graph);

/// The paper's polynomial algorithm for the restricted two-partitioning
/// form. Applicable when the graph has exactly one fusion-preventing pair;
/// returns nullopt otherwise. Dependences are enforced by adding, for each
/// dependence edge (u, v), three hyper-edges {s,u}, {u,v}, {v,t} of weight
/// larger than the total array weight, so that any cut placing v's
/// partition before u's cannot be minimal.
std::optional<FusionPlan> exact_two_partition(const FusionGraph& graph);

/// Exact multi-partitioning by enumeration of set partitions with
/// validity pruning. Throws bwc::Error when node count exceeds `max_nodes`
/// (the problem is NP-complete; enumeration is Bell-number sized).
FusionPlan exact_enumeration(const FusionGraph& graph, int max_nodes = 12);

/// Exact multi-partitioning under the byte-weighted objective (total bytes
/// loaded, i.e. hyper-edge lengths weighted by array sizes). With equal
/// array sizes this coincides with exact_enumeration; with mixed sizes it
/// can prefer splitting small arrays to keep one big array resident.
FusionPlan exact_enumeration_weighted(const FusionGraph& graph,
                                      int max_nodes = 12);

/// Greedy: place each loop (in program order) into the legal partition
/// that minimizes the increase in distinct-array count, else start a new
/// partition.
FusionPlan greedy_fusion(const FusionGraph& graph);

/// Recursive bisection: repeatedly split any group containing a
/// fusion-preventing pair with the hyper-graph minimal cut. This is the
/// heuristic the paper suggests for the NP-complete general case.
FusionPlan recursive_bisection(const FusionGraph& graph);

/// The edge-weighted baseline: minimizes the total weight of
/// cross-partition normal edges (weight = number of shared arrays), the
/// objective of Gao et al. and Kennedy & McKinley. Exact for small graphs,
/// greedy beyond. The returned plan's `cost` is still the bandwidth
/// objective, so it can be compared directly against the other solvers.
FusionPlan edge_weighted_baseline(const FusionGraph& graph);

/// Dispatcher: exact enumeration when feasible, otherwise the better of
/// recursive bisection and greedy.
FusionPlan best_fusion(const FusionGraph& graph);

/// Build a fusion graph directly from a specification, for experiments on
/// abstract graphs like the paper's Figure 4 (no Program needed; such
/// graphs cannot be fed to the code transformer, only to the solvers).
/// `array_pins[k]` lists the loops accessing array k; dependence edges are
/// (producer, consumer); preventing pairs are undirected.
FusionGraph graph_from_spec(int num_loops,
                            const std::vector<std::vector<int>>& array_pins,
                            const std::vector<std::pair<int, int>>& dep_edges,
                            const std::vector<std::pair<int, int>>& preventing,
                            const std::vector<std::int64_t>& array_bytes = {});

}  // namespace bwc::fusion
