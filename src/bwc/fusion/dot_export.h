// Graphviz export of fusion graphs and plans, for documentation and
// debugging. Hyper-edges are rendered as small array nodes connected to
// every loop that accesses them (the standard hyper-graph drawing);
// dependence edges are solid arrows, fusion-preventing constraints are
// dashed red; a plan clusters nodes by partition.
#pragma once

#include <string>

#include "bwc/fusion/fusion_graph.h"

namespace bwc::fusion {

/// DOT source for the fusion graph. `loop_labels` may be empty (nodes are
/// then labeled L0, L1, ...) or provide one label per node.
std::string to_dot(const FusionGraph& graph,
                   const std::vector<std::string>& loop_labels = {});

/// DOT source with the plan's partitions drawn as clusters.
std::string to_dot(const FusionGraph& graph, const FusionPlan& plan,
                   const std::vector<std::string>& loop_labels = {});

}  // namespace bwc::fusion
