#include "bwc/fusion/dot_export.h"

#include <sstream>

#include "bwc/support/error.h"

namespace bwc::fusion {

namespace {

std::string node_label(const std::vector<std::string>& labels, int v) {
  if (!labels.empty()) {
    BWC_CHECK(v >= 0 && v < static_cast<int>(labels.size()),
              "label list does not cover node");
    return labels[static_cast<std::size_t>(v)];
  }
  return "L" + std::to_string(v);
}

void emit_loop_node(std::ostringstream& os,
                    const std::vector<std::string>& labels, int v,
                    const char* indent) {
  os << indent << "loop" << v << " [label=\"" << node_label(labels, v)
     << "\", shape=box, style=filled, fillcolor=\"#dce6f4\"];\n";
}

void emit_edges(std::ostringstream& os, const FusionGraph& g) {
  // Hyper-edges: one diamond per array, connected to its pins.
  for (int e = 0; e < g.sharing.edge_count(); ++e) {
    const std::string label = g.sharing.label(e).empty()
                                  ? "a" + std::to_string(e)
                                  : g.sharing.label(e);
    os << "  array" << e << " [label=\"" << label
       << "\", shape=diamond, fontsize=10, style=filled, "
          "fillcolor=\"#f4ecd2\"];\n";
    for (int v : g.sharing.pins(e)) {
      os << "  array" << e << " -- loop" << v << " [color=\"#999999\"];\n";
    }
  }
  // Dependence edges.
  for (int u = 0; u < g.node_count(); ++u) {
    for (int v : g.deps.successors(u)) {
      os << "  loop" << u << " -- loop" << v
         << " [dir=forward, color=\"#2a6f4e\", penwidth=1.5];\n";
    }
  }
  // Fusion-preventing constraints.
  for (const auto& [u, v] : g.preventing) {
    os << "  loop" << u << " -- loop" << v
       << " [style=dashed, color=\"#b03030\", penwidth=1.5];\n";
  }
}

}  // namespace

std::string to_dot(const FusionGraph& graph,
                   const std::vector<std::string>& loop_labels) {
  std::ostringstream os;
  os << "graph fusion {\n  rankdir=LR;\n";
  for (int v = 0; v < graph.node_count(); ++v)
    emit_loop_node(os, loop_labels, v, "  ");
  emit_edges(os, graph);
  os << "}\n";
  return os.str();
}

std::string to_dot(const FusionGraph& graph, const FusionPlan& plan,
                   const std::vector<std::string>& loop_labels) {
  BWC_CHECK(static_cast<int>(plan.assignment.size()) == graph.node_count(),
            "plan does not match graph");
  std::ostringstream os;
  os << "graph fusion_plan {\n  rankdir=LR;\n";
  const auto groups = plan.groups();
  for (std::size_t p = 0; p < groups.size(); ++p) {
    os << "  subgraph cluster_" << p << " {\n"
       << "    label=\"partition " << p << "\";\n"
       << "    style=rounded;\n    color=\"#6080a0\";\n";
    for (int v : groups[p]) emit_loop_node(os, loop_labels, v, "    ");
    os << "  }\n";
  }
  emit_edges(os, graph);
  os << "}\n";
  return os.str();
}

}  // namespace bwc::fusion
