#include "bwc/fusion/kway_reduction.h"

#include <limits>

#include "bwc/fusion/solvers.h"
#include "bwc/support/error.h"

namespace bwc::fusion {

namespace {

std::int64_t cut_of(const graph::UndirectedGraph& g,
                    const std::vector<int>& assignment) {
  std::int64_t w = 0;
  for (int e = 0; e < g.edge_count(); ++e) {
    if (assignment[static_cast<std::size_t>(g.edge_u(e))] !=
        assignment[static_cast<std::size_t>(g.edge_v(e))])
      w += g.edge_weight(e);
  }
  return w;
}

void check_terminals(const graph::UndirectedGraph& g,
                     const std::vector<int>& terminals) {
  BWC_CHECK(terminals.size() >= 2, "k-way cut needs at least two terminals");
  for (int t : terminals)
    BWC_CHECK(t >= 0 && t < g.node_count(), "terminal out of range");
  for (std::size_t i = 0; i < terminals.size(); ++i) {
    for (std::size_t j = i + 1; j < terminals.size(); ++j) {
      BWC_CHECK(terminals[i] != terminals[j], "terminals must be distinct");
    }
  }
}

}  // namespace

FusionGraph kway_to_fusion(const graph::UndirectedGraph& g,
                           const std::vector<int>& terminals) {
  check_terminals(g, terminals);
  std::vector<std::vector<int>> pins;
  std::vector<std::int64_t> weights;
  for (int e = 0; e < g.edge_count(); ++e) {
    pins.push_back({g.edge_u(e), g.edge_v(e)});
    weights.push_back(g.edge_weight(e));
  }
  std::vector<std::pair<int, int>> preventing;
  for (std::size_t i = 0; i < terminals.size(); ++i) {
    for (std::size_t j = i + 1; j < terminals.size(); ++j)
      preventing.emplace_back(terminals[i], terminals[j]);
  }
  return graph_from_spec(g.node_count(), pins, /*dep_edges=*/{}, preventing,
                         weights);
}

KWayCutResult kway_cut_via_fusion(const graph::UndirectedGraph& g,
                                  const std::vector<int>& terminals) {
  const FusionGraph fusion = kway_to_fusion(g, terminals);
  const FusionPlan plan = exact_enumeration_weighted(fusion);
  KWayCutResult result;
  result.assignment = plan.assignment;
  // Fusion cost counts each edge once per part it touches; a 2-pin edge
  // inside one part costs w, across two parts costs 2w:
  //   cost = total_weight + cut_weight  =>  cut = cost - total.
  std::int64_t total = 0;
  for (int e = 0; e < g.edge_count(); ++e) total += g.edge_weight(e);
  result.cut_weight = plan.bytes_cost - total;
  BWC_ASSERT(result.cut_weight == cut_of(g, result.assignment),
             "fusion cost bookkeeping mismatch");
  return result;
}

KWayCutResult kway_cut_bruteforce(const graph::UndirectedGraph& g,
                                  const std::vector<int>& terminals) {
  check_terminals(g, terminals);
  const int n = g.node_count();
  const int k = static_cast<int>(terminals.size());
  BWC_CHECK(n <= 16, "brute force limited to small graphs");

  std::vector<int> assignment(static_cast<std::size_t>(n), -1);
  std::vector<int> free_nodes;
  for (int v = 0; v < n; ++v) {
    bool is_terminal = false;
    for (int t = 0; t < k; ++t) {
      if (terminals[static_cast<std::size_t>(t)] == v) {
        assignment[static_cast<std::size_t>(v)] = t;
        is_terminal = true;
      }
    }
    if (!is_terminal) free_nodes.push_back(v);
  }

  KWayCutResult best;
  best.cut_weight = std::numeric_limits<std::int64_t>::max();
  std::uint64_t combos = 1;
  for (std::size_t i = 0; i < free_nodes.size(); ++i)
    combos *= static_cast<std::uint64_t>(k);
  for (std::uint64_t code = 0; code < combos; ++code) {
    std::uint64_t c = code;
    for (int v : free_nodes) {
      assignment[static_cast<std::size_t>(v)] =
          static_cast<int>(c % static_cast<std::uint64_t>(k));
      c /= static_cast<std::uint64_t>(k);
    }
    const std::int64_t w = cut_of(g, assignment);
    if (w < best.cut_weight) {
      best.cut_weight = w;
      best.assignment = assignment;
    }
  }
  return best;
}

}  // namespace bwc::fusion
