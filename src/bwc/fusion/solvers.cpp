#include "bwc/fusion/solvers.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <numeric>
#include <set>

#include "bwc/graph/hyper_cut.h"
#include "bwc/support/error.h"

namespace bwc::fusion {

FusionCapacityError::FusionCapacityError(const std::string& solver,
                                         int loop_count, int max_nodes)
    : Error("solver '" + solver + "' cannot handle " +
            std::to_string(loop_count) + " loops: exact fusion enumeration "
            "is limited to " + std::to_string(max_nodes) +
            " (the problem is NP-complete); use the 'bisection' heuristic "
            "or best_fusion, which falls back automatically"),
      solver_(solver),
      loop_count_(loop_count),
      max_nodes_(max_nodes) {}

namespace {

/// Cost of an assignment under the edge-weighted (baseline) objective:
/// total number of shared arrays across partition boundaries, counted per
/// loop pair (the Gao / Kennedy-McKinley edge weights).
std::int64_t edge_weighted_cost(const FusionGraph& g,
                                const std::vector<int>& assignment) {
  std::int64_t cost = 0;
  const int n = g.node_count();
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (assignment[static_cast<std::size_t>(i)] ==
          assignment[static_cast<std::size_t>(j)])
        continue;
      cost += static_cast<std::int64_t>(g.pair(i, j).shared_arrays.size());
    }
  }
  return cost;
}

/// Enumerate set partitions (restricted growth strings) with preventing
/// pruning; calls `visit` on every complete legal-looking assignment
/// (full validity still checked by the caller).
void enumerate_partitions(const FusionGraph& g,
                          const std::function<void(const std::vector<int>&)>&
                              visit) {
  const int n = g.node_count();
  std::vector<int> assignment(static_cast<std::size_t>(n), -1);
  std::function<void(int, int)> recurse = [&](int v, int used) {
    if (v == n) {
      visit(assignment);
      return;
    }
    for (int p = 0; p <= used && p < n; ++p) {
      bool ok = true;
      for (int u = 0; u < v && ok; ++u) {
        if (assignment[static_cast<std::size_t>(u)] == p &&
            g.is_preventing(u, v))
          ok = false;
      }
      if (!ok) continue;
      assignment[static_cast<std::size_t>(v)] = p;
      recurse(v + 1, std::max(used, p + 1));
    }
    assignment[static_cast<std::size_t>(v)] = -1;
  };
  recurse(0, 0);
}

/// Exact search minimizing an arbitrary objective over valid assignments.
FusionPlan exact_minimize(
    const FusionGraph& g, int max_nodes, const std::string& solver,
    const std::function<std::int64_t(const std::vector<int>&)>& objective) {
  if (g.node_count() > max_nodes) {
    throw FusionCapacityError(solver, g.node_count(), max_nodes);
  }
  std::int64_t best = std::numeric_limits<std::int64_t>::max();
  std::vector<int> best_assignment;
  enumerate_partitions(g, [&](const std::vector<int>& assignment) {
    if (!plan_is_valid(g, assignment)) return;
    const std::int64_t c = objective(assignment);
    if (c < best) {
      best = c;
      best_assignment = assignment;
    }
  });
  BWC_CHECK(!best_assignment.empty() || g.node_count() == 0,
            "no valid partitioning exists");
  if (g.node_count() == 0) {
    FusionPlan p;
    p.solver = solver;
    return p;
  }
  return finish_plan(g, best_assignment, solver);
}

}  // namespace

FusionPlan no_fusion(const FusionGraph& graph) {
  std::vector<int> assignment(static_cast<std::size_t>(graph.node_count()));
  std::iota(assignment.begin(), assignment.end(), 0);
  if (graph.node_count() == 0) {
    FusionPlan p;
    p.solver = "none";
    return p;
  }
  return finish_plan(graph, std::move(assignment), "none");
}

std::optional<FusionPlan> exact_two_partition(const FusionGraph& graph) {
  if (graph.preventing.size() != 1) return std::nullopt;
  const auto [s, t] = graph.preventing.front();

  // Weighted hyper-graph: the data-sharing edges plus heavy dependence
  // enforcement triples (paper Section 3.1.2, last paragraph).
  graph::Hypergraph h(graph.node_count());
  for (int e = 0; e < graph.sharing.edge_count(); ++e)
    h.add_edge(graph.sharing.pins(e), graph.sharing.weight(e));
  const std::int64_t heavy = graph.sharing.total_weight() + 1;
  for (int u = 0; u < graph.node_count(); ++u) {
    for (int v : graph.deps.successors(u)) {
      h.add_edge({s, u}, heavy);
      h.add_edge({u, v}, heavy);
      h.add_edge({v, t}, heavy);
    }
  }

  const graph::HyperCutResult cut = graph::min_hyperedge_cut(h, s, t);
  std::vector<int> assignment(static_cast<std::size_t>(graph.node_count()), 1);
  for (int v : cut.source_side) assignment[static_cast<std::size_t>(v)] = 0;
  if (!plan_is_valid(graph, assignment)) return std::nullopt;
  return finish_plan(graph, std::move(assignment), "exact-two-partition");
}

FusionPlan exact_enumeration(const FusionGraph& graph, int max_nodes) {
  return exact_minimize(graph, max_nodes, "exact",
                        [&graph](const std::vector<int>& a) {
                          return graph::partition_cost(graph.sharing, a);
                        });
}

FusionPlan exact_enumeration_weighted(const FusionGraph& graph,
                                      int max_nodes) {
  return exact_minimize(
      graph, max_nodes, "exact-weighted",
      [&graph](const std::vector<int>& a) {
        return graph::partition_cost(graph.sharing_bytes, a);
      });
}

FusionPlan greedy_fusion(const FusionGraph& graph) {
  const int n = graph.node_count();
  if (n == 0) {
    FusionPlan p;
    p.solver = "greedy";
    return p;
  }
  std::vector<int> assignment(static_cast<std::size_t>(n), -1);
  std::vector<std::set<ir::ArrayId>> partition_arrays;
  std::vector<std::vector<int>> members;

  for (int v = 0; v < n; ++v) {
    const auto& arrays =
        graph.summaries[static_cast<std::size_t>(v)].touched_arrays();

    // Earliest partition v may join: after every producer's partition.
    int min_partition = 0;
    for (int u : graph.deps.predecessors(v))
      min_partition =
          std::max(min_partition, assignment[static_cast<std::size_t>(u)]);

    int best_partition = -1;
    std::int64_t best_delta = std::numeric_limits<std::int64_t>::max();
    for (int p = min_partition;
         p < static_cast<int>(partition_arrays.size()); ++p) {
      bool ok = true;
      for (int u : members[static_cast<std::size_t>(p)]) {
        if (graph.is_preventing(u, v)) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      std::int64_t delta = 0;
      for (ir::ArrayId a : arrays) {
        if (partition_arrays[static_cast<std::size_t>(p)].count(a) == 0)
          ++delta;
      }
      // Prefer the latest partition on ties (keeps groups compact).
      if (delta < best_delta ||
          (delta == best_delta && p > best_partition)) {
        best_delta = delta;
        best_partition = p;
      }
    }
    const std::int64_t new_cost = static_cast<std::int64_t>(arrays.size());
    if (best_partition < 0 || best_delta >= new_cost) {
      best_partition = static_cast<int>(partition_arrays.size());
      partition_arrays.emplace_back();
      members.emplace_back();
    }
    assignment[static_cast<std::size_t>(v)] = best_partition;
    members[static_cast<std::size_t>(best_partition)].push_back(v);
    for (ir::ArrayId a : arrays)
      partition_arrays[static_cast<std::size_t>(best_partition)].insert(a);
  }
  return finish_plan(graph, std::move(assignment), "greedy");
}

FusionPlan recursive_bisection(const FusionGraph& graph) {
  const int n = graph.node_count();
  if (n == 0) {
    FusionPlan p;
    p.solver = "bisection";
    return p;
  }
  std::vector<int> assignment(static_cast<std::size_t>(n), 0);
  int next_partition = 0;

  std::function<void(const std::vector<int>&)> split =
      [&](const std::vector<int>& nodes) {
        // Find a fusion-preventing pair inside this group.
        int s = -1, t = -1;
        for (std::size_t i = 0; i < nodes.size() && s < 0; ++i) {
          for (std::size_t j = i + 1; j < nodes.size(); ++j) {
            if (graph.is_preventing(nodes[i], nodes[j])) {
              s = nodes[i];
              t = nodes[j];
              break;
            }
          }
        }
        if (s < 0) {
          const int p = next_partition++;
          for (int v : nodes) assignment[static_cast<std::size_t>(v)] = p;
          return;
        }

        // Induced hyper-graph over this group with heavy dependence edges.
        std::vector<int> local_of(static_cast<std::size_t>(n), -1);
        for (std::size_t i = 0; i < nodes.size(); ++i)
          local_of[static_cast<std::size_t>(nodes[i])] = static_cast<int>(i);
        graph::Hypergraph h(static_cast<int>(nodes.size()));
        for (int e = 0; e < graph.sharing.edge_count(); ++e) {
          std::vector<int> pins;
          for (int v : graph.sharing.pins(e)) {
            if (local_of[static_cast<std::size_t>(v)] >= 0)
              pins.push_back(local_of[static_cast<std::size_t>(v)]);
          }
          if (!pins.empty())
            h.add_edge(std::move(pins), graph.sharing.weight(e));
        }
        const std::int64_t heavy = graph.sharing.total_weight() + 1;
        const int ls = local_of[static_cast<std::size_t>(s)];
        const int lt = local_of[static_cast<std::size_t>(t)];
        for (int u = 0; u < n; ++u) {
          if (local_of[static_cast<std::size_t>(u)] < 0) continue;
          for (int v : graph.deps.successors(u)) {
            if (local_of[static_cast<std::size_t>(v)] < 0) continue;
            h.add_edge({ls, local_of[static_cast<std::size_t>(u)]}, heavy);
            h.add_edge({local_of[static_cast<std::size_t>(u)],
                        local_of[static_cast<std::size_t>(v)]},
                       heavy);
            h.add_edge({local_of[static_cast<std::size_t>(v)], lt}, heavy);
          }
        }

        const graph::HyperCutResult cut = graph::min_hyperedge_cut(h, ls, lt);
        std::vector<int> first, second;
        std::vector<bool> in_first(nodes.size(), false);
        for (int lv : cut.source_side)
          in_first[static_cast<std::size_t>(lv)] = true;
        for (std::size_t i = 0; i < nodes.size(); ++i)
          (in_first[i] ? first : second).push_back(nodes[i]);
        split(first);
        split(second);
      };

  std::vector<int> all(static_cast<std::size_t>(n));
  std::iota(all.begin(), all.end(), 0);
  split(all);

  // Bisection order may disagree with dependence order in corner cases;
  // fall back to greedy when the plan cannot be normalized.
  try {
    return finish_plan(graph, std::move(assignment), "bisection");
  } catch (const Error&) {
    FusionPlan p = greedy_fusion(graph);
    p.solver = "bisection(greedy-fallback)";
    return p;
  }
}

FusionPlan edge_weighted_baseline(const FusionGraph& graph) {
  if (graph.node_count() <= 12) {
    FusionPlan plan = exact_minimize(
        graph, 12, "edge-weighted",
        [&graph](const std::vector<int>& a) {
          // Prefer fewer partitions on equal cut weight, like the published
          // greedy-fusion heuristics that fuse whenever legal.
          return edge_weighted_cost(graph, a) * 64 +
                 *std::max_element(a.begin(), a.end());
        });
    return plan;
  }
  FusionPlan plan = greedy_fusion(graph);
  plan.solver = "edge-weighted(greedy)";
  return plan;
}

FusionPlan best_fusion(const FusionGraph& graph) {
  if (graph.node_count() <= 12) {
    FusionPlan plan = exact_enumeration(graph);
    plan.solver = "best(exact)";
    return plan;
  }
  FusionPlan a = recursive_bisection(graph);
  FusionPlan b = greedy_fusion(graph);
  FusionPlan best = a.cost <= b.cost ? std::move(a) : std::move(b);
  best.solver = "best(" + best.solver + ")";
  return best;
}

FusionGraph graph_from_spec(int num_loops,
                            const std::vector<std::vector<int>>& array_pins,
                            const std::vector<std::pair<int, int>>& dep_edges,
                            const std::vector<std::pair<int, int>>& preventing,
                            const std::vector<std::int64_t>& array_bytes) {
  BWC_CHECK(num_loops >= 0, "loop count must be non-negative");
  BWC_CHECK(array_bytes.empty() || array_bytes.size() == array_pins.size(),
            "array_bytes must match array_pins");
  FusionGraph g;
  g.loop_tops.resize(static_cast<std::size_t>(num_loops));
  std::iota(g.loop_tops.begin(), g.loop_tops.end(), 0);
  g.summaries.resize(static_cast<std::size_t>(num_loops));
  g.sharing = graph::Hypergraph(num_loops);
  g.sharing_bytes = graph::Hypergraph(num_loops);
  g.deps = graph::Digraph(num_loops);

  for (std::size_t k = 0; k < array_pins.size(); ++k) {
    const ir::ArrayId id = static_cast<ir::ArrayId>(k);
    g.sharing.add_edge(array_pins[k], 1);
    g.sharing_bytes.add_edge(
        array_pins[k], array_bytes.empty() ? 1 : array_bytes[k]);
    g.edge_arrays.push_back(id);
    // Populate summaries' touched arrays so greedy_fusion can run on specs.
    for (int loop : array_pins[k]) {
      auto& access =
          g.summaries[static_cast<std::size_t>(loop)].arrays[id];
      access.array = id;
    }
  }
  for (const auto& [u, v] : dep_edges) g.deps.add_edge(u, v);

  // Pairwise info: mark preventing pairs; everything else fusable.
  g.pair_info.resize(static_cast<std::size_t>(num_loops));
  for (int i = 0; i < num_loops; ++i) {
    for (int j = i + 1; j < num_loops; ++j) {
      analysis::PairAnalysis pa;
      pa.compat = analysis::FusionCompat::kIdentical;
      pa.fusion_preventing = false;
      pa.dependent = g.deps.has_edge(i, j);
      for (std::size_t k = 0; k < array_pins.size(); ++k) {
        const auto& pins = array_pins[k];
        const bool has_i = std::find(pins.begin(), pins.end(), i) != pins.end();
        const bool has_j = std::find(pins.begin(), pins.end(), j) != pins.end();
        if (has_i && has_j)
          pa.shared_arrays.push_back(static_cast<ir::ArrayId>(k));
      }
      g.pair_info[static_cast<std::size_t>(i)].push_back(std::move(pa));
    }
  }
  for (const auto& [u, v] : preventing) {
    const int i = std::min(u, v);
    const int j = std::max(u, v);
    BWC_CHECK(i >= 0 && j < num_loops && i != j, "bad preventing pair");
    auto& pa = g.pair_info[static_cast<std::size_t>(i)]
                          [static_cast<std::size_t>(j - i - 1)];
    pa.fusion_preventing = true;
    pa.compat = analysis::FusionCompat::kIncompatible;
    g.preventing.emplace_back(i, j);
  }
  return g;
}

}  // namespace bwc::fusion
