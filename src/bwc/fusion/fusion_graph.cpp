#include "bwc/fusion/fusion_graph.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>

#include "bwc/support/error.h"

namespace bwc::fusion {

const analysis::PairAnalysis& FusionGraph::pair(int i, int j) const {
  BWC_CHECK(i >= 0 && j > i && j < node_count(), "pair indices out of range");
  return pair_info[static_cast<std::size_t>(i)]
                  [static_cast<std::size_t>(j - i - 1)];
}

bool FusionGraph::is_preventing(int i, int j) const {
  if (i == j) return false;
  if (i > j) std::swap(i, j);
  return pair(i, j).fusion_preventing;
}

FusionGraph build_fusion_graph(
    const ir::Program& program, const FusionGraphOptions& options,
    const std::vector<analysis::LoopSummary>* statement_summaries) {
  BWC_CHECK(statement_summaries == nullptr ||
                statement_summaries->size() == program.top().size(),
            "statement summaries must cover every top-level statement");
  FusionGraph g;
  g.loop_tops = program.top_loop_indices();
  for (int idx : g.loop_tops) {
    g.summaries.push_back(
        statement_summaries != nullptr
            ? (*statement_summaries)[static_cast<std::size_t>(idx)]
            : analysis::summarize_loop(program, idx));
  }

  const int n = g.node_count();
  g.sharing = graph::Hypergraph(n);
  g.sharing_bytes = graph::Hypergraph(n);
  g.deps = graph::Digraph(n);

  // One hyper-edge per array over the loops that access it.
  std::map<ir::ArrayId, std::vector<int>> array_pins;
  for (int i = 0; i < n; ++i) {
    for (const auto& [array, access] : g.summaries[static_cast<std::size_t>(i)]
                                           .arrays)
      array_pins[array].push_back(i);
  }
  for (const auto& [array, pins] : array_pins) {
    g.sharing.add_edge(pins, 1, program.array(array).name);
    g.sharing_bytes.add_edge(
        pins, static_cast<std::int64_t>(program.array(array).byte_size()),
        program.array(array).name);
    g.edge_arrays.push_back(array);
  }

  // Pairwise dependence / legality analysis.
  g.pair_info.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      analysis::PairAnalysis pa =
          analysis::analyze_pair(g.summaries[static_cast<std::size_t>(i)],
                                 g.summaries[static_cast<std::size_t>(j)]);
      if (options.allow_shifted_fusion) {
        const auto shift = analysis::min_fusion_shift(
            g.summaries[static_cast<std::size_t>(i)],
            g.summaries[static_cast<std::size_t>(j)], options.max_shift);
        if (shift.has_value()) {
          pa.min_shift = *shift;
          if (pa.fusion_preventing && *shift > 0) {
            pa.fusion_preventing = false;
            pa.compat = analysis::FusionCompat::kShifted;
          }
        } else if (!pa.fusion_preventing &&
                   pa.compat == analysis::FusionCompat::kIdentical &&
                   g.summaries[static_cast<std::size_t>(i)].depth() == 1) {
          // Shift analysis unavailable on a depth-1 identical pair means
          // some interval was unbounded; keep unshifted fusion (shift 0).
          pa.min_shift = 0;
        }
      }
      if (pa.dependent) g.deps.add_edge(i, j);
      if (pa.fusion_preventing) g.preventing.emplace_back(i, j);
      g.pair_info[static_cast<std::size_t>(i)].push_back(std::move(pa));
    }
  }

  // Interleaved non-loop statements (e.g. a scalar reset between two
  // reduction loops) pin the loops around them: a loop before and a loop
  // after a statement that conflicts with both may neither be fused nor
  // reordered across it.
  auto stmt_conflicts = [](const analysis::LoopSummary& stmt,
                           const analysis::LoopSummary& loop) {
    for (const auto& [array, a] : stmt.arrays) {
      const auto it = loop.arrays.find(array);
      if (it == loop.arrays.end()) continue;
      if (a.has_writes() || it->second.has_writes()) return true;
    }
    for (const auto& [name, a] : stmt.scalars) {
      const auto it = loop.scalars.find(name);
      if (it == loop.scalars.end()) continue;
      if (a.written || it->second.written) return true;
    }
    return false;
  };
  for (int k = 0; k < static_cast<int>(program.top().size()); ++k) {
    if (program.top()[static_cast<std::size_t>(k)]->kind ==
        ir::StmtKind::kLoop)
      continue;
    analysis::LoopSummary computed;
    if (statement_summaries == nullptr)
      computed = analysis::summarize_statement(program, k);
    const analysis::LoopSummary& sk =
        statement_summaries != nullptr
            ? (*statement_summaries)[static_cast<std::size_t>(k)]
            : computed;
    for (int i = 0; i < n; ++i) {
      if (g.loop_tops[static_cast<std::size_t>(i)] > k) break;
      if (!stmt_conflicts(sk, g.summaries[static_cast<std::size_t>(i)]))
        continue;
      for (int j = i + 1; j < n; ++j) {
        if (g.loop_tops[static_cast<std::size_t>(j)] < k) continue;
        if (!stmt_conflicts(sk, g.summaries[static_cast<std::size_t>(j)]))
          continue;
        auto& pa = g.pair_info[static_cast<std::size_t>(i)]
                              [static_cast<std::size_t>(j - i - 1)];
        if (!pa.fusion_preventing) {
          pa.fusion_preventing = true;
          pa.compat = analysis::FusionCompat::kIncompatible;
          g.preventing.emplace_back(i, j);
        }
        if (!pa.dependent) {
          pa.dependent = true;
          g.deps.add_edge(i, j);
        }
      }
    }
  }
  return g;
}

std::vector<std::vector<int>> FusionPlan::groups() const {
  std::vector<std::vector<int>> out(static_cast<std::size_t>(num_partitions));
  for (int v = 0; v < static_cast<int>(assignment.size()); ++v)
    out[static_cast<std::size_t>(assignment[static_cast<std::size_t>(v)])]
        .push_back(v);
  return out;
}

bool plan_is_valid(const FusionGraph& graph, const std::vector<int>& assignment,
                   std::string* why) {
  const int n = graph.node_count();
  BWC_CHECK(static_cast<int>(assignment.size()) == n,
            "assignment size must match node count");

  for (const auto& [i, j] : graph.preventing) {
    if (assignment[static_cast<std::size_t>(i)] ==
        assignment[static_cast<std::size_t>(j)]) {
      if (why != nullptr)
        *why = "fusion-preventing pair (" + std::to_string(i) + "," +
               std::to_string(j) + ") co-partitioned";
      return false;
    }
  }

  // Contract the dependence graph by partitions and require acyclicity.
  std::map<int, int> dense;  // partition id -> dense id
  for (int v = 0; v < n; ++v) {
    dense.emplace(assignment[static_cast<std::size_t>(v)],
                  static_cast<int>(dense.size()));
  }
  graph::Digraph contracted(static_cast<int>(dense.size()));
  for (int u = 0; u < n; ++u) {
    for (int v : graph.deps.successors(u)) {
      const int pu = dense.at(assignment[static_cast<std::size_t>(u)]);
      const int pv = dense.at(assignment[static_cast<std::size_t>(v)]);
      if (pu != pv) contracted.add_edge(pu, pv);
    }
  }
  if (!contracted.is_acyclic()) {
    if (why != nullptr) *why = "partition dependence graph is cyclic";
    return false;
  }
  return true;
}

std::vector<int> normalize_order(const FusionGraph& graph,
                                 const std::vector<int>& assignment) {
  const int n = graph.node_count();
  std::map<int, int> dense;
  std::vector<int> first_node;  // dense partition id -> first node index
  for (int v = 0; v < n; ++v) {
    const int p = assignment[static_cast<std::size_t>(v)];
    if (dense.emplace(p, static_cast<int>(dense.size())).second)
      first_node.push_back(v);
  }
  const int m = static_cast<int>(dense.size());

  graph::Digraph contracted(m);
  for (int u = 0; u < n; ++u) {
    for (int v : graph.deps.successors(u)) {
      const int pu = dense.at(assignment[static_cast<std::size_t>(u)]);
      const int pv = dense.at(assignment[static_cast<std::size_t>(v)]);
      if (pu != pv) contracted.add_edge(pu, pv);
    }
  }

  // Kahn's algorithm with first-node tie-breaking for deterministic output.
  std::vector<int> indegree(static_cast<std::size_t>(m), 0);
  for (int p = 0; p < m; ++p)
    indegree[static_cast<std::size_t>(p)] =
        static_cast<int>(contracted.predecessors(p).size());
  std::set<std::pair<int, int>> ready;  // (first node, partition)
  for (int p = 0; p < m; ++p) {
    if (indegree[static_cast<std::size_t>(p)] == 0)
      ready.emplace(first_node[static_cast<std::size_t>(p)], p);
  }
  std::vector<int> position(static_cast<std::size_t>(m), -1);
  int next = 0;
  while (!ready.empty()) {
    const auto [fn, p] = *ready.begin();
    ready.erase(ready.begin());
    position[static_cast<std::size_t>(p)] = next++;
    for (int q : contracted.successors(p)) {
      if (--indegree[static_cast<std::size_t>(q)] == 0)
        ready.emplace(first_node[static_cast<std::size_t>(q)], q);
    }
  }
  BWC_CHECK(next == m, "partition dependence graph is cyclic");

  std::vector<int> out(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v)
    out[static_cast<std::size_t>(v)] = position[static_cast<std::size_t>(
        dense.at(assignment[static_cast<std::size_t>(v)]))];
  return out;
}

FusionPlan finish_plan(const FusionGraph& graph, std::vector<int> assignment,
                       std::string solver) {
  std::string why;
  BWC_CHECK(plan_is_valid(graph, assignment, &why), "invalid plan: " + why);
  FusionPlan plan;
  plan.assignment = normalize_order(graph, assignment);
  plan.num_partitions =
      plan.assignment.empty()
          ? 0
          : 1 + *std::max_element(plan.assignment.begin(),
                                  plan.assignment.end());
  plan.cost = graph::partition_cost(graph.sharing, plan.assignment);
  plan.bytes_cost =
      graph::partition_cost(graph.sharing_bytes, plan.assignment);
  plan.solver = std::move(solver);
  return plan;
}

}  // namespace bwc::fusion
