// The paper's Section 3.1.3 NP-completeness construction, executable.
//
// "To convert a k-way cut problem to a fusion problem, we construct a
// hyper-graph G' = (V', E') where V' = V. We add in a fusion-preventing
// edge between each pair of terminals, and for each edge in E, we add a
// new hyper-edge connecting the two end nodes of the edge. It is easy to
// see that a minimal k-way cut in G is an optimal fusion in G' and vice
// versa."
//
// This header makes the reduction runnable in both directions: build the
// fusion instance from a k-way cut instance, solve it with the fusion
// solvers, and recover the cut. Tests verify the equivalence against a
// brute-force k-way cut, which *is* the paper's proof, mechanized.
#pragma once

#include <cstdint>
#include <vector>

#include "bwc/fusion/fusion_graph.h"
#include "bwc/graph/undirected_graph.h"

namespace bwc::fusion {

struct KWayCutResult {
  /// Total weight of edges whose endpoints end up in different parts.
  std::int64_t cut_weight = 0;
  /// part[v] for every vertex; terminals are in distinct parts.
  std::vector<int> assignment;
};

/// Build the fusion instance of the reduction (terminals pairwise
/// fusion-preventing; one hyper-edge per graph edge, carrying its weight).
FusionGraph kway_to_fusion(const graph::UndirectedGraph& g,
                           const std::vector<int>& terminals);

/// Solve k-way cut by reducing to bandwidth-minimal fusion and solving the
/// fusion instance exactly. Exponential (the reduction direction shows
/// hardness, not speed); limited to small graphs like the exact solver.
KWayCutResult kway_cut_via_fusion(const graph::UndirectedGraph& g,
                                  const std::vector<int>& terminals);

/// Brute-force reference: try every assignment of non-terminals to the k
/// terminal parts. Exponential in (V - k).
KWayCutResult kway_cut_bruteforce(const graph::UndirectedGraph& g,
                                  const std::vector<int>& terminals);

}  // namespace bwc::fusion
