#include "bwc/machine/machine_model.h"

#include <algorithm>

#include "bwc/support/error.h"

namespace bwc::machine {

void MachineModel::validate() const {
  BWC_CHECK(peak_mflops > 0.0, "peak flop rate must be positive");
  BWC_CHECK(boundary_bandwidth_mbps.size() == caches.size() + 1,
            "need one bandwidth per hierarchy boundary");
  for (double bw : boundary_bandwidth_mbps)
    BWC_CHECK(bw > 0.0, "bandwidths must be positive");
  BWC_CHECK(core_count >= 1, "core count must be at least 1");
  BWC_CHECK(boundary_shared.empty() ||
                boundary_shared.size() == boundary_bandwidth_mbps.size(),
            "need one sharing flag per hierarchy boundary (or none)");
  for (const auto& c : caches) c.validate();
}

bool MachineModel::is_shared(std::size_t b) const {
  BWC_CHECK(b < boundary_bandwidth_mbps.size(), "boundary out of range");
  if (boundary_shared.empty())
    return b + 1 == boundary_bandwidth_mbps.size();
  return boundary_shared[b];
}

double MachineModel::aggregate_bandwidth_mbps(std::size_t b) const {
  const double bw = boundary_bandwidth_mbps[b];
  return is_shared(b) ? bw : bw * core_count;
}

double MachineModel::aggregate_peak_mflops() const {
  return peak_mflops * core_count;
}

MachineModel MachineModel::with_cores(int cores) const {
  BWC_CHECK(cores >= 1, "core count must be at least 1");
  MachineModel m = *this;
  m.core_count = cores;
  return m;
}

std::vector<double> MachineModel::machine_balance() const {
  validate();
  std::vector<double> balance;
  balance.reserve(boundary_bandwidth_mbps.size());
  for (std::size_t b = 0; b < boundary_bandwidth_mbps.size(); ++b)
    balance.push_back(aggregate_bandwidth_mbps(b) / aggregate_peak_mflops());
  return balance;
}

double MachineModel::memory_bandwidth_mbps() const {
  BWC_CHECK(!boundary_bandwidth_mbps.empty(), "model has no bandwidths");
  return boundary_bandwidth_mbps.back();
}

memsim::MemoryHierarchy MachineModel::make_hierarchy() const {
  validate();
  return memsim::MemoryHierarchy(caches);
}

MachineModel MachineModel::scaled(std::uint64_t divisor) const {
  BWC_CHECK(divisor >= 1, "scale divisor must be at least 1");
  MachineModel m = *this;
  if (divisor == 1) return m;
  m.name += " (caches/" + std::to_string(divisor) + ")";
  for (auto& c : m.caches) {
    const std::uint64_t min_size = c.line_bytes * std::max<std::uint64_t>(
                                                      4, c.ways());
    c.size_bytes = std::max(c.size_bytes / divisor, min_size);
  }
  return m;
}

MachineModel origin2000_r10k() {
  MachineModel m;
  m.name = "Origin2000 (R10K)";
  m.peak_mflops = 400.0;  // 200 MHz x 2 flops/cycle (fused multiply-add)
  // Machine balance 4 / 4 / 0.8 bytes per flop => 1600 / 1600 / 320 MB/s.
  m.boundary_bandwidth_mbps = {1600.0, 1600.0, 320.0};
  m.caches = {
      {.name = "L1",
       .size_bytes = 32 * 1024,
       .line_bytes = 32,
       .associativity = 2},
      {.name = "L2",
       .size_bytes = 4 * 1024 * 1024,
       .line_bytes = 128,
       .associativity = 2},
  };
  m.startup_overhead_s = 0.0;
  m.validate();
  return m;
}

MachineModel exemplar_pa8000() {
  MachineModel m;
  m.name = "Exemplar (PA-8000)";
  m.peak_mflops = 720.0;  // 180 MHz x 2 flops/cycle
  // Registers<->cache ~4 B/flop; memory ~0.78 B/flop (560 MB/s).
  m.boundary_bandwidth_mbps = {2880.0, 560.0};
  m.caches = {
      {.name = "L1",
       .size_bytes = 1024 * 1024,
       .line_bytes = 32,
       .associativity = 1,  // direct-mapped off-chip data cache
       // Physically indexed: random page placement produces the
       // stream-count-dependent conflicts of the paper's Figure 3.
       .page_randomization_seed = 0x5eed5eed},
  };
  m.startup_overhead_s = 0.0;
  m.validate();
  return m;
}

MachineModel generic_modern() {
  MachineModel m;
  m.name = "Generic modern core";
  m.peak_mflops = 16000.0;  // 4 GHz x 4 flops/cycle (scalar FMA x2 ports)
  // ~12 / 6 / 1.25 bytes per flop: faster in absolute terms, but an even
  // worse memory balance than the Origin2000 -- the paper's projection.
  m.boundary_bandwidth_mbps = {192000.0, 96000.0, 20000.0};
  m.caches = {
      {.name = "L1",
       .size_bytes = 32 * 1024,
       .line_bytes = 64,
       .associativity = 8},
      {.name = "L2",
       .size_bytes = 2 * 1024 * 1024,
       .line_bytes = 64,
       .associativity = 16},
  };
  m.validate();
  return m;
}

MachineModel generic_modern_l3() {
  MachineModel m = generic_modern();
  m.name = "Generic modern core (L1/L2/L3)";
  m.caches.push_back({.name = "L3",
                      .size_bytes = 32 * 1024 * 1024,
                      .line_bytes = 64,
                      .associativity = 16});
  // Insert an L3 bandwidth between L2's and memory's.
  m.boundary_bandwidth_mbps = {192000.0, 96000.0, 48000.0, 20000.0};
  m.validate();
  return m;
}

std::vector<MachineModel> all_presets() {
  return {origin2000_r10k(), exemplar_pa8000(), generic_modern(),
          generic_modern_l3()};
}

}  // namespace bwc::machine
