// Machine models: peak compute rate, per-boundary data bandwidths, and
// cache geometry.
//
// "Machine balance is the amount of data transfer that the machine provides
// for each machine operation" (Section 2.2). A model carries one bandwidth
// per hierarchy boundary (registers<->L1, L1<->L2, ..., last-level<->memory)
// and its balance is bandwidth divided by peak flop rate.
//
// Presets reproduce the two machines of the paper's evaluation: an SGI
// Origin2000 node (MIPS R10000) and an HP/Convex Exemplar node (PA-8000).
// The numbers come from the paper (Figure 1 machine row: 4 / 4 / 0.8
// bytes/flop for the Origin2000) and period hardware specifications.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bwc/memsim/hierarchy.h"

namespace bwc::machine {

struct MachineModel {
  std::string name;
  /// Peak floating-point rate in MFLOPS (10^6 flops/s) of ONE core.
  double peak_mflops = 0.0;
  /// Sustained bandwidth in MB/s for each boundary, ordered from
  /// registers<->L1 to last-level<->memory. Size must be caches.size()+1.
  /// Private boundaries are per-core (aggregate capacity scales with
  /// core_count); shared boundaries are machine-wide (one bus).
  std::vector<double> boundary_bandwidth_mbps;
  /// Cache geometry from L1 to last level.
  std::vector<memsim::CacheConfig> caches;
  /// Fixed per-run overhead (loop startup, sync) in the timing model.
  double startup_overhead_s = 0.0;
  /// Identical cores drawing on the hierarchy. Private boundaries and the
  /// flop rate replicate per core; shared boundaries do not.
  int core_count = 1;
  /// Per-boundary sharing flags, same order and size as
  /// boundary_bandwidth_mbps. Empty means the default topology: every
  /// cache boundary private, the memory bus (last boundary) shared.
  std::vector<bool> boundary_shared;

  /// True when boundary `b` is one bus shared by all cores.
  bool is_shared(std::size_t b) const;

  /// Machine-wide capacity of boundary `b` in MB/s: the per-core figure
  /// multiplied by core_count for private boundaries, unchanged for
  /// shared ones.
  double aggregate_bandwidth_mbps(std::size_t b) const;

  /// Machine-wide peak flop rate: core_count * peak_mflops.
  double aggregate_peak_mflops() const;

  /// A copy of this model with `cores` cores (geometry and per-core
  /// rates unchanged).
  MachineModel with_cores(int cores) const;

  /// Bytes of transfer available per flop at each boundary (Figure 1's
  /// machine row): aggregate bandwidth over aggregate peak. At one core
  /// this is the paper's uniprocessor balance; with more cores the
  /// private boundaries hold their balance while every shared boundary's
  /// balance shrinks by 1/core_count -- the shared-bus squeeze.
  std::vector<double> machine_balance() const;

  /// Memory bandwidth (last boundary) in MB/s.
  double memory_bandwidth_mbps() const;

  /// Instantiate a simulator with this machine's cache geometry.
  memsim::MemoryHierarchy make_hierarchy() const;

  /// A copy of this model with every cache size divided by `divisor`
  /// (geometry shape and all bandwidths preserved). Benchmarks use scaled
  /// models so that paper-scale working-set/cache ratios are reproduced at
  /// tractable simulation sizes; balance numbers are unaffected because
  /// both the footprint and the cache shrink together.
  MachineModel scaled(std::uint64_t divisor) const;

  /// Throws bwc::Error unless bandwidths/caches are consistent.
  void validate() const;
};

/// SGI Origin2000 node: MIPS R10000, peak 400 MFLOPS; machine balance
/// 4 / 4 / 0.8 bytes per flop (paper Figure 1); 32 KB 2-way L1 with 32 B
/// lines, 4 MB 2-way L2 with 128 B lines.
MachineModel origin2000_r10k();

/// HP/Convex Exemplar node: PA-8000, peak 720 MFLOPS; single-level 1 MB
/// direct-mapped data cache with 32 B lines; ~560 MB/s memory bandwidth
/// (the paper's kernels sustain 417-551 MB/s).
MachineModel exemplar_pa8000();

/// A generic modern core for "the gap keeps widening" comparisons:
/// higher absolute rates, *worse* memory balance than the Origin2000.
MachineModel generic_modern();

/// A modern server core with a three-level hierarchy (L1/L2/L3), for
/// exercising depth-agnostic code paths and deeper-hierarchy studies.
MachineModel generic_modern_l3();

/// All presets, for parameterized tests and sweeps.
std::vector<MachineModel> all_presets();

}  // namespace bwc::machine
