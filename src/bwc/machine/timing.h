// The bandwidth-bound timing model.
//
// The paper's central claim is that "program performance is bounded by the
// limited rate at which data operands are delivered into CPU". The model
// here makes that bound the prediction: execution time is the largest of
// the compute time and the transfer time of every hierarchy boundary,
// because transfers at different levels (and computation) overlap on a
// machine with non-blocking caches and prefetching. Actual latency is then
// the inverse of consumed bandwidth, exactly the paper's framing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bwc/machine/machine_model.h"
#include "bwc/memsim/hierarchy.h"

namespace bwc::machine {

/// What a run of a program cost: flops plus bytes across every boundary.
struct ExecutionProfile {
  std::uint64_t flops = 0;
  std::vector<memsim::BoundaryTraffic> boundaries;

  /// Snapshot a hierarchy's counters together with a flop count.
  static ExecutionProfile capture(const memsim::MemoryHierarchy& h,
                                  std::uint64_t flops);

  /// Total bytes across the memory boundary (reads + writebacks).
  std::uint64_t memory_bytes() const;
  /// Total bytes across the register<->L1 boundary.
  std::uint64_t register_bytes() const;
};

/// Predicted time under the bandwidth-bound model, with the binding
/// resource identified.
struct TimePrediction {
  double total_s = 0.0;
  double compute_s = 0.0;
  /// Transfer time per boundary, same order as the profile.
  std::vector<double> boundary_s;
  /// "flops" or the boundary name (e.g. "Mem-L2") that binds.
  std::string binding_resource;
  /// Fraction of peak flop rate achievable = compute_s / total_s.
  double cpu_utilization() const {
    return total_s <= 0.0 ? 0.0 : compute_s / total_s;
  }
};

/// Evaluate the model: T = startup + max(flops / peak, bytes_b / bw_b).
/// The profile must have exactly one boundary per machine bandwidth.
TimePrediction predict_time(const ExecutionProfile& profile,
                            const MachineModel& machine);

/// Effective bandwidth as measured in the paper's Figure 3: the *program's*
/// memory transfer (useful bytes) divided by execution time, in MB/s. When
/// conflict misses inflate actual traffic above `useful_bytes`, effective
/// bandwidth drops below the machine's limit.
double effective_bandwidth_mbps(std::uint64_t useful_bytes, double seconds);

/// Memory-bandwidth utilization: actual memory traffic rate over the
/// machine's memory bandwidth (Section 2.3's "84% or higher" metric).
double memory_bandwidth_utilization(const ExecutionProfile& profile,
                                    const MachineModel& machine);

}  // namespace bwc::machine
