#include "bwc/machine/timing.h"

#include <algorithm>

#include "bwc/support/error.h"
#include "bwc/support/units.h"

namespace bwc::machine {

ExecutionProfile ExecutionProfile::capture(const memsim::MemoryHierarchy& h,
                                           std::uint64_t flops) {
  ExecutionProfile p;
  p.flops = flops;
  p.boundaries = h.boundaries();
  return p;
}

std::uint64_t ExecutionProfile::memory_bytes() const {
  BWC_CHECK(!boundaries.empty(), "profile has no boundaries");
  return boundaries.back().total();
}

std::uint64_t ExecutionProfile::register_bytes() const {
  BWC_CHECK(!boundaries.empty(), "profile has no boundaries");
  return boundaries.front().total();
}

TimePrediction predict_time(const ExecutionProfile& profile,
                            const MachineModel& machine) {
  machine.validate();
  BWC_CHECK(profile.boundaries.size() ==
                machine.boundary_bandwidth_mbps.size(),
            "profile boundaries must match machine hierarchy depth");

  // Multicore generalization (docs/MODEL.md section 7): flops and private
  // boundary traffic split evenly across the cores, so their rates scale
  // with core_count; shared boundaries are one bus whatever the core
  // count. T = max(F / (P*peak), B_private / (P*W), B_shared / W).
  TimePrediction t;
  t.compute_s = static_cast<double>(profile.flops) /
                (machine.aggregate_peak_mflops() * kMega);
  t.total_s = t.compute_s;
  t.binding_resource = "flops";

  t.boundary_s.reserve(profile.boundaries.size());
  for (std::size_t i = 0; i < profile.boundaries.size(); ++i) {
    const double bytes = static_cast<double>(profile.boundaries[i].total());
    const double seconds =
        bytes / (machine.aggregate_bandwidth_mbps(i) * kMega);
    t.boundary_s.push_back(seconds);
    if (seconds > t.total_s) {
      t.total_s = seconds;
      t.binding_resource = profile.boundaries[i].name;
    }
  }
  t.total_s += machine.startup_overhead_s;
  return t;
}

double effective_bandwidth_mbps(std::uint64_t useful_bytes, double seconds) {
  BWC_CHECK(seconds > 0.0, "time must be positive");
  return to_mb_per_s(static_cast<double>(useful_bytes), seconds);
}

double memory_bandwidth_utilization(const ExecutionProfile& profile,
                                    const MachineModel& machine) {
  const TimePrediction t = predict_time(profile, machine);
  if (t.total_s <= 0.0) return 0.0;
  const double rate =
      to_mb_per_s(static_cast<double>(profile.memory_bytes()), t.total_s);
  return rate / machine.memory_bandwidth_mbps();
}

}  // namespace bwc::machine
