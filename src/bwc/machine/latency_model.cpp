#include "bwc/machine/latency_model.h"

#include <algorithm>

#include "bwc/support/error.h"
#include "bwc/support/units.h"

namespace bwc::machine {

LatencyModel default_latency(const MachineModel& machine) {
  machine.validate();
  LatencyModel lm;
  // Derive a plausible cycle time from the peak flop rate (2 flops/cycle
  // on both period machines and the modern core's scalar pipes).
  const double cycle_s = 2.0 / (machine.peak_mflops * kMega);
  // Latency grows with distance from the core: ~10 cycles to the next
  // cache, ~80 cycles to memory, interpolating for middle levels.
  const std::size_t boundaries = machine.boundary_bandwidth_mbps.size();
  for (std::size_t b = 1; b < boundaries; ++b) {
    const bool last = b + 1 == boundaries;
    lm.miss_latency_s.push_back(cycle_s * (last ? 80.0 : 10.0 * b));
  }
  lm.overlap = 1.0;
  return lm;
}

std::vector<std::uint64_t> boundary_miss_counts(
    const MachineModel& machine, const ExecutionProfile& profile) {
  BWC_CHECK(profile.boundaries.size() ==
                machine.boundary_bandwidth_mbps.size(),
            "profile does not match machine hierarchy depth");
  std::vector<std::uint64_t> misses;
  // Boundary 0 is registers<->L1 (no miss latency); boundaries 1..n carry
  // line-granular transfers.
  for (std::size_t b = 1; b < profile.boundaries.size(); ++b) {
    const std::uint64_t line =
        machine.caches[b - 1].line_bytes;  // requests issued by cache b-1
    misses.push_back(profile.boundaries[b].total() / line);
  }
  return misses;
}

LatencyPrediction predict_time_with_latency(const ExecutionProfile& profile,
                                            const MachineModel& machine,
                                            const LatencyModel& latency) {
  BWC_CHECK(latency.overlap >= 1.0, "overlap depth must be at least 1");
  BWC_CHECK(latency.miss_latency_s.size() + 1 == profile.boundaries.size(),
            "latency model must cover every cache boundary");

  LatencyPrediction p;
  p.bandwidth_bound_s = predict_time(profile, machine).total_s;

  const auto misses = boundary_miss_counts(machine, profile);
  double serialized = 0.0;
  for (std::size_t b = 0; b < misses.size(); ++b) {
    serialized += static_cast<double>(misses[b]) * latency.miss_latency_s[b];
  }
  p.latency_term_s = serialized / latency.overlap;
  p.total_s = std::max(p.bandwidth_bound_s, p.latency_term_s);
  p.bandwidth_limited = p.bandwidth_bound_s >= p.latency_term_s;
  return p;
}

std::vector<LatencyPrediction> latency_tolerance_sweep(
    const ExecutionProfile& profile, const MachineModel& machine,
    const LatencyModel& latency, const std::vector<double>& overlaps) {
  std::vector<LatencyPrediction> out;
  out.reserve(overlaps.size());
  for (double k : overlaps) {
    LatencyModel lm = latency;
    lm.overlap = k;
    out.push_back(predict_time_with_latency(profile, machine, lm));
  }
  return out;
}

}  // namespace bwc::machine
