// Latency-tolerance model: the paper's Section 1 argument, quantified.
//
// "The advent of latency tolerance techniques such as non-blocking cache
// and software prefetching begins the process of trading bandwidth for
// latency by overlapping and pipelining memory transfers. Since actual
// latency is the inverse of the consumed bandwidth, memory latency cannot
// be fully tolerated without infinite bandwidth."
//
// This model adds a miss-latency term with a tunable overlap depth k
// (outstanding misses supported by the hardware / prefetch distance):
//
//   T(k) = max( bandwidth-bound time,  misses * latency / k ) + flop term
//
// k = 1 is a blocking cache (pure latency model); k -> infinity converges
// to the bandwidth bound -- beyond the bandwidth wall, more tolerance
// buys nothing. predict_time_with_latency exposes the sweep that the
// latency_wall bench plots.
#pragma once

#include <cstdint>
#include <vector>

#include "bwc/machine/machine_model.h"
#include "bwc/machine/timing.h"
#include "bwc/memsim/hierarchy.h"

namespace bwc::machine {

/// Miss latencies for one machine, per boundary (seconds per miss at that
/// boundary; index 0 = L1 miss serviced by L2, last = last-level miss
/// serviced by memory).
struct LatencyModel {
  std::vector<double> miss_latency_s;
  /// Maximum overlapped outstanding misses (non-blocking depth). 1 models
  /// a blocking cache; large values approach the pure bandwidth bound.
  double overlap = 1.0;
};

/// Period-plausible latencies for the presets (L2 hit ~ 10 cycles, memory
/// ~ 60-100 cycles on the R10K era parts).
LatencyModel default_latency(const MachineModel& machine);

/// Per-boundary miss counts extracted from a hierarchy profile. The
/// boundary-i miss count is the number of line requests level i sent to
/// level i+1 (fills + writebacks), i.e. total boundary bytes / line size.
std::vector<std::uint64_t> boundary_miss_counts(
    const MachineModel& machine, const ExecutionProfile& profile);

struct LatencyPrediction {
  double total_s = 0.0;
  double bandwidth_bound_s = 0.0;  // the floor no overlap can beat
  double latency_term_s = 0.0;     // serialized miss time / overlap
  /// True when the bandwidth bound, not latency, determines total_s:
  /// the program has hit the memory bandwidth wall.
  bool bandwidth_limited = false;
};

/// Evaluate T(k) for the profile under the machine + latency model.
LatencyPrediction predict_time_with_latency(const ExecutionProfile& profile,
                                            const MachineModel& machine,
                                            const LatencyModel& latency);

/// Sweep of overlap depths (e.g. {1,2,4,...}): the convergence curve of
/// latency tolerance toward the bandwidth wall.
std::vector<LatencyPrediction> latency_tolerance_sweep(
    const ExecutionProfile& profile, const MachineModel& machine,
    const LatencyModel& latency, const std::vector<double>& overlaps);

}  // namespace bwc::machine
