#include "bwc/core/optimizer.h"

#include <sstream>

#include "bwc/fusion/solvers.h"
#include "bwc/support/error.h"
#include "bwc/transform/fuse.h"
#include "bwc/transform/interchange.h"
#include "bwc/transform/storage_reduction.h"
#include "bwc/transform/scalar_replacement.h"
#include "bwc/transform/store_elimination.h"
#include "bwc/verify/verify.h"

namespace bwc::core {

namespace {

/// Post-pass enforcement of a verifier report: a violation aborts the
/// pipeline with the verifier's diagnostics; a skipped instance-level
/// check (event budget) and a certification both land in the log.
void enforce(const verify::Report& report, const std::string& pass,
             std::vector<std::string>* log) {
  if (!report.ok()) {
    throw Error("verification failed after " + pass + ":\n" + report.render());
  }
  if (report.skipped) {
    log->push_back("verify (" + pass + "): " + report.check +
                   " skipped: " + report.skip_reason);
  } else {
    log->push_back("verify (" + pass + "): " + report.check + " certified, " +
                   std::to_string(report.instances_checked) +
                   " instance(s) checked");
  }
}

}  // namespace

OptimizeResult optimize(const ir::Program& program,
                        const OptimizerOptions& options) {
  OptimizeResult result;
  result.program = program.clone();

  BWC_CHECK(options.cores >= 1, "optimizer target core count must be >= 1");
  if (options.cores > 1) {
    result.log.push_back("target: " + std::to_string(options.cores) +
                         " cores (minimizing shared-bus traffic)");
  }

  if (options.verify) {
    const verify::Report structure = verify::validate_structure(program);
    if (!structure.ok()) {
      throw Error("input program is structurally invalid:\n" +
                  structure.render());
    }
  }
  // Snapshot for the pass-pair checks; maintained only when verifying.
  ir::Program before;
  auto snapshot = [&] {
    if (options.verify) before = result.program.clone();
  };

  if (options.auto_interchange) {
    snapshot();
    transform::InterchangeResult ir = transform::auto_interchange(
        result.program);
    if (!ir.interchanged.empty()) {
      result.program = std::move(ir.program);
      result.log.push_back(
          "interchange: swapped " + std::to_string(ir.interchanged.size()) +
          " nest(s) to stride-1 order");
      if (options.verify) {
        enforce(verify::validate_translation(before, result.program,
                                             {options.verify_max_events}),
                "interchange", &result.log);
      }
    }
  }

  if (options.solver != FusionSolver::kNone) {
    fusion::FusionGraphOptions graph_options;
    graph_options.allow_shifted_fusion = options.allow_shifted_fusion;
    const fusion::FusionGraph graph =
        fusion::build_fusion_graph(result.program, graph_options);
    switch (options.solver) {
      case FusionSolver::kBest:
        result.plan = fusion::best_fusion(graph);
        break;
      case FusionSolver::kExact:
        result.plan = fusion::exact_enumeration(graph);
        break;
      case FusionSolver::kGreedy:
        result.plan = fusion::greedy_fusion(graph);
        break;
      case FusionSolver::kBisection:
        result.plan = fusion::recursive_bisection(graph);
        break;
      case FusionSolver::kEdgeWeighted:
        result.plan = fusion::edge_weighted_baseline(graph);
        break;
      case FusionSolver::kNone:
        break;
    }
    const fusion::FusionPlan unfused = fusion::no_fusion(graph);
    if (result.plan.num_partitions < graph.node_count()) {
      snapshot();
      result.program =
          transform::apply_fusion(result.program, graph, result.plan);
      std::ostringstream os;
      os << "fusion (" << result.plan.solver << "): " << graph.node_count()
         << " loops -> " << result.plan.num_partitions
         << " partitions; arrays loaded " << unfused.cost << " -> "
         << result.plan.cost;
      result.log.push_back(os.str());
      if (options.verify) {
        enforce(verify::validate_translation(before, result.program,
                                             {options.verify_max_events}),
                "fusion", &result.log);
      }
    } else {
      result.log.push_back("fusion: no profitable fusion found");
    }
  }

  if (options.reduce_storage) {
    snapshot();
    transform::StorageReductionResult sr =
        transform::reduce_storage(result.program);
    if (!sr.actions.empty()) {
      result.program = std::move(sr.program);
      for (const auto& a : sr.actions)
        result.log.push_back("storage reduction: " + a);
      std::ostringstream os;
      os << "storage reduction: referenced array bytes "
         << sr.referenced_bytes_before << " -> " << sr.referenced_bytes_after;
      result.log.push_back(os.str());
      if (options.verify) {
        enforce(verify::validate_storage_reduction(
                    before, result.program, {options.verify_max_events}),
                "storage reduction", &result.log);
      }
    } else {
      result.log.push_back("storage reduction: no candidate arrays");
    }
  }

  if (options.eliminate_stores) {
    snapshot();
    transform::StoreEliminationResult se =
        transform::eliminate_stores(result.program);
    if (!se.eliminated.empty()) {
      std::ostringstream os;
      os << "store elimination: removed writebacks to";
      for (ir::ArrayId a : se.eliminated)
        os << " " << se.program.array(a).name;
      result.program = std::move(se.program);
      result.log.push_back(os.str());
      if (options.verify) {
        enforce(verify::validate_store_elimination(
                    before, result.program, {options.verify_max_events}),
                "store elimination", &result.log);
      }
    } else {
      result.log.push_back("store elimination: no candidate arrays");
    }
  }

  if (options.scalar_replacement) {
    transform::ScalarReplacementResult sr =
        transform::replace_scalars(result.program);
    if (!sr.actions.empty()) {
      result.program = std::move(sr.program);
      for (const auto& a : sr.actions)
        result.log.push_back("scalar replacement: " + a);
      if (options.verify) {
        // Scalar replacement rewrites array reads into rotating scalars;
        // neither pair-check applies, but the result must stand on its own.
        enforce(verify::validate_structure(result.program),
                "scalar replacement", &result.log);
      }
    } else {
      result.log.push_back("scalar replacement: no stencil candidates");
    }
  }

  return result;
}

std::string render_log(const OptimizeResult& result) {
  std::ostringstream os;
  for (const auto& line : result.log) os << "  - " << line << "\n";
  return os.str();
}

}  // namespace bwc::core
