#include "bwc/core/optimizer.h"

#include <sstream>
#include <utility>

#include "bwc/pass/pass_manager.h"
#include "bwc/pass/passes.h"
#include "bwc/support/error.h"

namespace bwc::core {

namespace {

const char* solver_name(FusionSolver solver) {
  switch (solver) {
    case FusionSolver::kBest: return "best";
    case FusionSolver::kExact: return "exact";
    case FusionSolver::kGreedy: return "greedy";
    case FusionSolver::kBisection: return "bisection";
    case FusionSolver::kEdgeWeighted: return "edge-weighted";
    case FusionSolver::kNone: return "none";
  }
  return "best";
}

}  // namespace

std::string default_pipeline(const OptimizerOptions& options) {
  std::ostringstream os;
  const char* sep = "";
  if (options.auto_interchange) {
    os << sep << "interchange";
    sep = ",";
  }
  if (options.solver != FusionSolver::kNone) {
    os << sep << "fuse(solver=" << solver_name(options.solver);
    if (options.allow_shifted_fusion) os << ",shift=1";
    os << ")";
    sep = ",";
  }
  if (options.reduce_storage) {
    os << sep << "reduce-storage";
    sep = ",";
  }
  if (options.eliminate_stores) {
    os << sep << "eliminate-stores";
    sep = ",";
  }
  if (options.scalar_replacement) {
    os << sep << "scalar-replace";
    sep = ",";
  }
  return os.str();
}

OptimizeResult optimize(const ir::Program& program,
                        const OptimizerOptions& options) {
  BWC_CHECK(options.cores >= 1, "optimizer target core count must be >= 1");

  const std::string spec_text =
      options.passes.empty() ? default_pipeline(options) : options.passes;
  const pass::PipelineSpec spec = pass::parse_pipeline_spec(spec_text);

  pass::PipelineOptions pipeline_options;
  pipeline_options.verify = options.verify;
  pipeline_options.verify_max_events = options.verify_max_events;
  pipeline_options.static_verify = options.static_verify;
  pipeline_options.cache_analyses = options.cache_analyses;
  pipeline_options.audit_analyses = options.audit_analyses;
  pipeline_options.print_after = options.print_after;

  pass::PassManager manager(std::move(pipeline_options));
  manager.add(pass::build_pipeline(spec));

  OptimizeResult result;
  result.program = program.clone();
  result.cores = options.cores;
  result.pipeline = manager.run(result.program);

  // The applied fusion plan, for callers inspecting partition structure.
  for (const auto& pass : manager.passes()) {
    if (const auto* fuse = dynamic_cast<const pass::FusePass*>(pass.get()))
      result.plan = fuse->plan();
  }
  return result;
}

std::vector<std::string> OptimizeResult::log_lines() const {
  std::vector<std::string> lines;
  if (cores > 1) {
    lines.push_back("target: " + std::to_string(cores) +
                    " cores (minimizing shared-bus traffic)");
  }
  for (auto& line : pipeline.legacy_lines()) lines.push_back(std::move(line));
  return lines;
}

std::string render_log(const OptimizeResult& result) {
  std::ostringstream os;
  for (const auto& line : result.log_lines()) os << "  - " << line << "\n";
  return os.str();
}

}  // namespace bwc::core
