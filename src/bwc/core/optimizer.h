// BandwidthOptimizer: the paper's compiler strategy as one entry point.
//
// Pipeline (paper Section 3): bandwidth-minimal loop fusion organizes the
// global computation to minimize total memory transfer; storage reduction
// shrinks localized arrays; store elimination removes writebacks to arrays
// whose uses complete inside the fused loop.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bwc/fusion/fusion_graph.h"
#include "bwc/ir/program.h"

namespace bwc::core {

enum class FusionSolver {
  kBest,          // exact when small, best heuristic otherwise
  kExact,         // exact enumeration (throws beyond 12 loops)
  kGreedy,
  kBisection,     // recursive min-cut bisection
  kEdgeWeighted,  // prior-work baseline objective
  kNone,          // skip fusion
};

struct OptimizerOptions {
  FusionSolver solver = FusionSolver::kBest;
  bool reduce_storage = true;
  bool eliminate_stores = true;
  /// Fusion with alignment: allow fusing loops separated by a bounded
  /// forward dependence distance by delaying the consumer (kShifted).
  bool allow_shifted_fusion = false;
  /// Run the loop-interchange heuristic before fusion: 2-deep nests that
  /// traverse column-major data row-by-row are swapped to stride-1 order
  /// when legal.
  bool auto_interchange = false;
  /// After the bandwidth passes, keep stencil-reused array elements in
  /// rotating scalars (Callahan-Cocke-Kennedy register reuse): reduces
  /// register<->L1 traffic, the paper's second most critical resource.
  bool scalar_replacement = false;
  /// Re-check every pass's output with the independent verifier
  /// (bwc::verify): structural validation throughout, translation
  /// validation for the scheduling passes (interchange, fusion),
  /// observability certification for the storage passes. A violation
  /// raises bwc::Error carrying the verifier's diagnostics.
  bool verify = true;
  /// Per-program event budget for the instance-level checks; programs
  /// whose traces would exceed it degrade to structural validation only.
  std::uint64_t verify_max_events = 2'000'000;
  /// Core count the optimized program is intended to run at. The passes
  /// themselves are core-count independent (they minimize total shared
  /// traffic, which is what binds at scale -- docs/MODEL.md section 7);
  /// the value is recorded in the log and threaded to measurement by
  /// callers such as bwcopt --cores.
  int cores = 1;
};

struct OptimizeResult {
  ir::Program program;
  /// Plan actually applied (empty assignment when fusion was skipped).
  fusion::FusionPlan plan;
  /// Human-readable log of what each pass did.
  std::vector<std::string> log;
};

/// Run the bandwidth-reduction pipeline on a program.
OptimizeResult optimize(const ir::Program& program,
                        const OptimizerOptions& options = {});

/// Render the log as a bulleted block.
std::string render_log(const OptimizeResult& result);

}  // namespace bwc::core
