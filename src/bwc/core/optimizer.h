// core::optimize -- the paper's compiler strategy as one entry point, now
// a thin wrapper over the bwc::pass pipeline machinery.
//
// The option struct maps to a PipelineSpec (default_pipeline): bandwidth-
// minimal loop fusion organizes the global computation to minimize total
// memory transfer (paper Section 3), storage reduction shrinks localized
// arrays, store elimination removes writebacks to arrays whose uses
// complete inside the fused loop; interchange and scalar replacement are
// opt-in satellites. Callers wanting a non-default ordering set
// OptimizerOptions::passes to a spec string ("interchange,fuse(solver=
// exact),reduce-storage") -- see docs/PIPELINE.md for the grammar, the
// pass catalogue, and the PassReport/remark schema. Per-pass facts
// (timing, IR deltas, predicted traffic deltas, verifier outcomes,
// machine-readable remarks) live in OptimizeResult::pipeline; the
// human-readable log lines of the old free-form interface are derived
// from it by log_lines()/render_log, byte-identical to the pre-pass-
// manager output.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "bwc/fusion/fusion_graph.h"
#include "bwc/ir/program.h"
#include "bwc/pass/pass.h"
#include "bwc/pass/pipeline_spec.h"
#include "bwc/pass/report.h"

namespace bwc::core {

enum class FusionSolver {
  kBest,          // exact when small, best heuristic otherwise
  kExact,         // exact enumeration (throws beyond 12 loops)
  kGreedy,
  kBisection,     // recursive min-cut bisection
  kEdgeWeighted,  // prior-work baseline objective
  kNone,          // skip fusion
};

struct OptimizerOptions {
  /// Explicit pipeline spec ("fuse(solver=exact),reduce-storage", see
  /// docs/PIPELINE.md). When empty, the pipeline is derived from the
  /// flags below by default_pipeline(); when set, it wins and the
  /// per-pass flags (solver, reduce_storage, ...) are ignored.
  std::string passes;
  FusionSolver solver = FusionSolver::kBest;
  bool reduce_storage = true;
  bool eliminate_stores = true;
  /// Fusion with alignment: allow fusing loops separated by a bounded
  /// forward dependence distance by delaying the consumer (kShifted).
  bool allow_shifted_fusion = false;
  /// Run the loop-interchange heuristic before fusion: 2-deep nests that
  /// traverse column-major data row-by-row are swapped to stride-1 order
  /// when legal.
  bool auto_interchange = false;
  /// After the bandwidth passes, keep stencil-reused array elements in
  /// rotating scalars (Callahan-Cocke-Kennedy register reuse): reduces
  /// register<->L1 traffic, the paper's second most critical resource.
  bool scalar_replacement = false;
  /// Re-check every pass's output with the independent verifier
  /// (bwc::verify): structural validation throughout, translation
  /// validation for the scheduling passes (interchange, fusion),
  /// observability certification for the storage passes. A violation
  /// raises bwc::Error carrying the verifier's diagnostics.
  bool verify = true;
  /// Per-program event budget for the instance-level checks; programs
  /// whose traces would exceed it degrade to structural validation only.
  std::uint64_t verify_max_events = 2'000'000;
  /// Static-prover-first checking (pass::StaticVerifyMode): kOn consults
  /// the input-independent legality provers before replaying traces and
  /// skips the replay on a proof; kOff is trace-only; kOnly never replays
  /// (a static refutation fails, an unknown is reported as skipped).
  pass::StaticVerifyMode static_verify = pass::StaticVerifyMode::kOn;
  /// Serve repeated analysis queries (statement summaries, liveness,
  /// fusion graph, traffic bounds) from the pass::AnalysisManager cache.
  /// Off recomputes every query; results are identical either way.
  bool cache_analyses = true;
  /// Fingerprint every cache entry against the IR it was computed from
  /// and raise bwc::Error on a hit whose program has since changed -- a
  /// pass mutated the IR without declaring the invalidation. Debugging
  /// aid (bwcopt --audit-analyses); costs one ir::to_string per query.
  bool audit_analyses = false;
  /// When set, called with each pass and the program state after it ran
  /// (bwcopt --print-after-all).
  std::function<void(const pass::Pass&, const ir::Program&)> print_after;
  /// Core count the optimized program is intended to run at. The passes
  /// themselves are core-count independent (they minimize total shared
  /// traffic, which is what binds at scale -- docs/MODEL.md section 7);
  /// the value is recorded in the log and threaded to measurement by
  /// callers such as bwcopt --cores.
  int cores = 1;
};

struct OptimizeResult {
  ir::Program program;
  /// Plan actually applied (empty assignment when fusion was skipped).
  fusion::FusionPlan plan;
  /// Structured per-pass reports: remarks, timing, IR and predicted
  /// memory-traffic deltas, verifier outcomes, analysis-cache counters.
  pass::PipelineReport pipeline;
  /// Core count the run targeted (OptimizerOptions::cores).
  int cores = 1;

  /// The human-readable log: the multicore prelude line (cores > 1)
  /// followed by each pass's legacy lines, byte-identical to the old
  /// free-form `log` vector.
  std::vector<std::string> log_lines() const;
};

/// The PipelineSpec string the given options denote -- what optimize()
/// runs when options.passes is empty.
std::string default_pipeline(const OptimizerOptions& options = {});

/// Run the bandwidth-reduction pipeline on a program.
OptimizeResult optimize(const ir::Program& program,
                        const OptimizerOptions& options = {});

/// Render the log as a bulleted block.
std::string render_log(const OptimizeResult& result);

}  // namespace bwc::core
