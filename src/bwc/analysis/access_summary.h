// Per-loop access summaries: which arrays and scalars a top-level loop nest
// reads and writes, and with which affine subscripts. This is the raw
// material for fusion-graph construction, dependence testing and liveness.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "bwc/ir/program.h"

namespace bwc::analysis {

/// All subscript tuples with which one loop references one array.
struct ArrayAccess {
  ir::ArrayId array = ir::kInvalidArray;
  std::vector<std::vector<ir::Affine>> reads;
  std::vector<std::vector<ir::Affine>> writes;

  bool has_reads() const { return !reads.empty(); }
  bool has_writes() const { return !writes.empty(); }
};

/// How a loop touches one scalar.
struct ScalarAccess {
  bool read = false;
  bool written = false;
  /// Every write is of the reduction form s = s (+|min|max) expr with s not
  /// otherwise used in expr. Additive reductions of the same scalar may be
  /// fused without a fusion-preventing constraint.
  bool reduction_only = true;
  ir::BinOp reduction_op = ir::BinOp::kAdd;
};

/// Summary of one top-level loop nest.
struct LoopSummary {
  int top_index = -1;  // position in Program::top()
  /// Loop variables outer-to-inner along the leftmost nest spine.
  std::vector<std::string> loop_vars;
  std::vector<std::int64_t> lowers;  // per nest level
  std::vector<std::int64_t> uppers;
  /// True when the nest is "perfect enough": every loop level holds either
  /// exactly one inner loop or only non-loop statements.
  bool simple_nest = true;
  bool has_guards = false;

  std::map<ir::ArrayId, ArrayAccess> arrays;
  std::map<std::string, ScalarAccess> scalars;

  int depth() const { return static_cast<int>(loop_vars.size()); }
  std::int64_t trip_count() const;
  /// Arrays referenced at all (read or write).
  std::vector<ir::ArrayId> touched_arrays() const;
};

/// Summarize the loop at Program::top()[top_index] (must be a loop).
LoopSummary summarize_loop(const ir::Program& program, int top_index);

/// Summarize any top-level statement; non-loop statements yield a depth-0
/// summary containing just their accesses (used by liveness analysis).
LoopSummary summarize_statement(const ir::Program& program, int top_index);

/// Summaries of all top-level loops, in program order.
std::vector<LoopSummary> summarize_program(const ir::Program& program);

}  // namespace bwc::analysis
