// Layout-aware access-stride and line-traffic estimation.
//
// The static traffic lower bound (verify/traffic_bound.h) counts distinct
// bytes and is therefore layout-invariant: it cannot distinguish a
// row-major from a column-major sweep. This estimator models what the
// memory simulator will actually see for a given cache geometry -- byte
// strides under each array's declared ArrayLayout, line-granular sweep
// traffic, and set-mapping conflicts -- so the layout passes
// (transform/layout.h), the per-array PassReport breakdown, and the
// lint-conflict-stride diagnostic can all reason about layouts before
// paying for a simulation. Estimates are deterministic and comparative,
// not cycle-accurate: the quantity that matters is the delta between two
// layouts of the same program.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bwc/ir/program.h"

namespace bwc::analysis {

/// The cache geometry the estimator maps addresses onto. Defaults mirror
/// the memory simulator's L1 (memsim/cache_config.h: 32 KiB, 32-byte
/// lines, 2-way => 512 sets) and the executors' allocation walk
/// (runtime ExecOptions: base 1<<20, 4096-byte alignment).
struct LayoutGeometry {
  std::uint64_t line_bytes = 32;
  std::uint64_t sets = 512;
  std::uint64_t ways = 2;
  std::uint64_t base_address = 1 << 20;
  std::uint64_t alignment = 4096;

  /// Bytes covered by one way (the set-index period of the address map).
  std::uint64_t way_span() const { return sets * line_bytes; }
};

/// What the estimator derives about one declared array.
struct ArrayLayoutTraffic {
  ir::ArrayId array = ir::kInvalidArray;
  std::string name;
  /// Trip-weighted dynamic reference count across all top-level statements.
  std::int64_t accesses = 0;
  /// The access-weighted most common nonzero per-innermost-iteration byte
  /// stride under the declared layout; 0 when every access is loop-
  /// invariant in the innermost variable (or the array is unreferenced).
  std::int64_t dominant_stride_bytes = 0;
  /// Estimated line-granular bytes this array moves across the memory
  /// boundary (sweep-based; accounts for set-conflict thrashing).
  std::int64_t line_bytes_estimate = 0;
  /// Distinct cache sets a dominant-stride sweep cycles over; equal to
  /// `sets` for unit strides, collapsing for large power-of-two strides.
  std::int64_t distinct_sets = 0;
  /// Distinct lines one innermost sweep of the dominant access touches.
  std::int64_t sweep_lines = 0;
  /// Cache set of the array's base address ((base / line) mod sets):
  /// co-streamed arrays sharing a phase contend for the same sets.
  std::int64_t set_phase = 0;
  /// The dominant-stride sweep needs more lines than the sets it maps to
  /// can hold (sweep_lines > distinct_sets * ways with distinct_sets <
  /// sets): every revisit re-misses, the layout is set-conflict bound.
  bool conflict = false;
};

/// Whole-program estimate: one entry per declared array, in ArrayId order,
/// plus the line-traffic total.
struct LayoutTrafficEstimate {
  std::vector<ArrayLayoutTraffic> arrays;
  std::int64_t total_line_bytes = 0;

  const ArrayLayoutTraffic& of(ir::ArrayId id) const {
    return arrays[static_cast<std::size_t>(id)];
  }
};

/// Simulated base address of every array under its declared layout:
/// the same aligned owner-allocation walk the executors perform.
std::vector<std::uint64_t> simulate_base_addresses(const ir::Program& program,
                                                   const LayoutGeometry& g);

/// Estimate per-array strides, line traffic and set conflicts of `program`
/// under geometry `g`.
LayoutTrafficEstimate estimate_layout_traffic(const ir::Program& program,
                                              const LayoutGeometry& g = {});

}  // namespace bwc::analysis
