// Pairwise fusion legality between top-level loop nests.
//
// Builds the ingredients of the paper's fusion graph (Section 3.1.1):
//   - data-sharing (hyper-edge pins): arrays touched by both loops,
//   - dependence edges: an earlier loop produces data a later loop uses,
//   - fusion-preventing constraints: pairs that cannot legally be fused.
//
// Legality model. Fusing loops A (earlier) and B (later) runs A's body then
// B's body in each iteration of a common iteration space. For every element
// accessed by both (at least one side writing), let delta = I_B - I_A be
// the difference of the fused iteration vectors touching that element.
// Fusion is illegal when delta can be lexicographically negative: B would
// touch the element *before* A does, reversing the original order. Deltas
// are computed per nest level as integer intervals from the affine
// subscripts; anything non-affine degrades conservatively to "possibly
// negative".
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bwc/analysis/access_summary.h"

namespace bwc::analysis {

/// Structural relationship that makes two loops fusable.
enum class FusionCompat {
  kIdentical,     // same depth, same bounds at every level
  kOuterUnion,    // same depth and inner bounds; outer ranges differ ->
                  // fuse over the union range with guards
  kPromoteA,      // A is one level shallower; embed it at one iteration of
                  // B's outer loop
  kPromoteB,      // B is one level shallower; embed it at one iteration of
                  // A's outer loop
  kShifted,       // fusable after delaying B by PairAnalysis::min_shift
                  // iterations (loop alignment)
  kIncompatible,  // cannot be fused
};

/// The result of analyzing an ordered pair (A earlier than B).
struct PairAnalysis {
  FusionCompat compat = FusionCompat::kIncompatible;
  /// For kPromoteA/kPromoteB: the outer-loop value at which the shallow
  /// loop's body executes.
  std::int64_t promote_value = 0;
  /// For kShifted (and informative otherwise, when computed): the minimal
  /// shift of B relative to A that legalizes fusion; 0 = no shift needed.
  std::int64_t min_shift = 0;

  /// Arrays touched by both loops (the basis of hyper-edge pins).
  std::vector<ir::ArrayId> shared_arrays;
  /// True when A writes data B touches, or B writes data A touches
  /// (arrays or non-reduction scalars): an edge A -> B in the fusion graph.
  bool dependent = false;
  /// True when the pair cannot be legally fused (structurally incompatible
  /// or a dependence would be reversed): an undirected fusion-preventing
  /// edge in the fusion graph.
  bool fusion_preventing = false;
};

/// Analyze the ordered pair of loop summaries (a must precede b in program
/// order). Guarded bodies are handled conservatively (accesses assumed to
/// always happen).
PairAnalysis analyze_pair(const LoopSummary& a, const LoopSummary& b);

/// Fusion with alignment: the minimal iteration shift s >= 0 such that
/// running B's iteration i-s alongside A's iteration i preserves every
/// dependence (all fused deltas become lexicographically non-negative).
/// Defined for pairs of depth-1 loops with identical bounds whose scalar
/// interactions permit fusion. Returns:
///   - 0 when the pair already fuses unshifted,
///   - s > 0 when delaying B by s iterations legalizes fusion (e.g. B
///     reads a[i+1] produced by A: s = 1),
///   - nullopt when no bounded shift helps (opaque subscripts, scalar
///     conflicts, depth/bounds mismatch, or s would exceed max_shift).
std::optional<std::int64_t> min_fusion_shift(const LoopSummary& a,
                                             const LoopSummary& b,
                                             std::int64_t max_shift = 8);

/// Can the outer two levels of this nest be permuted (loop interchange)?
/// True when no dependence in the nest can have a distance vector with
/// positive outer and negative inner component -- the only vectors that
/// become lexicographically negative after swapping. Requires depth >= 2;
/// conservative on unanalyzable subscripts.
bool interchange_legal(const LoopSummary& s);

}  // namespace bwc::analysis
