#include "bwc/analysis/access_summary.h"

#include "bwc/support/error.h"

namespace bwc::analysis {

namespace {

using ir::Expr;
using ir::ExprKind;
using ir::Stmt;
using ir::StmtKind;
using ir::StmtList;

/// Does expression `e` reference scalar `name` anywhere?
bool expr_uses_scalar(const Expr& e, const std::string& name) {
  if (e.kind == ExprKind::kScalarRef && e.scalar == name) return true;
  for (const auto& child : e.operands) {
    if (expr_uses_scalar(*child, name)) return true;
  }
  return false;
}

/// Recognize s = s op rest (with s not referenced inside rest).
bool is_reduction(const Stmt& s, ir::BinOp* op_out) {
  BWC_ASSERT(s.kind == StmtKind::kScalarAssign, "expects scalar assign");
  const Expr& rhs = *s.rhs;
  if (rhs.kind != ExprKind::kBinary) return false;
  if (rhs.op != ir::BinOp::kAdd && rhs.op != ir::BinOp::kMin &&
      rhs.op != ir::BinOp::kMax)
    return false;
  const Expr& left = *rhs.operands[0];
  const Expr& right = *rhs.operands[1];
  if (left.kind == ExprKind::kScalarRef && left.scalar == s.lhs_scalar &&
      !expr_uses_scalar(right, s.lhs_scalar)) {
    *op_out = rhs.op;
    return true;
  }
  // Also accept s = expr + s for additive reductions.
  if (rhs.op == ir::BinOp::kAdd && right.kind == ExprKind::kScalarRef &&
      right.scalar == s.lhs_scalar && !expr_uses_scalar(left, s.lhs_scalar)) {
    *op_out = rhs.op;
    return true;
  }
  return false;
}

class Collector {
 public:
  explicit Collector(LoopSummary& summary) : summary_(summary) {}

  void collect_expr(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kArrayRef:
        summary_.arrays[e.array].array = e.array;
        summary_.arrays[e.array].reads.push_back(e.subscripts);
        break;
      case ExprKind::kScalarRef: {
        auto& sc = summary_.scalars[e.scalar];
        sc.read = true;
        break;
      }
      default:
        break;
    }
    for (const auto& child : e.operands) collect_expr(*child);
  }

  void collect_stmt(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::kArrayAssign:
        collect_expr(*s.rhs);
        summary_.arrays[s.lhs_array].array = s.lhs_array;
        summary_.arrays[s.lhs_array].writes.push_back(s.lhs_subscripts);
        break;
      case StmtKind::kScalarAssign: {
        ir::BinOp op = ir::BinOp::kAdd;
        const bool reduction = is_reduction(s, &op);
        if (reduction) {
          // Collect only the contributed operand; the self-reference of a
          // reduction is not an order-sensitive read.
          const Expr& rhs = *s.rhs;
          const Expr& left = *rhs.operands[0];
          const bool self_on_left =
              left.kind == ExprKind::kScalarRef && left.scalar == s.lhs_scalar;
          collect_expr(self_on_left ? *rhs.operands[1] : *rhs.operands[0]);
        } else {
          collect_expr(*s.rhs);
        }
        auto& sc = summary_.scalars[s.lhs_scalar];
        if (reduction) {
          if (sc.written && sc.reduction_only && sc.reduction_op != op) {
            sc.reduction_only = false;  // mixed reduction operators
          } else if (!sc.written) {
            sc.reduction_op = op;
          }
        } else {
          sc.reduction_only = false;
        }
        sc.written = true;
        break;
      }
      case StmtKind::kIf:
        summary_.has_guards = true;
        collect_body(s.then_body);
        collect_body(s.else_body);
        break;
      case StmtKind::kLoop:
        // Nested (non-spine) loop inside a body: still collect accesses.
        collect_body(s.loop->body);
        break;
    }
  }

  void collect_body(const StmtList& body) {
    for (const auto& s : body) collect_stmt(*s);
  }

 private:
  LoopSummary& summary_;
};

}  // namespace

std::int64_t LoopSummary::trip_count() const {
  std::int64_t n = 1;
  for (std::size_t d = 0; d < loop_vars.size(); ++d) {
    const std::int64_t t = uppers[d] >= lowers[d] ? uppers[d] - lowers[d] + 1 : 0;
    n *= t;
  }
  return n;
}

std::vector<ir::ArrayId> LoopSummary::touched_arrays() const {
  std::vector<ir::ArrayId> out;
  out.reserve(arrays.size());
  for (const auto& [id, access] : arrays) out.push_back(id);
  return out;
}

LoopSummary summarize_loop(const ir::Program& program, int top_index) {
  BWC_CHECK(top_index >= 0 &&
                top_index < static_cast<int>(program.top().size()),
            "top-level statement index out of range");
  const ir::Stmt& stmt = *program.top()[static_cast<std::size_t>(top_index)];
  BWC_CHECK(stmt.kind == ir::StmtKind::kLoop,
            "statement is not a loop");

  LoopSummary summary;
  summary.top_index = top_index;

  // Walk the leftmost spine of nested loops to record the nest structure.
  const ir::Stmt* cursor = &stmt;
  while (true) {
    const ir::Loop& loop = *cursor->loop;
    summary.loop_vars.push_back(loop.var);
    summary.lowers.push_back(loop.lower);
    summary.uppers.push_back(loop.upper);
    // Descend when the body is exactly one nested loop.
    if (loop.body.size() == 1 &&
        loop.body.front()->kind == ir::StmtKind::kLoop) {
      cursor = loop.body.front().get();
      continue;
    }
    // A body mixing loops and statements is not a simple nest.
    for (const auto& s : loop.body) {
      if (s->kind == ir::StmtKind::kLoop) summary.simple_nest = false;
    }
    Collector collector(summary);
    collector.collect_body(loop.body);
    break;
  }
  return summary;
}

LoopSummary summarize_statement(const ir::Program& program, int top_index) {
  BWC_CHECK(top_index >= 0 &&
                top_index < static_cast<int>(program.top().size()),
            "top-level statement index out of range");
  const ir::Stmt& stmt = *program.top()[static_cast<std::size_t>(top_index)];
  if (stmt.kind == ir::StmtKind::kLoop)
    return summarize_loop(program, top_index);
  LoopSummary summary;
  summary.top_index = top_index;
  Collector collector(summary);
  collector.collect_stmt(stmt);
  return summary;
}

std::vector<LoopSummary> summarize_program(const ir::Program& program) {
  std::vector<LoopSummary> result;
  for (int idx : program.top_loop_indices())
    result.push_back(summarize_loop(program, idx));
  return result;
}

}  // namespace bwc::analysis
