#include "bwc/analysis/dependence.h"

#include <algorithm>
#include <limits>

#include "bwc/support/error.h"

namespace bwc::analysis {

namespace {

constexpr std::int64_t kNegInf = std::numeric_limits<std::int64_t>::min() / 4;
constexpr std::int64_t kPosInf = std::numeric_limits<std::int64_t>::max() / 4;

/// Closed integer interval; empty when lo > hi.
struct Interval {
  std::int64_t lo = kNegInf;
  std::int64_t hi = kPosInf;
  bool empty() const { return lo > hi; }
  bool contains(std::int64_t v) const { return lo <= v && v <= hi; }
  Interval intersect(const Interval& o) const {
    return {std::max(lo, o.lo), std::min(hi, o.hi)};
  }
};

/// How the two loops' iteration spaces are aligned level by level.
struct Alignment {
  FusionCompat kind = FusionCompat::kIncompatible;
  int depth = 0;  // fused nest depth
  /// Level variables of A and B at each fused level; empty string when the
  /// promoted loop has no variable at that level.
  std::vector<std::string> a_vars, b_vars;
  /// Iteration ranges of each loop at each fused level (promoted loops get
  /// a singleton range at level 0).
  std::vector<Interval> a_ranges, b_ranges;
  std::int64_t promote_value = 0;
};

/// Build the alignment for a candidate structural relationship; nullopt
/// when the shapes do not match that relationship.
std::optional<Alignment> try_align(const LoopSummary& a, const LoopSummary& b,
                                   FusionCompat kind,
                                   std::int64_t promote_value = 0) {
  Alignment al;
  al.kind = kind;
  switch (kind) {
    case FusionCompat::kIdentical: {
      if (a.depth() != b.depth() || a.depth() == 0) return std::nullopt;
      if (a.lowers != b.lowers || a.uppers != b.uppers) return std::nullopt;
      al.depth = a.depth();
      for (int d = 0; d < al.depth; ++d) {
        al.a_vars.push_back(a.loop_vars[static_cast<std::size_t>(d)]);
        al.b_vars.push_back(b.loop_vars[static_cast<std::size_t>(d)]);
        al.a_ranges.push_back({a.lowers[static_cast<std::size_t>(d)],
                               a.uppers[static_cast<std::size_t>(d)]});
        al.b_ranges.push_back({b.lowers[static_cast<std::size_t>(d)],
                               b.uppers[static_cast<std::size_t>(d)]});
      }
      return al;
    }
    case FusionCompat::kOuterUnion: {
      if (a.depth() != b.depth() || a.depth() < 2) return std::nullopt;
      // Inner levels must match exactly; outer ranges differ.
      for (int d = 1; d < a.depth(); ++d) {
        if (a.lowers[static_cast<std::size_t>(d)] !=
                b.lowers[static_cast<std::size_t>(d)] ||
            a.uppers[static_cast<std::size_t>(d)] !=
                b.uppers[static_cast<std::size_t>(d)])
          return std::nullopt;
      }
      al.depth = a.depth();
      for (int d = 0; d < al.depth; ++d) {
        al.a_vars.push_back(a.loop_vars[static_cast<std::size_t>(d)]);
        al.b_vars.push_back(b.loop_vars[static_cast<std::size_t>(d)]);
        al.a_ranges.push_back({a.lowers[static_cast<std::size_t>(d)],
                               a.uppers[static_cast<std::size_t>(d)]});
        al.b_ranges.push_back({b.lowers[static_cast<std::size_t>(d)],
                               b.uppers[static_cast<std::size_t>(d)]});
      }
      return al;
    }
    case FusionCompat::kPromoteA:
    case FusionCompat::kPromoteB: {
      const LoopSummary& deep = kind == FusionCompat::kPromoteA ? b : a;
      const LoopSummary& shallow = kind == FusionCompat::kPromoteA ? a : b;
      if (deep.depth() != shallow.depth() + 1 || shallow.depth() < 1)
        return std::nullopt;
      // The shallow loop must match the deep loop's inner levels.
      for (int d = 0; d < shallow.depth(); ++d) {
        if (shallow.lowers[static_cast<std::size_t>(d)] !=
                deep.lowers[static_cast<std::size_t>(d + 1)] ||
            shallow.uppers[static_cast<std::size_t>(d)] !=
                deep.uppers[static_cast<std::size_t>(d + 1)])
          return std::nullopt;
      }
      al.depth = deep.depth();
      al.promote_value = promote_value;
      for (int d = 0; d < al.depth; ++d) {
        const Interval deep_range = {deep.lowers[static_cast<std::size_t>(d)],
                                     deep.uppers[static_cast<std::size_t>(d)]};
        std::string deep_var = deep.loop_vars[static_cast<std::size_t>(d)];
        std::string shallow_var =
            d == 0 ? std::string()
                   : shallow.loop_vars[static_cast<std::size_t>(d - 1)];
        const Interval shallow_range =
            d == 0 ? Interval{promote_value, promote_value} : deep_range;
        if (kind == FusionCompat::kPromoteA) {
          al.a_vars.push_back(shallow_var);
          al.b_vars.push_back(deep_var);
          al.a_ranges.push_back(shallow_range);
          al.b_ranges.push_back(deep_range);
        } else {
          al.a_vars.push_back(deep_var);
          al.b_vars.push_back(shallow_var);
          al.a_ranges.push_back(deep_range);
          al.b_ranges.push_back(shallow_range);
        }
      }
      return al;
    }
    case FusionCompat::kShifted:
    case FusionCompat::kIncompatible:
      return std::nullopt;
  }
  return std::nullopt;
}

/// Classification of one subscript: constant, var-at-level+offset, or other.
struct SubInfo {
  enum Kind { kConst, kLevelVar, kOpaque } kind = kOpaque;
  std::int64_t constant = 0;  // for kConst
  int level = -1;             // for kLevelVar
  std::int64_t offset = 0;    // for kLevelVar
};

SubInfo classify(const ir::Affine& sub, const std::vector<std::string>& vars) {
  SubInfo info;
  if (sub.is_constant()) {
    info.kind = SubInfo::kConst;
    info.constant = sub.constant_term();
    return info;
  }
  const auto var = sub.single_var();
  if (var.has_value() && sub.coeff(*var) == 1) {
    for (int d = 0; d < static_cast<int>(vars.size()); ++d) {
      if (vars[static_cast<std::size_t>(d)] == *var) {
        info.kind = SubInfo::kLevelVar;
        info.level = d;
        info.offset = sub.constant_term();
        return info;
      }
    }
  }
  info.kind = SubInfo::kOpaque;
  return info;
}

/// Per-level delta = I_B - I_A intervals for one reference pair; returns
/// nullopt when the pair provably touches disjoint elements, and sets
/// `opaque` when the subscripts defeat the analysis.
std::optional<std::vector<Interval>> pair_deltas(
    const std::vector<ir::Affine>& ref_a, const std::vector<ir::Affine>& ref_b,
    const Alignment& al, bool* opaque) {
  *opaque = false;
  if (ref_a.size() != ref_b.size()) {
    *opaque = true;
    return std::vector<Interval>();
  }

  // Start from the unconstrained deltas implied by the iteration ranges.
  std::vector<Interval> delta(static_cast<std::size_t>(al.depth));
  std::vector<Interval> a_iter(static_cast<std::size_t>(al.depth));
  std::vector<Interval> b_iter(static_cast<std::size_t>(al.depth));
  for (int d = 0; d < al.depth; ++d) {
    a_iter[static_cast<std::size_t>(d)] = al.a_ranges[static_cast<std::size_t>(d)];
    b_iter[static_cast<std::size_t>(d)] = al.b_ranges[static_cast<std::size_t>(d)];
  }

  for (std::size_t dim = 0; dim < ref_a.size(); ++dim) {
    const SubInfo sa = classify(ref_a[dim], al.a_vars);
    const SubInfo sb = classify(ref_b[dim], al.b_vars);
    if (sa.kind == SubInfo::kOpaque || sb.kind == SubInfo::kOpaque) {
      *opaque = true;
      return std::vector<Interval>();
    }
    if (sa.kind == SubInfo::kConst && sb.kind == SubInfo::kConst) {
      if (sa.constant != sb.constant) return std::nullopt;  // disjoint
      continue;
    }
    if (sa.kind == SubInfo::kLevelVar && sb.kind == SubInfo::kLevelVar) {
      if (sa.level != sb.level) {
        *opaque = true;  // cross-level coupling: give up
        return std::vector<Interval>();
      }
      // j_a + off_a == j_b + off_b  =>  delta = off_a - off_b, exactly.
      const std::int64_t d = sa.offset - sb.offset;
      const std::size_t lvl = static_cast<std::size_t>(sa.level);
      delta[lvl] = delta[lvl].intersect({d, d});
      if (delta[lvl].empty()) return std::nullopt;
      continue;
    }
    // Constant against level variable: pins one side's iteration value.
    if (sa.kind == SubInfo::kConst) {
      const std::size_t lvl = static_cast<std::size_t>(sb.level);
      const std::int64_t jb = sa.constant - sb.offset;
      b_iter[lvl] = b_iter[lvl].intersect({jb, jb});
      if (b_iter[lvl].empty()) return std::nullopt;
    } else {
      const std::size_t lvl = static_cast<std::size_t>(sa.level);
      const std::int64_t ja = sb.constant - sa.offset;
      a_iter[lvl] = a_iter[lvl].intersect({ja, ja});
      if (a_iter[lvl].empty()) return std::nullopt;
    }
  }

  // Fold iteration-range knowledge into the deltas.
  for (int d = 0; d < al.depth; ++d) {
    const std::size_t lvl = static_cast<std::size_t>(d);
    const Interval range_delta = {b_iter[lvl].lo - a_iter[lvl].hi,
                                  b_iter[lvl].hi - a_iter[lvl].lo};
    delta[lvl] = delta[lvl].intersect(range_delta);
    if (delta[lvl].empty()) return std::nullopt;
  }
  return delta;
}

/// Can the delta vector be lexicographically negative?
bool possibly_lex_negative(const std::vector<Interval>& delta) {
  bool prefix_zero_possible = true;
  for (const Interval& iv : delta) {
    if (prefix_zero_possible && iv.lo < 0) return true;
    prefix_zero_possible = prefix_zero_possible && iv.contains(0);
    if (!prefix_zero_possible) return false;
  }
  return false;
}

/// Does fusing under this alignment reverse any cross-loop dependence?
bool violates(const LoopSummary& a, const LoopSummary& b,
              const Alignment& al) {
  for (const auto& [array, access_a] : a.arrays) {
    const auto it = b.arrays.find(array);
    if (it == b.arrays.end()) continue;
    const ArrayAccess& access_b = it->second;

    auto check_pairs = [&al](const std::vector<std::vector<ir::Affine>>& refs_a,
                             const std::vector<std::vector<ir::Affine>>& refs_b)
        -> bool {
      for (const auto& ra : refs_a) {
        for (const auto& rb : refs_b) {
          bool opaque = false;
          const auto delta = pair_deltas(ra, rb, al, &opaque);
          if (opaque) return true;  // conservative
          if (!delta.has_value()) continue;  // disjoint elements
          if (possibly_lex_negative(*delta)) return true;
        }
      }
      return false;
    };

    // Flow (A writes, B reads), anti (A reads, B writes), output (both
    // write): all use the same lex-negative test.
    if (check_pairs(access_a.writes, access_b.reads)) return true;
    if (check_pairs(access_a.reads, access_b.writes)) return true;
    if (check_pairs(access_a.writes, access_b.writes)) return true;
  }
  return false;
}

/// Scalar interactions: returns {dependent, preventing}.
std::pair<bool, bool> scalar_relation(const LoopSummary& a,
                                      const LoopSummary& b) {
  bool dependent = false;
  bool preventing = false;
  for (const auto& [name, sa] : a.scalars) {
    const auto it = b.scalars.find(name);
    if (it == b.scalars.end()) continue;
    const ScalarAccess& sb = it->second;
    const bool a_writes = sa.written;
    const bool b_writes = sb.written;
    if (!a_writes && !b_writes) continue;  // read-read: no constraint
    dependent = true;
    // Matching additive reductions on both sides commute and may fuse.
    const bool both_reductions = a_writes && b_writes && sa.reduction_only &&
                                 sb.reduction_only && !sa.read && !sb.read &&
                                 sa.reduction_op == sb.reduction_op;
    if (both_reductions) continue;
    // Writer/reader or writer/writer in any other shape: interleaving the
    // iterations would expose partial values.
    preventing = true;
  }
  return {dependent, preventing};
}

}  // namespace

std::optional<std::int64_t> min_fusion_shift(const LoopSummary& a,
                                             const LoopSummary& b,
                                             std::int64_t max_shift) {
  if (a.depth() != 1 || b.depth() != 1) return std::nullopt;
  if (a.lowers != b.lowers || a.uppers != b.uppers) return std::nullopt;
  const auto [scalar_dep, scalar_prevent] = scalar_relation(a, b);
  (void)scalar_dep;
  if (scalar_prevent) return std::nullopt;

  const auto al = try_align(a, b, FusionCompat::kIdentical);
  if (!al.has_value()) return std::nullopt;

  // Shifting B later by s adds s to every delta; the minimal legal shift
  // is the largest -delta.lo over all dependence-carrying reference pairs.
  std::int64_t required = 0;
  for (const auto& [array, access_a] : a.arrays) {
    const auto it = b.arrays.find(array);
    if (it == b.arrays.end()) continue;
    const ArrayAccess& access_b = it->second;

    auto scan_pairs = [&](const std::vector<std::vector<ir::Affine>>& refs_a,
                          const std::vector<std::vector<ir::Affine>>& refs_b)
        -> bool {
      for (const auto& ra : refs_a) {
        for (const auto& rb : refs_b) {
          bool opaque = false;
          const auto delta = pair_deltas(ra, rb, *al, &opaque);
          if (opaque) return false;
          if (!delta.has_value()) continue;  // disjoint elements
          const Interval& iv = delta->front();
          if (iv.lo <= kNegInf / 2) return false;  // unbounded backwards
          required = std::max(required, -iv.lo);
        }
      }
      return true;
    };
    if (!scan_pairs(access_a.writes, access_b.reads)) return std::nullopt;
    if (!scan_pairs(access_a.reads, access_b.writes)) return std::nullopt;
    if (!scan_pairs(access_a.writes, access_b.writes)) return std::nullopt;
  }
  if (required > max_shift) return std::nullopt;
  return required;
}

bool interchange_legal(const LoopSummary& s) {
  if (s.depth() < 2) return false;
  const auto al = try_align(s, s, FusionCompat::kIdentical);
  if (!al.has_value()) return false;

  for (const auto& [array, access] : s.arrays) {
    if (!access.has_writes()) continue;
    auto check = [&](const std::vector<std::vector<ir::Affine>>& refs_a,
                     const std::vector<std::vector<ir::Affine>>& refs_b) {
      for (const auto& ra : refs_a) {
        for (const auto& rb : refs_b) {
          bool opaque = false;
          const auto delta = pair_deltas(ra, rb, *al, &opaque);
          if (opaque) return false;
          if (!delta.has_value()) continue;
          const Interval& outer = (*delta)[0];
          const Interval& inner = (*delta)[1];
          // A (+, -) distance vector flips lex-negative under interchange.
          if (outer.hi > 0 && inner.lo < 0) return false;
        }
      }
      return true;
    };
    if (!check(access.writes, access.reads)) return false;
    if (!check(access.reads, access.writes)) return false;
    if (!check(access.writes, access.writes)) return false;
  }
  return true;
}

PairAnalysis analyze_pair(const LoopSummary& a, const LoopSummary& b) {
  PairAnalysis result;

  // Shared arrays and array dependences.
  for (const auto& [array, access_a] : a.arrays) {
    const auto it = b.arrays.find(array);
    if (it == b.arrays.end()) continue;
    result.shared_arrays.push_back(array);
    if (access_a.has_writes() || it->second.has_writes())
      result.dependent = true;
  }

  const auto [scalar_dep, scalar_prevent] = scalar_relation(a, b);
  result.dependent = result.dependent || scalar_dep;

  // Try alignments from the most natural to the most contorted; take the
  // first one that does not reverse a dependence.
  std::vector<std::pair<FusionCompat, std::int64_t>> candidates = {
      {FusionCompat::kIdentical, 0},
      {FusionCompat::kOuterUnion, 0},
  };
  if (b.depth() == a.depth() - 1 && a.depth() >= 2) {
    candidates.push_back({FusionCompat::kPromoteB, a.uppers[0]});
    candidates.push_back({FusionCompat::kPromoteB, a.lowers[0]});
  }
  if (a.depth() == b.depth() - 1 && b.depth() >= 2) {
    // Try the last outer iteration first (matches the promote-to-last
    // choice used when multiple loops fuse into one group).
    candidates.push_back({FusionCompat::kPromoteA, b.uppers[0]});
    candidates.push_back({FusionCompat::kPromoteA, b.lowers[0]});
  }

  for (const auto& [kind, promote] : candidates) {
    const auto al = try_align(a, b, kind, promote);
    if (!al.has_value()) continue;
    if (scalar_prevent) break;  // scalars block fusion under any alignment
    if (violates(a, b, *al)) continue;
    result.compat = kind;
    result.promote_value = al->promote_value;
    break;
  }

  result.fusion_preventing = result.compat == FusionCompat::kIncompatible;
  return result;
}

}  // namespace bwc::analysis
