// Program-level array liveness.
//
// Store elimination (paper Section 3.3) needs to know, for every array,
// which top-level statement performs the *last* use: once all uses are
// completed inside one fused loop and the array is not a program output,
// its writebacks can be removed.
#pragma once

#include <vector>

#include "bwc/analysis/access_summary.h"
#include "bwc/ir/program.h"

namespace bwc::analysis {

struct ArrayLiveness {
  ir::ArrayId array = ir::kInvalidArray;
  /// Top-level statement indices that read / write the array, in order.
  std::vector<int> reading_stmts;
  std::vector<int> writing_stmts;
  /// The array is an observable program output.
  bool is_output = false;

  int first_access() const;
  int last_access() const;
  int last_read() const;
  int last_write() const;

  /// Dead after statement `top_index`: not an output and never accessed by
  /// any later top-level statement.
  bool dead_after(int top_index) const;

  /// The array's new values are never observable: it is not an output and
  /// no read ever follows a write (every read happens in or before the
  /// statement of the first write -- conservatively, statement-granular).
  bool stores_unobserved() const;
};

/// Liveness for every array of the program (indexed by ArrayId). When
/// `statement_summaries` is given it must hold one summarize_statement
/// result per top-level statement of `program` (pass::AnalysisManager
/// provides exactly that); liveness is then derived without re-walking
/// the IR.
std::vector<ArrayLiveness> analyze_liveness(
    const ir::Program& program,
    const std::vector<LoopSummary>* statement_summaries = nullptr);

}  // namespace bwc::analysis
