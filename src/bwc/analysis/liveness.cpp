#include "bwc/analysis/liveness.h"

#include <algorithm>

#include "bwc/analysis/access_summary.h"
#include "bwc/support/error.h"

namespace bwc::analysis {

namespace {
int back_or(const std::vector<int>& v, int fallback) {
  return v.empty() ? fallback : v.back();
}
}  // namespace

int ArrayLiveness::first_access() const {
  int first = -1;
  if (!reading_stmts.empty()) first = reading_stmts.front();
  if (!writing_stmts.empty()) {
    first = first < 0 ? writing_stmts.front()
                      : std::min(first, writing_stmts.front());
  }
  return first;
}

int ArrayLiveness::last_access() const {
  return std::max(back_or(reading_stmts, -1), back_or(writing_stmts, -1));
}

int ArrayLiveness::last_read() const { return back_or(reading_stmts, -1); }
int ArrayLiveness::last_write() const { return back_or(writing_stmts, -1); }

bool ArrayLiveness::dead_after(int top_index) const {
  return !is_output && last_access() <= top_index;
}

bool ArrayLiveness::stores_unobserved() const {
  if (is_output || writing_stmts.empty()) return false;
  // Statement-granular: no read in any statement *after* the last write,
  // and the last write's own statement may still read (same-iteration use).
  return last_read() <= last_write();
}

std::vector<ArrayLiveness> analyze_liveness(
    const ir::Program& program,
    const std::vector<LoopSummary>* statement_summaries) {
  BWC_CHECK(statement_summaries == nullptr ||
                statement_summaries->size() == program.top().size(),
            "statement summaries must cover every top-level statement");
  std::vector<ArrayLiveness> result(
      static_cast<std::size_t>(program.array_count()));
  for (int a = 0; a < program.array_count(); ++a) {
    result[static_cast<std::size_t>(a)].array = a;
    result[static_cast<std::size_t>(a)].is_output = program.is_output_array(a);
  }
  for (int i = 0; i < static_cast<int>(program.top().size()); ++i) {
    LoopSummary computed;
    if (statement_summaries == nullptr)
      computed = summarize_statement(program, i);
    const LoopSummary& summary =
        statement_summaries != nullptr
            ? (*statement_summaries)[static_cast<std::size_t>(i)]
            : computed;
    for (const auto& [array, access] : summary.arrays) {
      auto& live = result[static_cast<std::size_t>(array)];
      if (access.has_reads()) live.reading_stmts.push_back(i);
      if (access.has_writes()) live.writing_stmts.push_back(i);
    }
  }
  return result;
}

}  // namespace bwc::analysis
