#include "bwc/analysis/layout_traffic.h"

#include <algorithm>
#include <map>
#include <numeric>

#include "bwc/analysis/access_summary.h"
#include "bwc/support/error.h"

namespace bwc::analysis {

namespace {

/// Coefficient of `var` in an affine subscript (0 when absent).
std::int64_t coeff_of(const ir::Affine& a, const std::string& var) {
  std::int64_t c = 0;
  for (const auto& [name, coeff] : a.terms()) {
    if (name == var) c += coeff;
  }
  return c;
}

std::int64_t round_up(std::int64_t bytes, std::int64_t line) {
  return (bytes + line - 1) / line * line;
}

/// One array reference tuple inside one loop nest, reduced to what the
/// line-traffic model needs.
struct TupleStride {
  ir::ArrayId array = ir::kInvalidArray;
  ir::ArrayId stream_key = ir::kInvalidArray;  // allocation owner
  std::int64_t stride_bytes = 0;  // innermost per-iteration byte stride
  std::int64_t trips_total = 0;
  std::int64_t trip_inner = 0;
  int depth = 0;
  bool thrash = false;
};

}  // namespace

std::vector<std::uint64_t> simulate_base_addresses(const ir::Program& program,
                                                   const LayoutGeometry& g) {
  BWC_CHECK(g.alignment > 0 && (g.alignment & (g.alignment - 1)) == 0,
            "layout geometry alignment must be a power of two");
  std::uint64_t next = g.base_address;
  std::vector<std::uint64_t> alloc_base(
      static_cast<std::size_t>(program.array_count()), 0);
  std::vector<std::uint64_t> bases;
  bases.reserve(alloc_base.size());
  for (int a = 0; a < program.array_count(); ++a) {
    const ir::ArrayAddressing addressing = ir::resolve_addressing(program, a);
    if (addressing.owns_allocation) {
      next = (next + g.alignment - 1) / g.alignment * g.alignment;
      alloc_base[static_cast<std::size_t>(a)] = next;
      next += addressing.alloc_bytes;
    } else {
      alloc_base[static_cast<std::size_t>(a)] =
          alloc_base[static_cast<std::size_t>(addressing.owner)];
    }
    bases.push_back(alloc_base[static_cast<std::size_t>(a)] +
                    addressing.member_offset);
  }
  return bases;
}

LayoutTrafficEstimate estimate_layout_traffic(const ir::Program& program,
                                              const LayoutGeometry& g) {
  const auto line = static_cast<std::int64_t>(g.line_bytes);
  const auto sets = static_cast<std::int64_t>(g.sets);
  const auto ways = static_cast<std::int64_t>(g.ways);
  BWC_CHECK(line > 0 && sets > 0 && ways > 0,
            "layout geometry must be positive");

  LayoutTrafficEstimate est;
  est.arrays.resize(static_cast<std::size_t>(program.array_count()));
  const std::vector<std::uint64_t> bases =
      simulate_base_addresses(program, g);
  std::vector<std::int64_t> addr_scale(est.arrays.size(), 8);
  std::vector<ir::ArrayId> owner(est.arrays.size(), 0);
  for (int a = 0; a < program.array_count(); ++a) {
    const auto idx = static_cast<std::size_t>(a);
    const ir::ArrayAddressing addressing = ir::resolve_addressing(program, a);
    addr_scale[idx] = static_cast<std::int64_t>(addressing.addr_scale);
    owner[idx] = addressing.owner;
    est.arrays[idx].array = a;
    est.arrays[idx].name = program.array(a).name;
    est.arrays[idx].set_phase = static_cast<std::int64_t>(
        (bases[idx] / g.line_bytes) % g.sets);
  }

  // Access-weighted stride census per array, filled across all loops.
  std::vector<std::map<std::int64_t, std::int64_t>> stride_weight(
      est.arrays.size());

  for (int t = 0; t < static_cast<int>(program.top().size()); ++t) {
    const LoopSummary summary = summarize_statement(program, t);
    const int depth = summary.depth();
    const std::int64_t trips_total = depth > 0 ? summary.trip_count() : 1;
    if (trips_total <= 0) continue;
    std::int64_t trip_inner = 1;
    std::string inner_var;
    if (depth > 0) {
      trip_inner = std::max<std::int64_t>(
          0, summary.uppers.back() - summary.lowers.back() + 1);
      inner_var = summary.loop_vars.back();
    }
    if (trip_inner <= 0) continue;

    // Reduce every reference tuple to its innermost byte stride.
    std::vector<TupleStride> tuples;
    for (const auto& [id, access] : summary.arrays) {
      const auto idx = static_cast<std::size_t>(id);
      const ir::ArrayDecl& decl = program.array(id);
      const std::vector<std::int64_t> strides = decl.layout_strides();
      const auto reduce =
          [&](const std::vector<std::vector<ir::Affine>>& refs) {
            for (const auto& subs : refs) {
              TupleStride ts;
              ts.array = id;
              ts.stream_key = owner[idx];
              ts.trips_total = trips_total;
              ts.trip_inner = trip_inner;
              ts.depth = depth;
              if (!inner_var.empty() && subs.size() == strides.size()) {
                std::int64_t slots = 0;
                for (std::size_t d = 0; d < subs.size(); ++d)
                  slots += coeff_of(subs[d], inner_var) * strides[d];
                ts.stride_bytes = slots * addr_scale[idx];
              }
              tuples.push_back(ts);
              est.arrays[idx].accesses += trips_total;
              if (ts.stride_bytes != 0)
                stride_weight[idx][std::llabs(ts.stride_bytes)] += trips_total;
            }
          };
      reduce(access.reads);
      reduce(access.writes);
    }

    // Thrash rule 1 -- set collapse: a large power-of-two stride cycles
    // over few sets; when an outer loop would reuse the sweep's lines but
    // they exceed what those sets can cache, every revisit re-misses.
    for (TupleStride& ts : tuples) {
      const std::int64_t mag = std::llabs(ts.stride_bytes);
      if (ts.depth < 2 || mag < line) continue;
      const std::int64_t sweep_lines = ts.trip_inner;
      std::int64_t ds = sets;
      if (mag % line == 0) ds = sets / std::gcd(sets, mag / line);
      if (ds < sets && sweep_lines > ds * ways) ts.thrash = true;
    }

    // Thrash rule 2 -- same-phase co-streaming: more concurrent streams
    // landing on one set phase than the cache has ways. Interleaved group
    // members advance through one allocation and count as one stream.
    std::map<std::int64_t, std::vector<ir::ArrayId>> phase_streams;
    for (const TupleStride& ts : tuples) {
      const std::int64_t mag = std::llabs(ts.stride_bytes);
      if (mag == 0 || mag >= line) continue;  // dense streams only
      auto& streams =
          phase_streams[est.arrays[static_cast<std::size_t>(ts.array)]
                            .set_phase];
      if (std::find(streams.begin(), streams.end(), ts.stream_key) ==
          streams.end())
        streams.push_back(ts.stream_key);
    }
    for (TupleStride& ts : tuples) {
      const std::int64_t mag = std::llabs(ts.stride_bytes);
      if (mag == 0 || mag >= line) continue;
      const auto it = phase_streams.find(
          est.arrays[static_cast<std::size_t>(ts.array)].set_phase);
      if (it != phase_streams.end() &&
          static_cast<std::int64_t>(it->second.size()) > ways)
        ts.thrash = true;
    }

    // Charge the traffic model.
    for (const TupleStride& ts : tuples) {
      const auto idx = static_cast<std::size_t>(ts.array);
      const auto elem =
          static_cast<std::int64_t>(program.array(ts.array).elem_bytes);
      std::int64_t bytes = 0;
      if (ts.thrash) {
        bytes = ts.trips_total * line;  // every access fetches a line
      } else if (ts.stride_bytes == 0) {
        bytes = line;  // loop-invariant element: one line, cached after
      } else {
        // Conflict-free: each distinct element's line crosses once.
        bytes = round_up(ts.trips_total * elem, line);
      }
      est.arrays[idx].line_bytes_estimate += bytes;
      est.total_line_bytes += bytes;
      if (ts.thrash) est.arrays[idx].conflict = true;
      const std::int64_t mag = std::llabs(ts.stride_bytes);
      if (mag >= line)
        est.arrays[idx].sweep_lines =
            std::max(est.arrays[idx].sweep_lines, ts.trip_inner);
    }
  }

  // Dominant stride and its set mapping, per array.
  for (auto& a : est.arrays) {
    const auto& census = stride_weight[static_cast<std::size_t>(a.array)];
    std::int64_t best_weight = 0;
    for (const auto& [mag, weight] : census) {
      if (weight > best_weight) {
        best_weight = weight;
        a.dominant_stride_bytes = mag;
      }
    }
    if (a.dominant_stride_bytes == 0) continue;
    const std::int64_t mag = a.dominant_stride_bytes;
    if (mag >= line && mag % line == 0) {
      a.distinct_sets = sets / std::gcd(sets, mag / line);
    } else {
      a.distinct_sets = sets;
    }
  }
  return est;
}

}  // namespace bwc::analysis
