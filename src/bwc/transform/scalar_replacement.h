// Scalar replacement: register reuse for array references (Callahan,
// Cocke & Kennedy, the paper's reference [2]).
//
// The paper's balance study finds register bandwidth "the second most
// critical resource after memory bandwidth"; [2] restores register balance
// by keeping reused array elements in registers. This pass implements the
// classic stencil form for depth-1 loops:
//
//   for i                          r0 = a[lo-1]; r1 = a[lo]   (prologue)
//     .. a[i-1] .. a[i] ..   ->    for i
//     .. a[i+1] ..                   r2 = a[i+1]              (one load)
//                                    .. r0 .. r1 .. r2 ..
//                                    r0 = r1; r1 = r2         (rotate)
//
// k+1 distinct offsets cost one load per iteration instead of k+1;
// duplicate reads of the same element (CSE) come along for free. Applied
// only where it is trivially safe: the array is not written in the loop,
// every read uses the loop variable with unit coefficient and a constant
// offset, and no reference sits under a guard (a hoisted load must not
// evaluate a subscript the guard was protecting).
#pragma once

#include <string>
#include <vector>

#include "bwc/ir/program.h"

namespace bwc::transform {

struct ScalarReplacementResult {
  ir::Program program;
  /// Static loads removed per loop iteration, summed over loops.
  int loads_removed = 0;
  std::vector<std::string> actions;
};

/// Apply scalar replacement to every eligible (array, top-level depth-1
/// loop) pair.
ScalarReplacementResult replace_scalars(const ir::Program& program);

}  // namespace bwc::transform
