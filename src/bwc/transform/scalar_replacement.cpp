#include "bwc/transform/scalar_replacement.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>

#include "bwc/analysis/access_summary.h"
#include "bwc/support/error.h"
#include "bwc/transform/rewrite.h"

namespace bwc::transform {

namespace {

using ir::Affine;
using ir::ArrayId;
using ir::Expr;
using ir::ExprKind;
using ir::Program;
using ir::Stmt;
using ir::StmtKind;
using ir::StmtList;

/// The plan for one array in one loop: the sorted distinct offsets of its
/// reads (a[i + offset]).
struct ArrayPlan {
  ArrayId array = ir::kInvalidArray;
  std::vector<std::int64_t> offsets;  // sorted ascending
  std::vector<std::string> temps;     // one per offset
};

/// Collect the read offsets of `array` in the (flat, guard-free) body of a
/// depth-1 loop over `var`; nullopt when any reference disqualifies it.
std::optional<std::vector<std::int64_t>> read_offsets(
    const StmtList& body, ArrayId array, const std::string& var) {
  std::set<std::int64_t> offsets;
  bool ok = true;

  std::function<void(const Expr&)> scan = [&](const Expr& e) {
    if (e.kind == ExprKind::kArrayRef && e.array == array) {
      if (e.subscripts.size() != 1) {
        ok = false;
        return;
      }
      const Affine& sub = e.subscripts[0];
      if (sub.coeff(var) != 1 || sub.terms().size() != 1) {
        ok = false;
        return;
      }
      offsets.insert(sub.constant_term());
    }
    for (const auto& child : e.operands) scan(*child);
  };

  for (const auto& s : body) {
    switch (s->kind) {
      case StmtKind::kArrayAssign:
        if (s->lhs_array == array) ok = false;  // written: skip
        scan(*s->rhs);
        break;
      case StmtKind::kScalarAssign:
        scan(*s->rhs);
        break;
      case StmtKind::kIf:
      case StmtKind::kLoop: {
        // Any reference under a guard or inner loop disqualifies.
        bool referenced = false;
        std::function<void(const Stmt&)> find = [&](const Stmt& inner) {
          if (inner.kind == StmtKind::kArrayAssign &&
              inner.lhs_array == array)
            referenced = true;
          if (inner.rhs) {
            std::function<void(const Expr&)> walk = [&](const Expr& e) {
              if (e.kind == ExprKind::kArrayRef && e.array == array)
                referenced = true;
              for (const auto& c : e.operands) walk(*c);
            };
            walk(*inner.rhs);
          }
          for (const auto& t : inner.then_body) find(*t);
          for (const auto& t : inner.else_body) find(*t);
          if (inner.loop) {
            for (const auto& t : inner.loop->body) find(*t);
          }
        };
        find(*s);
        if (referenced) ok = false;
        break;
      }
    }
    if (!ok) return std::nullopt;
  }
  if (offsets.empty()) return std::nullopt;
  return std::vector<std::int64_t>(offsets.begin(), offsets.end());
}

}  // namespace

ScalarReplacementResult replace_scalars(const Program& program) {
  ScalarReplacementResult result;
  result.program = program.clone();
  Program& p = result.program;

  std::vector<std::string> scalar_names(p.scalars());
  std::vector<ir::StmtPtr> new_top;

  for (auto& stmt : p.top()) {
    if (stmt->kind != StmtKind::kLoop || !stmt->loop ||
        stmt->loop->trip_count() <= 1) {
      new_top.push_back(std::move(stmt));
      continue;
    }
    // Depth-1 only: a flat body with no nested loops.
    bool flat = true;
    for (const auto& s : stmt->loop->body) {
      if (s->kind == StmtKind::kLoop) flat = false;
    }
    if (!flat) {
      new_top.push_back(std::move(stmt));
      continue;
    }
    const std::string var = stmt->loop->var;
    const std::int64_t lo = stmt->loop->lower;

    // Candidate arrays: read-only in this body with >= 2 distinct offsets
    // (or a duplicated single offset would also profit, but the win there
    // is marginal; require a real stencil).
    std::set<ArrayId> touched;
    for_each_expr(stmt->loop->body, [&](Expr& e) {
      if (e.kind == ExprKind::kArrayRef) touched.insert(e.array);
    });
    for (const auto& s : stmt->loop->body) {
      if (s->kind == StmtKind::kArrayAssign) touched.insert(s->lhs_array);
    }

    std::vector<ArrayPlan> plans;
    for (ArrayId a : touched) {
      const auto reads = read_offsets(stmt->loop->body, a, var);
      if (!reads.has_value() || reads->size() < 2) continue;
      // The rotation shifts each temp by exactly one iteration, so the
      // plan carries *every* offset in the read span (gaps become
      // pass-through temps -- register moves, no memory traffic).
      const std::int64_t lo_off = reads->front();
      const std::int64_t hi_off = reads->back();
      if (hi_off - lo_off > 8) continue;  // unreasonable register pressure
      ArrayPlan plan;
      plan.array = a;
      for (std::int64_t o = lo_off; o <= hi_off; ++o)
        plan.offsets.push_back(o);
      for (std::size_t m = 0; m < plan.offsets.size(); ++m) {
        const std::string temp = fresh_name(
            p.array(a).name + "_r" + std::to_string(m), scalar_names);
        plan.temps.push_back(temp);
        scalar_names.push_back(temp);
      }
      result.loads_removed += static_cast<int>(reads->size()) - 1;
      plans.push_back(std::move(plan));
    }
    if (plans.empty()) {
      new_top.push_back(std::move(stmt));
      continue;
    }

    for (const auto& plan : plans) {
      for (const auto& t : plan.temps) p.add_scalar(t);
      const std::size_t k = plan.offsets.size();

      // Prologue: load all but the newest offset at the first iteration.
      for (std::size_t m = 0; m + 1 < k; ++m) {
        new_top.push_back(ir::make_scalar_assign(
            plan.temps[m],
            ir::make_array_ref(plan.array,
                               {Affine::constant(lo + plan.offsets[m])})));
      }

      StmtList& body = stmt->loop->body;
      // In-body: replace reads with temps...
      replace_exprs(
          body,
          [&](const Expr& e) {
            return e.kind == ExprKind::kArrayRef && e.array == plan.array;
          },
          [&](const Expr& e) {
            const std::int64_t off = e.subscripts[0].constant_term();
            const auto it = std::lower_bound(plan.offsets.begin(),
                                             plan.offsets.end(), off);
            BWC_ASSERT(it != plan.offsets.end() && *it == off,
                       "offset vanished between planning and rewrite");
            return ir::make_scalar(plan.temps[static_cast<std::size_t>(
                it - plan.offsets.begin())]);
          });
      // ...load the newest element first...
      body.insert(body.begin(),
                  ir::make_scalar_assign(
                      plan.temps[k - 1],
                      ir::make_array_ref(
                          plan.array,
                          {Affine::var(var) + plan.offsets[k - 1]})));
      // ...and rotate at the end of the iteration.
      for (std::size_t m = 0; m + 1 < k; ++m) {
        body.push_back(ir::make_scalar_assign(
            plan.temps[m], ir::make_scalar(plan.temps[m + 1])));
      }

      result.actions.push_back(
          "kept " + std::to_string(k) + " elements of " +
          p.array(plan.array).name + " in rotating scalars");
    }
    new_top.push_back(std::move(stmt));
  }

  p.top() = std::move(new_top);
  if (!result.actions.empty())
    p.set_name(program.name() + " (scalar-replaced)");
  return result;
}

}  // namespace bwc::transform
