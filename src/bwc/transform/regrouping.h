// Inter-array data regrouping (Ding & Kennedy's companion transformation,
// referenced in the paper's Section 4: the compiler strategy "maximizes
// global spatial reuse through inter-array data regrouping").
//
// Arrays that are always accessed together are interleaved element-wise
// into one array: A[i], B[i] -> G[2i-1], G[2i]. The transformation is a
// pure layout change (always semantics-preserving for non-output arrays);
// it pays off when co-accessed streams would otherwise fight for cache
// sets -- on a direct-mapped cache it collapses k conflicting streams
// into one, eliminating the Figure 3 3w6r pathology.
#pragma once

#include <string>
#include <vector>

#include "bwc/ir/program.h"

namespace bwc::transform {

/// Groups of arrays that are candidates for regrouping: same extents and
/// element size, none an output, and all accessed by exactly the same set
/// of top-level statements (the "always accessed together" heuristic).
/// Each returned group has at least two members.
std::vector<std::vector<ir::ArrayId>> regrouping_candidates(
    const ir::Program& program);

struct RegroupingResult {
  ir::Program program;
  /// One line per group actually regrouped.
  std::vector<std::string> actions;
};

/// Interleave each given group into a fresh array. Throws bwc::Error when
/// a group is malformed (mismatched shapes, an output array, fewer than
/// two members). Groups must be disjoint.
RegroupingResult regroup_arrays(
    const ir::Program& program,
    const std::vector<std::vector<ir::ArrayId>>& groups);

/// Convenience: regroup all candidate groups.
RegroupingResult regroup_all(const ir::Program& program);

}  // namespace bwc::transform
