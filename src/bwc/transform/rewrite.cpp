#include "bwc/transform/rewrite.h"

#include <algorithm>

#include "bwc/support/error.h"

namespace bwc::transform {

namespace {

ir::Affine rename_affine(const ir::Affine& a,
                         const std::map<std::string, std::string>& renames) {
  ir::Affine out = a;
  for (const auto& [from, to] : renames) out = out.renamed(from, to);
  return out;
}

void rename_expr(ir::Expr& e,
                 const std::map<std::string, std::string>& renames) {
  if (e.kind == ir::ExprKind::kLoopVar) {
    const auto it = renames.find(e.loop_var);
    if (it != renames.end()) e.loop_var = it->second;
  }
  for (auto& sub : e.subscripts) sub = rename_affine(sub, renames);
  for (auto& child : e.operands) rename_expr(*child, renames);
}

void rename_stmt(ir::Stmt& s,
                 const std::map<std::string, std::string>& renames) {
  switch (s.kind) {
    case ir::StmtKind::kArrayAssign:
      for (auto& sub : s.lhs_subscripts) sub = rename_affine(sub, renames);
      rename_expr(*s.rhs, renames);
      break;
    case ir::StmtKind::kScalarAssign:
      rename_expr(*s.rhs, renames);
      break;
    case ir::StmtKind::kIf:
      s.cmp_lhs = rename_affine(s.cmp_lhs, renames);
      s.cmp_rhs = rename_affine(s.cmp_rhs, renames);
      rename_loop_vars(s.then_body, renames);
      rename_loop_vars(s.else_body, renames);
      break;
    case ir::StmtKind::kLoop: {
      const auto it = renames.find(s.loop->var);
      if (it != renames.end()) s.loop->var = it->second;
      rename_loop_vars(s.loop->body, renames);
      break;
    }
  }
}

}  // namespace

void rename_loop_vars(ir::StmtList& body,
                      const std::map<std::string, std::string>& renames) {
  for (auto& s : body) rename_stmt(*s, renames);
}

void for_each_expr(ir::Stmt& stmt,
                   const std::function<void(ir::Expr&)>& fn) {
  std::function<void(ir::Expr&)> walk = [&](ir::Expr& e) {
    fn(e);
    for (auto& child : e.operands) walk(*child);
  };
  switch (stmt.kind) {
    case ir::StmtKind::kArrayAssign:
    case ir::StmtKind::kScalarAssign:
      walk(*stmt.rhs);
      break;
    case ir::StmtKind::kIf:
      for_each_expr(stmt.then_body, fn);
      for_each_expr(stmt.else_body, fn);
      break;
    case ir::StmtKind::kLoop:
      for_each_expr(stmt.loop->body, fn);
      break;
  }
}

void for_each_expr(ir::StmtList& body,
                   const std::function<void(ir::Expr&)>& fn) {
  for (auto& s : body) for_each_expr(*s, fn);
}

void for_each_stmt(ir::StmtList& body,
                   const std::function<void(ir::Stmt&)>& fn) {
  for (auto& s : body) {
    fn(*s);
    switch (s->kind) {
      case ir::StmtKind::kIf:
        for_each_stmt(s->then_body, fn);
        for_each_stmt(s->else_body, fn);
        break;
      case ir::StmtKind::kLoop:
        for_each_stmt(s->loop->body, fn);
        break;
      default:
        break;
    }
  }
}

namespace {

void replace_in_expr(ir::ExprPtr& slot,
                     const std::function<bool(const ir::Expr&)>& pred,
                     const std::function<ir::ExprPtr(const ir::Expr&)>& make) {
  if (pred(*slot)) {
    slot = make(*slot);
    return;  // do not descend into the replacement
  }
  for (auto& child : slot->operands) replace_in_expr(child, pred, make);
}

void replace_in_stmt(ir::Stmt& s,
                     const std::function<bool(const ir::Expr&)>& pred,
                     const std::function<ir::ExprPtr(const ir::Expr&)>& make) {
  switch (s.kind) {
    case ir::StmtKind::kArrayAssign:
    case ir::StmtKind::kScalarAssign:
      replace_in_expr(s.rhs, pred, make);
      break;
    case ir::StmtKind::kIf:
      replace_exprs(s.then_body, pred, make);
      replace_exprs(s.else_body, pred, make);
      break;
    case ir::StmtKind::kLoop:
      replace_exprs(s.loop->body, pred, make);
      break;
  }
}

}  // namespace

void replace_exprs(ir::StmtList& body,
                   const std::function<bool(const ir::Expr&)>& pred,
                   const std::function<ir::ExprPtr(const ir::Expr&)>& make) {
  for (auto& s : body) replace_in_stmt(*s, pred, make);
}

namespace {

/// Build the expression tree equivalent of an affine: c0 + sum(ci * vi).
ir::ExprPtr affine_to_expr(const ir::Affine& a) {
  ir::ExprPtr expr;
  for (const auto& [name, coeff] : a.terms()) {
    ir::ExprPtr term = ir::make_loop_var(name);
    if (coeff != 1) {
      term = ir::make_binary(ir::BinOp::kMul,
                             ir::make_const(static_cast<double>(coeff)),
                             std::move(term));
    }
    expr = expr ? ir::make_binary(ir::BinOp::kAdd, std::move(expr),
                                  std::move(term))
                : std::move(term);
  }
  if (a.constant_term() != 0 || !expr) {
    ir::ExprPtr c =
        ir::make_const(static_cast<double>(a.constant_term()));
    expr = expr ? ir::make_binary(ir::BinOp::kAdd, std::move(expr),
                                  std::move(c))
                : std::move(c);
  }
  return expr;
}

void substitute_in_stmt(ir::Stmt& s, const std::string& var,
                        const ir::Affine& replacement);

void substitute_expr_slot(ir::ExprPtr& slot, const std::string& var,
                          const ir::Affine& replacement) {
  if (slot->kind == ir::ExprKind::kLoopVar && slot->loop_var == var) {
    slot = affine_to_expr(replacement);
    return;
  }
  for (auto& sub : slot->subscripts)
    sub = sub.substituted(var, replacement);
  for (auto& child : slot->operands)
    substitute_expr_slot(child, var, replacement);
}

void substitute_in_list(ir::StmtList& body, const std::string& var,
                        const ir::Affine& replacement) {
  for (auto& s : body) substitute_in_stmt(*s, var, replacement);
}

void substitute_in_stmt(ir::Stmt& s, const std::string& var,
                        const ir::Affine& replacement) {
  switch (s.kind) {
    case ir::StmtKind::kArrayAssign:
      for (auto& sub : s.lhs_subscripts)
        sub = sub.substituted(var, replacement);
      substitute_expr_slot(s.rhs, var, replacement);
      break;
    case ir::StmtKind::kScalarAssign:
      substitute_expr_slot(s.rhs, var, replacement);
      break;
    case ir::StmtKind::kIf:
      s.cmp_lhs = s.cmp_lhs.substituted(var, replacement);
      s.cmp_rhs = s.cmp_rhs.substituted(var, replacement);
      substitute_in_list(s.then_body, var, replacement);
      substitute_in_list(s.else_body, var, replacement);
      break;
    case ir::StmtKind::kLoop:
      if (s.loop->var == var) return;  // shadowed
      substitute_in_list(s.loop->body, var, replacement);
      break;
  }
}

}  // namespace

void substitute_loop_var(ir::StmtList& body, const std::string& var,
                         const ir::Affine& replacement) {
  substitute_in_list(body, var, replacement);
}

void collect_loop_vars(const ir::StmtList& body,
                       std::vector<std::string>& out) {
  for (const auto& s : body) {
    switch (s->kind) {
      case ir::StmtKind::kLoop:
        out.push_back(s->loop->var);
        collect_loop_vars(s->loop->body, out);
        break;
      case ir::StmtKind::kIf:
        collect_loop_vars(s->then_body, out);
        collect_loop_vars(s->else_body, out);
        break;
      default:
        break;
    }
  }
}

std::string fresh_name(const std::string& base,
                       const std::vector<std::string>& taken) {
  if (std::find(taken.begin(), taken.end(), base) == taken.end()) return base;
  for (int i = 1;; ++i) {
    const std::string candidate = base + "_" + std::to_string(i);
    if (std::find(taken.begin(), taken.end(), candidate) == taken.end())
      return candidate;
  }
}

}  // namespace bwc::transform
