#include "bwc/transform/storage_reduction.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <map>
#include <optional>
#include <set>

#include "bwc/analysis/access_summary.h"
#include "bwc/support/error.h"
#include "bwc/transform/rewrite.h"

namespace bwc::transform {

namespace {

using ir::Affine;
using ir::ArrayId;
using ir::Expr;
using ir::ExprKind;
using ir::Program;
using ir::Stmt;
using ir::StmtKind;
using ir::StmtList;

constexpr std::int64_t kLo = std::numeric_limits<std::int64_t>::min() / 4;
constexpr std::int64_t kHi = std::numeric_limits<std::int64_t>::max() / 4;

/// Known range of a loop variable at some program point (loop bounds
/// refined by enclosing guards).
struct VarRange {
  std::int64_t lo = kLo;
  std::int64_t hi = kHi;
  bool pinned() const { return lo == hi; }
};

using Env = std::map<std::string, VarRange>;

Env refine_env(const Env& env, ir::CmpOp cmp, const Affine& lhs,
               const Affine& rhs, bool then_branch) {
  Env out = env;
  // Only refine single-variable-vs-constant comparisons.
  const auto var = lhs.single_var();
  if (!var.has_value() || lhs.coeff(*var) != 1 || !rhs.is_constant())
    return out;
  const std::int64_t k = rhs.constant_term() - lhs.constant_term();
  VarRange& r = out[*var];
  if (then_branch) {
    switch (cmp) {
      case ir::CmpOp::kEq:
        r.lo = std::max(r.lo, k);
        r.hi = std::min(r.hi, k);
        break;
      case ir::CmpOp::kLe:
        r.hi = std::min(r.hi, k);
        break;
      case ir::CmpOp::kLt:
        r.hi = std::min(r.hi, k - 1);
        break;
      case ir::CmpOp::kGe:
        r.lo = std::max(r.lo, k);
        break;
      case ir::CmpOp::kGt:
        r.lo = std::max(r.lo, k + 1);
        break;
      case ir::CmpOp::kNe:
        break;
    }
  } else {
    switch (cmp) {
      case ir::CmpOp::kLe:
        r.lo = std::max(r.lo, k + 1);
        break;
      case ir::CmpOp::kLt:
        r.lo = std::max(r.lo, k);
        break;
      case ir::CmpOp::kGe:
        r.hi = std::min(r.hi, k - 1);
        break;
      case ir::CmpOp::kGt:
        r.hi = std::min(r.hi, k);
        break;
      case ir::CmpOp::kNe:
        r.lo = std::max(r.lo, k);
        r.hi = std::min(r.hi, k);
        break;
      case ir::CmpOp::kEq:
        break;
    }
  }
  return out;
}

/// Evaluate an affine to a constant under the env (nullopt when some
/// variable is not pinned).
std::optional<std::int64_t> eval_under(const Affine& a, const Env& env) {
  std::int64_t value = a.constant_term();
  for (const auto& [name, coeff] : a.terms()) {
    const auto it = env.find(name);
    if (it == env.end() || !it->second.pinned()) return std::nullopt;
    value += coeff * it->second.lo;
  }
  return value;
}

/// One reference to the candidate array, with its context.
struct Ref {
  bool is_write = false;
  std::vector<Affine> subscripts;
  int top_index = -1;
  int order = 0;       // global static visitation order
  bool guarded = false;
  Env env;
};

/// Collect all references to `array`, program-wide, with contexts.
class RefCollector {
 public:
  RefCollector(const Program& program, ArrayId array)
      : program_(program), array_(array) {}

  std::vector<Ref> collect() {
    for (int k = 0; k < static_cast<int>(program_.top().size()); ++k) {
      top_ = k;
      walk_stmt(*program_.top()[static_cast<std::size_t>(k)], Env{}, 0);
    }
    return std::move(refs_);
  }

 private:
  void walk_expr(const Expr& e, const Env& env, int guard_depth) {
    if (e.kind == ExprKind::kArrayRef && e.array == array_) {
      refs_.push_back({false, e.subscripts, top_, order_++,
                       guard_depth > 0, env});
    }
    for (const auto& child : e.operands) walk_expr(*child, env, guard_depth);
  }

  void walk_stmt(const Stmt& s, const Env& env, int guard_depth) {
    switch (s.kind) {
      case StmtKind::kArrayAssign:
        walk_expr(*s.rhs, env, guard_depth);
        if (s.lhs_array == array_) {
          refs_.push_back({true, s.lhs_subscripts, top_, order_++,
                           guard_depth > 0, env});
        }
        break;
      case StmtKind::kScalarAssign:
        walk_expr(*s.rhs, env, guard_depth);
        break;
      case StmtKind::kIf: {
        const Env then_env =
            refine_env(env, s.cmp, s.cmp_lhs, s.cmp_rhs, true);
        for (const auto& t : s.then_body)
          walk_stmt(*t, then_env, guard_depth + 1);
        const Env else_env =
            refine_env(env, s.cmp, s.cmp_lhs, s.cmp_rhs, false);
        for (const auto& t : s.else_body)
          walk_stmt(*t, else_env, guard_depth + 1);
        break;
      }
      case StmtKind::kLoop: {
        Env inner = env;
        inner[s.loop->var] = {s.loop->lower, s.loop->upper};
        for (const auto& t : s.loop->body) walk_stmt(*t, inner, guard_depth);
        break;
      }
    }
  }

  const Program& program_;
  ArrayId array_;
  int top_ = -1;
  int order_ = 0;
  std::vector<Ref> refs_;
};

/// Are two subscript tuples provably equal under the env of the second?
bool tuples_equal_under(const std::vector<Affine>& canonical,
                        const Ref& ref) {
  if (canonical.size() != ref.subscripts.size()) return false;
  for (std::size_t d = 0; d < canonical.size(); ++d) {
    const Affine diff = ref.subscripts[d] - canonical[d];
    const auto v = eval_under(diff, ref.env);
    if (!v.has_value() || *v != 0) return false;
  }
  return true;
}

/// The spine loop vars of a top-level loop statement.
std::vector<std::string> spine_vars(const Stmt& loop_stmt) {
  std::vector<std::string> vars;
  const Stmt* cursor = &loop_stmt;
  while (cursor->kind == StmtKind::kLoop) {
    vars.push_back(cursor->loop->var);
    if (cursor->loop->body.size() == 1 &&
        cursor->loop->body.front()->kind == StmtKind::kLoop) {
      cursor = cursor->loop->body.front().get();
    } else {
      break;
    }
  }
  return vars;
}

/// Injective tuple: each dim a distinct unit-coefficient loop var, covering
/// all given loop levels.
bool injective_over(const std::vector<Affine>& tuple,
                    const std::vector<std::string>& loop_vars) {
  std::set<std::string> used;
  for (const auto& sub : tuple) {
    const auto var = sub.single_var();
    if (!var.has_value() || sub.coeff(*var) != 1) return false;
    if (!used.insert(*var).second) return false;
  }
  for (const auto& v : loop_vars) {
    if (used.count(v) == 0) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Contraction: array -> scalar.
// ---------------------------------------------------------------------------

bool try_scalarize(Program& p, ArrayId array,
                   std::vector<std::string>& scalar_names,
                   std::vector<std::string>& actions) {
  if (p.is_output_array(array)) return false;
  const std::vector<Ref> refs = RefCollector(p, array).collect();
  if (refs.empty()) return false;

  // All refs in one top-level loop.
  const int top = refs.front().top_index;
  for (const auto& r : refs) {
    if (r.top_index != top) return false;
  }
  Stmt& loop_stmt = *p.top()[static_cast<std::size_t>(top)];
  if (loop_stmt.kind != StmtKind::kLoop) return false;

  // First reference (static order == per-iteration order) must be a write,
  // and every other reference may only execute in iterations where that
  // write executes too: guard conditions are affine constraints on loop
  // variables, so "executes iff iteration satisfies env" is exact, and
  // env containment is the right implication test. This guarantees no
  // read ever sees the array's initial values.
  const Ref* first = &refs.front();
  for (const auto& r : refs) {
    if (r.order < first->order) first = &r;
  }
  if (!first->is_write) return false;
  auto env_contains = [](const Env& outer, const Env& inner) {
    for (const auto& [var, range] : outer) {
      VarRange inner_range;  // unconstrained by default
      const auto it = inner.find(var);
      if (it != inner.end()) inner_range = it->second;
      if (inner_range.lo < range.lo || inner_range.hi > range.hi)
        return false;
    }
    return true;
  };
  for (const auto& r : refs) {
    if (!env_contains(first->env, r.env)) return false;
  }

  // All refs name the same element (under their guard envs), injectively.
  const std::vector<Affine>& canonical = first->subscripts;
  for (const auto& r : refs) {
    if (!tuples_equal_under(canonical, r)) return false;
  }
  if (!injective_over(canonical, spine_vars(loop_stmt))) return false;

  // Rewrite: writes become scalar assigns, reads become scalar refs.
  const std::string name = fresh_name(p.array(array).name + "_s",
                                      scalar_names);
  p.add_scalar(name);
  scalar_names.push_back(name);

  std::function<void(StmtList&)> rewrite = [&](StmtList& body) {
    for (auto& s : body) {
      switch (s->kind) {
        case StmtKind::kArrayAssign:
          for_each_expr(*s, [&](Expr& e) {
            if (e.kind == ExprKind::kArrayRef && e.array == array) {
              e.kind = ExprKind::kScalarRef;
              e.scalar = name;
              e.array = ir::kInvalidArray;
              e.subscripts.clear();
            }
          });
          if (s->lhs_array == array)
            s = ir::make_scalar_assign(name, std::move(s->rhs));
          break;
        case StmtKind::kScalarAssign:
          for_each_expr(*s, [&](Expr& e) {
            if (e.kind == ExprKind::kArrayRef && e.array == array) {
              e.kind = ExprKind::kScalarRef;
              e.scalar = name;
              e.array = ir::kInvalidArray;
              e.subscripts.clear();
            }
          });
          break;
        case StmtKind::kIf:
          rewrite(s->then_body);
          rewrite(s->else_body);
          break;
        case StmtKind::kLoop:
          rewrite(s->loop->body);
          break;
      }
    }
  };
  StmtList shell;
  shell.push_back(std::move(p.top()[static_cast<std::size_t>(top)]));
  rewrite(shell);
  p.top()[static_cast<std::size_t>(top)] = std::move(shell.front());

  actions.push_back("contracted array " + p.array(array).name +
                    " to scalar " + name);
  return true;
}

// ---------------------------------------------------------------------------
// Peeling + shrinking: 2-D array -> 1-D column buffers.
// ---------------------------------------------------------------------------

struct ShrinkPlan {
  int loop_top = -1;            // the loop with the variable-column sweep
  std::string outer_var, inner_var;
  std::int64_t outer_lo = 0, outer_hi = 0;
  bool reads_prev = false;      // reads at offset -1 exist
  std::set<std::int64_t> peel_columns;
  /// Peeled columns that lie inside the sweep range: the sweep's write at
  /// j == c must also populate the peel array (Figure 6's a1, which holds
  /// column 1 while the fused loop runs j = 1..N).
  std::set<std::int64_t> dual_write_columns;
  bool boundary_dispatch = false;  // offset -1 reads can reach j == lo
};

/// Offset of a dim-1 subscript relative to the outer var, evaluated under
/// the ref's env (e.g. "N" under a j==N guard has offset 0).
std::optional<std::int64_t> column_offset(const Affine& sub,
                                          const std::string& outer_var,
                                          const Env& env) {
  const Affine diff = sub - Affine::var(outer_var);
  // Fast path: pure constant difference.
  if (diff.is_constant()) return diff.constant_term();
  return eval_under(diff, env);
}

std::optional<ShrinkPlan> plan_shrink(const Program& p, ArrayId array) {
  if (p.is_output_array(array)) return std::nullopt;
  const auto& decl = p.array(array);
  if (decl.extents.size() != 2) return std::nullopt;

  const std::vector<Ref> refs = RefCollector(p, array).collect();
  if (refs.empty()) return std::nullopt;

  // Partition refs into constant-column refs and variable-column refs.
  // Variable-column refs must all live in one two-deep loop.
  ShrinkPlan plan;
  for (const auto& r : refs) {
    if (r.subscripts.size() != 2) return std::nullopt;
    if (r.subscripts[1].is_constant()) continue;  // constant column: peel
    const int top = r.top_index;
    if (plan.loop_top < 0) {
      plan.loop_top = top;
      const Stmt& loop_stmt = *p.top()[static_cast<std::size_t>(top)];
      if (loop_stmt.kind != StmtKind::kLoop) return std::nullopt;
      const auto vars = spine_vars(loop_stmt);
      if (vars.size() != 2) return std::nullopt;
      plan.outer_var = vars[0];
      plan.inner_var = vars[1];
      plan.outer_lo = loop_stmt.loop->lower;
      plan.outer_hi = loop_stmt.loop->upper;
    } else if (plan.loop_top != top) {
      return std::nullopt;
    }
  }
  if (plan.loop_top < 0) return std::nullopt;  // only constant columns

  // Validate every reference.
  int first_write_order = -1;
  int first_read0_order = -1;
  for (const auto& r : refs) {
    if (r.subscripts[1].is_constant()) {
      const std::int64_t c = r.subscripts[1].constant_term();
      if (c >= plan.outer_lo && c <= plan.outer_hi) {
        // Inside the sweep range. Acceptable as a plain offset-0/-1 access
        // when the env pins the outer var (e.g. a[i,N] under j == N)...
        const auto off = column_offset(r.subscripts[1], plan.outer_var, r.env);
        if (!off.has_value() || (*off != 0 && *off != -1)) {
          // ...otherwise the column outlives the cur/prev rotation and
          // must be peeled, with the sweep's write at j == c duplicated
          // into the peel array. Safe only for reads that execute after
          // the column was written: in the sweep loop at iterations > c,
          // or in a later top-level statement.
          if (r.is_write) return std::nullopt;
          if (r.top_index == plan.loop_top) {
            const auto it = r.env.find(plan.outer_var);
            const std::int64_t env_lo =
                it == r.env.end() ? kLo : it->second.lo;
            if (env_lo <= c) return std::nullopt;
          } else if (r.top_index < plan.loop_top) {
            return std::nullopt;
          }
          plan.peel_columns.insert(c);
          plan.dual_write_columns.insert(c);
          continue;
        }
      } else {
        plan.peel_columns.insert(c);
        continue;
      }
    }
    // Variable-column (or pinned-equivalent) reference.
    const auto off = column_offset(r.subscripts[1], plan.outer_var, r.env);
    if (!off.has_value()) return std::nullopt;
    // Row subscript must be exactly the inner variable.
    const Affine row_diff = r.subscripts[0] - Affine::var(plan.inner_var);
    if (!(row_diff.is_constant() && row_diff.constant_term() == 0))
      return std::nullopt;
    if (r.is_write) {
      if (*off != 0) return std::nullopt;  // writes only at current column
      if (first_write_order < 0 || r.order < first_write_order)
        first_write_order = r.order;
      if (r.guarded) return std::nullopt;  // write must define every iteration
    } else if (*off == 0) {
      if (first_read0_order < 0 || r.order < first_read0_order)
        first_read0_order = r.order;
    } else if (*off == -1) {
      plan.reads_prev = true;
      // Can this read execute at the first outer iteration? Then it needs
      // the peeled previous column.
      const auto it = r.env.find(plan.outer_var);
      const std::int64_t env_lo = it == r.env.end() ? kLo : it->second.lo;
      if (env_lo <= plan.outer_lo) plan.boundary_dispatch = true;
    } else {
      return std::nullopt;  // reads further back than one iteration
    }
  }

  if (first_write_order < 0) return std::nullopt;  // read-only: keep as is
  if (first_read0_order >= 0 && first_read0_order < first_write_order)
    return std::nullopt;  // current-column read before definition

  if (plan.boundary_dispatch &&
      plan.peel_columns.count(plan.outer_lo - 1) == 0) {
    return std::nullopt;  // boundary value would be lost
  }
  return plan;
}

void apply_shrink(Program& p, ArrayId array, const ShrinkPlan& plan,
                  std::vector<std::string>& actions) {
  // Copy what we need out of the declaration: add_array() may reallocate
  // the declaration vector and invalidate references into it.
  const std::int64_t rows = p.array(array).extents[0];
  const std::string base = p.array(array).name;
  const std::size_t elem_bytes = p.array(array).elem_bytes;

  // New storage.
  std::map<std::int64_t, ArrayId> peel;
  for (std::int64_t c : plan.peel_columns) {
    const std::string name = base + "_col" + std::to_string(c);
    peel[c] = p.add_array(name, {rows}, elem_bytes);
  }
  const ArrayId cur = p.add_array(base + "_cur", {rows}, elem_bytes);
  ArrayId prev = ir::kInvalidArray;
  if (plan.reads_prev)
    prev = p.add_array(base + "_prev", {rows}, elem_bytes);

  // Replace constant-column refs everywhere (all loops).
  auto rewrite_const_cols = [&](StmtList& body) {
    replace_exprs(
        body,
        [&](const Expr& e) {
          return e.kind == ExprKind::kArrayRef && e.array == array &&
                 e.subscripts.size() == 2 && e.subscripts[1].is_constant() &&
                 peel.count(e.subscripts[1].constant_term()) > 0;
        },
        [&](const Expr& e) {
          return ir::make_array_ref(peel.at(e.subscripts[1].constant_term()),
                                    {e.subscripts[0]});
        });
    for (auto& s : body) {
      std::function<void(Stmt&)> fix_lhs = [&](Stmt& st) {
        if (st.kind == StmtKind::kArrayAssign && st.lhs_array == array &&
            st.lhs_subscripts.size() == 2 &&
            st.lhs_subscripts[1].is_constant() &&
            peel.count(st.lhs_subscripts[1].constant_term()) > 0) {
          st.lhs_array = peel.at(st.lhs_subscripts[1].constant_term());
          st.lhs_subscripts = {st.lhs_subscripts[0]};
        }
        if (st.kind == StmtKind::kIf) {
          for (auto& t : st.then_body) fix_lhs(*t);
          for (auto& t : st.else_body) fix_lhs(*t);
        }
        if (st.kind == StmtKind::kLoop) {
          for (auto& t : st.loop->body) fix_lhs(*t);
        }
      };
      fix_lhs(*s);
    }
  };
  rewrite_const_cols(p.top());

  // Within the sweep loop: rewrite variable-column refs.
  Stmt& loop_stmt = *p.top()[static_cast<std::size_t>(plan.loop_top)];
  const std::string& j = plan.outer_var;

  // Helper: offset of a dim-1 subscript in this (possibly guarded) context.
  // Uses the same env machinery as planning, rebuilt during the walk.
  std::function<void(StmtList&, const Env&)> rewrite_body =
      [&](StmtList& body, const Env& env) {
        for (std::size_t si = 0; si < body.size(); ++si) {
          Stmt& s = *body[si];
          switch (s.kind) {
            case StmtKind::kIf: {
              const Env then_env =
                  refine_env(env, s.cmp, s.cmp_lhs, s.cmp_rhs, true);
              rewrite_body(s.then_body, then_env);
              const Env else_env =
                  refine_env(env, s.cmp, s.cmp_lhs, s.cmp_rhs, false);
              rewrite_body(s.else_body, else_env);
              break;
            }
            case StmtKind::kLoop: {
              Env inner = env;
              inner[s.loop->var] = {s.loop->lower, s.loop->upper};
              rewrite_body(s.loop->body, inner);
              break;
            }
            case StmtKind::kArrayAssign:
            case StmtKind::kScalarAssign: {
              // Remember whether this statement is the sweep's write (its
              // lhs row subscript survives the rewrite) for dual-write
              // peel maintenance below.
              const bool is_sweep_write =
                  s.kind == StmtKind::kArrayAssign && s.lhs_array == array;
              const Affine row_sub =
                  is_sweep_write ? s.lhs_subscripts[0] : Affine();

              // Does this statement read the array at offset -1, possibly
              // at the boundary iteration?
              bool has_prev_read = false;
              std::function<void(const Expr&)> scan = [&](const Expr& e) {
                if (e.kind == ExprKind::kArrayRef && e.array == array) {
                  const auto off = column_offset(e.subscripts[1], j, env);
                  if (off.has_value() && *off == -1) has_prev_read = true;
                }
                for (const auto& c : e.operands) scan(*c);
              };
              scan(*s.rhs);

              const auto it = env.find(j);
              const std::int64_t env_lo =
                  it == env.end() ? kLo : it->second.lo;
              const bool needs_dispatch =
                  has_prev_read && env_lo <= plan.outer_lo;

              auto rewrite_stmt_refs = [&](Stmt& st, bool prev_to_peel) {
                for_each_expr(st, [&](Expr& e) {
                  if (e.kind != ExprKind::kArrayRef || e.array != array)
                    return;
                  const auto off = column_offset(e.subscripts[1], j, env);
                  BWC_CHECK(off.has_value(), "unplanned reference shape");
                  if (*off == 0) {
                    e.array = cur;
                  } else {
                    BWC_ASSERT(*off == -1, "unplanned offset");
                    e.array = prev_to_peel ? peel.at(plan.outer_lo - 1) : prev;
                  }
                  e.subscripts = {e.subscripts[0]};
                });
                if (st.kind == StmtKind::kArrayAssign &&
                    st.lhs_array == array) {
                  st.lhs_array = cur;
                  st.lhs_subscripts = {st.lhs_subscripts[0]};
                }
              };

              if (needs_dispatch) {
                // if (j == lo) <stmt with prev -> peel> else <stmt, prev>.
                ir::StmtPtr then_version = s.clone();
                ir::StmtPtr else_version = s.clone();
                rewrite_stmt_refs(*then_version, /*prev_to_peel=*/true);
                rewrite_stmt_refs(*else_version, /*prev_to_peel=*/false);
                StmtList then_body, else_body;
                then_body.push_back(std::move(then_version));
                else_body.push_back(std::move(else_version));
                body[si] = ir::make_if(ir::CmpOp::kEq, Affine::var(j),
                                       Affine::constant(plan.outer_lo),
                                       std::move(then_body),
                                       std::move(else_body));
              } else {
                rewrite_stmt_refs(s, /*prev_to_peel=*/false);
              }

              // Dual-write peel: after the sweep's write of the current
              // column, copy it into the peel array at j == c so the
              // column survives the cur/prev rotation.
              if (is_sweep_write) {
                std::size_t insert_at = si + 1;
                for (std::int64_t c : plan.dual_write_columns) {
                  StmtList copy;
                  copy.push_back(ir::make_array_assign(
                      peel.at(c), {row_sub},
                      ir::make_array_ref(cur, {row_sub})));
                  body.insert(
                      body.begin() + static_cast<std::ptrdiff_t>(insert_at),
                      ir::make_if(ir::CmpOp::kEq, Affine::var(j),
                                  Affine::constant(c), std::move(copy)));
                  ++insert_at;
                }
                si = insert_at - 1;  // skip the inserted statements
              }
              break;
            }
          }
        }
      };

  Env top_env;
  top_env[j] = {plan.outer_lo, plan.outer_hi};
  BWC_CHECK(loop_stmt.loop->body.size() == 1 &&
                loop_stmt.loop->body.front()->kind == StmtKind::kLoop,
            "shrink expects a two-deep simple nest");
  Stmt& inner_loop = *loop_stmt.loop->body.front();
  Env inner_env = top_env;
  inner_env[inner_loop.loop->var] = {inner_loop.loop->lower,
                                     inner_loop.loop->upper};
  rewrite_body(inner_loop.loop->body, inner_env);

  // Carry the current column into the previous buffer at the end of each
  // inner iteration (the paper's a3[i] = a2).
  if (plan.reads_prev) {
    inner_loop.loop->body.push_back(ir::make_array_assign(
        prev, {Affine::var(plan.inner_var)},
        ir::make_array_ref(cur, {Affine::var(plan.inner_var)})));
  }

  std::string what = "shrank array " + base + " to column buffer";
  if (plan.reads_prev) what += "s (cur/prev)";
  if (!plan.peel_columns.empty()) {
    what += ", peeled column(s)";
    for (std::int64_t c : plan.peel_columns) what += " " + std::to_string(c);
  }
  actions.push_back(what);
}

}  // namespace

std::uint64_t referenced_array_bytes(
    const Program& program,
    const std::vector<analysis::LoopSummary>* statement_summaries) {
  BWC_CHECK(statement_summaries == nullptr ||
                statement_summaries->size() == program.top().size(),
            "statement summaries must cover every top-level statement");
  std::vector<bool> referenced(
      static_cast<std::size_t>(program.array_count()), false);
  for (int k = 0; k < static_cast<int>(program.top().size()); ++k) {
    analysis::LoopSummary computed;
    if (statement_summaries == nullptr)
      computed = analysis::summarize_statement(program, k);
    const analysis::LoopSummary& s =
        statement_summaries != nullptr
            ? (*statement_summaries)[static_cast<std::size_t>(k)]
            : computed;
    for (const auto& [array, access] : s.arrays)
      referenced[static_cast<std::size_t>(array)] = true;
  }
  std::uint64_t bytes = 0;
  for (int a = 0; a < program.array_count(); ++a) {
    if (referenced[static_cast<std::size_t>(a)])
      bytes += program.array(a).byte_size();
  }
  return bytes;
}

StorageReductionResult reduce_storage(
    const Program& program,
    const std::vector<analysis::LoopSummary>* statement_summaries) {
  StorageReductionResult result;
  result.program = program.clone();
  Program& p = result.program;
  result.referenced_bytes_before =
      referenced_array_bytes(p, statement_summaries);

  std::vector<std::string> scalar_names(p.scalars());
  const int original_arrays = p.array_count();
  for (int a = 0; a < original_arrays; ++a) {
    if (try_scalarize(p, a, scalar_names, result.actions)) continue;
    const auto plan = plan_shrink(p, a);
    if (plan.has_value()) apply_shrink(p, a, *plan, result.actions);
  }

  result.referenced_bytes_after = referenced_array_bytes(p);
  if (!result.actions.empty())
    p.set_name(program.name() + " (storage-reduced)");
  return result;
}

}  // namespace bwc::transform
