#include "bwc/transform/store_elimination.h"

#include <algorithm>
#include <optional>
#include <set>

#include "bwc/analysis/liveness.h"
#include "bwc/support/error.h"
#include "bwc/transform/rewrite.h"

namespace bwc::transform {

namespace {

using ir::ArrayId;
using ir::Expr;
using ir::ExprKind;
using ir::Program;
using ir::Stmt;
using ir::StmtKind;
using ir::StmtList;

/// The innermost body of a simple nest, or nullptr when the nest branches.
StmtList* innermost_body(Stmt& loop_stmt, std::vector<std::string>* vars) {
  BWC_ASSERT(loop_stmt.kind == StmtKind::kLoop, "expects a loop");
  Stmt* cursor = &loop_stmt;
  while (true) {
    vars->push_back(cursor->loop->var);
    StmtList& body = cursor->loop->body;
    if (body.size() == 1 && body.front()->kind == StmtKind::kLoop) {
      cursor = body.front().get();
      continue;
    }
    for (const auto& s : body) {
      if (s->kind == StmtKind::kLoop) return nullptr;  // not a simple nest
    }
    return &body;
  }
}

/// Do all refs of `array` in this flat body use one identical subscript
/// tuple that covers all loop vars with unit coefficients, with none under
/// a guard? Returns the tuple on success.
std::optional<std::vector<ir::Affine>> uniform_injective_subscripts(
    const StmtList& body, ArrayId array,
    const std::vector<std::string>& loop_vars) {
  std::optional<std::vector<ir::Affine>> tuple;
  bool ok = true;

  std::function<void(const Expr&)> check_expr = [&](const Expr& e) {
    if (e.kind == ExprKind::kArrayRef && e.array == array) {
      if (!tuple.has_value()) {
        tuple = e.subscripts;
      } else if (*tuple != e.subscripts) {
        ok = false;
      }
    }
    for (const auto& child : e.operands) check_expr(*child);
  };

  for (const auto& s : body) {
    switch (s->kind) {
      case StmtKind::kArrayAssign:
        if (s->lhs_array == array) {
          if (!tuple.has_value()) {
            tuple = s->lhs_subscripts;
          } else if (*tuple != s->lhs_subscripts) {
            ok = false;
          }
        }
        check_expr(*s->rhs);
        break;
      case StmtKind::kScalarAssign:
        check_expr(*s->rhs);
        break;
      case StmtKind::kIf: {
        // Any reference under a guard disqualifies the array (conservative).
        bool guarded_ref = false;
        std::function<void(const StmtList&)> scan = [&](const StmtList& inner) {
          for (const auto& g : inner) {
            if (g->kind == StmtKind::kArrayAssign && g->lhs_array == array)
              guarded_ref = true;
            if (g->rhs) check_expr(*g->rhs);  // still validate tuple equality
            std::function<void(const Expr&)> find = [&](const Expr& e) {
              if (e.kind == ExprKind::kArrayRef && e.array == array)
                guarded_ref = true;
              for (const auto& child : e.operands) find(*child);
            };
            if (g->rhs) find(*g->rhs);
            if (g->kind == StmtKind::kIf) {
              scan(g->then_body);
              scan(g->else_body);
            }
            if (g->kind == StmtKind::kLoop) scan(g->loop->body);
          }
        };
        scan(s->then_body);
        scan(s->else_body);
        if (guarded_ref) ok = false;
        break;
      }
      case StmtKind::kLoop:
        break;
    }
    if (!ok) return std::nullopt;
  }
  if (!tuple.has_value()) return std::nullopt;

  // Injectivity across iterations: every loop var appears in exactly one
  // dimension with coefficient 1, and every dimension is a single such var.
  std::set<std::string> used;
  for (const auto& sub : *tuple) {
    const auto var = sub.single_var();
    if (!var.has_value() || sub.coeff(*var) != 1) return std::nullopt;
    if (!used.insert(*var).second) return std::nullopt;
  }
  for (const auto& v : loop_vars) {
    if (used.count(v) == 0) return std::nullopt;
  }
  return tuple;
}

/// Rewrite the body: writes to `array` become scalar assignments to `temp`;
/// reads after the first write use the scalar. Returns false (no change)
/// when the body never writes the array.
bool forward_through_scalar(StmtList& body, ArrayId array,
                            const std::string& temp) {
  bool written = false;
  for (auto& s : body) {
    if (written) {
      // Replace reads of the array with the scalar.
      for_each_expr(*s, [&](Expr& e) {
        if (e.kind == ExprKind::kArrayRef && e.array == array) {
          e.kind = ExprKind::kScalarRef;
          e.scalar = temp;
          e.array = ir::kInvalidArray;
          e.subscripts.clear();
        }
      });
    }
    if (s->kind == StmtKind::kArrayAssign && s->lhs_array == array) {
      // The rhs evaluates before the store: its reads of the array refer to
      // old values on the first write, the scalar afterwards (handled by
      // the replacement above on later statements; within this statement
      // reads were already rewritten if a previous write occurred).
      s = ir::make_scalar_assign(temp, std::move(s->rhs));
      written = true;
    }
  }
  return written;
}

}  // namespace

StoreEliminationResult eliminate_stores(
    const Program& program,
    const std::vector<analysis::ArrayLiveness>* liveness) {
  StoreEliminationResult result;
  result.program = program.clone();
  Program& p = result.program;

  const std::vector<analysis::ArrayLiveness> computed =
      liveness != nullptr ? std::vector<analysis::ArrayLiveness>{}
                          : analysis::analyze_liveness(p);
  const std::vector<analysis::ArrayLiveness>& live_arrays =
      liveness != nullptr ? *liveness : computed;
  BWC_CHECK(live_arrays.size() ==
                static_cast<std::size_t>(p.array_count()),
            "liveness must cover every array of the program");
  std::vector<std::string> scalar_names(p.scalars());

  for (int a = 0; a < p.array_count(); ++a) {
    const analysis::ArrayLiveness& live =
        live_arrays[static_cast<std::size_t>(a)];
    if (live.is_output || live.writing_stmts.empty()) continue;
    // All writes in one statement; no later statement reads the array.
    if (live.writing_stmts.front() != live.writing_stmts.back()) continue;
    const int writer = live.writing_stmts.front();
    if (live.last_read() > writer) continue;
    Stmt& stmt = *p.top()[static_cast<std::size_t>(writer)];
    if (stmt.kind != StmtKind::kLoop) continue;

    std::vector<std::string> loop_vars;
    StmtList* body = innermost_body(stmt, &loop_vars);
    if (body == nullptr) continue;
    if (!uniform_injective_subscripts(*body, a, loop_vars).has_value())
      continue;

    const std::string temp =
        fresh_name(p.array(a).name + "_t", scalar_names);
    if (!forward_through_scalar(*body, a, temp)) continue;
    p.add_scalar(temp);
    scalar_names.push_back(temp);
    result.eliminated.push_back(a);
  }

  if (!result.eliminated.empty()) {
    p.set_name(program.name() + " (store-eliminated)");
  }
  return result;
}

}  // namespace bwc::transform
