#include "bwc/transform/regrouping.h"

#include <algorithm>
#include <map>
#include <set>

#include "bwc/analysis/access_summary.h"
#include "bwc/support/error.h"
#include "bwc/transform/rewrite.h"

namespace bwc::transform {

namespace {

using ir::Affine;
using ir::ArrayId;
using ir::Program;

/// Key identifying arrays that may share a group. Written and read-only
/// arrays are never mixed: interleaving a read-only array into written
/// cache lines would write the read-only data back too, inflating
/// writeback traffic instead of saving it.
struct ShapeKey {
  std::vector<std::int64_t> extents;
  std::uint64_t elem_bytes;
  std::vector<int> accessing_stmts;
  bool written;

  bool operator<(const ShapeKey& o) const {
    if (extents != o.extents) return extents < o.extents;
    if (elem_bytes != o.elem_bytes) return elem_bytes < o.elem_bytes;
    if (written != o.written) return written < o.written;
    return accessing_stmts < o.accessing_stmts;
  }
};

}  // namespace

std::vector<std::vector<ArrayId>> regrouping_candidates(
    const Program& program) {
  // Which statements access each array, and whether it is ever written.
  std::vector<std::vector<int>> accessed_by(
      static_cast<std::size_t>(program.array_count()));
  std::vector<bool> written(static_cast<std::size_t>(program.array_count()),
                            false);
  for (int k = 0; k < static_cast<int>(program.top().size()); ++k) {
    const analysis::LoopSummary s = analysis::summarize_statement(program, k);
    for (const auto& [array, access] : s.arrays) {
      accessed_by[static_cast<std::size_t>(array)].push_back(k);
      if (access.has_writes()) written[static_cast<std::size_t>(array)] = true;
    }
  }

  std::map<ShapeKey, std::vector<ArrayId>> buckets;
  for (int a = 0; a < program.array_count(); ++a) {
    if (program.is_output_array(a)) continue;
    if (accessed_by[static_cast<std::size_t>(a)].empty()) continue;
    const auto& decl = program.array(a);
    buckets[{decl.extents, decl.elem_bytes,
             accessed_by[static_cast<std::size_t>(a)],
             written[static_cast<std::size_t>(a)]}]
        .push_back(a);
  }

  std::vector<std::vector<ArrayId>> groups;
  for (auto& [key, members] : buckets) {
    if (members.size() >= 2) groups.push_back(std::move(members));
  }
  return groups;
}

RegroupingResult regroup_arrays(
    const Program& program,
    const std::vector<std::vector<ArrayId>>& groups) {
  RegroupingResult result;
  result.program = program.clone();
  Program& p = result.program;

  std::set<ArrayId> used;
  for (const auto& group : groups) {
    BWC_CHECK(group.size() >= 2, "a regrouping needs at least two arrays");
    // Copied, not referenced: add_array() below may reallocate the
    // declaration vector and invalidate references into it.
    const std::vector<std::int64_t> member_extents =
        p.array(group.front()).extents;
    const std::size_t member_bytes = p.array(group.front()).elem_bytes;
    for (ArrayId a : group) {
      BWC_CHECK(!p.is_output_array(a),
                "cannot regroup output array " + p.array(a).name);
      BWC_CHECK(p.array(a).extents == member_extents &&
                    p.array(a).elem_bytes == member_bytes,
                "regrouped arrays must have identical shape");
      BWC_CHECK(used.insert(a).second, "regrouping groups must be disjoint");
    }

    const std::int64_t k = static_cast<std::int64_t>(group.size());
    // New array: first dimension interleaved k-wide.
    std::vector<std::int64_t> extents = member_extents;
    extents[0] *= k;
    std::string name = "grp";
    for (ArrayId a : group) name += "_" + p.array(a).name;
    const ArrayId grouped = p.add_array(name, extents, member_bytes);

    // Rewrite every reference: member m's subscript s0 becomes
    // k*s0 - (k - 1 - m), mapping 1-based index i to k*(i-1) + m + 1.
    std::map<ArrayId, std::int64_t> member_index;
    for (std::size_t m = 0; m < group.size(); ++m)
      member_index[group[m]] = static_cast<std::int64_t>(m);

    auto rewrite_subs = [&](std::vector<Affine>& subs, ArrayId member) {
      const std::int64_t m = member_index.at(member);
      subs[0] = subs[0] * k - (k - 1 - m);
    };

    for_each_stmt(p.top(), [&](ir::Stmt& s) {
      if (s.kind == ir::StmtKind::kArrayAssign &&
          member_index.count(s.lhs_array) > 0) {
        rewrite_subs(s.lhs_subscripts, s.lhs_array);
        s.lhs_array = grouped;
      }
      for_each_expr(s, [&](ir::Expr& e) {
        if (e.kind == ir::ExprKind::kArrayRef &&
            member_index.count(e.array) > 0) {
          rewrite_subs(e.subscripts, e.array);
          e.array = grouped;
        }
      });
    });

    // Data packing prologue: copy the members' (possibly observable)
    // initial contents into their interleaved slots. One loop packs all
    // members per index, so the grouped array is written in a single
    // sequential sweep (per-member strided packing would stream it k
    // times).
    {
      ir::StmtList body;
      for (std::size_t m = 0; m < group.size(); ++m) {
        const std::int64_t mi = static_cast<std::int64_t>(m);
        const Affine row = Affine::var("__pack_i") * k - (k - 1 - mi);
        if (member_extents.size() == 1) {
          body.push_back(ir::make_array_assign(
              grouped, {row},
              ir::make_array_ref(group[m], {Affine::var("__pack_i")})));
        } else {
          body.push_back(ir::make_array_assign(
              grouped, {row, Affine::var("__pack_j")},
              ir::make_array_ref(group[m], {Affine::var("__pack_i"),
                                            Affine::var("__pack_j")})));
        }
      }
      ir::StmtList pack;
      if (member_extents.size() == 1) {
        pack.push_back(
            ir::make_loop("__pack_i", 1, member_extents[0], std::move(body)));
      } else {
        ir::StmtList mid;
        mid.push_back(
            ir::make_loop("__pack_i", 1, member_extents[0], std::move(body)));
        pack.push_back(
            ir::make_loop("__pack_j", 1, member_extents[1], std::move(mid)));
      }
      p.top().insert(p.top().begin(),
                     std::make_move_iterator(pack.begin()),
                     std::make_move_iterator(pack.end()));
    }

    std::string action = "regrouped";
    for (ArrayId a : group) action += " " + program.array(a).name;
    action += " -> " + name;
    result.actions.push_back(action);
  }

  if (!result.actions.empty())
    p.set_name(program.name() + " (regrouped)");
  return result;
}

RegroupingResult regroup_all(const Program& program) {
  return regroup_arrays(program, regrouping_candidates(program));
}

}  // namespace bwc::transform
