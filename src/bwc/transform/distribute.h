// Loop distribution (fission): split multi-statement loops into one loop
// per statement group, the inverse of fusion.
//
// Two uses:
//  - normalization: maximal distribution followed by bandwidth-minimal
//    fusion re-derives the paper's global organization from scratch,
//    instead of being anchored to the program's incidental loop structure;
//  - ablation: distribution is exactly the bandwidth *pessimization* the
//    paper's fusion undoes, so distributing a fused program re-creates the
//    pre-fusion traffic.
//
// Legality mirrors fusion's: statements S1; S2 inside one loop may be
// sequenced into separate loops (all iterations of S1 before any of S2)
// unless some data flows from S2's iteration i to S1's iteration j > i --
// the same lexicographic-delta test, with "possibly negative" forcing the
// statements to stay together. Grouping is conservative: statements keep
// their order and groups are contiguous.
#pragma once

#include "bwc/ir/program.h"

namespace bwc::transform {

struct DistributionResult {
  ir::Program program;
  /// Top-level loops before and after.
  int loops_before = 0;
  int loops_after = 0;
};

/// Maximally distribute every top-level simple loop nest (depth 1 or 2,
/// statements in the innermost body). Loops with nested guards containing
/// further loops, or statements that must stay together, are split only at
/// the boundaries proven legal.
DistributionResult distribute_loops(const ir::Program& program);

}  // namespace bwc::transform
