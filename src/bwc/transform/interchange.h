// Loop interchange for two-deep rectangular nests.
//
// Column-major arrays want the row index innermost; a nest that sweeps
// rows in the outer loop strides through memory by a whole column per
// step and misses on every access. Interchanging the loops restores
// stride-1 traversal -- the oldest locality transformation, and the
// other half (besides blocking) of what "-O3" did to the paper's matrix
// multiply.
//
// Legality: a dependence with distance vector (d_outer, d_inner) survives
// interchange iff the swapped vector (d_inner, d_outer) is still
// lexicographically non-negative. Since legal programs only contain
// lex-non-negative vectors, the only offenders are (+, -) vectors, which
// swap to (-, +). The test below conservatively rejects a nest when some
// dependence could have positive outer and negative inner distance.
#pragma once

#include <string>
#include <vector>

#include "bwc/analysis/access_summary.h"
#include "bwc/ir/program.h"

namespace bwc::transform {

/// Can the two spine levels of the loop at top()[top_index] be swapped?
/// False for non-loops, non-2-deep or non-simple nests, or when a
/// dependence blocks the swap.
bool can_interchange(const ir::Program& program, int top_index);

/// Swap the two spine levels in place. Throws when !can_interchange.
void interchange(ir::Program& program, int top_index);

struct InterchangeResult {
  ir::Program program;
  /// Top-statement indices that were interchanged.
  std::vector<int> interchanged;
};

/// Heuristic driver: interchange every 2-deep nest whose innermost loop
/// variable does not appear in the stride-1 (first) subscript dimension of
/// the nest's array references -- i.e. nests traversing column-major data
/// row-by-row -- whenever legal. When `statement_summaries` is given it
/// must hold one summarize_statement result per top-level statement of
/// `program` (pass::AnalysisManager provides exactly that); candidate
/// nests are then screened against the cached summaries.
InterchangeResult auto_interchange(
    const ir::Program& program,
    const std::vector<analysis::LoopSummary>* statement_summaries = nullptr);

}  // namespace bwc::transform
