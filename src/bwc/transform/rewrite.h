// IR rewriting utilities shared by the transformation passes.
#pragma once

#include <functional>
#include <map>
#include <string>

#include "bwc/ir/program.h"

namespace bwc::transform {

/// Rename loop variables throughout a statement list (subscripts, loop-var
/// expressions, guard conditions and loop headers).
void rename_loop_vars(ir::StmtList& body,
                      const std::map<std::string, std::string>& renames);

/// Apply `fn` to every expression node (pre-order) in a statement list,
/// including nested bodies. `fn` may mutate the node in place but must not
/// change its kind to/from kinds with different operand arity.
void for_each_expr(ir::StmtList& body, const std::function<void(ir::Expr&)>& fn);
void for_each_expr(ir::Stmt& stmt, const std::function<void(ir::Expr&)>& fn);

/// Apply `fn` to every statement node (pre-order, including nested).
void for_each_stmt(ir::StmtList& body, const std::function<void(ir::Stmt&)>& fn);

/// Replace expression nodes for which `pred` holds with `make()`'s result.
/// Works at any depth, including inside guard bodies and nested loops.
void replace_exprs(ir::StmtList& body,
                   const std::function<bool(const ir::Expr&)>& pred,
                   const std::function<ir::ExprPtr(const ir::Expr&)>& make);

/// Substitute a loop variable with an affine expression everywhere in a
/// body: subscripts and guard conditions via affine substitution; value
/// uses (kLoopVar expressions) become the equivalent arithmetic
/// expression. Loop headers redeclaring `var` are left alone (shadowing).
void substitute_loop_var(ir::StmtList& body, const std::string& var,
                         const ir::Affine& replacement);

/// Collect the set of loop-variable names declared anywhere in a body.
void collect_loop_vars(const ir::StmtList& body,
                       std::vector<std::string>& out);

/// A fresh name not colliding with any name in `taken`; base is used as a
/// prefix ("t" -> "t", "t_1", "t_2", ...).
std::string fresh_name(const std::string& base,
                       const std::vector<std::string>& taken);

}  // namespace bwc::transform
