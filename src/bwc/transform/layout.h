// Layout transforms: rewrite ArrayLayout declarations, never statements.
//
// The fourth transform family. Where fusion, regrouping and storage
// reduction rewrite the computation, these transforms change only where
// elements sit in the simulated address space (ir::ArrayLayout), leaving
// every statement -- and therefore every computed value -- untouched.
// Legality is structural (verify::prove_layout_change); profitability is
// judged against the layout-aware line-traffic estimator
// (analysis/layout_traffic.h) for the configured cache geometry.
//
//   transpose_layouts  permute a multi-dimensional array's storage order
//                      so the dimension the innermost loops walk is the
//                      fastest-varying one (row-major <-> column-major).
//
//   regroup_layouts    interleave always-co-accessed same-shape 1-D
//                      arrays into one allocation (SoA -> AoS) by
//                      assigning them a shared interleave group: k
//                      conflicting streams collapse into one.
//
//   pad_layouts        add dead element slots: inter-dimension padding
//                      breaks power-of-two strides that collapse onto few
//                      cache sets; end-of-allocation padding staggers the
//                      base addresses of co-streamed arrays that share a
//                      set phase.
#pragma once

#include <string>
#include <vector>

#include "bwc/analysis/layout_traffic.h"
#include "bwc/ir/program.h"

namespace bwc::transform {

struct LayoutResult {
  ir::Program program;
  /// One line per layout actually changed; empty when nothing applied.
  std::vector<std::string> actions;
};

/// Permute storage order of multi-dimensional arrays toward the
/// dominant (trip-weighted) innermost access dimension. Skips grouped
/// or already-padded arrays.
LayoutResult transpose_layouts(const ir::Program& program);

/// Assign fresh interleave groups to sets of 1-D arrays with identical
/// shape, padding and accessing statements (and matching written-ness).
LayoutResult regroup_layouts(const ir::Program& program);

/// Pad layouts to break set-mapping conflicts reported by the estimator
/// under geometry `g`. Greedy: each candidate pad is kept only when it
/// strictly lowers the estimated line traffic.
LayoutResult pad_layouts(const ir::Program& program,
                         const analysis::LayoutGeometry& g = {});

}  // namespace bwc::transform
