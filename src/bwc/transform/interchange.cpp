#include "bwc/transform/interchange.h"

#include <set>

#include "bwc/analysis/access_summary.h"
#include "bwc/analysis/dependence.h"
#include "bwc/support/error.h"

namespace bwc::transform {

namespace {

using ir::Program;
using ir::Stmt;
using ir::StmtKind;

/// The statement holding the inner loop of a 2-deep simple nest, or null.
Stmt* inner_of(Stmt& outer) {
  if (outer.kind != StmtKind::kLoop) return nullptr;
  if (outer.loop->body.size() != 1) return nullptr;
  Stmt* inner = outer.loop->body.front().get();
  if (inner->kind != StmtKind::kLoop) return nullptr;
  for (const auto& s : inner->loop->body) {
    if (s->kind == StmtKind::kLoop) return nullptr;  // deeper than 2
  }
  return inner;
}

}  // namespace

bool can_interchange(const ir::Program& program, int top_index) {
  if (top_index < 0 ||
      top_index >= static_cast<int>(program.top().size()))
    return false;
  const Stmt& stmt = *program.top()[static_cast<std::size_t>(top_index)];
  if (stmt.kind != StmtKind::kLoop) return false;
  // Must be a 2-deep simple rectangular nest.
  Stmt& mutable_stmt = const_cast<Stmt&>(stmt);
  if (inner_of(mutable_stmt) == nullptr) return false;
  const analysis::LoopSummary s =
      analysis::summarize_loop(program, top_index);
  if (s.depth() != 2) return false;
  // Guard conditions referencing loop variables stay valid under a swap
  // (conditions are per-iteration, not per-level), but the dependence test
  // is the binding constraint.
  return analysis::interchange_legal(s);
}

void interchange(ir::Program& program, int top_index) {
  BWC_CHECK(can_interchange(program, top_index),
            "loop interchange is not legal for this nest");
  Stmt& outer = *program.top()[static_cast<std::size_t>(top_index)];
  Stmt* inner = inner_of(outer);
  BWC_ASSERT(inner != nullptr, "checked by can_interchange");
  std::swap(outer.loop->var, inner->loop->var);
  std::swap(outer.loop->lower, inner->loop->lower);
  std::swap(outer.loop->upper, inner->loop->upper);
}

InterchangeResult auto_interchange(
    const ir::Program& program,
    const std::vector<analysis::LoopSummary>* statement_summaries) {
  BWC_CHECK(statement_summaries == nullptr ||
                statement_summaries->size() == program.top().size(),
            "statement summaries must cover every top-level statement");
  InterchangeResult result;
  result.program = program.clone();

  for (int idx : result.program.top_loop_indices()) {
    const Stmt& stmt =
        *result.program.top()[static_cast<std::size_t>(idx)];
    if (inner_of(const_cast<Stmt&>(stmt)) == nullptr) continue;
    // Earlier swaps touch other nests only, so the cached summary of this
    // nest is still the summary of the cloned nest.
    analysis::LoopSummary computed;
    if (statement_summaries == nullptr)
      computed = analysis::summarize_loop(result.program, idx);
    const analysis::LoopSummary& s =
        statement_summaries != nullptr
            ? (*statement_summaries)[static_cast<std::size_t>(idx)]
            : computed;
    if (s.depth() != 2) continue;

    // Profitability: the stride-1 dimension (first subscript) of the
    // nest's references should use the *inner* variable. Count references
    // whose first subscript uses only the outer variable: those stride by
    // a whole column per inner step.
    const std::string& outer_var = s.loop_vars[0];
    const std::string& inner_var = s.loop_vars[1];
    int bad = 0, good = 0;
    for (const auto& [array, access] : s.arrays) {
      auto tally = [&](const std::vector<std::vector<ir::Affine>>& refs) {
        for (const auto& ref : refs) {
          if (ref.empty()) continue;
          if (ref[0].uses(inner_var)) {
            ++good;
          } else if (ref[0].uses(outer_var)) {
            ++bad;
          }
        }
      };
      tally(access.reads);
      tally(access.writes);
    }
    if (bad <= good) continue;  // already (mostly) stride-1
    if (!analysis::interchange_legal(s)) continue;
    interchange(result.program, idx);
    result.interchanged.push_back(idx);
  }
  if (!result.interchanged.empty())
    result.program.set_name(program.name() + " (interchanged)");
  return result;
}

}  // namespace bwc::transform
