// Storage reduction (paper Section 3.2): array contraction, shrinking and
// peeling.
//
// After fusion localizes an array's live range, three rewrites shrink its
// storage (and with it the bandwidth consumed at *every* hierarchy level):
//
//  - contraction  (array -> scalar): every element's live range is inside
//    one iteration; the whole array becomes one scalar (Figure 6's b1).
//  - shrinking    (2-D array -> one or two 1-D column buffers): element
//    live ranges span at most one outer-loop iteration; values are carried
//    in a "current" column buffer plus, when reads reach one iteration
//    back, a "previous" buffer refreshed by an in-loop copy (Figure 6's
//    a2/a3 scheme; this implementation uses two N-element buffers where
//    the paper uses a scalar plus one buffer -- same asymptotics, N^2 -> N).
//  - peeling      (boundary column -> dedicated 1-D array): a slice such as
//    a[1..N, 1] that stays live across the whole loop is stored separately
//    (Figure 6's a1); reads that reach the peeled column at the boundary
//    iteration are dispatched with a j==lo guard, as in Figure 6(c).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bwc/analysis/access_summary.h"
#include "bwc/ir/program.h"

namespace bwc::transform {

struct StorageReductionResult {
  ir::Program program;
  /// Human-readable description of each rewrite performed.
  std::vector<std::string> actions;
  /// Bytes of arrays actually referenced before/after (reduced arrays stay
  /// declared but unreferenced).
  std::uint64_t referenced_bytes_before = 0;
  std::uint64_t referenced_bytes_after = 0;
};

/// Apply storage reduction to every array where it is provably safe. When
/// `statement_summaries` is given it must hold one summarize_statement
/// result per top-level statement of `program` (pass::AnalysisManager
/// provides exactly that); the pre-transform referenced-bytes census then
/// reuses them (the post-transform census always re-walks the rewritten
/// IR).
StorageReductionResult reduce_storage(
    const ir::Program& program,
    const std::vector<analysis::LoopSummary>* statement_summaries = nullptr);

/// Bytes of arrays that are referenced by at least one statement. The
/// optional `statement_summaries` follow the reduce_storage contract.
std::uint64_t referenced_array_bytes(
    const ir::Program& program,
    const std::vector<analysis::LoopSummary>* statement_summaries = nullptr);

}  // namespace bwc::transform
