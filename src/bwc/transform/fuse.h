// Loop fusion code generation: apply a FusionPlan to a Program.
//
// Each partition's loops are merged into a single loop nest executing the
// member bodies in program order. Members whose outer ranges differ are
// guarded (the paper's Figure 6(b) "if (j<=N-1) ... else ..." shape);
// members one level shallower are embedded at a single outer iteration
// (e.g. a boundary fix-up loop runs at j == N).
#pragma once

#include "bwc/fusion/fusion_graph.h"
#include "bwc/ir/program.h"

namespace bwc::transform {

/// Produce the fused program. `graph` must have been built from `program`
/// and `plan` must be valid for it (finish_plan output). Throws bwc::Error
/// when a partition's members cannot be structurally merged.
ir::Program apply_fusion(const ir::Program& program,
                         const fusion::FusionGraph& graph,
                         const fusion::FusionPlan& plan);

/// Convenience: build the graph, solve with best_fusion, apply.
ir::Program fuse_best(const ir::Program& program);

}  // namespace bwc::transform
