// Store elimination (paper Section 3.3).
//
// "The transformation first locates the loop containing the last segment of
// the live range and then finishes all uses of the array so that the
// program no longer needs to write new values back to the array."
//
// After fusion has localized an array's uses, a write whose value is only
// consumed later in the same iteration can be forwarded through a scalar;
// the store -- and with it the memory writeback -- disappears. Reads of the
// array's *old* values are untouched: store elimination "changes only the
// behavior of data writebacks and does not affect the performance of
// memory reads at all."
#pragma once

#include <vector>

#include "bwc/analysis/liveness.h"
#include "bwc/ir/program.h"

namespace bwc::transform {

struct StoreEliminationResult {
  ir::Program program;
  /// Arrays whose stores were eliminated.
  std::vector<ir::ArrayId> eliminated;
};

/// Eliminate stores to every array where it is provably safe:
///  - the array is not a program output,
///  - all writes happen in one top-level loop and no later statement reads
///    the array,
///  - within that loop, all references to the array use one identical
///    subscript tuple that covers every loop level with unit coefficients
///    (so iterations touch distinct elements: no cross-iteration reuse),
///  - no reference sits under a guard (conservative).
/// Writes become scalar assignments; subsequent same-iteration reads use
/// the scalar; reads before the write keep reading the array's old values.
/// When `liveness` is given it must be analyze_liveness of `program`
/// (pass::AnalysisManager provides exactly that); the transform then skips
/// its own liveness derivation.
StoreEliminationResult eliminate_stores(
    const ir::Program& program,
    const std::vector<analysis::ArrayLiveness>* liveness = nullptr);

}  // namespace bwc::transform
