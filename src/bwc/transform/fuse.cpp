#include "bwc/transform/fuse.h"

#include <algorithm>
#include <map>
#include <set>

#include "bwc/analysis/access_summary.h"
#include "bwc/fusion/solvers.h"
#include "bwc/support/error.h"
#include "bwc/transform/rewrite.h"

namespace bwc::transform {

namespace {

using analysis::LoopSummary;
using fusion::FusionGraph;
using fusion::FusionPlan;

/// Do a non-loop statement and a loop summary conflict (one writes data the
/// other touches)? Used to place scalar inits and the like around fused
/// partitions without changing semantics.
bool conflicts(const LoopSummary& stmt, const LoopSummary& loop) {
  for (const auto& [array, a] : stmt.arrays) {
    const auto it = loop.arrays.find(array);
    if (it == loop.arrays.end()) continue;
    if (a.has_writes() || it->second.has_writes()) return true;
  }
  for (const auto& [name, a] : stmt.scalars) {
    const auto it = loop.scalars.find(name);
    if (it == loop.scalars.end()) continue;
    if (a.written || it->second.written) return true;
  }
  return false;
}

/// Rename a body's loop variables to `target` (level by level, possibly
/// shifted for promoted members) via unique temporaries so that swaps are
/// safe.
void retarget_vars(ir::StmtList& body, const std::vector<std::string>& from,
                   const std::vector<std::string>& to) {
  BWC_CHECK(from.size() == to.size(), "rename arity mismatch");
  std::map<std::string, std::string> phase1, phase2;
  for (std::size_t i = 0; i < from.size(); ++i) {
    const std::string temp = "__tmp_rn_" + std::to_string(i);
    phase1[from[i]] = temp;
    phase2[temp] = to[i];
  }
  rename_loop_vars(body, phase1);
  rename_loop_vars(body, phase2);
}

/// Fuse a group of depth-1 loops with per-member iteration shifts (loop
/// alignment): member m's body runs its original iteration i - s_m at
/// fused iteration i, delaying consumers past forward dependences.
ir::StmtPtr fuse_group_shifted(const ir::Program& program,
                               const FusionGraph& graph,
                               const std::vector<int>& members) {
  // Shift assignment: a forward pass over the members in program order,
  // honoring every pairwise minimal relative shift (relative shifts may
  // always grow, never shrink, so the longest-path forward pass is exact).
  const std::size_t n = members.size();
  std::vector<std::int64_t> shift(n, 0);
  for (std::size_t j = 1; j < n; ++j) {
    for (std::size_t i = 0; i < j; ++i) {
      const analysis::PairAnalysis& pa =
          graph.pair(members[i], members[j]);
      shift[j] = std::max(shift[j], shift[i] + std::max<std::int64_t>(
                                                   0, pa.min_shift));
    }
  }
  const std::int64_t max_shift =
      *std::max_element(shift.begin(), shift.end());

  const LoopSummary& first =
      graph.summaries[static_cast<std::size_t>(members[0])];
  const std::string& target = first.loop_vars[0];
  const std::int64_t lo = first.lowers[0];
  const std::int64_t hi = first.uppers[0];

  ir::StmtList fused_body;
  for (std::size_t m = 0; m < n; ++m) {
    const LoopSummary& ms =
        graph.summaries[static_cast<std::size_t>(members[m])];
    BWC_CHECK(ms.depth() == 1 && ms.lowers[0] == lo && ms.uppers[0] == hi,
              "shifted fusion requires identical depth-1 loops");
    const int top = graph.loop_tops[static_cast<std::size_t>(members[m])];
    ir::StmtPtr clone = program.top()[static_cast<std::size_t>(top)]->clone();
    ir::StmtList body = std::move(clone->loop->body);
    retarget_vars(body, ms.loop_vars, {target});
    const std::int64_t s = shift[m];
    if (s > 0) {
      substitute_loop_var(body, target, ir::Affine::var(target) - s);
    }
    // Guard to the member's shifted range within the union range.
    if (s > 0) {
      ir::StmtList wrapped;
      wrapped.push_back(ir::make_if(ir::CmpOp::kGe, ir::Affine::var(target),
                                    ir::Affine::constant(lo + s),
                                    std::move(body)));
      body = std::move(wrapped);
    }
    if (s < max_shift) {
      ir::StmtList wrapped;
      wrapped.push_back(ir::make_if(ir::CmpOp::kLe, ir::Affine::var(target),
                                    ir::Affine::constant(hi + s),
                                    std::move(body)));
      body = std::move(wrapped);
    }
    for (auto& stmt : body) fused_body.push_back(std::move(stmt));
  }
  return ir::make_loop(target, lo, hi + max_shift, std::move(fused_body));
}

/// Fuse the loops of one partition into a single loop nest statement.
ir::StmtPtr fuse_group(const ir::Program& program, const FusionGraph& graph,
                       const std::vector<int>& members) {
  BWC_CHECK(!members.empty(), "empty fusion group");
  if (members.size() == 1) {
    const int top = graph.loop_tops[static_cast<std::size_t>(members[0])];
    return program.top()[static_cast<std::size_t>(top)]->clone();
  }

  // Loop-alignment path: all members depth-1 and some pair needs a shift.
  bool all_depth1 = true;
  bool needs_shift = false;
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (graph.summaries[static_cast<std::size_t>(members[i])].depth() != 1)
      all_depth1 = false;
    for (std::size_t j = i + 1; j < members.size(); ++j) {
      if (graph.pair(members[i], members[j]).min_shift > 0)
        needs_shift = true;
    }
  }
  if (all_depth1 && needs_shift)
    return fuse_group_shifted(program, graph, members);
  BWC_CHECK(!needs_shift,
            "shifted fusion requires an all-depth-1 partition");

  // Template: the deepest member (first on ties).
  int tmpl = members[0];
  for (int m : members) {
    if (graph.summaries[static_cast<std::size_t>(m)].depth() >
        graph.summaries[static_cast<std::size_t>(tmpl)].depth())
      tmpl = m;
  }
  const LoopSummary& ts = graph.summaries[static_cast<std::size_t>(tmpl)];
  const int depth = ts.depth();

  // Fused bounds: inner levels from the template; the outer level is the
  // union of the members' outer ranges.
  std::vector<std::int64_t> lowers = ts.lowers;
  std::vector<std::int64_t> uppers = ts.uppers;
  for (int m : members) {
    const LoopSummary& ms = graph.summaries[static_cast<std::size_t>(m)];
    if (ms.depth() == depth) {
      lowers[0] = std::min(lowers[0], ms.lowers[0]);
      uppers[0] = std::max(uppers[0], ms.uppers[0]);
      for (int d = 1; d < depth; ++d) {
        BWC_CHECK(ms.lowers[static_cast<std::size_t>(d)] ==
                          ts.lowers[static_cast<std::size_t>(d)] &&
                      ms.uppers[static_cast<std::size_t>(d)] ==
                          ts.uppers[static_cast<std::size_t>(d)],
                  "fusion group members disagree on inner loop bounds");
      }
    } else {
      BWC_CHECK(ms.depth() == depth - 1,
                "fusion group members must be within one nesting level");
      for (int d = 0; d < depth - 1; ++d) {
        BWC_CHECK(ms.lowers[static_cast<std::size_t>(d)] ==
                          ts.lowers[static_cast<std::size_t>(d + 1)] &&
                      ms.uppers[static_cast<std::size_t>(d)] ==
                          ts.uppers[static_cast<std::size_t>(d + 1)],
                  "promoted member bounds must match the inner levels");
      }
    }
  }

  const std::vector<std::string>& target_vars = ts.loop_vars;

  // Build the fused body: each member's innermost body, retargeted and
  // guarded as needed, concatenated in program order (members are already
  // sorted by node id = program order).
  ir::StmtList fused_body;
  for (int m : members) {
    const int top = graph.loop_tops[static_cast<std::size_t>(m)];
    const LoopSummary& ms = graph.summaries[static_cast<std::size_t>(m)];
    ir::StmtPtr member_clone =
        program.top()[static_cast<std::size_t>(top)]->clone();

    // Peel off the member's own loop shells to reach the innermost body.
    ir::Stmt* cursor = member_clone.get();
    for (int d = 1; d < ms.depth(); ++d) {
      BWC_CHECK(cursor->loop->body.size() == 1 &&
                    cursor->loop->body.front()->kind == ir::StmtKind::kLoop,
                "fusion requires simple (perfectly nested) loop nests");
      cursor = cursor->loop->body.front().get();
    }
    ir::StmtList body = std::move(cursor->loop->body);

    ir::StmtList guarded;
    if (ms.depth() == depth) {
      retarget_vars(body, ms.loop_vars, target_vars);
      // Guard when this member's outer range is narrower than the union.
      const bool need_lo = ms.lowers[0] > lowers[0];
      const bool need_hi = ms.uppers[0] < uppers[0];
      if (need_hi) {
        ir::StmtList wrapped;
        wrapped.push_back(ir::make_if(ir::CmpOp::kLe,
                                      ir::Affine::var(target_vars[0]),
                                      ir::Affine::constant(ms.uppers[0]),
                                      std::move(body)));
        body = std::move(wrapped);
      }
      if (need_lo) {
        ir::StmtList wrapped;
        wrapped.push_back(ir::make_if(ir::CmpOp::kGe,
                                      ir::Affine::var(target_vars[0]),
                                      ir::Affine::constant(ms.lowers[0]),
                                      std::move(body)));
        body = std::move(wrapped);
      }
      guarded = std::move(body);
    } else {
      // Promoted member: runs at one outer iteration. The promote value
      // comes from the pairwise analysis against the template.
      const int lo_node = std::min(m, tmpl);
      const int hi_node = std::max(m, tmpl);
      const analysis::PairAnalysis& pa = graph.pair(lo_node, hi_node);
      BWC_CHECK(pa.compat == analysis::FusionCompat::kPromoteA ||
                    pa.compat == analysis::FusionCompat::kPromoteB,
                "no promotion alignment for shallow fusion member");
      const std::int64_t at = pa.promote_value;
      std::vector<std::string> inner_targets(target_vars.begin() + 1,
                                             target_vars.end());
      retarget_vars(body, ms.loop_vars, inner_targets);
      guarded.push_back(ir::make_if(ir::CmpOp::kEq,
                                    ir::Affine::var(target_vars[0]),
                                    ir::Affine::constant(at),
                                    std::move(body)));
    }
    for (auto& s : guarded) fused_body.push_back(std::move(s));
  }

  // Wrap in the fused loop shells, innermost first.
  ir::StmtPtr nest;
  for (int d = depth - 1; d >= 0; --d) {
    ir::StmtList body;
    if (nest) {
      body.push_back(std::move(nest));
    } else {
      body = std::move(fused_body);
    }
    nest = ir::make_loop(target_vars[static_cast<std::size_t>(d)],
                         lowers[static_cast<std::size_t>(d)],
                         uppers[static_cast<std::size_t>(d)],
                         std::move(body));
  }
  return nest;
}

}  // namespace

ir::Program apply_fusion(const ir::Program& program, const FusionGraph& graph,
                         const FusionPlan& plan) {
  BWC_CHECK(static_cast<int>(plan.assignment.size()) == graph.node_count(),
            "plan does not match fusion graph");
  std::string why;
  BWC_CHECK(fusion::plan_is_valid(graph, plan.assignment, &why),
            "invalid fusion plan: " + why);

  const auto groups = plan.groups();
  const int num_partitions = plan.num_partitions;

  // Fuse each partition.
  std::vector<ir::StmtPtr> fused(static_cast<std::size_t>(num_partitions));
  std::vector<int> group_min_top(static_cast<std::size_t>(num_partitions), 0);
  for (int p = 0; p < num_partitions; ++p) {
    const auto& members = groups[static_cast<std::size_t>(p)];
    fused[static_cast<std::size_t>(p)] = fuse_group(program, graph, members);
    group_min_top[static_cast<std::size_t>(p)] =
        graph.loop_tops[static_cast<std::size_t>(members.front())];
  }

  // Place non-loop top-level statements around the partitions.
  // slot[k] = partition index before which original statement k is emitted
  // (num_partitions = after everything).
  std::vector<int> node_of_top(program.top().size(), -1);
  for (int node = 0; node < graph.node_count(); ++node)
    node_of_top[static_cast<std::size_t>(
        graph.loop_tops[static_cast<std::size_t>(node)])] = node;

  std::vector<std::pair<int, int>> stray;  // (original index, slot)
  for (int k = 0; k < static_cast<int>(program.top().size()); ++k) {
    if (node_of_top[static_cast<std::size_t>(k)] >= 0) continue;
    const LoopSummary sk = analysis::summarize_statement(program, k);
    int before = num_partitions;  // must come before this partition
    int after = -1;               // must come after this partition
    for (int p = 0; p < num_partitions; ++p) {
      for (int m : groups[static_cast<std::size_t>(p)]) {
        const int top = graph.loop_tops[static_cast<std::size_t>(m)];
        if (!conflicts(sk, graph.summaries[static_cast<std::size_t>(m)]))
          continue;
        if (top > k) before = std::min(before, p);
        if (top < k) after = std::max(after, p);
      }
    }
    BWC_CHECK(after < before,
              "cannot place interleaved statement " + std::to_string(k) +
                  " around fused partitions");
    int slot;
    if (before < num_partitions) {
      slot = before;
    } else if (after >= 0) {
      slot = after + 1;
    } else {
      // No conflicts: keep roughly the original position.
      slot = num_partitions;
      for (int p = 0; p < num_partitions; ++p) {
        if (group_min_top[static_cast<std::size_t>(p)] > k) {
          slot = p;
          break;
        }
      }
    }
    stray.emplace_back(k, slot);
  }

  // Assemble the output program.
  ir::Program out(program.name() + " (fused)");
  for (const auto& a : program.arrays())
    out.add_array(a.name, a.extents, a.elem_bytes);
  for (const auto& s : program.scalars()) out.add_scalar(s);

  for (int p = 0; p <= num_partitions; ++p) {
    for (const auto& [k, slot] : stray) {
      if (slot == p)
        out.append(program.top()[static_cast<std::size_t>(k)]->clone());
    }
    if (p < num_partitions)
      out.append(std::move(fused[static_cast<std::size_t>(p)]));
  }

  for (const auto& s : program.output_scalars()) out.mark_output_scalar(s);
  for (ir::ArrayId a : program.output_arrays()) out.mark_output_array(a);
  return out;
}

ir::Program fuse_best(const ir::Program& program) {
  const FusionGraph graph = fusion::build_fusion_graph(program);
  const FusionPlan plan = fusion::best_fusion(graph);
  return apply_fusion(program, graph, plan);
}

}  // namespace bwc::transform
