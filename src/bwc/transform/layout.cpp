#include "bwc/transform/layout.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>
#include <utility>

#include "bwc/analysis/access_summary.h"
#include "bwc/support/error.h"

namespace bwc::transform {

namespace {

using ir::ArrayId;
using ir::Program;

std::int64_t coeff_of(const ir::Affine& a, const std::string& var) {
  std::int64_t c = 0;
  for (const auto& [name, coeff] : a.terms()) {
    if (name == var) c += coeff;
  }
  return c;
}

/// Trip-weighted vote, per array, for which logical dimension the
/// innermost loops index: weight[a][d] accumulates the trip count of
/// every reference whose subscript in dimension d moves with the
/// innermost loop variable.
std::vector<std::map<int, std::int64_t>> innermost_dim_votes(
    const Program& program) {
  std::vector<std::map<int, std::int64_t>> votes(
      static_cast<std::size_t>(program.array_count()));
  for (int t = 0; t < static_cast<int>(program.top().size()); ++t) {
    const analysis::LoopSummary s = analysis::summarize_statement(program, t);
    if (s.depth() == 0) continue;
    const std::string& inner = s.loop_vars.back();
    const std::int64_t trips = std::max<std::int64_t>(0, s.trip_count());
    if (trips == 0) continue;
    for (const auto& [id, access] : s.arrays) {
      auto& w = votes[static_cast<std::size_t>(id)];
      for (const auto* refs : {&access.reads, &access.writes}) {
        for (const auto& subs : *refs) {
          for (std::size_t d = 0; d < subs.size(); ++d)
            if (coeff_of(subs[d], inner) != 0)
              w[static_cast<int>(d)] += trips;
        }
      }
    }
  }
  return votes;
}

/// Distinct sets a byte stride `s` cycles over for `sets` line-`line` sets.
std::int64_t stride_sets(std::int64_t s, std::int64_t line,
                         std::int64_t sets) {
  if (s <= 0) return 0;
  if (s % line != 0) return sets;
  return sets / std::gcd(sets, s / line);
}

}  // namespace

LayoutResult transpose_layouts(const Program& program) {
  LayoutResult result;
  result.program = program.clone();
  Program& p = result.program;
  const auto votes = innermost_dim_votes(p);

  for (int a = 0; a < p.array_count(); ++a) {
    ir::ArrayDecl& decl = p.mutable_array(a);
    const std::size_t rank = decl.extents.size();
    if (rank < 2) continue;
    // Permuting one group member would desynchronize the group's slot
    // walk, and reordering under existing padding would repurpose the pad
    // positions; both stay out of scope.
    if (decl.layout.group >= 0 || !decl.layout.pad.empty()) continue;
    const auto& w = votes[static_cast<std::size_t>(a)];
    if (w.empty()) continue;
    int dominant = -1;
    std::int64_t best = 0;
    for (const auto& [dim, weight] : w) {
      if (weight > best) {
        best = weight;
        dominant = dim;
      }
    }
    const int current = decl.storage_dim(0);
    const auto it = w.find(current);
    const std::int64_t current_weight = it == w.end() ? 0 : it->second;
    if (dominant < 0 || dominant == current || best <= current_weight)
      continue;

    // New order: the dominant dimension first, the rest keeping their
    // current relative storage order.
    std::vector<int> order{dominant};
    for (std::size_t k = 0; k < rank; ++k) {
      const int d = decl.storage_dim(k);
      if (d != dominant) order.push_back(d);
    }
    decl.layout.order = std::move(order);
    decl.check_layout();
    result.actions.push_back("transposed " + decl.name +
                             ": storage-fastest dim " +
                             std::to_string(current) + " -> " +
                             std::to_string(dominant));
  }
  return result;
}

LayoutResult regroup_layouts(const Program& program) {
  LayoutResult result;
  result.program = program.clone();
  Program& p = result.program;

  // Which statements access each array, and whether it is ever written.
  // Written and read-only arrays are not mixed: interleaving read-only
  // elements into dirtied cache lines would get them written back too.
  std::vector<std::vector<int>> accessed_by(
      static_cast<std::size_t>(p.array_count()));
  std::vector<bool> written(static_cast<std::size_t>(p.array_count()), false);
  for (int t = 0; t < static_cast<int>(p.top().size()); ++t) {
    const analysis::LoopSummary s = analysis::summarize_statement(p, t);
    for (const auto& [id, access] : s.arrays) {
      accessed_by[static_cast<std::size_t>(id)].push_back(t);
      if (access.has_writes()) written[static_cast<std::size_t>(id)] = true;
    }
  }

  struct Key {
    std::int64_t slots;
    std::uint64_t elem_bytes;
    std::vector<int> stmts;
    bool written;
    bool operator<(const Key& o) const {
      if (slots != o.slots) return slots < o.slots;
      if (elem_bytes != o.elem_bytes) return elem_bytes < o.elem_bytes;
      if (written != o.written) return written < o.written;
      return stmts < o.stmts;
    }
  };
  std::map<Key, std::vector<ArrayId>> buckets;
  int next_group = 0;
  for (int a = 0; a < p.array_count(); ++a) {
    const ir::ArrayDecl& decl = p.array(a);
    next_group = std::max(next_group, decl.layout.group + 1);
    if (decl.layout.group >= 0) continue;  // already interleaved
    if (decl.extents.size() != 1) continue;
    if (accessed_by[static_cast<std::size_t>(a)].empty()) continue;
    buckets[{decl.padded_element_count(), decl.elem_bytes,
             accessed_by[static_cast<std::size_t>(a)],
             written[static_cast<std::size_t>(a)]}]
        .push_back(a);
  }

  for (const auto& [key, members] : buckets) {
    if (members.size() < 2) continue;
    std::string names;
    for (ArrayId a : members) {
      p.mutable_array(a).layout.group = next_group;
      names += (names.empty() ? "" : ", ") + p.array(a).name;
    }
    result.actions.push_back("interleaved {" + names + "} as group " +
                             std::to_string(next_group));
    ++next_group;
  }
  return result;
}

LayoutResult pad_layouts(const Program& program,
                         const analysis::LayoutGeometry& g) {
  LayoutResult result;
  result.program = program.clone();
  Program& p = result.program;
  const auto line = static_cast<std::int64_t>(g.line_bytes);
  const auto sets = static_cast<std::int64_t>(g.sets);

  // Greedy: fix the first conflicting array the estimator reports, keep
  // the pad only when the whole-program estimate strictly improves, and
  // repeat until a full pass changes nothing. `tried` keeps a rejected
  // proposal from being re-proposed forever.
  std::set<ArrayId> tried;
  for (;;) {
    const analysis::LayoutTrafficEstimate est =
        analysis::estimate_layout_traffic(p, g);
    bool changed = false;
    for (int a = 0; a < p.array_count() && !changed; ++a) {
      const analysis::ArrayLayoutTraffic& info = est.of(a);
      if (!info.conflict || tried.count(a) > 0) continue;
      ir::ArrayDecl& decl = p.mutable_array(a);
      if (decl.layout.group >= 0) continue;  // pad would break the group
      const std::size_t rank = decl.extents.size();
      const auto elem = static_cast<std::int64_t>(decl.elem_bytes);
      if (elem <= 0 || elem >= line) continue;

      std::int64_t pad0 = 0;
      std::string why;
      if (rank >= 2) {
        // Inter-dimension pad: grow the fastest storage extent until the
        // next storage position's byte stride spreads over all sets
        // (ideally an odd multiple of the line size).
        const std::int64_t limit = 4 * line / elem + 4;
        std::int64_t best_sets =
            stride_sets(decl.padded_extent(0) * elem, line, sets);
        for (std::int64_t q = 1; q <= limit && best_sets < sets; ++q) {
          const std::int64_t s = (decl.padded_extent(0) + q) * elem;
          const std::int64_t ds = stride_sets(s, line, sets);
          if (ds > best_sets) {
            best_sets = ds;
            pad0 = q;
          }
        }
        why = "stride conflict";
      } else if (rank == 1) {
        // End pad: grow the allocation past the next alignment boundary
        // so every later array's base moves to a different set phase.
        pad0 = static_cast<std::int64_t>(g.alignment) / elem;
        why = "base-phase conflict";
      }
      if (pad0 <= 0) continue;

      tried.insert(a);
      const ir::ArrayLayout saved = decl.layout;
      std::vector<std::int64_t> pad = decl.layout.pad;
      if (pad.empty()) pad.assign(rank, 0);
      pad[0] += pad0;
      decl.layout.pad = std::move(pad);
      decl.check_layout();
      const analysis::LayoutTrafficEstimate est2 =
          analysis::estimate_layout_traffic(p, g);
      if (est2.total_line_bytes < est.total_line_bytes) {
        result.actions.push_back(
            "padded " + decl.name + " by " + std::to_string(pad0) +
            " slots (" + why + ": " + std::to_string(est.total_line_bytes) +
            " -> " + std::to_string(est2.total_line_bytes) + " line bytes)");
        changed = true;
      } else {
        decl.layout = saved;
      }
    }
    if (!changed) break;
  }
  return result;
}

}  // namespace bwc::transform
