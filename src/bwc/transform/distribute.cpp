#include "bwc/transform/distribute.h"

#include <vector>

#include "bwc/analysis/access_summary.h"
#include "bwc/analysis/dependence.h"
#include "bwc/support/error.h"

namespace bwc::transform {

namespace {

using ir::Program;
using ir::Stmt;
using ir::StmtKind;
using ir::StmtList;

/// Depth of the simple spine of a loop statement; the innermost body.
StmtList* innermost(Stmt& loop_stmt, int* depth,
                    std::vector<const ir::Loop*>* shells) {
  Stmt* cursor = &loop_stmt;
  *depth = 0;
  while (true) {
    ++*depth;
    shells->push_back(cursor->loop.get());
    StmtList& body = cursor->loop->body;
    if (body.size() == 1 && body.front()->kind == StmtKind::kLoop) {
      cursor = body.front().get();
      continue;
    }
    for (const auto& s : body) {
      if (s->kind == StmtKind::kLoop) return nullptr;  // non-simple
    }
    return &body;
  }
}

/// Can statement groups split between positions a (earlier stmt) and b
/// (later stmt)? Uses analyze_pair on two synthetic single-statement loops
/// that share the program's declarations.
bool may_sequence(const Program& program, const Stmt& loop_stmt, int a,
                  int b) {
  // Build a scratch program containing the loop twice, each copy holding a
  // single statement of the pair.
  Program scratch = program.clone();
  scratch.top().clear();
  for (int which : {a, b}) {
    ir::StmtPtr copy = loop_stmt.clone();
    // Walk to the innermost body of the copy and keep only `which`.
    Stmt* cursor = copy.get();
    while (cursor->loop->body.size() == 1 &&
           cursor->loop->body.front()->kind == StmtKind::kLoop) {
      cursor = cursor->loop->body.front().get();
    }
    StmtList kept;
    kept.push_back(std::move(cursor->loop->body[static_cast<std::size_t>(
        which)]));
    cursor->loop->body = std::move(kept);
    scratch.append(std::move(copy));
  }
  const auto summaries = analysis::summarize_program(scratch);
  const analysis::PairAnalysis pa =
      analysis::analyze_pair(summaries[0], summaries[1]);
  return !pa.fusion_preventing;
}

/// Distribute one top-level loop in place; returns the replacement loops.
std::vector<ir::StmtPtr> distribute_one(const Program& program,
                                        const Stmt& loop_stmt) {
  std::vector<ir::StmtPtr> out;
  // Work on a clone so the shells can be replicated per group.
  ir::StmtPtr base = loop_stmt.clone();
  int depth = 0;
  std::vector<const ir::Loop*> shells;
  StmtList* body = innermost(*base, &depth, &shells);
  if (body == nullptr || body->size() < 2) {
    out.push_back(loop_stmt.clone());
    return out;
  }
  const int k = static_cast<int>(body->size());

  // Boundaries that may be split: between s and s+1 iff every earlier
  // statement may be fully sequenced before every later one across that
  // boundary.
  std::vector<bool> splittable(static_cast<std::size_t>(k - 1), true);
  for (int i = 0; i < k; ++i) {
    for (int j = i + 1; j < k; ++j) {
      if (!may_sequence(program, loop_stmt, i, j)) {
        for (int boundary = i; boundary < j; ++boundary)
          splittable[static_cast<std::size_t>(boundary)] = false;
      }
    }
  }

  // Emit one loop nest per contiguous group.
  int group_start = 0;
  for (int boundary = 0; boundary <= k - 1; ++boundary) {
    const bool split_here =
        boundary == k - 1 || splittable[static_cast<std::size_t>(boundary)];
    if (!split_here) continue;
    const int group_end = boundary;  // inclusive statement index
    StmtList group;
    for (int s = group_start; s <= group_end; ++s)
      group.push_back((*body)[static_cast<std::size_t>(s)]->clone());
    // Rebuild the shells innermost-out.
    ir::StmtPtr nest;
    for (int d = depth - 1; d >= 0; --d) {
      StmtList inner;
      if (nest) {
        inner.push_back(std::move(nest));
      } else {
        inner = std::move(group);
      }
      nest = ir::make_loop(shells[static_cast<std::size_t>(d)]->var,
                           shells[static_cast<std::size_t>(d)]->lower,
                           shells[static_cast<std::size_t>(d)]->upper,
                           std::move(inner));
    }
    out.push_back(std::move(nest));
    group_start = group_end + 1;
  }
  return out;
}

}  // namespace

DistributionResult distribute_loops(const Program& program) {
  DistributionResult result;
  result.loops_before =
      static_cast<int>(program.top_loop_indices().size());

  Program out(program.name() + " (distributed)");
  for (const auto& a : program.arrays())
    out.add_array(a.name, a.extents, a.elem_bytes);
  for (const auto& s : program.scalars()) out.add_scalar(s);

  for (const auto& stmt : program.top()) {
    if (stmt->kind != StmtKind::kLoop) {
      out.append(stmt->clone());
      continue;
    }
    for (auto& piece : distribute_one(program, *stmt))
      out.append(std::move(piece));
  }
  for (const auto& s : program.output_scalars()) out.mark_output_scalar(s);
  for (ir::ArrayId a : program.output_arrays()) out.mark_output_array(a);

  result.loops_after = static_cast<int>(out.top_loop_indices().size());
  result.program = std::move(out);
  return result;
}

}  // namespace bwc::transform
