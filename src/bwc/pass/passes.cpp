#include "bwc/pass/passes.h"

#include <sstream>
#include <utility>

#include "bwc/fusion/solvers.h"
#include "bwc/pass/lint.h"
#include "bwc/support/error.h"
#include "bwc/analysis/layout_traffic.h"
#include "bwc/transform/distribute.h"
#include "bwc/transform/fuse.h"
#include "bwc/transform/interchange.h"
#include "bwc/transform/layout.h"
#include "bwc/transform/regrouping.h"
#include "bwc/transform/scalar_replacement.h"
#include "bwc/transform/storage_reduction.h"
#include "bwc/transform/store_elimination.h"
#include "bwc/verify/observability.h"
#include "bwc/verify/static_legality.h"
#include "bwc/verify/translation.h"

namespace bwc::pass {

namespace {

/// Static-first checking: a kProven certificate (input-independent) makes
/// the trace replay unnecessary; otherwise the trace validator decides for
/// the current problem size -- except in kOnly mode, where the static
/// verdict is final (kRefuted fails, kUnknown reports a skipped check).
template <typename Prover, typename TraceCheck>
verify::Report static_first(const ir::Program& before,
                            const ir::Program& after,
                            const CheckOptions& options, Prover prove,
                            const std::string& static_check,
                            const std::string& code, TraceCheck trace) {
  if (options.static_verify == StaticVerifyMode::kOff) return trace();
  const verify::LegalityResult result = prove(before, after);
  if (result.verdict == verify::LegalityVerdict::kProven ||
      options.static_verify == StaticVerifyMode::kOnly) {
    return result.to_report(static_check, code);
  }
  return trace();
}

}  // namespace

// ---------------------------------------------------------------------------
// interchange

PassResult InterchangePass::run(ir::Program& program, AnalysisManager& am,
                                PassReport& report) {
  transform::InterchangeResult result =
      transform::auto_interchange(program, &am.statement_summaries(program));
  PassResult pr;
  if (result.interchanged.empty()) {
    // The legacy optimizer logged nothing when no nest was interchanged;
    // record the miss as a note so render_log stays byte-identical.
    report.note("interchange-no-candidates",
                "no 2-deep nest both profits from and permits interchange");
    return pr;
  }
  std::ostringstream args;
  for (std::size_t i = 0; i < result.interchanged.size(); ++i) {
    if (i > 0) args << " ";
    args << result.interchanged[i];
  }
  report.applied("interchange-applied",
                 "interchange: swapped " +
                     std::to_string(result.interchanged.size()) +
                     " nest(s) to stride-1 order",
                 {{"nests", std::to_string(result.interchanged.size())},
                  {"top_indices", args.str()}});
  program = std::move(result.program);
  pr.changed = true;
  // Interchange permutes the spine of individual nests: per-statement
  // access summaries change (loop order), but which statements touch
  // which arrays does not (liveness), and footprints are unchanged
  // (traffic bound).
  pr.preserved = PreservedAnalyses::none()
                     .preserve(AnalysisId::kLiveness)
                     .preserve(AnalysisId::kTrafficBound);
  return pr;
}

verify::Report InterchangePass::check(const ir::Program& before,
                                      const ir::Program& after,
                                      const CheckOptions& options) const {
  return static_first(before, after, options, verify::prove_reschedule,
                      "static-reschedule", "reschedule", [&] {
                        return verify::validate_translation(
                            before, after, {options.max_events});
                      });
}

// ---------------------------------------------------------------------------
// fuse

FusePass::FusePass(Options options) : options_(std::move(options)) {}

namespace {

fusion::FusionPlan solve(const std::string& solver,
                         const fusion::FusionGraph& graph) {
  if (solver == "best") return fusion::best_fusion(graph);
  if (solver == "exact") return fusion::exact_enumeration(graph);
  if (solver == "greedy") return fusion::greedy_fusion(graph);
  if (solver == "bisection") return fusion::recursive_bisection(graph);
  if (solver == "edge-weighted") return fusion::edge_weighted_baseline(graph);
  throw Error("unknown fusion solver: " + solver);
}

}  // namespace

PassResult FusePass::run(ir::Program& program, AnalysisManager& am,
                         PassReport& report) {
  fusion::FusionGraphOptions graph_options;
  graph_options.allow_shifted_fusion = options_.allow_shifted_fusion;
  graph_options.max_shift = options_.max_shift;
  const fusion::FusionGraph& graph = am.fusion_graph(program, graph_options);
  plan_ = solve(options_.solver, graph);
  const fusion::FusionPlan unfused = fusion::no_fusion(graph);

  PassResult pr;
  if (plan_.num_partitions >= graph.node_count()) {
    report.missed("fusion-not-profitable", "fusion: no profitable fusion found",
                  {{"solver", plan_.solver},
                   {"loops", std::to_string(graph.node_count())},
                   {"unfused_cost", std::to_string(unfused.cost)}});
    return pr;
  }
  ir::Program fused = transform::apply_fusion(program, graph, plan_);
  std::ostringstream os;
  os << "fusion (" << plan_.solver << "): " << graph.node_count()
     << " loops -> " << plan_.num_partitions << " partitions; arrays loaded "
     << unfused.cost << " -> " << plan_.cost;
  report.applied("fusion-applied", os.str(),
                 {{"solver", plan_.solver},
                  {"loops", std::to_string(graph.node_count())},
                  {"partitions", std::to_string(plan_.num_partitions)},
                  {"cost_before", std::to_string(unfused.cost)},
                  {"cost_after", std::to_string(plan_.cost)},
                  {"bytes_cost", std::to_string(plan_.bytes_cost)}});
  program = std::move(fused);
  pr.changed = true;
  return pr;
}

verify::Report FusePass::check(const ir::Program& before,
                               const ir::Program& after,
                               const CheckOptions& options) const {
  return static_first(before, after, options, verify::prove_reschedule,
                      "static-reschedule", "reschedule", [&] {
                        return verify::validate_translation(
                            before, after, {options.max_events});
                      });
}

// ---------------------------------------------------------------------------
// reduce-storage

PassResult ReduceStoragePass::run(ir::Program& program, AnalysisManager& am,
                                  PassReport& report) {
  transform::StorageReductionResult result =
      transform::reduce_storage(program, &am.statement_summaries(program));
  PassResult pr;
  if (result.actions.empty()) {
    report.missed("storage-no-candidates",
                  "storage reduction: no candidate arrays");
    return pr;
  }
  for (const auto& action : result.actions)
    report.applied("storage-reduced", "storage reduction: " + action);
  std::ostringstream os;
  os << "storage reduction: referenced array bytes "
     << result.referenced_bytes_before << " -> "
     << result.referenced_bytes_after;
  report.applied(
      "storage-bytes", os.str(),
      {{"bytes_before", std::to_string(result.referenced_bytes_before)},
       {"bytes_after", std::to_string(result.referenced_bytes_after)}});
  program = std::move(result.program);
  pr.changed = true;
  return pr;
}

verify::Report ReduceStoragePass::check(const ir::Program& before,
                                        const ir::Program& after,
                                        const CheckOptions& options) const {
  return static_first(before, after, options, verify::prove_storage_reduction,
                      "static-storage-reduction", "storage-reduction", [&] {
                        return verify::validate_storage_reduction(
                            before, after, {options.max_events});
                      });
}

// ---------------------------------------------------------------------------
// eliminate-stores

PassResult EliminateStoresPass::run(ir::Program& program, AnalysisManager& am,
                                    PassReport& report) {
  transform::StoreEliminationResult result =
      transform::eliminate_stores(program, &am.liveness(program));
  PassResult pr;
  if (result.eliminated.empty()) {
    report.missed("stores-no-candidates",
                  "store elimination: no candidate arrays");
    return pr;
  }
  std::ostringstream os;
  std::ostringstream names;
  os << "store elimination: removed writebacks to";
  for (std::size_t i = 0; i < result.eliminated.size(); ++i) {
    const std::string& name =
        result.program.array(result.eliminated[i]).name;
    os << " " << name;
    if (i > 0) names << " ";
    names << name;
  }
  report.applied("stores-eliminated", os.str(),
                 {{"arrays", names.str()},
                  {"count", std::to_string(result.eliminated.size())}});
  program = std::move(result.program);
  pr.changed = true;
  return pr;
}

verify::Report EliminateStoresPass::check(const ir::Program& before,
                                          const ir::Program& after,
                                          const CheckOptions& options) const {
  return static_first(before, after, options, verify::prove_store_elimination,
                      "static-store-elimination", "store-elimination", [&] {
                        return verify::validate_store_elimination(
                            before, after, {options.max_events});
                      });
}

// ---------------------------------------------------------------------------
// scalar-replace

PassResult ScalarReplacePass::run(ir::Program& program, AnalysisManager& am,
                                  PassReport& report) {
  (void)am;  // purely local rewrite; needs no whole-program analysis
  transform::ScalarReplacementResult result =
      transform::replace_scalars(program);
  PassResult pr;
  if (result.actions.empty()) {
    report.missed("scalars-no-candidates",
                  "scalar replacement: no stencil candidates");
    return pr;
  }
  for (const auto& action : result.actions)
    report.applied("scalars-replaced", "scalar replacement: " + action);
  report.note("scalars-loads-removed",
              std::to_string(result.loads_removed) +
                  " static load(s) removed per iteration",
              {{"loads_removed", std::to_string(result.loads_removed)}});
  program = std::move(result.program);
  pr.changed = true;
  return pr;
}

// ---------------------------------------------------------------------------
// regroup

PassResult RegroupPass::run(ir::Program& program, AnalysisManager& am,
                            PassReport& report) {
  (void)am;  // candidate detection does its own co-access scan
  transform::RegroupingResult result = transform::regroup_all(program);
  PassResult pr;
  if (result.actions.empty()) {
    report.note("regroup-no-candidates",
                "no arrays are always accessed together");
    return pr;
  }
  for (const auto& action : result.actions)
    report.applied("regrouped", "regrouping: " + action);
  program = std::move(result.program);
  pr.changed = true;
  return pr;
}

// ---------------------------------------------------------------------------
// distribute

PassResult DistributePass::run(ir::Program& program, AnalysisManager& am,
                               PassReport& report) {
  (void)am;
  transform::DistributionResult result = transform::distribute_loops(program);
  PassResult pr;
  if (result.loops_after <= result.loops_before) {
    report.missed("distribute-no-candidates",
                  "distribution: no loop could be split");
    return pr;
  }
  report.applied("distributed",
                 "distribution: split " +
                     std::to_string(result.loops_before) + " loop(s) into " +
                     std::to_string(result.loops_after),
                 {{"loops_before", std::to_string(result.loops_before)},
                  {"loops_after", std::to_string(result.loops_after)}});
  program = std::move(result.program);
  pr.changed = true;
  return pr;
}

verify::Report DistributePass::check(const ir::Program& before,
                                     const ir::Program& after,
                                     const CheckOptions& options) const {
  return static_first(before, after, options, verify::prove_reschedule,
                      "static-reschedule", "reschedule", [&] {
                        return verify::validate_translation(
                            before, after, {options.max_events});
                      });
}

// ---------------------------------------------------------------------------
// layout passes (transpose-layout, regroup-arrays, pad-arrays)

namespace {

/// Shared tail of the three layout passes: publish the estimator's
/// per-array line-traffic breakdown (before vs after), record the
/// applied/missed remarks, and install the transformed program. Layout
/// changes alter printed IR and simulated addressing, so nothing cached
/// survives (the default PreservedAnalyses::none()).
PassResult finish_layout_pass(ir::Program& program, PassReport& report,
                              transform::LayoutResult result,
                              const std::string& label,
                              const std::string& code_prefix) {
  const analysis::LayoutTrafficEstimate before =
      analysis::estimate_layout_traffic(program);
  const analysis::LayoutTrafficEstimate after =
      analysis::estimate_layout_traffic(result.program);
  for (int a = 0; a < program.array_count(); ++a) {
    if (before.of(a).accesses == 0 && after.of(a).accesses == 0) continue;
    report.per_array.push_back({program.array(a).name,
                                before.of(a).line_bytes_estimate,
                                after.of(a).line_bytes_estimate});
  }
  PassResult pr;
  if (result.actions.empty()) {
    report.missed(code_prefix + "-no-candidates",
                  label + ": no profitable layout change");
    return pr;
  }
  for (const auto& action : result.actions)
    report.applied(code_prefix + "-applied", label + ": " + action);
  report.note(
      code_prefix + "-traffic",
      "estimated line traffic " + std::to_string(before.total_line_bytes) +
          " -> " + std::to_string(after.total_line_bytes) + " bytes",
      {{"line_bytes_before", std::to_string(before.total_line_bytes)},
       {"line_bytes_after", std::to_string(after.total_line_bytes)}});
  program = std::move(result.program);
  pr.changed = true;
  return pr;
}

verify::Report check_layout_pass(const ir::Program& before,
                                 const ir::Program& after,
                                 const CheckOptions& options) {
  return static_first(before, after, options, verify::prove_layout_change,
                      "static-layout-change", "layout-change", [&] {
                        return verify::validate_translation(
                            before, after, {options.max_events});
                      });
}

}  // namespace

PassResult TransposeLayoutPass::run(ir::Program& program, AnalysisManager& am,
                                    PassReport& report) {
  (void)am;  // vote census walks the program itself
  return finish_layout_pass(program, report, transform::transpose_layouts(program),
                            "layout transpose", "transpose-layout");
}

verify::Report TransposeLayoutPass::check(const ir::Program& before,
                                          const ir::Program& after,
                                          const CheckOptions& options) const {
  return check_layout_pass(before, after, options);
}

PassResult RegroupArraysPass::run(ir::Program& program, AnalysisManager& am,
                                  PassReport& report) {
  (void)am;
  return finish_layout_pass(program, report, transform::regroup_layouts(program),
                            "layout regrouping", "regroup-arrays");
}

verify::Report RegroupArraysPass::check(const ir::Program& before,
                                        const ir::Program& after,
                                        const CheckOptions& options) const {
  return check_layout_pass(before, after, options);
}

PassResult PadArraysPass::run(ir::Program& program, AnalysisManager& am,
                              PassReport& report) {
  (void)am;
  return finish_layout_pass(program, report, transform::pad_layouts(program),
                            "layout padding", "pad-arrays");
}

verify::Report PadArraysPass::check(const ir::Program& before,
                                    const ir::Program& after,
                                    const CheckOptions& options) const {
  return check_layout_pass(before, after, options);
}

// ---------------------------------------------------------------------------
// registry

namespace {

[[noreturn]] void bad_param(const PassSpec& spec, const std::string& key) {
  throw Error("pass \"" + spec.name + "\" does not take parameter \"" + key +
              "\"");
}

void expect_no_params(const PassSpec& spec) {
  if (!spec.params.empty()) bad_param(spec, spec.params.front().first);
}

std::unique_ptr<Pass> create_fuse(const PassSpec& spec) {
  FusePass::Options options;
  for (const auto& [key, value] : spec.params) {
    if (key == "solver") {
      if (value != "best" && value != "exact" && value != "greedy" &&
          value != "bisection" && value != "edge-weighted") {
        throw Error("unknown fusion solver: " + value);
      }
      options.solver = value;
    } else if (key == "shift") {
      if (value != "0" && value != "1")
        throw Error("fuse parameter shift must be 0 or 1, got \"" + value +
                    "\"");
      options.allow_shifted_fusion = value == "1";
    } else if (key == "max-shift") {
      try {
        options.max_shift = std::stoll(value);
      } catch (const std::exception&) {
        throw Error("fuse parameter max-shift must be an integer, got \"" +
                    value + "\"");
      }
    } else {
      bad_param(spec, key);
    }
  }
  return std::make_unique<FusePass>(options);
}

}  // namespace

std::unique_ptr<Pass> create_pass(const PassSpec& spec) {
  if (spec.name == "fuse") return create_fuse(spec);
  if (spec.name == "interchange") {
    expect_no_params(spec);
    return std::make_unique<InterchangePass>();
  }
  if (spec.name == "reduce-storage") {
    expect_no_params(spec);
    return std::make_unique<ReduceStoragePass>();
  }
  if (spec.name == "eliminate-stores") {
    expect_no_params(spec);
    return std::make_unique<EliminateStoresPass>();
  }
  if (spec.name == "scalar-replace") {
    expect_no_params(spec);
    return std::make_unique<ScalarReplacePass>();
  }
  if (spec.name == "regroup") {
    expect_no_params(spec);
    return std::make_unique<RegroupPass>();
  }
  if (spec.name == "distribute") {
    expect_no_params(spec);
    return std::make_unique<DistributePass>();
  }
  if (spec.name == "transpose-layout") {
    expect_no_params(spec);
    return std::make_unique<TransposeLayoutPass>();
  }
  if (spec.name == "regroup-arrays") {
    expect_no_params(spec);
    return std::make_unique<RegroupArraysPass>();
  }
  if (spec.name == "pad-arrays") {
    expect_no_params(spec);
    return std::make_unique<PadArraysPass>();
  }
  if (spec.name == "lint") {
    expect_no_params(spec);
    return std::make_unique<LintPass>();
  }
  throw Error("unknown pass: " + spec.name);
}

std::vector<std::unique_ptr<Pass>> build_pipeline(const PipelineSpec& spec) {
  std::vector<std::unique_ptr<Pass>> passes;
  passes.reserve(spec.passes.size());
  for (const PassSpec& pass : spec.passes) passes.push_back(create_pass(pass));
  return passes;
}

}  // namespace bwc::pass
