// Structured per-pass reporting: remarks, IR deltas, timing and verifier
// outcomes, replacing the optimizer's old free-form string log. Every pass
// run produces one PassReport; a pipeline run produces a PipelineReport.
// The legacy log lines are derived from the reports (legacy_lines), so
// core::render_log output stays stable while every fact is also available
// as a typed field. docs/PIPELINE.md documents the remark schema; the JSON
// rendering is validated in CI by tools/check_remarks_schema.py.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "bwc/analysis/access_summary.h"
#include "bwc/ir/program.h"

namespace bwc::pass {

/// How a remark relates to the legacy log: kApplied and kMissed remarks
/// are exactly the lines the pre-pass-manager optimizer logged (their
/// `message` is byte-identical to the old line); kNote remarks are
/// additional machine-readable detail (why a fusion was rejected, which
/// array shrank) that never appears in render_log.
enum class RemarkKind { kApplied, kMissed, kNote };

const char* remark_kind_name(RemarkKind kind);

/// How serious a remark is. Ordinary pass remarks are kInfo; diagnostics
/// passes (pass/lint.h) grade their findings, and bwcopt --lint exits
/// nonzero when any kError finding was emitted.
enum class RemarkSeverity { kInfo, kWarning, kError };

const char* remark_severity_name(RemarkSeverity severity);

/// One machine-readable observation from a pass run.
struct Remark {
  RemarkKind kind = RemarkKind::kNote;
  /// Stable kebab-case code, e.g. "fusion-applied", "store-eliminated".
  std::string code;
  /// Human-readable text; for kApplied/kMissed this is the legacy log line.
  std::string message;
  /// Structured key=value detail (all values rendered as strings).
  std::vector<std::pair<std::string, std::string>> args;
  RemarkSeverity severity = RemarkSeverity::kInfo;
};

/// Coarse shape of the IR, captured before and after every pass.
struct IrStats {
  int loops = 0;       // top-level loop nests
  int statements = 0;  // top-level statements (loops included)
  int arrays_referenced = 0;
  std::uint64_t referenced_bytes = 0;
};

/// Compute IrStats from cached per-statement summaries (one per top-level
/// statement, as produced by AnalysisManager::statement_summaries).
IrStats compute_ir_stats(const ir::Program& program,
                         const std::vector<analysis::LoopSummary>& summaries);

/// Outcome of the inter-pass verifier check that followed a pass.
struct VerifyOutcome {
  bool ran = false;
  /// Which checker ran ("translation", "storage-reduction", ...).
  std::string check;
  /// The instance-level part was skipped (event budget).
  bool skipped = false;
  std::string skip_reason;
  std::uint64_t instances_checked = 0;
};

/// Per-array traffic attribution: estimated line-granular bytes an array
/// moves before and after a pass (analysis::estimate_layout_traffic).
/// Layout passes fill one entry per referenced array; other passes leave
/// the breakdown empty.
struct ArrayTraffic {
  std::string name;
  std::int64_t bytes_before = 0;
  std::int64_t bytes_after = 0;
};

/// Everything one pass run produced.
struct PassReport {
  std::string pass;   // PipelineSpec name, e.g. "fuse"
  std::string label;  // human label used in logs, e.g. "fusion"
  bool changed = false;
  double wall_ms = 0.0;    // transform time (excludes verification)
  double verify_ms = 0.0;  // inter-pass checker time
  IrStats ir_before;
  IrStats ir_after;
  /// Static memory-traffic lower bound (verify::traffic_bound) of the
  /// program before/after the pass, in bytes; -1 when not computed.
  std::int64_t traffic_bound_before = -1;
  std::int64_t traffic_bound_after = -1;
  VerifyOutcome verify;
  std::vector<Remark> remarks;
  /// Per-array line-traffic breakdown; empty unless the pass computed one.
  std::vector<ArrayTraffic> per_array;

  /// after - before, or 0 when either side was not computed.
  std::int64_t traffic_bound_delta() const;

  void applied(std::string code, std::string message,
               std::vector<std::pair<std::string, std::string>> args = {});
  void missed(std::string code, std::string message,
              std::vector<std::pair<std::string, std::string>> args = {});
  void note(std::string code, std::string message,
            std::vector<std::pair<std::string, std::string>> args = {});
  /// A graded diagnostic finding (lint): a kNote remark with a severity.
  void finding(RemarkSeverity severity, std::string code, std::string message,
               std::vector<std::pair<std::string, std::string>> args = {});

  /// The legacy optimizer log lines for this pass: kApplied/kMissed remark
  /// messages in order, then the verify line when the checker ran.
  std::vector<std::string> legacy_lines() const;
};

/// Analysis-cache counters (filled from AnalysisManager::stats()).
struct AnalysisCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t invalidations = 0;
};

/// One pipeline run: per-pass reports plus cache counters.
struct PipelineReport {
  std::vector<PassReport> passes;
  AnalysisCacheStats analysis;

  /// Legacy log lines of all passes, in pipeline order.
  std::vector<std::string> legacy_lines() const;

  /// Number of kError-severity remarks across all passes (bwcopt --lint
  /// exits 1 when nonzero).
  int error_findings() const;

  /// Machine-readable rendering (schema "bwc-remarks-v1"; validated by
  /// tools/check_remarks_schema.py). `program` and `pipeline` name the
  /// optimized program and the PipelineSpec that produced the run.
  std::string to_json(const std::string& program,
                      const std::string& pipeline) const;
};

}  // namespace bwc::pass
