#include "bwc/pass/report.h"

#include <cstdio>
#include <sstream>

namespace bwc::pass {

namespace {

/// JSON string escaping (control characters, quotes, backslashes).
std::string json_escape(const std::string& s) {
  std::ostringstream os;
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  return os.str();
}

std::string json_str(const std::string& s) {
  return "\"" + json_escape(s) + "\"";
}

void append_ir_stats(std::ostringstream& os, const char* key,
                     const IrStats& s) {
  os << json_str(key) << ": {\"loops\": " << s.loops
     << ", \"statements\": " << s.statements
     << ", \"arrays_referenced\": " << s.arrays_referenced
     << ", \"referenced_bytes\": " << s.referenced_bytes << "}";
}

}  // namespace

const char* remark_kind_name(RemarkKind kind) {
  switch (kind) {
    case RemarkKind::kApplied: return "applied";
    case RemarkKind::kMissed: return "missed";
    case RemarkKind::kNote: return "note";
  }
  return "note";
}

const char* remark_severity_name(RemarkSeverity severity) {
  switch (severity) {
    case RemarkSeverity::kInfo: return "info";
    case RemarkSeverity::kWarning: return "warning";
    case RemarkSeverity::kError: return "error";
  }
  return "info";
}

IrStats compute_ir_stats(const ir::Program& program,
                         const std::vector<analysis::LoopSummary>& summaries) {
  IrStats stats;
  stats.statements = static_cast<int>(program.top().size());
  stats.loops = static_cast<int>(program.top_loop_indices().size());
  std::vector<bool> referenced(
      static_cast<std::size_t>(program.array_count()), false);
  for (const auto& s : summaries) {
    for (const auto& [array, access] : s.arrays)
      referenced[static_cast<std::size_t>(array)] = true;
  }
  for (int a = 0; a < program.array_count(); ++a) {
    if (referenced[static_cast<std::size_t>(a)]) {
      ++stats.arrays_referenced;
      stats.referenced_bytes += program.array(a).byte_size();
    }
  }
  return stats;
}

std::int64_t PassReport::traffic_bound_delta() const {
  if (traffic_bound_before < 0 || traffic_bound_after < 0) return 0;
  return traffic_bound_after - traffic_bound_before;
}

void PassReport::applied(
    std::string code, std::string message,
    std::vector<std::pair<std::string, std::string>> args) {
  remarks.push_back(Remark{RemarkKind::kApplied, std::move(code),
                           std::move(message), std::move(args)});
}

void PassReport::missed(
    std::string code, std::string message,
    std::vector<std::pair<std::string, std::string>> args) {
  remarks.push_back(Remark{RemarkKind::kMissed, std::move(code),
                           std::move(message), std::move(args)});
}

void PassReport::note(std::string code, std::string message,
                      std::vector<std::pair<std::string, std::string>> args) {
  remarks.push_back(Remark{RemarkKind::kNote, std::move(code),
                           std::move(message), std::move(args)});
}

void PassReport::finding(
    RemarkSeverity severity, std::string code, std::string message,
    std::vector<std::pair<std::string, std::string>> args) {
  remarks.push_back(Remark{RemarkKind::kNote, std::move(code),
                           std::move(message), std::move(args), severity});
}

std::vector<std::string> PassReport::legacy_lines() const {
  std::vector<std::string> lines;
  for (const auto& r : remarks) {
    if (r.kind != RemarkKind::kNote) lines.push_back(r.message);
  }
  if (verify.ran) {
    std::string line = "verify (" + label + "): " + verify.check;
    if (verify.skipped) {
      line += " skipped: " + verify.skip_reason;
    } else {
      line += " certified, " + std::to_string(verify.instances_checked) +
              " instance(s) checked";
    }
    lines.push_back(line);
  }
  return lines;
}

std::vector<std::string> PipelineReport::legacy_lines() const {
  std::vector<std::string> lines;
  for (const auto& report : passes) {
    for (auto& line : report.legacy_lines()) lines.push_back(std::move(line));
  }
  return lines;
}

int PipelineReport::error_findings() const {
  int errors = 0;
  for (const auto& report : passes) {
    for (const auto& r : report.remarks)
      if (r.severity == RemarkSeverity::kError) ++errors;
  }
  return errors;
}

std::string PipelineReport::to_json(const std::string& program,
                                    const std::string& pipeline) const {
  std::ostringstream os;
  os << "{\"schema\": \"bwc-remarks-v1\"";
  os << ", \"program\": " << json_str(program);
  os << ", \"pipeline\": " << json_str(pipeline);
  os << ", \"analysis_cache\": {\"hits\": " << analysis.hits
     << ", \"misses\": " << analysis.misses
     << ", \"invalidations\": " << analysis.invalidations << "}";
  os << ", \"passes\": [";
  for (std::size_t i = 0; i < passes.size(); ++i) {
    const PassReport& p = passes[i];
    if (i > 0) os << ", ";
    os << "{\"pass\": " << json_str(p.pass)
       << ", \"label\": " << json_str(p.label)
       << ", \"changed\": " << (p.changed ? "true" : "false");
    char ms[64];
    std::snprintf(ms, sizeof(ms), "%.6f", p.wall_ms);
    os << ", \"wall_ms\": " << ms;
    std::snprintf(ms, sizeof(ms), "%.6f", p.verify_ms);
    os << ", \"verify_ms\": " << ms;
    os << ", ";
    append_ir_stats(os, "ir_before", p.ir_before);
    os << ", ";
    append_ir_stats(os, "ir_after", p.ir_after);
    os << ", \"traffic_bound_before_bytes\": " << p.traffic_bound_before
       << ", \"traffic_bound_after_bytes\": " << p.traffic_bound_after
       << ", \"traffic_bound_delta_bytes\": " << p.traffic_bound_delta();
    if (p.verify.ran) {
      os << ", \"verify\": {\"check\": " << json_str(p.verify.check)
         << ", \"skipped\": " << (p.verify.skipped ? "true" : "false")
         << ", \"skip_reason\": " << json_str(p.verify.skip_reason)
         << ", \"instances_checked\": " << p.verify.instances_checked << "}";
    } else {
      os << ", \"verify\": null";
    }
    os << ", \"per_array\": [";
    for (std::size_t a = 0; a < p.per_array.size(); ++a) {
      const ArrayTraffic& t = p.per_array[a];
      if (a > 0) os << ", ";
      os << "{\"name\": " << json_str(t.name)
         << ", \"bytes_before\": " << t.bytes_before
         << ", \"bytes_after\": " << t.bytes_after << "}";
    }
    os << "]";
    os << ", \"remarks\": [";
    for (std::size_t r = 0; r < p.remarks.size(); ++r) {
      const Remark& rem = p.remarks[r];
      if (r > 0) os << ", ";
      os << "{\"kind\": " << json_str(remark_kind_name(rem.kind))
         << ", \"severity\": " << json_str(remark_severity_name(rem.severity))
         << ", \"code\": " << json_str(rem.code)
         << ", \"message\": " << json_str(rem.message) << ", \"args\": {";
      for (std::size_t a = 0; a < rem.args.size(); ++a) {
        if (a > 0) os << ", ";
        os << json_str(rem.args[a].first) << ": "
           << json_str(rem.args[a].second);
      }
      os << "}}";
    }
    os << "]}";
  }
  os << "]}";
  return os.str();
}

}  // namespace bwc::pass
