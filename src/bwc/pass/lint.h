// bwc-lint: a diagnostics-only pass built on the symbolic dependence
// machinery (verify/static_dependence.h). It never rewrites the program;
// it grades findings about it:
//
//   lint-dead-store        (error)   an array is written but never read
//                                    and is not a program output -- the
//                                    computation is unobservable, and the
//                                    store-elimination pass missed it or
//                                    was not run
//   lint-unreachable-guard (warning) a guard arm's refined iteration
//                                    domain is empty: the branch can
//                                    never execute
//   lint-opaque-context    (warning) references sit under a guard the
//                                    interval splitter cannot refine
//                                    (multi-variable condition), so every
//                                    static analysis over-approximates
//                                    their iteration domain
//   lint-at-traffic-bound  (info)    a loop nest provably revisits no
//                                    array element across iterations: its
//                                    memory traffic already meets the
//                                    distinct-byte lower bound, so no
//                                    intra-loop scheduling change can
//                                    reduce it
//
// Registered as pass "lint" (bwcopt --lint); findings are Remarks with a
// RemarkSeverity, rendered in bwc-remarks-v1 JSON, and bwcopt exits 1
// when any error-severity finding was produced.
#pragma once

#include <string>

#include "bwc/pass/pass.h"

namespace bwc::pass {

class LintPass : public Pass {
 public:
  std::string name() const override { return "lint"; }
  std::string label() const override { return "lint"; }
  PassResult run(ir::Program& program, AnalysisManager& am,
                 PassReport& report) override;
};

}  // namespace bwc::pass
