// PassManager: runs a pipeline of passes over a program, owning the
// cross-cutting concerns every pass used to hand-roll -- analysis caching
// and invalidation, per-pass timing, IR and traffic-bound deltas, the
// inter-pass verifier, and structured reporting (docs/PIPELINE.md).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "bwc/ir/program.h"
#include "bwc/pass/analysis_manager.h"
#include "bwc/pass/pass.h"
#include "bwc/pass/report.h"

namespace bwc::pass {

struct PipelineOptions {
  /// Re-check every changing pass's output with its bwc::verify checker;
  /// a violation raises bwc::Error ("verification failed after <label>").
  /// The input program's structure is validated before the first pass.
  bool verify = true;
  /// Event budget for the instance-level checks (CheckOptions).
  std::uint64_t verify_max_events = 2'000'000;
  /// Static-prover-first checking policy (CheckOptions::static_verify):
  /// kOn tries the input-independent legality provers before replaying
  /// traces, kOff is trace-only, kOnly never replays.
  StaticVerifyMode static_verify = StaticVerifyMode::kOn;
  /// Serve repeated analysis queries from the AnalysisManager cache. Off
  /// recomputes everything on every query (the benchmark's control arm).
  bool cache_analyses = true;
  /// Fingerprint the IR on every cache hit and throw on a stale entry
  /// (AnalysisManager::Options::audit). Expensive; for tests.
  bool audit_analyses = false;
  /// Record verify::traffic_bound of the program before/after every pass
  /// in its PassReport (the predicted memory-traffic delta).
  bool traffic_deltas = true;
  /// When set, called with each pass and the program state after it ran
  /// (bwcopt --print-after-all).
  std::function<void(const Pass&, const ir::Program&)> print_after;
};

class PassManager {
 public:
  explicit PassManager(PipelineOptions options = {});

  void add(std::unique_ptr<Pass> pass);
  void add(std::vector<std::unique_ptr<Pass>> passes);
  const std::vector<std::unique_ptr<Pass>>& passes() const { return passes_; }

  /// Run every pass over `program` in place. Throws bwc::Error when the
  /// input is structurally invalid (verify on) or a pass fails its check.
  PipelineReport run(ir::Program& program);

 private:
  PipelineOptions options_;
  std::vector<std::unique_ptr<Pass>> passes_;
};

}  // namespace bwc::pass
