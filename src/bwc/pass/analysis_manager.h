// AnalysisManager: cached program analyses with declared invalidation.
//
// Every pass used to re-derive dependence and access-summary analyses from
// scratch; the manager computes each analysis once per program state and
// hands out const references until a transform declares it clobbered the
// state (PassManager calls invalidate() with the pass's PreservedAnalyses
// after every changing pass). Cached results are only sound while that
// contract is honored; the optional audit mode re-fingerprints the IR on
// every cache hit and throws on a stale entry, which is how
// tests/pass_manager_test.cpp catches deliberately-skipped invalidations.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bwc/analysis/access_summary.h"
#include "bwc/analysis/liveness.h"
#include "bwc/fusion/fusion_graph.h"
#include "bwc/ir/program.h"
#include "bwc/pass/report.h"
#include "bwc/verify/static_dependence.h"
#include "bwc/verify/traffic_bound.h"

namespace bwc::pass {

/// The analyses the manager knows how to cache.
enum class AnalysisId : unsigned {
  kStatementSummaries = 0,  // analysis::summarize_statement per top stmt
  kLiveness = 1,            // analysis::analyze_liveness
  kFusionGraph = 2,         // fusion::build_fusion_graph (per options)
  kTrafficBound = 3,        // verify::compute_traffic_bound
  kStaticDependence = 4,    // verify::summarize_dependences
};

/// What a transform promises it did NOT clobber. A pass that changed the
/// program returns the set of analyses still valid on the new IR; the
/// manager drops everything else. Claiming too much is a miscompile
/// waiting to happen -- the audit mode and the pipeline verifier exist to
/// catch exactly that.
class PreservedAnalyses {
 public:
  static PreservedAnalyses all() {
    PreservedAnalyses p;
    p.all_ = true;
    return p;
  }
  static PreservedAnalyses none() { return PreservedAnalyses(); }

  PreservedAnalyses& preserve(AnalysisId id) {
    mask_ |= 1u << static_cast<unsigned>(id);
    return *this;
  }
  bool preserves(AnalysisId id) const {
    return all_ || (mask_ & (1u << static_cast<unsigned>(id))) != 0;
  }
  bool preserves_all() const { return all_; }

 private:
  bool all_ = false;
  std::uint32_t mask_ = 0;
};

class AnalysisManager {
 public:
  struct Options {
    /// Off: every query recomputes (the bench's cache-disabled mode).
    bool cache = true;
    /// On: every cache hit re-fingerprints the program (ir printer) and
    /// throws bwc::Error when the cached entry no longer matches -- a
    /// pass mutated the IR without declaring the invalidation.
    bool audit = false;
  };

  AnalysisManager() : AnalysisManager(Options()) {}
  explicit AnalysisManager(Options options) : options_(options) {}

  /// One summarize_statement result per top-level statement, in order.
  const std::vector<analysis::LoopSummary>& statement_summaries(
      const ir::Program& program);
  const std::vector<analysis::ArrayLiveness>& liveness(
      const ir::Program& program);
  /// Keyed by options: a query with different FusionGraphOptions than the
  /// cached graph recomputes.
  const fusion::FusionGraph& fusion_graph(
      const ir::Program& program, const fusion::FusionGraphOptions& options);
  const verify::TrafficBound& traffic_bound(const ir::Program& program);
  /// Statement-pair symbolic dependence verdicts (ZIV/SIV/GCD/Banerjee
  /// over guard-refined domains); consumed by the lint pass and any pass
  /// wanting input-independent dependence facts.
  const verify::DependenceSummary& dependence_summary(
      const ir::Program& program);

  /// Drop every cached analysis the pass did not declare preserved.
  void invalidate(const PreservedAnalyses& preserved);

  const AnalysisCacheStats& stats() const { return stats_; }
  const Options& options() const { return options_; }

 private:
  /// Returns true when the slot may be served from cache; bumps counters
  /// and performs the audit-mode staleness check.
  bool serve_from_cache(const ir::Program& program, bool valid,
                        const std::string& fingerprint, const char* what);
  std::string fingerprint_of(const ir::Program& program) const;

  Options options_;
  AnalysisCacheStats stats_;

  bool summaries_valid_ = false;
  std::vector<analysis::LoopSummary> summaries_;
  std::string summaries_fp_;

  bool liveness_valid_ = false;
  std::vector<analysis::ArrayLiveness> liveness_;
  std::string liveness_fp_;

  bool graph_valid_ = false;
  fusion::FusionGraph graph_;
  fusion::FusionGraphOptions graph_options_;
  std::string graph_fp_;

  bool bound_valid_ = false;
  verify::TrafficBound bound_;
  std::string bound_fp_;

  bool deps_valid_ = false;
  verify::DependenceSummary deps_;
  std::string deps_fp_;
};

}  // namespace bwc::pass
