// The uniform pass interface. A Pass transforms an ir::Program in place,
// reads analyses through the AnalysisManager (never recomputing them
// itself), records structured remarks on its PassReport, and declares
// which cached analyses survive its rewrite. Each pass also names the
// bwc::verify checker that certifies its output; the PassManager runs it
// after every changing pass (docs/PIPELINE.md).
#pragma once

#include <cstdint>
#include <string>

#include "bwc/ir/program.h"
#include "bwc/pass/analysis_manager.h"
#include "bwc/pass/report.h"
#include "bwc/verify/diagnostics.h"

namespace bwc::pass {

/// How the static legality provers and the trace validators divide the
/// inter-pass checking work.
enum class StaticVerifyMode {
  /// Try the static prover first; a kProven certificate (valid for every
  /// input) skips trace validation entirely, anything else falls back to
  /// the trace validator for the current problem size.
  kOn,
  /// Trace validation only (the pre-prover behavior).
  kOff,
  /// Static proofs only: kRefuted fails the pipeline, kUnknown is
  /// reported as a skipped check. No traces are ever replayed.
  kOnly,
};

const char* static_verify_mode_name(StaticVerifyMode mode);

/// Options threaded to the inter-pass checkers (bwc::verify).
struct CheckOptions {
  /// Per-program event budget for instance-level checks; larger programs
  /// degrade to structural validation (the checker reports skipped).
  std::uint64_t max_events = 2'000'000;
  StaticVerifyMode static_verify = StaticVerifyMode::kOn;
};

/// What one pass run did.
struct PassResult {
  bool changed = false;
  /// Analyses still valid on the transformed IR. Ignored (treated as all)
  /// when the pass did not change the program.
  PreservedAnalyses preserved = PreservedAnalyses::none();
};

class Pass {
 public:
  virtual ~Pass() = default;

  /// PipelineSpec name, e.g. "fuse", "reduce-storage".
  virtual std::string name() const = 0;
  /// Human label used in logs and verify lines, e.g. "fusion",
  /// "storage reduction".
  virtual std::string label() const = 0;

  /// Transform `program` in place; query analyses via `am`; record remarks
  /// and structured facts on `report` (the manager fills timing, IR deltas
  /// and traffic bounds itself).
  virtual PassResult run(ir::Program& program, AnalysisManager& am,
                         PassReport& report) = 0;

  /// The verifier check certifying this pass's rewrite. Default:
  /// structural validation of the output (sufficient for passes whose
  /// rewrites the instance-level validators do not model). Scheduling
  /// passes override with translation validation, storage passes with
  /// their observability certificates.
  virtual verify::Report check(const ir::Program& before,
                               const ir::Program& after,
                               const CheckOptions& options) const;
};

}  // namespace bwc::pass
