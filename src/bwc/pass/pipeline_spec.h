// Pipelines as data: a PipelineSpec is the parsed form of a spec string
// like "interchange,fuse(solver=exact),reduce-storage,eliminate-stores".
//
// Grammar (docs/PIPELINE.md):
//   pipeline := [ pass { "," pass } ]
//   pass     := name [ "(" param { "," param } ")" ]
//   param    := key "=" value
//   name,key := [a-z0-9-]+        value := any char except "," ")" "("
// Whitespace around names, keys and values is ignored. Parsing validates
// syntax only; pass names and parameters are checked by create_pass when
// the pipeline is built.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace bwc::pass {

/// One pass invocation: name plus key=value parameters in written order.
struct PassSpec {
  std::string name;
  std::vector<std::pair<std::string, std::string>> params;

  /// Value of `key`, or `fallback` when absent.
  std::string param(const std::string& key,
                    const std::string& fallback = "") const;
  bool has_param(const std::string& key) const;
  /// Canonical rendering; parse_pipeline_spec round-trips it
  /// byte-identically. Throws bwc::Error ("cannot render pipeline spec")
  /// for a spec the grammar cannot represent: an invalid name or key, an
  /// empty value, or a value containing ','/'('/')' or edge whitespace
  /// (the grammar has no escaping, so rendering such a spec would
  /// silently change it).
  std::string to_string() const;
};

struct PipelineSpec {
  std::vector<PassSpec> passes;

  bool empty() const { return passes.empty(); }
  /// Canonical spec string; parse_pipeline_spec(to_string()) round-trips.
  std::string to_string() const;
};

/// Parse a spec string. Throws bwc::Error (message prefixed
/// "invalid pipeline spec") on malformed input. The empty string parses to
/// an empty pipeline.
PipelineSpec parse_pipeline_spec(const std::string& text);

}  // namespace bwc::pass
