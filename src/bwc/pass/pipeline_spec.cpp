#include "bwc/pass/pipeline_spec.h"

#include <sstream>

#include "bwc/support/error.h"

namespace bwc::pass {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t')) --e;
  return s.substr(b, e - b);
}

bool valid_name(const std::string& s) {
  if (s.empty()) return false;
  for (const char c : s) {
    if (!((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '-'))
      return false;
  }
  return true;
}

[[noreturn]] void bad(const std::string& text, const std::string& why) {
  throw Error("invalid pipeline spec \"" + text + "\": " + why);
}

/// Split on commas that are not inside parentheses.
std::vector<std::string> split_top(const std::string& text,
                                   const std::string& full) {
  std::vector<std::string> parts;
  std::string current;
  int depth = 0;
  for (const char c : text) {
    if (c == '(') ++depth;
    if (c == ')') {
      --depth;
      if (depth < 0) bad(full, "unbalanced ')'");
    }
    if (c == ',' && depth == 0) {
      parts.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (depth != 0) bad(full, "unbalanced '('");
  parts.push_back(current);
  return parts;
}

PassSpec parse_pass(const std::string& entry, const std::string& full) {
  PassSpec spec;
  const std::size_t paren = entry.find('(');
  if (paren == std::string::npos) {
    spec.name = trim(entry);
    if (!valid_name(spec.name))
      bad(full, "bad pass name \"" + trim(entry) + "\"");
    return spec;
  }
  spec.name = trim(entry.substr(0, paren));
  if (!valid_name(spec.name))
    bad(full, "bad pass name \"" + spec.name + "\"");
  const std::string rest = trim(entry.substr(paren + 1));
  if (rest.empty() || rest.back() != ')')
    bad(full, "missing ')' after \"" + spec.name + "(\"");
  const std::string body = rest.substr(0, rest.size() - 1);
  if (body.find('(') != std::string::npos ||
      body.find(')') != std::string::npos) {
    bad(full, "nested parentheses in \"" + spec.name + "\" parameters");
  }
  if (trim(body).empty()) return spec;  // "name()" == "name"
  // Manual split: unlike getline, a trailing "," yields an (invalid)
  // empty segment instead of vanishing, so "fuse(a=1,)" is rejected the
  // same way "fuse(,a=1)" always was.
  std::vector<std::string> entries;
  std::string current;
  for (const char c : body) {
    if (c == ',') {
      entries.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  entries.push_back(current);
  for (const std::string& param : entries) {
    if (trim(param).empty())
      bad(full, "empty parameter in \"" + spec.name + "(...)\"");
    const std::size_t eq = param.find('=');
    if (eq == std::string::npos)
      bad(full, "parameter \"" + trim(param) + "\" is not key=value");
    const std::string key = trim(param.substr(0, eq));
    const std::string value = trim(param.substr(eq + 1));
    if (!valid_name(key)) bad(full, "bad parameter key \"" + key + "\"");
    if (value.empty()) bad(full, "empty value for parameter \"" + key + "\"");
    spec.params.emplace_back(key, value);
  }
  return spec;
}

}  // namespace

std::string PassSpec::param(const std::string& key,
                            const std::string& fallback) const {
  for (const auto& [k, v] : params) {
    if (k == key) return v;
  }
  return fallback;
}

bool PassSpec::has_param(const std::string& key) const {
  for (const auto& [k, v] : params) {
    if (k == key) return true;
  }
  return false;
}

namespace {

/// The grammar has no escaping, so a value containing a separator (or
/// whitespace the parser would trim away) cannot survive a round trip.
/// Rendering such a spec would silently produce a different pipeline;
/// fail loudly instead.
bool renderable_value(const std::string& v) {
  if (v.empty()) return false;
  if (v.front() == ' ' || v.front() == '\t' || v.back() == ' ' ||
      v.back() == '\t')
    return false;
  for (const char c : v) {
    if (c == ',' || c == '(' || c == ')') return false;
  }
  return true;
}

}  // namespace

std::string PassSpec::to_string() const {
  if (!valid_name(name))
    throw Error("cannot render pipeline spec: bad pass name \"" + name +
                "\"");
  if (params.empty()) return name;
  std::ostringstream os;
  os << name << "(";
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (i > 0) os << ",";
    if (!valid_name(params[i].first))
      throw Error("cannot render pipeline spec: bad parameter key \"" +
                  params[i].first + "\"");
    if (!renderable_value(params[i].second))
      throw Error("cannot render pipeline spec: parameter \"" +
                  params[i].first + "\" value \"" + params[i].second +
                  "\" is not representable in the spec grammar");
    os << params[i].first << "=" << params[i].second;
  }
  os << ")";
  return os.str();
}

std::string PipelineSpec::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < passes.size(); ++i) {
    if (i > 0) os << ",";
    os << passes[i].to_string();
  }
  return os.str();
}

PipelineSpec parse_pipeline_spec(const std::string& text) {
  PipelineSpec spec;
  if (trim(text).empty()) return spec;
  for (const std::string& entry : split_top(text, text)) {
    if (trim(entry).empty()) bad(text, "empty pass entry");
    spec.passes.push_back(parse_pass(entry, text));
  }
  return spec;
}

}  // namespace bwc::pass
