#include "bwc/pass/pass_manager.h"

#include <chrono>
#include <utility>

#include "bwc/support/error.h"
#include "bwc/verify/structure.h"

namespace bwc::pass {

namespace {

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

PassManager::PassManager(PipelineOptions options)
    : options_(std::move(options)) {}

void PassManager::add(std::unique_ptr<Pass> pass) {
  passes_.push_back(std::move(pass));
}

void PassManager::add(std::vector<std::unique_ptr<Pass>> passes) {
  for (auto& pass : passes) passes_.push_back(std::move(pass));
}

PipelineReport PassManager::run(ir::Program& program) {
  if (options_.verify) {
    const verify::Report structure = verify::validate_structure(program);
    if (!structure.ok()) {
      throw Error("input program is structurally invalid:\n" +
                  structure.render());
    }
  }

  AnalysisManager::Options am_options;
  am_options.cache = options_.cache_analyses;
  am_options.audit = options_.audit_analyses;
  AnalysisManager am(am_options);

  PipelineReport pipeline;
  pipeline.passes.reserve(passes_.size());
  for (const std::unique_ptr<Pass>& pass : passes_) {
    PassReport report;
    report.pass = pass->name();
    report.label = pass->label();
    report.ir_before =
        compute_ir_stats(program, am.statement_summaries(program));
    if (options_.traffic_deltas)
      report.traffic_bound_before = am.traffic_bound(program).lower_bound_bytes;

    // Snapshot for the pass-pair checks; maintained only when verifying.
    ir::Program before;
    if (options_.verify) before = program.clone();

    const auto start = std::chrono::steady_clock::now();
    const PassResult result = pass->run(program, am, report);
    report.wall_ms = ms_since(start);
    report.changed = result.changed;

    if (result.changed) {
      am.invalidate(result.preserved);
      report.ir_after =
          compute_ir_stats(program, am.statement_summaries(program));
      if (options_.traffic_deltas) {
        report.traffic_bound_after =
            am.traffic_bound(program).lower_bound_bytes;
      }
    } else {
      report.ir_after = report.ir_before;
      report.traffic_bound_after = report.traffic_bound_before;
    }

    // The legacy optimizer checked only passes that changed the program;
    // an unchanged program is trivially equivalent to itself.
    if (result.changed && options_.verify) {
      const auto verify_start = std::chrono::steady_clock::now();
      const verify::Report checked = pass->check(
          before, program,
          {options_.verify_max_events, options_.static_verify});
      report.verify_ms = ms_since(verify_start);
      if (!checked.ok()) {
        throw Error("verification failed after " + pass->label() + ":\n" +
                    checked.render());
      }
      report.verify.ran = true;
      report.verify.check = checked.check;
      report.verify.skipped = checked.skipped;
      report.verify.skip_reason = checked.skip_reason;
      report.verify.instances_checked = checked.instances_checked;
    }

    pipeline.passes.push_back(std::move(report));
    if (options_.print_after) options_.print_after(*pass, program);
  }
  pipeline.analysis = am.stats();
  return pipeline;
}

}  // namespace bwc::pass
