// The concrete passes: transform/ and fusion/ rewrites ported to the Pass
// interface, plus the create_pass registry that turns a parsed PassSpec
// into a pass instance. Spec names:
//
//   interchange       stride-1 loop interchange (transform/interchange)
//   fuse              bandwidth-minimal loop fusion; params:
//                       solver=best|exact|greedy|bisection|edge-weighted
//                       shift=0|1 (fusion with alignment), max-shift=<int>
//   reduce-storage    array contraction/shrinking/peeling
//   eliminate-stores  writeback elimination
//   scalar-replace    rotating-scalar register reuse
//   regroup           inter-array data regrouping
//   distribute        maximal loop distribution (fusion's inverse)
//   transpose-layout  storage-order permutation toward innermost access
//   regroup-arrays    SoA -> AoS interleave groups (layout-level regroup)
//   pad-arrays        conflict-breaking inter-dimension / base padding
//   lint              diagnostics only: bwc-lint findings (pass/lint.h)
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bwc/fusion/fusion_graph.h"
#include "bwc/pass/pass.h"
#include "bwc/pass/pipeline_spec.h"

namespace bwc::pass {

class InterchangePass : public Pass {
 public:
  std::string name() const override { return "interchange"; }
  std::string label() const override { return "interchange"; }
  PassResult run(ir::Program& program, AnalysisManager& am,
                 PassReport& report) override;
  verify::Report check(const ir::Program& before, const ir::Program& after,
                       const CheckOptions& options) const override;
};

class FusePass : public Pass {
 public:
  struct Options {
    /// Solver name: best|exact|greedy|bisection|edge-weighted.
    std::string solver = "best";
    bool allow_shifted_fusion = false;
    std::int64_t max_shift = 8;
  };

  FusePass() : FusePass(Options()) {}
  explicit FusePass(Options options);

  std::string name() const override { return "fuse"; }
  std::string label() const override { return "fusion"; }
  PassResult run(ir::Program& program, AnalysisManager& am,
                 PassReport& report) override;
  verify::Report check(const ir::Program& before, const ir::Program& after,
                       const CheckOptions& options) const override;

  /// The plan the last run() computed (solved even when not applied).
  const fusion::FusionPlan& plan() const { return plan_; }

 private:
  Options options_;
  fusion::FusionPlan plan_;
};

class ReduceStoragePass : public Pass {
 public:
  std::string name() const override { return "reduce-storage"; }
  std::string label() const override { return "storage reduction"; }
  PassResult run(ir::Program& program, AnalysisManager& am,
                 PassReport& report) override;
  verify::Report check(const ir::Program& before, const ir::Program& after,
                       const CheckOptions& options) const override;
};

class EliminateStoresPass : public Pass {
 public:
  std::string name() const override { return "eliminate-stores"; }
  std::string label() const override { return "store elimination"; }
  PassResult run(ir::Program& program, AnalysisManager& am,
                 PassReport& report) override;
  verify::Report check(const ir::Program& before, const ir::Program& after,
                       const CheckOptions& options) const override;
};

class ScalarReplacePass : public Pass {
 public:
  std::string name() const override { return "scalar-replace"; }
  std::string label() const override { return "scalar replacement"; }
  PassResult run(ir::Program& program, AnalysisManager& am,
                 PassReport& report) override;
};

class RegroupPass : public Pass {
 public:
  std::string name() const override { return "regroup"; }
  std::string label() const override { return "regrouping"; }
  PassResult run(ir::Program& program, AnalysisManager& am,
                 PassReport& report) override;
};

class DistributePass : public Pass {
 public:
  std::string name() const override { return "distribute"; }
  std::string label() const override { return "distribution"; }
  PassResult run(ir::Program& program, AnalysisManager& am,
                 PassReport& report) override;
  verify::Report check(const ir::Program& before, const ir::Program& after,
                       const CheckOptions& options) const override;
};

/// The layout-transform passes (transform/layout.h). They rewrite only
/// ArrayLayout declarations -- statements, values and checksums are
/// untouched -- and grade profitability with the layout-aware line-traffic
/// estimator, whose per-array before/after figures they publish as the
/// PassReport's per_array breakdown. Verified by prove_layout_change
/// (structural: layout-stripped programs must be identical), with trace
/// validation as the fallback.
class TransposeLayoutPass : public Pass {
 public:
  std::string name() const override { return "transpose-layout"; }
  std::string label() const override { return "layout transpose"; }
  PassResult run(ir::Program& program, AnalysisManager& am,
                 PassReport& report) override;
  verify::Report check(const ir::Program& before, const ir::Program& after,
                       const CheckOptions& options) const override;
};

class RegroupArraysPass : public Pass {
 public:
  std::string name() const override { return "regroup-arrays"; }
  std::string label() const override { return "layout regrouping"; }
  PassResult run(ir::Program& program, AnalysisManager& am,
                 PassReport& report) override;
  verify::Report check(const ir::Program& before, const ir::Program& after,
                       const CheckOptions& options) const override;
};

class PadArraysPass : public Pass {
 public:
  std::string name() const override { return "pad-arrays"; }
  std::string label() const override { return "layout padding"; }
  PassResult run(ir::Program& program, AnalysisManager& am,
                 PassReport& report) override;
  verify::Report check(const ir::Program& before, const ir::Program& after,
                       const CheckOptions& options) const override;
};

/// Instantiate the pass a spec names. Throws bwc::Error for an unknown
/// pass name, an unknown parameter, or a bad parameter value.
std::unique_ptr<Pass> create_pass(const PassSpec& spec);

/// Instantiate every pass of a pipeline, in order.
std::vector<std::unique_ptr<Pass>> build_pipeline(const PipelineSpec& spec);

}  // namespace bwc::pass
