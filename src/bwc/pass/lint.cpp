#include "bwc/pass/lint.h"

#include <set>
#include <string>
#include <vector>

#include "bwc/analysis/layout_traffic.h"
#include "bwc/verify/static_dependence.h"

namespace bwc::pass {

namespace {

/// Can two references of one top-level statement touch a common element in
/// distinct events? Self pairs require the iterations to differ at some
/// loop level; distinct refs conflict at any iteration pair (conservative:
/// same-iteration multi-touches also count, so the at-bound claim stays
/// sound without modelling which loop levels the two refs share).
verify::Verdict revisit_verdict(const verify::AffineRef& a,
                                const verify::AffineRef& b) {
  if (&a != &b) {
    verify::PairSystem sys(a, b);
    return sys.solve().verdict;
  }
  constexpr std::int64_t kSpan = std::int64_t{1} << 40;
  bool unknown = false;
  const int levels = static_cast<int>(a.loop_vars.size());
  for (int l = 0; l < levels; ++l) {
    for (int sign = -1; sign <= 1; sign += 2) {
      verify::PairSystem sys(a, b);
      for (int m = 0; m < l; ++m)
        sys.bound_difference(sys.a_var(m), 0, sys.b_var(m), 0, {0, 0});
      const verify::Interval r =
          sign < 0 ? verify::Interval{-kSpan, -1} : verify::Interval{1, kSpan};
      sys.bound_difference(sys.a_var(l), 0, sys.b_var(l), 0, r);
      const verify::Feasibility f = sys.solve();
      if (f.verdict == verify::Verdict::kDependent) return f.verdict;
      if (f.verdict == verify::Verdict::kUnknown) unknown = true;
    }
  }
  return unknown ? verify::Verdict::kUnknown : verify::Verdict::kIndependent;
}

}  // namespace

PassResult LintPass::run(ir::Program& program, AnalysisManager& am,
                         PassReport& report) {
  // Dead stores: arrays written somewhere, never read anywhere, and not
  // program outputs -- their computation is unobservable. The optimizer's
  // store-elimination pass removes these when it runs; surviving ones are
  // graded as errors.
  std::set<std::string> written, read;
  std::vector<verify::RefSet> per_top;
  per_top.reserve(program.top().size());
  for (const auto& top : program.top()) {
    per_top.push_back(verify::collect_refs(program, *top));
    for (const auto& ref : per_top.back().refs) {
      if (ref.array.empty()) continue;
      (ref.write ? written : read).insert(ref.array);
    }
  }
  std::set<std::string> outputs;
  for (ir::ArrayId id : program.output_arrays())
    outputs.insert(program.array(id).name);
  for (const auto& name : written) {
    if (read.count(name) || outputs.count(name)) continue;
    report.finding(RemarkSeverity::kError, "lint-dead-store",
                   "array " + name +
                       " is written but never read and is not an output; "
                       "the stores are dead",
                   {{"array", name}});
  }

  // Unreachable guard arms and analysis-opaque contexts, per statement.
  for (std::size_t t = 0; t < per_top.size(); ++t) {
    const verify::RefSet& refs = per_top[t];
    if (refs.unreachable_guards > 0) {
      report.finding(RemarkSeverity::kWarning, "lint-unreachable-guard",
                     "statement " + std::to_string(t) + " has " +
                         std::to_string(refs.unreachable_guards) +
                         " guard arm(s) whose iteration domain is empty",
                     {{"top", std::to_string(t)},
                      {"arms", std::to_string(refs.unreachable_guards)}});
    }
    if (refs.inexact_refs > 0) {
      report.finding(
          RemarkSeverity::kWarning, "lint-opaque-context",
          "statement " + std::to_string(t) + " has " +
              std::to_string(refs.inexact_refs) +
              " reference(s) under a guard the interval splitter cannot "
              "refine; static analyses over-approximate their domains",
          {{"top", std::to_string(t)},
           {"refs", std::to_string(refs.inexact_refs)}});
    }
  }

  // Loops already at the distinct-byte traffic lower bound: no array
  // element is provably revisited in a distinct event, so every byte the
  // nest touches crosses the memory boundary exactly once (cold cache) --
  // no intra-loop scheduling change can reduce its traffic.
  for (std::size_t t = 0; t < per_top.size(); ++t) {
    if (program.top()[t]->kind != ir::StmtKind::kLoop) continue;
    const std::vector<verify::AffineRef>& refs = per_top[t].refs;
    bool any_array = false;
    bool at_bound = true;
    std::set<std::string> arrays;
    for (std::size_t i = 0; i < refs.size() && at_bound; ++i) {
      if (refs[i].array.empty()) continue;
      any_array = true;
      arrays.insert(refs[i].array);
      for (std::size_t j = i; j < refs.size() && at_bound; ++j) {
        if (refs[j].array != refs[i].array) continue;
        if (revisit_verdict(refs[i], refs[j]) !=
            verify::Verdict::kIndependent)
          at_bound = false;
      }
    }
    if (!any_array || !at_bound) continue;
    std::string names;
    for (const auto& a : arrays) names += (names.empty() ? "" : " ") + a;
    report.finding(RemarkSeverity::kInfo, "lint-at-traffic-bound",
                   "loop " + std::to_string(t) +
                       " already meets the distinct-byte traffic lower "
                       "bound: no element is revisited across iterations",
                   {{"top", std::to_string(t)}, {"arrays", names}});
  }

  // Whole-program static traffic lower bound with its per-array
  // breakdown (distinct keys, one per array), so remark consumers --
  // the autotuner's users chief among them -- can see WHICH array keeps
  // a candidate off the floor, not just the total.
  const verify::TrafficBound& bound = am.traffic_bound(program);
  {
    std::vector<std::pair<std::string, std::string>> args;
    args.emplace_back("lower_bound_bytes",
                      std::to_string(bound.lower_bound_bytes));
    args.emplace_back("flops_upper_bound",
                      std::to_string(bound.flops_upper_bound));
    for (const verify::ArrayFootprint& a : bound.arrays) {
      args.emplace_back("array." + a.name + ".bound_bytes",
                        std::to_string(a.bytes));
      args.emplace_back("array." + a.name + ".exact",
                        a.exact ? "true" : "false");
    }
    report.finding(RemarkSeverity::kInfo, "lint-traffic-bound",
                   "static traffic lower bound " +
                       std::to_string(bound.lower_bound_bytes) +
                       " bytes across " +
                       std::to_string(bound.arrays.size()) + " array(s)",
                   std::move(args));
  }

  // Arrays whose dominant access stride maps repeatedly onto the same few
  // cache sets for the simulator's geometry: the sweep's lines exceed what
  // those sets can hold, so revisits re-miss regardless of cache size.
  // The layout passes (transpose-layout, pad-arrays) exist to fix this.
  {
    const analysis::LayoutGeometry geometry;
    const analysis::LayoutTrafficEstimate est =
        analysis::estimate_layout_traffic(program, geometry);
    for (const analysis::ArrayLayoutTraffic& a : est.arrays) {
      if (!a.conflict) continue;
      report.finding(
          RemarkSeverity::kWarning, "lint-conflict-stride",
          "array " + a.name + " has dominant stride " +
              std::to_string(a.dominant_stride_bytes) + " bytes mapping to " +
              std::to_string(a.distinct_sets) + " of " +
              std::to_string(geometry.sets) +
              " cache sets; its sweeps thrash the " +
              std::to_string(geometry.ways) + "-way cache",
          {{"array", a.name},
           {"stride_bytes", std::to_string(a.dominant_stride_bytes)},
           {"distinct_sets", std::to_string(a.distinct_sets)},
           {"sets", std::to_string(geometry.sets)},
           {"ways", std::to_string(geometry.ways)},
           {"set_phase", std::to_string(a.set_phase)},
           {"line_bytes_estimate", std::to_string(a.line_bytes_estimate)}});
    }
  }

  // Whole-program dependence census from the cached analysis, so tools
  // reading the remarks see the prover's coverage at a glance.
  const verify::DependenceSummary& deps = am.dependence_summary(program);
  report.finding(RemarkSeverity::kInfo, "lint-dependence-summary",
                 "statement-pair dependence tests: " +
                     std::to_string(deps.independent) + " independent, " +
                     std::to_string(deps.dependent) + " dependent, " +
                     std::to_string(deps.unknown) + " unknown",
                 {{"independent", std::to_string(deps.independent)},
                  {"dependent", std::to_string(deps.dependent)},
                  {"unknown", std::to_string(deps.unknown)},
                  {"inexact_refs", std::to_string(deps.inexact_refs)}});

  return PassResult{};  // diagnostics only: the program is never changed
}

}  // namespace bwc::pass
