#include "bwc/pass/pass.h"

#include "bwc/verify/structure.h"

namespace bwc::pass {

const char* static_verify_mode_name(StaticVerifyMode mode) {
  switch (mode) {
    case StaticVerifyMode::kOn:
      return "on";
    case StaticVerifyMode::kOff:
      return "off";
    case StaticVerifyMode::kOnly:
      return "only";
  }
  return "?";
}

verify::Report Pass::check(const ir::Program& /*before*/,
                           const ir::Program& after,
                           const CheckOptions& /*options*/) const {
  return verify::validate_structure(after);
}

}  // namespace bwc::pass
