#include "bwc/pass/pass.h"

#include "bwc/verify/structure.h"

namespace bwc::pass {

verify::Report Pass::check(const ir::Program& /*before*/,
                           const ir::Program& after,
                           const CheckOptions& /*options*/) const {
  return verify::validate_structure(after);
}

}  // namespace bwc::pass
