#include "bwc/pass/analysis_manager.h"

#include "bwc/ir/printer.h"
#include "bwc/support/error.h"

namespace bwc::pass {

std::string AnalysisManager::fingerprint_of(const ir::Program& program) const {
  return ir::to_string(program);
}

bool AnalysisManager::serve_from_cache(const ir::Program& program, bool valid,
                                       const std::string& fingerprint,
                                       const char* what) {
  if (!options_.cache || !valid) {
    ++stats_.misses;
    return false;
  }
  if (options_.audit && fingerprint != fingerprint_of(program)) {
    throw Error(std::string("stale analysis detected: cached ") + what +
                " does not match the current IR -- a pass mutated the "
                "program without declaring the invalidation");
  }
  ++stats_.hits;
  return true;
}

const std::vector<analysis::LoopSummary>& AnalysisManager::statement_summaries(
    const ir::Program& program) {
  if (serve_from_cache(program, summaries_valid_, summaries_fp_,
                       "statement summaries")) {
    return summaries_;
  }
  summaries_.clear();
  summaries_.reserve(program.top().size());
  for (int k = 0; k < static_cast<int>(program.top().size()); ++k)
    summaries_.push_back(analysis::summarize_statement(program, k));
  summaries_valid_ = true;
  if (options_.audit) summaries_fp_ = fingerprint_of(program);
  return summaries_;
}

const std::vector<analysis::ArrayLiveness>& AnalysisManager::liveness(
    const ir::Program& program) {
  if (serve_from_cache(program, liveness_valid_, liveness_fp_, "liveness")) {
    return liveness_;
  }
  // Liveness is a projection of the statement summaries; derive it from
  // the cached ones so a liveness miss does not re-walk the IR.
  liveness_ =
      analysis::analyze_liveness(program, &statement_summaries(program));
  liveness_valid_ = true;
  if (options_.audit) liveness_fp_ = fingerprint_of(program);
  return liveness_;
}

const fusion::FusionGraph& AnalysisManager::fusion_graph(
    const ir::Program& program, const fusion::FusionGraphOptions& options) {
  const bool same_options =
      graph_options_.allow_shifted_fusion == options.allow_shifted_fusion &&
      graph_options_.max_shift == options.max_shift;
  if (serve_from_cache(program, graph_valid_ && same_options, graph_fp_,
                       "fusion graph")) {
    return graph_;
  }
  graph_ = fusion::build_fusion_graph(program, options,
                                      &statement_summaries(program));
  graph_options_ = options;
  graph_valid_ = true;
  if (options_.audit) graph_fp_ = fingerprint_of(program);
  return graph_;
}

const verify::TrafficBound& AnalysisManager::traffic_bound(
    const ir::Program& program) {
  if (serve_from_cache(program, bound_valid_, bound_fp_, "traffic bound")) {
    return bound_;
  }
  bound_ = verify::compute_traffic_bound(program);
  bound_valid_ = true;
  if (options_.audit) bound_fp_ = fingerprint_of(program);
  return bound_;
}

const verify::DependenceSummary& AnalysisManager::dependence_summary(
    const ir::Program& program) {
  if (serve_from_cache(program, deps_valid_, deps_fp_,
                       "dependence summary")) {
    return deps_;
  }
  deps_ = verify::summarize_dependences(program);
  deps_valid_ = true;
  if (options_.audit) deps_fp_ = fingerprint_of(program);
  return deps_;
}

void AnalysisManager::invalidate(const PreservedAnalyses& preserved) {
  if (preserved.preserves_all()) return;
  ++stats_.invalidations;
  if (!preserved.preserves(AnalysisId::kStatementSummaries))
    summaries_valid_ = false;
  if (!preserved.preserves(AnalysisId::kLiveness)) liveness_valid_ = false;
  if (!preserved.preserves(AnalysisId::kFusionGraph)) graph_valid_ = false;
  if (!preserved.preserves(AnalysisId::kTrafficBound)) bound_valid_ = false;
  if (!preserved.preserves(AnalysisId::kStaticDependence))
    deps_valid_ = false;
}

}  // namespace bwc::pass
