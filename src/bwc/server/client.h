// Blocking TCP client for the bwcd protocol: one connection, framed
// request/response pairs. Used by `bwcopt bwcd-client`, the stress and
// fault tests, and the throughput bench.
#pragma once

#include <cstdint>
#include <string>

#include "bwc/server/protocol.h"

namespace bwc::server {

class Client {
 public:
  /// Connect to host:port. Throws bwc::Error ("[connect-failed] ...")
  /// when the daemon is unreachable. `timeout_ms` bounds connect and
  /// every subsequent read/write.
  Client(const std::string& host, int port, std::int64_t timeout_ms = 30'000);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Send one request and wait for its response. Throws bwc::Error on a
  /// transport failure ("[connection-lost]", "[timeout] ...") or a
  /// malformed response. Responses with error statuses are returned,
  /// not thrown -- the caller decides.
  Response call(const Request& request);

  /// Raw variant: send an arbitrary payload, return the raw response
  /// payload. What the fault tests use to speak malformed dialects.
  std::string call_raw(const std::string& payload);

  /// Send raw bytes as-is (no framing) -- truncated/garbage frames.
  void send_bytes(const std::string& bytes);

  /// Read one framed response payload (after send_bytes).
  std::string read_frame();

  int fd() const { return fd_; }

 private:
  int fd_ = -1;
  std::int64_t timeout_ms_ = 30'000;
};

}  // namespace bwc::server
