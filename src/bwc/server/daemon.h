// bwcd: the optimizer-as-a-service daemon (plain TCP, framed JSON).
//
// Threading shape:
//   - one accept thread (poll on the listen socket + a wake pipe),
//   - one reader thread per connection (frame reassembly, request
//     parsing, cheap ops inline),
//   - one dispatcher thread draining a bounded job queue in batches of
//     up to batch_max onto the existing runtime::ThreadPool -- one
//     parallel_for per batch, so concurrent optimize requests ride the
//     same fork/join pool the parallel replay engine uses.
//
// Robustness contract (tests/server_fault_test.cpp):
//   - a malformed payload (bad JSON, bad request schema) gets a
//     structured error response and the connection STAYS OPEN -- the
//     frame boundary is intact, so the stream is still synchronized;
//   - an oversized length prefix means the stream is NOT synchronized:
//     one structured error response, then the connection is closed;
//   - a full job queue answers "overloaded" immediately -- the daemon
//     never blocks a reader on queue space, and never hangs a client;
//   - a request still queued past its deadline answers "timeout"
//     without running;
//   - a client that disconnects mid-request just loses its response:
//     the write fails, the connection is reaped, nothing else is
//     affected (SIGPIPE is never raised; writes use MSG_NOSIGNAL).
//
// stop() -- wired to SIGTERM/SIGINT by tools/bwcd.cpp -- drains
// gracefully: stop accepting, reject new optimize jobs with
// "[shutting-down]", finish and answer everything already queued, then
// close connections and join every thread. Destruction implies stop().
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "bwc/server/service.h"

namespace bwc::server {

struct DaemonOptions {
  /// TCP port to bind on 127.0.0.1; 0 picks an ephemeral port (read it
  /// back from port() -- how the tests and bench avoid collisions).
  int port = 0;
  /// Worker threads for the optimize pool.
  int threads = 4;
  /// Bounded job-queue capacity; a request arriving on a full queue is
  /// answered "overloaded" immediately.
  int queue_max = 64;
  /// Jobs drained per dispatcher batch (one ThreadPool parallel_for).
  int batch_max = 8;
  /// Soft cap on live connections; one above it is answered with a
  /// structured error frame and closed.
  int max_connections = 256;
  /// Queue-wait deadline applied when a request carries timeout_ms=0.
  std::int64_t default_timeout_ms = 30'000;
  ServiceOptions service;
};

class Daemon {
 public:
  explicit Daemon(const DaemonOptions& options);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Bind, listen, and spawn the accept/dispatch threads. Throws
  /// bwc::Error when the port cannot be bound.
  void start();

  /// The bound port (valid after start()).
  int port() const { return port_; }

  /// Graceful drain; idempotent, safe from a signal-notified thread.
  void stop();

  const Service& service() const;
  Service& service();

  struct Counters {
    std::uint64_t connections_accepted = 0;
    std::uint64_t connections_rejected = 0;
    std::uint64_t frames = 0;
    std::uint64_t malformed_frames = 0;
    std::uint64_t truncated_frames = 0;
    std::uint64_t overloaded = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t batches = 0;
    std::uint64_t batched_jobs = 0;
  };
  Counters counters() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  int port_ = 0;
};

}  // namespace bwc::server
