// Wire framing for the bwcd protocol: length-prefixed payloads.
//
//   frame := u32 length (big-endian) | `length` payload bytes
//
// The payload is one JSON document (server/protocol.h). Length zero is a
// legal empty frame (ignored by the daemon); lengths above kMaxFrameBytes
// are a framing error -- the peer and the reader have lost sync, so the
// connection must be torn down after an error reply. Everything below the
// cap is just "need more bytes" until the payload arrives; a connection
// that closes mid-frame is a truncated frame.
//
// FrameReader is a push parser over a growing buffer, so the daemon's
// per-connection read loop, the in-process tests and the fuzz harness
// (tests/fuzz/frame_fuzz.cpp) all drive the exact same byte-level code.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace bwc::server {

/// Hard cap on one frame's payload. Programs and remark documents are
/// KB-scale; 16 MiB leaves three orders of magnitude of headroom while
/// bounding what one connection can make the daemon buffer.
inline constexpr std::uint32_t kMaxFrameBytes = 16u << 20;

/// Prepend the length prefix to a payload.
std::string encode_frame(const std::string& payload);

/// What FrameReader::next produced.
enum class FrameStatus {
  kNeedMore,   // no complete frame buffered yet
  kFrame,      // one payload extracted
  kOversized,  // length prefix exceeds kMaxFrameBytes; stream unsynchronized
};

class FrameReader {
 public:
  /// Append raw bytes from the wire.
  void feed(const char* data, std::size_t size);
  void feed(const std::string& data) { feed(data.data(), data.size()); }

  /// Extract the next complete frame into `payload`. kOversized is
  /// sticky: once the stream is unsynchronized every further call
  /// reports it, and the connection owner must close.
  FrameStatus next(std::string* payload);

  /// Bytes buffered but not yet consumed (mid-frame on a closed
  /// connection means the peer sent a truncated frame).
  std::size_t pending_bytes() const { return buffer_.size() - consumed_; }

 private:
  std::string buffer_;
  std::size_t consumed_ = 0;
  bool poisoned_ = false;
};

}  // namespace bwc::server
