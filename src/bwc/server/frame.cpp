#include "bwc/server/frame.h"

#include "bwc/support/error.h"

namespace bwc::server {

std::string encode_frame(const std::string& payload) {
  BWC_CHECK(payload.size() <= kMaxFrameBytes, "frame payload exceeds cap");
  const auto n = static_cast<std::uint32_t>(payload.size());
  std::string out;
  out.reserve(4 + payload.size());
  out += static_cast<char>((n >> 24) & 0xFF);
  out += static_cast<char>((n >> 16) & 0xFF);
  out += static_cast<char>((n >> 8) & 0xFF);
  out += static_cast<char>(n & 0xFF);
  out += payload;
  return out;
}

void FrameReader::feed(const char* data, std::size_t size) {
  // Compact once the consumed prefix dominates, so a long-lived
  // connection does not grow its buffer without bound.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data, size);
}

FrameStatus FrameReader::next(std::string* payload) {
  if (poisoned_) return FrameStatus::kOversized;
  if (buffer_.size() - consumed_ < 4) return FrameStatus::kNeedMore;
  const auto* p =
      reinterpret_cast<const unsigned char*>(buffer_.data() + consumed_);
  const std::uint32_t n = (static_cast<std::uint32_t>(p[0]) << 24) |
                          (static_cast<std::uint32_t>(p[1]) << 16) |
                          (static_cast<std::uint32_t>(p[2]) << 8) |
                          static_cast<std::uint32_t>(p[3]);
  if (n > kMaxFrameBytes) {
    poisoned_ = true;
    return FrameStatus::kOversized;
  }
  if (buffer_.size() - consumed_ - 4 < n) return FrameStatus::kNeedMore;
  payload->assign(buffer_, consumed_ + 4, n);
  consumed_ += 4 + n;
  return FrameStatus::kFrame;
}

}  // namespace bwc::server
