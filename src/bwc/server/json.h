// Minimal JSON reader/writer for the bwcd wire protocol (server/protocol.h).
//
// The daemon consumes untrusted bytes, so the parser is strict and
// bounded: full RFC 8259 value grammar, UTF-8 passed through opaquely,
// nesting depth capped, duplicate object keys rejected. Malformed input
// has exactly one legal outcome, a thrown bwc::Error prefixed
// "[bad-json]" -- the same contract as ir::parse_program, and the one the
// frame fuzzer (tests/fuzz/frame_fuzz.cpp) enforces.
//
// This is deliberately not a general-purpose JSON library: numbers are
// doubles, object key order is preserved (rendering round-trips), and
// there is no streaming -- protocol frames are small and length-capped
// before they ever reach the parser.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace bwc::server {

/// One JSON value; a tagged union over the six JSON kinds.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;
  static JsonValue null();
  static JsonValue boolean(bool b);
  static JsonValue number(double d);
  static JsonValue string(std::string s);
  static JsonValue array();
  static JsonValue object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_bool() const { return kind_ == Kind::kBool; }

  /// Accessors check the kind and throw bwc::Error on mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& items() const;
  const std::vector<std::pair<std::string, JsonValue>>& members() const;

  /// Object member lookup; nullptr when absent (or not an object).
  const JsonValue* find(const std::string& key) const;

  /// Typed member lookup with a fallback for absent keys; a present key
  /// of the wrong kind throws (a misspelled value should not be silently
  /// defaulted).
  std::string string_or(const std::string& key,
                        const std::string& fallback) const;
  double number_or(const std::string& key, double fallback) const;
  bool bool_or(const std::string& key, bool fallback) const;

  void push_back(JsonValue v);
  void set(std::string key, JsonValue v);

  /// Compact rendering (no whitespace); parse_json(render()) round-trips.
  std::string render() const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parse one JSON document. The whole input must be consumed (trailing
/// garbage is an error). Throws bwc::Error prefixed "[bad-json]".
JsonValue parse_json(const std::string& text);

/// Escape a string for embedding in a JSON document (no quotes added).
std::string json_escape(const std::string& s);

/// `"escaped"` -- the quoted JSON rendering of a string.
std::string json_quote(const std::string& s);

}  // namespace bwc::server
