// Persistent content-addressed compile cache for the bwcd service.
//
// Key material is the canonical text of everything that determines an
// optimize result (service.cpp: protocol version, canonical program,
// canonical pipeline spec, machine preset, cores, scale, measure flag);
// the value is the deterministic `result` JSON. Layout under the cache
// directory, following the codegen object cache's discipline
// (runtime/codegen.cpp):
//
//   <fp>.key   the full canonical key text
//   <fp>.val   header line "bwcd-cache-v1 <value-fp>\n" + the value
//
// where <fp> is the 128-bit hex fingerprint of the key text. A hit
// requires the stored key text to equal the probe byte-for-byte (the
// fingerprint only names the files; the content check decides, so a
// collision can never serve a wrong answer) AND the value to match its
// own fingerprint in the header (a tampered or torn entry is evicted
// and recomputed, never served). Writes publish via write-to-temp +
// atomic rename, so concurrent readers -- other daemon threads or other
// daemon processes sharing the directory -- see either the old entry or
// the new one, never a partial file.
//
// The cache degrades, never blocks: an unwritable directory or a failed
// publish counts store_failures and the service keeps answering from
// the pipeline; a hit is a pure read (no pipeline run), which is the
// fast path the server bench floors.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace bwc::server {

class CompileCache {
 public:
  /// `dir` empty disables the cache entirely (every get is a miss,
  /// every put a no-op). The directory is created on first use.
  explicit CompileCache(std::string dir);

  bool enabled() const { return !dir_.empty(); }
  const std::string& dir() const { return dir_; }

  struct Lookup {
    bool hit = false;
    std::string value;
  };

  /// Probe the cache. Never throws: any I/O trouble is a miss.
  Lookup get(const std::string& key_text);

  /// Publish an entry. Never throws: failures count store_failures and
  /// the entry is simply absent next time.
  void put(const std::string& key_text, const std::string& value);

  std::uint64_t hits() const { return hits_.load(); }
  std::uint64_t misses() const { return misses_.load(); }
  std::uint64_t evictions() const { return evictions_.load(); }
  std::uint64_t store_failures() const { return store_failures_.load(); }

  /// 128-bit hex fingerprint of arbitrary text (the key naming scheme;
  /// also used for the value-integrity header).
  static std::string fingerprint(const std::string& text);

 private:
  std::string dir_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> store_failures_{0};
};

}  // namespace bwc::server
