#include "bwc/server/record_log.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>
#include <sstream>

#include "bwc/support/error.h"

namespace bwc::server {

namespace {

constexpr char kMagic[] = "BWCDREC1";  // 8 bytes, no terminator on disk
constexpr std::size_t kMagicLen = 8;
constexpr std::uint8_t kTypeServed = 1;
constexpr std::uint8_t kTypePipelineSpec = 2;
/// Cap on one record's payload: fingerprints and error codes are tiny,
/// so anything larger is damage and ends a scan.
constexpr std::uint32_t kMaxRecordBytes = 1 << 20;

void put_u16(std::string& out, std::uint16_t v) {
  out += static_cast<char>(v & 0xFF);
  out += static_cast<char>((v >> 8) & 0xFF);
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out += static_cast<char>((v >> (8 * i)) & 0xFF);
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out += static_cast<char>((v >> (8 * i)) & 0xFF);
}

/// Bounded little-endian readers over a byte span; all return false on
/// truncation so the scanner can stop cleanly.
struct Span {
  const unsigned char* p;
  std::size_t n;
  std::size_t at = 0;

  bool u8(std::uint8_t* v) {
    if (at + 1 > n) return false;
    *v = p[at++];
    return true;
  }
  bool u16(std::uint16_t* v) {
    if (at + 2 > n) return false;
    *v = static_cast<std::uint16_t>(p[at] | (p[at + 1] << 8));
    at += 2;
    return true;
  }
  bool u64(std::uint64_t* v) {
    if (at + 8 > n) return false;
    std::uint64_t r = 0;
    for (int i = 7; i >= 0; --i) r = (r << 8) | p[at + i];
    at += 8;
    *v = r;
    return true;
  }
  bool bytes(std::string* out, std::size_t len) {
    if (at + len > n) return false;
    out->assign(reinterpret_cast<const char*>(p + at), len);
    at += len;
    return true;
  }
};

std::string encode_served(const ServedRecord& r) {
  std::string payload;
  put_u64(payload, r.unix_micros);
  payload += static_cast<char>(r.status);
  payload += static_cast<char>(r.cache_hit ? 1 : 0);
  put_u64(payload, r.elapsed_us);
  put_u64(payload, r.request_bytes);
  put_u64(payload, r.response_bytes);
  put_u16(payload, static_cast<std::uint16_t>(r.key_fp.size()));
  payload += r.key_fp;
  put_u16(payload, static_cast<std::uint16_t>(r.detail.size()));
  payload += r.detail;

  std::string record;
  put_u32(record, static_cast<std::uint32_t>(payload.size()));
  record += static_cast<char>(kTypeServed);
  record += payload;
  return record;
}

std::string encode_pipeline_spec(std::uint64_t unix_micros,
                                 const std::string& spec) {
  std::string payload;
  put_u64(payload, unix_micros);
  put_u16(payload, static_cast<std::uint16_t>(spec.size()));
  payload += spec;

  std::string record;
  put_u32(record, static_cast<std::uint32_t>(payload.size()));
  record += static_cast<char>(kTypePipelineSpec);
  record += payload;
  return record;
}

bool decode_pipeline_spec(const std::string& payload, std::string* spec) {
  Span s{reinterpret_cast<const unsigned char*>(payload.data()),
         payload.size()};
  std::uint64_t micros = 0;
  std::uint16_t len = 0;
  return s.u64(&micros) && s.u16(&len) && s.bytes(spec, len);
}

bool decode_served(const std::string& payload, ServedRecord* r) {
  Span s{reinterpret_cast<const unsigned char*>(payload.data()),
         payload.size()};
  std::uint8_t status = 0;
  std::uint8_t hit = 0;
  std::uint16_t len = 0;
  if (!s.u64(&r->unix_micros) || !s.u8(&status) || !s.u8(&hit) ||
      !s.u64(&r->elapsed_us) || !s.u64(&r->request_bytes) ||
      !s.u64(&r->response_bytes))
    return false;
  if (!s.u16(&len) || !s.bytes(&r->key_fp, len)) return false;
  if (!s.u16(&len) || !s.bytes(&r->detail, len)) return false;
  r->status = status;
  r->cache_hit = hit != 0;
  return true;
}

}  // namespace

RecordLogWriter::RecordLogWriter(const std::string& path) {
  if (path.empty()) return;
  // O_RDWR, not O_WRONLY: the constructor reads the magic back on
  // reopen (O_APPEND still pins every write to the tail).
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_APPEND,
                        0644);  // NOLINT
  if (fd < 0) {
    ++failures_;
    return;
  }
  // Fresh file: stamp the magic. Existing file: verify it so we never
  // append records into something that is not a bwcd log.
  const off_t size = ::lseek(fd, 0, SEEK_END);
  if (size == 0) {
    if (::write(fd, kMagic, kMagicLen) !=
        static_cast<ssize_t>(kMagicLen)) {
      ::close(fd);
      ++failures_;
      return;
    }
  } else {
    char head[kMagicLen];
    const ssize_t got = ::pread(fd, head, kMagicLen, 0);
    if (got != static_cast<ssize_t>(kMagicLen) ||
        std::memcmp(head, kMagic, kMagicLen) != 0) {
      ::close(fd);
      ++failures_;
      return;
    }
  }
  fd_ = fd;
}

RecordLogWriter::~RecordLogWriter() {
  if (fd_ >= 0) ::close(fd_);
}

void RecordLogWriter::append(const ServedRecord& record) {
  const std::string bytes = encode_served(record);
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ < 0) return;
  // O_APPEND makes the whole record one atomic append on local
  // filesystems; a short write still only damages the tail, which the
  // reader tolerates.
  if (::write(fd_, bytes.data(), bytes.size()) !=
      static_cast<ssize_t>(bytes.size())) {
    ::close(fd_);
    fd_ = -1;
    ++failures_;
    return;
  }
  ++written_;
}

void RecordLogWriter::append_pipeline_spec(const std::string& spec) {
  if (spec.empty() || spec.size() > 0xFFFF) return;
  const auto micros = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  const std::string bytes = encode_pipeline_spec(micros, spec);
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ < 0) return;
  if (::write(fd_, bytes.data(), bytes.size()) !=
      static_cast<ssize_t>(bytes.size())) {
    ::close(fd_);
    fd_ = -1;
    ++failures_;
    return;
  }
  ++written_;
}

std::vector<ServedRecord> read_record_log(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("[record-log] cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string data = ss.str();
  if (data.size() < kMagicLen ||
      std::memcmp(data.data(), kMagic, kMagicLen) != 0)
    throw Error("[record-log] bad magic in " + path);

  std::vector<ServedRecord> records;
  std::size_t at = kMagicLen;
  while (at + 5 <= data.size()) {
    const auto* p = reinterpret_cast<const unsigned char*>(data.data() + at);
    const std::uint32_t len = static_cast<std::uint32_t>(p[0]) |
                              (static_cast<std::uint32_t>(p[1]) << 8) |
                              (static_cast<std::uint32_t>(p[2]) << 16) |
                              (static_cast<std::uint32_t>(p[3]) << 24);
    const std::uint8_t type = p[4];
    if (len > kMaxRecordBytes) break;          // damaged length: stop
    if (at + 5 + len > data.size()) break;     // truncated tail: stop
    const std::string payload = data.substr(at + 5, len);
    at += 5 + len;
    if (type != kTypeServed) continue;  // unknown type: skip, keep scanning
    ServedRecord r;
    if (!decode_served(payload, &r)) break;  // damaged payload: stop
    records.push_back(std::move(r));
  }
  return records;
}

std::vector<std::string> read_pipeline_specs(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};  // no log yet: nothing to seed with
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string data = ss.str();
  if (data.size() < kMagicLen ||
      std::memcmp(data.data(), kMagic, kMagicLen) != 0)
    throw Error("[record-log] bad magic in " + path);

  std::vector<std::string> specs;
  std::size_t at = kMagicLen;
  while (at + 5 <= data.size()) {
    const auto* p = reinterpret_cast<const unsigned char*>(data.data() + at);
    const std::uint32_t len = static_cast<std::uint32_t>(p[0]) |
                              (static_cast<std::uint32_t>(p[1]) << 8) |
                              (static_cast<std::uint32_t>(p[2]) << 16) |
                              (static_cast<std::uint32_t>(p[3]) << 24);
    const std::uint8_t type = p[4];
    if (len > kMaxRecordBytes) break;
    if (at + 5 + len > data.size()) break;
    const std::string payload = data.substr(at + 5, len);
    at += 5 + len;
    if (type != kTypePipelineSpec) continue;
    std::string spec;
    if (!decode_pipeline_spec(payload, &spec)) break;
    specs.push_back(std::move(spec));
  }
  return specs;
}

}  // namespace bwc::server
