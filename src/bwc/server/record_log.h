// Append-only binary record log of bwcd requests, for offline analysis.
//
// Follows the DataSeries shape -- compact fixed-layout records behind a
// tagged, versioned container -- without the generality: one file, one
// record type, sequential scans.
//
//   file   := magic "BWCDREC1" | record*
//   record := u32 payload_len (LE) | u8 type | payload
//
// Type 1 (kServed) payload, all integers little-endian:
//   u64 unix_micros          when serving finished
//   u8  status               0 ok, 1 error, 2 overloaded, 3 timeout
//   u8  cache_hit
//   u64 elapsed_us           queue wait + service time
//   u64 request_bytes        frame payload size in
//   u64 response_bytes       frame payload size out
//   u16 key_fp_len | bytes   cache-key fingerprint (empty for non-optimize)
//   u16 detail_len | bytes   op name, or the error code on failures
//
// Type 2 (kPipelineSpec) payload:
//   u64 unix_micros          when the spec was recorded
//   u16 spec_len | bytes     canonical PipelineSpec string (the pipeline a
//                            served optimize ran, or a tune op's winner)
//
// The pipeline-spec records make the log double as tuning history: the
// autotuner seeds its starting population from them (bwcopt
// --tune-seed-log, and the daemon's own tune op).
//
// The writer appends under a mutex (one log per daemon); the reader
// stops cleanly at a truncated tail -- a crashed daemon loses at most
// its final partial record, never the file. Schema growth adds new
// record types; readers skip types they do not know.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace bwc::server {

struct ServedRecord {
  std::uint64_t unix_micros = 0;
  std::uint8_t status = 0;
  bool cache_hit = false;
  std::uint64_t elapsed_us = 0;
  std::uint64_t request_bytes = 0;
  std::uint64_t response_bytes = 0;
  std::string key_fp;
  std::string detail;
};

/// Record-status byte values.
enum : std::uint8_t {
  kRecordOk = 0,
  kRecordError = 1,
  kRecordOverloaded = 2,
  kRecordTimeout = 3,
};

class RecordLogWriter {
 public:
  /// Opens (creates or appends to) `path`; empty path disables the log.
  /// A fresh file gets the magic; an existing one is appended to only
  /// if its magic matches, otherwise the writer disables itself and
  /// counts the failure rather than corrupting a foreign file.
  explicit RecordLogWriter(const std::string& path);
  ~RecordLogWriter();

  RecordLogWriter(const RecordLogWriter&) = delete;
  RecordLogWriter& operator=(const RecordLogWriter&) = delete;

  bool enabled() const { return fd_ >= 0; }

  /// Append one record; thread-safe. Failures disable the log (serving
  /// must never block on logging).
  void append(const ServedRecord& record);

  /// Append one pipeline-spec record (type 2); thread-safe. The spec
  /// should be canonical (pass::PipelineSpec::to_string form). Empty
  /// specs are not recorded (nothing to seed a search with).
  void append_pipeline_spec(const std::string& spec);

  std::uint64_t records_written() const { return written_; }
  std::uint64_t failures() const { return failures_; }

 private:
  int fd_ = -1;
  std::mutex mutex_;
  std::uint64_t written_ = 0;
  std::uint64_t failures_ = 0;
};

/// Scan a record log. Unknown record types are skipped; a truncated or
/// damaged tail ends the scan (records before it are returned). Throws
/// bwc::Error only when the file cannot be opened or the magic is wrong.
std::vector<ServedRecord> read_record_log(const std::string& path);

/// Scan a record log for pipeline-spec records (type 2), in file order,
/// duplicates included. Same damage tolerance as read_record_log; returns
/// an empty vector (rather than throwing) when the file does not exist,
/// so callers can seed from a log that has not been written yet.
std::vector<std::string> read_pipeline_specs(const std::string& path);

}  // namespace bwc::server
