// The bwcd request/response protocol (schema "bwcd-v1").
//
// One frame (server/frame.h) carries one JSON document. Requests:
//
//   {"op": "optimize", "program": "<IR text>", "pipeline": "<spec>",
//    "machine": "o2k", "cores": 1, "scale": 16, "engine": "compiled",
//    "measure": true, "timeout_ms": 30000}
//   {"op": "tune", "program": "<IR text>", "strategy": "beam",
//    "gap": 5.0, "budget": "small", "tune_seed": 0, "machine": "o2k",
//    "cores": 1, "scale": 16, "engine": "compiled"}
//   {"op": "stats"}        -- service counters
//   {"op": "ping"}         -- liveness probe
//
// Only "op" (and "program" for optimize) is required; everything else
// defaults as shown. Responses:
//
//   {"schema": "bwcd-v1", "status": "ok", "cache_hit": false,
//    "result": {...}}                               -- optimize
//   {"schema": "bwcd-v1", "status": "error", "error": "<message>"}
//   {"schema": "bwcd-v1", "status": "overloaded" | "timeout", ...}
//
// The `result` object is DETERMINISTIC: it contains the canonical
// program and pipeline, the optimized IR, per-pass remarks stripped of
// wall-clock fields, traffic bounds, and the machine-model measurement
// (simulated, so exact). A cache hit replays the stored result object
// byte-for-byte -- the bit-identity contract the stress test pins.
// Timing and serving metadata (elapsed, cache_hit) live OUTSIDE
// `result` so they never perturb it. docs/SERVER.md documents every
// field; tests/golden/server_protocol.json freezes the schema.
#pragma once

#include <cstdint>
#include <string>

#include "bwc/server/json.h"

namespace bwc::server {

/// Wire-schema identifier stamped on every response.
inline constexpr char kSchemaName[] = "bwcd-v1";

/// Bumped whenever the deterministic `result` rendering changes shape;
/// part of the compile-cache key, so stale entries from an older daemon
/// are misses rather than wrong answers.
inline constexpr int kProtocolVersion = 1;

struct Request {
  enum class Op { kOptimize, kTune, kStats, kPing };
  Op op = Op::kOptimize;
  /// IR program in the printer's text format (ir/parser.h).
  std::string program;
  /// PipelineSpec string; empty runs the default pipeline. Rejected for
  /// op "tune" (tune searches pipelines instead of accepting one).
  std::string pipeline;
  /// Tune-only knobs (rejected on other ops): search strategy, the
  /// certificate gap tolerance in percent, the evaluation budget
  /// ("small" | "medium" | "large" | positive integer) and the search
  /// seed. The daemon defaults to the small budget so one tune request
  /// stays comparable to an optimize+measure in service time.
  std::string strategy = "beam";
  double gap = 5.0;
  std::string budget = "small";
  std::uint64_t tune_seed = 0;
  std::string machine = "o2k";  // o2k | exemplar | modern
  int cores = 1;
  std::uint64_t scale = 16;  // cache scale divisor for the machine model
  std::string engine = "compiled";  // compiled | reference | native
  /// Run the machine-model measurement of original vs optimized. Off
  /// returns the transform result only (faster; no machine section).
  bool measure = true;
  /// Queue-wait deadline in milliseconds; 0 uses the daemon default. A
  /// request still queued past its deadline gets status "timeout"
  /// without running (execution itself is never preempted).
  std::int64_t timeout_ms = 0;
};

/// Parse and validate one request document. Throws bwc::Error prefixed
/// "[bad-json]" (malformed JSON) or "[bad-request]" (well-formed JSON
/// violating the schema: unknown op, missing program, bad enum value,
/// out-of-range number).
Request parse_request(const std::string& payload);

/// Canonical JSON rendering of a request (client side).
std::string render_request(const Request& request);

struct Response {
  /// "ok" | "error" | "overloaded" | "timeout".
  std::string status = "ok";
  bool cache_hit = false;
  /// Machine-checkable error code ("[bad-json]", "[frame-too-large]",
  /// ...) plus human-readable detail; empty when status == "ok".
  std::string error;
  /// The deterministic result object, pre-rendered ("{...}"); empty for
  /// non-optimize ops and non-ok statuses.
  std::string result_json;
  /// Wall-clock serving time in microseconds (0 for error paths that
  /// never reached the service).
  std::int64_t elapsed_us = 0;
};

/// Render a response frame payload. `result_json` is embedded verbatim.
std::string render_response(const Response& response);

/// Parse a response (client side). Throws bwc::Error on malformed input
/// or a schema mismatch.
Response parse_response(const std::string& payload);

}  // namespace bwc::server
