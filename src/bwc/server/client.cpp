#include "bwc/server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "bwc/server/frame.h"
#include "bwc/support/error.h"

namespace bwc::server {

Client::Client(const std::string& host, int port, std::int64_t timeout_ms)
    : timeout_ms_(timeout_ms) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw Error("[connect-failed] cannot create socket");
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    fd_ = -1;
    throw Error("[connect-failed] bad host address: " + host);
  }
  if (::connect(fd_, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof addr) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw Error("[connect-failed] " + host + ":" + std::to_string(port) +
                ": " + why);
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  struct timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Client::Client(Client&& other) noexcept
    : fd_(other.fd_), timeout_ms_(other.timeout_ms_) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    timeout_ms_ = other.timeout_ms_;
    other.fd_ = -1;
  }
  return *this;
}

void Client::send_bytes(const std::string& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      throw Error("[connection-lost] send failed");
    }
    off += static_cast<std::size_t>(n);
  }
}

std::string Client::read_frame() {
  FrameReader reader;
  char buf[16384];
  std::string payload;
  while (true) {
    switch (reader.next(&payload)) {
      case FrameStatus::kFrame: return payload;
      case FrameStatus::kOversized:
        throw Error("[bad-response] oversized response frame");
      case FrameStatus::kNeedMore: break;
    }
    struct pollfd pfd = {fd_, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, static_cast<int>(timeout_ms_));
    if (pr < 0) {
      if (errno == EINTR) continue;
      throw Error("[connection-lost] poll failed");
    }
    if (pr == 0)
      throw Error("[timeout] no response within " +
                  std::to_string(timeout_ms_) + " ms");
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n == 0) throw Error("[connection-lost] daemon closed the connection");
    if (n < 0) {
      if (errno == EINTR) continue;
      throw Error("[connection-lost] recv failed");
    }
    reader.feed(buf, static_cast<std::size_t>(n));
  }
}

std::string Client::call_raw(const std::string& payload) {
  send_bytes(encode_frame(payload));
  return read_frame();
}

Response Client::call(const Request& request) {
  return parse_response(call_raw(render_request(request)));
}

}  // namespace bwc::server
