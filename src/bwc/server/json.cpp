#include "bwc/server/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "bwc/support/error.h"

namespace bwc::server {

namespace {

/// Nesting depth cap: frames are length-capped upstream, but a few KiB of
/// '[' would still recurse thousands of frames deep without this.
constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw Error("[bad-json] " + why + " at byte " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c)
      fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return JsonValue::string(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return JsonValue::boolean(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return JsonValue::boolean(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue::null();
      default: return parse_number();
    }
  }

  JsonValue parse_object(int depth) {
    expect('{');
    JsonValue obj = JsonValue::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      if (obj.find(key) != nullptr) fail("duplicate object key \"" + key +
                                         "\"");
      skip_ws();
      expect(':');
      obj.set(std::move(key), parse_value(depth + 1));
      skip_ws();
      const char sep = peek();
      ++pos_;
      if (sep == '}') return obj;
      if (sep != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array(int depth) {
    expect('[');
    JsonValue arr = JsonValue::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(parse_value(depth + 1));
      skip_ws();
      const char sep = peek();
      ++pos_;
      if (sep == ']') return arr;
      if (sep != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const unsigned char c = static_cast<unsigned char>(text_[pos_++]);
      if (c == '"') return out;
      if (c < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out += static_cast<char>(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': append_unicode_escape(out); break;
        default: fail("bad escape character");
      }
    }
  }

  std::uint32_t parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        fail("bad hex digit in \\u escape");
      }
    }
    return v;
  }

  /// \uXXXX (with surrogate pairing) to UTF-8.
  void append_unicode_escape(std::string& out) {
    std::uint32_t cp = parse_hex4();
    if (cp >= 0xD800 && cp <= 0xDBFF) {
      if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
          text_[pos_ + 1] != 'u')
        fail("unpaired surrogate");
      pos_ += 2;
      const std::uint32_t lo = parse_hex4();
      if (lo < 0xDC00 || lo > 0xDFFF) fail("bad low surrogate");
      cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
      fail("unpaired surrogate");
    }
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() ||
        !std::isdigit(static_cast<unsigned char>(text_[pos_])))
      fail("bad number");
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_])))
        fail("bad number fraction");
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_])))
        fail("bad number exponent");
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("bad number");
    if (!std::isfinite(v)) fail("number out of range");
    return JsonValue::number(v);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue JsonValue::null() { return JsonValue(); }

JsonValue JsonValue::boolean(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::number(double d) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

bool JsonValue::as_bool() const {
  BWC_CHECK(kind_ == Kind::kBool, "JSON value is not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  BWC_CHECK(kind_ == Kind::kNumber, "JSON value is not a number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  BWC_CHECK(kind_ == Kind::kString, "JSON value is not a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  BWC_CHECK(kind_ == Kind::kArray, "JSON value is not an array");
  return items_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  BWC_CHECK(kind_ == Kind::kObject, "JSON value is not an object");
  return members_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string JsonValue::string_or(const std::string& key,
                                 const std::string& fallback) const {
  const JsonValue* v = find(key);
  if (v == nullptr || v->is_null()) return fallback;
  if (!v->is_string())
    throw Error("[bad-json] field \"" + key + "\" must be a string");
  return v->as_string();
}

double JsonValue::number_or(const std::string& key, double fallback) const {
  const JsonValue* v = find(key);
  if (v == nullptr || v->is_null()) return fallback;
  if (!v->is_number())
    throw Error("[bad-json] field \"" + key + "\" must be a number");
  return v->as_number();
}

bool JsonValue::bool_or(const std::string& key, bool fallback) const {
  const JsonValue* v = find(key);
  if (v == nullptr || v->is_null()) return fallback;
  if (!v->is_bool())
    throw Error("[bad-json] field \"" + key + "\" must be a boolean");
  return v->as_bool();
}

void JsonValue::push_back(JsonValue v) {
  BWC_CHECK(kind_ == Kind::kArray, "push_back on a non-array JSON value");
  items_.push_back(std::move(v));
}

void JsonValue::set(std::string key, JsonValue v) {
  BWC_CHECK(kind_ == Kind::kObject, "set on a non-object JSON value");
  members_.emplace_back(std::move(key), std::move(v));
}

std::string JsonValue::render() const {
  switch (kind_) {
    case Kind::kNull: return "null";
    case Kind::kBool: return bool_ ? "true" : "false";
    case Kind::kNumber: {
      // Integral values render without a fraction so counters stay exact
      // and stable; everything else gets round-trip precision.
      if (number_ == static_cast<double>(static_cast<std::int64_t>(number_))) {
        return std::to_string(static_cast<std::int64_t>(number_));
      }
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.17g", number_);
      return buf;
    }
    case Kind::kString: return json_quote(string_);
    case Kind::kArray: {
      std::string out = "[";
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i != 0) out += ",";
        out += items_[i].render();
      }
      return out + "]";
    }
    case Kind::kObject: {
      std::string out = "{";
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i != 0) out += ",";
        out += json_quote(members_[i].first) + ":" +
               members_[i].second.render();
      }
      return out + "}";
    }
  }
  return "null";
}

JsonValue parse_json(const std::string& text) {
  return Parser(text).parse_document();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_quote(const std::string& s) {
  std::string out = "\"";
  out += json_escape(s);
  out += '"';
  return out;
}

}  // namespace bwc::server
