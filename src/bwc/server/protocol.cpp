#include "bwc/server/protocol.h"

#include <cmath>

#include "bwc/support/error.h"
#include "bwc/tune/autotune.h"

namespace bwc::server {

namespace {

[[noreturn]] void bad_request(const std::string& why) {
  throw Error("[bad-request] " + why);
}

/// Integer field with range checking: JSON numbers are doubles, so a
/// fractional or out-of-range value is a schema violation, not a trunc.
std::int64_t int_field(const JsonValue& doc, const std::string& key,
                       std::int64_t fallback, std::int64_t lo,
                       std::int64_t hi) {
  const double v = doc.number_or(key, static_cast<double>(fallback));
  if (std::floor(v) != v) bad_request("field \"" + key + "\" must be an integer");
  if (v < static_cast<double>(lo) || v > static_cast<double>(hi))
    bad_request("field \"" + key + "\" out of range [" + std::to_string(lo) +
                ", " + std::to_string(hi) + "]");
  return static_cast<std::int64_t>(v);
}

Request parse_request_schema(const JsonValue& doc);

}  // namespace

Request parse_request(const std::string& payload) {
  // Malformed JSON throws "[bad-json]" from here; everything after is a
  // schema question, so wrong-kind field errors from the typed lookups
  // are re-coded "[bad-request]".
  const JsonValue doc = parse_json(payload);
  try {
    return parse_request_schema(doc);
  } catch (const Error& e) {
    const std::string what = e.what();
    if (what.rfind("[bad-request]", 0) == 0) throw;
    const std::size_t cut = what.rfind("] ");
    bad_request(cut == std::string::npos ? what : what.substr(cut + 2));
  }
}

namespace {

Request parse_request_schema(const JsonValue& doc) {
  if (!doc.is_object()) bad_request("request must be a JSON object");
  // Strict schema: an unknown key is a misspelled option the client
  // thinks is in effect -- reject instead of silently ignoring.
  static const char* const kKnownKeys[] = {
      "op",       "program", "pipeline", "machine", "cores",     "scale",
      "engine",   "measure", "timeout_ms", "strategy", "gap",    "budget",
      "tune_seed",
  };
  for (const auto& member : doc.members()) {
    bool known = false;
    for (const char* key : kKnownKeys) known = known || member.first == key;
    if (!known) bad_request("unknown field \"" + member.first + "\"");
  }
  Request r;
  const std::string op = doc.string_or("op", "");
  if (op == "optimize") {
    r.op = Request::Op::kOptimize;
  } else if (op == "tune") {
    r.op = Request::Op::kTune;
  } else if (op == "stats") {
    r.op = Request::Op::kStats;
  } else if (op == "ping") {
    r.op = Request::Op::kPing;
  } else if (op.empty()) {
    bad_request("missing required field \"op\"");
  } else {
    bad_request("unknown op \"" + op + "\"");
  }
  if (r.op == Request::Op::kStats || r.op == Request::Op::kPing) return r;

  // Tune-only fields on optimize (and vice versa) are client confusion
  // about what the op does -- reject like any other unknown key.
  if (r.op == Request::Op::kOptimize) {
    for (const char* key : {"strategy", "gap", "budget", "tune_seed"}) {
      if (doc.find(key) != nullptr)
        bad_request(std::string("field \"") + key +
                    "\" is only valid for op \"tune\"");
    }
  } else {
    // timeout_ms stays valid (the queue deadline is op-independent).
    for (const char* key : {"pipeline", "measure"}) {
      if (doc.find(key) != nullptr)
        bad_request(std::string("field \"") + key +
                    "\" is not valid for op \"tune\"");
    }
  }

  r.program = doc.string_or("program", "");
  if (r.program.empty())
    bad_request("op \"" + op + "\" requires a non-empty \"program\"");
  r.pipeline = doc.string_or("pipeline", "");
  r.machine = doc.string_or("machine", "o2k");
  if (r.machine != "o2k" && r.machine != "exemplar" && r.machine != "modern")
    bad_request("unknown machine \"" + r.machine +
                "\" (supported: o2k, exemplar, modern)");
  r.engine = doc.string_or("engine", "compiled");
  if (r.engine != "compiled" && r.engine != "reference" &&
      r.engine != "native")
    bad_request("unknown engine \"" + r.engine +
                "\" (supported: compiled, reference, native)");
  r.cores = static_cast<int>(int_field(doc, "cores", 1, 1, 1024));
  r.scale =
      static_cast<std::uint64_t>(int_field(doc, "scale", 16, 1, 1 << 20));
  r.measure = doc.bool_or("measure", true);
  r.timeout_ms = int_field(doc, "timeout_ms", 0, 0, 86'400'000);
  if (r.op == Request::Op::kTune) {
    r.strategy = doc.string_or("strategy", "beam");
    try {
      tune::parse_strategy(r.strategy);
    } catch (const Error& e) {
      bad_request(e.what());
    }
    r.gap = doc.number_or("gap", 5.0);
    if (!(r.gap >= 0.0 && r.gap <= 1000.0))
      bad_request("field \"gap\" out of range [0, 1000]");
    r.budget = doc.string_or("budget", "small");
    try {
      tune::parse_budget(r.budget);
    } catch (const Error& e) {
      bad_request(e.what());
    }
    r.tune_seed = static_cast<std::uint64_t>(
        int_field(doc, "tune_seed", 0, 0, (std::int64_t{1} << 53)));
  }
  return r;
}

}  // namespace

std::string render_request(const Request& request) {
  JsonValue doc = JsonValue::object();
  switch (request.op) {
    case Request::Op::kStats:
      doc.set("op", JsonValue::string("stats"));
      return doc.render();
    case Request::Op::kPing:
      doc.set("op", JsonValue::string("ping"));
      return doc.render();
    case Request::Op::kOptimize:
    case Request::Op::kTune:
      break;
  }
  const bool is_tune = request.op == Request::Op::kTune;
  doc.set("op", JsonValue::string(is_tune ? "tune" : "optimize"));
  doc.set("program", JsonValue::string(request.program));
  if (!is_tune && !request.pipeline.empty())
    doc.set("pipeline", JsonValue::string(request.pipeline));
  doc.set("machine", JsonValue::string(request.machine));
  doc.set("cores", JsonValue::number(request.cores));
  doc.set("scale", JsonValue::number(static_cast<double>(request.scale)));
  doc.set("engine", JsonValue::string(request.engine));
  if (is_tune) {
    doc.set("strategy", JsonValue::string(request.strategy));
    doc.set("gap", JsonValue::number(request.gap));
    doc.set("budget", JsonValue::string(request.budget));
    doc.set("tune_seed",
            JsonValue::number(static_cast<double>(request.tune_seed)));
  } else {
    doc.set("measure", JsonValue::boolean(request.measure));
  }
  if (request.timeout_ms > 0)
    doc.set("timeout_ms",
            JsonValue::number(static_cast<double>(request.timeout_ms)));
  return doc.render();
}

std::string render_response(const Response& response) {
  std::string out = "{\"schema\":";
  out += json_quote(kSchemaName);
  out += ",\"status\":" + json_quote(response.status);
  out += ",\"cache_hit\":";
  out += response.cache_hit ? "true" : "false";
  out += ",\"elapsed_us\":" + std::to_string(response.elapsed_us);
  if (!response.error.empty()) out += ",\"error\":" + json_quote(response.error);
  if (!response.result_json.empty())
    out += ",\"result\":" + response.result_json;
  out += "}";
  return out;
}

Response parse_response(const std::string& payload) {
  const JsonValue doc = parse_json(payload);
  if (!doc.is_object()) throw Error("[bad-response] not a JSON object");
  const std::string schema = doc.string_or("schema", "");
  if (schema != kSchemaName)
    throw Error("[bad-response] schema \"" + schema + "\", expected \"" +
                kSchemaName + "\"");
  Response r;
  r.status = doc.string_or("status", "");
  if (r.status != "ok" && r.status != "error" && r.status != "overloaded" &&
      r.status != "timeout")
    throw Error("[bad-response] unknown status \"" + r.status + "\"");
  r.cache_hit = doc.bool_or("cache_hit", false);
  r.elapsed_us = static_cast<std::int64_t>(doc.number_or("elapsed_us", 0));
  r.error = doc.string_or("error", "");
  if (const JsonValue* result = doc.find("result"); result != nullptr)
    r.result_json = result->render();
  return r;
}

}  // namespace bwc::server
