// The bwcd service core: one request in, one response out.
//
// Service is transport-free -- the TCP daemon (server/daemon.h), the
// tests and the bench all call handle() directly -- and thread-safe, so
// the daemon's worker pool runs many handles concurrently.
//
// An optimize request is canonicalized first (program parsed and
// re-printed, pipeline spec parsed and re-rendered, defaults filled),
// so every spelling of the same computation -- whitespace, key order,
// an explicit spec equal to the default -- maps to the same
// content-addressed cache key. A hit replays the stored result object
// byte-for-byte without touching the pass pipeline (pipeline_runs is
// the counter the acceptance test watches); a miss runs
// core::optimize + model::measure, renders the deterministic result
// body, and publishes it.
//
// The replay engine is deliberately NOT part of the cache key: all
// engines are bit-identical by the differential guarantee
// (tests/codegen_test.cpp, tests/compiled_runtime_test.cpp), so a
// result computed under one engine is the correct answer for every
// other. docs/SERVER.md states this contract.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bwc/server/cache.h"
#include "bwc/server/protocol.h"
#include "bwc/server/record_log.h"

namespace bwc::server {

struct ServiceOptions {
  /// Content-addressed result cache directory; empty disables caching.
  std::string cache_dir;
  /// Append-only binary record log path; empty disables logging.
  std::string record_log_path;
  /// Artificial per-optimize-request delay in milliseconds, applied
  /// before any work. Zero in production; the fault tests and the
  /// throughput bench use it to shape queue pressure deterministically.
  std::int64_t debug_delay_ms = 0;
};

class Service {
 public:
  explicit Service(const ServiceOptions& options);
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Serve one request. Never throws: every failure becomes a
  /// status="error" response with a coded message.
  Response handle(const Request& request);

  struct Stats {
    std::uint64_t requests = 0;
    std::uint64_t ok = 0;
    std::uint64_t errors = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
    std::uint64_t cache_evictions = 0;
    std::uint64_t cache_store_failures = 0;
    /// Full pass-pipeline executions (cache misses that ran
    /// core::optimize). requests - pipeline_runs = work the cache saved.
    std::uint64_t pipeline_runs = 0;
    std::uint64_t record_log_records = 0;
  };
  Stats stats() const;

  const CompileCache& cache() const { return cache_; }

  /// The canonical cache-key text for an optimize request (everything
  /// that determines the result body). Throws on an invalid request.
  std::string cache_key_text(const Request& request) const;

  /// Compute the deterministic result body for an optimize request,
  /// bypassing the cache -- the reference the stress test compares
  /// daemon responses against bit-for-bit. Throws bwc::Error on an
  /// invalid program/spec.
  static std::string compute_result_body(const Request& request);

  /// The canonical cache-key text for a tune request. Includes the
  /// sorted, deduped seed-spec population (`seed_specs`), because the
  /// seeds steer the search: the same request against a log that has
  /// since learned new pipelines is a different computation.
  static std::string tune_cache_key_text(
      const Request& request, const std::vector<std::string>& seed_specs);

  /// Compute the deterministic result body for a tune request with the
  /// given seed population (no timestamps, no wall clocks). The winning
  /// spec is also written to `*winner_spec` when non-null.
  static std::string compute_tune_result_body(
      const Request& request, const std::vector<std::string>& seed_specs,
      std::string* winner_spec);

  /// The seed population the next tune request would use: canonical
  /// pipeline-spec records from this service's record log, sorted and
  /// deduped (empty when logging is off).
  std::vector<std::string> tune_seed_specs() const;

  /// Record a response the daemon produced without reaching handle()
  /// (overloaded, timeout, frame/JSON errors), so the record log and
  /// the error counters still see it.
  void record_rejection(const std::string& status, const std::string& detail,
                        std::uint64_t request_bytes,
                        std::uint64_t response_bytes);

 private:
  Response handle_optimize(const Request& request);
  Response stats_response() const;
  void log_served(const Request& request, const Response& response,
                  const std::string& key_fp);

  ServiceOptions options_;
  CompileCache cache_;
  std::unique_ptr<RecordLogWriter> log_;
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> ok_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> pipeline_runs_{0};
};

}  // namespace bwc::server
