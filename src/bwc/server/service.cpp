#include "bwc/server/service.h"

#include <chrono>
#include <thread>
#include <utility>

#include "bwc/core/optimizer.h"
#include "bwc/ir/parser.h"
#include "bwc/ir/printer.h"
#include "bwc/machine/machine_model.h"
#include "bwc/model/measure.h"
#include "bwc/pass/pipeline_spec.h"
#include "bwc/support/error.h"
#include "bwc/tune/autotune.h"
#include "bwc/verify/traffic_bound.h"

#include <algorithm>
#include <cstdio>

namespace bwc::server {

namespace {

std::int64_t now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::uint64_t unix_micros() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

/// Canonical pipeline spec for a request: the explicit spec re-rendered
/// through the parser, or the default pipeline. Throws on a bad spec.
std::string canonical_pipeline(const Request& request) {
  if (request.pipeline.empty()) return core::default_pipeline();
  return pass::parse_pipeline_spec(request.pipeline).to_string();
}

machine::MachineModel make_machine(const Request& request) {
  machine::MachineModel m;
  if (request.machine == "o2k") {
    m = machine::origin2000_r10k();
  } else if (request.machine == "exemplar") {
    m = machine::exemplar_pa8000();
  } else {
    m = machine::generic_modern();
  }
  return m.scaled(request.scale).with_cores(request.cores);
}

model::ExecEngine make_engine(const Request& request) {
  if (request.engine == "reference") return model::ExecEngine::kReference;
  if (request.engine == "native") return model::ExecEngine::kNative;
  return model::ExecEngine::kCompiled;
}

JsonValue ir_stats_json(const pass::IrStats& s) {
  JsonValue o = JsonValue::object();
  o.set("loops", JsonValue::number(s.loops));
  o.set("statements", JsonValue::number(s.statements));
  o.set("arrays_referenced", JsonValue::number(s.arrays_referenced));
  o.set("referenced_bytes",
        JsonValue::number(static_cast<double>(s.referenced_bytes)));
  return o;
}

/// The deterministic subset of a PassReport: everything except wall
/// clocks and analysis-cache counters, which vary run to run and would
/// break the cold-vs-hit bit-identity contract.
JsonValue pass_report_json(const pass::PassReport& p) {
  JsonValue o = JsonValue::object();
  o.set("pass", JsonValue::string(p.pass));
  o.set("label", JsonValue::string(p.label));
  o.set("changed", JsonValue::boolean(p.changed));
  o.set("ir_before", ir_stats_json(p.ir_before));
  o.set("ir_after", ir_stats_json(p.ir_after));
  o.set("traffic_bound_before",
        JsonValue::number(static_cast<double>(p.traffic_bound_before)));
  o.set("traffic_bound_after",
        JsonValue::number(static_cast<double>(p.traffic_bound_after)));
  if (p.verify.ran) {
    JsonValue v = JsonValue::object();
    v.set("check", JsonValue::string(p.verify.check));
    v.set("skipped", JsonValue::boolean(p.verify.skipped));
    if (p.verify.skipped)
      v.set("skip_reason", JsonValue::string(p.verify.skip_reason));
    v.set("instances_checked",
          JsonValue::number(static_cast<double>(p.verify.instances_checked)));
    o.set("verify", std::move(v));
  }
  JsonValue remarks = JsonValue::array();
  for (const pass::Remark& r : p.remarks) {
    JsonValue m = JsonValue::object();
    m.set("kind", JsonValue::string(pass::remark_kind_name(r.kind)));
    m.set("code", JsonValue::string(r.code));
    m.set("message", JsonValue::string(r.message));
    m.set("severity",
          JsonValue::string(pass::remark_severity_name(r.severity)));
    if (!r.args.empty()) {
      // Pairs, not an object: remark args may repeat keys.
      JsonValue args = JsonValue::array();
      for (const auto& [k, v] : r.args) {
        JsonValue pair = JsonValue::array();
        pair.push_back(JsonValue::string(k));
        pair.push_back(JsonValue::string(v));
        args.push_back(std::move(pair));
      }
      m.set("args", std::move(args));
    }
    remarks.push_back(std::move(m));
  }
  o.set("remarks", std::move(remarks));
  return o;
}

JsonValue measurement_json(const model::Measurement& m) {
  JsonValue o = JsonValue::object();
  o.set("memory_bytes",
        JsonValue::number(static_cast<double>(m.profile.memory_bytes())));
  o.set("register_bytes",
        JsonValue::number(static_cast<double>(m.profile.register_bytes())));
  o.set("flops", JsonValue::number(static_cast<double>(m.profile.flops)));
  o.set("predicted_ms", JsonValue::number(m.time.total_s * 1e3));
  o.set("binding", JsonValue::string(m.time.binding_resource));
  o.set("checksum", JsonValue::number(m.exec.checksum));
  return o;
}

}  // namespace

Service::Service(const ServiceOptions& options)
    : options_(options),
      cache_(options.cache_dir),
      log_(std::make_unique<RecordLogWriter>(options.record_log_path)) {}

Service::~Service() = default;

std::string Service::cache_key_text(const Request& request) const {
  const ir::Program program = ir::parse_program(request.program);
  const std::string canonical_text = ir::to_string(program);
  const std::string spec = canonical_pipeline(request);
  std::string key = "bwcd-key-v" + std::to_string(kProtocolVersion) + "\n";
  key += "machine=" + request.machine + "\n";
  key += "cores=" + std::to_string(request.cores) + "\n";
  key += "scale=" + std::to_string(request.scale) + "\n";
  key += std::string("measure=") + (request.measure ? "1" : "0") + "\n";
  key += "pipeline=" + spec + "\n";
  key += "program:\n" + canonical_text;
  return key;
}

std::string Service::compute_result_body(const Request& request) {
  const ir::Program original = ir::parse_program(request.program);
  const std::string canonical_text = ir::to_string(original);
  const std::string spec = canonical_pipeline(request);

  core::OptimizerOptions opts;
  opts.passes = spec;
  opts.cores = request.cores;
  const core::OptimizeResult result = core::optimize(original, opts);

  JsonValue body = JsonValue::object();
  body.set("schema", JsonValue::string(kSchemaName));
  body.set("protocol_version", JsonValue::number(kProtocolVersion));
  body.set("program", JsonValue::string(canonical_text));
  body.set("pipeline", JsonValue::string(spec));
  body.set("optimized", JsonValue::string(ir::to_string(result.program)));

  JsonValue passes = JsonValue::array();
  std::int64_t bound_first = -1;
  std::int64_t bound_last = -1;
  for (const pass::PassReport& p : result.pipeline.passes) {
    if (bound_first < 0) bound_first = p.traffic_bound_before;
    if (p.traffic_bound_after >= 0) bound_last = p.traffic_bound_after;
    passes.push_back(pass_report_json(p));
  }
  body.set("passes", std::move(passes));
  JsonValue bound = JsonValue::object();
  bound.set("original_bytes",
            JsonValue::number(static_cast<double>(bound_first)));
  bound.set("optimized_bytes",
            JsonValue::number(static_cast<double>(bound_last)));
  body.set("traffic_bound", std::move(bound));

  if (request.measure) {
    const machine::MachineModel machine = make_machine(request);
    model::MeasureOptions measure_opts;
    measure_opts.engine = make_engine(request);
    const model::Measurement before =
        model::measure(original, machine, measure_opts);
    const model::Measurement after =
        model::measure(result.program, machine, measure_opts);
    JsonValue m = JsonValue::object();
    m.set("name", JsonValue::string(machine.name));
    m.set("cores", JsonValue::number(request.cores));
    m.set("scale", JsonValue::number(static_cast<double>(request.scale)));
    m.set("original", measurement_json(before));
    m.set("optimized", measurement_json(after));
    m.set("traffic_ratio",
          JsonValue::number(
              after.profile.memory_bytes() == 0
                  ? 0.0
                  : static_cast<double>(before.profile.memory_bytes()) /
                        static_cast<double>(after.profile.memory_bytes())));
    m.set("speedup", JsonValue::number(after.time.total_s == 0.0
                                           ? 0.0
                                           : before.time.total_s /
                                                 after.time.total_s));
    body.set("machine", std::move(m));
  }
  return body.render();
}

std::string Service::tune_cache_key_text(
    const Request& request, const std::vector<std::string>& seed_specs) {
  const ir::Program program = ir::parse_program(request.program);
  const std::string canonical_text = ir::to_string(program);
  std::string key = "bwcd-tune-key-v" + std::to_string(kProtocolVersion) + "\n";
  key += "machine=" + request.machine + "\n";
  key += "cores=" + std::to_string(request.cores) + "\n";
  key += "scale=" + std::to_string(request.scale) + "\n";
  key += "strategy=" + request.strategy + "\n";
  char gap[32];
  std::snprintf(gap, sizeof(gap), "%.6g", request.gap);
  key += std::string("gap=") + gap + "\n";
  key += "budget=" + std::to_string(tune::parse_budget(request.budget)) + "\n";
  key += "tune_seed=" + std::to_string(request.tune_seed) + "\n";
  // The seed population steers the search, so it is part of the key:
  // callers pass it sorted and deduped (tune_seed_specs), keeping the
  // key order-independent of log history.
  for (const std::string& spec : seed_specs) key += "seed-spec=" + spec + "\n";
  key += "program:\n" + canonical_text;
  return key;
}

std::string Service::compute_tune_result_body(
    const Request& request, const std::vector<std::string>& seed_specs,
    std::string* winner_spec) {
  const ir::Program original = ir::parse_program(request.program);
  const std::string canonical_text = ir::to_string(original);

  tune::TuneOptions topts;
  topts.strategy = tune::parse_strategy(request.strategy);
  topts.gap_percent = request.gap;
  topts.budget = tune::parse_budget(request.budget);
  topts.seed = request.tune_seed;
  topts.threads = request.cores;
  topts.seed_specs = seed_specs;
  topts.machine = make_machine(request);
  topts.engine = make_engine(request);
  const tune::TuneResult result = tune::tune(original, topts);
  if (winner_spec != nullptr) *winner_spec = result.winner_spec;

  JsonValue body = JsonValue::object();
  body.set("schema", JsonValue::string(kSchemaName));
  body.set("protocol_version", JsonValue::number(kProtocolVersion));
  body.set("program", JsonValue::string(canonical_text));
  body.set("strategy", JsonValue::string(request.strategy));
  body.set("budget", JsonValue::number(topts.budget));
  body.set("tune_seed",
           JsonValue::number(static_cast<double>(request.tune_seed)));

  JsonValue winner = JsonValue::object();
  winner.set("pipeline", JsonValue::string(result.winner_spec));
  winner.set("predicted_bytes",
             JsonValue::number(
                 static_cast<double>(result.winner_predicted_bytes)));
  winner.set("measured_bytes",
             JsonValue::number(
                 static_cast<double>(result.winner_measured_bytes)));
  body.set("winner", std::move(winner));

  JsonValue fallback = JsonValue::object();
  fallback.set("pipeline", JsonValue::string(result.default_spec));
  fallback.set("measured_bytes",
               JsonValue::number(
                   static_cast<double>(result.default_measured_bytes)));
  body.set("default", std::move(fallback));

  JsonValue cert = JsonValue::object();
  cert.set("within_gap", JsonValue::boolean(result.certificate.within_gap));
  cert.set("floor_bytes",
           JsonValue::number(
               static_cast<double>(result.certificate.floor_bytes)));
  cert.set("predicted_bytes",
           JsonValue::number(
               static_cast<double>(result.certificate.predicted_bytes)));
  cert.set("measured_bytes",
           JsonValue::number(
               static_cast<double>(result.certificate.measured_bytes)));
  cert.set("gap_percent", JsonValue::number(result.certificate.gap_percent));
  cert.set("tolerance_percent",
           JsonValue::number(result.certificate.tolerance_percent));
  body.set("certificate", std::move(cert));

  JsonValue floor = JsonValue::object();
  floor.set("floor_bytes",
            JsonValue::number(static_cast<double>(result.floor.floor_bytes)));
  JsonValue regions = JsonValue::array();
  for (const verify::FloorRegion& region : result.floor.arrays) {
    JsonValue r = JsonValue::object();
    r.set("array", JsonValue::string(region.name));
    r.set("floor_bytes",
          JsonValue::number(static_cast<double>(region.bytes)));
    regions.push_back(std::move(r));
  }
  floor.set("arrays", std::move(regions));
  body.set("floor", std::move(floor));

  body.set("evaluated", JsonValue::number(result.evaluated));
  body.set("infeasible", JsonValue::number(result.infeasible));
  body.set("early_stop", JsonValue::boolean(result.early_stop));

  JsonValue validated = JsonValue::array();
  for (const tune::Validated& v : result.validated) {
    JsonValue entry = JsonValue::object();
    entry.set("pipeline", JsonValue::string(v.spec));
    entry.set("predicted_bytes",
              JsonValue::number(static_cast<double>(v.predicted_bytes)));
    entry.set("measured_bytes",
              JsonValue::number(static_cast<double>(v.measured_bytes)));
    validated.push_back(std::move(entry));
  }
  body.set("validated", std::move(validated));

  JsonValue seeds = JsonValue::array();
  for (const std::string& spec : seed_specs)
    seeds.push_back(JsonValue::string(spec));
  body.set("seed_specs", std::move(seeds));

  // The winner's per-pass reports plus the synthetic tune record with
  // the certificate remark, same deterministic subset as optimize.
  JsonValue passes = JsonValue::array();
  for (const pass::PassReport& p : result.winner_pipeline.passes)
    passes.push_back(pass_report_json(p));
  passes.push_back(pass_report_json(result.report()));
  body.set("passes", std::move(passes));
  return body.render();
}

std::vector<std::string> Service::tune_seed_specs() const {
  if (options_.record_log_path.empty()) return {};
  std::vector<std::string> specs;
  try {
    specs = read_pipeline_specs(options_.record_log_path);
  } catch (const Error&) {
    return {};  // unreadable log: search simply starts unseeded
  }
  std::sort(specs.begin(), specs.end());
  specs.erase(std::unique(specs.begin(), specs.end()), specs.end());
  return specs;
}

Response Service::handle(const Request& request) {
  ++requests_;
  const std::int64_t t0 = now_us();
  Response response;
  std::string key_fp;
  switch (request.op) {
    case Request::Op::kPing: {
      response.result_json = "{\"pong\":true}";
      break;
    }
    case Request::Op::kStats: {
      response = stats_response();
      break;
    }
    case Request::Op::kOptimize: {
      if (options_.debug_delay_ms > 0) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(options_.debug_delay_ms));
      }
      try {
        const std::string key = cache_key_text(request);
        key_fp = CompileCache::fingerprint(key);
        CompileCache::Lookup lookup = cache_.get(key);
        if (lookup.hit) {
          response.cache_hit = true;
          response.result_json = std::move(lookup.value);
        } else {
          ++pipeline_runs_;
          response.result_json = compute_result_body(request);
          cache_.put(key, response.result_json);
          // Remember the pipeline that served: future tune ops seed
          // their search population from these records.
          log_->append_pipeline_spec(canonical_pipeline(request));
        }
      } catch (const std::exception& e) {
        response.status = "error";
        response.error = e.what();
        response.result_json.clear();
      }
      break;
    }
    case Request::Op::kTune: {
      try {
        const std::vector<std::string> seeds = tune_seed_specs();
        const std::string key = tune_cache_key_text(request, seeds);
        key_fp = CompileCache::fingerprint(key);
        CompileCache::Lookup lookup = cache_.get(key);
        if (lookup.hit) {
          response.cache_hit = true;
          response.result_json = std::move(lookup.value);
        } else {
          ++pipeline_runs_;
          std::string winner;
          response.result_json =
              compute_tune_result_body(request, seeds, &winner);
          cache_.put(key, response.result_json);
          log_->append_pipeline_spec(winner);
        }
      } catch (const std::exception& e) {
        response.status = "error";
        response.error = e.what();
        response.result_json.clear();
      }
      break;
    }
  }
  response.elapsed_us = now_us() - t0;
  if (response.status == "ok") {
    ++ok_;
  } else {
    ++errors_;
  }
  log_served(request, response, key_fp);
  return response;
}

Response Service::stats_response() const {
  const Stats s = stats();
  JsonValue o = JsonValue::object();
  o.set("requests", JsonValue::number(static_cast<double>(s.requests)));
  o.set("ok", JsonValue::number(static_cast<double>(s.ok)));
  o.set("errors", JsonValue::number(static_cast<double>(s.errors)));
  o.set("cache_hits", JsonValue::number(static_cast<double>(s.cache_hits)));
  o.set("cache_misses",
        JsonValue::number(static_cast<double>(s.cache_misses)));
  o.set("cache_evictions",
        JsonValue::number(static_cast<double>(s.cache_evictions)));
  o.set("cache_store_failures",
        JsonValue::number(static_cast<double>(s.cache_store_failures)));
  o.set("pipeline_runs",
        JsonValue::number(static_cast<double>(s.pipeline_runs)));
  o.set("record_log_records",
        JsonValue::number(static_cast<double>(s.record_log_records)));
  Response r;
  r.result_json = o.render();
  return r;
}

Service::Stats Service::stats() const {
  Stats s;
  s.requests = requests_.load();
  s.ok = ok_.load();
  s.errors = errors_.load();
  s.cache_hits = cache_.hits();
  s.cache_misses = cache_.misses();
  s.cache_evictions = cache_.evictions();
  s.cache_store_failures = cache_.store_failures();
  s.pipeline_runs = pipeline_runs_.load();
  s.record_log_records = log_->records_written();
  return s;
}

void Service::record_rejection(const std::string& status,
                               const std::string& detail,
                               std::uint64_t request_bytes,
                               std::uint64_t response_bytes) {
  ++requests_;
  ++errors_;
  ServedRecord rec;
  rec.unix_micros = unix_micros();
  rec.status = status == "overloaded"  ? kRecordOverloaded
               : status == "timeout"   ? kRecordTimeout
                                       : kRecordError;
  rec.request_bytes = request_bytes;
  rec.response_bytes = response_bytes;
  rec.detail = detail;
  log_->append(rec);
}

void Service::log_served(const Request& request, const Response& response,
                         const std::string& key_fp) {
  ServedRecord rec;
  rec.unix_micros = unix_micros();
  rec.status = response.status == "ok" ? kRecordOk : kRecordError;
  rec.cache_hit = response.cache_hit;
  rec.elapsed_us = static_cast<std::uint64_t>(response.elapsed_us);
  rec.request_bytes = request.program.size();
  rec.response_bytes = response.result_json.size();
  rec.key_fp = key_fp;
  rec.detail = response.status == "ok"
                   ? (request.op == Request::Op::kOptimize ? "optimize"
                      : request.op == Request::Op::kTune   ? "tune"
                      : request.op == Request::Op::kStats  ? "stats"
                                                           : "ping")
                   : response.error.substr(0, 200);
  log_->append(rec);
}

}  // namespace bwc::server
