#include "bwc/server/cache.h"

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>
#include <utility>

#include "bwc/support/prng.h"

namespace fs = std::filesystem;

namespace bwc::server {

namespace {

constexpr char kValueHeaderTag[] = "bwcd-cache-v1";

std::string read_file_or_empty(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Write-to-temp + atomic rename; false on any failure. The temp name
/// carries the pid so concurrent publishers on a shared directory never
/// collide on it.
bool write_file_atomic(const fs::path& path, const std::string& content) {
  const fs::path tmp = path.string() + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out << content;
    if (!out) {
      std::error_code ec;
      fs::remove(tmp, ec);
      return false;
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return false;
  }
  return true;
}

}  // namespace

CompileCache::CompileCache(std::string dir) : dir_(std::move(dir)) {}

std::string CompileCache::fingerprint(const std::string& text) {
  // Same construction as runtime::native_fingerprint: two independent
  // splitmix64 streams over the bytes, 128 bits hex.
  std::uint64_t s0 = 0x9e3779b97f4a7c15ULL ^ text.size();
  std::uint64_t s1 = 0xbf58476d1ce4e5b9ULL + text.size();
  std::uint64_t h0 = 0;
  std::uint64_t h1 = 0;
  for (unsigned char ch : text) {
    s0 ^= ch;
    h0 ^= splitmix64(s0);
    s1 ^= static_cast<std::uint64_t>(ch) << 8;
    h1 ^= splitmix64(s1);
  }
  char buf[33];
  std::snprintf(buf, sizeof buf, "%016llx%016llx",
                static_cast<unsigned long long>(h0),
                static_cast<unsigned long long>(h1));
  return buf;
}

CompileCache::Lookup CompileCache::get(const std::string& key_text) {
  Lookup result;
  if (!enabled()) {
    ++misses_;
    return result;
  }
  const std::string fp = fingerprint(key_text);
  const fs::path key_path = fs::path(dir_) / (fp + ".key");
  const fs::path val_path = fs::path(dir_) / (fp + ".val");
  const std::string stored_key = read_file_or_empty(key_path);
  const std::string stored_val = read_file_or_empty(val_path);

  const auto evict = [&] {
    std::error_code ec;
    fs::remove(key_path, ec);
    fs::remove(val_path, ec);
    ++evictions_;
    ++misses_;
  };

  if (stored_key.empty() && stored_val.empty()) {
    ++misses_;
    return result;
  }
  if (stored_key != key_text) {
    // Missing key file, torn publish, tampered key, or a fingerprint
    // collision: the content check decides, the pair goes.
    evict();
    return result;
  }
  // Value header: "bwcd-cache-v1 <value-fp>\n" + value.
  const std::size_t nl = stored_val.find('\n');
  if (nl == std::string::npos) {
    evict();
    return result;
  }
  const std::string header = stored_val.substr(0, nl);
  const std::string value = stored_val.substr(nl + 1);
  const std::string expect =
      std::string(kValueHeaderTag) + " " + fingerprint(value);
  if (header != expect) {
    evict();
    return result;
  }
  ++hits_;
  result.hit = true;
  result.value = value;
  return result;
}

void CompileCache::put(const std::string& key_text, const std::string& value) {
  if (!enabled()) return;
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    ++store_failures_;
    return;
  }
  const std::string fp = fingerprint(key_text);
  const fs::path key_path = fs::path(dir_) / (fp + ".key");
  const fs::path val_path = fs::path(dir_) / (fp + ".val");
  const std::string framed_val =
      std::string(kValueHeaderTag) + " " + fingerprint(value) + "\n" + value;
  // Value first, key last: the key file's presence-and-match is what
  // get() trusts, so a reader can never match a key whose value has not
  // been published yet.
  if (!write_file_atomic(val_path, framed_val) ||
      !write_file_atomic(key_path, key_text)) {
    ++store_failures_;
  }
}

}  // namespace bwc::server
