#include "bwc/server/daemon.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "bwc/runtime/thread_pool.h"
#include "bwc/server/frame.h"
#include "bwc/support/error.h"

namespace bwc::server {

namespace {

std::int64_t steady_now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

struct Daemon::Impl {
  explicit Impl(const DaemonOptions& opts)
      : options(opts), service(opts.service), pool(opts.threads) {}

  // -- One live connection ---------------------------------------------

  struct Conn {
    int fd = -1;
    std::mutex write_mutex;
    std::atomic<bool> dead{false};
    std::atomic<bool> reader_done{false};
    std::thread reader;

    /// The fd is closed here and only here: queued jobs hold shared_ptrs,
    /// so the descriptor number cannot be recycled to a new connection
    /// while a worker might still write to it. Reaping shuts the socket
    /// down (which makes those writes fail fast) but never closes it.
    ~Conn() {
      if (fd >= 0) ::close(fd);
    }

    /// Send one framed payload; partial writes are completed, failures
    /// mark the connection dead (the peer is gone -- nothing else to
    /// do, and nothing else is affected).
    void send_frame(const std::string& payload) {
      const std::string bytes = encode_frame(payload);
      std::lock_guard<std::mutex> lock(write_mutex);
      if (dead.load()) return;
      std::size_t off = 0;
      while (off < bytes.size()) {
        const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
                                 MSG_NOSIGNAL);
        if (n <= 0) {
          if (n < 0 && errno == EINTR) continue;
          dead.store(true);
          return;
        }
        off += static_cast<std::size_t>(n);
      }
    }
  };

  struct Job {
    std::shared_ptr<Conn> conn;
    Request request;
    std::int64_t deadline_us = 0;
  };

  // -- Plumbing ---------------------------------------------------------

  DaemonOptions options;
  Service service;
  runtime::ThreadPool pool;

  int listen_fd = -1;
  int wake_pipe[2] = {-1, -1};

  std::thread accept_thread;
  std::thread dispatch_thread;
  std::vector<std::shared_ptr<Conn>> conns;
  std::mutex conns_mutex;

  std::deque<Job> queue;
  std::mutex queue_mutex;
  std::condition_variable queue_cv;    // dispatcher waits for work
  std::condition_variable drained_cv;  // stop() waits for empty queue
  bool dispatch_busy = false;
  /// Set under queue_mutex by stop() BEFORE the drain wait: nothing can
  /// slip into the queue after the dispatcher retires, so no request is
  /// ever accepted and then silently dropped.
  bool queue_closed = false;

  std::atomic<bool> stopping{false};
  std::atomic<bool> dispatcher_exit{false};
  bool started = false;
  bool stopped = false;
  std::mutex lifecycle_mutex;

  std::atomic<std::uint64_t> connections_accepted{0};
  std::atomic<std::uint64_t> connections_rejected{0};
  std::atomic<std::uint64_t> frames{0};
  std::atomic<std::uint64_t> malformed_frames{0};
  std::atomic<std::uint64_t> truncated_frames{0};
  std::atomic<std::uint64_t> overloaded{0};
  std::atomic<std::uint64_t> timeouts{0};
  std::atomic<std::uint64_t> batches{0};
  std::atomic<std::uint64_t> batched_jobs{0};

  // -- Responses --------------------------------------------------------

  static void reply(const std::shared_ptr<Conn>& conn,
                    const Response& response) {
    conn->send_frame(render_response(response));
  }

  void reply_error(const std::shared_ptr<Conn>& conn,
                   const std::string& status, const std::string& message,
                   std::uint64_t request_bytes) {
    Response r;
    r.status = status;
    r.error = message;
    const std::string payload = render_response(r);
    service.record_rejection(status, message, request_bytes, payload.size());
    conn->send_frame(payload);
  }

  // -- Reader side ------------------------------------------------------

  /// One parsed frame. Returns false when the connection must close
  /// (the stream lost sync).
  bool handle_payload(const std::shared_ptr<Conn>& conn,
                      const std::string& payload) {
    ++frames;
    if (payload.empty()) return true;  // keep-alive frame, ignored
    Request request;
    try {
      request = parse_request(payload);
    } catch (const Error& e) {
      ++malformed_frames;
      reply_error(conn, "error", e.what(), payload.size());
      return true;  // frame boundary intact: connection stays
    }
    if (request.op != Request::Op::kOptimize) {
      reply(conn, service.handle(request));
      return true;
    }
    const std::int64_t timeout_ms = request.timeout_ms > 0
                                        ? request.timeout_ms
                                        : options.default_timeout_ms;
    Job job;
    job.conn = conn;
    job.request = std::move(request);
    job.deadline_us = steady_now_us() + timeout_ms * 1000;
    // Decide under the lock, reply outside it: sends are bounded but
    // can still take a while against a slow peer.
    enum class Verdict { kQueued, kClosed, kFull };
    Verdict verdict;
    {
      std::lock_guard<std::mutex> lock(queue_mutex);
      if (queue_closed) {
        verdict = Verdict::kClosed;
      } else if (static_cast<int>(queue.size()) >= options.queue_max) {
        verdict = Verdict::kFull;
      } else {
        queue.push_back(std::move(job));
        verdict = Verdict::kQueued;
      }
    }
    switch (verdict) {
      case Verdict::kQueued: queue_cv.notify_one(); break;
      case Verdict::kClosed:
        reply_error(conn, "error", "[shutting-down] daemon is draining",
                    payload.size());
        break;
      case Verdict::kFull:
        ++overloaded;
        reply_error(conn, "overloaded",
                    "[overloaded] job queue is full (" +
                        std::to_string(options.queue_max) +
                        " requests); retry with backoff",
                    payload.size());
        break;
    }
    return true;
  }

  void reader_loop(const std::shared_ptr<Conn>& conn) {
    FrameReader reader;
    char buf[16384];
    while (!conn->dead.load()) {
      struct pollfd pfd = {conn->fd, POLLIN, 0};
      const int pr = ::poll(&pfd, 1, 100);
      if (stopping.load() && pr <= 0) break;
      if (pr < 0) {
        if (errno == EINTR) continue;
        break;
      }
      if (pr == 0) continue;
      const ssize_t n = ::recv(conn->fd, buf, sizeof buf, 0);
      if (n == 0) {
        if (reader.pending_bytes() > 0) ++truncated_frames;
        break;
      }
      if (n < 0) {
        if (errno == EINTR) continue;
        break;
      }
      reader.feed(buf, static_cast<std::size_t>(n));
      std::string payload;
      bool close_conn = false;
      for (;;) {
        const FrameStatus status = reader.next(&payload);
        if (status == FrameStatus::kNeedMore) break;
        if (status == FrameStatus::kOversized) {
          ++malformed_frames;
          reply_error(conn, "error",
                      "[frame-too-large] length prefix exceeds " +
                          std::to_string(kMaxFrameBytes) +
                          " bytes; closing unsynchronized connection",
                      0);
          close_conn = true;
          break;
        }
        if (!handle_payload(conn, payload)) {
          close_conn = true;
          break;
        }
      }
      if (close_conn) break;
    }
    conn->reader_done.store(true);
  }

  // -- Accept side ------------------------------------------------------

  void accept_loop() {
    while (!stopping.load()) {
      struct pollfd pfds[2] = {{listen_fd, POLLIN, 0},
                               {wake_pipe[0], POLLIN, 0}};
      const int pr = ::poll(pfds, 2, 500);
      if (pr < 0) {
        if (errno == EINTR) continue;
        break;
      }
      if ((pfds[1].revents & POLLIN) != 0) break;  // stop() woke us
      if ((pfds[0].revents & POLLIN) == 0) {
        reap_finished_conns();
        continue;
      }
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) continue;
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      // Bounded sends: a stuck peer makes writes fail instead of
      // wedging a worker (and, transitively, the drain) forever.
      struct timeval snd_timeout = {10, 0};
      ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &snd_timeout,
                   sizeof snd_timeout);

      auto conn = std::make_shared<Conn>();
      conn->fd = fd;
      {
        std::lock_guard<std::mutex> lock(conns_mutex);
        reap_finished_conns_locked();
        if (static_cast<int>(conns.size()) >= options.max_connections) {
          ++connections_rejected;
          Response r;
          r.status = "overloaded";
          r.error = "[overloaded] connection limit reached";
          conn->send_frame(render_response(r));
          ::close(fd);
          continue;
        }
        ++connections_accepted;
        conn->reader = std::thread([this, conn] { reader_loop(conn); });
        conns.push_back(conn);
      }
    }
  }

  void reap_finished_conns() {
    std::lock_guard<std::mutex> lock(conns_mutex);
    reap_finished_conns_locked();
  }

  void reap_finished_conns_locked() {
    for (auto it = conns.begin(); it != conns.end();) {
      if ((*it)->reader_done.load()) {
        (*it)->reader.join();
        ::shutdown((*it)->fd, SHUT_RDWR);
        it = conns.erase(it);  // ~Conn closes the fd at last reference
      } else {
        ++it;
      }
    }
  }

  // -- Dispatch side ----------------------------------------------------

  void dispatch_loop() {
    std::vector<Job> batch;
    while (true) {
      batch.clear();
      {
        std::unique_lock<std::mutex> lock(queue_mutex);
        queue_cv.wait(lock, [this] {
          return !queue.empty() || dispatcher_exit.load();
        });
        if (queue.empty() && dispatcher_exit.load()) return;
        const int take = std::min<int>(options.batch_max,
                                       static_cast<int>(queue.size()));
        for (int i = 0; i < take; ++i) {
          batch.push_back(std::move(queue.front()));
          queue.pop_front();
        }
        dispatch_busy = true;
      }
      ++batches;
      batched_jobs += batch.size();
      pool.parallel_for(batch.size(), [&](std::size_t i) { run_job(batch[i]); });
      {
        std::lock_guard<std::mutex> lock(queue_mutex);
        dispatch_busy = false;
      }
      drained_cv.notify_all();
    }
  }

  void run_job(Job& job) {
    if (steady_now_us() > job.deadline_us) {
      ++timeouts;
      reply_error(job.conn, "timeout",
                  "[timeout] request exceeded its queue-wait deadline",
                  job.request.program.size());
      return;
    }
    reply(job.conn, service.handle(job.request));
  }

  // -- Lifecycle --------------------------------------------------------

  void start(int* bound_port) {
    listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd < 0) throw Error("[bind-failed] cannot create socket");
    const int one = 1;
    ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof addr);
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(options.port));
    if (::bind(listen_fd, reinterpret_cast<struct sockaddr*>(&addr),
               sizeof addr) != 0) {
      ::close(listen_fd);
      listen_fd = -1;
      throw Error("[bind-failed] cannot bind 127.0.0.1:" +
                  std::to_string(options.port) + ": " + std::strerror(errno));
    }
    if (::listen(listen_fd, 128) != 0) {
      ::close(listen_fd);
      listen_fd = -1;
      throw Error("[bind-failed] listen failed");
    }
    socklen_t len = sizeof addr;
    ::getsockname(listen_fd, reinterpret_cast<struct sockaddr*>(&addr), &len);
    *bound_port = ntohs(addr.sin_port);
    if (::pipe(wake_pipe) != 0) {
      ::close(listen_fd);
      listen_fd = -1;
      throw Error("[bind-failed] cannot create wake pipe");
    }
    accept_thread = std::thread([this] { accept_loop(); });
    dispatch_thread = std::thread([this] { dispatch_loop(); });
  }

  void stop() {
    stopping.store(true);
    // Close the queue first (under its mutex): any reader that was
    // mid-enqueue either made it in -- and will be drained -- or will
    // see queue_closed and answer "[shutting-down]". Nothing can be
    // accepted and then dropped.
    {
      std::lock_guard<std::mutex> lock(queue_mutex);
      queue_closed = true;
    }
    // Wake and retire the accept thread: no new connections.
    if (wake_pipe[1] >= 0) {
      const char b = 1;
      [[maybe_unused]] const ssize_t n = ::write(wake_pipe[1], &b, 1);
    }
    if (accept_thread.joinable()) accept_thread.join();

    // Drain: everything already queued is completed and answered.
    {
      std::unique_lock<std::mutex> lock(queue_mutex);
      drained_cv.wait(lock,
                      [this] { return queue.empty() && !dispatch_busy; });
    }
    dispatcher_exit.store(true);
    queue_cv.notify_all();
    if (dispatch_thread.joinable()) dispatch_thread.join();

    // Readers: shutdown wakes any blocked poll/recv with EOF; fds close
    // when the last shared_ptr (possibly a late job reply) drops.
    {
      std::lock_guard<std::mutex> lock(conns_mutex);
      for (auto& conn : conns) ::shutdown(conn->fd, SHUT_RDWR);
      for (auto& conn : conns) {
        if (conn->reader.joinable()) conn->reader.join();
      }
      conns.clear();
    }
    if (listen_fd >= 0) ::close(listen_fd);
    listen_fd = -1;
    for (int& fd : wake_pipe) {
      if (fd >= 0) ::close(fd);
      fd = -1;
    }
  }
};

Daemon::Daemon(const DaemonOptions& options)
    : impl_(std::make_unique<Impl>(options)) {
  BWC_CHECK(options.threads >= 1, "daemon needs at least one worker thread");
  BWC_CHECK(options.queue_max >= 1, "queue_max must be at least 1");
  BWC_CHECK(options.batch_max >= 1, "batch_max must be at least 1");
}

Daemon::~Daemon() { stop(); }

void Daemon::start() {
  std::lock_guard<std::mutex> lock(impl_->lifecycle_mutex);
  BWC_CHECK(!impl_->started, "daemon already started");
  impl_->start(&port_);
  impl_->started = true;
}

void Daemon::stop() {
  std::lock_guard<std::mutex> lock(impl_->lifecycle_mutex);
  if (!impl_->started || impl_->stopped) return;
  impl_->stop();
  impl_->stopped = true;
}

const Service& Daemon::service() const { return impl_->service; }
Service& Daemon::service() { return impl_->service; }

Daemon::Counters Daemon::counters() const {
  Counters c;
  c.connections_accepted = impl_->connections_accepted.load();
  c.connections_rejected = impl_->connections_rejected.load();
  c.frames = impl_->frames.load();
  c.malformed_frames = impl_->malformed_frames.load();
  c.truncated_frames = impl_->truncated_frames.load();
  c.overloaded = impl_->overloaded.load();
  c.timeouts = impl_->timeouts.load();
  c.batches = impl_->batches.load();
  c.batched_jobs = impl_->batched_jobs.load();
  return c;
}

}  // namespace bwc::server
