#include "bwc/tune/search_space.h"

#include <utility>

#include "bwc/pass/pipeline_spec.h"

namespace bwc::tune {

namespace {

using pass::parse_pipeline_spec;
using pass::PassSpec;
using pass::PipelineSpec;

std::vector<PassSpec> parse_genes() {
  // Every registered transform pass; fuse's solver choices and the
  // shifted-fusion knob are separate genes so the search can trade them
  // off like any other pipeline edit. "lint" is diagnostics-only and
  // deliberately absent.
  static const char* const kGenes[] = {
      "interchange",
      "fuse(solver=best)",
      "fuse(solver=exact)",
      "fuse(solver=greedy)",
      "fuse(solver=bisection)",
      "fuse(solver=edge-weighted)",
      "fuse(solver=best,shift=1)",
      "fuse(solver=best,shift=1,max-shift=4)",
      "reduce-storage",
      "eliminate-stores",
      "scalar-replace",
      "regroup",
      "distribute",
      "transpose-layout",
      "regroup-arrays",
      "pad-arrays",
  };
  std::vector<PassSpec> genes;
  for (const char* g : kGenes)
    genes.push_back(parse_pipeline_spec(g).passes.front());
  return genes;
}

const std::vector<PassSpec>& genes() {
  static const std::vector<PassSpec> kPool = parse_genes();
  return kPool;
}

std::string render(const std::vector<PassSpec>& passes) {
  PipelineSpec spec;
  spec.passes = passes;
  return spec.to_string();
}

}  // namespace

const std::vector<std::string>& gene_pool() {
  static const std::vector<std::string> kPool = [] {
    std::vector<std::string> pool;
    for (const PassSpec& g : genes()) pool.push_back(g.to_string());
    return pool;
  }();
  return kPool;
}

std::string canonical_spec(const std::string& spec) {
  return parse_pipeline_spec(spec).to_string();
}

std::string mutate_spec(const std::string& spec, Prng& rng) {
  std::vector<PassSpec> passes = parse_pipeline_spec(spec).passes;
  const std::size_t n = passes.size();
  // Pick among the moves applicable at this length. Insert and replace
  // are always offered (replace on an empty pipeline degrades to insert)
  // so the empty candidate can still move.
  enum Move { kInsert, kRemove, kSwap, kReplace };
  std::vector<Move> moves = {kInsert, kReplace};
  if (n >= 1) moves.push_back(kRemove);
  if (n >= 2) moves.push_back(kSwap);
  switch (moves[rng.uniform(moves.size())]) {
    case kInsert: {
      if (n >= static_cast<std::size_t>(kMaxPasses)) break;
      const PassSpec& gene = genes()[rng.uniform(genes().size())];
      passes.insert(passes.begin() + rng.uniform(n + 1), gene);
      break;
    }
    case kRemove: {
      passes.erase(passes.begin() + rng.uniform(n));
      break;
    }
    case kSwap: {
      const std::size_t i = rng.uniform(n);
      std::size_t j = rng.uniform(n - 1);
      if (j >= i) ++j;  // distinct positions
      std::swap(passes[i], passes[j]);
      break;
    }
    case kReplace: {
      const PassSpec& gene = genes()[rng.uniform(genes().size())];
      if (n == 0) {
        passes.push_back(gene);
      } else {
        passes[rng.uniform(n)] = gene;
      }
      break;
    }
  }
  return render(passes);
}

std::string crossover_specs(const std::string& a, const std::string& b,
                            Prng& rng) {
  const std::vector<PassSpec> pa = parse_pipeline_spec(a).passes;
  const std::vector<PassSpec> pb = parse_pipeline_spec(b).passes;
  const std::size_t cut_a = rng.uniform(pa.size() + 1);
  const std::size_t cut_b = rng.uniform(pb.size() + 1);
  std::vector<PassSpec> child(pa.begin(), pa.begin() + cut_a);
  child.insert(child.end(), pb.begin() + cut_b, pb.end());
  if (child.size() > static_cast<std::size_t>(kMaxPasses))
    child.resize(kMaxPasses);
  return render(child);
}

}  // namespace bwc::tune
