// The autotuner's search space: pipelines as genomes.
//
// A candidate is just a PipelineSpec string ("interchange,fuse(solver=
// exact),reduce-storage"), so the genome is already parseable, printable
// and checkable by the existing pass machinery. The space is spanned by a
// fixed gene pool (every registered transform pass, with the fusion
// solver/shift parameter combinations enumerated as distinct genes) under
// four edit moves -- insert, remove, swap, replace -- plus a splice
// crossover for the genetic strategy. All randomness is drawn from a
// caller-owned bwc::Prng so searches replay exactly from a seed.
#pragma once

#include <string>
#include <vector>

#include "bwc/support/prng.h"

namespace bwc::tune {

/// Hard cap on candidate pipeline length. The seven registered passes
/// rarely pay off twice; capping keeps the space finite and the scoring
/// cost bounded.
inline constexpr int kMaxPasses = 8;

/// The pass-spec genes the search composes: each registered transform
/// pass, with fuse's solver/shift knobs expanded into distinct entries.
const std::vector<std::string>& gene_pool();

/// Canonical form of a spec string: parse + re-render (trims whitespace,
/// folds "name()" to "name"). Throws bwc::Error on malformed input.
std::string canonical_spec(const std::string& spec);

/// One random edit: insert a gene, remove a pass, swap two positions, or
/// replace a pass with a gene. Always returns a grammatical spec; may
/// return the input unchanged only for the empty pipeline's no-op edits.
std::string mutate_spec(const std::string& spec, Prng& rng);

/// Splice crossover: a random prefix of `a` followed by a random suffix
/// of `b`, truncated to kMaxPasses.
std::string crossover_specs(const std::string& a, const std::string& b,
                            Prng& rng);

}  // namespace bwc::tune
