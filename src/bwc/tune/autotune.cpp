#include "bwc/tune/autotune.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <tuple>
#include <utility>

#include "bwc/analysis/access_summary.h"
#include "bwc/core/optimizer.h"
#include "bwc/pass/pipeline_spec.h"
#include "bwc/runtime/thread_pool.h"
#include "bwc/support/error.h"
#include "bwc/support/prng.h"
#include "bwc/tune/search_space.h"

namespace bwc::tune {

namespace {

/// Candidates scored per generation. Fixed (never derived from the
/// thread count) so the search visits the identical candidate sequence
/// at any pool width.
constexpr int kGenerationSize = 8;
/// Beam width / genetic parent-pool size.
constexpr int kSelectWidth = 6;
/// Give up growing a generation after this many duplicate draws.
constexpr int kMaxDraws = 200;
/// Prefix-state cache entries kept (speed only; never affects results).
constexpr std::size_t kPrefixCacheCap = 256;

struct Scored {
  std::string spec;
  std::int64_t predicted = -1;
  /// Static stride penalty of the optimized program (see stride_penalty):
  /// breaks ties between candidates the distinct-byte bound cannot
  /// separate (the bound is schedule-blind, so a transposed traversal
  /// scores the same bytes as a stride-1 one).
  std::int64_t stride = 0;
  bool feasible = false;
  int npasses = 0;
};

/// Iterations spent on references whose stride-1 subscript is driven by
/// an outer loop variable instead of the innermost one: each such
/// reference jumps a whole column per inner step and will fetch one line
/// per element once the column set outgrows the cache. Zero for a fully
/// stride-1 schedule. Layout-aware: the stride-1 subscript is the one the
/// array's declared layout stores fastest (storage_dim(0)), so a
/// transpose-layout gene can clear the penalty without rescheduling.
/// A cheap static proxy for the traffic the distinct-byte bound cannot
/// see.
std::int64_t stride_penalty(const ir::Program& program) {
  std::int64_t penalty = 0;
  for (const int idx : program.top_loop_indices()) {
    const analysis::LoopSummary s = analysis::summarize_loop(program, idx);
    if (s.depth() < 2) continue;
    const std::string& inner = s.loop_vars.back();
    const std::int64_t weight = std::max<std::int64_t>(1, s.trip_count());
    for (const auto& [array, access] : s.arrays) {
      const auto fastest =
          static_cast<std::size_t>(program.array(array).storage_dim(0));
      const auto tally = [&](const std::vector<std::vector<ir::Affine>>& refs) {
        for (const auto& ref : refs) {
          if (fastest >= ref.size() || ref[fastest].uses(inner)) continue;
          for (const std::string& outer : s.loop_vars) {
            if (outer != inner && ref[fastest].uses(outer)) {
              penalty += weight;
              break;
            }
          }
        }
      };
      tally(access.reads);
      tally(access.writes);
    }
  }
  return penalty;
}

/// Deterministic preference order: feasible first, then smaller
/// predicted traffic, then smaller stride penalty, then shorter
/// pipelines, then lexicographic.
bool better(const Scored& a, const Scored& b) {
  return std::make_tuple(!a.feasible, a.predicted, a.stride, a.npasses,
                         a.spec) <
         std::make_tuple(!b.feasible, b.predicted, b.stride, b.npasses,
                         b.spec);
}

std::string render_prefix(const std::vector<pass::PassSpec>& passes,
                          std::size_t count) {
  pass::PipelineSpec prefix;
  prefix.passes.assign(passes.begin(), passes.begin() + count);
  return prefix.to_string();
}

/// Scores candidates: runs the spec through core::optimize (verification
/// on -- illegal pipelines throw and are scored infeasible) and takes the
/// static traffic bound of the result. Thread-safe. Programs reached by
/// already-verified pipeline prefixes are cached so candidates sharing a
/// prefix skip re-running (and re-verifying) it; the cache only changes
/// speed, never scores, because every pass is a deterministic function of
/// its input program.
class Evaluator {
 public:
  explicit Evaluator(const ir::Program& program) : program_(program) {}

  Scored score(const std::string& spec) const {
    Scored s;
    s.spec = spec;
    try {
      const std::vector<pass::PassSpec> passes =
          pass::parse_pipeline_spec(spec).passes;
      s.npasses = static_cast<int>(passes.size());
      std::shared_ptr<const ir::Program> base;
      std::size_t start = 0;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        for (std::size_t k = passes.size(); k >= 1; --k) {
          const auto it = cache_.find(render_prefix(passes, k));
          if (it != cache_.end()) {
            base = it->second;
            start = k;
            break;
          }
        }
      }
      const ir::Program& source = base ? *base : program_;
      if (start == passes.size()) {
        s.predicted = verify::compute_traffic_bound(source).lower_bound_bytes;
        s.stride = stride_penalty(source);
        s.feasible = true;
        return s;
      }
      core::OptimizerOptions opts;
      opts.passes = render_suffix(passes, start);
      std::size_t done = start;
      opts.print_after = [&](const pass::Pass&, const ir::Program& after) {
        ++done;
        remember(render_prefix(passes, done), after);
      };
      const core::OptimizeResult result = core::optimize(source, opts);
      s.predicted =
          verify::compute_traffic_bound(result.program).lower_bound_bytes;
      s.stride = stride_penalty(result.program);
      s.feasible = true;
    } catch (const Error&) {
      // Rejected by the verifier / legality provers, or an unbuildable
      // spec: infeasible, never a winner.
      s.predicted = -1;
      s.feasible = false;
    }
    return s;
  }

 private:
  static std::string render_suffix(const std::vector<pass::PassSpec>& passes,
                                   std::size_t start) {
    pass::PipelineSpec suffix;
    suffix.passes.assign(passes.begin() + start, passes.end());
    return suffix.to_string();
  }

  void remember(const std::string& key, const ir::Program& state) const {
    std::lock_guard<std::mutex> lock(mutex_);
    if (cache_.size() >= kPrefixCacheCap) return;
    if (cache_.count(key)) return;
    cache_.emplace(key, std::make_shared<ir::Program>(state.clone()));
  }

  const ir::Program& program_;
  mutable std::mutex mutex_;
  mutable std::map<std::string, std::shared_ptr<const ir::Program>> cache_;
};

std::string format_percent(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", value);
  return buf;
}

}  // namespace

const char* strategy_name(Strategy strategy) {
  return strategy == Strategy::kBeam ? "beam" : "genetic";
}

Strategy parse_strategy(const std::string& name) {
  if (name == "beam") return Strategy::kBeam;
  if (name == "genetic") return Strategy::kGenetic;
  throw Error("unknown tune strategy: " + name + " (want beam or genetic)");
}

int parse_budget(const std::string& text) {
  if (text == "small") return 16;
  if (text == "medium") return 48;
  if (text == "large") return 128;
  int value = 0;
  std::size_t pos = 0;
  try {
    value = std::stoi(text, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos != text.size() || value <= 0)
    throw Error("bad tune budget: " + text +
                " (want small, medium, large or a positive integer)");
  return value;
}

TuneResult tune(const ir::Program& program, const TuneOptions& options) {
  if (options.budget < 1) throw Error("tune budget must be at least 1");
  if (options.gap_percent < 0)
    throw Error("tune gap tolerance must be non-negative");
  const int threads = std::max(1, options.threads);
  const int top_k = std::max(1, options.validate_top_k);

  TuneResult out;
  out.floor = verify::compute_data_floor(program);
  out.default_spec = canonical_spec(core::default_pipeline());
  out.certificate.floor_bytes = out.floor.floor_bytes;
  out.certificate.tolerance_percent = options.gap_percent;
  const double within =
      static_cast<double>(out.floor.floor_bytes) *
      (1.0 + options.gap_percent / 100.0);

  Prng rng(options.seed);
  Evaluator evaluator(program);
  runtime::ThreadPool pool(threads);

  std::set<std::string> seen;
  std::vector<std::string> batch;
  const auto push = [&](const std::string& raw) {
    std::string spec;
    try {
      spec = canonical_spec(raw);
    } catch (const Error&) {
      return;  // malformed seed entry; ignore
    }
    if (pass::parse_pipeline_spec(spec).passes.size() >
        static_cast<std::size_t>(kMaxPasses))
      return;
    if (seen.insert(spec).second) batch.push_back(spec);
  };

  // Starting population: the do-nothing pipeline, the default pipeline,
  // and any caller-provided seeds (sorted + deduped so the population is
  // independent of the seeds' arrival order).
  push("");
  push(out.default_spec);
  std::vector<std::string> seeds = options.seed_specs;
  std::sort(seeds.begin(), seeds.end());
  seeds.erase(std::unique(seeds.begin(), seeds.end()), seeds.end());
  for (const std::string& s : seeds) push(s);

  std::vector<Scored> all;
  while (true) {
    if (static_cast<int>(batch.size()) > options.budget - out.evaluated)
      batch.resize(options.budget - out.evaluated);
    if (batch.empty()) break;

    // Parallel scoring: pure, written by index, joined before any
    // search decision -- bit-identical at every pool width.
    std::vector<Scored> scored(batch.size());
    pool.parallel_for(batch.size(), [&](std::size_t i) {
      scored[i] = evaluator.score(batch[i]);
    });
    for (Scored& s : scored) {
      out.evaluated += 1;
      if (!s.feasible) out.infeasible += 1;
      all.push_back(std::move(s));
    }
    std::sort(all.begin(), all.end(), better);

    // Early stop only when the leader is also stride-clean: a within-gap
    // *bound* with a transposed traversal still measures far off the
    // floor, so stopping there would certify nothing.
    if (out.floor.floor_bytes > 0 && all.front().feasible &&
        all.front().stride == 0 &&
        static_cast<double>(all.front().predicted) <= within) {
      out.early_stop = true;
      break;
    }
    if (out.evaluated >= options.budget) break;

    // Next generation, decided serially on the main thread.
    batch.clear();
    std::vector<const Scored*> parents;
    for (const Scored& s : all) {
      if (!s.feasible) break;  // sorted: infeasible sink to the back
      parents.push_back(&s);
      if (static_cast<int>(parents.size()) >= kSelectWidth) break;
    }
    int draws = 0;
    while (static_cast<int>(batch.size()) < kGenerationSize &&
           draws < kMaxDraws) {
      ++draws;
      if (parents.empty()) {
        push(mutate_spec("", rng));
        continue;
      }
      const std::string& a = parents[rng.uniform(parents.size())]->spec;
      if (options.strategy == Strategy::kGenetic && parents.size() >= 2) {
        const std::string& b = parents[rng.uniform(parents.size())]->spec;
        std::string child = crossover_specs(a, b, rng);
        if (rng.uniform(2) == 0) child = mutate_spec(child, rng);
        push(child);
      } else {
        push(mutate_spec(a, rng));
      }
    }
    if (batch.empty()) break;  // space around the beam is exhausted
  }

  // Memsim validation of the survivors, serially on the main thread.
  // The default pipeline is always validated, so the winner can never
  // measure worse than the default.
  std::vector<std::string> finalists;
  finalists.push_back(out.default_spec);
  for (const Scored& s : all) {
    if (!s.feasible) break;
    if (s.spec == out.default_spec) continue;
    finalists.push_back(s.spec);
    if (static_cast<int>(finalists.size()) > top_k) break;
  }

  std::map<std::string, std::int64_t> predicted;
  for (const Scored& s : all)
    if (s.feasible) predicted[s.spec] = s.predicted;

  model::MeasureOptions measure_opts;
  measure_opts.engine = options.engine;
  struct Finalist {
    Validated v;
    pass::PipelineReport pipeline;
  };
  std::vector<Finalist> measured;
  for (const std::string& spec : finalists) {
    try {
      Finalist f;
      f.v.spec = spec;
      if (spec.empty()) {
        f.v.measured_bytes = static_cast<std::int64_t>(
            model::measure(program, options.machine, measure_opts)
                .profile.memory_bytes());
      } else {
        core::OptimizerOptions opts;
        opts.passes = spec;
        core::OptimizeResult result = core::optimize(program, opts);
        f.v.measured_bytes = static_cast<std::int64_t>(
            model::measure(result.program, options.machine, measure_opts)
                .profile.memory_bytes());
        f.pipeline = std::move(result.pipeline);
      }
      const auto it = predicted.find(spec);
      f.v.predicted_bytes =
          it != predicted.end()
              ? it->second
              : verify::compute_traffic_bound(program).lower_bound_bytes;
      measured.push_back(std::move(f));
    } catch (const Error&) {
      if (spec == out.default_spec) throw;  // baseline must measure
    }
  }
  if (measured.empty())
    throw Error("autotune: no candidate survived memsim validation");

  std::size_t win = 0;
  for (std::size_t i = 1; i < measured.size(); ++i) {
    const Validated& a = measured[i].v;
    const Validated& w = measured[win].v;
    const auto key = [](const Validated& v) {
      return std::make_tuple(
          v.measured_bytes, v.predicted_bytes,
          std::count(v.spec.begin(), v.spec.end(), ',') +
              (v.spec.empty() ? 0 : 1),
          v.spec);
    };
    if (key(a) < key(w)) win = i;
  }

  for (const Finalist& f : measured) out.validated.push_back(f.v);
  out.winner_spec = measured[win].v.spec;
  out.winner_predicted_bytes = measured[win].v.predicted_bytes;
  out.winner_measured_bytes = measured[win].v.measured_bytes;
  out.winner_pipeline = std::move(measured[win].pipeline);
  for (const Finalist& f : measured) {
    if (f.v.spec == out.default_spec) {
      out.default_measured_bytes = f.v.measured_bytes;
      break;
    }
  }

  Certificate& cert = out.certificate;
  cert.predicted_bytes = out.winner_predicted_bytes;
  cert.measured_bytes = out.winner_measured_bytes;
  if (cert.floor_bytes > 0) {
    cert.gap_percent =
        100.0 *
        static_cast<double>(cert.measured_bytes - cert.floor_bytes) /
        static_cast<double>(cert.floor_bytes);
    cert.within_gap =
        static_cast<double>(cert.measured_bytes) <= within;
  }
  return out;
}

pass::PassReport TuneResult::report() const {
  pass::PassReport r;
  r.pass = "tune";
  r.label = "autotune";
  r.changed = winner_measured_bytes < default_measured_bytes;

  const std::string shown_winner =
      winner_spec.empty() ? "<none>" : winner_spec;
  r.applied(
      "tune-winner",
      "autotune: winner \"" + shown_winner + "\" measured " +
          std::to_string(winner_measured_bytes) + " bytes (default " +
          std::to_string(default_measured_bytes) + ")",
      {{"winner", shown_winner},
       {"winner_predicted_bytes", std::to_string(winner_predicted_bytes)},
       {"winner_measured_bytes", std::to_string(winner_measured_bytes)},
       {"default_measured_bytes", std::to_string(default_measured_bytes)},
       {"evaluated", std::to_string(evaluated)},
       {"infeasible", std::to_string(infeasible)},
       {"early_stop", early_stop ? "true" : "false"}});

  std::vector<std::pair<std::string, std::string>> cert_args = {
      {"floor_bytes", std::to_string(certificate.floor_bytes)},
      {"predicted_bytes", std::to_string(certificate.predicted_bytes)},
      {"measured_bytes", std::to_string(certificate.measured_bytes)},
      {"gap_percent", format_percent(certificate.gap_percent)},
      {"tolerance_percent", format_percent(certificate.tolerance_percent)},
  };
  if (certificate.within_gap) {
    r.applied("tune-certificate",
              "autotune: optimality certificate -- measured " +
                  std::to_string(certificate.measured_bytes) +
                  " bytes is within " +
                  format_percent(certificate.tolerance_percent) +
                  "% of the " + std::to_string(certificate.floor_bytes) +
                  "-byte data-movement floor",
              cert_args);
  } else {
    r.missed("tune-no-certificate",
             "autotune: no certificate -- measured " +
                 std::to_string(certificate.measured_bytes) +
                 " bytes vs the " +
                 std::to_string(certificate.floor_bytes) +
                 "-byte floor (gap " +
                 format_percent(certificate.gap_percent) + "%)",
             cert_args);
  }

  std::vector<std::pair<std::string, std::string>> floor_args;
  for (const verify::FloorRegion& region : floor.arrays) {
    floor_args.emplace_back("array." + region.name + ".floor_bytes",
                            std::to_string(region.bytes));
  }
  r.note("tune-floor-breakdown",
         "data-movement floor by array (" +
             std::to_string(floor.floor_bytes) + " bytes total)",
         std::move(floor_args));
  return r;
}

}  // namespace bwc::tune
