// Parallel pipeline autotuner with lower-bound optimality certificates.
//
// The search treats pipelines as data (pass::PipelineSpec strings are the
// genome, tune/search_space.h spans the space) and optimizes the static
// traffic bound: score(spec) = verify::compute_traffic_bound applied to
// the program after running `spec` through core::optimize with full
// verification on, so an illegal candidate is rejected by the independent
// verifier (bwc::Error) and scored infeasible -- search can never ship an
// illegal pipeline. Scoring is embarrassingly parallel and runs on a
// runtime::ThreadPool; all mutation/selection decisions happen on the
// main thread at generation boundaries from a seeded bwc::Prng, so a
// fixed seed replays the identical search whatever the thread count.
//
// The searched objective is the *static bound* (cheap, no replay); the
// top-k survivors plus the default core::optimize pipeline are then
// validated in memsim and the winner is the candidate with the smallest
// MEASURED memory<->L2 traffic. Because the default pipeline is always in
// the validated set, the winner is never worse than the default.
//
// Certificates: verify::compute_data_floor(P) is a scheduling-independent
// data-movement floor -- bytes any equivalent program must move. The
// search stops early once the best candidate's predicted traffic is
// within `gap_percent` of that floor, and the result carries a
// machine-checkable certificate (surfaced as a bwc-remarks-v1 record by
// report()) when the winner's measured traffic lands within the gap:
//
//   floor <= bound(winner) <= measured(winner) <= floor * (1 + gap/100)
//
// pinning the winner's true traffic to a provably near-optimal band.
// docs/AUTOTUNE.md walks through the semantics and the floor's caveats.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bwc/ir/program.h"
#include "bwc/machine/machine_model.h"
#include "bwc/model/measure.h"
#include "bwc/pass/report.h"
#include "bwc/verify/traffic_bound.h"

namespace bwc::tune {

enum class Strategy { kBeam, kGenetic };

const char* strategy_name(Strategy strategy);
/// "beam" or "genetic" (throws bwc::Error otherwise).
Strategy parse_strategy(const std::string& name);
/// "small" (16), "medium" (48), "large" (128) or a positive integer:
/// the maximum number of candidates scored.
int parse_budget(const std::string& text);

struct TuneOptions {
  Strategy strategy = Strategy::kBeam;
  /// Certificate tolerance: stop when predicted traffic is within this
  /// percentage of the data-movement floor.
  double gap_percent = 5.0;
  /// Maximum candidates scored (parse_budget; default "medium").
  int budget = 48;
  std::uint64_t seed = 0;
  /// Scoring pool width. Results are bit-identical at any value.
  int threads = 1;
  /// Top-k candidates (by predicted traffic) validated in memsim. The
  /// default pipeline is always validated in addition.
  int validate_top_k = 3;
  /// Extra starting population (e.g. winners from a daemon record log).
  /// Malformed or over-long entries are ignored.
  std::vector<std::string> seed_specs;
  /// Machine the memsim validation runs on, as-is (caller applies any
  /// scale / core-count adjustments first).
  machine::MachineModel machine;
  model::ExecEngine engine = model::ExecEngine::kCompiled;
};

/// One memsim-validated candidate.
struct Validated {
  std::string spec;
  std::int64_t predicted_bytes = 0;  // static traffic bound after the spec
  std::int64_t measured_bytes = 0;   // memsim memory<->L2 traffic
};

/// The machine-checkable optimality claim. `within_gap` holds iff
/// floor_bytes > 0 and measured_bytes <= floor_bytes * (1 + tolerance).
struct Certificate {
  bool within_gap = false;
  std::int64_t floor_bytes = 0;      // compute_data_floor(P)
  std::int64_t predicted_bytes = 0;  // winner's static bound
  std::int64_t measured_bytes = 0;   // winner's memsim traffic
  /// 100 * (measured - floor) / floor; -1 when the floor is zero.
  double gap_percent = -1.0;
  double tolerance_percent = 0.0;
};

struct TuneResult {
  std::string winner_spec;  // canonical; "" means "run no passes"
  std::int64_t winner_predicted_bytes = 0;
  std::int64_t winner_measured_bytes = 0;
  /// The default core::optimize pipeline, measured for comparison.
  std::string default_spec;
  std::int64_t default_measured_bytes = 0;
  Certificate certificate;
  verify::DataFloor floor;
  /// Distinct candidates scored / of those, rejected as illegal or
  /// failing to compile.
  int evaluated = 0;
  int infeasible = 0;
  /// Search stopped before exhausting the budget because the best
  /// predicted traffic was already within the gap.
  bool early_stop = false;
  /// Every memsim-validated candidate (winner and default included).
  std::vector<Validated> validated;
  /// Pipeline report of the winner's optimize run (empty for "").
  pass::PipelineReport winner_pipeline;

  /// Synthetic "tune" pass record carrying the certificate and the
  /// per-array floor breakdown as bwc-remarks-v1 remarks; append it to
  /// winner_pipeline.passes for a schema-valid machine-readable report.
  pass::PassReport report() const;
};

/// Run the autotuner. Throws bwc::Error only for unusable options or a
/// program the baseline measurement itself rejects; individual candidate
/// failures are scored infeasible and skipped.
TuneResult tune(const ir::Program& program, const TuneOptions& options);

}  // namespace bwc::tune
