#include "bwc/graph/hypergraph.h"

#include <algorithm>
#include <queue>
#include <set>

#include "bwc/support/error.h"

namespace bwc::graph {

Hypergraph::Hypergraph(int node_count) {
  BWC_CHECK(node_count >= 0, "node count must be non-negative");
  node_count_ = node_count;
  incident_.resize(static_cast<std::size_t>(node_count));
}

int Hypergraph::add_node() {
  incident_.emplace_back();
  return node_count_++;
}

int Hypergraph::add_edge(std::vector<int> pins, std::int64_t weight,
                         std::string label) {
  std::sort(pins.begin(), pins.end());
  pins.erase(std::unique(pins.begin(), pins.end()), pins.end());
  BWC_CHECK(!pins.empty(), "hyper-edge must have at least one pin");
  BWC_CHECK(weight >= 0, "hyper-edge weight must be non-negative");
  for (int p : pins)
    BWC_CHECK(p >= 0 && p < node_count_, "hyper-edge pin out of range");
  const int e = edge_count();
  for (int p : pins) incident_[static_cast<std::size_t>(p)].push_back(e);
  pins_.push_back(std::move(pins));
  weights_.push_back(weight);
  labels_.push_back(std::move(label));
  return e;
}

bool Hypergraph::edge_contains(int e, int v) const {
  const auto& p = pins(e);
  return std::binary_search(p.begin(), p.end(), v);
}

bool Hypergraph::edges_overlap(int a, int b) const {
  const auto& pa = pins(a);
  const auto& pb = pins(b);
  std::size_t i = 0, j = 0;
  while (i < pa.size() && j < pb.size()) {
    if (pa[i] == pb[j]) return true;
    if (pa[i] < pb[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

std::int64_t Hypergraph::total_weight() const {
  std::int64_t total = 0;
  for (int e = 0; e < edge_count(); ++e) total += weight(e);
  return total;
}

std::vector<int> Hypergraph::components(
    const std::vector<bool>& removed_edges) const {
  BWC_CHECK(removed_edges.empty() ||
                static_cast<int>(removed_edges.size()) == edge_count(),
            "removed_edges mask must be empty or match edge count");
  auto removed = [&removed_edges](int e) {
    return !removed_edges.empty() && removed_edges[static_cast<std::size_t>(e)];
  };

  std::vector<int> comp(static_cast<std::size_t>(node_count_), -1);
  std::vector<bool> edge_done(static_cast<std::size_t>(edge_count()), false);
  int next = 0;
  for (int start = 0; start < node_count_; ++start) {
    if (comp[static_cast<std::size_t>(start)] != -1) continue;
    comp[static_cast<std::size_t>(start)] = next;
    std::queue<int> q;
    q.push(start);
    while (!q.empty()) {
      const int u = q.front();
      q.pop();
      for (int e : incident_edges(u)) {
        if (edge_done[static_cast<std::size_t>(e)] || removed(e)) continue;
        edge_done[static_cast<std::size_t>(e)] = true;
        for (int v : pins(e)) {
          if (comp[static_cast<std::size_t>(v)] == -1) {
            comp[static_cast<std::size_t>(v)] = next;
            q.push(v);
          }
        }
      }
    }
    ++next;
  }
  return comp;
}

bool Hypergraph::connected(int u, int v,
                           const std::vector<bool>& removed_edges) const {
  const auto comp = components(removed_edges);
  return comp[static_cast<std::size_t>(u)] == comp[static_cast<std::size_t>(v)];
}

std::int64_t partition_cost(const Hypergraph& g,
                            const std::vector<int>& assignment) {
  BWC_CHECK(static_cast<int>(assignment.size()) == g.node_count(),
            "assignment must map every node");
  std::int64_t cost = 0;
  for (int e = 0; e < g.edge_count(); ++e) {
    std::set<int> parts;
    for (int p : g.pins(e))
      parts.insert(assignment[static_cast<std::size_t>(p)]);
    cost += g.weight(e) * static_cast<std::int64_t>(parts.size());
  }
  return cost;
}

}  // namespace bwc::graph
