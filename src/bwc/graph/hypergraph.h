// Hyper-graphs: the paper's data-sharing model.
//
// "The traditional definition of an edge is inadequate for modeling data
// sharing because the same data can be shared by more than two loops."
// Each node is a loop; each hyper-edge is an array, connecting every loop
// that accesses it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace bwc::graph {

/// A hyper-graph over dense integer vertices. Hyper-edges are pin lists and
/// carry a weight (unit by default; array byte sizes for weighted fusion).
class Hypergraph {
 public:
  explicit Hypergraph(int node_count = 0);

  int node_count() const { return node_count_; }
  int edge_count() const { return static_cast<int>(pins_.size()); }

  int add_node();
  /// Add a hyper-edge over the given pin set. Duplicate pins are removed;
  /// an edge must have at least one pin. Returns the edge index.
  int add_edge(std::vector<int> pins, std::int64_t weight = 1,
               std::string label = {});

  const std::vector<int>& pins(int e) const {
    return pins_[static_cast<std::size_t>(e)];
  }
  std::int64_t weight(int e) const {
    return weights_[static_cast<std::size_t>(e)];
  }
  const std::string& label(int e) const {
    return labels_[static_cast<std::size_t>(e)];
  }

  /// Edges incident to a node.
  const std::vector<int>& incident_edges(int v) const {
    return incident_[static_cast<std::size_t>(v)];
  }

  bool edge_contains(int e, int v) const;
  /// True when edges a and b share at least one pin ("overlap" in Fig. 5).
  bool edges_overlap(int a, int b) const;

  /// Total weight of all edges.
  std::int64_t total_weight() const;

  /// Connectivity through hyper-edges: nodes u, v are connected when a path
  /// of pairwise-overlapping hyper-edges joins them. `removed_edges[e]`
  /// marks edges excluded from the traversal (may be empty = none removed).
  bool connected(int u, int v, const std::vector<bool>& removed_edges = {}) const;

  /// Component id per node under the same notion of connectivity.
  std::vector<int> components(const std::vector<bool>& removed_edges = {}) const;

 private:
  int node_count_ = 0;
  std::vector<std::vector<int>> pins_;
  std::vector<std::int64_t> weights_;
  std::vector<std::string> labels_;
  std::vector<std::vector<int>> incident_;
};

/// Cost of a multi-way partition under the paper's Problem 3.2 objective:
/// for each hyper-edge, its "length" is the number of distinct partitions
/// its pins land in; the cost is the weighted sum of lengths. `assignment`
/// maps each node to a partition id (any dense or sparse ids work).
std::int64_t partition_cost(const Hypergraph& g,
                            const std::vector<int>& assignment);

}  // namespace bwc::graph
