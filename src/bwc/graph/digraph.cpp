#include "bwc/graph/digraph.h"

#include <algorithm>
#include <queue>

#include "bwc/support/error.h"

namespace bwc::graph {

Digraph::Digraph(int node_count) {
  BWC_CHECK(node_count >= 0, "node count must be non-negative");
  succ_.resize(static_cast<std::size_t>(node_count));
  pred_.resize(static_cast<std::size_t>(node_count));
}

int Digraph::add_node() {
  succ_.emplace_back();
  pred_.emplace_back();
  return node_count() - 1;
}

void Digraph::add_edge(int u, int v) {
  BWC_CHECK(u >= 0 && u < node_count(), "edge source out of range");
  BWC_CHECK(v >= 0 && v < node_count(), "edge target out of range");
  if (has_edge(u, v)) return;
  succ_[static_cast<std::size_t>(u)].push_back(v);
  pred_[static_cast<std::size_t>(v)].push_back(u);
}

bool Digraph::has_edge(int u, int v) const {
  const auto& s = succ_[static_cast<std::size_t>(u)];
  return std::find(s.begin(), s.end(), v) != s.end();
}

std::optional<std::vector<int>> Digraph::topological_order() const {
  const int n = node_count();
  std::vector<int> indegree(static_cast<std::size_t>(n), 0);
  for (int v = 0; v < n; ++v)
    indegree[static_cast<std::size_t>(v)] =
        static_cast<int>(pred_[static_cast<std::size_t>(v)].size());
  std::queue<int> ready;
  for (int v = 0; v < n; ++v)
    if (indegree[static_cast<std::size_t>(v)] == 0) ready.push(v);
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n));
  while (!ready.empty()) {
    const int u = ready.front();
    ready.pop();
    order.push_back(u);
    for (int v : succ_[static_cast<std::size_t>(u)]) {
      if (--indegree[static_cast<std::size_t>(v)] == 0) ready.push(v);
    }
  }
  if (static_cast<int>(order.size()) != n) return std::nullopt;
  return order;
}

std::vector<bool> Digraph::reachable_from(int v) const {
  BWC_CHECK(v >= 0 && v < node_count(), "node out of range");
  std::vector<bool> seen(static_cast<std::size_t>(node_count()), false);
  std::queue<int> q;
  for (int w : succ_[static_cast<std::size_t>(v)]) {
    if (!seen[static_cast<std::size_t>(w)]) {
      seen[static_cast<std::size_t>(w)] = true;
      q.push(w);
    }
  }
  while (!q.empty()) {
    const int u = q.front();
    q.pop();
    for (int w : succ_[static_cast<std::size_t>(u)]) {
      if (!seen[static_cast<std::size_t>(w)]) {
        seen[static_cast<std::size_t>(w)] = true;
        q.push(w);
      }
    }
  }
  return seen;
}

std::vector<std::vector<bool>> Digraph::transitive_closure() const {
  std::vector<std::vector<bool>> closure;
  closure.reserve(static_cast<std::size_t>(node_count()));
  for (int v = 0; v < node_count(); ++v) closure.push_back(reachable_from(v));
  return closure;
}

}  // namespace bwc::graph
