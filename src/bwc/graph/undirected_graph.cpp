#include "bwc/graph/undirected_graph.h"

#include <algorithm>
#include <queue>

#include "bwc/support/error.h"

namespace bwc::graph {

UndirectedGraph::UndirectedGraph(int node_count) {
  BWC_CHECK(node_count >= 0, "node count must be non-negative");
  node_count_ = node_count;
  adjacency_.resize(static_cast<std::size_t>(node_count));
  incident_.resize(static_cast<std::size_t>(node_count));
}

int UndirectedGraph::add_node() {
  adjacency_.emplace_back();
  incident_.emplace_back();
  return node_count_++;
}

int UndirectedGraph::add_edge(int u, int v, std::int64_t weight) {
  BWC_CHECK(u >= 0 && u < node_count_, "edge endpoint u out of range");
  BWC_CHECK(v >= 0 && v < node_count_, "edge endpoint v out of range");
  BWC_CHECK(u != v, "self-loops are not allowed");
  const int e = edge_count();
  us_.push_back(u);
  vs_.push_back(v);
  weights_.push_back(weight);
  adjacency_[static_cast<std::size_t>(u)].push_back(v);
  adjacency_[static_cast<std::size_t>(v)].push_back(u);
  incident_[static_cast<std::size_t>(u)].push_back(e);
  incident_[static_cast<std::size_t>(v)].push_back(e);
  return e;
}

bool UndirectedGraph::has_edge(int u, int v) const {
  const auto& adj = adjacency_[static_cast<std::size_t>(u)];
  return std::find(adj.begin(), adj.end(), v) != adj.end();
}

std::vector<int> UndirectedGraph::components() const {
  std::vector<int> comp(static_cast<std::size_t>(node_count_), -1);
  int next = 0;
  for (int start = 0; start < node_count_; ++start) {
    if (comp[static_cast<std::size_t>(start)] != -1) continue;
    comp[static_cast<std::size_t>(start)] = next;
    std::queue<int> q;
    q.push(start);
    while (!q.empty()) {
      const int u = q.front();
      q.pop();
      for (int v : adjacency_[static_cast<std::size_t>(u)]) {
        if (comp[static_cast<std::size_t>(v)] == -1) {
          comp[static_cast<std::size_t>(v)] = next;
          q.push(v);
        }
      }
    }
    ++next;
  }
  return comp;
}

bool UndirectedGraph::connected(int u, int v) const {
  const auto comp = components();
  return comp[static_cast<std::size_t>(u)] == comp[static_cast<std::size_t>(v)];
}

}  // namespace bwc::graph
