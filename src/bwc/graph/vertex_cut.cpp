#include "bwc/graph/vertex_cut.h"

#include "bwc/graph/flow_network.h"
#include "bwc/support/error.h"

namespace bwc::graph {

VertexCutResult min_vertex_cut(const UndirectedGraph& g, int s, int t,
                               const std::vector<std::int64_t>&
                                   vertex_weights) {
  const int n = g.node_count();
  BWC_CHECK(s >= 0 && s < n && t >= 0 && t < n, "terminal out of range");
  BWC_CHECK(s != t, "terminals must differ");
  BWC_CHECK(!g.has_edge(s, t),
            "no vertex cut exists between adjacent terminals");
  BWC_CHECK(vertex_weights.empty() ||
                static_cast<int>(vertex_weights.size()) == n,
            "vertex weight vector must be empty or match node count");

  // Node splitting: vertex v becomes v_in = 2v and v_out = 2v + 1, joined by
  // a directed edge of capacity weight(v). Undirected edges {u, v} become
  // u_out -> v_in and v_out -> u_in with infinite capacity.
  FlowNetwork net(2 * n);
  auto in_node = [](int v) { return 2 * v; };
  auto out_node = [](int v) { return 2 * v + 1; };

  for (int v = 0; v < n; ++v) {
    Capacity w = kInfiniteCapacity;
    if (v != s && v != t) {
      w = vertex_weights.empty() ? 1 : vertex_weights[static_cast<std::size_t>(v)];
      BWC_CHECK(w >= 0, "vertex weights must be non-negative");
    }
    net.add_edge(in_node(v), out_node(v), w);
  }
  for (int e = 0; e < g.edge_count(); ++e) {
    const int u = g.edge_u(e);
    const int v = g.edge_v(e);
    net.add_edge(out_node(u), in_node(v), kInfiniteCapacity);
    net.add_edge(out_node(v), in_node(u), kInfiniteCapacity);
  }

  VertexCutResult result;
  result.cut_weight = net.max_flow(out_node(s), in_node(t));
  BWC_CHECK(result.cut_weight < kInfiniteCapacity,
            "vertex cut is unbounded; terminals are inseparable");

  const auto& reach = net.source_side();
  for (int v = 0; v < n; ++v) {
    const bool in_reached = reach[static_cast<std::size_t>(in_node(v))];
    const bool out_reached = reach[static_cast<std::size_t>(out_node(v))];
    if (in_reached && !out_reached) {
      result.cut_vertices.push_back(v);
    } else if (out_reached) {
      result.source_side.push_back(v);
    } else {
      result.sink_side.push_back(v);
    }
  }
  return result;
}

}  // namespace bwc::graph
