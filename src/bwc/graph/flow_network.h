// Maximum-flow / minimum-cut on directed networks.
//
// This is the engine underneath the paper's Figure 5 algorithm: the
// hyper-graph minimal cut is reduced to a minimum vertex cut, which is in
// turn reduced to max-flow by node splitting and solved with the
// Ford-Fulkerson method (Edmonds-Karp: BFS augmenting paths), exactly as the
// paper prescribes.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace bwc::graph {

/// Capacity type for flow networks; kInfiniteCapacity marks uncuttable arcs.
using Capacity = std::int64_t;
inline constexpr Capacity kInfiniteCapacity =
    std::numeric_limits<Capacity>::max() / 4;

/// A directed flow network with residual bookkeeping.
///
/// Nodes are dense integers [0, node_count()). Edges carry integer
/// capacities; parallel edges are allowed.
class FlowNetwork {
 public:
  explicit FlowNetwork(int node_count);

  int node_count() const { return static_cast<int>(head_.size()); }
  int add_node();

  /// Add a directed edge u->v with the given capacity (and its residual
  /// reverse edge of capacity 0). Returns the edge index of the forward arc.
  int add_edge(int u, int v, Capacity capacity);

  /// Compute the maximum s-t flow with Edmonds-Karp (BFS augmenting paths).
  /// Resets any previous flow. O(V * E^2).
  Capacity max_flow(int source, int sink);

  /// After max_flow: true for nodes reachable from the source in the
  /// residual network (the source side of a minimum cut).
  const std::vector<bool>& source_side() const { return reachable_; }

  /// After max_flow: forward edge indices that cross the minimum cut
  /// (saturated edges from the source side to the sink side).
  std::vector<int> min_cut_edges() const;

  struct Edge {
    int to;
    Capacity capacity;  // residual capacity
    int next;           // next edge index in adjacency list, -1 ends
  };
  const Edge& edge(int index) const { return edges_[index]; }

 private:
  bool bfs_augment(int source, int sink, std::vector<int>& parent_edge);

  std::vector<int> head_;    // per node: first edge index or -1
  std::vector<Edge> edges_;  // forward at even indices, residual at odd
  std::vector<Capacity> initial_capacity_;
  std::vector<bool> reachable_;
};

}  // namespace bwc::graph
