// Simple undirected graph with edge weights, used as the intermediate
// representation in the Figure 5 pipeline (hyper-graph -> normal graph) and
// as the model for the edge-weighted fusion baseline of Gao et al. and
// Kennedy & McKinley.
#pragma once

#include <cstdint>
#include <vector>

namespace bwc::graph {

/// Undirected weighted graph over dense integer vertices.
class UndirectedGraph {
 public:
  explicit UndirectedGraph(int node_count = 0);

  int node_count() const { return node_count_; }
  int edge_count() const { return static_cast<int>(us_.size()); }

  int add_node();
  /// Add an undirected edge {u, v} with the given weight; returns its index.
  /// Self-loops are rejected.
  int add_edge(int u, int v, std::int64_t weight = 1);

  int edge_u(int e) const { return us_[static_cast<std::size_t>(e)]; }
  int edge_v(int e) const { return vs_[static_cast<std::size_t>(e)]; }
  std::int64_t edge_weight(int e) const {
    return weights_[static_cast<std::size_t>(e)];
  }
  void set_edge_weight(int e, std::int64_t w) {
    weights_[static_cast<std::size_t>(e)] = w;
  }

  /// Neighbors of node v (with multiplicity if parallel edges exist).
  const std::vector<int>& neighbors(int v) const {
    return adjacency_[static_cast<std::size_t>(v)];
  }
  /// Edge indices incident to node v.
  const std::vector<int>& incident_edges(int v) const {
    return incident_[static_cast<std::size_t>(v)];
  }

  bool has_edge(int u, int v) const;

  /// Connected component ids (dense, starting at 0) for every node.
  std::vector<int> components() const;
  /// True if u and v lie in the same connected component.
  bool connected(int u, int v) const;

 private:
  int node_count_ = 0;
  std::vector<int> us_, vs_;
  std::vector<std::int64_t> weights_;
  std::vector<std::vector<int>> adjacency_;
  std::vector<std::vector<int>> incident_;
};

}  // namespace bwc::graph
