// Directed graph with topological ordering and reachability; models the
// data-dependence edges of fusion graphs.
#pragma once

#include <optional>
#include <vector>

namespace bwc::graph {

class Digraph {
 public:
  explicit Digraph(int node_count = 0);

  int node_count() const { return static_cast<int>(succ_.size()); }
  int add_node();
  /// Add edge u -> v. Parallel edges are deduplicated.
  void add_edge(int u, int v);

  const std::vector<int>& successors(int v) const {
    return succ_[static_cast<std::size_t>(v)];
  }
  const std::vector<int>& predecessors(int v) const {
    return pred_[static_cast<std::size_t>(v)];
  }
  bool has_edge(int u, int v) const;

  /// Topological order, or nullopt when the graph has a cycle.
  std::optional<std::vector<int>> topological_order() const;
  bool is_acyclic() const { return topological_order().has_value(); }

  /// Nodes reachable from v (excluding v itself unless on a cycle).
  std::vector<bool> reachable_from(int v) const;

  /// Full reachability closure: result[u][v] true when a nonempty path
  /// u -> ... -> v exists. O(V * (V + E)).
  std::vector<std::vector<bool>> transitive_closure() const;

 private:
  std::vector<std::vector<int>> succ_;
  std::vector<std::vector<int>> pred_;
};

}  // namespace bwc::graph
