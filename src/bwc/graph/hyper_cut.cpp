#include "bwc/graph/hyper_cut.h"

#include <algorithm>

#include "bwc/graph/undirected_graph.h"
#include "bwc/graph/vertex_cut.h"
#include "bwc/support/error.h"

namespace bwc::graph {

namespace {

/// Split nodes into (connected-to-s, rest) after removing the cut edges.
void fill_sides(const Hypergraph& g, int s, HyperCutResult& result) {
  std::vector<bool> removed(static_cast<std::size_t>(g.edge_count()), false);
  for (int e : result.cut_edges) removed[static_cast<std::size_t>(e)] = true;
  const auto comp = g.components(removed);
  const int s_comp = comp[static_cast<std::size_t>(s)];
  result.source_side.clear();
  result.sink_side.clear();
  for (int v = 0; v < g.node_count(); ++v) {
    if (comp[static_cast<std::size_t>(v)] == s_comp) {
      result.source_side.push_back(v);
    } else {
      result.sink_side.push_back(v);
    }
  }
}

}  // namespace

HyperCutResult min_hyperedge_cut(const Hypergraph& g, int s, int t) {
  const int n = g.node_count();
  BWC_CHECK(s >= 0 && s < n && t >= 0 && t < n, "terminal out of range");
  BWC_CHECK(s != t, "terminals must differ");

  HyperCutResult result;
  if (!g.connected(s, t)) {
    fill_sides(g, s, result);
    return result;
  }

  // Step 1: hyper-edges become nodes of a normal graph G'; two nodes are
  // adjacent when their hyper-edges overlap. map[v'] = hyper-edge index.
  const int m = g.edge_count();
  UndirectedGraph normal(m + 2);
  const int s_prime = m;
  const int t_prime = m + 1;
  for (int a = 0; a < m; ++a) {
    for (int b = a + 1; b < m; ++b) {
      if (g.edges_overlap(a, b)) normal.add_edge(a, b);
    }
  }
  for (int e = 0; e < m; ++e) {
    if (g.edge_contains(e, s)) normal.add_edge(s_prime, e);
    if (g.edge_contains(e, t)) normal.add_edge(t_prime, e);
  }

  // Step 2: minimum vertex cut in G' with hyper-edge weights on vertices.
  std::vector<std::int64_t> weights(static_cast<std::size_t>(m + 2), 0);
  for (int e = 0; e < m; ++e)
    weights[static_cast<std::size_t>(e)] = g.weight(e);
  const VertexCutResult vc =
      min_vertex_cut(normal, s_prime, t_prime, weights);

  // Step 3: cut vertices of G' are the cut hyper-edges of G.
  result.cut_weight = vc.cut_weight;
  result.cut_edges = vc.cut_vertices;
  std::sort(result.cut_edges.begin(), result.cut_edges.end());
  fill_sides(g, s, result);
  BWC_CHECK(std::find(result.sink_side.begin(), result.sink_side.end(), t) !=
                result.sink_side.end(),
            "cut failed to separate the terminals");
  return result;
}

HyperCutResult min_hyperedge_cut_bruteforce(const Hypergraph& g, int s,
                                            int t) {
  const int n = g.node_count();
  BWC_CHECK(s >= 0 && s < n && t >= 0 && t < n, "terminal out of range");
  BWC_CHECK(s != t, "terminals must differ");
  BWC_CHECK(n <= 24, "brute force limited to small graphs");

  // Enumerate assignments of the non-terminal nodes to side-of-s (bit 1) or
  // side-of-t (bit 0); the induced cut is the set of edges with pins on
  // both sides. The minimum over all assignments equals the minimum
  // removal set disconnecting s from t.
  std::vector<int> free_nodes;
  for (int v = 0; v < n; ++v)
    if (v != s && v != t) free_nodes.push_back(v);

  std::vector<bool> on_s_side(static_cast<std::size_t>(n), false);
  on_s_side[static_cast<std::size_t>(s)] = true;

  std::int64_t best_weight = -1;
  std::vector<int> best_cut;
  const std::uint64_t limit = std::uint64_t{1} << free_nodes.size();
  for (std::uint64_t mask = 0; mask < limit; ++mask) {
    for (std::size_t i = 0; i < free_nodes.size(); ++i)
      on_s_side[static_cast<std::size_t>(free_nodes[i])] =
          ((mask >> i) & 1) != 0;

    std::int64_t weight = 0;
    std::vector<int> cut;
    for (int e = 0; e < g.edge_count(); ++e) {
      bool any_s = false, any_t = false;
      for (int p : g.pins(e)) {
        (on_s_side[static_cast<std::size_t>(p)] ? any_s : any_t) = true;
      }
      if (any_s && any_t) {
        weight += g.weight(e);
        cut.push_back(e);
      }
    }
    if (best_weight < 0 || weight < best_weight) {
      best_weight = weight;
      best_cut = std::move(cut);
    }
  }

  HyperCutResult result;
  result.cut_weight = best_weight < 0 ? 0 : best_weight;
  result.cut_edges = std::move(best_cut);
  fill_sides(g, s, result);
  return result;
}

}  // namespace bwc::graph
