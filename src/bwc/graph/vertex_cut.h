// Minimum s-t vertex cut, the middle stage of the paper's Figure 5
// algorithm: "converts the graph into a directed graph, splits each node
// into two and connects them with a directed edge, and finally finds the
// edge cut set by the standard Ford-Fulkerson method."
#pragma once

#include <cstdint>
#include <vector>

#include "bwc/graph/undirected_graph.h"

namespace bwc::graph {

struct VertexCutResult {
  /// Total weight of the cut (number of vertices for unit weights).
  std::int64_t cut_weight = 0;
  /// Vertices in the minimum cut. Never contains s or t.
  std::vector<int> cut_vertices;
  /// Vertices (excluding cut vertices) still connected to s after removal.
  std::vector<int> source_side;
  /// Vertices (excluding cut vertices) no longer connected to s.
  std::vector<int> sink_side;
};

/// Compute a minimum-weight set of vertices (excluding s and t) whose
/// removal disconnects s from t in an undirected graph.
///
/// `vertex_weights` may be empty (unit weights) or hold one non-negative
/// weight per vertex; s and t are treated as uncuttable regardless.
/// Requires that s and t are not adjacent (otherwise no vertex cut exists)
/// and throws bwc::Error when they are.
VertexCutResult min_vertex_cut(const UndirectedGraph& g, int s, int t,
                               const std::vector<std::int64_t>&
                                   vertex_weights = {});

}  // namespace bwc::graph
