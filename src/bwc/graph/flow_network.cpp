#include "bwc/graph/flow_network.h"

#include <algorithm>
#include <queue>

#include "bwc/support/error.h"

namespace bwc::graph {

FlowNetwork::FlowNetwork(int node_count) {
  BWC_CHECK(node_count >= 0, "node count must be non-negative");
  head_.assign(static_cast<std::size_t>(node_count), -1);
}

int FlowNetwork::add_node() {
  head_.push_back(-1);
  return node_count() - 1;
}

int FlowNetwork::add_edge(int u, int v, Capacity capacity) {
  BWC_CHECK(u >= 0 && u < node_count(), "edge source out of range");
  BWC_CHECK(v >= 0 && v < node_count(), "edge target out of range");
  BWC_CHECK(capacity >= 0, "edge capacity must be non-negative");
  const int fwd = static_cast<int>(edges_.size());
  edges_.push_back({v, capacity, head_[static_cast<std::size_t>(u)]});
  head_[static_cast<std::size_t>(u)] = fwd;
  edges_.push_back({u, 0, head_[static_cast<std::size_t>(v)]});
  head_[static_cast<std::size_t>(v)] = fwd + 1;
  initial_capacity_.push_back(capacity);
  initial_capacity_.push_back(0);
  return fwd;
}

bool FlowNetwork::bfs_augment(int source, int sink,
                              std::vector<int>& parent_edge) {
  std::fill(parent_edge.begin(), parent_edge.end(), -1);
  std::vector<bool> visited(static_cast<std::size_t>(node_count()), false);
  visited[static_cast<std::size_t>(source)] = true;
  std::queue<int> q;
  q.push(source);
  while (!q.empty()) {
    const int u = q.front();
    q.pop();
    for (int e = head_[static_cast<std::size_t>(u)]; e != -1;
         e = edges_[static_cast<std::size_t>(e)].next) {
      const Edge& edge = edges_[static_cast<std::size_t>(e)];
      if (edge.capacity <= 0 || visited[static_cast<std::size_t>(edge.to)])
        continue;
      visited[static_cast<std::size_t>(edge.to)] = true;
      parent_edge[static_cast<std::size_t>(edge.to)] = e;
      if (edge.to == sink) return true;
      q.push(edge.to);
    }
  }
  return false;
}

Capacity FlowNetwork::max_flow(int source, int sink) {
  BWC_CHECK(source >= 0 && source < node_count(), "source out of range");
  BWC_CHECK(sink >= 0 && sink < node_count(), "sink out of range");
  BWC_CHECK(source != sink, "source and sink must differ");

  // Reset residual capacities from any previous run.
  for (std::size_t i = 0; i < edges_.size(); ++i)
    edges_[i].capacity = initial_capacity_[i];

  Capacity total = 0;
  std::vector<int> parent_edge(static_cast<std::size_t>(node_count()), -1);
  while (bfs_augment(source, sink, parent_edge)) {
    Capacity bottleneck = kInfiniteCapacity;
    for (int v = sink; v != source;) {
      const int e = parent_edge[static_cast<std::size_t>(v)];
      bottleneck =
          std::min(bottleneck, edges_[static_cast<std::size_t>(e)].capacity);
      v = edges_[static_cast<std::size_t>(e ^ 1)].to;
    }
    for (int v = sink; v != source;) {
      const int e = parent_edge[static_cast<std::size_t>(v)];
      edges_[static_cast<std::size_t>(e)].capacity -= bottleneck;
      edges_[static_cast<std::size_t>(e ^ 1)].capacity += bottleneck;
      v = edges_[static_cast<std::size_t>(e ^ 1)].to;
    }
    total += bottleneck;
  }

  // Record the residual-reachable set for min-cut extraction.
  reachable_.assign(static_cast<std::size_t>(node_count()), false);
  std::queue<int> q;
  q.push(source);
  reachable_[static_cast<std::size_t>(source)] = true;
  while (!q.empty()) {
    const int u = q.front();
    q.pop();
    for (int e = head_[static_cast<std::size_t>(u)]; e != -1;
         e = edges_[static_cast<std::size_t>(e)].next) {
      const Edge& edge = edges_[static_cast<std::size_t>(e)];
      if (edge.capacity > 0 && !reachable_[static_cast<std::size_t>(edge.to)]) {
        reachable_[static_cast<std::size_t>(edge.to)] = true;
        q.push(edge.to);
      }
    }
  }
  return total;
}

std::vector<int> FlowNetwork::min_cut_edges() const {
  BWC_CHECK(!reachable_.empty(), "call max_flow before min_cut_edges");
  std::vector<int> cut;
  for (std::size_t e = 0; e < edges_.size(); e += 2) {
    const int from = edges_[e + 1].to;  // residual arc points back to source
    const int to = edges_[e].to;
    if (initial_capacity_[e] > 0 &&
        reachable_[static_cast<std::size_t>(from)] &&
        !reachable_[static_cast<std::size_t>(to)]) {
      cut.push_back(static_cast<int>(e));
    }
  }
  return cut;
}

}  // namespace bwc::graph
