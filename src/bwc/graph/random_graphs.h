// Random graph generators for property tests and fusion-solver ablations.
#pragma once

#include "bwc/graph/digraph.h"
#include "bwc/graph/hypergraph.h"
#include "bwc/graph/undirected_graph.h"
#include "bwc/support/prng.h"

namespace bwc::graph {

/// Erdos-Renyi undirected graph: each pair joined with probability p.
UndirectedGraph random_undirected(Prng& rng, int nodes, double p,
                                  std::int64_t max_weight = 1);

/// Random hyper-graph with `edges` hyper-edges, each over a pin set of size
/// uniform in [min_pins, max_pins] and weight uniform in [1, max_weight].
Hypergraph random_hypergraph(Prng& rng, int nodes, int edges, int min_pins,
                             int max_pins, std::int64_t max_weight = 1);

/// Random DAG: edges only from lower to higher node index, each present
/// with probability p (guarantees acyclicity).
Digraph random_dag(Prng& rng, int nodes, double p);

}  // namespace bwc::graph
