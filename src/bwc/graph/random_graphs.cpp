#include "bwc/graph/random_graphs.h"

#include <algorithm>

#include "bwc/support/error.h"

namespace bwc::graph {

UndirectedGraph random_undirected(Prng& rng, int nodes, double p,
                                  std::int64_t max_weight) {
  BWC_CHECK(nodes >= 0, "node count must be non-negative");
  BWC_CHECK(max_weight >= 1, "max_weight must be at least 1");
  UndirectedGraph g(nodes);
  for (int u = 0; u < nodes; ++u) {
    for (int v = u + 1; v < nodes; ++v) {
      if (rng.chance(p)) {
        g.add_edge(u, v,
                   rng.uniform_in(1, max_weight));
      }
    }
  }
  return g;
}

Hypergraph random_hypergraph(Prng& rng, int nodes, int edges, int min_pins,
                             int max_pins, std::int64_t max_weight) {
  BWC_CHECK(nodes >= 1, "hyper-graph needs at least one node");
  BWC_CHECK(min_pins >= 1 && min_pins <= max_pins,
            "invalid pin-count range");
  BWC_CHECK(max_pins <= nodes, "pin count cannot exceed node count");
  BWC_CHECK(max_weight >= 1, "max_weight must be at least 1");
  Hypergraph g(nodes);
  for (int e = 0; e < edges; ++e) {
    const int k = static_cast<int>(rng.uniform_in(min_pins, max_pins));
    std::vector<int> pins;
    while (static_cast<int>(pins.size()) < k) {
      const int v = static_cast<int>(rng.uniform(static_cast<std::uint64_t>(nodes)));
      if (std::find(pins.begin(), pins.end(), v) == pins.end())
        pins.push_back(v);
    }
    g.add_edge(std::move(pins), rng.uniform_in(1, max_weight));
  }
  return g;
}

Digraph random_dag(Prng& rng, int nodes, double p) {
  BWC_CHECK(nodes >= 0, "node count must be non-negative");
  Digraph g(nodes);
  for (int u = 0; u < nodes; ++u) {
    for (int v = u + 1; v < nodes; ++v) {
      if (rng.chance(p)) g.add_edge(u, v);
    }
  }
  return g;
}

}  // namespace bwc::graph
