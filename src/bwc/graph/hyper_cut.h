// Minimal cut on hyper-graphs: the algorithm of the paper's Figure 5.
//
// Given a hyper-graph and two end nodes s and t, a cut is a set of
// hyper-edges whose removal disconnects s from t. The algorithm:
//   Step 1: convert the hyper-graph into a normal graph -- one node per
//           hyper-edge, an edge between two nodes when the corresponding
//           hyper-edges overlap -- and attach new end nodes s', t' to the
//           nodes whose hyper-edges contain s resp. t.
//   Step 2: find a minimum s'-t' vertex cut in the normal graph (node
//           splitting + Ford-Fulkerson).
//   Step 3: map the cut vertices back to hyper-edges and read off the two
//           partitions.
#pragma once

#include <cstdint>
#include <vector>

#include "bwc/graph/hypergraph.h"

namespace bwc::graph {

struct HyperCutResult {
  /// Total weight of the cut hyper-edges.
  std::int64_t cut_weight = 0;
  /// Indices of the hyper-edges in the minimal cut.
  std::vector<int> cut_edges;
  /// Nodes connected to s after removing the cut edges (contains s).
  std::vector<int> source_side;
  /// The remaining nodes, V - source_side (contains t).
  std::vector<int> sink_side;
};

/// Minimal s-t hyper-edge cut (paper Figure 5). Hyper-edge weights are
/// honored (the paper notes the algorithm handles non-negative weights,
/// though fusion graphs use unit weights). Requires s != t. When s and t
/// share no path the cut is empty.
HyperCutResult min_hyperedge_cut(const Hypergraph& g, int s, int t);

/// Exhaustive reference implementation for testing: enumerates every
/// 2-partition with s and t separated and returns the minimum induced cut.
/// Exponential; intended for node counts <= ~20.
HyperCutResult min_hyperedge_cut_bruteforce(const Hypergraph& g, int s, int t);

}  // namespace bwc::graph
