// Statements and loops of the loop-program IR.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bwc/ir/expr.h"

namespace bwc::ir {

enum class StmtKind {
  kArrayAssign,   // A[subs] = rhs
  kScalarAssign,  // s = rhs (covers s += x via rhs referencing s)
  kIf,            // if (affine cmp affine) then-body [else else-body]
  kLoop,          // for var = lower..upper (step 1) body
};

enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;
using StmtList = std::vector<StmtPtr>;

/// A counted loop with unit stride and constant inclusive bounds. Programs
/// are instantiated for a concrete problem size, so bounds are integers.
struct Loop {
  std::string var;
  std::int64_t lower = 1;
  std::int64_t upper = 0;  // inclusive; empty when upper < lower
  StmtList body;

  std::int64_t trip_count() const {
    return upper >= lower ? upper - lower + 1 : 0;
  }
};

struct Stmt {
  StmtKind kind = StmtKind::kScalarAssign;

  // kArrayAssign
  ArrayId lhs_array = kInvalidArray;
  std::vector<Affine> lhs_subscripts;
  // kScalarAssign
  std::string lhs_scalar;
  // kArrayAssign / kScalarAssign
  ExprPtr rhs;

  // kIf
  CmpOp cmp = CmpOp::kEq;
  Affine cmp_lhs, cmp_rhs;
  StmtList then_body;
  StmtList else_body;

  // kLoop
  std::unique_ptr<Loop> loop;

  Stmt() = default;
  Stmt(const Stmt&) = delete;
  Stmt& operator=(const Stmt&) = delete;
  Stmt(Stmt&&) = default;
  Stmt& operator=(Stmt&&) = default;

  StmtPtr clone() const;
};

StmtPtr make_array_assign(ArrayId array, std::vector<Affine> subscripts,
                          ExprPtr rhs);
StmtPtr make_scalar_assign(const std::string& name, ExprPtr rhs);
StmtPtr make_if(CmpOp cmp, Affine lhs, Affine rhs, StmtList then_body,
                StmtList else_body = {});
StmtPtr make_loop(const std::string& var, std::int64_t lower,
                  std::int64_t upper, StmtList body);

StmtList clone_list(const StmtList& stmts);
bool equal(const Stmt& a, const Stmt& b);
bool equal(const StmtList& a, const StmtList& b);

bool evaluate_cmp(CmpOp op, std::int64_t lhs, std::int64_t rhs);
const char* cmp_name(CmpOp op);  // "==", "!=", "<", "<=", ">", ">="

}  // namespace bwc::ir
