#include "bwc/ir/parser.h"

#include <cctype>
#include <sstream>
#include <vector>

#include "bwc/support/error.h"

namespace bwc::ir {

namespace {

/// Character-level scanner over one line.
class LineScanner {
 public:
  LineScanner(std::string line, int line_no)
      : line_(std::move(line)), line_no_(line_no) {}

  void skip_ws() {
    while (pos_ < line_.size() &&
           std::isspace(static_cast<unsigned char>(line_[pos_])))
      ++pos_;
  }
  bool at_end() {
    skip_ws();
    return pos_ >= line_.size();
  }
  char peek() {
    skip_ws();
    return pos_ < line_.size() ? line_[pos_] : '\0';
  }
  bool consume(char c) {
    skip_ws();
    if (pos_ < line_.size() && line_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  void expect(char c) {
    if (!consume(c)) fail(std::string("expected '") + c + "'");
  }
  bool consume_word(const std::string& w) {
    skip_ws();
    if (line_.compare(pos_, w.size(), w) == 0) {
      const std::size_t after = pos_ + w.size();
      if (after >= line_.size() ||
          !std::isalnum(static_cast<unsigned char>(line_[after]))) {
        pos_ = after;
        return true;
      }
    }
    return false;
  }
  std::string identifier() {
    skip_ws();
    std::size_t start = pos_;
    while (pos_ < line_.size() &&
           (std::isalnum(static_cast<unsigned char>(line_[pos_])) ||
            line_[pos_] == '_'))
      ++pos_;
    if (pos_ == start) fail("expected identifier");
    return line_.substr(start, pos_ - start);
  }
  std::int64_t integer() {
    skip_ws();
    std::size_t start = pos_;
    if (pos_ < line_.size() && (line_[pos_] == '-' || line_[pos_] == '+'))
      ++pos_;
    while (pos_ < line_.size() &&
           std::isdigit(static_cast<unsigned char>(line_[pos_])))
      ++pos_;
    if (pos_ == start) fail("expected integer");
    return std::stoll(line_.substr(start, pos_ - start));
  }
  double number() {
    skip_ws();
    std::size_t consumed = 0;
    double v = 0;
    try {
      v = std::stod(line_.substr(pos_), &consumed);
    } catch (const std::exception&) {
      fail("expected number");
    }
    pos_ += consumed;
    return v;
  }
  bool next_is_digit_or_sign() {
    skip_ws();
    if (pos_ >= line_.size()) return false;
    const char c = line_[pos_];
    return std::isdigit(static_cast<unsigned char>(c)) || c == '.' ||
           ((c == '-' || c == '+') && pos_ + 1 < line_.size() &&
            (std::isdigit(static_cast<unsigned char>(line_[pos_ + 1])) ||
             line_[pos_ + 1] == '.'));
  }
  [[noreturn]] void fail(const std::string& why) const {
    throw Error("parse error at line " + std::to_string(line_no_) + ": " +
                why + " in '" + line_ + "'");
  }
  const std::string& text() const { return line_; }

 private:
  std::string line_;
  int line_no_;
  std::size_t pos_ = 0;
};

class Parser {
 public:
  explicit Parser(const std::string& text) {
    std::istringstream in(text);
    std::string line;
    int no = 0;
    while (std::getline(in, line)) {
      ++no;
      // Strip trailing CR, skip blank lines.
      while (!line.empty() && (line.back() == '\r' || line.back() == ' '))
        line.pop_back();
      std::size_t first = line.find_first_not_of(" \t");
      if (first == std::string::npos) continue;
      lines_.emplace_back(line, no);
    }
  }

  Program parse() {
    Program p;
    // Optional "// program: name" header.
    if (!lines_.empty() && starts_with(lines_[0].first, "// program:")) {
      p.set_name(trim(lines_[0].first.substr(11)));
      ++cursor_;
    }
    // Declarations.
    while (cursor_ < lines_.size() &&
           starts_with(trim(lines_[cursor_].first), "double ")) {
      parse_declaration(p);
    }
    // Statements until the outputs footer or EOF.
    while (cursor_ < lines_.size()) {
      const std::string t = trim(lines_[cursor_].first);
      if (starts_with(t, "// outputs:")) {
        parse_outputs(p, t.substr(11));
        ++cursor_;
        continue;
      }
      if (starts_with(t, "//")) {  // stray comment
        ++cursor_;
        continue;
      }
      p.append(parse_statement(p));
    }
    return p;
  }

 private:
  static bool starts_with(const std::string& s, const std::string& prefix) {
    return s.compare(0, prefix.size(), prefix) == 0;
  }
  static std::string trim(const std::string& s) {
    const std::size_t a = s.find_first_not_of(" \t");
    if (a == std::string::npos) return "";
    const std::size_t b = s.find_last_not_of(" \t");
    return s.substr(a, b - a + 1);
  }

  LineScanner scanner() {
    BWC_CHECK(cursor_ < lines_.size(), "unexpected end of program text");
    return LineScanner(lines_[cursor_].first, lines_[cursor_].second);
  }

  void parse_declaration(Program& p) {
    LineScanner s = scanner();
    ++cursor_;
    s.consume_word("double");
    const std::string name = s.identifier();
    if (s.consume('[')) {
      std::vector<std::int64_t> extents;
      extents.push_back(s.integer());
      while (s.consume(',')) extents.push_back(s.integer());
      s.expect(']');
      const ArrayId id = p.add_array(name, extents);
      if (s.consume_word("layout")) parse_layout(p, id, s);
    } else {
      p.add_scalar(name);
    }
  }

  /// layout(order=[..],pad=[..],group=k) -- each field optional, any order,
  /// at most once. The decl's check_layout() validates the contents.
  void parse_layout(Program& p, ArrayId id, LineScanner& s) {
    ir::ArrayLayout layout;
    s.expect('(');
    bool saw_order = false, saw_pad = false, saw_group = false;
    if (!s.consume(')')) {
      do {
        const std::string field = s.identifier();
        s.expect('=');
        if (field == "order" && !saw_order) {
          saw_order = true;
          s.expect('[');
          layout.order.push_back(static_cast<int>(s.integer()));
          while (s.consume(','))
            layout.order.push_back(static_cast<int>(s.integer()));
          s.expect(']');
        } else if (field == "pad" && !saw_pad) {
          saw_pad = true;
          s.expect('[');
          layout.pad.push_back(s.integer());
          while (s.consume(',')) layout.pad.push_back(s.integer());
          s.expect(']');
        } else if (field == "group" && !saw_group) {
          saw_group = true;
          const std::int64_t g = s.integer();
          if (g < 0) s.fail("layout group must be non-negative");
          layout.group = static_cast<int>(g);
        } else {
          s.fail("unknown or repeated layout field '" + field + "'");
        }
      } while (s.consume(','));
      s.expect(')');
    }
    p.mutable_array(id).layout = std::move(layout);
    p.mutable_array(id).check_layout();
  }

  void parse_outputs(Program& p, const std::string& rest) {
    std::istringstream in(rest);
    std::string name;
    while (in >> name) {
      if (p.has_scalar(name)) {
        p.mark_output_scalar(name);
      } else {
        p.mark_output_array(p.array_id(name));
      }
    }
  }

  // -- statements -------------------------------------------------------------

  StmtPtr parse_statement(Program& p) {
    const std::string t = trim(lines_[cursor_].first);
    if (starts_with(t, "for ")) return parse_loop(p);
    if (starts_with(t, "if ")) return parse_if(p);
    return parse_assignment(p);
  }

  StmtList parse_body(Program& p, const std::string& end_token,
                      const std::string& alt_token = "",
                      bool* hit_alt = nullptr) {
    StmtList body;
    while (true) {
      BWC_CHECK(cursor_ < lines_.size(), "unterminated block");
      const std::string t = trim(lines_[cursor_].first);
      if (t == end_token) {
        ++cursor_;
        return body;
      }
      if (!alt_token.empty() && t == alt_token) {
        if (hit_alt != nullptr) *hit_alt = true;
        ++cursor_;
        return body;
      }
      body.push_back(parse_statement(p));
    }
  }

  StmtPtr parse_loop(Program& p) {
    LineScanner s = scanner();
    ++cursor_;
    s.consume_word("for");
    const std::string var = s.identifier();
    s.expect('=');
    const std::int64_t lower = s.integer();
    s.expect(',');
    const std::int64_t upper = s.integer();
    loop_vars_.push_back(var);
    StmtList body = parse_body(p, "end for");
    loop_vars_.pop_back();
    return make_loop(var, lower, upper, std::move(body));
  }

  StmtPtr parse_if(Program& p) {
    LineScanner s = scanner();
    ++cursor_;
    s.consume_word("if");
    s.expect('(');
    const Affine lhs = parse_affine(s);
    const CmpOp op = parse_cmp(s);
    const Affine rhs = parse_affine(s);
    s.expect(')');
    bool has_else = false;
    StmtList then_body = parse_body(p, "end if", "else", &has_else);
    StmtList else_body;
    if (has_else) else_body = parse_body(p, "end if");
    return make_if(op, lhs, rhs, std::move(then_body), std::move(else_body));
  }

  StmtPtr parse_assignment(Program& p) {
    LineScanner s = scanner();
    ++cursor_;
    const std::string name = s.identifier();
    if (p.has_array(name)) {
      const ArrayId array = p.array_id(name);
      s.expect('[');
      std::vector<Affine> subs;
      subs.push_back(parse_affine(s));
      while (s.consume(',')) subs.push_back(parse_affine(s));
      s.expect(']');
      s.expect('=');
      ExprPtr rhs = parse_expr(p, s);
      return make_array_assign(array, std::move(subs), std::move(rhs));
    }
    BWC_CHECK(p.has_scalar(name), "assignment to undeclared name: " + name);
    s.expect('=');
    ExprPtr rhs = parse_expr(p, s);
    return make_scalar_assign(name, std::move(rhs));
  }

  CmpOp parse_cmp(LineScanner& s) {
    if (s.consume('=')) {
      s.expect('=');
      return CmpOp::kEq;
    }
    if (s.consume('!')) {
      s.expect('=');
      return CmpOp::kNe;
    }
    if (s.consume('<')) return s.consume('=') ? CmpOp::kLe : CmpOp::kLt;
    if (s.consume('>')) return s.consume('=') ? CmpOp::kGe : CmpOp::kGt;
    s.fail("expected comparison operator");
  }

  // -- affine -----------------------------------------------------------------

  bool in_loop_scope(const std::string& name) const {
    for (const auto& v : loop_vars_) {
      if (v == name) return true;
    }
    return false;
  }

  /// term := [int '*'] ident | int ; affine := term { ('+'|'-') term }.
  Affine parse_affine(LineScanner& s) {
    Affine result;
    bool first = true;
    while (true) {
      std::int64_t sign = 1;
      if (s.consume('-')) {
        sign = -1;
      } else if (s.consume('+')) {
        sign = 1;
      } else if (!first) {
        break;
      }
      if (s.next_is_digit_or_sign()) {
        const std::int64_t k = s.integer();
        if (s.consume('*')) {
          result = result + Affine::var(s.identifier(), sign * k);
        } else {
          result = result + sign * k;
        }
      } else {
        result = result + Affine::var(s.identifier(), sign);
      }
      first = false;
      const char next = s.peek();
      if (next != '+' && next != '-') break;
    }
    return result;
  }

  // -- expressions -------------------------------------------------------------

  ExprPtr parse_expr(Program& p, LineScanner& s) {
    if (s.consume('(')) {
      ExprPtr lhs = parse_expr(p, s);
      BinOp op;
      if (s.consume('+')) {
        op = BinOp::kAdd;
      } else if (s.consume('-')) {
        op = BinOp::kSub;
      } else if (s.consume('*')) {
        op = BinOp::kMul;
      } else if (s.consume('/')) {
        op = BinOp::kDiv;
      } else {
        s.fail("expected binary operator");
      }
      ExprPtr rhs = parse_expr(p, s);
      s.expect(')');
      return make_binary(op, std::move(lhs), std::move(rhs));
    }
    if (s.next_is_digit_or_sign()) return make_const(s.number());

    const std::string name = s.identifier();
    if (name == "min" || name == "max") {
      s.expect('(');
      ExprPtr a = parse_expr(p, s);
      s.expect(',');
      ExprPtr b = parse_expr(p, s);
      s.expect(')');
      return make_binary(name == "min" ? BinOp::kMin : BinOp::kMax,
                         std::move(a), std::move(b));
    }
    if ((name == "f" || name == "g") && s.peek() == '(') {
      s.expect('(');
      std::vector<ExprPtr> args;
      args.push_back(parse_expr(p, s));
      while (s.consume(',')) args.push_back(parse_expr(p, s));
      s.expect(')');
      return make_call(name, 2, std::move(args));
    }
    if (starts_with(name, "input") && s.peek() == '<') {
      const int key = static_cast<int>(std::stoll(name.substr(5)));
      s.expect('<');
      std::vector<std::int64_t> extents;
      extents.push_back(s.integer());
      while (s.consume(',')) extents.push_back(s.integer());
      s.expect('>');
      s.expect('[');
      std::vector<Affine> subs;
      subs.push_back(parse_affine(s));
      while (s.consume(',')) subs.push_back(parse_affine(s));
      s.expect(']');
      return make_input(key, std::move(subs), std::move(extents));
    }
    if (p.has_array(name)) {
      s.expect('[');
      std::vector<Affine> subs;
      subs.push_back(parse_affine(s));
      while (s.consume(',')) subs.push_back(parse_affine(s));
      s.expect(']');
      return make_array_ref(p.array_id(name), std::move(subs));
    }
    if (in_loop_scope(name)) return make_loop_var(name);
    BWC_CHECK(p.has_scalar(name), "unknown name in expression: " + name);
    return make_scalar(name);
  }

  std::vector<std::pair<std::string, int>> lines_;
  std::size_t cursor_ = 0;
  std::vector<std::string> loop_vars_;
};

}  // namespace

Program parse_program(const std::string& text) { return Parser(text).parse(); }

}  // namespace bwc::ir
