// Parser for the loop-program text format emitted by bwc/ir/printer.h.
//
// The grammar is the printer's output, line-oriented:
//
//   // program: <name>                      (optional)
//   double <array>[<extent>{,<extent>}]     declarations
//   double <scalar>
//   for <var> = <int>, <int>                loops (bodies indented freely)
//     <stmts>
//   end for
//   if (<affine> <cmp> <affine>)            guards
//     <stmts>
//   [else ... ]
//   end if
//   <array>[<affine>{,<affine>}] = <expr>   assignments
//   <scalar> = <expr>
//   // outputs: <name>...                   (optional)
//
// Expressions are the printer's fully parenthesized form: binary ops
// `(<e> <op> <e>)`, `min(<e>, <e>)`, `max(<e>, <e>)`, intrinsics
// `f(<e>, <e>)` / `g(<e>, <e>)`, input streams `input<key>[<affine>...]`,
// array elements, numbers, and names (resolved to loop variables when in
// scope, else scalars). Affine expressions are sums of `[k*]var` and
// integer terms.
//
// parse_program(to_string(p)) reproduces p up to structural equality for
// every program the printer can express (round-trip tested); input-stream
// extents are re-derived from the declared extents of the subscripted
// space, see parse notes below.
#pragma once

#include <string>

#include "bwc/ir/program.h"

namespace bwc::ir {

/// Parse a program from its text form. Throws bwc::Error with a line
/// number on malformed input.
Program parse_program(const std::string& text);

}  // namespace bwc::ir
