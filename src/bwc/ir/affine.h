// Affine integer expressions over loop variables: c0 + sum(ci * var_i).
//
// Subscripts of array references, loop bounds and guard conditions are all
// affine, which is what makes the paper's dependence and live-range
// reasoning decidable.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

namespace bwc::ir {

class Affine {
 public:
  Affine() = default;
  /// Constant expression.
  static Affine constant(std::int64_t k);
  /// coeff * var + offset.
  static Affine var(const std::string& name, std::int64_t coeff = 1,
                    std::int64_t offset = 0);

  std::int64_t constant_term() const { return constant_; }
  /// Coefficient of a variable (0 when absent).
  std::int64_t coeff(const std::string& name) const;
  const std::map<std::string, std::int64_t>& terms() const { return terms_; }

  bool is_constant() const { return terms_.empty(); }
  /// The single variable when the expression is coeff*v + c; nullopt
  /// otherwise (constant or multi-variable).
  std::optional<std::string> single_var() const;

  Affine operator+(const Affine& o) const;
  Affine operator-(const Affine& o) const;
  Affine operator+(std::int64_t k) const;
  Affine operator-(std::int64_t k) const;
  Affine operator*(std::int64_t k) const;
  bool operator==(const Affine& o) const = default;

  /// Substitute variable `name` with the given affine expression.
  Affine substituted(const std::string& name, const Affine& replacement) const;
  /// Rename a variable (no-op when absent).
  Affine renamed(const std::string& from, const std::string& to) const;
  /// True when the variable appears with a non-zero coefficient.
  bool uses(const std::string& name) const { return coeff(name) != 0; }

  std::string str() const;

 private:
  std::int64_t constant_ = 0;
  std::map<std::string, std::int64_t> terms_;  // var -> non-zero coeff
  void set_coeff(const std::string& name, std::int64_t c);
};

}  // namespace bwc::ir
