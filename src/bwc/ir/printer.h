// Pretty-printer: renders a Program in the paper's pseudo-code style.
#pragma once

#include <string>

#include "bwc/ir/program.h"

namespace bwc::ir {

std::string to_string(const Expr& e, const Program& p);
std::string to_string(const Stmt& s, const Program& p, int indent = 0);
std::string to_string(const Program& p);

}  // namespace bwc::ir
