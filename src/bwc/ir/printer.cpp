#include "bwc/ir/printer.h"

#include <sstream>

#include "bwc/support/error.h"

namespace bwc::ir {

namespace {

void print_subscripts(std::ostringstream& os,
                      const std::vector<Affine>& subs) {
  os << "[";
  for (std::size_t i = 0; i < subs.size(); ++i) {
    if (i) os << ",";
    os << subs[i].str();
  }
  os << "]";
}

void print_expr(std::ostringstream& os, const Expr& e, const Program& p) {
  switch (e.kind) {
    case ExprKind::kConst:
      os << e.value;
      return;
    case ExprKind::kScalarRef:
      os << e.scalar;
      return;
    case ExprKind::kLoopVar:
      os << e.loop_var;
      return;
    case ExprKind::kArrayRef:
      os << p.array(e.array).name;
      print_subscripts(os, e.subscripts);
      return;
    case ExprKind::kBinary:
      if (e.op == BinOp::kMin || e.op == BinOp::kMax) {
        os << binop_name(e.op) << "(";
        print_expr(os, *e.operands[0], p);
        os << ", ";
        print_expr(os, *e.operands[1], p);
        os << ")";
      } else {
        os << "(";
        print_expr(os, *e.operands[0], p);
        os << " " << binop_name(e.op) << " ";
        print_expr(os, *e.operands[1], p);
        os << ")";
      }
      return;
    case ExprKind::kCall:
      os << e.callee << "(";
      for (std::size_t i = 0; i < e.operands.size(); ++i) {
        if (i) os << ", ";
        print_expr(os, *e.operands[i], p);
      }
      os << ")";
      return;
    case ExprKind::kInput:
      os << "input" << e.input_key << "<";
      for (std::size_t d = 0; d < e.input_extents.size(); ++d) {
        if (d) os << ",";
        os << e.input_extents[d];
      }
      os << ">";
      print_subscripts(os, e.subscripts);
      return;
  }
}

void print_stmt(std::ostringstream& os, const Stmt& s, const Program& p,
                int indent);

void print_body(std::ostringstream& os, const StmtList& body,
                const Program& p, int indent) {
  for (const auto& s : body) print_stmt(os, *s, p, indent);
}

void print_stmt(std::ostringstream& os, const Stmt& s, const Program& p,
                int indent) {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  switch (s.kind) {
    case StmtKind::kArrayAssign:
      os << pad << p.array(s.lhs_array).name;
      print_subscripts(os, s.lhs_subscripts);
      os << " = ";
      print_expr(os, *s.rhs, p);
      os << "\n";
      return;
    case StmtKind::kScalarAssign:
      os << pad << s.lhs_scalar << " = ";
      print_expr(os, *s.rhs, p);
      os << "\n";
      return;
    case StmtKind::kIf:
      os << pad << "if (" << s.cmp_lhs.str() << " " << cmp_name(s.cmp) << " "
         << s.cmp_rhs.str() << ")\n";
      print_body(os, s.then_body, p, indent + 1);
      if (!s.else_body.empty()) {
        os << pad << "else\n";
        print_body(os, s.else_body, p, indent + 1);
      }
      os << pad << "end if\n";
      return;
    case StmtKind::kLoop:
      os << pad << "for " << s.loop->var << " = " << s.loop->lower << ", "
         << s.loop->upper << "\n";
      print_body(os, s.loop->body, p, indent + 1);
      os << pad << "end for\n";
      return;
  }
}

}  // namespace

std::string to_string(const Expr& e, const Program& p) {
  std::ostringstream os;
  print_expr(os, e, p);
  return os.str();
}

std::string to_string(const Stmt& s, const Program& p, int indent) {
  std::ostringstream os;
  print_stmt(os, s, p, indent);
  return os.str();
}

std::string to_string(const Program& p) {
  std::ostringstream os;
  os << "// program: " << p.name() << "\n";
  for (const auto& a : p.arrays()) {
    os << "double " << a.name;
    os << "[";
    for (std::size_t d = 0; d < a.extents.size(); ++d) {
      if (d) os << ",";
      os << a.extents[d];
    }
    os << "]";
    if (!a.layout.is_default()) {
      // Only the non-default parts print, so programs written before
      // layouts existed round-trip byte-identically.
      os << " layout(";
      bool first = true;
      const auto field = [&os, &first](const char* name) {
        if (!first) os << ",";
        first = false;
        os << name << "=";
      };
      if (!a.layout.order.empty()) {
        field("order");
        os << "[";
        for (std::size_t d = 0; d < a.layout.order.size(); ++d) {
          if (d) os << ",";
          os << a.layout.order[d];
        }
        os << "]";
      }
      if (!a.layout.pad.empty()) {
        field("pad");
        os << "[";
        for (std::size_t d = 0; d < a.layout.pad.size(); ++d) {
          if (d) os << ",";
          os << a.layout.pad[d];
        }
        os << "]";
      }
      if (a.layout.group >= 0) {
        field("group");
        os << a.layout.group;
      }
      os << ")";
    }
    os << "\n";
  }
  for (const auto& s : p.scalars()) os << "double " << s << "\n";
  std::ostringstream body;
  for (const auto& s : p.top()) print_stmt(body, *s, p, 0);
  os << body.str();
  if (!p.output_scalars().empty() || !p.output_arrays().empty()) {
    os << "// outputs:";
    for (const auto& s : p.output_scalars()) os << " " << s;
    for (ArrayId a : p.output_arrays()) os << " " << p.array(a).name;
    os << "\n";
  }
  return os.str();
}

}  // namespace bwc::ir
