#include "bwc/ir/program.h"

#include <algorithm>

#include "bwc/support/error.h"

namespace bwc::ir {

std::int64_t ArrayDecl::element_count() const {
  std::int64_t n = 1;
  for (std::int64_t e : extents) n *= e;
  return n;
}

std::int64_t ArrayDecl::linearize(
    const std::vector<std::int64_t>& indices) const {
  BWC_CHECK(indices.size() == extents.size(),
            "index arity mismatch for array " + name);
  // Column-major with 1-based indices: a[i,j] -> (i-1) + (j-1)*extent0.
  std::int64_t linear = 0;
  std::int64_t stride = 1;
  for (std::size_t d = 0; d < extents.size(); ++d) {
    const std::int64_t idx = indices[d] - 1;
    BWC_CHECK(idx >= 0 && idx < extents[d],
              "index out of bounds for array " + name + " dim " +
                  std::to_string(d) + ": " + std::to_string(indices[d]));
    linear += idx * stride;
    stride *= extents[d];
  }
  return linear;
}

void ArrayDecl::check_layout() const {
  const std::size_t rank = extents.size();
  if (!layout.order.empty()) {
    BWC_CHECK(layout.order.size() == rank,
              "layout order arity mismatch for array " + name);
    std::vector<bool> seen(rank, false);
    for (int d : layout.order) {
      BWC_CHECK(d >= 0 && static_cast<std::size_t>(d) < rank &&
                    !seen[static_cast<std::size_t>(d)],
                "layout order is not a permutation for array " + name);
      seen[static_cast<std::size_t>(d)] = true;
    }
  }
  if (!layout.pad.empty()) {
    BWC_CHECK(layout.pad.size() == rank,
              "layout pad arity mismatch for array " + name);
    for (std::int64_t p : layout.pad)
      BWC_CHECK(p >= 0, "layout pad must be non-negative for array " + name);
  }
}

std::int64_t ArrayDecl::padded_element_count() const {
  check_layout();
  std::int64_t n = 1;
  for (std::size_t k = 0; k < extents.size(); ++k) n *= padded_extent(k);
  return n;
}

std::vector<std::int64_t> ArrayDecl::layout_strides() const {
  check_layout();
  std::vector<std::int64_t> strides(extents.size(), 0);
  std::int64_t stride = 1;
  for (std::size_t k = 0; k < extents.size(); ++k) {
    strides[static_cast<std::size_t>(storage_dim(k))] = stride;
    stride *= padded_extent(k);
  }
  return strides;
}

std::int64_t ArrayDecl::layout_offset(
    const std::vector<std::int64_t>& indices) const {
  BWC_CHECK(indices.size() == extents.size(),
            "index arity mismatch for array " + name);
  const std::vector<std::int64_t> strides = layout_strides();
  std::int64_t offset = 0;
  for (std::size_t d = 0; d < extents.size(); ++d) {
    const std::int64_t idx = indices[d] - 1;
    BWC_CHECK(idx >= 0 && idx < extents[d],
              "index out of bounds for array " + name + " dim " +
                  std::to_string(d) + ": " + std::to_string(indices[d]));
    offset += idx * strides[d];
  }
  return offset;
}

ArrayId Program::add_array(const std::string& name,
                           std::vector<std::int64_t> extents,
                           std::uint64_t elem_bytes) {
  BWC_CHECK(!name.empty(), "array name must not be empty");
  BWC_CHECK(!has_array(name), "duplicate array name: " + name);
  BWC_CHECK(!extents.empty() && extents.size() <= 2,
            "arrays must be 1-D or 2-D");
  for (std::int64_t e : extents)
    BWC_CHECK(e >= 1, "array extents must be positive");
  BWC_CHECK(elem_bytes > 0, "element size must be positive");
  arrays_.push_back({name, std::move(extents), elem_bytes});
  return static_cast<ArrayId>(arrays_.size() - 1);
}

void Program::add_scalar(const std::string& name) {
  BWC_CHECK(!name.empty(), "scalar name must not be empty");
  BWC_CHECK(!has_scalar(name), "duplicate scalar name: " + name);
  scalars_.push_back(name);
}

const ArrayDecl& Program::array(ArrayId id) const {
  BWC_CHECK(id >= 0 && id < array_count(), "array id out of range");
  return arrays_[static_cast<std::size_t>(id)];
}

ArrayDecl& Program::mutable_array(ArrayId id) {
  BWC_CHECK(id >= 0 && id < array_count(), "array id out of range");
  return arrays_[static_cast<std::size_t>(id)];
}

ArrayId Program::array_id(const std::string& name) const {
  for (int i = 0; i < array_count(); ++i) {
    if (arrays_[static_cast<std::size_t>(i)].name == name) return i;
  }
  throw Error("unknown array: " + name);
}

bool Program::has_array(const std::string& name) const {
  return std::any_of(arrays_.begin(), arrays_.end(),
                     [&name](const ArrayDecl& a) { return a.name == name; });
}

bool Program::has_scalar(const std::string& name) const {
  return std::find(scalars_.begin(), scalars_.end(), name) != scalars_.end();
}

std::vector<int> Program::top_loop_indices() const {
  std::vector<int> indices;
  for (int i = 0; i < static_cast<int>(top_.size()); ++i) {
    if (top_[static_cast<std::size_t>(i)]->kind == StmtKind::kLoop)
      indices.push_back(i);
  }
  return indices;
}

void Program::mark_output_scalar(const std::string& name) {
  BWC_CHECK(has_scalar(name), "unknown output scalar: " + name);
  if (std::find(output_scalars_.begin(), output_scalars_.end(), name) ==
      output_scalars_.end())
    output_scalars_.push_back(name);
}

void Program::mark_output_array(ArrayId id) {
  BWC_CHECK(id >= 0 && id < array_count(), "array id out of range");
  if (!is_output_array(id)) output_arrays_.push_back(id);
}

bool Program::is_output_array(ArrayId id) const {
  return std::find(output_arrays_.begin(), output_arrays_.end(), id) !=
         output_arrays_.end();
}

std::vector<ArrayId> Program::interleave_group(int group) const {
  std::vector<ArrayId> members;
  if (group < 0) return members;
  for (int i = 0; i < array_count(); ++i) {
    if (arrays_[static_cast<std::size_t>(i)].layout.group == group)
      members.push_back(i);
  }
  return members;
}

Program Program::clone() const {
  Program p(name_);
  p.arrays_ = arrays_;
  p.scalars_ = scalars_;
  p.top_ = clone_list(top_);
  p.output_scalars_ = output_scalars_;
  p.output_arrays_ = output_arrays_;
  return p;
}

std::uint64_t Program::total_array_bytes() const {
  std::uint64_t total = 0;
  for (const auto& a : arrays_) total += a.byte_size();
  return total;
}

bool equal(const Program& a, const Program& b) {
  if (a.array_count() != b.array_count()) return false;
  for (int i = 0; i < a.array_count(); ++i) {
    const auto& da = a.array(i);
    const auto& db = b.array(i);
    if (da.name != db.name || da.extents != db.extents ||
        da.elem_bytes != db.elem_bytes || da.layout != db.layout)
      return false;
  }
  return a.scalars() == b.scalars() && equal(a.top(), b.top()) &&
         a.output_scalars() == b.output_scalars() &&
         a.output_arrays() == b.output_arrays();
}

ArrayAddressing resolve_addressing(const Program& program, ArrayId id) {
  const ArrayDecl& decl = program.array(id);
  decl.check_layout();
  ArrayAddressing out;
  if (decl.layout.group < 0) {
    out.addr_scale = decl.elem_bytes;
    out.member_offset = 0;
    out.alloc_bytes =
        static_cast<std::uint64_t>(decl.padded_element_count()) *
        decl.elem_bytes;
    out.owns_allocation = true;
    out.owner = id;
    return out;
  }
  const std::vector<ArrayId> members =
      program.interleave_group(decl.layout.group);
  BWC_CHECK(!members.empty(), "empty interleave group for array " + decl.name);
  const std::int64_t slots = decl.padded_element_count();
  std::uint64_t rank = 0;
  for (std::size_t m = 0; m < members.size(); ++m) {
    const ArrayDecl& member = program.array(members[m]);
    BWC_CHECK(member.elem_bytes == decl.elem_bytes &&
                  member.padded_element_count() == slots,
              "interleave group " + std::to_string(decl.layout.group) +
                  " members disagree on element size or padded extent");
    if (members[m] == id) rank = static_cast<std::uint64_t>(m);
  }
  const std::uint64_t group_size = members.size();
  out.addr_scale = group_size * decl.elem_bytes;
  out.member_offset = rank * decl.elem_bytes;
  out.alloc_bytes =
      static_cast<std::uint64_t>(slots) * group_size * decl.elem_bytes;
  out.owns_allocation = rank == 0;
  out.owner = members[0];
  return out;
}

}  // namespace bwc::ir
