#include "bwc/ir/program.h"

#include <algorithm>

#include "bwc/support/error.h"

namespace bwc::ir {

std::int64_t ArrayDecl::element_count() const {
  std::int64_t n = 1;
  for (std::int64_t e : extents) n *= e;
  return n;
}

std::int64_t ArrayDecl::linearize(
    const std::vector<std::int64_t>& indices) const {
  BWC_CHECK(indices.size() == extents.size(),
            "index arity mismatch for array " + name);
  // Column-major with 1-based indices: a[i,j] -> (i-1) + (j-1)*extent0.
  std::int64_t linear = 0;
  std::int64_t stride = 1;
  for (std::size_t d = 0; d < extents.size(); ++d) {
    const std::int64_t idx = indices[d] - 1;
    BWC_CHECK(idx >= 0 && idx < extents[d],
              "index out of bounds for array " + name + " dim " +
                  std::to_string(d) + ": " + std::to_string(indices[d]));
    linear += idx * stride;
    stride *= extents[d];
  }
  return linear;
}

ArrayId Program::add_array(const std::string& name,
                           std::vector<std::int64_t> extents,
                           std::uint64_t elem_bytes) {
  BWC_CHECK(!name.empty(), "array name must not be empty");
  BWC_CHECK(!has_array(name), "duplicate array name: " + name);
  BWC_CHECK(!extents.empty() && extents.size() <= 2,
            "arrays must be 1-D or 2-D");
  for (std::int64_t e : extents)
    BWC_CHECK(e >= 1, "array extents must be positive");
  BWC_CHECK(elem_bytes > 0, "element size must be positive");
  arrays_.push_back({name, std::move(extents), elem_bytes});
  return static_cast<ArrayId>(arrays_.size() - 1);
}

void Program::add_scalar(const std::string& name) {
  BWC_CHECK(!name.empty(), "scalar name must not be empty");
  BWC_CHECK(!has_scalar(name), "duplicate scalar name: " + name);
  scalars_.push_back(name);
}

const ArrayDecl& Program::array(ArrayId id) const {
  BWC_CHECK(id >= 0 && id < array_count(), "array id out of range");
  return arrays_[static_cast<std::size_t>(id)];
}

ArrayDecl& Program::mutable_array(ArrayId id) {
  BWC_CHECK(id >= 0 && id < array_count(), "array id out of range");
  return arrays_[static_cast<std::size_t>(id)];
}

ArrayId Program::array_id(const std::string& name) const {
  for (int i = 0; i < array_count(); ++i) {
    if (arrays_[static_cast<std::size_t>(i)].name == name) return i;
  }
  throw Error("unknown array: " + name);
}

bool Program::has_array(const std::string& name) const {
  return std::any_of(arrays_.begin(), arrays_.end(),
                     [&name](const ArrayDecl& a) { return a.name == name; });
}

bool Program::has_scalar(const std::string& name) const {
  return std::find(scalars_.begin(), scalars_.end(), name) != scalars_.end();
}

std::vector<int> Program::top_loop_indices() const {
  std::vector<int> indices;
  for (int i = 0; i < static_cast<int>(top_.size()); ++i) {
    if (top_[static_cast<std::size_t>(i)]->kind == StmtKind::kLoop)
      indices.push_back(i);
  }
  return indices;
}

void Program::mark_output_scalar(const std::string& name) {
  BWC_CHECK(has_scalar(name), "unknown output scalar: " + name);
  if (std::find(output_scalars_.begin(), output_scalars_.end(), name) ==
      output_scalars_.end())
    output_scalars_.push_back(name);
}

void Program::mark_output_array(ArrayId id) {
  BWC_CHECK(id >= 0 && id < array_count(), "array id out of range");
  if (!is_output_array(id)) output_arrays_.push_back(id);
}

bool Program::is_output_array(ArrayId id) const {
  return std::find(output_arrays_.begin(), output_arrays_.end(), id) !=
         output_arrays_.end();
}

Program Program::clone() const {
  Program p(name_);
  p.arrays_ = arrays_;
  p.scalars_ = scalars_;
  p.top_ = clone_list(top_);
  p.output_scalars_ = output_scalars_;
  p.output_arrays_ = output_arrays_;
  return p;
}

std::uint64_t Program::total_array_bytes() const {
  std::uint64_t total = 0;
  for (const auto& a : arrays_) total += a.byte_size();
  return total;
}

bool equal(const Program& a, const Program& b) {
  if (a.array_count() != b.array_count()) return false;
  for (int i = 0; i < a.array_count(); ++i) {
    const auto& da = a.array(i);
    const auto& db = b.array(i);
    if (da.name != db.name || da.extents != db.extents ||
        da.elem_bytes != db.elem_bytes)
      return false;
  }
  return a.scalars() == b.scalars() && equal(a.top(), b.top()) &&
         a.output_scalars() == b.output_scalars() &&
         a.output_arrays() == b.output_arrays();
}

}  // namespace bwc::ir
