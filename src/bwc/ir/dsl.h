// A small construction DSL so that paper programs read like the paper's
// pseudo-code. Example (Figure 7(a), first loop):
//
//   using namespace bwc::ir::dsl;
//   Program p("fig7");
//   const ArrayId res = p.add_array("res", {N});
//   const ArrayId data = p.add_array("data", {N});
//   p.append(loop("i", 1, N,
//                 assign(res, {v("i")}, at(res, v("i")) + at(data, v("i")))));
#pragma once

#include <utility>

#include "bwc/ir/program.h"

namespace bwc::ir::dsl {

/// Affine of a loop variable (optionally with offset): v("i"), v("j", -1).
inline Affine v(const std::string& name, std::int64_t offset = 0) {
  return Affine::var(name, 1, offset);
}
/// Constant affine subscript.
inline Affine k(std::int64_t value) { return Affine::constant(value); }

/// Literal, scalar and loop-variable expression leaves.
inline ExprPtr lit(double value) { return make_const(value); }
inline ExprPtr sref(const std::string& name) { return make_scalar(name); }
inline ExprPtr lvar(const std::string& name) { return make_loop_var(name); }

/// Array element: at(a, v("i")) or at(a, v("i"), v("j", -1)).
inline ExprPtr at(ArrayId array, Affine i) {
  return make_array_ref(array, {std::move(i)});
}
inline ExprPtr at(ArrayId array, Affine i, Affine j) {
  return make_array_ref(array, {std::move(i), std::move(j)});
}

/// External input stream element (the paper's read()).
inline ExprPtr input1(int key, Affine i, std::int64_t extent) {
  return make_input(key, {std::move(i)}, {extent});
}
inline ExprPtr input2(int key, Affine i, Affine j, std::int64_t ext_i,
                      std::int64_t ext_j) {
  return make_input(key, {std::move(i), std::move(j)}, {ext_i, ext_j});
}

inline ExprPtr operator+(ExprPtr a, ExprPtr b) {
  return make_binary(BinOp::kAdd, std::move(a), std::move(b));
}
inline ExprPtr operator-(ExprPtr a, ExprPtr b) {
  return make_binary(BinOp::kSub, std::move(a), std::move(b));
}
inline ExprPtr operator*(ExprPtr a, ExprPtr b) {
  return make_binary(BinOp::kMul, std::move(a), std::move(b));
}
inline ExprPtr operator/(ExprPtr a, ExprPtr b) {
  return make_binary(BinOp::kDiv, std::move(a), std::move(b));
}

/// Opaque intrinsics f and g of the paper's Figure 6 (cost: 2 flops each).
inline ExprPtr f(ExprPtr a, ExprPtr b) {
  std::vector<ExprPtr> args;
  args.push_back(std::move(a));
  args.push_back(std::move(b));
  return make_call("f", 2, std::move(args));
}
inline ExprPtr g(ExprPtr a, ExprPtr b) {
  std::vector<ExprPtr> args;
  args.push_back(std::move(a));
  args.push_back(std::move(b));
  return make_call("g", 2, std::move(args));
}

/// Assignments.
inline StmtPtr assign(ArrayId array, std::vector<Affine> subs, ExprPtr rhs) {
  return make_array_assign(array, std::move(subs), std::move(rhs));
}
inline StmtPtr assign(const std::string& scalar, ExprPtr rhs) {
  return make_scalar_assign(scalar, std::move(rhs));
}

/// Build a StmtList from any number of statements.
inline void collect(StmtList&) {}
template <typename... Rest>
void collect(StmtList& list, StmtPtr first, Rest... rest) {
  list.push_back(std::move(first));
  collect(list, std::move(rest)...);
}
template <typename... Stmts>
StmtList block(Stmts... stmts) {
  StmtList list;
  collect(list, std::move(stmts)...);
  return list;
}

/// Loops and guards.
template <typename... Stmts>
StmtPtr loop(const std::string& var, std::int64_t lower, std::int64_t upper,
             Stmts... body) {
  return make_loop(var, lower, upper, block(std::move(body)...));
}
inline StmtPtr loop_b(const std::string& var, std::int64_t lower,
                      std::int64_t upper, StmtList body) {
  return make_loop(var, lower, upper, std::move(body));
}
template <typename... Stmts>
StmtPtr when(CmpOp cmp, Affine lhs, Affine rhs, Stmts... body) {
  return make_if(cmp, std::move(lhs), std::move(rhs),
                 block(std::move(body)...));
}
inline StmtPtr if_else(CmpOp cmp, Affine lhs, Affine rhs, StmtList then_body,
                       StmtList else_body) {
  return make_if(cmp, std::move(lhs), std::move(rhs), std::move(then_body),
                 std::move(else_body));
}

}  // namespace bwc::ir::dsl
