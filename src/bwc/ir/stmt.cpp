#include "bwc/ir/stmt.h"

#include "bwc/support/error.h"

namespace bwc::ir {

StmtPtr Stmt::clone() const {
  auto s = std::make_unique<Stmt>();
  s->kind = kind;
  s->lhs_array = lhs_array;
  s->lhs_subscripts = lhs_subscripts;
  s->lhs_scalar = lhs_scalar;
  if (rhs) s->rhs = rhs->clone();
  s->cmp = cmp;
  s->cmp_lhs = cmp_lhs;
  s->cmp_rhs = cmp_rhs;
  s->then_body = clone_list(then_body);
  s->else_body = clone_list(else_body);
  if (loop) {
    s->loop = std::make_unique<Loop>();
    s->loop->var = loop->var;
    s->loop->lower = loop->lower;
    s->loop->upper = loop->upper;
    s->loop->body = clone_list(loop->body);
  }
  return s;
}

StmtList clone_list(const StmtList& stmts) {
  StmtList out;
  out.reserve(stmts.size());
  for (const auto& s : stmts) out.push_back(s->clone());
  return out;
}

StmtPtr make_array_assign(ArrayId array, std::vector<Affine> subscripts,
                          ExprPtr rhs) {
  BWC_CHECK(array >= 0, "array id must be valid");
  BWC_CHECK(!subscripts.empty(), "array assignment needs subscripts");
  BWC_CHECK(rhs != nullptr, "assignment needs a right-hand side");
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::kArrayAssign;
  s->lhs_array = array;
  s->lhs_subscripts = std::move(subscripts);
  s->rhs = std::move(rhs);
  return s;
}

StmtPtr make_scalar_assign(const std::string& name, ExprPtr rhs) {
  BWC_CHECK(!name.empty(), "scalar name must not be empty");
  BWC_CHECK(rhs != nullptr, "assignment needs a right-hand side");
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::kScalarAssign;
  s->lhs_scalar = name;
  s->rhs = std::move(rhs);
  return s;
}

StmtPtr make_if(CmpOp cmp, Affine lhs, Affine rhs, StmtList then_body,
                StmtList else_body) {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::kIf;
  s->cmp = cmp;
  s->cmp_lhs = std::move(lhs);
  s->cmp_rhs = std::move(rhs);
  s->then_body = std::move(then_body);
  s->else_body = std::move(else_body);
  return s;
}

StmtPtr make_loop(const std::string& var, std::int64_t lower,
                  std::int64_t upper, StmtList body) {
  BWC_CHECK(!var.empty(), "loop variable name must not be empty");
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::kLoop;
  s->loop = std::make_unique<Loop>();
  s->loop->var = var;
  s->loop->lower = lower;
  s->loop->upper = upper;
  s->loop->body = std::move(body);
  return s;
}

bool equal(const Stmt& a, const Stmt& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case StmtKind::kArrayAssign:
      return a.lhs_array == b.lhs_array &&
             a.lhs_subscripts == b.lhs_subscripts && equal(*a.rhs, *b.rhs);
    case StmtKind::kScalarAssign:
      return a.lhs_scalar == b.lhs_scalar && equal(*a.rhs, *b.rhs);
    case StmtKind::kIf:
      return a.cmp == b.cmp && a.cmp_lhs == b.cmp_lhs &&
             a.cmp_rhs == b.cmp_rhs && equal(a.then_body, b.then_body) &&
             equal(a.else_body, b.else_body);
    case StmtKind::kLoop:
      return a.loop->var == b.loop->var && a.loop->lower == b.loop->lower &&
             a.loop->upper == b.loop->upper && equal(a.loop->body, b.loop->body);
  }
  return false;
}

bool equal(const StmtList& a, const StmtList& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!equal(*a[i], *b[i])) return false;
  }
  return true;
}

bool evaluate_cmp(CmpOp op, std::int64_t lhs, std::int64_t rhs) {
  switch (op) {
    case CmpOp::kEq:
      return lhs == rhs;
    case CmpOp::kNe:
      return lhs != rhs;
    case CmpOp::kLt:
      return lhs < rhs;
    case CmpOp::kLe:
      return lhs <= rhs;
    case CmpOp::kGt:
      return lhs > rhs;
    case CmpOp::kGe:
      return lhs >= rhs;
  }
  return false;
}

const char* cmp_name(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "==";
    case CmpOp::kNe:
      return "!=";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

}  // namespace bwc::ir
