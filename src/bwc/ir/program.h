// The Program container: array/scalar declarations, top-level statements,
// and the observable outputs that transformations must preserve.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bwc/ir/stmt.h"

namespace bwc::ir {

/// Explicit storage layout of an array: a permutation of its logical
/// dimensions, per-storage-position padding, and an optional inter-array
/// interleave group. A default-constructed layout is packed column-major
/// with one array per allocation -- exactly what every declaration meant
/// before layouts became explicit, so the default is always legal.
///
/// Layouts only change where elements sit in the simulated address space
/// (and therefore which cache lines and sets their accesses touch); the
/// logical element named by a subscript tuple -- and thus every computed
/// value -- is layout-invariant.
struct ArrayLayout {
  /// Storage order as logical dimension indices, fastest-varying first.
  /// Empty means identity (logical dim 0 fastest, the column-major
  /// default); otherwise a permutation of 0..rank-1.
  std::vector<int> order;
  /// Extra element slots appended to each *storage* position's extent
  /// (position 0 = fastest). Empty means no padding; otherwise one
  /// non-negative entry per dimension. Padding slots are never addressed.
  std::vector<std::int64_t> pad;
  /// Interleave group id: arrays sharing a non-negative id live element-
  /// interleaved (AoS) in one allocation, member rank by ArrayId order.
  /// -1 means ungrouped (SoA, its own allocation).
  int group = -1;

  bool is_default() const {
    return order.empty() && pad.empty() && group < 0;
  }
  friend bool operator==(const ArrayLayout&, const ArrayLayout&) = default;
};

/// A declared array: name, extents (1-D or 2-D, Fortran-style column-major
/// like the paper's a[i,j] examples), element size, and storage layout.
struct ArrayDecl {
  std::string name;
  std::vector<std::int64_t> extents;  // e.g. {N} or {N, N}
  std::uint64_t elem_bytes = 8;
  ArrayLayout layout;

  std::int64_t element_count() const;
  std::uint64_t byte_size() const {
    return static_cast<std::uint64_t>(element_count()) * elem_bytes;
  }
  /// Column-major linearization of indices (1-based, matching the paper's
  /// pseudo-code convention a[i,j] with i fastest). Layout-independent:
  /// this is the logical (storage vector) index of the element.
  std::int64_t linearize(const std::vector<std::int64_t>& indices) const;

  /// BWC_CHECKs that `layout` is well-formed for this declaration:
  /// `order` empty or a permutation of 0..rank-1, `pad` empty or one
  /// non-negative entry per dimension.
  void check_layout() const;

  /// Logical dimension stored at storage position k (fastest first).
  int storage_dim(std::size_t k) const {
    return layout.order.empty() ? static_cast<int>(k) : layout.order[k];
  }
  /// Extent at storage position k including its padding slots.
  std::int64_t padded_extent(std::size_t k) const {
    return extents[static_cast<std::size_t>(storage_dim(k))] +
           (layout.pad.empty() ? 0 : layout.pad[k]);
  }
  /// Element slots the laid-out array occupies (>= element_count()).
  std::int64_t padded_element_count() const;
  /// Per *logical* dimension: the element-slot stride of that dimension in
  /// the laid-out allocation (identity layout: {1, extent0, ...}).
  std::vector<std::int64_t> layout_strides() const;
  /// Element-slot offset of a (1-based) index tuple in the laid-out
  /// allocation. Equals linearize() under the default layout.
  std::int64_t layout_offset(const std::vector<std::int64_t>& indices) const;
};

class Program {
 public:
  Program() = default;
  explicit Program(std::string name) : name_(std::move(name)) {}

  Program(const Program&) = delete;
  Program& operator=(const Program&) = delete;
  Program(Program&&) = default;
  Program& operator=(Program&&) = default;

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  // -- Declarations --------------------------------------------------------
  ArrayId add_array(const std::string& name, std::vector<std::int64_t> extents,
                    std::uint64_t elem_bytes = 8);
  void add_scalar(const std::string& name);

  int array_count() const { return static_cast<int>(arrays_.size()); }
  const ArrayDecl& array(ArrayId id) const;
  ArrayDecl& mutable_array(ArrayId id);
  /// Lookup by name; throws when absent.
  ArrayId array_id(const std::string& name) const;
  bool has_array(const std::string& name) const;
  const std::vector<ArrayDecl>& arrays() const { return arrays_; }
  const std::vector<std::string>& scalars() const { return scalars_; }
  bool has_scalar(const std::string& name) const;

  // -- Statements -----------------------------------------------------------
  StmtList& top() { return top_; }
  const StmtList& top() const { return top_; }
  void append(StmtPtr s) { top_.push_back(std::move(s)); }

  /// Indices into top() of the loop statements, in program order. These are
  /// the nodes of the fusion graph.
  std::vector<int> top_loop_indices() const;

  // -- Observable outputs ---------------------------------------------------
  void mark_output_scalar(const std::string& name);
  void mark_output_array(ArrayId id);
  const std::vector<std::string>& output_scalars() const {
    return output_scalars_;
  }
  const std::vector<ArrayId>& output_arrays() const { return output_arrays_; }
  bool is_output_array(ArrayId id) const;

  /// Members of interleave group `group` in ArrayId (= member rank) order.
  std::vector<ArrayId> interleave_group(int group) const;

  Program clone() const;

  /// Total bytes of all declared arrays (the program's data footprint).
  std::uint64_t total_array_bytes() const;

 private:
  std::string name_;
  std::vector<ArrayDecl> arrays_;
  std::vector<std::string> scalars_;
  StmtList top_;
  std::vector<std::string> output_scalars_;
  std::vector<ArrayId> output_arrays_;
};

bool equal(const Program& a, const Program& b);

/// Resolved simulated addressing of one array under its layout and
/// interleave group: every element address is
///   allocation_base + member_offset + layout_offset * addr_scale.
/// Ungrouped arrays own a padded_element_count()*elem_bytes allocation with
/// addr_scale = elem_bytes. Group members share the rank-0 member's
/// allocation of padded_element_count()*G*elem_bytes, with addr_scale =
/// G*elem_bytes and member_offset = rank*elem_bytes. Group members must
/// agree on elem_bytes and padded element count (BWC_CHECKed).
struct ArrayAddressing {
  std::uint64_t addr_scale = 8;    // bytes between consecutive slots
  std::uint64_t member_offset = 0; // byte offset inside the allocation
  std::uint64_t alloc_bytes = 0;   // allocation size (owner's figure)
  bool owns_allocation = true;     // false for rank > 0 group members
  ArrayId owner = -1;              // allocation owner (self when ungrouped)
};
ArrayAddressing resolve_addressing(const Program& program, ArrayId id);

}  // namespace bwc::ir
