// The Program container: array/scalar declarations, top-level statements,
// and the observable outputs that transformations must preserve.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bwc/ir/stmt.h"

namespace bwc::ir {

/// A declared array: name, extents (1-D or 2-D, Fortran-style column-major
/// like the paper's a[i,j] examples) and element size.
struct ArrayDecl {
  std::string name;
  std::vector<std::int64_t> extents;  // e.g. {N} or {N, N}
  std::uint64_t elem_bytes = 8;

  std::int64_t element_count() const;
  std::uint64_t byte_size() const {
    return static_cast<std::uint64_t>(element_count()) * elem_bytes;
  }
  /// Column-major linearization of indices (1-based, matching the paper's
  /// pseudo-code convention a[i,j] with i fastest).
  std::int64_t linearize(const std::vector<std::int64_t>& indices) const;
};

class Program {
 public:
  Program() = default;
  explicit Program(std::string name) : name_(std::move(name)) {}

  Program(const Program&) = delete;
  Program& operator=(const Program&) = delete;
  Program(Program&&) = default;
  Program& operator=(Program&&) = default;

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  // -- Declarations --------------------------------------------------------
  ArrayId add_array(const std::string& name, std::vector<std::int64_t> extents,
                    std::uint64_t elem_bytes = 8);
  void add_scalar(const std::string& name);

  int array_count() const { return static_cast<int>(arrays_.size()); }
  const ArrayDecl& array(ArrayId id) const;
  ArrayDecl& mutable_array(ArrayId id);
  /// Lookup by name; throws when absent.
  ArrayId array_id(const std::string& name) const;
  bool has_array(const std::string& name) const;
  const std::vector<ArrayDecl>& arrays() const { return arrays_; }
  const std::vector<std::string>& scalars() const { return scalars_; }
  bool has_scalar(const std::string& name) const;

  // -- Statements -----------------------------------------------------------
  StmtList& top() { return top_; }
  const StmtList& top() const { return top_; }
  void append(StmtPtr s) { top_.push_back(std::move(s)); }

  /// Indices into top() of the loop statements, in program order. These are
  /// the nodes of the fusion graph.
  std::vector<int> top_loop_indices() const;

  // -- Observable outputs ---------------------------------------------------
  void mark_output_scalar(const std::string& name);
  void mark_output_array(ArrayId id);
  const std::vector<std::string>& output_scalars() const {
    return output_scalars_;
  }
  const std::vector<ArrayId>& output_arrays() const { return output_arrays_; }
  bool is_output_array(ArrayId id) const;

  Program clone() const;

  /// Total bytes of all declared arrays (the program's data footprint).
  std::uint64_t total_array_bytes() const;

 private:
  std::string name_;
  std::vector<ArrayDecl> arrays_;
  std::vector<std::string> scalars_;
  StmtList top_;
  std::vector<std::string> output_scalars_;
  std::vector<ArrayId> output_arrays_;
};

bool equal(const Program& a, const Program& b);

}  // namespace bwc::ir
