// Expression trees for the loop-program IR.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bwc/ir/affine.h"

namespace bwc::ir {

/// Dense index into Program::arrays.
using ArrayId = int;
inline constexpr ArrayId kInvalidArray = -1;

enum class ExprKind {
  kConst,      // double literal
  kScalarRef,  // named scalar (register-resident)
  kLoopVar,    // value of a loop variable, as double
  kArrayRef,   // element of an array (memory access)
  kBinary,     // arithmetic on two operands
  kCall,       // opaque intrinsic with a fixed flop cost (paper's f, g)
  kInput,      // external input stream value (paper's read()); 0 flops
};

enum class BinOp { kAdd, kSub, kMul, kDiv, kMin, kMax };

/// Flops charged for one evaluation of a binary op (min/max count as one).
inline constexpr int kBinaryFlops = 1;

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// A node in an expression tree. Value-oriented: non-copyable, deep clone().
struct Expr {
  ExprKind kind = ExprKind::kConst;

  // kConst
  double value = 0.0;
  // kScalarRef
  std::string scalar;
  // kLoopVar
  std::string loop_var;
  // kArrayRef
  ArrayId array = kInvalidArray;
  std::vector<Affine> subscripts;
  // kBinary
  BinOp op = BinOp::kAdd;
  // kBinary (2 operands) and kCall (n operands)
  std::vector<ExprPtr> operands;
  // kCall
  std::string callee;
  int call_flops = 0;
  // kInput: deterministic external value, a pure function of (input_key,
  // linearized subscripts). input_extents are the extents of the *original*
  // input stream so the mapping survives array renaming/shrinking.
  int input_key = 0;
  std::vector<std::int64_t> input_extents;

  Expr() = default;
  Expr(const Expr&) = delete;
  Expr& operator=(const Expr&) = delete;
  Expr(Expr&&) = default;
  Expr& operator=(Expr&&) = default;

  ExprPtr clone() const;
};

// -- Constructors ----------------------------------------------------------
ExprPtr make_const(double v);
ExprPtr make_scalar(const std::string& name);
ExprPtr make_loop_var(const std::string& name);
ExprPtr make_array_ref(ArrayId array, std::vector<Affine> subscripts);
ExprPtr make_binary(BinOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr make_call(const std::string& callee, int flops,
                  std::vector<ExprPtr> args);
ExprPtr make_input(int key, std::vector<Affine> subscripts,
                   std::vector<std::int64_t> extents);

/// Structural equality (used by clone/transform tests).
bool equal(const Expr& a, const Expr& b);

/// The deterministic value of input element `linear_index` of stream `key`;
/// values are reproducible across runs and transformations.
double input_value(int key, std::int64_t linear_index);

const char* binop_name(BinOp op);  // "+", "-", "*", "/", "min", "max"

}  // namespace bwc::ir
